.PHONY: all build test check clean repro quick sweep bench bench-sweep bench-host bench-host-smoke bench-service metrics fuzz profile perfgate perfgate-service fault-matrix

all: build

build:
	dune build

test:
	dune runtest

# CI entry point: full build + every test suite.
check:
	dune build
	dune runtest

# Worker-domain count for sharded targets (sweep, bench, fault-matrix).
# Output is byte-identical at any value; JOBS=1 is the determinism control.
JOBS ?= 1

# Reproduce the paper's evaluation (quick preset).
quick:
	dune exec bin/repro.exe -- all --quick

repro:
	dune exec bin/repro.exe -- all

# Domain-sharded sweep of the full experiment matrix: one experiment per
# worker domain, reports merged in canonical order (byte-identical to
# sequential).  `make sweep JOBS=$(shell nproc)` on a multicore host.
sweep:
	dune exec bin/repro.exe -- sweep --quick -j $(JOBS)

# Host micro-benchmarks + the full paper reproduction, sharding the cells
# inside each experiment across JOBS domains.
bench:
	dune exec bench/main.exe -- --quick --jobs $(JOBS)

# Sequential vs parallel wall-clock for the quick matrix: writes
# BENCH_SWEEP.json (host_cores, both timings, output-identical check).
# Gated warn-only by perfgate's host dimension.
SWEEP_JOBS ?= 4
bench-sweep:
	dune exec bench/main.exe -- --sweep-timing --jobs $(SWEEP_JOBS) \
	  --out BENCH_SWEEP.json

# Host-throughput report (the CI invocation): fused vs slow engine over the
# paper methods at 1 and 4 threads, writing BENCH_HOST.json.  Exits nonzero
# if any config's simulated results differ between the two paths.  The
# smoke variant is the PR-time differential: a reduced matrix whose only
# point is the sim-identity check.
bench-host:
	dune exec --profile release bench/main.exe -- --host-throughput \
	  --out BENCH_HOST.json

bench-host-smoke:
	dune exec bench/main.exe -- --host-throughput --smoke \
	  --out BENCH_HOST.smoke.json

# Service-scenario SLA baseline (E14): the four-phase Zipfian store per
# scheme, with per-phase op p99 and peak unreclaimed embedded as a
# "phases" array — what perfgate's phase_p99 / phase_unreclaimed
# dimensions gate against.
bench-service:
	dune exec bench/main.exe -- --service --out BENCH_SERVICE.json

# Machine-readable metrics baseline: a small E1-style sweep with the full
# metrics snapshot and cycle-attribution profile per run.  CI archives the
# JSON as an artifact; it is also the committed perf-regression baseline.
metrics:
	dune exec bench/main.exe -- --profile --out BENCH_E1.json

# Cycle-attribution profile of a fixed-seed E1-style run: span breakdown,
# per-op latency percentiles and contention hot spots on stdout, plus
# profile.json (rerun later with `repro profile --diff profile.json`) and
# profile.folded (flamegraph.pl / speedscope input).
profile:
	dune exec bin/repro.exe -- profile --out profile.json --folded profile.folded

# Perf-regression gate: rerun the profiled sweep and compare throughput and
# per-op p99 latency against the committed BENCH_E1.json baseline.  The
# relative leg additionally requires DEBRA's no-fault throughput to stay
# within the drop threshold of EBR's inside the fresh run itself.  The
# second invocation tracks IMR against OA-BIT warn-only: IMR's
# revoke-broadcast pricing is expected to trail OA-BIT on contended
# workloads, so the ratio is observability, never a failure.
perfgate:
	dune exec bench/main.exe -- --profile --out BENCH_E1.current.json
	dune exec bin/perfgate.exe -- BENCH_E1.json BENCH_E1.current.json \
	  --relative debra:ebr
	dune exec bin/perfgate.exe -- BENCH_E1.json BENCH_E1.current.json \
	  --warn-only --relative imr:oa-bit

# Phase-scoped SLA gate (nightly): rerun the service scenario and compare
# per-phase op p99 and peak unreclaimed against the committed
# BENCH_SERVICE.json.  Both dimensions are simulated and deterministic, so
# they gate hard.
perfgate-service:
	dune exec bench/main.exe -- --service --out BENCH_SERVICE.current.json
	dune exec bin/perfgate.exe -- BENCH_SERVICE.json BENCH_SERVICE.current.json

# Nightly fault matrix: E13 across every scheme x {no-fault, stall, crash}
# with the lifecycle sanitizer on; per-leg garbage curves land in
# fault-matrix/ as garbage_<scheme>_<fault>.json (CI uploads them).  The
# matrix legs shard across JOBS domains.
fault-matrix:
	mkdir -p fault-matrix
	dune exec bin/repro.exe -- run robustness --csv fault-matrix --sanitize \
	  -j $(JOBS)

# Nightly schedule fuzzing: random schedules through every scenario with the
# lifecycle sanitizer on; failing schedules are shrunk and written to
# fuzz-out/ as replayable JSON (`repro replay fuzz-out/FILE.json`).
# Override e.g. FUZZ_SECONDS=60 for a quick local run.  FUZZ_JOBS shards
# the fixed per-cell seed chunks across domains — findings are identical
# at any FUZZ_JOBS; only the wall-clock time-box makes runs non-identical.
FUZZ_SECONDS ?= 900
FUZZ_RUNS ?= 3000
FUZZ_JOBS ?= 1
fuzz:
	dune exec bin/repro.exe -- fuzz --seconds $(FUZZ_SECONDS) \
	  --max-runs $(FUZZ_RUNS) --out fuzz-out -j $(FUZZ_JOBS)

clean:
	dune clean
