.PHONY: all build test check clean repro quick metrics fuzz

all: build

build:
	dune build

test:
	dune runtest

# CI entry point: full build + every test suite.
check:
	dune build
	dune runtest

# Reproduce the paper's evaluation (quick preset).
quick:
	dune exec bin/repro.exe -- all --quick

repro:
	dune exec bin/repro.exe -- all

# Machine-readable metrics baseline: a small E1-style sweep with the full
# metrics snapshot per run.  CI archives the JSON as an artifact.
metrics:
	dune exec bench/main.exe -- --metrics-only --out BENCH_E1.json

# Nightly schedule fuzzing: random schedules through every scenario with the
# lifecycle sanitizer on; failing schedules are shrunk and written to
# fuzz-out/ as replayable JSON (`repro replay fuzz-out/FILE.json`).
# Override e.g. FUZZ_SECONDS=60 for a quick local run.
FUZZ_SECONDS ?= 600
FUZZ_RUNS ?= 2000
fuzz:
	dune exec bin/repro.exe -- fuzz --seconds $(FUZZ_SECONDS) \
	  --max-runs $(FUZZ_RUNS) --out fuzz-out

clean:
	dune clean
