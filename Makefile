.PHONY: all build test check clean repro quick metrics

all: build

build:
	dune build

test:
	dune runtest

# CI entry point: full build + every test suite.
check:
	dune build
	dune runtest

# Reproduce the paper's evaluation (quick preset).
quick:
	dune exec bin/repro.exe -- all --quick

repro:
	dune exec bin/repro.exe -- all

# Machine-readable metrics baseline: a small E1-style sweep with the full
# metrics snapshot per run.  CI archives the JSON as an artifact.
metrics:
	dune exec bench/main.exe -- --metrics-only --out BENCH_E1.json

clean:
	dune clean
