.PHONY: all build test check clean repro quick

all: build

build:
	dune build

test:
	dune runtest

# CI entry point: full build + every test suite.
check:
	dune build
	dune runtest

# Reproduce the paper's evaluation (quick preset).
quick:
	dune exec bin/repro.exe -- all --quick

repro:
	dune exec bin/repro.exe -- all

clean:
	dune clean
