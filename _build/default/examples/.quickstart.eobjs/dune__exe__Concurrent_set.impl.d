examples/concurrent_set.ml: Array Engine Fmt Hm_list Oamem_core Oamem_engine Oamem_lockfree Oamem_reclaim Oamem_vmem Option Prng Scheme System
