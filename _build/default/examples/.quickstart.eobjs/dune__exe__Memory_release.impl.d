examples/memory_release.ml: Config Engine Fmt Hm_list List Michael_hash Oamem_core Oamem_engine Oamem_lockfree Oamem_lrmalloc Oamem_reclaim Oamem_vmem Scheme System Vmem
