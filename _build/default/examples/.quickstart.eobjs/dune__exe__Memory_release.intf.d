examples/memory_release.mli:
