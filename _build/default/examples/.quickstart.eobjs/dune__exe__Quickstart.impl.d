examples/quickstart.ml: Engine Fmt Heap Lrmalloc Oamem_core Oamem_engine Oamem_lrmalloc Oamem_vmem System Vmem
