examples/quickstart.mli:
