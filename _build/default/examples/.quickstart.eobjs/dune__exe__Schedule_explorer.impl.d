examples/schedule_explorer.ml: Array Engine Explore Fmt Geometry Oamem_engine Oamem_vmem Printf Vmem
