examples/schedule_explorer.mli:
