examples/session_store.ml: Config Engine Fmt Hm_list Lrmalloc Michael_hash Oamem_core Oamem_engine Oamem_lockfree Oamem_lrmalloc Oamem_reclaim Oamem_vmem Scheme System Vmem
