lib/core/system.ml: Cell Config Cost_model Engine Geometry Hierarchy Lrmalloc Oamem_engine Oamem_lockfree Oamem_lrmalloc Oamem_reclaim Oamem_vmem Registry Scheme Vmem
