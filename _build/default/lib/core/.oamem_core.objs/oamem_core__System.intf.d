lib/core/system.mli: Cell Config Cost_model Engine Geometry Heap Hierarchy Lrmalloc Oamem_engine Oamem_lockfree Oamem_lrmalloc Oamem_reclaim Oamem_vmem Scheme Vmem
