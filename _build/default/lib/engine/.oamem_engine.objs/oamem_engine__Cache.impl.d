lib/engine/cache.ml: Array Fmt
