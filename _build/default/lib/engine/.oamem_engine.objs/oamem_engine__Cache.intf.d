lib/engine/cache.mli: Format
