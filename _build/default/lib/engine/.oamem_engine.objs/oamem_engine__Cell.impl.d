lib/engine/cell.ml: Array Atomic Engine Geometry
