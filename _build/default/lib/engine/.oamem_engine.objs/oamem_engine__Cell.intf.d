lib/engine/cell.mli: Engine Geometry
