lib/engine/cost_model.ml: Fmt
