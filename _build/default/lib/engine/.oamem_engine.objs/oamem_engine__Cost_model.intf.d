lib/engine/cost_model.mli: Format
