lib/engine/engine.ml: Array Cost_model Effect Fmt Geometry Hierarchy Prng Tlb
