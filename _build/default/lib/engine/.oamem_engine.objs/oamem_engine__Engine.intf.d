lib/engine/engine.mli: Cost_model Format Geometry Hierarchy Prng Tlb
