lib/engine/explore.ml: Array Engine List Printexc Printf String
