lib/engine/explore.mli: Engine
