lib/engine/geometry.ml: Fmt
