lib/engine/geometry.mli: Format
