lib/engine/hierarchy.ml: Array Cache Cost_model Fmt Hashtbl Printf
