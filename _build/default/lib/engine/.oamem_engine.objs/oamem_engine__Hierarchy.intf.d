lib/engine/hierarchy.mli: Cache Cost_model Format
