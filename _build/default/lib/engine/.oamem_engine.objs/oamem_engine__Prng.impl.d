lib/engine/prng.ml:
