lib/engine/prng.mli:
