lib/engine/tlb.ml: Array Cost_model Fmt
