lib/engine/tlb.mli: Cost_model Format
