(* One set-associative cache level with LRU replacement.

   The cache tracks which line-sized blocks are present; it stores no data
   (the simulated memory itself lives in {!Oamem_vmem}).  Lookups and fills
   are O(associativity) over small int arrays, so the per-access overhead of
   the simulation stays low. *)

type t = {
  name : string;
  sets : int;
  ways : int;
  tags : int array;  (* sets * ways; -1 = invalid *)
  stamps : int array;  (* LRU timestamps, parallel to [tags] *)
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
}

type stats = { hits : int; misses : int; invalidations : int }

let create ~name ~sets ~ways =
  if sets <= 0 || ways <= 0 then invalid_arg "Cache.create";
  if sets land (sets - 1) <> 0 then
    invalid_arg "Cache.create: sets must be a power of two";
  {
    name;
    sets;
    ways;
    tags = Array.make (sets * ways) (-1);
    stamps = Array.make (sets * ways) 0;
    tick = 0;
    hits = 0;
    misses = 0;
    invalidations = 0;
  }

let capacity_lines t = t.sets * t.ways
let set_of_block t block = block land (t.sets - 1)

(* Returns [true] on hit.  On miss the block is installed, evicting the
   least-recently-used way of its set. *)
let access t block =
  let base = set_of_block t block * t.ways in
  t.tick <- t.tick + 1;
  let rec find i =
    if i >= t.ways then None
    else if t.tags.(base + i) = block then Some i
    else find (i + 1)
  in
  match find 0 with
  | Some i ->
      t.hits <- t.hits + 1;
      t.stamps.(base + i) <- t.tick;
      true
  | None ->
      t.misses <- t.misses + 1;
      (* Pick the LRU way (or any invalid way). *)
      let victim = ref 0 in
      for i = 1 to t.ways - 1 do
        if t.tags.(base + i) = -1 then victim := i
        else if t.tags.(base + !victim) <> -1
                && t.stamps.(base + i) < t.stamps.(base + !victim)
        then victim := i
      done;
      t.tags.(base + !victim) <- block;
      t.stamps.(base + !victim) <- t.tick;
      false

(* Probe without installing or updating LRU state. *)
let present t block =
  let base = set_of_block t block * t.ways in
  let rec find i =
    if i >= t.ways then false
    else t.tags.(base + i) = block || find (i + 1)
  in
  find 0

let invalidate t block =
  let base = set_of_block t block * t.ways in
  let rec find i =
    if i >= t.ways then ()
    else if t.tags.(base + i) = block then begin
      t.tags.(base + i) <- -1;
      t.invalidations <- t.invalidations + 1
    end
    else find (i + 1)
  in
  find 0

let clear t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  t.tick <- 0

let stats (t : t) =
  { hits = t.hits; misses = t.misses; invalidations = t.invalidations }

let reset_stats (t : t) =
  t.hits <- 0;
  t.misses <- 0;
  t.invalidations <- 0

let pp_stats ppf (s : stats) =
  Fmt.pf ppf "hits=%d misses=%d inval=%d" s.hits s.misses s.invalidations
