(** One set-associative cache level with LRU replacement.

    Tracks presence of line-sized blocks only; the simulated memory contents
    live elsewhere.  Used as the building block of {!Hierarchy}. *)

type t

type stats = { hits : int; misses : int; invalidations : int }

val create : name:string -> sets:int -> ways:int -> t
(** [sets] must be a power of two. *)

val capacity_lines : t -> int

val access : t -> int -> bool
(** [access t block] returns [true] on hit; on miss the block is installed
    (evicting the LRU way of its set) and [false] is returned. *)

val present : t -> int -> bool
(** Probe without side effects. *)

val invalidate : t -> int -> unit
(** Drop [block] if present (coherence invalidation). *)

val clear : t -> unit
val stats : t -> stats
val reset_stats : t -> unit
val pp_stats : Format.formatter -> stats -> unit
