(** Cost-modelled atomic metadata words.

    A cell is an [Atomic.t] paired with a simulated address from a dedicated
    metadata heap, so the cache simulator sees the coherence traffic on
    allocator/reclaimer metadata (hazard pointers, warning bits, pool heads).
    Cells are also safe under real OCaml domains. *)

type heap

val default_base : int
val heap : ?base:int -> Geometry.t -> heap

val alloc_words : heap -> ?pad:bool -> int -> int
(** Reserve raw simulated words from the metadata heap; returns the address.
    [pad] starts on a fresh cache line and pads to a line boundary. *)

type t

val make : ?pad:bool -> heap -> int -> t
val make_array : ?pad:bool -> heap -> int -> int -> t array

val get : Engine.ctx -> t -> int
val set : Engine.ctx -> t -> int -> unit
val cas : Engine.ctx -> t -> expect:int -> desired:int -> bool
val exchange : Engine.ctx -> t -> int -> int
val fetch_and_add : Engine.ctx -> t -> int -> int

val peek : t -> int
(** Read without cost accounting (assertions, stats, test oracles). *)

val poke : t -> int -> unit
(** Write without cost accounting (initialisation outside the simulation). *)

val addr : t -> int
(** Simulated address (test hook: cache/false-sharing assertions). *)
