(* Bounded schedule exploration ("model checking lite").

   Systematically enumerates scheduler decisions for the first [depth] yield
   points of a scenario and replays every resulting schedule; beyond the
   explored depth the schedule is deterministic (first runnable thread).
   Because the engine yields at every simulated memory access, this explores
   exactly the interleavings at which lock-free algorithms can differ.

   A scenario is re-instantiated from scratch for every schedule (effect
   continuations are one-shot), so scenarios must build all their state
   inside the [make] callback:

   {[
     Explore.check ~nthreads:2 ~depth:10 (fun () ->
         let hits = ref 0 in
         {
           setup = (fun eng -> Engine.spawn eng ~tid:0 ...);
           verify = (fun () -> if !hits <> 2 then failwith "lost update");
         })
   ]}

   Exploration cost is the product of branching factors over [depth], so
   keep scenarios tiny (a handful of operations on 2-3 threads). *)

type instance = {
  setup : Engine.t -> unit;  (** spawn the scenario's threads *)
  verify : unit -> unit;  (** raise to report a violation *)
}

type stats = { runs : int; violations : int; max_depth_reached : int }

exception Budget_exhausted of stats

let check ?(max_runs = 20_000) ?(max_steps = 200_000) ~nthreads ~depth make =
  let runs = ref 0 in
  let violations = ref 0 in
  let deepest = ref 0 in
  let first_failure = ref None in
  (* Run one schedule; returns the branching factors observed (in order). *)
  let run_one prefix =
    incr runs;
    if !runs > max_runs then
      raise
        (Budget_exhausted
           { runs = !runs; violations = !violations; max_depth_reached = !deepest });
    let scripted =
      { Engine.prefix = Array.of_list prefix; factors = []; steps = 0 }
    in
    let eng = Engine.create ~policy:(Engine.Scripted scripted) ~nthreads () in
    let inst = make () in
    inst.setup eng;
    Engine.run ~max_steps eng;
    (try inst.verify ()
     with e ->
       incr violations;
       if !first_failure = None then first_failure := Some (prefix, e));
    List.rev scripted.Engine.factors
  in
  let rec explore prefix =
    let factors = run_one prefix in
    let pos = List.length prefix in
    deepest := max !deepest pos;
    if pos < depth && List.length factors > pos then begin
      let f = List.nth factors pos in
      (* choice 0 at this position was just taken by [run_one]; recurse into
         its deeper alternatives, then into the sibling choices *)
      if pos + 1 < depth then explore_deeper (prefix @ [ 0 ]) factors;
      for c = 1 to f - 1 do
        explore (prefix @ [ c ])
      done
    end
  (* like [explore] but reuses the parent's observed factors instead of
     re-running the identical all-zero extension *)
  and explore_deeper prefix factors =
    let pos = List.length prefix in
    deepest := max !deepest pos;
    if pos < depth && List.length factors > pos then begin
      let f = List.nth factors pos in
      if pos + 1 < depth then explore_deeper (prefix @ [ 0 ]) factors;
      for c = 1 to f - 1 do
        explore (prefix @ [ c ])
      done
    end
  in
  explore [];
  match !first_failure with
  | Some (prefix, e) ->
      let trace =
        String.concat "," (List.map string_of_int prefix)
      in
      raise
        (Failure
           (Printf.sprintf
              "Explore.check: %d/%d schedules violated the oracle; first \
               failing schedule prefix = [%s]; first error: %s"
              !violations !runs trace (Printexc.to_string e)))
  | None -> { runs = !runs; violations = !violations; max_depth_reached = !deepest }
