(** Bounded schedule exploration over the simulation engine.

    Enumerates every scheduling decision for the first [depth] yield points
    of a small scenario and replays each resulting schedule, verifying an
    oracle after each run.  Scenarios are re-instantiated per schedule. *)

type instance = {
  setup : Engine.t -> unit;  (** spawn the scenario's threads *)
  verify : unit -> unit;  (** raise to report a violation *)
}

type stats = { runs : int; violations : int; max_depth_reached : int }

exception Budget_exhausted of stats

val check :
  ?max_runs:int ->
  ?max_steps:int ->
  nthreads:int ->
  depth:int ->
  (unit -> instance) ->
  stats
(** Raises [Failure] describing the first failing schedule if any oracle
    violation is found; raises {!Budget_exhausted} past [max_runs]. *)
