(* Machine geometry of the simulated multicore.

   All sizes are expressed in simulated machine words (one word = 8 simulated
   bytes).  Addresses, both virtual and physical, are word indices.  The
   geometry mirrors a conventional x86-64 machine scaled down so that the
   simulation stays tractable: 64-byte cache lines (8 words) and 4 KiB pages
   (512 words). *)

type t = {
  line_bits : int;  (** log2 of the cache-line size in words *)
  page_bits : int;  (** log2 of the page size in words *)
}

let default = { line_bits = 3; page_bits = 9 }

let line_words t = 1 lsl t.line_bits
let page_words t = 1 lsl t.page_bits
let lines_per_page t = 1 lsl (t.page_bits - t.line_bits)

let block_of_addr t addr = addr asr t.line_bits
let page_of_addr t addr = addr asr t.page_bits
let offset_in_page t addr = addr land (page_words t - 1)
let addr_of_page t page = page lsl t.page_bits

let pp ppf t =
  Fmt.pf ppf "geometry{line=%dw page=%dw}" (line_words t) (page_words t)
