(** Machine geometry of the simulated multicore.

    All sizes are expressed in simulated machine words (one simulated word
    stands for 8 bytes of the machine the paper ran on).  Virtual and
    physical addresses are word indices. *)

type t = {
  line_bits : int;  (** log2 of the cache-line size in words *)
  page_bits : int;  (** log2 of the page size in words *)
}

val default : t
(** 8-word (64-byte) cache lines, 512-word (4 KiB) pages. *)

val line_words : t -> int
val page_words : t -> int
val lines_per_page : t -> int

val block_of_addr : t -> int -> int
(** Cache-line (block) index of a word address. *)

val page_of_addr : t -> int -> int
(** Page index of a word address. *)

val offset_in_page : t -> int -> int
val addr_of_page : t -> int -> int

val pp : Format.formatter -> t -> unit
