(* SplitMix64-style pseudo-random number generator on OCaml's native ints.

   Deterministic, seedable and cheap — used for scheduler decisions, workload
   key streams and property tests.  The state fits in one immediate int, so a
   generator can be embedded in a per-thread context without allocation. *)

type t = { mutable state : int }

let create seed = { state = (seed lxor 0x3ade68b1) lor 1 }

(* One SplitMix step adapted to 63-bit native ints.  The constants are the
   canonical 64-bit SplitMix constants truncated to OCaml's int width; the
   avalanche quality is more than enough for scheduling and workloads. *)
let next t =
  t.state <- (t.state + 0x1f123bb5159a55e5) land max_int;
  let z = t.state in
  let z = (z lxor (z lsr 30)) * 0x4f58af9e7a361d99 land max_int in
  let z = (z lxor (z lsr 27)) * 0x2545f4914f6cdd1d land max_int in
  z lxor (z lsr 31)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  next t mod bound

let bool t = next t land 1 = 1

let float t =
  (* 53 random bits scaled into [0, 1). *)
  float_of_int (next t land ((1 lsl 53) - 1)) /. float_of_int (1 lsl 53)

let split t = create (next t)
