(** Deterministic SplitMix-style pseudo-random number generator.

    Used for scheduler decisions, workload key streams and property tests.
    The state is a single mutable int, making per-thread generators cheap. *)

type t

val create : int -> t
(** [create seed] makes an independent generator. *)

val next : t -> int
(** Next non-negative pseudo-random int (full width). *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [\[0, bound)].  [bound] must be
    positive. *)

val bool : t -> bool
val float : t -> float
(** Uniform in [\[0, 1)]. *)

val split : t -> t
(** Derive an independent generator. *)
