(* Per-thread translation lookaside buffers.

   Each thread owns a direct-mapped TLB over virtual page numbers.  Misses
   are charged the page-walk cost from the cost model.  Unmapping a range
   triggers a shootdown: the page is flushed from every TLB, mirroring the
   inter-processor interrupts a real kernel would issue. *)

type t = {
  entries : int array array;  (* per thread; -1 = invalid *)
  slots : int;
  cost : Cost_model.t;
  mutable hits : int;
  mutable misses : int;
  mutable shootdowns : int;
}

let create ?(slots = 64) ~cost ~nthreads () =
  if slots <= 0 || slots land (slots - 1) <> 0 then
    invalid_arg "Tlb.create: slots must be a positive power of two";
  {
    entries = Array.init nthreads (fun _ -> Array.make slots (-1));
    slots;
    cost;
    hits = 0;
    misses = 0;
    shootdowns = 0;
  }

(* Charge one translation of [vpage] by thread [tid]; returns cycle cost. *)
let access t ~tid vpage =
  let e = t.entries.(tid) in
  let idx = vpage land (t.slots - 1) in
  if e.(idx) = vpage then begin
    t.hits <- t.hits + 1;
    t.cost.tlb_hit
  end
  else begin
    t.misses <- t.misses + 1;
    e.(idx) <- vpage;
    t.cost.tlb_miss
  end

let shootdown t vpage =
  t.shootdowns <- t.shootdowns + 1;
  Array.iter
    (fun e ->
      let idx = vpage land (t.slots - 1) in
      if e.(idx) = vpage then e.(idx) <- -1)
    t.entries

type stats = { hits : int; misses : int; shootdowns : int }

let stats (t : t) = { hits = t.hits; misses = t.misses; shootdowns = t.shootdowns }

let reset_stats (t : t) =
  t.hits <- 0;
  t.misses <- 0;
  t.shootdowns <- 0

let clear t =
  Array.iter (fun e -> Array.fill e 0 (Array.length e) (-1)) t.entries

let pp_stats ppf s =
  Fmt.pf ppf "tlb{hits=%d misses=%d shootdowns=%d}" s.hits s.misses
    s.shootdowns
