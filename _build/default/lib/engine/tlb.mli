(** Per-thread translation lookaside buffers with shootdown on unmap. *)

type t

val create : ?slots:int -> cost:Cost_model.t -> nthreads:int -> unit -> t
(** [slots] must be a positive power of two (default 64). *)

val access : t -> tid:int -> int -> int
(** [access t ~tid vpage] simulates a translation and returns its cost. *)

val shootdown : t -> int -> unit
(** Flush a virtual page from every thread's TLB. *)

type stats = { hits : int; misses : int; shootdowns : int }

val stats : t -> stats
val reset_stats : t -> unit
val clear : t -> unit
val pp_stats : Format.formatter -> stats -> unit
