lib/harness/experiments.mli:
