lib/harness/report.ml: Array Char List Printf String
