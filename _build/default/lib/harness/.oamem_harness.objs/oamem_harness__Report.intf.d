lib/harness/report.mli:
