lib/harness/runner.mli: Config Engine Format Heap Hierarchy Oamem_core Oamem_engine Oamem_lrmalloc Oamem_reclaim Oamem_vmem Scheme Workload
