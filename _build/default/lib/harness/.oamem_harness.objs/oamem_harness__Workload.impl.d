lib/harness/workload.ml: Array List Oamem_engine Printf Prng
