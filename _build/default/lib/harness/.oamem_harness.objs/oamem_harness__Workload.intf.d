lib/harness/workload.mli: Oamem_engine Prng
