(* Plain-text reporting: aligned tables, ASCII line charts (one per paper
   figure) and optional CSV dumps for external plotting. *)

let fprintf = Printf.printf

(* --- tables ---------------------------------------------------------------- *)

let table ~header rows =
  let ncols = List.length header in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  measure header;
  List.iter measure rows;
  let print_row row =
    List.iteri
      (fun i cell -> fprintf "%s%s  " cell (String.make (widths.(i) - String.length cell) ' '))
      row;
    fprintf "\n"
  in
  print_row header;
  List.iteri (fun i w -> ignore i; fprintf "%s  " (String.make w '-')) (Array.to_list widths);
  fprintf "\n";
  List.iter print_row rows

(* --- ASCII chart ------------------------------------------------------------ *)

(* Plot series of (x, y) points on a character grid; each series gets a
   letter.  X positions are treated as ordinal (evenly spaced), matching the
   paper's thread-count axes. *)
let chart ?(width = 64) ?(height = 16) ~title ~xlabel ~ylabel ~xs series =
  let nx = List.length xs in
  if nx = 0 || series = [] then ()
  else begin
    let ymax =
      List.fold_left
        (fun acc (_, ys) -> List.fold_left max acc ys)
        1e-9 series
    in
    let grid = Array.make_matrix height width ' ' in
    let col_of i = if nx = 1 then 0 else i * (width - 1) / (nx - 1) in
    let row_of y =
      let r = int_of_float (y /. ymax *. float_of_int (height - 1)) in
      height - 1 - max 0 (min (height - 1) r)
    in
    List.iteri
      (fun si (_, ys) ->
        let letter = Char.chr (Char.code 'A' + (si mod 26)) in
        let pts = List.mapi (fun i y -> (col_of i, row_of y)) ys in
        (* draw segments between consecutive points *)
        let rec draw = function
          | (c0, r0) :: ((c1, r1) :: _ as rest) ->
              let steps = max 1 (c1 - c0) in
              for s = 0 to steps do
                let c = c0 + (s * (c1 - c0) / steps) in
                let r = r0 + (s * (r1 - r0) / steps) in
                if grid.(r).(c) = ' ' || s = 0 then grid.(r).(c) <- letter
              done;
              draw rest
          | [ (c, r) ] -> grid.(r).(c) <- letter
          | [] -> ()
        in
        draw pts)
      series;
    fprintf "\n  %s\n" title;
    fprintf "  %s (max %.3f)\n" ylabel ymax;
    Array.iter (fun row -> fprintf "  |%s|\n" (String.init width (Array.get row))) grid;
    fprintf "  +%s+\n" (String.make width '-');
    let xs_str = List.map string_of_int xs in
    fprintf "   %s: %s\n" xlabel (String.concat " " xs_str);
    List.iteri
      (fun si (name, _) ->
        fprintf "   %c = %s\n" (Char.chr (Char.code 'A' + (si mod 26))) name)
      series;
    fprintf "\n"
  end

(* --- CSV -------------------------------------------------------------------- *)

let csv ~path ~header rows =
  let oc = open_out path in
  output_string oc (String.concat "," header);
  output_char oc '\n';
  List.iter
    (fun row ->
      output_string oc (String.concat "," row);
      output_char oc '\n')
    rows;
  close_out oc

let section title =
  let bar = String.make (String.length title + 4) '=' in
  fprintf "\n%s\n= %s =\n%s\n" bar title bar
