(** Plain-text reporting: aligned tables, ASCII line charts and CSV. *)

val table : header:string list -> string list list -> unit

val chart :
  ?width:int ->
  ?height:int ->
  title:string ->
  xlabel:string ->
  ylabel:string ->
  xs:int list ->
  (string * float list) list ->
  unit
(** One letter per series; x positions are ordinal (thread counts). *)

val csv : path:string -> header:string list -> string list list -> unit
val section : string -> unit
