(* Benchmark workloads (paper §5.1).

   Operations are drawn from a (search, insert, delete) percentage mix with
   uniformly random keys.  The paper keeps insert:delete at 1:1 so the
   structure size stays constant; prefilling half the key universe with even
   keys puts the structure at its steady-state size immediately. *)

open Oamem_engine

type mix = { search_pct : int; insert_pct : int; delete_pct : int }

let mix ~search ~insert ~delete =
  if search + insert + delete <> 100 then
    invalid_arg "Workload.mix: percentages must sum to 100";
  { search_pct = search; insert_pct = insert; delete_pct = delete }

(* The paper's two mixes. *)
let update_only = mix ~search:0 ~insert:50 ~delete:50
let balanced = mix ~search:50 ~insert:25 ~delete:25

let mix_name m =
  Printf.sprintf "%d%%s/%d%%i/%d%%d" m.search_pct m.insert_pct m.delete_pct

type op = Search of int | Insert of int | Delete of int

(* Key distributions: the paper draws keys uniformly; Zipf-skewed keys are
   provided as a library extension for contention studies. *)
type distribution = Uniform | Zipf of float

type t = {
  mix : mix;
  universe : int;
  initial : int;
  distribution : distribution;
  zipf_cdf : float array;  (* cumulative distribution when Zipf *)
}

let build_zipf_cdf ~universe theta =
  if theta <= 0.0 then invalid_arg "Workload: Zipf skew must be positive";
  let weights =
    Array.init universe (fun i -> 1.0 /. (float_of_int (i + 1) ** theta))
  in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let acc = ref 0.0 in
  Array.map
    (fun w ->
      acc := !acc +. (w /. total);
      !acc)
    weights

(* [initial] nodes in a universe of twice that many keys. *)
let make ?(distribution = Uniform) ~mix ~initial () =
  let universe = 2 * initial in
  {
    mix;
    universe;
    initial;
    distribution;
    zipf_cdf =
      (match distribution with
      | Uniform -> [||]
      | Zipf theta -> build_zipf_cdf ~universe theta);
  }

(* Steady-state prefill: the even keys. *)
let prefill_keys t = List.init t.initial (fun i -> 2 * i)

(* Binary search the cumulative table. *)
let zipf_draw t rng =
  let u = Prng.float rng in
  let lo = ref 0 and hi = ref (t.universe - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.zipf_cdf.(mid) >= u then hi := mid else lo := mid + 1
  done;
  (* scatter ranks over the key space so hot keys are not all adjacent *)
  !lo * 0x9e3779b land (t.universe - 1)
  |> fun k -> if k < t.universe then k else k mod t.universe

let next_key t rng =
  match t.distribution with
  | Uniform -> Prng.int rng t.universe
  | Zipf _ -> zipf_draw t rng

let next_op t rng =
  let k = next_key t rng in
  let r = Prng.int rng 100 in
  if r < t.mix.search_pct then Search k
  else if r < t.mix.search_pct + t.mix.insert_pct then Insert k
  else Delete k
