(** Benchmark workloads (paper §5.1): (search, insert, delete) mixes with
    uniform keys over a universe of twice the initial size, so a 1:1
    insert:delete ratio keeps the structure size constant. *)

open Oamem_engine

type mix = { search_pct : int; insert_pct : int; delete_pct : int }

val mix : search:int -> insert:int -> delete:int -> mix
(** Percentages must sum to 100. *)

val update_only : mix
(** 0/50/50 — the paper's "only modifying operations". *)

val balanced : mix
(** 50/25/25 — the paper's "more balanced set". *)

val mix_name : mix -> string

type op = Search of int | Insert of int | Delete of int

type distribution =
  | Uniform  (** the paper's key distribution *)
  | Zipf of float  (** skewed keys with the given theta (library extension) *)

type t = private {
  mix : mix;
  universe : int;
  initial : int;
  distribution : distribution;
  zipf_cdf : float array;
}

val make : ?distribution:distribution -> mix:mix -> initial:int -> unit -> t
val prefill_keys : t -> int list
(** Steady-state prefill: the even keys. *)

val next_key : t -> Prng.t -> int
val next_op : t -> Prng.t -> op
