lib/lockfree/hm_list.ml: Engine List Node Oamem_engine Oamem_reclaim Oamem_vmem Scheme Vmem
