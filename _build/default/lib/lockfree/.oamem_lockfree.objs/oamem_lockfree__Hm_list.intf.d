lib/lockfree/hm_list.mli: Engine Oamem_engine Oamem_reclaim Oamem_vmem Scheme Vmem
