lib/lockfree/michael_hash.ml: Array Hm_list List Node Oamem_lrmalloc Oamem_reclaim Oamem_vmem Scheme Vmem
