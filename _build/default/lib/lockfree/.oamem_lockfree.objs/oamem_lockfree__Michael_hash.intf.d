lib/lockfree/michael_hash.mli: Engine Oamem_engine Oamem_lrmalloc Oamem_reclaim Oamem_vmem Scheme Vmem
