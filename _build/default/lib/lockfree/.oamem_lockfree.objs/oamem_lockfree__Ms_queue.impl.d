lib/lockfree/ms_queue.ml: Engine List Node Oamem_engine Oamem_reclaim Oamem_vmem Scheme Vmem
