lib/lockfree/ms_queue.mli: Engine Oamem_engine Oamem_reclaim Oamem_vmem Scheme Vmem
