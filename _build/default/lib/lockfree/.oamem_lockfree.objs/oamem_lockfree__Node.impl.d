lib/lockfree/node.ml:
