lib/lockfree/node.mli:
