lib/lockfree/treiber_stack.ml: Engine List Node Oamem_engine Oamem_reclaim Oamem_vmem Scheme Vmem
