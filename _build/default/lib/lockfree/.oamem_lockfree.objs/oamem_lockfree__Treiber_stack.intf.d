lib/lockfree/treiber_stack.mli: Engine Oamem_engine Oamem_reclaim Oamem_vmem Scheme Vmem
