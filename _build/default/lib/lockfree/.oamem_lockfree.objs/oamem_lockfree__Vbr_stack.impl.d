lib/lockfree/vbr_stack.ml: Engine List Lrmalloc Node Oamem_engine Oamem_lrmalloc Oamem_vmem Vmem
