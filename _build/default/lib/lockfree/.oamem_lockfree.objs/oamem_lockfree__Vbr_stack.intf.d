lib/lockfree/vbr_stack.mli: Engine Oamem_engine Oamem_lrmalloc
