(** Harris–Michael lock-free ordered list (set of int keys), written against
    the generic reclamation interface so the same code runs under NR, the
    original OA, OA-BIT, OA-VER, hazard pointers and EBR.  Operations retry
    from the head whenever the scheme raises [Restart]. *)

open Oamem_engine
open Oamem_vmem
open Oamem_reclaim

val slots_needed : int
(** Hazard slots per thread the list requires (traversal rotation + write
    window). *)

type t

val create : Engine.ctx -> scheme:Scheme.ops -> vmem:Vmem.t -> t
(** A fresh set (2-word nodes) with its own never-reclaimed head word. *)

val create_kv : Engine.ctx -> scheme:Scheme.ops -> vmem:Vmem.t -> t
(** A fresh key-value map (3-word nodes). *)

val at_head : ?node_words:int -> scheme:Scheme.ops -> vmem:Vmem.t -> int -> t
(** A list living at an externally owned head word (hash-table buckets). *)

val insert : t -> Engine.ctx -> int -> bool
(** [true] if the key was absent. *)

val delete : t -> Engine.ctx -> int -> bool
(** [true] if the key was present (logical deletion is the linearization
    point; physical unlinking is best-effort/helped). *)

val contains : t -> Engine.ctx -> int -> bool
(** Membership, helping unlink marked nodes on the way (Michael's Find). *)

val contains_readonly : t -> Engine.ctx -> int -> bool
(** Membership that never helps: no CAS on the read path. *)

(** {2 Key-value operations} (lists built with {!create_kv}) *)

val insert_kv : t -> Engine.ctx -> int -> int -> bool
(** [insert_kv t ctx key value]: [false] (no change) if the key exists. *)

val lookup : t -> Engine.ctx -> int -> int option
val replace : t -> Engine.ctx -> int -> int -> int option
(** Atomically replace an existing binding's value; returns the previous
    value, or [None] if the key is absent. *)

val build_sorted : t -> Engine.ctx -> int list -> unit
(** Sequential bulk construction for setup/prefill (empty list, one caller). *)

val to_list : t -> int list
(** Uncosted snapshot (quiescent state): keys of unmarked nodes, sorted. *)

val length : t -> int
