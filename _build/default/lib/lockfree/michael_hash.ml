(* Michael's lock-free hash table (SPAA 2002): a fixed array of buckets,
   each an independent Harris–Michael list.

   The bucket array is one large allocation that lives for the lifetime of
   the structure — exactly the pattern §4 of the paper gives for why
   restricting persistent allocation to size-class sizes is acceptable.
   Chains are short (the benchmarks use a 0.75 load factor), which is why
   the warning-mechanism difference between OA-BIT and OA-VER fades on hash
   tables (§5.2). *)

open Oamem_vmem
open Oamem_reclaim

type t = {
  scheme : Scheme.ops;
  vmem : Vmem.t;
  buckets : int;  (* base address of the bucket array *)
  nbuckets : int;
  node_words : int;  (* 2 for sets, 3 for key-value maps *)
}

(* Fibonacci-style multiplicative mixing, good enough to spread dense keys. *)
let hash_key key =
  let h = key * 0x9e3779b97f4a7c1 land max_int in
  h lxor (h lsr 29)

let bucket_head t key = t.buckets + (hash_key key mod t.nbuckets)

let create_sized ctx ~scheme ~vmem ~alloc ~expected_size ~load_factor
    ~node_words =
  if expected_size <= 0 then invalid_arg "Michael_hash.create";
  let nbuckets =
    max 1 (int_of_float (ceil (float_of_int expected_size /. load_factor)))
  in
  (* the bucket array is a plain (usually large) allocation *)
  let buckets = Oamem_lrmalloc.Lrmalloc.malloc alloc ctx nbuckets in
  for b = 0 to nbuckets - 1 do
    Vmem.store vmem ctx (buckets + b) Node.null
  done;
  { scheme; vmem; buckets; nbuckets; node_words }

let create ctx ~scheme ~vmem ~alloc ~expected_size ~load_factor =
  create_sized ctx ~scheme ~vmem ~alloc ~expected_size ~load_factor
    ~node_words:Node.words

let create_kv ctx ~scheme ~vmem ~alloc ~expected_size ~load_factor =
  create_sized ctx ~scheme ~vmem ~alloc ~expected_size ~load_factor
    ~node_words:Node.kv_words

let list_for t key =
  Hm_list.at_head ~node_words:t.node_words ~scheme:t.scheme ~vmem:t.vmem
    (bucket_head t key)

let contains t ctx key = Hm_list.contains (list_for t key) ctx key
let insert t ctx key = Hm_list.insert (list_for t key) ctx key
let delete t ctx key = Hm_list.delete (list_for t key) ctx key
let insert_kv t ctx key value = Hm_list.insert_kv (list_for t key) ctx key value
let lookup t ctx key = Hm_list.lookup (list_for t key) ctx key
let replace t ctx key value = Hm_list.replace (list_for t key) ctx key value

let nbuckets t = t.nbuckets

(* Sequential bulk construction for setup/prefill phases (empty table,
   single caller). *)
let prefill t ctx keys =
  let per_bucket = Array.make t.nbuckets [] in
  List.iter
    (fun k ->
      let b = hash_key k mod t.nbuckets in
      per_bucket.(b) <- k :: per_bucket.(b))
    keys;
  Array.iteri
    (fun b ks ->
      if ks <> [] then
        Hm_list.build_sorted
          (Hm_list.at_head ~scheme:t.scheme ~vmem:t.vmem (t.buckets + b))
          ctx ks)
    per_bucket

(* Uncosted snapshot for tests. *)
let to_list t =
  List.concat
    (List.init t.nbuckets (fun b ->
         Hm_list.to_list
           (Hm_list.at_head ~node_words:t.node_words ~scheme:t.scheme
              ~vmem:t.vmem (t.buckets + b))))

let length t = List.length (to_list t)

(* Longest chain (diagnostics for the load-factor claim). *)
let max_chain t =
  List.fold_left max 0
    (List.init t.nbuckets (fun b ->
         Hm_list.length
           (Hm_list.at_head ~node_words:t.node_words ~scheme:t.scheme
              ~vmem:t.vmem (t.buckets + b))))
