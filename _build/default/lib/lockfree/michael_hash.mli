(** Michael's lock-free hash table (SPAA 2002): a fixed bucket array (one
    large allocation that lives as long as the table, §4 of the paper) of
    independent Harris–Michael lists. *)

open Oamem_engine
open Oamem_vmem
open Oamem_reclaim

type t

val create :
  Engine.ctx ->
  scheme:Scheme.ops ->
  vmem:Vmem.t ->
  alloc:Oamem_lrmalloc.Lrmalloc.t ->
  expected_size:int ->
  load_factor:float ->
  t
(** A hash set (2-word nodes). *)

val create_kv :
  Engine.ctx ->
  scheme:Scheme.ops ->
  vmem:Vmem.t ->
  alloc:Oamem_lrmalloc.Lrmalloc.t ->
  expected_size:int ->
  load_factor:float ->
  t
(** A hash map (3-word nodes); use the [_kv] operations. *)

val insert : t -> Engine.ctx -> int -> bool
val delete : t -> Engine.ctx -> int -> bool
val contains : t -> Engine.ctx -> int -> bool
val insert_kv : t -> Engine.ctx -> int -> int -> bool
val lookup : t -> Engine.ctx -> int -> int option
val replace : t -> Engine.ctx -> int -> int -> int option
val nbuckets : t -> int

val prefill : t -> Engine.ctx -> int list -> unit
(** Sequential bulk construction for setup phases (empty table, one caller). *)

val to_list : t -> int list
(** Uncosted snapshot (quiescent state only). *)

val length : t -> int
val max_chain : t -> int
