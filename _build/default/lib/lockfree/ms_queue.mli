(** Michael & Scott's lock-free FIFO queue over simulated memory, reclaimed
    through the generic scheme interface (dequeue retires the outgoing
    sentinel). *)

open Oamem_engine
open Oamem_vmem
open Oamem_reclaim

type t

val create : Engine.ctx -> scheme:Scheme.ops -> vmem:Vmem.t -> t
val enqueue : t -> Engine.ctx -> int -> unit
val dequeue : t -> Engine.ctx -> int option
val is_empty : t -> Engine.ctx -> bool

val to_list : t -> int list
(** Uncosted snapshot (quiescent state only), front first. *)

val length : t -> int
