(* Node layout and pointer tagging for the lock-free structures.

   A list node is two simulated words: word 0 holds the key, word 1 the next
   pointer.  Block addresses are always even (size classes are even and
   superblocks page-aligned), so bit 0 of a next pointer carries the
   Harris-style logical-deletion mark.

   Word 0 doubles as the allocator's free-list link once the node is freed —
   the optimistic-access contract makes that safe: a reader that sees the
   garbage key is guaranteed to hit a warning check before acting on it. *)

let words = 2
let kv_words = 3
let key_of addr = addr
let next_of addr = addr + 1

(* key-value nodes add a value word after the next pointer *)
let value_of addr = addr + 2

let is_marked v = v land 1 = 1
let mark v = v lor 1
let unmark v = v land lnot 1

let null = 0
