(** Node layout and pointer tagging for the lock-free structures.

    Nodes are two simulated words: word 0 key/value, word 1 next pointer.
    Block addresses are always even, so bit 0 of a next pointer carries the
    Harris-style logical-deletion mark. *)

val words : int
val kv_words : int
val key_of : int -> int
val next_of : int -> int

val value_of : int -> int
(** Value word of a key-value node (3-word layout). *)

val is_marked : int -> bool
val mark : int -> int
val unmark : int -> int
val null : int
