(** Treiber's lock-free stack over simulated memory, reclaimed through the
    generic scheme interface; a minimal exerciser of the ABA protections the
    reclamation contract provides. *)

open Oamem_engine
open Oamem_vmem
open Oamem_reclaim

type t

val create : Engine.ctx -> scheme:Scheme.ops -> vmem:Vmem.t -> t
val push : t -> Engine.ctx -> int -> unit
val pop : t -> Engine.ctx -> int option
val is_empty : t -> Engine.ctx -> bool

val to_list : t -> int list
(** Uncosted snapshot (quiescent state only), top first. *)

val length : t -> int
