(** Version-based-reclamation Treiber stack (the paper's §6 future work):
    a versioned top pointer updated by double-width CAS over [palloc]'d
    nodes, so popped nodes are freed *immediately* — no pools, no limbo, no
    warnings.  Simulation-engine only (DWCAS atomicity). *)

open Oamem_engine

type t

val create : Engine.ctx -> alloc:Oamem_lrmalloc.Lrmalloc.t -> t
val push : t -> Engine.ctx -> int -> unit
val pop : t -> Engine.ctx -> int option
val is_empty : t -> Engine.ctx -> bool

val immediate_frees : t -> int
(** Nodes freed with zero grace period so far. *)

val to_list : t -> int list
(** Uncosted snapshot (quiescent state only), top first. *)

val length : t -> int
