lib/lrmalloc/config.ml: Fmt Oamem_engine
