lib/lrmalloc/config.mli: Format Oamem_engine
