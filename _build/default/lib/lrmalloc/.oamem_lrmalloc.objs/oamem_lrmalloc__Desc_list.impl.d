lib/lrmalloc/desc_list.ml: Cell Descriptor Engine List Oamem_engine
