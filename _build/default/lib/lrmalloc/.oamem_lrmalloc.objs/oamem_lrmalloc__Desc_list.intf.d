lib/lrmalloc/desc_list.mli: Cell Descriptor Engine Oamem_engine
