lib/lrmalloc/descriptor.ml: Cell Fmt Oamem_engine
