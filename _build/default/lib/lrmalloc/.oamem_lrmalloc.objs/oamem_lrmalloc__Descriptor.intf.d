lib/lrmalloc/descriptor.mli: Cell Engine Format Oamem_engine
