lib/lrmalloc/heap.ml: Array Cell Config Desc_list Descriptor Engine Geometry List Mutex Oamem_engine Oamem_vmem Option Page_table Pagemap Size_class Vmem
