lib/lrmalloc/heap.mli: Cell Config Descriptor Engine Oamem_engine Oamem_vmem Pagemap Size_class Vmem
