lib/lrmalloc/lrmalloc.ml: Config Descriptor Engine Geometry Heap List Oamem_engine Oamem_vmem Size_class Thread_cache Vmem
