lib/lrmalloc/lrmalloc.mli: Cell Config Engine Heap Oamem_engine Oamem_vmem Size_class Vmem
