lib/lrmalloc/pagemap.ml: Array Atomic Engine Geometry Oamem_engine
