lib/lrmalloc/pagemap.mli: Engine Geometry Oamem_engine
