lib/lrmalloc/size_class.ml: Array Fmt List
