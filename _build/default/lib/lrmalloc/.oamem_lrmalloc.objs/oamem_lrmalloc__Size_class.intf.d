lib/lrmalloc/size_class.mli: Format
