lib/lrmalloc/thread_cache.ml: Array Cell Config Engine Fun Geometry List Oamem_engine Size_class
