lib/lrmalloc/thread_cache.mli: Cell Config Engine Geometry Oamem_engine Size_class
