(** Lock-free Treiber stack of descriptors with a tagged head (ABA-safe).
    Used for partial lists and the two descriptor recycling pools. *)

open Oamem_engine

type t

val create : Cell.heap -> get:(int -> Descriptor.t) -> t
(** [get] resolves descriptor ids (the registry lookup). *)

val push : t -> Engine.ctx -> Descriptor.t -> unit
val pop : t -> Engine.ctx -> Descriptor.t option
val is_empty : Engine.ctx -> t -> bool

val peek_ids : t -> int list
(** Uncosted traversal (tests, metrics). *)
