(* LRMalloc public interface: malloc / free / palloc (paper §2.3 + §3).

   [palloc] is the paper's contribution: it allocates exactly like [malloc]
   but marks the superblock persistent, guaranteeing the block's address
   range stays readable for the rest of the process lifetime even after the
   block is freed — precisely the contract the optimistic-access reclaimers
   need.  Persistent allocation is restricted to size-class sizes (§4).

   Persistent and regular blocks never share a superblock (a palloc'd block
   must come from a persistent superblock even when served from a cache), so
   thread caches and partial lists are keyed by (class, persistence).  Freed
   persistent blocks are reusable by *any* thread and any future [palloc] of
   that class — the cross-process-part reuse the paper gains over the
   original OA recycling pools. *)

open Oamem_engine
open Oamem_vmem

type t = {
  heap : Heap.t;
  caches : Thread_cache.t;
  classes : Size_class.t;
  geom : Geometry.t;
}

let create ?(cfg = Config.default) ?(classes = Size_class.default) ~vmem ~meta
    ~nthreads () =
  let geom = Vmem.geometry vmem in
  let heap = Heap.create ~cfg ~classes ~vmem ~meta () in
  let caches = Thread_cache.create ~meta ~geom ~classes ~cfg ~nthreads in
  { heap; caches; classes; geom }

let heap t = t.heap
let vmem t = Heap.vmem t.heap
let config t = Heap.config t.heap

(* Fill an empty cache stack with one batch of blocks: from a partial
   superblock's free list if one exists, otherwise from a fresh superblock.
   Blocks are pushed in reverse so they pop in the order the heap returned
   them (ascending addresses for a fresh superblock — good locality). *)
let fill_cache t ctx ~cls ~persistent st =
  let batch = Heap.fill_batch t.heap cls in
  let blocks =
    match Heap.take_partial t.heap ctx ~cls ~persistent ~max_blocks:batch with
    | Some blocks -> blocks
    | None ->
        let _d, blocks = Heap.acquire_superblock t.heap ctx ~cls ~persistent in
        blocks
  in
  List.iter
    (fun addr -> Thread_cache.push t.caches ctx st addr)
    (List.rev blocks)

let alloc_class t ctx ~cls ~persistent =
  let st = Thread_cache.get t.caches ~tid:ctx.Engine.tid ~cls ~persistent in
  match Thread_cache.pop t.caches ctx st with
  | Some addr -> addr
  | None ->
      fill_cache t ctx ~cls ~persistent st;
      (match Thread_cache.pop t.caches ctx st with
      | Some addr -> addr
      | None -> assert false)

let malloc t ctx size =
  match Size_class.of_size t.classes size with
  | Some cls -> alloc_class t ctx ~cls ~persistent:false
  | None -> Heap.alloc_large t.heap ctx size

(* Persistent allocation: the block's address range survives free (§3). *)
let palloc t ctx size =
  match Size_class.of_size t.classes size with
  | Some cls -> alloc_class t ctx ~cls ~persistent:true
  | None ->
      invalid_arg
        "Lrmalloc.palloc: persistent allocation is restricted to size-class \
         sizes (paper, section 4)"

let flush_stack t ctx st =
  Thread_cache.drain t.caches ctx st (fun addr ->
      match Heap.lookup_desc t.heap ctx addr with
      | Some d -> Heap.free_block t.heap ctx d addr
      | None -> assert false)

let free t ctx addr =
  match Heap.lookup_desc t.heap ctx addr with
  | None -> invalid_arg "Lrmalloc.free: not an allocated block"
  | Some d ->
      if Descriptor.is_large d then Heap.free_large t.heap ctx d
      else begin
        let st =
          Thread_cache.get t.caches ~tid:ctx.Engine.tid
            ~cls:d.Descriptor.size_class ~persistent:d.Descriptor.persistent
        in
        if Thread_cache.is_full st then flush_stack t ctx st;
        Thread_cache.push t.caches ctx st addr
      end

(* Return every cached block of thread [tid] to the heap. *)
let flush_thread_cache t ctx =
  List.iter (flush_stack t ctx)
    (Thread_cache.stacks_of_thread t.caches ~tid:ctx.Engine.tid)

(* Teardown helper: flush all threads' caches (with their own tids encoded
   in the given contexts) and release lingering empty superblocks. *)
let flush_all t ctxs =
  List.iter (fun ctx -> flush_thread_cache t ctx) ctxs;
  match ctxs with [] -> () | ctx :: _ -> Heap.trim t.heap ctx

let stats t = Heap.stats t.heap
let usage t = Vmem.usage (Heap.vmem t.heap)
