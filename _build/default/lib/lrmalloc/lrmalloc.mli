(** LRMalloc public interface: [malloc] / [free] / [palloc].

    [palloc] is the paper's contribution (§3): it allocates exactly like
    [malloc] but from superblocks marked *persistent*, guaranteeing that the
    block's address range stays readable for the rest of the process
    lifetime even after the block is freed — the contract optimistic-access
    reclamation needs.  Freed persistent blocks are reusable by any thread
    and any future [palloc]; their physical frames are released according to
    the configured {!Config.remap_strategy}.

    Persistent allocation is restricted to size-class sizes (§4). *)

open Oamem_engine
open Oamem_vmem

type t

val create :
  ?cfg:Config.t ->
  ?classes:Size_class.t ->
  vmem:Vmem.t ->
  meta:Cell.heap ->
  nthreads:int ->
  unit ->
  t

val heap : t -> Heap.t
val vmem : t -> Vmem.t
val config : t -> Config.t

val malloc : t -> Engine.ctx -> int -> int
(** Allocate [size] words; sizes above the largest class use the
    large-allocation path (§4). *)

val palloc : t -> Engine.ctx -> int -> int
(** Persistent allocation (§3).  Raises [Invalid_argument] for sizes above
    the largest size class. *)

val free : t -> Engine.ctx -> int -> unit
(** Return a block.  Raises [Invalid_argument] for unknown addresses. *)

val flush_thread_cache : t -> Engine.ctx -> unit
(** Return every block cached by the calling thread to the heap. *)

val flush_all : t -> Engine.ctx list -> unit
(** Teardown helper: flush the given threads' caches (each ctx carries its
    tid) and release lingering empty superblocks. *)

val stats : t -> Heap.stats
val usage : t -> Vmem.usage
