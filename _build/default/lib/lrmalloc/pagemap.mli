(** The pagemap: page -> owning descriptor (paper §2.3).  Lookups and
    updates are charged to the cost model at synthetic metadata addresses. *)

open Oamem_engine

type t

val create : geom:Geometry.t -> max_pages:int -> t
val set_range : t -> Engine.ctx -> vpage:int -> npages:int -> desc_id:int -> unit
val clear_range : t -> Engine.ctx -> vpage:int -> npages:int -> unit

val lookup : t -> Engine.ctx -> int -> int option
(** Descriptor id owning the page of [addr]. *)

val peek : t -> int -> int option
(** Uncosted lookup (tests, assertions). *)
