(* Size classes (paper §2.2, §4).

   Allocation requests up to [max_size] words are rounded up to the nearest
   class; larger requests bypass the class machinery entirely (handled by
   the allocator's large-allocation path).  All class sizes are even so that
   every block address is even, leaving bit 0 of any pointer free for the
   mark bits lock-free data structures need.

   The default table spans 2..2048 words — with 8-byte words that is
   16 bytes to 16 KiB, matching LRMalloc's published class range. *)

type t = { sizes : int array }

let make sizes =
  let sizes = Array.of_list (List.sort_uniq compare sizes) in
  if Array.length sizes = 0 then invalid_arg "Size_class.make: empty";
  Array.iter
    (fun s ->
      if s < 2 || s land 1 <> 0 then
        invalid_arg "Size_class.make: sizes must be even and >= 2")
    sizes;
  { sizes }

let default =
  make
    [ 2; 4; 8; 12; 16; 24; 32; 48; 64; 96; 128; 192; 256; 384; 512; 768;
      1024; 1536; 2048 ]

let count t = Array.length t.sizes
let block_words t cls = t.sizes.(cls)
let max_size t = t.sizes.(Array.length t.sizes - 1)

(* Smallest class whose block size covers [size]; None for large requests.
   Binary search over the (small, sorted) table. *)
let of_size t size =
  if size <= 0 then invalid_arg "Size_class.of_size: size must be positive";
  if size > max_size t then None
  else begin
    let lo = ref 0 and hi = ref (Array.length t.sizes - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.sizes.(mid) >= size then hi := mid else lo := mid + 1
    done;
    Some !lo
  end

let blocks_per_superblock t ~sb_words cls =
  let bw = block_words t cls in
  let n = sb_words / bw in
  if n < 1 then invalid_arg "Size_class: superblock smaller than block";
  n

let pp ppf t =
  Fmt.pf ppf "classes[%a]" Fmt.(array ~sep:(any ";") int) t.sizes
