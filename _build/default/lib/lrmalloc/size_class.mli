(** Size classes: requests round up to the nearest class; larger requests go
    to the large-allocation path.  All sizes are even so block addresses keep
    bit 0 free for pointer marks. *)

type t

val make : int list -> t
(** Sizes must be even and at least 2; duplicates are removed. *)

val default : t
(** 2..2048 words (16 B .. 16 KiB at 8-byte words), LRMalloc's range. *)

val count : t -> int
val block_words : t -> int -> int
val max_size : t -> int

val of_size : t -> int -> int option
(** Smallest covering class, or [None] for large requests. *)

val blocks_per_superblock : t -> sb_words:int -> int -> int
val pp : Format.formatter -> t -> unit
