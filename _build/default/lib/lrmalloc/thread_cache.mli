(** Per-thread block caches (paper §2.3): one stack of free block addresses
    per (size class, persistence) pair, so malloc/palloc/free fast paths
    need no synchronisation.  Stacks are backed by simulated addresses so
    their footprint is visible to the cache model. *)

open Oamem_engine

type stack
type t

val create :
  meta:Cell.heap ->
  geom:Geometry.t ->
  classes:Size_class.t ->
  cfg:Config.t ->
  nthreads:int ->
  t

val capacity : t -> int -> int
val get : t -> tid:int -> cls:int -> persistent:bool -> stack
val is_full : stack -> bool
val size : stack -> int
val push : t -> Engine.ctx -> stack -> int -> unit
val pop : t -> Engine.ctx -> stack -> int option
val drain : t -> Engine.ctx -> stack -> (int -> unit) -> unit
val stacks_of_thread : t -> tid:int -> stack list
val nthreads : t -> int
