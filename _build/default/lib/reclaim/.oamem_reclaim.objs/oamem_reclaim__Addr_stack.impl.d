lib/reclaim/addr_stack.ml: Cell Engine Oamem_engine Oamem_vmem Vmem
