lib/reclaim/addr_stack.mli: Cell Engine Oamem_engine Oamem_vmem Vmem
