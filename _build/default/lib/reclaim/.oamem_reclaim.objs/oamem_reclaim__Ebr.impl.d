lib/reclaim/ebr.ml: Array Cell Engine Limbo Oamem_engine Oamem_lrmalloc Oamem_vmem Scheme
