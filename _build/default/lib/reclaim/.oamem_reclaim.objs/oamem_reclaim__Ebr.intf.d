lib/reclaim/ebr.mli: Cell Oamem_engine Oamem_lrmalloc Scheme
