lib/reclaim/hazard_slots.ml: Array Cell Engine List Oamem_engine
