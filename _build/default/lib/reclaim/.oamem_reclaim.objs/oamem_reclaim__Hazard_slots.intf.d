lib/reclaim/hazard_slots.mli: Cell Engine Oamem_engine
