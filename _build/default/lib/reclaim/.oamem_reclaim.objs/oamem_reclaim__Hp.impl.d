lib/reclaim/hp.ml: Array Engine Hazard_slots Limbo Oamem_engine Oamem_lrmalloc Oamem_vmem Scheme
