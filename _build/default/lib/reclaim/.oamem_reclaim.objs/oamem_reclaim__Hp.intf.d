lib/reclaim/hp.mli: Cell Oamem_engine Oamem_lrmalloc Scheme
