lib/reclaim/ibr.ml: Array Cell Engine Limbo List Oamem_engine Oamem_lrmalloc Oamem_vmem Scheme Vmem
