lib/reclaim/ibr.mli: Cell Oamem_engine Oamem_lrmalloc Scheme
