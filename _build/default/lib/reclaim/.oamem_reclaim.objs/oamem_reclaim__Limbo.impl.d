lib/reclaim/limbo.ml: Array Cell Engine Geometry Oamem_engine
