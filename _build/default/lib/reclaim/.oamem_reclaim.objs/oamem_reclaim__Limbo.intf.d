lib/reclaim/limbo.mli: Cell Engine Geometry Oamem_engine
