lib/reclaim/nr.ml: Cell Oamem_engine Oamem_lrmalloc Scheme
