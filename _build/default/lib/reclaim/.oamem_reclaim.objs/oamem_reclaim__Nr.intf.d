lib/reclaim/nr.mli: Cell Oamem_engine Oamem_lrmalloc Scheme
