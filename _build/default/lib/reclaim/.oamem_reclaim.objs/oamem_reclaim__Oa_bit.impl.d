lib/reclaim/oa_bit.ml: Array Cell Engine Hazard_slots Limbo Oamem_engine Oamem_lrmalloc Oamem_vmem Scheme
