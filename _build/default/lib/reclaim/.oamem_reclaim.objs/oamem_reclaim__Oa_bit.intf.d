lib/reclaim/oa_bit.mli: Cell Oamem_engine Oamem_lrmalloc Scheme
