lib/reclaim/oa_orig.ml: Addr_stack Array Cell Engine Hazard_slots Oamem_engine Oamem_lrmalloc Scheme
