lib/reclaim/oa_orig.mli: Cell Oamem_engine Oamem_lrmalloc Scheme
