lib/reclaim/oa_ver.mli: Cell Oamem_engine Oamem_lrmalloc Scheme
