lib/reclaim/registry.ml: Cell Ebr Hp Ibr List Nr Oa_bit Oa_orig Oa_ver Oamem_engine Oamem_lrmalloc Printf Scheme String
