lib/reclaim/registry.mli: Cell Oamem_engine Oamem_lrmalloc Scheme
