lib/reclaim/scheme.ml: Engine Fmt Oamem_engine
