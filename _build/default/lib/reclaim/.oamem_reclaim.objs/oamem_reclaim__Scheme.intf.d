lib/reclaim/scheme.mli: Engine Format Oamem_engine
