lib/reclaim/vbr_probe.ml: Fmt List Oamem_vmem Vmem
