lib/reclaim/vbr_probe.mli: Engine Format Oamem_engine Oamem_vmem Vmem
