(** Lock-free Treiber stack of node addresses linked through the nodes
    themselves; the original OA method's shared recycling pools. *)

open Oamem_engine
open Oamem_vmem

type t

val create : Cell.heap -> Vmem.t -> t
val push : t -> Engine.ctx -> int -> unit
val pop : t -> Engine.ctx -> int option

val take_all : t -> Engine.ctx -> int
(** Detach the whole stack; returns the chain head (0 if empty). *)

val iter_chain : t -> Engine.ctx -> int -> (int -> unit) -> unit
(** Walk a detached chain (exclusive access). *)

val is_empty : t -> bool
val peek_length : t -> int
