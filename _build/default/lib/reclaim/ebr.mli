(** Reclamation scheme: epoch-based reclamation. *)

open Oamem_engine

val make :
  Scheme.config ->
  alloc:Oamem_lrmalloc.Lrmalloc.t ->
  meta:Cell.heap ->
  nthreads:int ->
  Scheme.ops
