(** Per-thread hazard-pointer slots (optionally cache-line padded). *)

open Oamem_engine

type t

val create : ?padded:bool -> Cell.heap -> nthreads:int -> k:int -> t
val set : Engine.ctx -> t -> slot:int -> int -> unit
val clear : Engine.ctx -> t -> unit

val snapshot : Engine.ctx -> t -> int list
(** Read every thread's slots (charged); sorted non-zero values. *)

val protects : int list -> int -> bool
val peek_thread : t -> tid:int -> int array
