(** Reclamation scheme: classic hazard pointers (Michael 2004). *)

open Oamem_engine

val make :
  Scheme.config ->
  alloc:Oamem_lrmalloc.Lrmalloc.t ->
  meta:Cell.heap ->
  nthreads:int ->
  Scheme.ops
