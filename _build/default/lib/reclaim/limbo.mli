(** Per-thread limbo list of retired nodes awaiting reclamation, backed by a
    simulated address range so its footprint is visible to the cache model. *)

open Oamem_engine

type t

val create : Cell.heap -> geom:Geometry.t -> capacity_hint:int -> t
val size : t -> int
val add : t -> Engine.ctx -> int -> unit

val sweep :
  t -> Engine.ctx -> protected:(int -> bool) -> free:(int -> unit) -> int
(** Free every unprotected node; returns how many were freed. *)

val to_list : t -> int list
