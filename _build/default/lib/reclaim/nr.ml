(* NR — no reclamation (paper §5 baseline).

   Memory is never reclaimed, reused or freed; allocation goes through the
   regular malloc path.  All validation hooks are no-ops. *)

open Oamem_engine

let make (_cfg : Scheme.config) ~alloc:(lr : Oamem_lrmalloc.Lrmalloc.t)
    ~meta:(_ : Cell.heap) ~nthreads:(_ : int) : Scheme.ops =
  let stats = Scheme.fresh_stats () in
  {
    Scheme.name = "nr";
    alloc = (fun ctx size -> Oamem_lrmalloc.Lrmalloc.malloc lr ctx size);
    retire =
      (fun _ctx _addr ->
        (* leak, deliberately *)
        stats.Scheme.retired <- stats.Scheme.retired + 1);
    cancel = (fun _ctx _addr -> ());
    begin_op = (fun _ -> ());
    end_op = (fun _ -> ());
    read_check = (fun _ -> ());
    traverse_protect = (fun _ctx ~slot:_ ~addr:_ ~verify:_ -> ());
    write_protect = (fun _ctx ~slot:_ _ -> ());
    validate = (fun _ -> ());
    clear = (fun _ -> ());
    flush = (fun _ -> ());
    stats;
  }
