(** Reclamation scheme: OA-BIT (Algorithm 1: per-thread warning bits over palloc). *)

open Oamem_engine

val make :
  Scheme.config ->
  alloc:Oamem_lrmalloc.Lrmalloc.t ->
  meta:Cell.heap ->
  nthreads:int ->
  Scheme.ops
