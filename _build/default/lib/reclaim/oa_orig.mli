(** Reclamation scheme: the original OA method with fixed recycling pools (Cohen & Petrank 2015). *)

open Oamem_engine

val make :
  Scheme.config ->
  alloc:Oamem_lrmalloc.Lrmalloc.t ->
  meta:Cell.heap ->
  nthreads:int ->
  Scheme.ops
