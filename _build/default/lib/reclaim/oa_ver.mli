(** Reclamation scheme: OA-VER (Algorithm 2: global monotonic clock with piggy-backing). *)

open Oamem_engine

val make :
  Scheme.config ->
  alloc:Oamem_lrmalloc.Lrmalloc.t ->
  meta:Cell.heap ->
  nthreads:int ->
  Scheme.ops
