(** Name -> reclamation-scheme factory. *)

open Oamem_engine

type factory =
  Scheme.config ->
  alloc:Oamem_lrmalloc.Lrmalloc.t ->
  meta:Cell.heap ->
  nthreads:int ->
  Scheme.ops

val all : (string * factory) list
val names : string list

val find : string -> factory
(** Raises [Invalid_argument] for unknown names. *)

val paper_methods : string list
(** [nr; oa; oa-bit; oa-ver] — the four methods of the paper's §5. *)
