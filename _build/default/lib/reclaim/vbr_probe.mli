(** VBR-style tagged-pointer DWCAS probe (paper §3.2 footnote 2): hammer a
    released range with guaranteed-to-fail DWCAS operations and report the
    frames faulted in — the madvise-method leak the shared-mapping method
    avoids. *)

open Oamem_engine
open Oamem_vmem

type result = {
  attempts : int;
  succeeded : int;  (** must stay 0: the tags guarantee failure *)
  frames_before : int;
  frames_after : int;
  frames_leaked : int;
  cow_cas_faults : int;
}

val impossible_tag : int
val run : Vmem.t -> Engine.ctx -> addrs:int list -> result
val pp_result : Format.formatter -> result -> unit
