lib/vmem/frames.ml: Array Atomic Geometry Mutex Oamem_engine
