lib/vmem/frames.mli: Atomic Geometry Oamem_engine
