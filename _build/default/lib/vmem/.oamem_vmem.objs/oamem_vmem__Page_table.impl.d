lib/vmem/page_table.ml: Array Atomic Fmt
