lib/vmem/page_table.mli: Format
