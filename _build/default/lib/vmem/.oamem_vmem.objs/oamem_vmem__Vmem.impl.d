lib/vmem/vmem.ml: Array Atomic Engine Fmt Frames Geometry Oamem_engine Page_table
