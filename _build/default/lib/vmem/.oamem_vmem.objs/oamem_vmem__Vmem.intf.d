lib/vmem/vmem.mli: Engine Format Frames Geometry Oamem_engine Page_table
