test/test_engine.ml: Alcotest Array Cache Cell Cost_model Engine Fun Geometry Hierarchy List Oamem_engine Printf Prng QCheck QCheck_alcotest Tlb
