test/test_explore.ml: Alcotest Engine Explore Geometry Hm_list List Oamem_core Oamem_engine Oamem_lockfree Oamem_reclaim Oamem_vmem Printf Scheme String System Vmem
