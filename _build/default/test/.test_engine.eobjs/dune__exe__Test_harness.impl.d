test/test_harness.ml: Alcotest Experiments Filename Hashtbl List Oamem_engine Oamem_harness Oamem_reclaim Option Prng Report Runner String Sys Unix Workload
