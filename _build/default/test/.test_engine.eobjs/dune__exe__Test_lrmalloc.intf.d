test/test_lrmalloc.mli:
