test/test_vmem.ml: Alcotest Atomic Engine Frames Geometry Hashtbl List Oamem_engine Oamem_vmem Page_table QCheck QCheck_alcotest Vmem
