(* Benchmark entry point.

   Part 1 — Bechamel micro-benchmarks (wall-clock cost of the simulator's
   own primitives, one [Test.make] per table below).  These measure the
   *host-level* speed of the simulation substrate; the paper's simulated
   results come from Part 2.

   Part 2 — the full paper reproduction: every table and figure of the
   evaluation (Figs. 4, 5, 6, the §5.1 remap-strategy claim, the §3.2
   memory-release mechanics, the footnote-2 DWCAS leak, the §2.4 cost
   micro-validation) plus the ablations documented in DESIGN.md, all in
   simulated cycles via the experiment registry.

   Sizes are scaled for wall-clock time (see DESIGN.md / EXPERIMENTS.md);
   `bin/repro run <fig> --full` reruns any figure at paper scale. *)

open Bechamel
open Toolkit
open Oamem_engine
open Oamem_vmem
open Oamem_harness

(* --- Part 1: bechamel micro-benchmarks -------------------------------------- *)

let geom = Geometry.default

let test_prng =
  Test.make ~name:"prng/next"
    (Staged.stage
       (let r = Prng.create 1 in
        fun () -> ignore (Prng.next r)))

let test_cache_hit =
  Test.make ~name:"cache/l1-hit"
    (Staged.stage
       (let c = Cache.create ~name:"l1" ~sets:64 ~ways:4 in
        ignore (Cache.access c 42);
        fun () -> ignore (Cache.access c 42)))

let test_hierarchy_access =
  Test.make ~name:"hierarchy/access"
    (Staged.stage
       (let h =
          Hierarchy.create ~cost:Cost_model.opteron_6274 ~nthreads:4 ()
        in
        let i = ref 0 in
        fun () ->
          incr i;
          ignore (Hierarchy.access h ~tid:(!i land 3) ~kind:Hierarchy.Load (!i land 1023))))

let test_vmem_load =
  Test.make ~name:"vmem/load"
    (Staged.stage
       (let vm = Vmem.create ~max_pages:1024 geom in
        let ctx = Engine.external_ctx () in
        let addr = Vmem.reserve vm ~npages:1 in
        Vmem.map_anon vm ctx ~vpage:(Geometry.page_of_addr geom addr) ~npages:1;
        Vmem.store vm ctx addr 1;
        fun () -> ignore (Vmem.load vm ctx addr)))

let test_vmem_cas =
  Test.make ~name:"vmem/cas"
    (Staged.stage
       (let vm = Vmem.create ~max_pages:1024 geom in
        let ctx = Engine.external_ctx () in
        let addr = Vmem.reserve vm ~npages:1 in
        Vmem.map_anon vm ctx ~vpage:(Geometry.page_of_addr geom addr) ~npages:1;
        Vmem.store vm ctx addr 0;
        fun () -> ignore (Vmem.cas vm ctx addr ~expect:0 ~desired:0)))

let test_malloc_free =
  Test.make ~name:"lrmalloc/malloc+free"
    (Staged.stage
       (let vm = Vmem.create ~max_pages:65536 geom in
        let meta = Cell.heap geom in
        let a =
          Oamem_lrmalloc.Lrmalloc.create ~vmem:vm ~meta ~nthreads:1 ()
        in
        let ctx = Engine.external_ctx () in
        fun () ->
          let b = Oamem_lrmalloc.Lrmalloc.malloc a ctx 2 in
          Oamem_lrmalloc.Lrmalloc.free a ctx b))

let test_engine_step =
  Test.make ~name:"engine/create+200-accesses"
    (Staged.stage (fun () ->
         let eng = Engine.create ~nthreads:2 () in
         for tid = 0 to 1 do
           Engine.spawn eng ~tid (fun ctx ->
               for i = 0 to 99 do
                 Engine.Mem.access ctx ~vpage:(-1) ~paddr:(i land 63)
                   ~kind:Engine.Load
               done)
         done;
         Engine.run eng))

let run_bechamel () =
  let tests =
    [
      test_prng;
      test_cache_hit;
      test_hierarchy_access;
      test_vmem_load;
      test_vmem_cas;
      test_malloc_free;
      test_engine_step;
    ]
  in
  let benchmark test =
    let instances = Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.3) () in
    Benchmark.all cfg instances test
  in
  let analyze results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    Analyze.all ols Instance.monotonic_clock results
  in
  Printf.printf "\n== host-level micro-benchmarks (bechamel, wall clock) ==\n";
  Printf.printf "%-26s %14s\n" "benchmark" "ns/op";
  Printf.printf "%s\n" (String.make 42 '-');
  List.iter
    (fun test ->
      let results = analyze (benchmark (Test.make_grouped ~name:"g" [ test ])) in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "%-26s %14.1f\n" name est
          | _ -> Printf.printf "%-26s %14s\n" name "-")
        results)
    tests;
  Printf.printf "%!"

(* --- Part 2: machine-readable metrics dump (BENCH_*.json) -------------------- *)

(* `bench --metrics-only [--out PATH]` runs a small E1-style sweep (hash set,
   update-only) and writes one JSON document per run with the full metrics
   snapshot — the regression-tracking baseline CI archives as BENCH_E1.json.
   `bench --profile` additionally enables the cycle-attribution profiler and
   embeds each run's profile (spans, op latencies, hot addresses) in the
   document, which is what `bin/perfgate` gates p99 latency on. *)

module Json = Oamem_obs.Json
module Export = Oamem_obs.Export

let run_metrics_dump ~profile ~out =
  (* the paper's four methods, the epoch pair the relative gate compares
     (DEBRA's no-fault throughput must track EBR's), and IMR for the
     warn-only imr:oa-bit gate *)
  let schemes =
    Oamem_reclaim.Registry.paper_methods @ [ "ebr"; "debra"; "imr" ]
  in
  let threads = [ 1; 4 ] in
  let results =
    List.concat_map
      (fun scheme ->
        List.map
          (fun t ->
            let r =
              Runner.run
                {
                  Runner.default_spec with
                  Runner.scheme;
                  threads = t;
                  structure = Runner.Hash_set;
                  workload =
                    Workload.make ~mix:Workload.update_only ~initial:1_000 ();
                  horizon_cycles = 100_000;
                  profile;
                }
            in
            Json.Obj
              ([
                 ("scheme", Json.String scheme);
                 ("threads", Json.Int t);
                 ("throughput_mops", Json.Float r.Runner.throughput_mops);
                 ("host_steps", Json.Int r.Runner.host_steps);
                 ( "host_steps_per_sec",
                   Json.Float r.Runner.host_steps_per_sec );
                 ("metrics", Export.metrics_json r.Runner.metrics);
               ]
              @
              if profile then
                [ ("profile", Export.profile_json r.Runner.profile) ]
              else []))
          threads)
      schemes
  in
  let doc =
    Json.Obj
      [
        ("experiment", Json.String "E1");
        ("structure", Json.String "hash-set");
        ("results", Json.List results);
      ]
  in
  let oc = open_out out in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s (%d runs)\n%!" out (List.length results)

(* --- Part 2b: host-throughput report (BENCH_HOST.json) ----------------------- *)

(* `bench --host-throughput [--smoke] [--out PATH]` runs the E1 sweep twice
   per configuration — fused fast path vs. pre-fusion slow path — at a
   longer horizon for stable host timing, and reports simulated steps per
   host-second for both, the speedup, and whether the simulated results
   (throughput + full metrics snapshot) were identical.  Any non-identical
   pair makes the run exit nonzero: sim-identity is a correctness
   invariant, not a perf number.  [--smoke] shrinks the matrix and horizon
   to a PR-sized differential (host numbers are then meaningless; only the
   identity check is the point).  The fused numbers feed Perfgate's
   host_steps_per_sec dimension (warn-only in CI). *)

let run_host_throughput ~smoke ~out =
  let schemes =
    if smoke then [ "nr"; "oa-ver" ] else Oamem_reclaim.Registry.paper_methods
  in
  let threads = [ 1; 4 ] in
  let spec scheme t fused =
    {
      Runner.default_spec with
      Runner.scheme;
      threads = t;
      structure = Runner.Hash_set;
      workload = Workload.make ~mix:Workload.update_only ~initial:1_000 ();
      horizon_cycles = (if smoke then 400_000 else 2_000_000);
      fused;
    }
  in
  Printf.printf "%-7s %3s  %14s %14s %8s  %s\n" "scheme" "T" "fused-steps/s"
    "slow-steps/s" "speedup" "sim-identical";
  Printf.printf "%s\n" (String.make 70 '-');
  let entries =
    List.concat_map
      (fun scheme ->
        List.map
          (fun t ->
            let fused = Runner.run (spec scheme t true) in
            let slow = Runner.run (spec scheme t false) in
            (* same seed, same workload: the two paths must simulate the
               same execution down to every counter *)
            let identical =
              fused.Runner.throughput_mops = slow.Runner.throughput_mops
              && fused.Runner.ops = slow.Runner.ops
              && fused.Runner.host_steps = slow.Runner.host_steps
              && Json.to_string (Export.metrics_json fused.Runner.metrics)
                 = Json.to_string (Export.metrics_json slow.Runner.metrics)
            in
            let speedup =
              if slow.Runner.host_steps_per_sec > 0. then
                fused.Runner.host_steps_per_sec
                /. slow.Runner.host_steps_per_sec
              else 0.
            in
            Printf.printf "%-7s %3d  %14.0f %14.0f %7.2fx  %b\n%!" scheme t
              fused.Runner.host_steps_per_sec slow.Runner.host_steps_per_sec
              speedup identical;
            Json.Obj
              [
                ("scheme", Json.String scheme);
                ("threads", Json.Int t);
                (* simulated throughput, so perfgate can key and sanity-check
                   the document like any BENCH_E1-style dump *)
                ("throughput_mops", Json.Float fused.Runner.throughput_mops);
                ("host_steps", Json.Int fused.Runner.host_steps);
                ( "host_steps_per_sec",
                  Json.Float fused.Runner.host_steps_per_sec );
                ( "host_steps_per_sec_unfused",
                  Json.Float slow.Runner.host_steps_per_sec );
                ("speedup", Json.Float speedup);
                ("sim_identical", Json.Bool identical);
              ])
          threads)
      schemes
  in
  let mean_speedup =
    let sp =
      List.map
        (fun e -> match Json.member "speedup" e with
          | Json.Float f -> f
          | _ -> 0.)
        entries
    in
    List.fold_left ( +. ) 0. sp /. float_of_int (List.length sp)
  in
  Printf.printf "%s\nmean speedup: %.2fx\n%!" (String.make 70 '-') mean_speedup;
  let doc =
    Json.Obj
      [
        ("experiment", Json.String "host-throughput");
        ("structure", Json.String "hash-set");
        ("results", Json.List entries);
      ]
  in
  let oc = open_out out in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s (%d configs)\n%!" out (List.length entries);
  let broken =
    List.filter
      (fun e -> Json.member "sim_identical" e <> Json.Bool true)
      entries
  in
  if broken <> [] then begin
    Printf.eprintf
      "host-throughput: %d config(s) with sim_identical=false — the fused \
       path diverged from the slow path\n\
       %!"
      (List.length broken);
    exit 1
  end

(* --- Part 2b': service scenario dump (BENCH_SERVICE.json) --------------------- *)

(* `bench --service [--out PATH]` runs the E14 service scenario (Zipfian
   session store, four scripted phases ending in a memory-pressure wave)
   once per scheme and writes a perfgate-compatible document whose results
   additionally embed a "phases" array: per-phase op p99 and peak
   unreclaimed nodes.  Perfgate gates those as the phase_p99 /
   phase_unreclaimed dimensions — the SLA view a whole-run p99 can hide
   (see EXPERIMENTS.md E14). *)

let run_service_dump ~out =
  let schemes = Oamem_reclaim.Registry.names in
  let results =
    List.map
      (fun scheme ->
        let r = Service.run { Service.default_spec with Service.scheme } in
        let phase_json (p : Service.phase_stats) =
          Json.Obj
            [
              ("phase", Json.String p.Service.phase);
              ("ops", Json.Int p.Service.ops);
              ("p50", Json.Int p.Service.p50);
              ("p99", Json.Int p.Service.p99);
              ("peak_unreclaimed", Json.Int p.Service.peak_unreclaimed);
              ( "pressure_recoveries",
                Json.Int p.Service.pressure_recoveries );
            ]
        in
        Printf.printf "%-7s %2dT  %.3f Mops  (%d phases)\n%!" scheme
          r.Service.rspec.Service.threads r.Service.throughput_mops
          (List.length r.Service.per_phase);
        Json.Obj
          [
            ("scheme", Json.String scheme);
            ("threads", Json.Int r.Service.rspec.Service.threads);
            ("throughput_mops", Json.Float r.Service.throughput_mops);
            ( "phases",
              Json.List
                (List.map phase_json
                   (r.Service.per_phase @ [ r.Service.overall ])) );
          ])
      schemes
  in
  let doc =
    Json.Obj
      [
        ("experiment", Json.String "E14");
        ("structure", Json.String "service(hash-set)");
        ("results", Json.List results);
      ]
  in
  let oc = open_out out in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s (%d schemes)\n%!" out (List.length results)

(* --- Part 2c: sweep timing (BENCH_SWEEP.json) --------------------------------- *)

(* `bench --sweep-timing [--jobs N] [--out PATH]` runs the quick experiment
   matrix sequentially and then across N worker domains, checks the merged
   report docs are byte-identical, and writes both timings in a
   perfgate-compatible document.  The simulated dimension (throughput_mops,
   a deterministic proxy: rendered-report megabytes) is identical by
   construction, so the 10% gate only trips when experiment *behavior*
   changes; the host dimension (host_steps_per_sec = experiments per
   host-second) carries the wall-clock speedup and is warn-only in CI. *)

let run_sweep_timing ~jobs ~out =
  let cfg = Experiments.quick_config in
  let render_all outcomes =
    String.concat ""
      (List.map
         (fun (o : Sweep.experiment_outcome) ->
           match o.Sweep.doc with
           | Ok doc -> Report.to_string doc
           | Error msg -> Printf.sprintf "\nFAILED %s: %s\n" o.Sweep.id msg)
         outcomes)
  in
  let time_run jobs =
    let t0 = Unix.gettimeofday () in
    let outcomes = Sweep.experiments ~jobs cfg Experiments.all in
    let dt = Unix.gettimeofday () -. t0 in
    (render_all outcomes, dt)
  in
  let nexp = List.length Experiments.all in
  Printf.printf "sweep-timing: %d experiments (quick matrix), host cores %d\n%!"
    nexp (Domain.recommended_domain_count ());
  let seq_text, seq_dt = time_run 1 in
  Printf.printf "  -j 1: %.2fs\n%!" seq_dt;
  let par_text, par_dt = time_run jobs in
  let identical = String.equal seq_text par_text in
  Printf.printf "  -j %d: %.2fs (speedup %.2fx, output identical: %b)\n%!" jobs
    par_dt
    (if par_dt > 0. then seq_dt /. par_dt else 0.)
    identical;
  let entry ~level ~dt text =
    Json.Obj
      [
        ("scheme", Json.String "quick-matrix");
        ("threads", Json.Int level);
        (* deterministic proxy (report megabytes): equal across job counts
           unless experiment behavior changed *)
        ( "throughput_mops",
          Json.Float (float_of_int (String.length text) /. 1e6) );
        ("host_steps_per_sec", Json.Float (float_of_int nexp /. dt));
        ("wall_seconds", Json.Float dt);
      ]
  in
  let doc =
    Json.Obj
      [
        ("experiment", Json.String "sweep-timing");
        ("structure", Json.String "quick-matrix");
        ("host_cores", Json.Int (Domain.recommended_domain_count ()));
        ("jobs", Json.Int jobs);
        ("output_identical", Json.Bool identical);
        ( "results",
          Json.List
            [ entry ~level:1 ~dt:seq_dt seq_text;
              entry ~level:jobs ~dt:par_dt par_text ] );
      ]
  in
  let oc = open_out out in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n%!" out;
  if not identical then exit 1

(* --- Part 3: the paper reproduction ------------------------------------------ *)

let () =
  let argv = Array.to_list Sys.argv in
  let quick = List.mem "--quick" argv in
  let metrics_only = List.mem "--metrics-only" argv in
  (* --profile implies the metrics dump: it adds a cycle-attribution profile
     per run, which is what `bin/perfgate` gates p99 latency on. *)
  let profile = List.mem "--profile" argv in
  let host_throughput = List.mem "--host-throughput" argv in
  let smoke = List.mem "--smoke" argv in
  let sweep_timing = List.mem "--sweep-timing" argv in
  let service = List.mem "--service" argv in
  let out_default =
    if host_throughput then "BENCH_HOST.json"
    else if sweep_timing then "BENCH_SWEEP.json"
    else if service then "BENCH_SERVICE.json"
    else "BENCH_E1.json"
  in
  let find_opt_arg name dfl parse =
    let rec find = function
      | flag :: v :: _ when flag = name -> parse v
      | _ :: rest -> find rest
      | [] -> dfl
    in
    find argv
  in
  let out = find_opt_arg "--out" out_default Fun.id in
  let jobs = find_opt_arg "--jobs" 1 int_of_string in
  if host_throughput then run_host_throughput ~smoke ~out
  else if service then run_service_dump ~out
  else if sweep_timing then
    run_sweep_timing ~jobs:(max 2 jobs) ~out
  else if metrics_only || profile then run_metrics_dump ~profile ~out
  else begin
    run_bechamel ();
    let cfg =
      { (if quick then Experiments.quick_config else Experiments.default_config)
        with Experiments.jobs }
    in
    Printf.printf
      "\n\
       == paper reproduction (simulated cycles; see EXPERIMENTS.md for the \
       paper-vs-measured record) ==\n";
    List.iter
      (fun (e : Experiments.t) ->
        Report.render stdout (e.Experiments.run cfg))
      Experiments.all;
    Printf.printf "%!"
  end
