(* Benchmark entry point.

   Part 1 — Bechamel micro-benchmarks (wall-clock cost of the simulator's
   own primitives, one [Test.make] per table below).  These measure the
   *host-level* speed of the simulation substrate; the paper's simulated
   results come from Part 2.

   Part 2 — the full paper reproduction: every table and figure of the
   evaluation (Figs. 4, 5, 6, the §5.1 remap-strategy claim, the §3.2
   memory-release mechanics, the footnote-2 DWCAS leak, the §2.4 cost
   micro-validation) plus the ablations documented in DESIGN.md, all in
   simulated cycles via the experiment registry.

   Sizes are scaled for wall-clock time (see DESIGN.md / EXPERIMENTS.md);
   `bin/repro run <fig> --full` reruns any figure at paper scale. *)

open Bechamel
open Toolkit
open Oamem_engine
open Oamem_vmem
open Oamem_harness

(* --- Part 1: bechamel micro-benchmarks -------------------------------------- *)

let geom = Geometry.default

let test_prng =
  Test.make ~name:"prng/next"
    (Staged.stage
       (let r = Prng.create 1 in
        fun () -> ignore (Prng.next r)))

let test_cache_hit =
  Test.make ~name:"cache/l1-hit"
    (Staged.stage
       (let c = Cache.create ~name:"l1" ~sets:64 ~ways:4 in
        ignore (Cache.access c 42);
        fun () -> ignore (Cache.access c 42)))

let test_hierarchy_access =
  Test.make ~name:"hierarchy/access"
    (Staged.stage
       (let h =
          Hierarchy.create ~cost:Cost_model.opteron_6274 ~nthreads:4 ()
        in
        let i = ref 0 in
        fun () ->
          incr i;
          ignore (Hierarchy.access h ~tid:(!i land 3) ~kind:Hierarchy.Load (!i land 1023))))

let test_vmem_load =
  Test.make ~name:"vmem/load"
    (Staged.stage
       (let vm = Vmem.create ~max_pages:1024 geom in
        let ctx = Engine.external_ctx () in
        let addr = Vmem.reserve vm ~npages:1 in
        Vmem.map_anon vm ctx ~vpage:(Geometry.page_of_addr geom addr) ~npages:1;
        Vmem.store vm ctx addr 1;
        fun () -> ignore (Vmem.load vm ctx addr)))

let test_vmem_cas =
  Test.make ~name:"vmem/cas"
    (Staged.stage
       (let vm = Vmem.create ~max_pages:1024 geom in
        let ctx = Engine.external_ctx () in
        let addr = Vmem.reserve vm ~npages:1 in
        Vmem.map_anon vm ctx ~vpage:(Geometry.page_of_addr geom addr) ~npages:1;
        Vmem.store vm ctx addr 0;
        fun () -> ignore (Vmem.cas vm ctx addr ~expect:0 ~desired:0)))

let test_malloc_free =
  Test.make ~name:"lrmalloc/malloc+free"
    (Staged.stage
       (let vm = Vmem.create ~max_pages:65536 geom in
        let meta = Cell.heap geom in
        let a =
          Oamem_lrmalloc.Lrmalloc.create ~vmem:vm ~meta ~nthreads:1 ()
        in
        let ctx = Engine.external_ctx () in
        fun () ->
          let b = Oamem_lrmalloc.Lrmalloc.malloc a ctx 2 in
          Oamem_lrmalloc.Lrmalloc.free a ctx b))

let test_engine_step =
  Test.make ~name:"engine/create+200-accesses"
    (Staged.stage (fun () ->
         let eng = Engine.create ~nthreads:2 () in
         for tid = 0 to 1 do
           Engine.spawn eng ~tid (fun ctx ->
               for i = 0 to 99 do
                 Engine.Mem.access ctx ~vpage:(-1) ~paddr:(i land 63)
                   ~kind:Engine.Load
               done)
         done;
         Engine.run eng))

let run_bechamel () =
  let tests =
    [
      test_prng;
      test_cache_hit;
      test_hierarchy_access;
      test_vmem_load;
      test_vmem_cas;
      test_malloc_free;
      test_engine_step;
    ]
  in
  let benchmark test =
    let instances = Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.3) () in
    Benchmark.all cfg instances test
  in
  let analyze results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    Analyze.all ols Instance.monotonic_clock results
  in
  Printf.printf "\n== host-level micro-benchmarks (bechamel, wall clock) ==\n";
  Printf.printf "%-26s %14s\n" "benchmark" "ns/op";
  Printf.printf "%s\n" (String.make 42 '-');
  List.iter
    (fun test ->
      let results = analyze (benchmark (Test.make_grouped ~name:"g" [ test ])) in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "%-26s %14.1f\n" name est
          | _ -> Printf.printf "%-26s %14s\n" name "-")
        results)
    tests;
  Printf.printf "%!"

(* --- Part 2: machine-readable metrics dump (BENCH_*.json) -------------------- *)

(* `bench --metrics-only [--out PATH]` runs a small E1-style sweep (hash set,
   update-only) and writes one JSON document per run with the full metrics
   snapshot — the regression-tracking baseline CI archives as BENCH_E1.json.
   `bench --profile` additionally enables the cycle-attribution profiler and
   embeds each run's profile (spans, op latencies, hot addresses) in the
   document, which is what `bin/perfgate` gates p99 latency on. *)

module Json = Oamem_obs.Json
module Export = Oamem_obs.Export

let run_metrics_dump ~profile ~out =
  (* the paper's four methods plus the epoch pair the relative gate
     compares: DEBRA's no-fault throughput must track EBR's *)
  let schemes = Oamem_reclaim.Registry.paper_methods @ [ "ebr"; "debra" ] in
  let threads = [ 1; 4 ] in
  let results =
    List.concat_map
      (fun scheme ->
        List.map
          (fun t ->
            let r =
              Runner.run
                {
                  Runner.default_spec with
                  Runner.scheme;
                  threads = t;
                  structure = Runner.Hash_set;
                  workload =
                    Workload.make ~mix:Workload.update_only ~initial:1_000 ();
                  horizon_cycles = 100_000;
                  profile;
                }
            in
            Json.Obj
              ([
                 ("scheme", Json.String scheme);
                 ("threads", Json.Int t);
                 ("throughput_mops", Json.Float r.Runner.throughput_mops);
                 ("host_steps", Json.Int r.Runner.host_steps);
                 ( "host_steps_per_sec",
                   Json.Float r.Runner.host_steps_per_sec );
                 ("metrics", Export.metrics_json r.Runner.metrics);
               ]
              @
              if profile then
                [ ("profile", Export.profile_json r.Runner.profile) ]
              else []))
          threads)
      schemes
  in
  let doc =
    Json.Obj
      [
        ("experiment", Json.String "E1");
        ("structure", Json.String "hash-set");
        ("results", Json.List results);
      ]
  in
  let oc = open_out out in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s (%d runs)\n%!" out (List.length results)

(* --- Part 2b: host-throughput report (BENCH_HOST.json) ----------------------- *)

(* `bench --host-throughput [--out PATH]` runs the E1 sweep twice per
   configuration — fused fast path vs. pre-fusion slow path — at a longer
   horizon for stable host timing, and reports simulated steps per
   host-second for both, the speedup, and whether the simulated results
   (throughput + full metrics snapshot) were identical.  The fused numbers
   feed Perfgate's host_steps_per_sec dimension (warn-only in CI). *)

let run_host_throughput ~out =
  let schemes = Oamem_reclaim.Registry.paper_methods in
  let threads = [ 1; 4 ] in
  let spec scheme t fused =
    {
      Runner.default_spec with
      Runner.scheme;
      threads = t;
      structure = Runner.Hash_set;
      workload = Workload.make ~mix:Workload.update_only ~initial:1_000 ();
      horizon_cycles = 2_000_000;
      fused;
    }
  in
  Printf.printf "%-7s %3s  %14s %14s %8s  %s\n" "scheme" "T" "fused-steps/s"
    "slow-steps/s" "speedup" "sim-identical";
  Printf.printf "%s\n" (String.make 70 '-');
  let entries =
    List.concat_map
      (fun scheme ->
        List.map
          (fun t ->
            let fused = Runner.run (spec scheme t true) in
            let slow = Runner.run (spec scheme t false) in
            (* same seed, same workload: the two paths must simulate the
               same execution down to every counter *)
            let identical =
              fused.Runner.throughput_mops = slow.Runner.throughput_mops
              && fused.Runner.ops = slow.Runner.ops
              && fused.Runner.host_steps = slow.Runner.host_steps
              && Json.to_string (Export.metrics_json fused.Runner.metrics)
                 = Json.to_string (Export.metrics_json slow.Runner.metrics)
            in
            let speedup =
              if slow.Runner.host_steps_per_sec > 0. then
                fused.Runner.host_steps_per_sec
                /. slow.Runner.host_steps_per_sec
              else 0.
            in
            Printf.printf "%-7s %3d  %14.0f %14.0f %7.2fx  %b\n%!" scheme t
              fused.Runner.host_steps_per_sec slow.Runner.host_steps_per_sec
              speedup identical;
            Json.Obj
              [
                ("scheme", Json.String scheme);
                ("threads", Json.Int t);
                (* simulated throughput, so perfgate can key and sanity-check
                   the document like any BENCH_E1-style dump *)
                ("throughput_mops", Json.Float fused.Runner.throughput_mops);
                ("host_steps", Json.Int fused.Runner.host_steps);
                ( "host_steps_per_sec",
                  Json.Float fused.Runner.host_steps_per_sec );
                ( "host_steps_per_sec_unfused",
                  Json.Float slow.Runner.host_steps_per_sec );
                ("speedup", Json.Float speedup);
                ("sim_identical", Json.Bool identical);
              ])
          threads)
      schemes
  in
  let mean_speedup =
    let sp =
      List.map
        (fun e -> match Json.member "speedup" e with
          | Json.Float f -> f
          | _ -> 0.)
        entries
    in
    List.fold_left ( +. ) 0. sp /. float_of_int (List.length sp)
  in
  Printf.printf "%s\nmean speedup: %.2fx\n%!" (String.make 70 '-') mean_speedup;
  let doc =
    Json.Obj
      [
        ("experiment", Json.String "host-throughput");
        ("structure", Json.String "hash-set");
        ("results", Json.List entries);
      ]
  in
  let oc = open_out out in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s (%d configs)\n%!" out (List.length entries)

(* --- Part 3: the paper reproduction ------------------------------------------ *)

let () =
  let argv = Array.to_list Sys.argv in
  let quick = List.mem "--quick" argv in
  let metrics_only = List.mem "--metrics-only" argv in
  (* --profile implies the metrics dump: it adds a cycle-attribution profile
     per run, which is what `bin/perfgate` gates p99 latency on. *)
  let profile = List.mem "--profile" argv in
  let host_throughput = List.mem "--host-throughput" argv in
  let out_default =
    if host_throughput then "BENCH_HOST.json" else "BENCH_E1.json"
  in
  let out =
    let rec find = function
      | "--out" :: path :: _ -> path
      | _ :: rest -> find rest
      | [] -> out_default
    in
    find argv
  in
  if host_throughput then run_host_throughput ~out
  else if metrics_only || profile then run_metrics_dump ~profile ~out
  else begin
    run_bechamel ();
    let cfg =
      if quick then Experiments.quick_config else Experiments.default_config
    in
    Printf.printf
      "\n\
       == paper reproduction (simulated cycles; see EXPERIMENTS.md for the \
       paper-vs-measured record) ==\n";
    List.iter (fun e -> e.Experiments.run cfg) Experiments.all
  end
