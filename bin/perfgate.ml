(* CI perf-regression gate: compare a fresh bench --profile dump against a
   committed baseline and exit non-zero on regression.

     perfgate BASELINE CURRENT [--warn-only] [--warn-dim DIM]...
              [--max-drop F] [--max-p99 F] [--max-host-drop F]
              [--relative SCHEME:REF]...

   Dimensions split in two classes: simulated ones (throughput, p99) are
   deterministic — a regression is a real cost-model change and gates hard;
   host-clock ones (host_steps_per_sec) measure the machine running the
   simulator and are noisy — CI passes --warn-dim host_steps_per_sec so
   they are reported but never fail the job.  --warn-only keeps its old
   meaning: everything warns (baseline-refresh mode). *)

open Cmdliner
module Json = Oamem_obs.Json
module Perfgate = Oamem_harness.Perfgate

let read_json path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  Json.parse s

let baseline_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"BASELINE" ~doc:"Committed baseline JSON (BENCH_E1.json).")

let current_arg =
  Arg.(
    required
    & pos 1 (some file) None
    & info [] ~docv:"CURRENT" ~doc:"Freshly produced bench JSON to gate.")

let warn_only_arg =
  Arg.(
    value & flag
    & info [ "warn-only" ]
        ~doc:"Report regressions but exit 0 (first-run / baseline-refresh mode).")

let max_drop_arg =
  Arg.(
    value
    & opt float Perfgate.default_thresholds.Perfgate.max_throughput_drop
    & info [ "max-drop" ] ~docv:"FRACTION"
        ~doc:"Maximum tolerated relative throughput drop.")

let max_p99_arg =
  Arg.(
    value
    & opt float Perfgate.default_thresholds.Perfgate.max_p99_increase
    & info [ "max-p99" ] ~docv:"FRACTION"
        ~doc:"Maximum tolerated relative p99 latency increase.")

let max_host_drop_arg =
  Arg.(
    value
    & opt float Perfgate.default_thresholds.Perfgate.max_host_drop
    & info [ "max-host-drop" ] ~docv:"FRACTION"
        ~doc:
          "Maximum tolerated relative drop in host simulator speed (steps \
           per host-second); checked only when both documents carry the \
           field.")

let max_unreclaimed_arg =
  Arg.(
    value
    & opt float
        Perfgate.default_thresholds.Perfgate.max_unreclaimed_increase
    & info [ "max-unreclaimed" ] ~docv:"FRACTION"
        ~doc:
          "Maximum tolerated relative increase in a service phase's peak \
           unreclaimed nodes; checked per phase of results carrying a \
           'phases' array (BENCH_SERVICE.json).")

let warn_dim_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "warn-dim" ] ~docv:"DIM"
        ~doc:
          "Report but do not fail on regressions in dimension DIM \
           (throughput, p99 or host_steps_per_sec).  Repeatable.  \
           Dimensions not listed gate hard.")

let relative_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "relative" ] ~docv:"SCHEME:REF"
        ~doc:
          "Also gate SCHEME's throughput against REF's within the CURRENT \
           document (within --max-drop at every thread count REF ran); \
           gates schemes too new to appear in the committed baseline. \
           Repeatable.")

let parse_relative spec =
  match String.index_opt spec ':' with
  | Some i when i > 0 && i < String.length spec - 1 ->
      ( String.sub spec 0 i,
        String.sub spec (i + 1) (String.length spec - i - 1) )
  | _ ->
      Fmt.epr "perfgate: bad --relative %S (expected SCHEME:REF)@." spec;
      exit 2

(* The coarse dimension a verdict's metric belongs to, for --warn-dim
   selection: "missing" rows count as throughput (a silently shrunk sweep
   must stay a hard failure unless everything warns). *)
let has_prefix p s = String.length s >= String.length p && String.sub s 0 (String.length p) = p

let dimension metric =
  if metric = "host_steps_per_sec" then "host_steps_per_sec"
  else if has_prefix "phase_p99:" metric then "phase_p99"
  else if has_prefix "phase_unreclaimed:" metric then "phase_unreclaimed"
  else if has_prefix "p99:" metric then "p99"
  else "throughput"

let all_dimensions =
  [ "throughput"; "p99"; "host_steps_per_sec"; "phase_p99";
    "phase_unreclaimed" ]

let run baseline current warn_only warn_dims max_drop max_p99 max_host_drop
    max_unreclaimed relative =
  List.iter
    (fun d ->
      if not (List.mem d all_dimensions) then begin
        Fmt.epr "perfgate: unknown --warn-dim %S (expected one of %s)@." d
          (String.concat ", " all_dimensions);
        exit 2
      end)
    warn_dims;
  let thresholds =
    {
      Perfgate.max_throughput_drop = max_drop;
      max_p99_increase = max_p99;
      max_host_drop;
      max_unreclaimed_increase = max_unreclaimed;
    }
  in
  let current_doc = read_json current in
  let verdicts =
    Perfgate.compare_results ~thresholds ~baseline:(read_json baseline)
      ~current:current_doc ()
    @ List.concat_map
        (fun spec ->
          let scheme, reference = parse_relative spec in
          Perfgate.compare_relative ~max_gap:max_drop ~current:current_doc
            ~scheme ~reference ())
        relative
  in
  let warns v = warn_only || List.mem (dimension v.Perfgate.metric) warn_dims in
  List.iter
    (fun v ->
      Fmt.pr "%a%s@." Perfgate.pp_verdict v
        (if v.Perfgate.regressed && warns v then " [warn-only]" else ""))
    verdicts;
  let gated_dims, warn_dims_shown =
    if warn_only then ([], all_dimensions)
    else
      List.partition (fun d -> not (List.mem d warn_dims)) all_dimensions
  in
  let pp_dims = function [] -> "none" | ds -> String.concat ", " ds in
  let regressed = List.filter (fun v -> v.Perfgate.regressed) verdicts in
  let hard = List.filter (fun v -> not (warns v)) regressed in
  Fmt.pr "perfgate: %d checks (gated: %s; warn-only: %s), %d regressed (%d \
          hard)@."
    (List.length verdicts) (pp_dims gated_dims) (pp_dims warn_dims_shown)
    (List.length regressed) (List.length hard);
  if hard <> [] then exit 1

let () =
  let doc =
    "Fail when a bench --profile run regresses against a committed baseline."
  in
  exit
    (Cmd.eval
       (Cmd.v
          (Cmd.info "perfgate" ~doc)
          Term.(
            const run $ baseline_arg $ current_arg $ warn_only_arg
            $ warn_dim_arg $ max_drop_arg $ max_p99_arg $ max_host_drop_arg
            $ max_unreclaimed_arg $ relative_arg)))
