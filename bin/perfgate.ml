(* CI perf-regression gate: compare a fresh bench --profile dump against a
   committed baseline and exit non-zero on regression.

     perfgate BASELINE CURRENT [--warn-only] [--max-drop F] [--max-p99 F]
              [--max-host-drop F] [--relative SCHEME:REF]... *)

open Cmdliner
module Json = Oamem_obs.Json
module Perfgate = Oamem_harness.Perfgate

let read_json path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  Json.parse s

let baseline_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"BASELINE" ~doc:"Committed baseline JSON (BENCH_E1.json).")

let current_arg =
  Arg.(
    required
    & pos 1 (some file) None
    & info [] ~docv:"CURRENT" ~doc:"Freshly produced bench JSON to gate.")

let warn_only_arg =
  Arg.(
    value & flag
    & info [ "warn-only" ]
        ~doc:"Report regressions but exit 0 (first-run / baseline-refresh mode).")

let max_drop_arg =
  Arg.(
    value
    & opt float Perfgate.default_thresholds.Perfgate.max_throughput_drop
    & info [ "max-drop" ] ~docv:"FRACTION"
        ~doc:"Maximum tolerated relative throughput drop.")

let max_p99_arg =
  Arg.(
    value
    & opt float Perfgate.default_thresholds.Perfgate.max_p99_increase
    & info [ "max-p99" ] ~docv:"FRACTION"
        ~doc:"Maximum tolerated relative p99 latency increase.")

let max_host_drop_arg =
  Arg.(
    value
    & opt float Perfgate.default_thresholds.Perfgate.max_host_drop
    & info [ "max-host-drop" ] ~docv:"FRACTION"
        ~doc:
          "Maximum tolerated relative drop in host simulator speed (steps \
           per host-second); checked only when both documents carry the \
           field.")

let relative_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "relative" ] ~docv:"SCHEME:REF"
        ~doc:
          "Also gate SCHEME's throughput against REF's within the CURRENT \
           document (within --max-drop at every thread count REF ran); \
           gates schemes too new to appear in the committed baseline. \
           Repeatable.")

let parse_relative spec =
  match String.index_opt spec ':' with
  | Some i when i > 0 && i < String.length spec - 1 ->
      ( String.sub spec 0 i,
        String.sub spec (i + 1) (String.length spec - i - 1) )
  | _ ->
      Fmt.epr "perfgate: bad --relative %S (expected SCHEME:REF)@." spec;
      exit 2

let run baseline current warn_only max_drop max_p99 max_host_drop relative =
  let thresholds =
    {
      Perfgate.max_throughput_drop = max_drop;
      max_p99_increase = max_p99;
      max_host_drop;
    }
  in
  let current_doc = read_json current in
  let verdicts =
    Perfgate.compare_results ~thresholds ~baseline:(read_json baseline)
      ~current:current_doc ()
    @ List.concat_map
        (fun spec ->
          let scheme, reference = parse_relative spec in
          Perfgate.compare_relative ~max_gap:max_drop ~current:current_doc
            ~scheme ~reference ())
        relative
  in
  List.iter (fun v -> Fmt.pr "%a@." Perfgate.pp_verdict v) verdicts;
  let nfail =
    List.length (List.filter (fun v -> v.Perfgate.regressed) verdicts)
  in
  if nfail = 0 then Fmt.pr "perfgate: %d checks, no regressions@." (List.length verdicts)
  else begin
    Fmt.pr "perfgate: %d of %d checks regressed%s@." nfail
      (List.length verdicts)
    (if warn_only then " (warn-only: not failing)" else "");
    if not warn_only then exit 1
  end

let () =
  let doc =
    "Fail when a bench --profile run regresses against a committed baseline."
  in
  exit
    (Cmd.eval
       (Cmd.v
          (Cmd.info "perfgate" ~doc)
          Term.(
            const run $ baseline_arg $ current_arg $ warn_only_arg
            $ max_drop_arg $ max_p99_arg $ max_host_drop_arg
            $ relative_arg)))
