(* Command-line driver for the paper-reproduction experiments.

     repro list                          enumerate experiments
     repro run fig4a [options]           run one experiment
     repro all [options]                 run every experiment
     repro fuzz [options]                randomized schedule fuzzing
     repro replay FILE                   replay a fuzz repro JSON
     repro profile [options]             cycle-attribution profile of a run

   Options select thread counts, the simulated-time horizon, the figure-6
   structure size, reclamation schemes and CSV output. *)

open Cmdliner
open Oamem_harness
module Explore = Oamem_engine.Explore

let threads_arg =
  let doc = "Comma-separated simulated thread counts." in
  Arg.(
    value
    & opt (list int) Experiments.default_config.Experiments.threads
    & info [ "t"; "threads" ] ~docv:"N,N,..." ~doc)

let horizon_arg =
  let doc = "Measured window per thread, in simulated cycles." in
  Arg.(
    value
    & opt int Experiments.default_config.Experiments.horizon_cycles
    & info [ "horizon" ] ~docv:"CYCLES" ~doc)

let fig4_arg =
  let doc =
    "List size for figure 4 (the paper uses 5000; the default is scaled \
     down for runtime)."
  in
  Arg.(
    value
    & opt int Experiments.default_config.Experiments.fig4_size
    & info [ "fig4-size" ] ~docv:"N" ~doc)

let fig6_arg =
  let doc =
    "Structure size for figure 6 (the paper uses 1000000; the default is \
     scaled down for runtime)."
  in
  Arg.(
    value
    & opt int Experiments.default_config.Experiments.fig6_size
    & info [ "fig6-size" ] ~docv:"N" ~doc)

let full_arg =
  let doc = "Run figures at the paper's full scale (5K list, 1M hash)." in
  Arg.(value & flag & info [ "full" ] ~doc)

let schemes_arg =
  let doc = "Comma-separated reclamation schemes to compare." in
  Arg.(
    value
    & opt (list string) Oamem_reclaim.Registry.paper_methods
    & info [ "s"; "schemes" ] ~docv:"NAME,..." ~doc)

let seed_arg =
  let doc = "Workload random seed." in
  Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED" ~doc)

let csv_arg =
  let doc = "Directory to write per-experiment CSV files into." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"DIR" ~doc)

let trace_arg =
  let doc =
    "Write a Chrome trace_event JSON of the designated run (last scheme at \
     the highest thread count) to $(docv); load it in chrome://tracing or \
     Perfetto."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Write the designated run's metrics snapshot (counters, gauges, \
     histograms) as JSON to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let quick_arg =
  let doc = "Use the quick preset (fewer thread counts, shorter horizon)." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let sanitize_arg =
  let doc =
    "Run the fault-matrix experiment under the memory-lifecycle sanitizer \
     (access-level checks; violations abort the run)."
  in
  Arg.(value & flag & info [ "sanitize" ] ~doc)

let jobs_arg =
  let doc =
    "Worker domains: shards independent cells inside an experiment (`run', \
     `all'), whole experiments (`sweep') and fuzz seed chunks (`fuzz').  \
     Output is byte-identical at any value."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let config_term =
  let make threads horizon fig4 fig6 full schemes seed csv quick trace metrics
      sanitize jobs =
    let dfl = Experiments.default_config in
    let base =
      if quick then Experiments.quick_config else Experiments.default_config
    in
    (* explicit flags beat the preset; preset beats the default *)
    let pick v dflv basev = if v <> dflv then v else basev in
    Experiments.Config.make
      ~threads:(pick threads dfl.Experiments.threads base.Experiments.threads)
      ~horizon_cycles:
        (pick horizon dfl.Experiments.horizon_cycles
           base.Experiments.horizon_cycles)
      ~fig4_size:
        (if full then 5_000
         else pick fig4 dfl.Experiments.fig4_size base.Experiments.fig4_size)
      ~fig6_size:
        (if full then 1_000_000
         else pick fig6 dfl.Experiments.fig6_size base.Experiments.fig6_size)
      ~schemes ~seed ?csv_dir:csv ?trace_out:trace ?metrics_out:metrics
      ~sanitize ~jobs ()
  in
  Term.(
    const make $ threads_arg $ horizon_arg $ fig4_arg $ fig6_arg $ full_arg
    $ schemes_arg $ seed_arg $ csv_arg $ quick_arg $ trace_arg $ metrics_arg
    $ sanitize_arg $ jobs_arg)

let list_cmd =
  let run () =
    Printf.printf "%-18s %-22s %s\n" "id" "paper" "title";
    Printf.printf "%s\n" (String.make 80 '-');
    List.iter
      (fun e ->
        Printf.printf "%-18s %-22s %s\n" e.Experiments.id
          e.Experiments.paper_ref e.Experiments.title)
      Experiments.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the experiments.") Term.(const run $ const ())

(* The scheme table (including the one in README.md) is generated from the
   registry — name, one-line doc and capability record — so prose cannot
   drift from the code. *)
let schemes_cmd =
  let md_arg =
    Arg.(
      value & flag
      & info [ "md" ] ~doc:"Emit the table as Markdown (the README scheme table).")
  in
  let run md =
    let module Registry = Oamem_reclaim.Registry in
    let module Scheme = Oamem_reclaim.Scheme in
    let caps_string (c : Scheme.caps) =
      let flags =
        [
          (c.Scheme.hazard_writes, "hazard-writes");
          (c.Scheme.neutralizes, "neutralizes");
          (c.Scheme.recycles_retired, "recycles-retired");
          (c.Scheme.leaks_by_design, "leaks");
          (c.Scheme.conditional_access, "cond-access");
          (c.Scheme.frees_immediately, "immediate-free");
        ]
      in
      match
        List.filter_map (fun (b, s) -> if b then Some s else None) flags
      with
      | [] -> "—"
      | fs -> String.concat ", " fs
    in
    if md then begin
      Printf.printf "| scheme | mechanism | capabilities |\n";
      Printf.printf "|--------|-----------|--------------|\n";
      List.iter
        (fun (e : Registry.entry) ->
          Printf.printf "| `%s` | %s | %s |\n" e.Registry.name e.Registry.doc
            (caps_string e.Registry.caps))
        Registry.all
    end
    else begin
      Printf.printf "%-8s %-60s %s\n" "scheme" "mechanism" "capabilities";
      Printf.printf "%s\n" (String.make 104 '-');
      List.iter
        (fun (e : Registry.entry) ->
          Printf.printf "%-8s %-60s %s\n" e.Registry.name e.Registry.doc
            (caps_string e.Registry.caps))
        Registry.all
    end
  in
  Cmd.v
    (Cmd.info "schemes"
       ~doc:
         "List the registered reclamation schemes with their one-line \
          descriptions and capability records ($(b,--md) emits the README \
          scheme table).")
    Term.(const run $ md_arg)

(* Render a doc and write its artifacts, on the coordinating domain:
   [in_dir] artifacts (CSV dumps, garbage curves) go under --csv DIR when
   given, the rest (traces, metrics) to their exact paths. *)
let emit_doc (cfg : Experiments.config) doc =
  Report.render stdout doc;
  flush stdout;
  ignore (Report.write_artifacts ?dir:cfg.Experiments.csv_dir doc)

let run_cmd =
  let id_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"EXPERIMENT" ~doc:"Experiment id (see `repro list').")
  in
  let run cfg id =
    let e = Experiments.find id in
    emit_doc cfg (e.Experiments.run cfg)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one experiment.")
    Term.(const run $ config_term $ id_arg)

let all_cmd =
  let run cfg =
    List.iter
      (fun (e : Experiments.t) -> emit_doc cfg (e.Experiments.run cfg))
      Experiments.all
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Run every experiment.")
    Term.(const run $ config_term)

(* --- domain-sharded sweep --------------------------------------------------- *)

let sweep_cmd =
  let ids_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"EXPERIMENT"
          ~doc:"Experiment ids to sweep (default: all).")
  in
  let run cfg ids =
    let exps =
      match ids with
      | [] -> Experiments.all
      | ids -> List.map Experiments.find ids
    in
    let outcomes =
      Sweep.experiments ~jobs:cfg.Experiments.jobs cfg exps
    in
    (* workers returned docs; render and write in canonical order here *)
    let failed =
      List.filter
        (fun (o : Sweep.experiment_outcome) ->
          match o.Sweep.doc with
          | Ok doc ->
              emit_doc cfg doc;
              false
          | Error msg ->
              Printf.printf "\nFAILED %s: %s\n%!" o.Sweep.id msg;
              true)
        outcomes
    in
    if failed <> [] then begin
      Printf.printf "\nsweep: %d experiment(s) failed: %s\n%!"
        (List.length failed)
        (String.concat ", "
           (List.map (fun (o : Sweep.experiment_outcome) -> o.Sweep.id) failed));
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Run experiments across -j worker domains (one experiment per job) \
          and render the merged report in canonical order — byte-identical \
          to a sequential run.")
    Term.(const run $ config_term $ ids_arg)

(* --- schedule fuzzing ------------------------------------------------------ *)

let fuzz_cmd =
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Fuzzer seed.")
  in
  let max_runs_arg =
    Arg.(
      value & opt int 200
      & info [ "max-runs" ] ~docv:"N"
          ~doc:"Random schedules per scenario and scheme.")
  in
  let seconds_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "seconds" ] ~docv:"S"
          ~doc:"Total wall-clock time box over all scenarios.")
  in
  let scenarios_arg =
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "scenarios" ] ~docv:"NAME,..."
          ~doc:"Scenarios to fuzz (default: all).")
  in
  let schemes_arg =
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "s"; "schemes" ] ~docv:"NAME,..."
          ~doc:"Restrict to these reclamation schemes.")
  in
  let out_arg =
    Arg.(
      value & opt string "."
      & info [ "out" ] ~docv:"DIR" ~doc:"Directory for repro JSON files.")
  in
  let include_expected_arg =
    Arg.(
      value & flag
      & info [ "include-expected" ]
          ~doc:
            "Also fuzz the seeded-bug scenarios (their findings do not fail \
             the run; *not* finding their bug does).")
  in
  let run seed max_runs seconds scenarios schemes out include_expected jobs =
    let deadline = Option.map (fun s -> Unix.gettimeofday () +. s) seconds in
    let expired () =
      match deadline with
      | None -> false
      | Some d -> Unix.gettimeofday () > d
    in
    let wanted =
      List.filter
        (fun (sc : Fuzz.scenario) ->
          (include_expected || not sc.Fuzz.expect_fail)
          &&
          match scenarios with
          | None -> true
          | Some names -> List.mem sc.Fuzz.name names)
        Fuzz.scenarios
    in
    (if not (Sys.file_exists out) then Sys.mkdir out 0o755);
    let cells =
      List.concat_map
        (fun (sc : Fuzz.scenario) ->
          let scheme_list =
            match schemes with
            | None -> sc.Fuzz.schemes
            | Some ss -> List.filter (fun s -> List.mem s ss) sc.Fuzz.schemes
          in
          List.map (fun scheme -> (sc, scheme)) scheme_list)
        wanted
    in
    (* the fuzzing itself runs on the worker domains; everything below —
       printing, repro files, exit status — happens here in cell order *)
    let results =
      Sweep.fuzz_matrix ~jobs ~max_runs ?stop:(Option.map (fun _ -> expired) deadline)
        ~seed cells
    in
    let unexpected = ref 0 and missed = ref 0 and total_runs = ref 0 in
    List.iter2
      (fun ((sc : Fuzz.scenario), scheme) (r : Sweep.fuzz_cell_result) ->
        total_runs := !total_runs + r.Sweep.fuzz_runs + r.Sweep.shrink_runs;
        match r.Sweep.finding with
        | None ->
            if sc.Fuzz.expect_fail then begin
              incr missed;
              Printf.printf
                "MISSED  %s/%s: seeded bug not found in %d runs\n%!"
                sc.Fuzz.name scheme r.Sweep.fuzz_runs
            end
            else
              Printf.printf "ok      %s/%s: %d schedules clean\n%!" sc.Fuzz.name
                scheme r.Sweep.fuzz_runs
        | Some f ->
            let file =
              Filename.concat out
                (Printf.sprintf "fuzz-%s-%s.json" sc.Fuzz.name scheme)
            in
            Fuzz.save file f;
            if not sc.Fuzz.expect_fail then incr unexpected;
            Printf.printf
              "%s  %s/%s: failing schedule (%d decisions, shrunk in %d \
               replays) -> %s\n        %s\n%!"
              (if sc.Fuzz.expect_fail then "seeded" else "FAIL  ")
              sc.Fuzz.name scheme
              (Array.length f.Fuzz.prefix)
              r.Sweep.shrink_runs file f.Fuzz.error)
      cells results;
    Printf.printf
      "fuzz: %d replays total; %d unexpected failure(s), %d seeded bug(s) \
       missed\n%!"
      !total_runs !unexpected !missed;
    if !unexpected > 0 || !missed > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Randomized schedule fuzzing with the lifecycle sanitizer enabled, \
          sharded across -j worker domains (fixed seed chunks per cell, so \
          findings are identical at any -j); failing schedules are shrunk \
          and written as replayable repro JSON.")
    Term.(
      const run $ seed_arg $ max_runs_arg $ seconds_arg $ scenarios_arg
      $ schemes_arg $ out_arg $ include_expected_arg $ jobs_arg)

(* --- cycle-attribution profiling ------------------------------------------- *)

let profile_cmd =
  let module Json = Oamem_obs.Json in
  let module Export = Oamem_obs.Export in
  let module Profile = Oamem_obs.Profile in
  let scheme_arg =
    Arg.(
      value & opt string "oa-ver"
      & info [ "s"; "scheme" ] ~docv:"NAME" ~doc:"Reclamation scheme.")
  in
  let threads_arg =
    Arg.(
      value & opt int 4
      & info [ "t"; "threads" ] ~docv:"N" ~doc:"Simulated thread count.")
  in
  let horizon_arg =
    Arg.(
      value & opt int 100_000
      & info [ "horizon" ] ~docv:"CYCLES"
          ~doc:"Measured window per thread, in simulated cycles.")
  in
  let seed_arg =
    Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED" ~doc:"Workload seed.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Write the profile as JSON to $(docv).")
  in
  let folded_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "folded" ] ~docv:"FILE"
          ~doc:
            "Write collapsed stacks (flamegraph.pl / speedscope input) to \
             $(docv).")
  in
  let diff_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "diff" ] ~docv:"BASELINE"
          ~doc:
            "Print per-span cycle deltas against a profile JSON previously \
             written with --out.")
  in
  let top_arg =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"N" ~doc:"Hot addresses to show.")
  in
  let run scheme threads horizon seed out folded diff top =
    let spec =
      {
        Runner.default_spec with
        Runner.scheme;
        threads;
        structure = Runner.Hash_set;
        workload = Workload.make ~mix:Workload.update_only ~initial:1_000 ();
        horizon_cycles = horizon;
        seed;
        profile = true;
      }
    in
    let r = Runner.run spec in
    let p = r.Runner.profile in
    let total = Profile.total_cycles p in
    Printf.printf
      "profile: %s hash-set, %d thread(s), horizon %d, seed %d\n\
       throughput %.4f Mops/s; %d ops; %d attributed+unattributed cycles\n\n"
      scheme threads horizon seed r.Runner.throughput_mops r.Runner.ops total;
    let pct c = if total = 0 then 0.0 else 100.0 *. float_of_int c /. float_of_int total in
    Printf.printf "%-40s %12s %7s %12s %9s\n" "span" "self-cycles" "self%"
      "total-cycles" "calls";
    Printf.printf "%s\n" (String.make 84 '-');
    List.iter
      (fun (s : Profile.span) ->
        let depth = List.length s.Profile.path - 1 in
        let name =
          String.make (2 * depth) ' '
          ^ Profile.frame_name (List.nth s.Profile.path depth)
        in
        Printf.printf "%-40s %12d %6.1f%% %12d %9d\n" name s.Profile.self_cycles
          (pct s.Profile.self_cycles) s.Profile.total_cycles s.Profile.calls)
      (Profile.spans p);
    Printf.printf "%-40s %12d %6.1f%%\n" "(unattributed)"
      (Profile.unattributed_cycles p)
      (pct (Profile.unattributed_cycles p));
    Printf.printf "\n%-16s %9s %12s %9s %9s %9s\n" "op latency" "count" "sum"
      "p50" "p99" "max";
    Printf.printf "%s\n" (String.make 70 '-');
    List.iter
      (fun (l : Profile.latency) ->
        Printf.printf "%-16s %9d %12d %9d %9d %9d\n"
          (Profile.frame_name l.Profile.lframe)
          l.Profile.count l.Profile.sum
          (Profile.percentile l 0.50)
          (Profile.percentile l 0.99)
          l.Profile.max_cycles)
      (Profile.latencies p);
    (match Profile.hot_addrs ~top p with
    | [] -> ()
    | hot ->
        Printf.printf "\n%-12s %14s %13s  %s\n" "hot addr" "invalidations"
          "cas-failures" "owning span";
        Printf.printf "%s\n" (String.make 70 '-');
        List.iter
          (fun (h : Profile.hot_addr) ->
            Printf.printf "%-12d %14d %13d  %s\n" h.Profile.addr
              h.Profile.invalidations h.Profile.cas_failures
              (match h.Profile.owner with
              | [] -> "(none)"
              | path ->
                  String.concat ";" (List.map Profile.frame_name path)))
          hot);
    (match diff with
    | None -> ()
    | Some file ->
        let ic = open_in_bin file in
        let doc =
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () ->
              Json.parse (really_input_string ic (in_channel_length ic)))
        in
        let baseline =
          List.map
            (fun s ->
              ( Json.(to_str (member "path" s)),
                Json.(to_int (member "self_cycles" s)) ))
            Json.(to_list (member "spans" doc))
        in
        Printf.printf "\ndiff vs %s (self-cycles)\n" file;
        Printf.printf "%-40s %12s %12s %12s\n" "span" "baseline" "current"
          "delta";
        Printf.printf "%s\n" (String.make 80 '-');
        let current =
          List.map
            (fun (s : Profile.span) ->
              ( String.concat ";" (List.map Profile.frame_name s.Profile.path),
                s.Profile.self_cycles ))
            (Profile.spans p)
        in
        let paths =
          List.sort_uniq String.compare
            (List.map fst baseline @ List.map fst current)
        in
        List.iter
          (fun path ->
            let b = Option.value ~default:0 (List.assoc_opt path baseline) in
            let c = Option.value ~default:0 (List.assoc_opt path current) in
            if b <> 0 || c <> 0 then
              Printf.printf "%-40s %12d %12d %+12d\n" path b c (c - b))
          paths);
    Option.iter (fun file -> Export.write_profile ~top file p) out;
    Option.iter (fun file -> Export.write_collapsed file p) folded;
    Option.iter (fun file -> Printf.printf "\nwrote %s\n" file) out;
    Option.iter (fun file -> Printf.printf "wrote %s\n" file) folded
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run a fixed-seed E1-style hash-set workload with the \
          cycle-attribution profiler on and print the span breakdown, \
          per-operation latency percentiles and contention hot spots; \
          optionally export flamegraph/JSON and diff against a saved \
          baseline.")
    Term.(
      const run $ scheme_arg $ threads_arg $ horizon_arg $ seed_arg $ out_arg
      $ folded_arg $ diff_arg $ top_arg)

(* --- phase-scoped service timeline ----------------------------------------- *)

let timeline_cmd =
  let module Export = Oamem_obs.Export in
  let scheme_arg =
    Arg.(
      value & opt string "oa-ver"
      & info [ "s"; "scheme" ] ~docv:"NAME" ~doc:"Reclamation scheme.")
  in
  let threads_arg =
    Arg.(
      value & opt int 4
      & info [ "t"; "threads" ] ~docv:"N"
          ~doc:"Worker threads (one extra slot runs the gauge sampler).")
  in
  let horizon_arg =
    Arg.(
      value & opt int 200_000
      & info [ "horizon" ] ~docv:"CYCLES"
          ~doc:"Total phased horizon in simulated cycles.")
  in
  let initial_arg =
    Arg.(
      value & opt int 2_048
      & info [ "initial" ] ~docv:"N" ~doc:"Prefilled store size.")
  in
  let window_arg =
    Arg.(
      value & opt int 10_000
      & info [ "window" ] ~docv:"CYCLES"
          ~doc:"Timeline window width in simulated cycles.")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Workload seed.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write the timeline (windows, phases, gauges) as JSON.")
  in
  let csv_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv-out" ] ~docv:"FILE"
          ~doc:"Write the per-window timeline as CSV.")
  in
  let trace_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace of the run with per-window counter tracks \
             appended.")
  in
  let run scheme threads horizon initial window seed out csv_out trace_out =
    let spec =
      {
        Service.scheme;
        threads;
        initial;
        window;
        sample_interval = max 200 (window / 5);
        seed;
        phases = Service.default_phases ~horizon_cycles:horizon;
      }
    in
    let r = Service.run spec in
    Printf.printf
      "service: %s store of %d keys, %d worker thread(s), horizon %d, seed \
       %d\nthroughput %.4f Mops/s over %.2f sim-ms\n\n"
      scheme initial threads horizon seed r.Service.throughput_mops
      (r.Service.sim_seconds *. 1e3);
    List.iter
      (fun s -> Format.printf "%a@." Service.pp_phase_stats s)
      (r.Service.per_phase @ [ r.Service.overall ]);
    Option.iter
      (fun file ->
        Export.write_timeline file r.Service.timeline;
        Printf.printf "\nwrote %s\n" file)
      out;
    Option.iter
      (fun file ->
        Export.write_timeline_csv file r.Service.timeline;
        Printf.printf "wrote %s\n" file)
      csv_out;
    Option.iter
      (fun file ->
        Export.write_chrome_trace ~timeline:r.Service.timeline file
          (Oamem_core.System.trace r.Service.system);
        Printf.printf "wrote %s\n" file)
      trace_out
  in
  Cmd.v
    (Cmd.info "timeline"
       ~doc:
         "Run the phase-scripted Zipfian service scenario (E14) for one \
          scheme and print its per-phase SLA stats; optionally export the \
          timeline as JSON/CSV or a Chrome trace with counter tracks.")
    Term.(
      const run $ scheme_arg $ threads_arg $ horizon_arg $ initial_arg
      $ window_arg $ seed_arg $ out_arg $ csv_out_arg $ trace_out_arg)

let replay_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Repro JSON written by `repro fuzz'.")
  in
  let run file =
    let f = Fuzz.load file in
    Printf.printf "replaying %s/%s (%d decisions, seed %d)\n%!"
      f.Fuzz.scenario f.Fuzz.scheme
      (Array.length f.Fuzz.prefix)
      f.Fuzz.seed;
    match Fuzz.replay f with
    | Some err ->
        Printf.printf "reproduced: %s\n%!" err;
        if err <> f.Fuzz.error then
          Printf.printf "(recorded error was: %s)\n%!" f.Fuzz.error
    | None ->
        Printf.printf "did NOT reproduce (recorded error: %s)\n%!"
          f.Fuzz.error;
        exit 1
  in
  Cmd.v
    (Cmd.info "replay" ~doc:"Deterministically replay a fuzz repro file.")
    Term.(const run $ file_arg)

let () =
  let doc =
    "Reproduction of 'Releasing Memory with Optimistic Access' (SPAA 2023) \
     on a simulated multicore."
  in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "repro" ~doc)
          [
            list_cmd; schemes_cmd; run_cmd; all_cmd; sweep_cmd; fuzz_cmd;
            replay_cmd; profile_cmd; timeline_cmd;
          ]))
