(* Command-line driver for the paper-reproduction experiments.

     repro list                          enumerate experiments
     repro run fig4a [options]           run one experiment
     repro all [options]                 run every experiment

   Options select thread counts, the simulated-time horizon, the figure-6
   structure size, reclamation schemes and CSV output. *)

open Cmdliner
open Oamem_harness

let threads_arg =
  let doc = "Comma-separated simulated thread counts." in
  Arg.(
    value
    & opt (list int) Experiments.default_config.Experiments.threads
    & info [ "t"; "threads" ] ~docv:"N,N,..." ~doc)

let horizon_arg =
  let doc = "Measured window per thread, in simulated cycles." in
  Arg.(
    value
    & opt int Experiments.default_config.Experiments.horizon_cycles
    & info [ "horizon" ] ~docv:"CYCLES" ~doc)

let fig4_arg =
  let doc =
    "List size for figure 4 (the paper uses 5000; the default is scaled \
     down for runtime)."
  in
  Arg.(
    value
    & opt int Experiments.default_config.Experiments.fig4_size
    & info [ "fig4-size" ] ~docv:"N" ~doc)

let fig6_arg =
  let doc =
    "Structure size for figure 6 (the paper uses 1000000; the default is \
     scaled down for runtime)."
  in
  Arg.(
    value
    & opt int Experiments.default_config.Experiments.fig6_size
    & info [ "fig6-size" ] ~docv:"N" ~doc)

let full_arg =
  let doc = "Run figures at the paper's full scale (5K list, 1M hash)." in
  Arg.(value & flag & info [ "full" ] ~doc)

let schemes_arg =
  let doc = "Comma-separated reclamation schemes to compare." in
  Arg.(
    value
    & opt (list string) Oamem_reclaim.Registry.paper_methods
    & info [ "s"; "schemes" ] ~docv:"NAME,..." ~doc)

let seed_arg =
  let doc = "Workload random seed." in
  Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED" ~doc)

let csv_arg =
  let doc = "Directory to write per-experiment CSV files into." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"DIR" ~doc)

let trace_arg =
  let doc =
    "Write a Chrome trace_event JSON of the designated run (last scheme at \
     the highest thread count) to $(docv); load it in chrome://tracing or \
     Perfetto."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Write the designated run's metrics snapshot (counters, gauges, \
     histograms) as JSON to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let quick_arg =
  let doc = "Use the quick preset (fewer thread counts, shorter horizon)." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let config_term =
  let make threads horizon fig4 fig6 full schemes seed csv quick trace metrics =
    let base =
      if quick then Experiments.quick_config else Experiments.default_config
    in
    {
      Experiments.threads =
        (if threads <> Experiments.default_config.Experiments.threads then
           threads
         else base.Experiments.threads);
      horizon_cycles =
        (if horizon <> Experiments.default_config.Experiments.horizon_cycles
         then horizon
         else base.Experiments.horizon_cycles);
      fig4_size =
        (if full then 5_000
         else if fig4 <> Experiments.default_config.Experiments.fig4_size then
           fig4
         else base.Experiments.fig4_size);
      fig6_size =
        (if full then 1_000_000
         else if fig6 <> Experiments.default_config.Experiments.fig6_size then
           fig6
         else base.Experiments.fig6_size);
      schemes;
      seed;
      csv_dir = csv;
      trace_out = trace;
      metrics_out = metrics;
    }
  in
  Term.(
    const make $ threads_arg $ horizon_arg $ fig4_arg $ fig6_arg $ full_arg
    $ schemes_arg $ seed_arg $ csv_arg $ quick_arg $ trace_arg $ metrics_arg)

let list_cmd =
  let run () =
    Printf.printf "%-18s %-22s %s\n" "id" "paper" "title";
    Printf.printf "%s\n" (String.make 80 '-');
    List.iter
      (fun e ->
        Printf.printf "%-18s %-22s %s\n" e.Experiments.id
          e.Experiments.paper_ref e.Experiments.title)
      Experiments.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the experiments.") Term.(const run $ const ())

let run_cmd =
  let id_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"EXPERIMENT" ~doc:"Experiment id (see `repro list').")
  in
  let run cfg id =
    let e = Experiments.find id in
    e.Experiments.run cfg
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one experiment.")
    Term.(const run $ config_term $ id_arg)

let all_cmd =
  let run cfg =
    List.iter (fun e -> e.Experiments.run cfg) Experiments.all
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Run every experiment.")
    Term.(const run $ config_term)

let () =
  let doc =
    "Reproduction of 'Releasing Memory with Optimistic Access' (SPAA 2023) \
     on a simulated multicore."
  in
  exit (Cmd.eval (Cmd.group (Cmd.info "repro" ~doc) [ list_cmd; run_cmd; all_cmd ]))
