(* A lock-free ordered set shared by simulated threads, reclaimed with the
   paper's OA-VER method.

   Eight threads hammer one Harris–Michael list with inserts, deletes and
   lookups; at the end the example cross-checks the operation accounting
   against the final contents and prints the reclamation statistics —
   including how often OA-VER piggy-backed on other threads' warnings.

   Run with: dune exec examples/concurrent_set.exe *)

open Oamem_engine
open Oamem_core
open Oamem_lockfree
open Oamem_reclaim

let nthreads = 8
let ops_per_thread = 400
let universe = 512

let () =
  let sys =
    System.create
      (System.Config.make ~nthreads ~scheme:"oa-ver"
         ~scheme_cfg:
           {
             Scheme.default_config with
             Scheme.threshold = 32;
             slots_per_thread = Hm_list.slots_needed;
           }
         ())
  in
  let set = ref None in
  System.run_on_thread0 sys (fun ctx ->
      let s = System.list_set sys ctx in
      for k = 0 to (universe / 4) - 1 do
        ignore (Hm_list.insert s ctx (4 * k))
      done;
      set := Some s);
  let s = Option.get !set in
  let prefill = Hm_list.length s in

  let inserted = Array.make nthreads 0 and deleted = Array.make nthreads 0 in
  for tid = 0 to nthreads - 1 do
    System.spawn sys ~tid (fun ctx ->
        let rng = (Engine.Mem.prng ctx) in
        for _ = 1 to ops_per_thread do
          let k = Prng.int rng universe in
          match Prng.int rng 3 with
          | 0 -> if Hm_list.insert s ctx k then inserted.(tid) <- inserted.(tid) + 1
          | 1 -> if Hm_list.delete s ctx k then deleted.(tid) <- deleted.(tid) + 1
          | _ -> ignore (Hm_list.contains s ctx k)
        done)
  done;
  System.run sys;

  let total_ins = Array.fold_left ( + ) 0 inserted in
  let total_del = Array.fold_left ( + ) 0 deleted in
  let final = Hm_list.length s in
  Fmt.pr "prefill=%d +%d inserts -%d deletes = %d (measured %d) %s@." prefill
    total_ins total_del
    (prefill + total_ins - total_del)
    final
    (if prefill + total_ins - total_del = final then "OK" else "MISMATCH!");
  Fmt.pr "reclamation: %a@." Scheme.pp_stats (System.scheme sys).Scheme.stats;
  Fmt.pr "simulated time: %.3f ms across %d threads@."
    (Engine.elapsed_seconds (System.engine sys) *. 1e3)
    nthreads;
  System.drain sys;
  Fmt.pr "after drain: %a@." Oamem_vmem.Vmem.pp_residency (System.vmem sys)
