(* The headline capability: releasing OA-managed memory back to the OS.

   Builds a 20K-node hash set under each remap strategy, deletes every key,
   drains caches and limbo lists, and prints the physical-frame and RSS
   metrics side by side — reproducing the §3.1/§3.2 trade-off:

   - keep:    virtual range stays readable, frames never released (§3.1)
   - madvise: frames released, range reads as zeroes (§3.2 method 1)
   - shared:  frames released via the shared region; note the inflated
              Linux-style RSS statistic the paper calls "haywire" (§3.2
              method 2)

   Run with: dune exec examples/memory_release.exe *)

open Oamem_engine
open Oamem_lrmalloc
open Oamem_core
open Oamem_lockfree
open Oamem_reclaim

let size = 20_000

let run_strategy remap =
  let sys =
    System.create
      (System.Config.make ~nthreads:2 ~scheme:"oa-ver"
         ~alloc_cfg:{ Config.default with Config.sb_pages = 16; remap }
         ~scheme_cfg:
           {
             Scheme.default_config with
             Scheme.threshold = 64;
             slots_per_thread = Hm_list.slots_needed;
           }
         ())
  in
  let setup = Engine.external_ctx () in
  let h = System.hash_set sys setup ~expected_size:size in
  let keys = List.init size (fun i -> i) in
  Michael_hash.prefill h setup keys;
  (* frame/residency readings via the metrics registry *)
  let gauge name = Oamem_obs.Metrics.find (System.metrics sys) name in
  let frames_full = gauge "vmem.frames_live" in
  System.run_on_thread0 sys (fun ctx ->
      List.iter (fun k -> ignore (Michael_hash.delete h ctx k)) keys);
  System.drain sys;
  ( frames_full,
    gauge "vmem.frames_live",
    gauge "vmem.resident_pages",
    gauge "vmem.linux_rss_pages" )

let () =
  Fmt.pr "%-8s  %12s  %12s  %14s  %14s@." "strategy" "frames-full"
    "frames-after" "resident-pages" "linux-rss-pages";
  List.iter
    (fun remap ->
      let frames_full, frames_after, resident, rss = run_strategy remap in
      Fmt.pr "%-8s  %12d  %12d  %14d  %14d@."
        (Config.remap_strategy_name remap)
        frames_full frames_after resident rss)
    [ Config.Keep_resident; Config.Madvise; Config.Shared_map ];
  Fmt.pr
    "@.keep retains every frame; madvise and shared release them; shared's \
     Linux RSS double-counts the aliased pages (paper, section 3.2).@."
