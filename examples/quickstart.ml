(* Quickstart: the paper's core guarantee in a dozen lines.

   palloc() gives you memory whose *address range stays readable after
   free* — the contract optimistic-access reclamation needs — while the
   physical frames behind it still return to the operating system.

   Run with: dune exec examples/quickstart.exe *)

open Oamem_engine
open Oamem_vmem
open Oamem_lrmalloc
open Oamem_core

let () =
  let sys =
    System.create (System.Config.make ~nthreads:1 ())
  in
  let alloc = System.alloc sys in
  let vm = System.vmem sys in
  let ctx = Engine.external_ctx () in

  (* allocate persistently, use, free *)
  let block = Lrmalloc.palloc alloc ctx 8 in
  Vmem.store vm ctx block 1234;
  Fmt.pr "palloc'd block at %#x holds %d@." block (Vmem.load vm ctx block);
  Lrmalloc.free alloc ctx block;

  (* the paper's guarantee: reading after free is safe (contents are
     unspecified, the *access* is what is guaranteed) *)
  let garbage = Vmem.load vm ctx block in
  Fmt.pr "after free, reading %#x is still valid (got %d)@." block garbage;

  (* a regular malloc'd block, by contrast, may be unmapped once its
     superblock empties — that is what palloc prevents *)
  let m = Lrmalloc.malloc alloc ctx 8 in
  Fmt.pr "malloc'd block at %#x; freeing it@." m;
  Lrmalloc.free alloc ctx m;

  (* release everything and show that physical memory went back while the
     persistent range stayed mapped *)
  Lrmalloc.flush_thread_cache alloc ctx;
  Heap.trim (Lrmalloc.heap alloc) ctx;
  Fmt.pr "usage after teardown: %a@." Vmem.pp_residency vm;
  Fmt.pr "persistent range still mapped: %b@." (Vmem.mapped vm block);
  Fmt.pr "read after release: %d (zero-filled cow frame)@."
    (Vmem.load vm ctx block)
