(* Using the bounded schedule explorer to *prove* (up to a depth bound) that
   a small lock-free interaction is correct under every interleaving — and
   to watch it catch a deliberately broken variant.

   Scenario: two simulated threads race a "claim" on the same slot.  The
   correct version claims with CAS; the broken version does a racy
   read-then-write.  The explorer enumerates every scheduling of the first
   [depth] memory accesses and checks that exactly one thread wins.

   Run with: dune exec examples/schedule_explorer.exe *)

open Oamem_engine
open Oamem_vmem

let g = Geometry.default

let scenario ~broken () =
  let vm = Vmem.create ~max_pages:64 g in
  let slot = Vmem.reserve vm ~npages:1 in
  Vmem.map_anon vm (Engine.external_ctx ())
    ~vpage:(Geometry.page_of_addr g slot)
    ~npages:1;
  let wins = Array.make 2 false in
  {
    Explore.setup =
      (fun eng ->
        for tid = 0 to 1 do
          Engine.spawn eng ~tid (fun ctx ->
              let me = (Engine.Mem.tid ctx) + 1 in
              if broken then begin
                (* racy claim: check-then-act *)
                let v = Vmem.load vm ctx slot in
                if v = 0 then begin
                  Vmem.store vm ctx slot me;
                  wins.(me - 1) <- true
                end
              end
              else if Vmem.cas vm ctx slot ~expect:0 ~desired:me then
                wins.(me - 1) <- true)
        done);
    verify =
      (fun () ->
        let winners = (if wins.(0) then 1 else 0) + if wins.(1) then 1 else 0 in
        if winners <> 1 then
          failwith (Printf.sprintf "%d winners claimed the slot" winners));
  }

let () =
  Fmt.pr "Exploring the CAS-based claim...@.";
  let stats = Explore.check ~nthreads:2 ~depth:8 (scenario ~broken:false) in
  Fmt.pr "  %d schedules explored, %d violations — correct under every \
          interleaving up to depth 8.@."
    stats.Explore.runs stats.Explore.violations;

  Fmt.pr "@.Exploring the broken check-then-act claim...@.";
  (match Explore.check ~nthreads:2 ~depth:8 (scenario ~broken:true) with
  | exception Failure msg -> Fmt.pr "  caught it: %s@." msg
  | stats ->
      Fmt.pr "  unexpectedly clean after %d runs?!@." stats.Explore.runs);

  Fmt.pr
    "@.The same engine runs the paper's benchmarks: every interleaving the \
     explorer visits is a schedule the reclamation schemes must survive.@."
