(* A web-style session store: the workload the paper's introduction
   motivates — a long-lived concurrent service whose hot structure churns
   continuously and whose memory must go back to the rest of the process.

   Sessions arrive, live for a while, and expire.  The store is a lock-free
   hash set of session ids reclaimed with OA-VER on top of palloc, so every
   expired session's memory becomes available to *other* allocations in the
   same process (here: a per-request scratch buffer from the same
   allocator), something the original OA's private pools cannot do.

   Run with: dune exec examples/session_store.exe *)

open Oamem_engine
open Oamem_vmem
open Oamem_lrmalloc
open Oamem_core
open Oamem_lockfree
open Oamem_reclaim

let nthreads = 4
let rounds = 6
let sessions_per_round = 2_000

let () =
  let sys =
    System.create
      (System.Config.make ~nthreads ~scheme:"oa-ver"
         ~alloc_cfg:{ Config.default with Config.sb_pages = 16 }
         ~scheme_cfg:
           {
             Scheme.default_config with
             Scheme.threshold = 64;
             slots_per_thread = Hm_list.slots_needed;
           }
         ())
  in
  let setup = Engine.external_ctx () in
  let store = System.hash_set sys setup ~expected_size:sessions_per_round in
  let alloc = System.alloc sys in

  for round = 1 to rounds do
    (* each thread registers new sessions and expires the previous round's *)
    for tid = 0 to nthreads - 1 do
      System.spawn sys ~tid (fun ctx ->
          let base = round * sessions_per_round in
          let per_thread = sessions_per_round / nthreads in
          for i = tid * per_thread to ((tid + 1) * per_thread) - 1 do
            (* a request-scoped scratch buffer from the same allocator:
               freed session memory is reusable here (the paper's §3.1) *)
            let scratch = Lrmalloc.malloc alloc ctx 32 in
            Vmem.store (System.vmem sys) ctx scratch (base + i);
            ignore (Michael_hash.insert store ctx (base + i));
            if round > 1 then
              ignore (Michael_hash.delete store ctx (base - sessions_per_round + i));
            Lrmalloc.free alloc ctx scratch
          done)
    done;
    System.run sys;
    let m = System.metrics sys in
    Fmt.pr "round %d: live sessions=%d frames=%d (peak %d)@." round
      (Michael_hash.length store)
      (Oamem_obs.Metrics.find m "vmem.frames_live")
      (Oamem_obs.Metrics.find m "vmem.frames_peak")
  done;

  System.drain sys;
  Fmt.pr "@.steady state: footprint bounded despite %d total sessions — %a@."
    (rounds * sessions_per_round)
    Vmem.pp_residency (System.vmem sys);
  Fmt.pr "reclamation: %a@." Scheme.pp_stats (System.scheme sys).Scheme.stats;
  (* the same counters through the unified metrics registry *)
  let m = System.metrics sys in
  Fmt.pr "metrics: retired=%d freed=%d frames released=%d@."
    (Oamem_obs.Metrics.find m "scheme.retired")
    (Oamem_obs.Metrics.find m "scheme.freed")
    (Oamem_obs.Metrics.find m "vmem.frames_released")
