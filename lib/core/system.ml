(* The assembled system: simulated machine + virtual memory + LRMalloc +
   a reclamation scheme.  This is the library façade a user builds
   experiments and applications on.

   A [t] owns one simulated multicore (engine), one address space, one
   allocator instance and one reclamation scheme instance; data structures
   are then created against it and driven from simulated threads spawned
   with [spawn]/[run].

   Observability: every [t] also owns one event trace (shared by the
   engine, virtual memory, allocator and scheme — see {!Oamem_obs.Trace})
   and one metrics registry giving a single named view over all the
   per-subsystem stats records ({!Oamem_obs.Metrics}). *)

open Oamem_engine
open Oamem_vmem
open Oamem_lrmalloc
open Oamem_reclaim
module Alloc_config = Oamem_lrmalloc.Config
module Metrics = Oamem_obs.Metrics
module Trace = Oamem_obs.Trace
module Profile = Oamem_obs.Profile
module Timeline = Oamem_obs.Timeline
module Sanitizer = Oamem_sanitize.Sanitizer

type config = {
  nthreads : int;
  policy : Engine.policy;
  cost : Cost_model.t;
  cache_cfg : Hierarchy.config option;
  geom : Geometry.t;
  max_pages : int;
  frame_capacity : int option;
  frame_quota : int option;  (** cap on live frames (memory pressure) *)
  shared_region_pages : int;
  alloc_cfg : Alloc_config.t;
  scheme : string;  (** one of {!Oamem_reclaim.Registry.names} *)
  scheme_cfg : Scheme.config;
  trace : bool;  (** start with event tracing enabled *)
  trace_capacity : int;  (** ring capacity per thread *)
  sanitize : bool;  (** enable the memory-lifecycle sanitizer *)
  profile : bool;  (** start with the cycle-attribution profiler enabled *)
  timeline : int option;
      (** window width in simulated cycles: build a {!Oamem_obs.Timeline}
          over the trace and profiler streams (forces both on) *)
}

module Config = struct
  type t = config

  let make ?(nthreads = 4) ?(policy = Engine.Min_clock)
      ?(cost = Cost_model.opteron_6274) ?cache_cfg ?(geom = Geometry.default)
      ?(max_pages = 1 lsl 18) ?frame_capacity ?frame_quota
      ?(shared_region_pages = 1) ?(alloc_cfg = Alloc_config.default)
      ?(scheme = "oa-ver") ?(scheme_cfg = Scheme.default_config)
      ?(trace = false) ?(trace_capacity = 8192) ?(sanitize = false)
      ?(profile = false) ?timeline () =
    {
      nthreads;
      policy;
      cost;
      cache_cfg;
      geom;
      max_pages;
      frame_capacity;
      frame_quota;
      shared_region_pages;
      alloc_cfg;
      scheme;
      scheme_cfg;
      trace;
      trace_capacity;
      sanitize;
      profile;
      timeline;
    }
end

let default_config = Config.make ()

type t = {
  config : config;
  engine : Engine.t;
  vmem : Vmem.t;
  meta : Cell.heap;
  alloc : Lrmalloc.t;
  scheme : Scheme.ops;
  metrics : Metrics.t;
  trace : Trace.t;
  profile : Profile.t;
  timeline : Timeline.t;
  sanitizer : Sanitizer.t option;
}

(* One named view over every subsystem's stats record.  Counters reset with
   the registry (measurement reset); gauges are instantaneous readings. *)
let register_metrics m ~engine ~vmem ~alloc ~(scheme : Scheme.ops) ~trace =
  let reg ?reset name kind read = Metrics.register m ?reset ~name ~kind read in
  (* engine: accesses, fences, faults, syscalls + cache/TLB detail; one
     shared reset closure zeroes all of them *)
  let ereset () = Engine.reset_stats engine in
  let e field = reg ~reset:ereset ("engine." ^ field) Metrics.Counter in
  e "accesses" (fun () -> (Engine.stats engine).Engine.accesses);
  e "fences" (fun () -> (Engine.stats engine).Engine.fences);
  e "faults" (fun () -> (Engine.stats engine).Engine.faults);
  e "syscalls" (fun () -> (Engine.stats engine).Engine.syscalls);
  let cache () = (Engine.stats engine).Engine.cache in
  e "cache.l1_misses" (fun () -> (cache ()).Hierarchy.l1.Cache.misses);
  e "cache.l2_misses" (fun () -> (cache ()).Hierarchy.l2.Cache.misses);
  e "cache.l3_misses" (fun () -> (cache ()).Hierarchy.l3.Cache.misses);
  e "cache.remote_invalidations" (fun () ->
      (cache ()).Hierarchy.remote_invalidations);
  let tlb () = (Engine.stats engine).Engine.tlb in
  e "tlb.hits" (fun () -> (tlb ()).Tlb.hits);
  e "tlb.misses" (fun () -> (tlb ()).Tlb.misses);
  e "tlb.shootdowns" (fun () -> (tlb ()).Tlb.shootdowns);
  (* reclamation scheme *)
  let ss = scheme.Scheme.stats in
  let sreset () = Scheme.reset_stats ss in
  let s field = reg ~reset:sreset ("scheme." ^ field) Metrics.Counter in
  s "retired" (fun () -> ss.Scheme.retired);
  s "freed" (fun () -> ss.Scheme.freed);
  s "restarts" (fun () -> ss.Scheme.restarts);
  s "warnings_fired" (fun () -> ss.Scheme.warnings_fired);
  s "warnings_piggybacked" (fun () -> ss.Scheme.warnings_piggybacked);
  s "reclaim_phases" (fun () -> ss.Scheme.reclaim_phases);
  s "neutralized" (fun () -> ss.Scheme.neutralized);
  s "seized" (fun () -> ss.Scheme.seized);
  s "cond_fails" (fun () -> ss.Scheme.cond_fails);
  reg "scheme.unreclaimed" Metrics.Gauge (fun () -> Scheme.unreclaimed ss);
  reg "scheme.pinned" Metrics.Gauge (fun () -> Scheme.pinned ss);
  scheme.Scheme.sink.Scheme.reclaim_hist <-
    Some (Metrics.histogram m "scheme.reclaim_batch");
  (* allocator *)
  let heap = Lrmalloc.heap alloc in
  let hs = Heap.stats heap in
  let hreset () = Heap.reset_stats heap in
  let a field = reg ~reset:hreset ("alloc." ^ field) Metrics.Counter in
  a "sb_fresh" (fun () -> hs.Heap.sb_fresh);
  a "sb_range_reused" (fun () -> hs.Heap.sb_range_reused);
  a "sb_released" (fun () -> hs.Heap.sb_released);
  a "sb_remapped" (fun () -> hs.Heap.sb_remapped);
  a "large_allocs" (fun () -> hs.Heap.large_allocs);
  a "large_frees" (fun () -> hs.Heap.large_frees);
  a "pressure_recoveries" (fun () -> hs.Heap.pressure_recoveries);
  a "pressure_failures" (fun () -> hs.Heap.pressure_failures);
  (* virtual memory: Vmem memoizes the page-table scan on the page-table
     epoch, so reading the four residency gauges costs at most one scan per
     snapshot *)
  let g field read = reg ("vmem." ^ field) Metrics.Gauge read in
  g "frames_live" (fun () -> Vmem.frames_live vmem);
  g "frames_peak" (fun () -> Vmem.frames_peak vmem);
  g "resident_pages" (fun () -> Vmem.resident_pages vmem);
  g "linux_rss_pages" (fun () -> Vmem.linux_rss_pages vmem);
  g "mapped_pages" (fun () -> Vmem.mapped_pages vmem);
  g "cow_pages" (fun () -> Vmem.cow_pages vmem);
  let vreset () = Vmem.reset_counters vmem in
  reg ~reset:vreset "vmem.minor_faults" Metrics.Counter (fun () ->
      Vmem.minor_faults vmem);
  reg ~reset:vreset "vmem.cow_cas_faults" Metrics.Counter (fun () ->
      Vmem.cow_cas_faults vmem);
  reg ~reset:vreset "vmem.frames_released" Metrics.Counter (fun () ->
      Frames.freed_total (Vmem.frames vmem));
  (* observability about observability: ring overwrites would otherwise be
     silent data loss in every exported trace *)
  reg
    ~reset:(fun () -> Trace.reset_dropped trace)
    "obs.trace_dropped" Metrics.Counter
    (fun () -> Trace.dropped trace)

let create (config : config) =
  let engine =
    Engine.create ~policy:config.policy ~cost:config.cost
      ?cache_cfg:config.cache_cfg ~geom:config.geom
      ~nthreads:config.nthreads ()
  in
  let vmem =
    Vmem.create ~max_pages:config.max_pages
      ?frame_capacity:config.frame_capacity ?frame_quota:config.frame_quota
      ~shared_region_pages:config.shared_region_pages config.geom
  in
  let meta = Cell.heap config.geom in
  let alloc =
    Lrmalloc.create ~cfg:config.alloc_cfg ~vmem ~meta
      ~nthreads:config.nthreads ()
  in
  let entry = Registry.find config.scheme in
  (* The sanitizer's allocator hooks go in *before* the scheme is built so
     recycling pools allocated during scheme construction are shadowed.
     Its policy is the scheme's capability declaration; the only cap that
     can depend on the instance config is DEBRA's [neutralizes] switch, so
     apply it here to keep the policy consistent with the constructed
     [ops.caps]. *)
  let sanitizer =
    if not config.sanitize then None
    else begin
      let caps =
        {
          entry.Registry.caps with
          Scheme.neutralizes =
            entry.Registry.caps.Scheme.neutralizes
            && config.scheme_cfg.Scheme.neutralize;
        }
      in
      let s = Sanitizer.create ~vmem ~nthreads:config.nthreads caps in
      Vmem.set_access_hook vmem (Some (Sanitizer.on_access s));
      Lrmalloc.set_lifecycle alloc (Some (Sanitizer.lifecycle s));
      Heap.set_range_hook (Lrmalloc.heap alloc)
        (Some (Sanitizer.range_hook s));
      Some s
    end
  in
  let scheme =
    entry.Registry.make config.scheme_cfg ~alloc ~meta
      ~nthreads:config.nthreads
  in
  let scheme =
    match sanitizer with
    | Some s -> Scheme.observe (Sanitizer.observer s) scheme
    | None -> scheme
  in
  (* Profiling wrapper outermost, so retire/flush spans also cover the
     sanitizer's bookkeeping when both are on. *)
  let scheme = Scheme.profiled scheme in
  let trace =
    Trace.create ~capacity:config.trace_capacity ~nthreads:config.nthreads ()
  in
  Trace.set_enabled trace config.trace;
  Engine.set_trace engine trace;
  Vmem.set_trace vmem trace;
  Heap.set_trace (Lrmalloc.heap alloc) trace;
  scheme.Scheme.sink.Scheme.trace <- trace;
  Option.iter (fun s -> Sanitizer.set_trace s trace) sanitizer;
  let profile = Profile.create ~nthreads:config.nthreads () in
  Profile.set_enabled profile config.profile;
  Engine.set_profile engine profile;
  (* The timeline consumes the trace and profiler streams, so configuring
     one forces both sources on; the sinks are only installed here — with
     no timeline the emit paths keep their no-op defaults. *)
  let timeline =
    match config.timeline with
    | None -> Timeline.null
    | Some width ->
        let tl = Timeline.create ~width () in
        Timeline.set_enabled tl true;
        Trace.set_enabled trace true;
        Profile.set_enabled profile true;
        Trace.set_sink trace (Timeline.note_event tl);
        Profile.set_leave_hook profile (Timeline.note_latency tl);
        tl
  in
  let metrics = Metrics.create () in
  register_metrics metrics ~engine ~vmem ~alloc ~scheme ~trace;
  Option.iter
    (fun s ->
      Metrics.register metrics ~name:"sanitizer.violations"
        ~kind:Metrics.Gauge (fun () -> Sanitizer.violation_count s))
    sanitizer;
  {
    config;
    engine;
    vmem;
    meta;
    alloc;
    scheme;
    metrics;
    trace;
    profile;
    timeline;
    sanitizer;
  }

let engine t = t.engine
let vmem t = t.vmem
let alloc t = t.alloc
let scheme t = t.scheme
let meta t = t.meta
let nthreads t = t.config.nthreads
let sanitizer t = t.sanitizer

let check_sanitizer t =
  Option.iter (fun s -> Sanitizer.check s) t.sanitizer

let check_sanitizer_quiescent t =
  Option.iter (fun s -> Sanitizer.check_quiescent s) t.sanitizer

(* {2 Data structures} *)

let list_set t ctx =
  Oamem_lockfree.Hm_list.create ctx ~scheme:t.scheme ~vmem:t.vmem

let hash_set t ctx ~expected_size =
  Oamem_lockfree.Michael_hash.create ctx ~scheme:t.scheme ~vmem:t.vmem
    ~alloc:t.alloc ~expected_size ~load_factor:0.75

let list_map t ctx =
  Oamem_lockfree.Hm_list.create_kv ctx ~scheme:t.scheme ~vmem:t.vmem

let hash_map t ctx ~expected_size =
  Oamem_lockfree.Michael_hash.create_kv ctx ~scheme:t.scheme ~vmem:t.vmem
    ~alloc:t.alloc ~expected_size ~load_factor:0.75

(* {2 Thread driving} *)

let spawn t ~tid f = Engine.spawn t.engine ~tid f
let run ?max_steps t = Engine.run ?max_steps t.engine

(* {2 Fault injection} *)

let set_fault_plan t plan = Engine.set_fault_plan t.engine plan
let crashed t ~tid = Engine.crashed t.engine ~tid

(* Run [f] once on thread 0 to completion (setup/prefill phases). *)
let run_on_thread0 t f =
  spawn t ~tid:0 f;
  run t

(* {2 Teardown and metrics} *)

(* Drain limbo lists and thread caches from every thread slot, then release
   lingering empty superblocks, so memory metrics reflect steady state.
   Crashed slots cannot run: whatever they pinned stays pinned — which is
   precisely what the robustness experiments measure. *)
let drain t =
  for tid = 0 to t.config.nthreads - 1 do
    if not (crashed t ~tid) then
      spawn t ~tid (fun ctx ->
          t.scheme.Scheme.flush ctx;
          Lrmalloc.flush_thread_cache t.alloc ctx)
  done;
  run t;
  run_on_thread0 t (fun ctx -> Oamem_lrmalloc.Heap.trim (Lrmalloc.heap t.alloc) ctx)

let metrics_registry t = t.metrics
let metrics t = Metrics.snapshot t.metrics
let trace t = t.trace
let set_tracing t on = Trace.set_enabled t.trace on
let profile t = t.profile
let set_profiling t on = Profile.set_enabled t.profile on
let timeline t = t.timeline

(* [Engine.reset_clocks] rebuilds the scheduler's heap index (its keys are
   the clocks being zeroed) and the translation-cache flush drops frames
   cached during warmup, so the measured phase starts from a cold,
   consistent state.  The flush also happens via the registered
   [Vmem.reset_counters] reset, but is kept explicit: the contract must not
   depend on metric-registration order. *)
let reset_measurement t =
  Engine.reset_clocks t.engine;
  Vmem.flush_translation_cache t.vmem;
  Metrics.reset t.metrics;
  Trace.clear t.trace;
  Profile.reset t.profile;
  Timeline.reset t.timeline
