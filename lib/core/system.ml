(* The assembled system: simulated machine + virtual memory + LRMalloc +
   a reclamation scheme.  This is the library façade a user builds
   experiments and applications on.

   A [t] owns one simulated multicore (engine), one address space, one
   allocator instance and one reclamation scheme instance; data structures
   are then created against it and driven from simulated threads spawned
   with [spawn]/[run]. *)

open Oamem_engine
open Oamem_vmem
open Oamem_lrmalloc
open Oamem_reclaim

type config = {
  nthreads : int;
  policy : Engine.policy;
  cost : Cost_model.t;
  cache_cfg : Hierarchy.config option;
  geom : Geometry.t;
  max_pages : int;
  frame_capacity : int option;
  frame_quota : int option;  (** cap on live frames (memory pressure) *)
  shared_region_pages : int;
  alloc_cfg : Config.t;
  scheme : string;  (** one of {!Oamem_reclaim.Registry.names} *)
  scheme_cfg : Scheme.config;
}

let default_config =
  {
    nthreads = 4;
    policy = Engine.Min_clock;
    cost = Cost_model.opteron_6274;
    cache_cfg = None;
    geom = Geometry.default;
    max_pages = 1 lsl 18;
    frame_capacity = None;
    frame_quota = None;
    shared_region_pages = 1;
    alloc_cfg = Config.default;
    scheme = "oa-ver";
    scheme_cfg = Scheme.default_config;
  }

type t = {
  config : config;
  engine : Engine.t;
  vmem : Vmem.t;
  meta : Cell.heap;
  alloc : Lrmalloc.t;
  scheme : Scheme.ops;
}

let create (config : config) =
  let engine =
    Engine.create ~policy:config.policy ~cost:config.cost
      ?cache_cfg:config.cache_cfg ~geom:config.geom
      ~nthreads:config.nthreads ()
  in
  let vmem =
    Vmem.create ~max_pages:config.max_pages
      ?frame_capacity:config.frame_capacity ?frame_quota:config.frame_quota
      ~shared_region_pages:config.shared_region_pages config.geom
  in
  let meta = Cell.heap config.geom in
  let alloc =
    Lrmalloc.create ~cfg:config.alloc_cfg ~vmem ~meta
      ~nthreads:config.nthreads ()
  in
  let scheme =
    (Registry.find config.scheme) config.scheme_cfg ~alloc ~meta
      ~nthreads:config.nthreads
  in
  { config; engine; vmem; meta; alloc; scheme }

let engine t = t.engine
let vmem t = t.vmem
let alloc t = t.alloc
let scheme t = t.scheme
let meta t = t.meta
let nthreads t = t.config.nthreads

(* {2 Data structures} *)

let list_set t ctx =
  Oamem_lockfree.Hm_list.create ctx ~scheme:t.scheme ~vmem:t.vmem

let hash_set t ctx ~expected_size =
  Oamem_lockfree.Michael_hash.create ctx ~scheme:t.scheme ~vmem:t.vmem
    ~alloc:t.alloc ~expected_size ~load_factor:0.75

let list_map t ctx =
  Oamem_lockfree.Hm_list.create_kv ctx ~scheme:t.scheme ~vmem:t.vmem

let hash_map t ctx ~expected_size =
  Oamem_lockfree.Michael_hash.create_kv ctx ~scheme:t.scheme ~vmem:t.vmem
    ~alloc:t.alloc ~expected_size ~load_factor:0.75

(* {2 Thread driving} *)

let spawn t ~tid f = Engine.spawn t.engine ~tid f
let run ?max_steps t = Engine.run ?max_steps t.engine

(* {2 Fault injection} *)

let set_fault_plan t plan = Engine.set_fault_plan t.engine plan
let crashed t ~tid = Engine.crashed t.engine ~tid

(* Run [f] once on thread 0 to completion (setup/prefill phases). *)
let run_on_thread0 t f =
  spawn t ~tid:0 f;
  run t

(* {2 Teardown and metrics} *)

(* Drain limbo lists and thread caches from every thread slot, then release
   lingering empty superblocks, so memory metrics reflect steady state.
   Crashed slots cannot run: whatever they pinned stays pinned — which is
   precisely what the robustness experiments measure. *)
let drain t =
  for tid = 0 to t.config.nthreads - 1 do
    if not (crashed t ~tid) then
      spawn t ~tid (fun ctx ->
          t.scheme.Scheme.flush ctx;
          Lrmalloc.flush_thread_cache t.alloc ctx)
  done;
  run t;
  run_on_thread0 t (fun ctx -> Oamem_lrmalloc.Heap.trim (Lrmalloc.heap t.alloc) ctx)

let usage t = Vmem.usage t.vmem
let engine_stats t = Engine.stats t.engine
let scheme_stats t = t.scheme.Scheme.stats
let alloc_stats t = Lrmalloc.stats t.alloc

let reset_measurement t =
  Engine.reset_clocks t.engine;
  Engine.reset_stats t.engine
