(** The assembled system: simulated multicore + virtual memory + LRMalloc +
    one reclamation scheme — the façade applications and experiments build
    on. *)

open Oamem_engine
open Oamem_vmem
open Oamem_lrmalloc
open Oamem_reclaim

type config = {
  nthreads : int;
  policy : Engine.policy;
  cost : Cost_model.t;
  cache_cfg : Hierarchy.config option;
  geom : Geometry.t;
  max_pages : int;
  frame_capacity : int option;
  frame_quota : int option;
      (** cap on live frames (simulated memory pressure); exceeding it makes
          fault-ins raise [Frames.Out_of_frames], which the allocator
          answers with its pressure-recovery path *)
  shared_region_pages : int;
  alloc_cfg : Config.t;
  scheme : string;  (** one of {!Oamem_reclaim.Registry.names} *)
  scheme_cfg : Scheme.config;
}

val default_config : config
(** 4 threads, Min_clock, Opteron cost model, OA-VER. *)

type t

val create : config -> t
val engine : t -> Engine.t
val vmem : t -> Vmem.t
val alloc : t -> Lrmalloc.t
val scheme : t -> Scheme.ops
val meta : t -> Cell.heap
val nthreads : t -> int

(** {2 Data structures} *)

val list_set : t -> Engine.ctx -> Oamem_lockfree.Hm_list.t
val hash_set :
  t -> Engine.ctx -> expected_size:int -> Oamem_lockfree.Michael_hash.t

val list_map : t -> Engine.ctx -> Oamem_lockfree.Hm_list.t
(** Key-value variant (3-word nodes); use the [_kv]/[lookup]/[replace] ops. *)

val hash_map :
  t -> Engine.ctx -> expected_size:int -> Oamem_lockfree.Michael_hash.t

(** {2 Thread driving} *)

val spawn : t -> tid:int -> (Engine.ctx -> unit) -> unit
val run : ?max_steps:int -> t -> unit
val run_on_thread0 : t -> (Engine.ctx -> unit) -> unit

(** {2 Fault injection} *)

val set_fault_plan : t -> Fault_plan.t -> unit
(** Install a stall/crash/jitter plan on the engine (see
    {!Oamem_engine.Fault_plan}). *)

val crashed : t -> tid:int -> bool

(** {2 Teardown and metrics} *)

val drain : t -> unit
(** Drain limbo lists and thread caches on every non-crashed slot, then
    release lingering empty superblocks.  Crashed slots keep whatever they
    pinned — the robustness experiments measure exactly that. *)

val usage : t -> Vmem.usage
val engine_stats : t -> Engine.stats
val scheme_stats : t -> Scheme.stats
val alloc_stats : t -> Heap.stats

val reset_measurement : t -> unit
(** Reset clocks and engine counters (cache/TLB contents are preserved). *)
