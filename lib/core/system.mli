(** The assembled system: simulated multicore + virtual memory + LRMalloc +
    one reclamation scheme — the façade applications and experiments build
    on.

    Observability: every system owns one event trace shared by all its
    subsystems ({!trace}, see {!Oamem_obs.Trace}) and one metrics registry
    giving a single named view over every per-subsystem stats record
    ({!metrics}, see {!Oamem_obs.Metrics}). *)

open Oamem_engine
open Oamem_vmem
open Oamem_lrmalloc
open Oamem_reclaim

type config = {
  nthreads : int;
  policy : Engine.policy;
  cost : Cost_model.t;
  cache_cfg : Hierarchy.config option;
  geom : Geometry.t;
  max_pages : int;
  frame_capacity : int option;
  frame_quota : int option;
      (** cap on live frames (simulated memory pressure); exceeding it makes
          fault-ins raise [Frames.Out_of_frames], which the allocator
          answers with its pressure-recovery path *)
  shared_region_pages : int;
  alloc_cfg : Config.t;
  scheme : string;  (** one of {!Oamem_reclaim.Registry.names} *)
  scheme_cfg : Scheme.config;
  trace : bool;  (** start with event tracing enabled (default off) *)
  trace_capacity : int;  (** trace ring capacity per thread *)
  sanitize : bool;
      (** enable the memory-lifecycle sanitizer (default off): shadow-state
          checking of every block on every simulated access — see
          {!Oamem_sanitize.Sanitizer} *)
  profile : bool;
      (** start with the cycle-attribution profiler enabled (default off) —
          see {!Oamem_obs.Profile} *)
  timeline : int option;
      (** build a {!Oamem_obs.Timeline} with windows of this many simulated
          cycles over the trace and profiler streams (default [None]);
          configuring it forces [trace] and [profile] on, since those are
          its sources *)
}

(** Configuration builder: [Config.make ()] is the default configuration
    (4 threads, Min_clock, Opteron cost model, OA-VER, tracing off);
    keyword arguments override individual fields without spelling out the
    record. *)
module Config : sig
  type t = config

  val make :
    ?nthreads:int ->
    ?policy:Engine.policy ->
    ?cost:Cost_model.t ->
    ?cache_cfg:Hierarchy.config ->
    ?geom:Geometry.t ->
    ?max_pages:int ->
    ?frame_capacity:int ->
    ?frame_quota:int ->
    ?shared_region_pages:int ->
    ?alloc_cfg:Oamem_lrmalloc.Config.t ->
    ?scheme:string ->
    ?scheme_cfg:Scheme.config ->
    ?trace:bool ->
    ?trace_capacity:int ->
    ?sanitize:bool ->
    ?profile:bool ->
    ?timeline:int ->
    unit ->
    config
end

val default_config : config
(** [Config.make ()]. *)

type t

val create : config -> t
val engine : t -> Engine.t
val vmem : t -> Vmem.t
val alloc : t -> Lrmalloc.t
val scheme : t -> Scheme.ops
val meta : t -> Cell.heap
val nthreads : t -> int

(** {2 Data structures} *)

val list_set : t -> Engine.ctx -> Oamem_lockfree.Hm_list.t
val hash_set :
  t -> Engine.ctx -> expected_size:int -> Oamem_lockfree.Michael_hash.t

val list_map : t -> Engine.ctx -> Oamem_lockfree.Hm_list.t
(** Key-value variant (3-word nodes); use the [_kv]/[lookup]/[replace] ops. *)

val hash_map :
  t -> Engine.ctx -> expected_size:int -> Oamem_lockfree.Michael_hash.t

(** {2 Thread driving} *)

val spawn : t -> tid:int -> (Engine.ctx -> unit) -> unit
val run : ?max_steps:int -> t -> unit
val run_on_thread0 : t -> (Engine.ctx -> unit) -> unit

(** {2 Fault injection} *)

val set_fault_plan : t -> Fault_plan.t -> unit
(** Install a stall/crash/jitter plan on the engine (see
    {!Oamem_engine.Fault_plan}). *)

val crashed : t -> tid:int -> bool

(** {2 Teardown} *)

val drain : t -> unit
(** Drain limbo lists and thread caches on every non-crashed slot, then
    release lingering empty superblocks.  Crashed slots keep whatever they
    pinned — the robustness experiments measure exactly that. *)

(** {2 Observability} *)

val metrics : t -> Oamem_obs.Metrics.snapshot
(** One coherent snapshot over every subsystem: [engine.*] (accesses,
    fences, faults, syscalls, cache and TLB detail), [scheme.*] (retired,
    freed, restarts, warnings, reclaim phases + the [unreclaimed] gauge and
    the [reclaim_batch] histogram), [alloc.*] (superblock lifecycle,
    pressure recovery) and [vmem.*] (frame and page gauges, fault and
    release counters). *)

val metrics_registry : t -> Oamem_obs.Metrics.t

val trace : t -> Oamem_obs.Trace.t
(** The system-wide event trace (enabled via the [trace] config field or
    {!set_tracing}). *)

val set_tracing : t -> bool -> unit

val profile : t -> Oamem_obs.Profile.t
(** The system-wide cycle-attribution profiler (enabled via the [profile]
    config field or {!set_profiling}).  Attached to the engine, the
    allocator, the vmem layer, the reclamation scheme and the lock-free
    structures; see {!Oamem_obs.Profile} for the span model. *)

val set_profiling : t -> bool -> unit

val timeline : t -> Oamem_obs.Timeline.t
(** The simulated-time windowed aggregation over the trace and profiler
    streams (configured via the [timeline] config field; {!Oamem_obs.Timeline.null}
    otherwise).  Reset by {!reset_measurement} like the other
    observability state. *)

(** {2 Lifecycle sanitizer} *)

val sanitizer : t -> Oamem_sanitize.Sanitizer.t option
(** The sanitizer instance, when the [sanitize] config field was set. *)

val check_sanitizer : t -> unit
(** Raise {!Oamem_sanitize.Sanitizer.Violation} with the first recorded
    violation, if any; no-op when the sanitizer is off. *)

val check_sanitizer_quiescent : t -> unit
(** Quiescence check: additionally flags retired-but-never-reclaimed blocks
    (unless the scheme leaks by design — NR, the original OA pools).  Call
    after {!drain}. *)

val reset_measurement : t -> unit
(** Start a fresh measurement window: reset thread clocks, zero every
    counter in the metrics registry (engine, scheme, allocator and vmem
    counters alike — gauges such as peak frames are kept), drop all
    buffered trace events and clear the profiler.  Cache and TLB *contents*
    are preserved, so a warmed-up system stays warm. *)
