(* One set-associative cache level with LRU replacement.

   The cache tracks which line-sized blocks are present; it stores no data
   (the simulated memory itself lives in {!Oamem_vmem}).  Lookups and fills
   are O(associativity) over small int arrays, so the per-access overhead of
   the simulation stays low. *)

type t = {
  name : string;
  sets : int;
  ways : int;
  lines : int array;
      (* sets * ways interleaved entries: block tag at [2i] (-1 = invalid),
         LRU timestamp at [2i + 1].  One layout decision, two wins: a way
         scan and its victim scan walk one contiguous run of host
         cachelines instead of two parallel arrays, which matters for the
         L2/L3 instances whose separate tag and stamp arrays each spilled
         out of the host cache on miss-heavy (no-reclaim) workloads. *)
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
}

type stats = { hits : int; misses : int; invalidations : int }

let create ~name ~sets ~ways =
  if sets <= 0 || ways <= 0 then invalid_arg "Cache.create";
  if sets land (sets - 1) <> 0 then
    invalid_arg "Cache.create: sets must be a power of two";
  let lines = Array.make (2 * sets * ways) 0 in
  let rec invalidate_tags i =
    if i < Array.length lines then begin
      lines.(i) <- -1;
      invalidate_tags (i + 2)
    end
  in
  invalidate_tags 0;
  {
    name;
    sets;
    ways;
    lines;
    tick = 0;
    hits = 0;
    misses = 0;
    invalidations = 0;
  }

let capacity_lines t = t.sets * t.ways
let set_of_block t block = block land (t.sets - 1)

(* The lookup and victim loops are top-level functions taking every datum as
   an argument: local recursive functions capturing their environment would
   allocate a closure per access, and this is the simulator's innermost hot
   path.  Indices are in bounds by construction ([set_of_block] masks with
   [sets - 1], ways are fixed), so the loops use unchecked array accesses.
   [base] is an index into [lines] (already doubled); ways step by 2. *)
let rec find_way lines base ways block i =
  if i >= ways then -1
  else if Array.unsafe_get lines (base + (2 * i)) = block then i
  else find_way lines base ways block (i + 1)

(* LRU way of the set (or any invalid way), scanning ways [i..ways-1]. *)
let rec pick_victim lines base ways best i =
  if i >= ways then best
  else
    let best =
      if Array.unsafe_get lines (base + (2 * i)) = -1 then i
      else if
        Array.unsafe_get lines (base + (2 * best)) <> -1
        && Array.unsafe_get lines (base + (2 * i) + 1)
           < Array.unsafe_get lines (base + (2 * best) + 1)
      then i
      else best
    in
    pick_victim lines base ways best (i + 1)

(* Returns [true] on hit.  On miss the block is installed, evicting the
   least-recently-used way of its set.

   The touched block is kept at way 0 of its set (move-to-front), so a hit
   on a recently-used block is a single compare instead of a scan over the
   associativity.  Way positions are not simulator-observable: every lookup
   matches any way, and victim choice keys on validity and on LRU stamps
   (distinct by construction — each valid way's stamp is the unique tick of
   its last touch), never on position — so the swap cannot change which
   blocks are resident, hit, miss or get evicted. *)
let access t block =
  let base = 2 * set_of_block t block * t.ways in
  t.tick <- t.tick + 1;
  let lines = t.lines in
  if Array.unsafe_get lines base = block then begin
    t.hits <- t.hits + 1;
    Array.unsafe_set lines (base + 1) t.tick;
    true
  end
  else begin
    let i = find_way lines base t.ways block 1 in
    if i >= 0 then begin
      t.hits <- t.hits + 1;
      let t0 = Array.unsafe_get lines base in
      let s0 = Array.unsafe_get lines (base + 1) in
      Array.unsafe_set lines base block;
      Array.unsafe_set lines (base + 1) t.tick;
      Array.unsafe_set lines (base + (2 * i)) t0;
      Array.unsafe_set lines (base + (2 * i) + 1) s0;
      true
    end
    else begin
      t.misses <- t.misses + 1;
      let victim = pick_victim lines base t.ways 0 1 in
      let t0 = Array.unsafe_get lines base in
      let s0 = Array.unsafe_get lines (base + 1) in
      Array.unsafe_set lines base block;
      Array.unsafe_set lines (base + 1) t.tick;
      if victim > 0 then begin
        Array.unsafe_set lines (base + (2 * victim)) t0;
        Array.unsafe_set lines (base + (2 * victim) + 1) s0
      end;
      false
    end
  end

(* Probe without installing or updating LRU state. *)
let present t block =
  let base = 2 * set_of_block t block * t.ways in
  let rec find i =
    if i >= t.ways then false
    else t.lines.(base + (2 * i)) = block || find (i + 1)
  in
  find 0

let invalidate t block =
  let base = 2 * set_of_block t block * t.ways in
  let rec find i =
    if i >= t.ways then ()
    else if t.lines.(base + (2 * i)) = block then begin
      t.lines.(base + (2 * i)) <- -1;
      t.invalidations <- t.invalidations + 1
    end
    else find (i + 1)
  in
  find 0

let clear t =
  let rec invalidate_tags i =
    if i < Array.length t.lines then begin
      t.lines.(i) <- -1;
      invalidate_tags (i + 2)
    end
  in
  invalidate_tags 0;
  t.tick <- 0

let stats (t : t) =
  { hits = t.hits; misses = t.misses; invalidations = t.invalidations }

let reset_stats (t : t) =
  t.hits <- 0;
  t.misses <- 0;
  t.invalidations <- 0

let pp_stats ppf (s : stats) =
  Fmt.pf ppf "hits=%d misses=%d inval=%d" s.hits s.misses s.invalidations
