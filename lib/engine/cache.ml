(* One set-associative cache level with LRU replacement.

   The cache tracks which line-sized blocks are present; it stores no data
   (the simulated memory itself lives in {!Oamem_vmem}).  Lookups and fills
   are O(associativity) over small int arrays, so the per-access overhead of
   the simulation stays low. *)

type t = {
  name : string;
  sets : int;
  ways : int;
  tags : int array;  (* sets * ways; -1 = invalid *)
  stamps : int array;  (* LRU timestamps, parallel to [tags] *)
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
}

type stats = { hits : int; misses : int; invalidations : int }

let create ~name ~sets ~ways =
  if sets <= 0 || ways <= 0 then invalid_arg "Cache.create";
  if sets land (sets - 1) <> 0 then
    invalid_arg "Cache.create: sets must be a power of two";
  {
    name;
    sets;
    ways;
    tags = Array.make (sets * ways) (-1);
    stamps = Array.make (sets * ways) 0;
    tick = 0;
    hits = 0;
    misses = 0;
    invalidations = 0;
  }

let capacity_lines t = t.sets * t.ways
let set_of_block t block = block land (t.sets - 1)

(* The lookup and victim loops are top-level functions taking every datum as
   an argument: local recursive functions capturing their environment would
   allocate a closure per access, and this is the simulator's innermost hot
   path.  Indices are in bounds by construction ([set_of_block] masks with
   [sets - 1], ways are fixed), so the loops use unchecked array accesses. *)
let rec find_way tags base ways block i =
  if i >= ways then -1
  else if Array.unsafe_get tags (base + i) = block then i
  else find_way tags base ways block (i + 1)

(* LRU way of the set (or any invalid way), scanning ways [i..ways-1]. *)
let rec pick_victim tags stamps base ways best i =
  if i >= ways then best
  else
    let best =
      if Array.unsafe_get tags (base + i) = -1 then i
      else if
        Array.unsafe_get tags (base + best) <> -1
        && Array.unsafe_get stamps (base + i)
           < Array.unsafe_get stamps (base + best)
      then i
      else best
    in
    pick_victim tags stamps base ways best (i + 1)

(* Returns [true] on hit.  On miss the block is installed, evicting the
   least-recently-used way of its set. *)
let access t block =
  let base = set_of_block t block * t.ways in
  t.tick <- t.tick + 1;
  let i = find_way t.tags base t.ways block 0 in
  if i >= 0 then begin
    t.hits <- t.hits + 1;
    Array.unsafe_set t.stamps (base + i) t.tick;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    let victim = pick_victim t.tags t.stamps base t.ways 0 1 in
    Array.unsafe_set t.tags (base + victim) block;
    Array.unsafe_set t.stamps (base + victim) t.tick;
    false
  end

(* Probe without installing or updating LRU state. *)
let present t block =
  let base = set_of_block t block * t.ways in
  let rec find i =
    if i >= t.ways then false
    else t.tags.(base + i) = block || find (i + 1)
  in
  find 0

let invalidate t block =
  let base = set_of_block t block * t.ways in
  let rec find i =
    if i >= t.ways then ()
    else if t.tags.(base + i) = block then begin
      t.tags.(base + i) <- -1;
      t.invalidations <- t.invalidations + 1
    end
    else find (i + 1)
  in
  find 0

let clear t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  t.tick <- 0

let stats (t : t) =
  { hits = t.hits; misses = t.misses; invalidations = t.invalidations }

let reset_stats (t : t) =
  t.hits <- 0;
  t.misses <- 0;
  t.invalidations <- 0

let pp_stats ppf (s : stats) =
  Fmt.pf ppf "hits=%d misses=%d inval=%d" s.hits s.misses s.invalidations
