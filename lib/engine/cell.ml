(* Cost-modelled atomic metadata words.

   Allocator and reclaimer metadata (superblock anchors, hazard-pointer
   slots, warning bits, the global reclamation clock, pool heads...) must be
   visible to the cache simulator, otherwise the coherence traffic the paper
   reasons about — hazard-pointer publication, warning-bit broadcasts,
   global-clock contention — would be invisible to the cost model.

   A [Cell.t] is an OCaml [Atomic.t] paired with a simulated address drawn
   from a dedicated metadata heap placed far above any simulated physical
   frame, so metadata and data never alias in the cache simulator.  Metadata
   is modelled as identity-mapped for the TLB.

   Cells are safe under real OCaml domains too (the [Atomic.t] provides the
   synchronisation); under the simulation engine the cost accounting happens
   before the atomic operation, which is fine because the scheduler runs one
   yield-to-yield segment at a time. *)

type heap = {
  geom : Geometry.t;
  base : int;
  mutable next : int;
  mutable allocated : int;
}

(* Well above any physical frame address the frame pool can produce. *)
let default_base = 1 lsl 50

let heap ?(base = default_base) geom = { geom; base; next = base; allocated = 0 }

type t = { addr : int; vpage : int; v : int Atomic.t }

(* Reserve [words] simulated words; with [pad] the allocation starts on a
   fresh cache line and the line is not shared with later allocations,
   preventing (simulated) false sharing. *)
let alloc_words h ?(pad = false) words =
  if words <= 0 then invalid_arg "Cell.alloc_words";
  let line = Geometry.line_words h.geom in
  if pad then begin
    let aligned = (h.next + line - 1) / line * line in
    let addr = aligned in
    h.next <- (addr + words + line - 1) / line * line;
    h.allocated <- h.allocated + words;
    addr
  end
  else begin
    let addr = h.next in
    h.next <- h.next + words;
    h.allocated <- h.allocated + words;
    addr
  end

let make ?(pad = false) h init =
  let addr = alloc_words h ~pad 1 in
  { addr; vpage = Geometry.page_of_addr h.geom addr; v = Atomic.make init }

let make_array ?(pad = false) h n init =
  Array.init n (fun _ -> make ~pad h init)

(* The cell caches its vpage at [make] time (the metadata heap's geometry
   matches the engine's), so the per-access path is a single fused call. *)
let[@inline] account ctx kind (t : t) =
  Engine.Mem.access ctx ~vpage:t.vpage ~paddr:t.addr ~kind

let get ctx t =
  account ctx Engine.Load t;
  Atomic.get t.v

(* Conditional access (IMR): a store or RMW committed while the thread's
   accessible flag is revoked is squashed by the simulated hardware — the
   cost is charged (the request reached the coherence fabric) but the
   mutation is dropped, and CAS-like operations report failure.  The engine
   sets the squash latch at commit time; masked sections are exempt. *)

let set ctx t x =
  account ctx Engine.Store t;
  if not (Engine.Mem.squashed ctx) then Atomic.set t.v x

let cas ctx t ~expect ~desired =
  account ctx Engine.Rmw t;
  if Engine.Mem.squashed ctx then begin
    Engine.Mem.note_cas_failure ctx ~addr:t.addr;
    false
  end
  else begin
    let ok = Atomic.compare_and_set t.v expect desired in
    if not ok then Engine.Mem.note_cas_failure ctx ~addr:t.addr;
    ok
  end

let exchange ctx t x =
  account ctx Engine.Rmw t;
  if Engine.Mem.squashed ctx then Atomic.get t.v else Atomic.exchange t.v x

let fetch_and_add ctx t d =
  account ctx Engine.Rmw t;
  if Engine.Mem.squashed ctx then Atomic.get t.v
  else Atomic.fetch_and_add t.v d

let peek t = Atomic.get t.v
let poke t x = Atomic.set t.v x
let addr t = t.addr
