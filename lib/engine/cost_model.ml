(* Cycle cost model of the simulated machine.

   Every simulated memory access, fence and operating-system event is charged
   against a per-thread cycle clock using the constants below.  The default
   preset mimics the AMD Opteron 6274 testbed used by the paper (16 KiB L1
   per core, 2 MiB L2 per pair of cores, 12 MiB shared L3). *)

type t = {
  l1_hit : int;
  l2_hit : int;
  l3_hit : int;
  dram : int;
  rmw_extra : int;  (** additional cycles for CAS / fetch-and-add *)
  fence_full : int;  (** full store-load barrier *)
  fence_compiler : int;  (** compiler-only barrier; free on TSO hardware *)
  invalidation : int;  (** coherence invalidation broadcast on a shared line *)
  tlb_hit : int;
  tlb_miss : int;  (** page-walk cost *)
  minor_fault : int;  (** copy-on-write fault-in of a frame *)
  syscall : int;  (** mmap / madvise round trip *)
  pause : int;  (** one spin-loop iteration *)
  op_base : int;  (** fixed per-data-structure-operation overhead *)
  checkpoint_set : int;  (** registering a recovery checkpoint (sigsetjmp) *)
  neutralize_post : int;  (** posting a neutralization signal (tgkill) *)
  neutralize_deliver : int;
      (** delivering a neutralization signal to its victim: handler entry
          plus the longjmp back to the checkpoint *)
  cond_access_extra : int;
      (** extra coherence-directory check per conditional access, on top of
          the (usually L1-hit) load of the thread's own accessible-flag
          line *)
  revoke_broadcast : int;
      (** posting one access revocation: the directory-assisted broadcast
          that flips a victim's accessible flag, beyond the per-victim
          flag-line store (which pays normal invalidation costs) *)
  ghz : float;  (** clock frequency used to convert cycles to seconds *)
}

(* l1_hit is the *effective* cost of an L1 hit: out-of-order pipelines hide
   most of the ~4-cycle latency of hot loads, which is what makes the OA
   warning check "inexpensive" (§2.4). *)
let opteron_6274 =
  {
    l1_hit = 1;
    l2_hit = 12;
    l3_hit = 40;
    dram = 180;
    rmw_extra = 20;
    fence_full = 40;
    fence_compiler = 0;
    invalidation = 60;
    tlb_hit = 0;
    tlb_miss = 30;
    minor_fault = 2500;
    syscall = 1500;
    pause = 10;
    op_base = 15;
    checkpoint_set = 50;
    neutralize_post = 1500;
    neutralize_deliver = 2500;
    cond_access_extra = 2;
    revoke_broadcast = 90;
    ghz = 2.2;
  }

(* A deliberately flat model: every access costs the same.  Useful in tests
   to decouple algorithmic work counts from locality effects. *)
let uniform =
  {
    l1_hit = 1;
    l2_hit = 1;
    l3_hit = 1;
    dram = 1;
    rmw_extra = 0;
    fence_full = 1;
    fence_compiler = 0;
    invalidation = 0;
    tlb_hit = 0;
    tlb_miss = 0;
    minor_fault = 1;
    syscall = 1;
    pause = 1;
    op_base = 0;
    checkpoint_set = 1;
    neutralize_post = 1;
    neutralize_deliver = 1;
    cond_access_extra = 0;
    revoke_broadcast = 1;
    ghz = 1.0;
  }

let seconds_of_cycles t cycles = float_of_int cycles /. (t.ghz *. 1e9)

let pp ppf t =
  Fmt.pf ppf "cost{l1=%d l2=%d l3=%d dram=%d fence=%d}" t.l1_hit t.l2_hit
    t.l3_hit t.dram t.fence_full
