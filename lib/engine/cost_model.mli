(** Cycle cost model of the simulated machine.

    Every simulated memory access, fence and OS event is charged against a
    per-thread cycle clock using these constants. *)

type t = {
  l1_hit : int;
      (** effective (pipelined) cost of an L1 hit — deliberately low, which
          is what makes the OA warning check "inexpensive" (paper §2.4) *)
  l2_hit : int;
  l3_hit : int;
  dram : int;
  rmw_extra : int;  (** additional cycles for CAS / fetch-and-add *)
  fence_full : int;  (** full store-load barrier *)
  fence_compiler : int;  (** compiler-only barrier; free on TSO hardware *)
  invalidation : int;  (** coherence invalidation broadcast *)
  tlb_hit : int;
  tlb_miss : int;  (** page-walk cost *)
  minor_fault : int;  (** copy-on-write fault-in of a frame *)
  syscall : int;  (** mmap / madvise round trip *)
  pause : int;  (** one spin-loop iteration *)
  op_base : int;  (** fixed per-data-structure-operation overhead *)
  checkpoint_set : int;
      (** registering a recovery checkpoint (sigsetjmp analogue) *)
  neutralize_post : int;
      (** posting a neutralization signal to another thread (tgkill) *)
  neutralize_deliver : int;
      (** delivering a neutralization signal: handler entry plus the
          longjmp back to the victim's checkpoint *)
  cond_access_extra : int;
      (** extra coherence-directory traffic per conditional access, beyond
          the flag-line load itself *)
  revoke_broadcast : int;
      (** posting one access revocation: the directory-assisted broadcast,
          beyond the per-victim flag-line store *)
  ghz : float;  (** clock frequency for converting cycles to seconds *)
}

val opteron_6274 : t
(** Mimics the paper's AMD Opteron 6274 testbed. *)

val uniform : t
(** Flat model: every access costs 1 cycle (test aid). *)

val seconds_of_cycles : t -> int -> float
val pp : Format.formatter -> t -> unit
