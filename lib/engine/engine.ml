(* Deterministic simulated multicore execution engine.

   Logical threads are OCaml-5 effect-based coroutines.  Every simulated
   memory access, fence or OS event is a yield point: the thread performs a
   {!Mem} request, the scheduler charges its cycle cost (via the cache
   hierarchy and TLB models) onto the thread's clock, and then resumes the
   globally earliest thread.  Under the [Min_clock] policy this executes all
   shared-memory accesses in simulated-time order, giving a deterministic
   discrete-event simulation of a multicore; under [Random_order] the
   scheduler explores arbitrary interleavings (used by race tests).

   Because exactly one access runs at a time, each access is atomic, and the
   interleaving granularity is a single memory access — the same granularity
   at which the paper's algorithms must be correct.

   Threads occupy fixed slots [0, nthreads); slots may be reused across
   successive [run] phases (e.g. a sequential prefill phase followed by a
   parallel measurement phase).  Spin loops in simulated code must call
   {!Mem.pause} (or perform some other yield) on every iteration, otherwise
   the simulation cannot make progress on other threads.

   Hot path.  Three mechanisms keep the host cost of a simulated access low:

   - The runnable set under [Min_clock] is indexed by a binary min-heap
     keyed on (clock, tid) — the same ordering the old linear scan computed
     per step — so a scheduling decision is O(log runnable) instead of
     O(nthreads).

   - Leader-tenure batching.  At a yield point the running thread compares
     its own clock against the heap minimum.  If the thread would be
     re-picked anyway (strictly earliest, ties to lowest tid), it charges
     the request inline — no effect performed, no continuation switch, no
     allocation — which is exactly what the scheduler would have done
     before resuming it.  Rather than re-proving leadership per access, the
     winning comparison is cached as a clock bound [tenure_until]: the
     thread remains strict leader for every access that completes below
     that bound, because heap keys only move between the explicit
     invalidation points enumerated in [tenure_clear]'s callers (spawn,
     reset_clocks, neutralization, plan/fusion changes, run entry) and the
     thread itself only suspends once it is no longer leader.  The
     steady-state access check is therefore a single integer compare.
     Fences and events always re-validate against the live heap minimum
     (refreshing the bound on success); the per-access profiler and
     translation-cache checks stay dynamic.  The cost-model side effects
     happen in the identical global order, so every simulated outcome
     (clocks, cache and TLB state, stats, schedule) is byte-identical to
     the slow path.  The fast path is disabled under
     [Random_order]/[Scripted] (every yield is a scheduling decision
     there), under a non-trivial fault plan (the plan is consulted at
     scheduler yields), under [run ~max_steps] (steps are counted at
     scheduler yields), and via {!set_fused} (differential testing).

   - Run-ahead parking ({!set_runahead}).  A near-leader thread that fails
     the leadership check would normally perform an effect and wait for the
     scheduler to walk the other threads forward.  Instead, it parks: it
     records its request in its slot, enters the heap as [Parked], and
     drives the scheduler loop from its own stack frame ([drain]),
     executing the other threads in exactly the order the outer loop would
     have.  When it pops itself — it is now the scheduling minimum — it
     commits the recorded request switch-free, mirroring the scheduler's
     trivial-plan processing line by line (including neutralization
     delivery).  If a fault plan appeared while parked, it bails to a real
     effect so the plan is consulted at a true scheduler yield.  Only one
     thread parks at a time ([parked]); threads woken inside a drain
     suspend via the plain effect path.  Because the drained threads run in
     the identical global order and the commit replays the scheduler's own
     bookkeeping, parking is observationally identical to the slow path —
     it only replaces two continuation switches per rotation with ordinary
     function calls. *)

type access_kind = Load | Store | Rmw
type fence_kind = Full | Compiler
type event_kind = Minor_fault | Syscall | Pause

(* Pending requests are flattened into per-slot integer fields (no request
   record, no effect payload): [req_tag] selects the operation, and
   [req_vpage]/[req_paddr] carry the access operands.  Tags: *)
let tag_load = 0
let tag_store = 1
let tag_rmw = 2
let tag_fence_full = 3
let tag_fence_compiler = 4
let tag_minor_fault = 5
let tag_syscall = 6
let tag_pause = 7

type scripted = {
  prefix : int array;  (* scheduling choices to replay, as runnable-set
                          indices (taken modulo the number of runnable
                          threads at that step) *)
  mutable factors : int list;  (* observed branching factors, reversed *)
  mutable steps : int;
}

type policy = Min_clock | Random_order of int | Scripted of scripted

(* Payload-free: the suspending thread has already written its request into
   its slot's [req_*] fields, so the effect allocates nothing beyond the
   captured continuation. *)
type _ Effect.t += Yield : unit Effect.t

exception Neutralized

type signal_outcome = Posted | Already_pending | Dead

type fault_stats = {
  mutable yields : int;
  mutable stalls_injected : int;
  mutable stall_cycles : int;
  mutable jitter_cycles : int;
  mutable crashed : bool;
  mutable neutralized : int;
}

type t = {
  cost : Cost_model.t;
  geom : Geometry.t;
  hierarchy : Hierarchy.t;
  tlb : Tlb.t;
  nthreads : int;
  mutable slots : slot array;
  policy : policy;
  sched_rng : Prng.t;
  mutable plan : Fault_plan.t;
  mutable trace : Oamem_obs.Trace.t;
  mutable prof : Oamem_obs.Profile.t;
  mutable accesses : int;
  mutable fences : int;
  mutable faults : int;
  mutable syscalls : int;
  (* --- scheduler index (Min_clock only) --- *)
  use_heap : bool;  (* policy = Min_clock *)
  heap : int array;  (* runnable tids, binary min-heap on (clock, tid) *)
  hpos : int array;  (* tid -> heap index, -1 when not in the heap *)
  mutable hlen : int;
  mutable fused : bool;  (* user toggle for the inline fast path *)
  mutable runahead : bool;  (* user toggle for the parking tier *)
  mutable inline_ok : bool;  (* set by [run]: fused && Min_clock && no cap *)
  mutable parked : int;  (* tid driving a drain from its own frame, or -1 *)
}

and slot = {
  ctx : ctx;
  mutable clock : int;
  mutable pending : pending;
  fstats : fault_stats;
  (* --- leader tenure --- *)
  mutable tenure_until : int;
      (* the thread is a proven strict leader for any access completing
         with [clock < tenure_until]; 0 = no tenure (revalidate) *)
  (* --- flattened suspended request --- *)
  mutable req_tag : int;
  mutable req_vpage : int;
  mutable req_paddr : int;
  (* --- neutralization (simulated async signals) --- *)
  mutable checkpoint : bool;  (* a recovery checkpoint is registered *)
  mutable masked : int;  (* signal-mask depth; > 0 defers delivery *)
  mutable signal : bool;  (* a neutralization signal is pending *)
  mutable stalled_until : int;
      (* clock value at the end of the last injected stall; lets a signal
         wake the victim out of the stall (nanosleep is interrupted) *)
  (* --- conditional access (simulated hardware accessible flag) --- *)
  mutable accessible : bool;
      (* the thread's per-thread accessible flag; a revocation clears it,
         a [Mem.grant_access] (the thread itself, on restart) sets it *)
  mutable squashed : bool;
      (* outcome of the last committed Store/Rmw: [true] iff it was issued
         with the flag revoked outside a masked section, i.e. the simulated
         hardware squashed the value mutation (a conditional CAS fails) *)
  mutable exempt : int;
      (* squash-exemption depth; > 0 marks trusted runtime code (allocator
         metadata) whose plain stores/CASes are never conditional accesses,
         so a pending revocation cannot squash them.  Orthogonal to
         [masked]: exemption does not defer signal delivery. *)
}

and pending =
  | Idle
  | Start of (ctx -> unit)
  | Blocked of (unit, unit) Effect.Deep.continuation
  | Parked  (* in the heap, but running a [drain] from its own frame *)
  | Crashed  (* fault-injected fail-stop; the slot is permanently dead *)

and ctx = { tid : int; eng : t option; prng : Prng.t }

let fresh_fault_stats () =
  {
    yields = 0;
    stalls_injected = 0;
    stall_cycles = 0;
    jitter_cycles = 0;
    crashed = false;
    neutralized = 0;
  }

let create ?(policy = Min_clock) ?(cost = Cost_model.opteron_6274)
    ?(geom = Geometry.default) ?cache_cfg ?(tlb_slots = 64) ~nthreads () =
  if nthreads <= 0 then invalid_arg "Engine.create: nthreads must be positive";
  let hierarchy = Hierarchy.create ?cfg:cache_cfg ~cost ~nthreads () in
  let tlb = Tlb.create ~slots:tlb_slots ~cost ~nthreads () in
  let sched_seed =
    match policy with Random_order s -> s | Min_clock | Scripted _ -> 1
  in
  let t =
    {
      cost;
      geom;
      hierarchy;
      tlb;
      nthreads;
      slots = [||];
      policy;
      sched_rng = Prng.create sched_seed;
      plan = Fault_plan.none;
      trace = Oamem_obs.Trace.null;
      prof = Oamem_obs.Profile.null;
      accesses = 0;
      fences = 0;
      faults = 0;
      syscalls = 0;
      use_heap = (policy = Min_clock);
      heap = Array.make nthreads (-1);
      hpos = Array.make nthreads (-1);
      hlen = 0;
      fused = true;
      runahead = true;
      inline_ok = false;
      parked = -1;
    }
  in
  t.slots <-
    Array.init nthreads (fun tid ->
        {
          ctx = { tid; eng = Some t; prng = Prng.create (0x9e37 + tid) };
          clock = 0;
          pending = Idle;
          fstats = fresh_fault_stats ();
          tenure_until = 0;
          req_tag = 0;
          req_vpage = -1;
          req_paddr = 0;
          checkpoint = false;
          masked = 0;
          signal = false;
          stalled_until = 0;
          accessible = true;
          squashed = false;
          exempt = 0;
        });
  t

let cost_model t = t.cost
let geometry t = t.geom
let nthreads t = t.nthreads

let external_ctx ?(tid = 0) ?(seed = 42) () =
  { tid; eng = None; prng = Prng.create seed }

(* --- scheduler index ------------------------------------------------------ *)

(* Strict (clock, tid) lexicographic order: exactly the order the old
   per-step linear scan established (earliest clock, ties to lowest tid). *)
let[@inline] hless t a b =
  let ca = t.slots.(a).clock and cb = t.slots.(b).clock in
  ca < cb || (ca = cb && a < b)

let[@inline] hswap t i j =
  let a = t.heap.(i) and b = t.heap.(j) in
  t.heap.(i) <- b;
  t.heap.(j) <- a;
  t.hpos.(b) <- i;
  t.hpos.(a) <- j

let rec sift_up t i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if hless t t.heap.(i) t.heap.(p) then begin
      hswap t i p;
      sift_up t p
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 in
  if l < t.hlen then begin
    let m = if l + 1 < t.hlen && hless t t.heap.(l + 1) t.heap.(l) then l + 1 else l in
    if hless t t.heap.(m) t.heap.(i) then begin
      hswap t i m;
      sift_down t m
    end
  end

let heap_push t tid =
  if t.hpos.(tid) < 0 then begin
    let i = t.hlen in
    t.heap.(i) <- tid;
    t.hpos.(tid) <- i;
    t.hlen <- i + 1;
    sift_up t i
  end

let heap_pop t =
  if t.hlen = 0 then -1
  else begin
    let tid = t.heap.(0) in
    t.hpos.(tid) <- -1;
    let last = t.hlen - 1 in
    t.hlen <- last;
    if last > 0 then begin
      let moved = t.heap.(last) in
      t.heap.(0) <- moved;
      t.hpos.(moved) <- 0;
      sift_down t 0
    end;
    tid
  end

(* Re-derive the index from slot state.  Needed whenever clocks change out
   of band (e.g. {!reset_clocks} between a warmup and a measured phase):
   heap keys are thread clocks, so zeroing them invalidates the order. *)
let heap_rebuild t =
  if t.use_heap then begin
    t.hlen <- 0;
    Array.fill t.hpos 0 t.nthreads (-1);
    for tid = 0 to t.nthreads - 1 do
      match t.slots.(tid).pending with
      | Idle | Crashed -> ()
      | Start _ | Blocked _ | Parked -> heap_push t tid
    done
  end

(* True iff the running thread [tid] (not in the heap) would be re-picked
   by the scheduler right now: its clock is strictly earliest, ties broken
   to the lowest tid — the exact comparison the old linear scan made. *)
let[@inline] still_leader t ~tid clock =
  t.hlen = 0
  ||
  let u = Array.unsafe_get t.heap 0 in
  let cu = (Array.unsafe_get t.slots u).clock in
  clock < cu || (clock = cu && tid < u)

(* Clock bound below which [tid] (running, not in the heap) stays strict
   leader: [still_leader t ~tid c] holds for every [c < tenure_bound t ~tid].
   With an empty heap there is no competitor, so the tenure is unbounded
   (only {!tenure_clear} callers — spawn, neutralize, … — can end it). *)
let[@inline] tenure_bound t ~tid =
  if t.hlen = 0 then max_int
  else begin
    let u = Array.unsafe_get t.heap 0 in
    let cu = (Array.unsafe_get t.slots u).clock in
    if tid < u then cu + 1 else cu
  end

(* Invalidate every cached tenure.  Called whenever a heap key can move
   other than by the owner's own monotone clock advance, or whenever the
   fast-path preconditions change out of band:
   - [run] entry: [inline_ok] is recomputed per run;
   - [spawn]: a new entry may undercut the cached minimum;
   - [reset_clocks]: clocks (and therefore bounds) restart from zero;
   - [Mem.neutralize] (Posted): the victim's clock may be pulled back,
     and the victim itself must stop fusing so delivery can happen;
   - [set_fused] / [set_fault_plan]: precondition changes. *)
let tenure_clear t =
  let slots = t.slots in
  for i = 0 to Array.length slots - 1 do
    slots.(i).tenure_until <- 0
  done

(* --- request costs -------------------------------------------------------- *)

(* Cycle cost of one memory access by thread [tid], updating the cache and
   TLB models as a side effect.  Shared by the scheduler's request path and
   the fused inline path so both charge identically. *)
let[@inline] charge_access t ~tid ~vpage ~paddr ~kind =
  t.accesses <- t.accesses + 1;
  let tlb_cost = if vpage >= 0 then Tlb.access t.tlb ~tid vpage else 0 in
  let hkind =
    match kind with
    | Load -> Hierarchy.Load
    | Store -> Hierarchy.Store
    | Rmw -> Hierarchy.Rmw
  in
  let block = Geometry.block_of_addr t.geom paddr in
  tlb_cost + Hierarchy.access t.hierarchy ~tid ~kind:hkind block

(* Per-thread accessible-flag lines, modelled as real simulated addresses so
   conditional accesses and revocations flow through the coherence directory
   like any other shared-line traffic: a revocation's store invalidates the
   victim's cached copy, and the victim's next flag check pays the remote
   miss — with the invalidation attributed by the profiler exactly as for a
   data line.  The base sits far above the [Cell] metadata heap (1 lsl 50,
   growing upward) and the data address space, so flag lines never collide
   with simulated data. *)
let flag_base = 1 lsl 52

let[@inline] flag_addr t tid = flag_base + (tid * Geometry.line_words t.geom)

(* Charge a flag-line access to [tid]'s clock without yielding: like a
   neutralization post, flag traffic is atomic under every policy, so the
   fused and slow paths charge it identically. *)
let charge_flag_access t ~tid ~owner ~kind ~extra =
  let paddr = flag_addr t owner in
  let vpage = Geometry.page_of_addr t.geom paddr in
  let profiling = Oamem_obs.Profile.enabled t.prof in
  let invs_before =
    if profiling then Hierarchy.remote_invalidations t.hierarchy else 0
  in
  let cost = extra + charge_access t ~tid ~vpage ~paddr ~kind in
  let slot = t.slots.(tid) in
  slot.clock <- slot.clock + cost;
  if profiling then begin
    Oamem_obs.Profile.charge t.prof ~tid cost;
    if
      kind <> Load
      && Hierarchy.remote_invalidations t.hierarchy > invs_before
    then Oamem_obs.Profile.note_invalidation t.prof ~tid ~addr:paddr
  end

let[@inline] charge_fence t kind =
  match kind with
  | Full ->
      t.fences <- t.fences + 1;
      t.cost.fence_full
  | Compiler -> t.cost.fence_compiler

let[@inline] charge_event t kind =
  match kind with
  | Minor_fault ->
      t.faults <- t.faults + 1;
      t.cost.minor_fault
  | Syscall ->
      t.syscalls <- t.syscalls + 1;
      t.cost.syscall
  | Pause -> t.cost.pause

(* Cost of the request recorded in [slot]'s [req_*] fields. *)
let cost_of_req t ~tid slot =
  let tag = slot.req_tag in
  if tag <= tag_rmw then begin
    let kind =
      if tag = tag_load then Load else if tag = tag_store then Store else Rmw
    in
    (* conditional access: a Store/Rmw committed with the accessible flag
       revoked (outside a masked section) performs no value mutation —
       [Cell]/[Vmem] consult [Mem.squashed] right after this commit.
       Evaluated at commit time in both the scheduler and inline paths, so
       the outcome is identical whichever path charged the request. *)
    if kind <> Load then
      slot.squashed <-
        (not slot.accessible) && slot.masked = 0 && slot.exempt = 0;
    charge_access t ~tid ~vpage:slot.req_vpage ~paddr:slot.req_paddr ~kind
  end
  else if tag = tag_fence_full then charge_fence t Full
  else if tag = tag_fence_compiler then charge_fence t Compiler
  else if tag = tag_minor_fault then charge_event t Minor_fault
  else if tag = tag_syscall then charge_event t Syscall
  else charge_event t Pause

(* --- fault injection / observability wiring -------------------------------- *)

let set_fault_plan t plan =
  t.plan <- plan;
  (* triviality is a fast-path precondition cached inside tenures *)
  tenure_clear t

let fault_plan t = t.plan
let set_trace t tr = t.trace <- tr
let trace t = t.trace
let set_profile t p = t.prof <- p
let profile t = t.prof

let set_fused t on =
  t.fused <- on;
  tenure_clear t

let fused t = t.fused
let set_runahead t on = t.runahead <- on
let runahead t = t.runahead
let fault_stats t ~tid = t.slots.(tid).fstats
let crashed t ~tid = t.slots.(tid).fstats.crashed

(* Total yield points executed (all threads, all phases): the engine's
   simulated step count, identical whether a yield went through the
   scheduler, the fused inline path, or a parked commit.  [bench
   --host-throughput] reports steps per host second from this. *)
let steps t =
  Array.fold_left (fun acc s -> acc + s.fstats.yields) 0 t.slots

(* --- scheduler core ------------------------------------------------------- *)

(* Deliver the pending neutralization signal to [tid] at one of its yield
   points: the handler runs before the victim's next instruction, so the
   suspended access never executes (no cache/TLB side effect) and the
   thread unwinds to its checkpoint.  Shared by the scheduler's blocked
   path (followed by [discontinue]) and a parked commit (followed by a
   plain [raise] — the victim is already running on this stack). *)
let deliver_signal t ~tid slot =
  slot.signal <- false;
  slot.fstats.neutralized <- slot.fstats.neutralized + 1;
  let cost = t.cost.neutralize_deliver in
  slot.clock <- slot.clock + cost;
  if Oamem_obs.Profile.enabled t.prof then
    Oamem_obs.Profile.charge t.prof ~tid cost;
  if Oamem_obs.Trace.enabled t.trace then
    Oamem_obs.Trace.emit t.trace ~tid ~at:slot.clock
      Oamem_obs.Trace.Neutralized

(* Commit the recorded request of a thread that became the scheduling
   minimum: the scheduler's trivial-plan [Delay {stall = 0; jitter = 0}]
   processing, minus the continuation switch (the owner is running). *)
let commit_req t ~tid slot =
  let profiling = Oamem_obs.Profile.enabled t.prof in
  let invs_before =
    if profiling then Hierarchy.remote_invalidations t.hierarchy else 0
  in
  let cost = cost_of_req t ~tid slot in
  slot.clock <- slot.clock + cost;
  if profiling then begin
    Oamem_obs.Profile.charge t.prof ~tid cost;
    if
      (slot.req_tag = tag_store || slot.req_tag = tag_rmw)
      && Hierarchy.remote_invalidations t.hierarchy > invs_before
    then Oamem_obs.Profile.note_invalidation t.prof ~tid ~addr:slot.req_paddr
  end

let start_thread t slot f =
  let tid = slot.ctx.tid in
  (* settle at suspension time: the request is already in the slot's
     [req_*] fields, so parking the continuation is all that is left of the
     old settle step.  The handler is hoisted so a yield does not allocate
     the [Some]-wrapped closure afresh on every perform. *)
  let on_yield =
    Some
      (fun (k : (unit, unit) Effect.Deep.continuation) ->
        slot.pending <- Blocked k;
        if t.use_heap then heap_push t tid)
  in
  Effect.Deep.match_with f slot.ctx
    {
      retc = (fun () -> ());
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield ->
              (* [Yield : unit Effect.t], so the GADT equation [a = unit]
                 makes the hoisted handler's type line up *)
              (on_yield : ((a, unit) Effect.Deep.continuation -> unit) option)
          | _ -> None);
    }

(* Process one scheduling decision for [tid] (already popped from the
   heap / chosen by the scan).  Factored out of [run] so a parked thread's
   [drain] loop can execute other threads exactly as the outer loop would. *)
let step t tid =
  let slot = t.slots.(tid) in
  match slot.pending with
  | Idle | Crashed | Parked -> assert false
  | Start f ->
      slot.pending <- Idle;
      (try start_thread t slot f
       with e ->
         slot.pending <- Idle;
         raise e)
  | Blocked k -> (
      slot.pending <- Idle;
      let fs = slot.fstats in
      fs.yields <- fs.yields + 1;
      if slot.signal && slot.checkpoint && slot.masked = 0 then begin
        (* Deliver the pending neutralization signal instead of the
           blocked request.  This yield bypasses the fault plan — the
           signal handler, not user code, runs at this point. *)
        deliver_signal t ~tid slot;
        try Effect.Deep.discontinue k Neutralized
        with e ->
          slot.pending <- Idle;
          raise e
      end
      else if Fault_plan.is_trivial t.plan then begin
        (* trivial plan: [on_yield] is the constant [Delay {stall = 0;
           jitter = 0}], so this is the Delay branch below with the zero
           stall/jitter arms folded away — the scheduler's hottest line *)
        commit_req t ~tid slot;
        try Effect.Deep.continue k ()
        with e ->
          slot.pending <- Idle;
          raise e
      end
      else
        match Fault_plan.on_yield t.plan ~tid ~yield:fs.yields with
        | Fault_plan.Kill ->
            (* fail-stop: drop the continuation, never resume the slot *)
            fs.crashed <- true;
            slot.pending <- Crashed;
            if Oamem_obs.Trace.enabled t.trace then
              Oamem_obs.Trace.emit t.trace ~tid ~at:slot.clock
                Oamem_obs.Trace.Crash
        | Fault_plan.Delay { stall; jitter } ->
            if stall > 0 then begin
              fs.stalls_injected <- fs.stalls_injected + 1;
              fs.stall_cycles <- fs.stall_cycles + stall;
              if Oamem_obs.Trace.enabled t.trace then
                Oamem_obs.Trace.emit t.trace ~tid ~at:slot.clock
                  (Oamem_obs.Trace.Stall { cycles = stall })
            end;
            if jitter > 0 then fs.jitter_cycles <- fs.jitter_cycles + jitter;
            let profiling = Oamem_obs.Profile.enabled t.prof in
            let invs_before =
              if profiling then Hierarchy.remote_invalidations t.hierarchy
              else 0
            in
            let cost = cost_of_req t ~tid slot + stall + jitter in
            slot.clock <- slot.clock + cost;
            if stall > 0 then slot.stalled_until <- slot.clock;
            if profiling then begin
              (* the yielding thread's span stack is untouched until its
                 continuation resumes, so the innermost open span is the
                 one that issued this request *)
              Oamem_obs.Profile.charge t.prof ~tid cost;
              if
                (slot.req_tag = tag_store || slot.req_tag = tag_rmw)
                && Hierarchy.remote_invalidations t.hierarchy > invs_before
              then
                Oamem_obs.Profile.note_invalidation t.prof ~tid
                  ~addr:slot.req_paddr
            end;
            (try Effect.Deep.continue k ()
             with e ->
               slot.pending <- Idle;
               raise e))

(* Run other threads, in exact scheduler order, until the parked thread
   [tid] itself surfaces as the heap minimum (its pop ends the drain and
   leaves it out of the heap, just as the outer loop's pop would have). *)
let rec drain t tid =
  let m = heap_pop t in
  if m <> tid then begin
    step t m;
    drain t tid
  end

(* The run-ahead tier: instead of suspending through an effect, the thread
   enters the heap as [Parked] and drives the scheduler from its own frame.
   Preconditions (checked by [suspend]): mid-[run] under [Min_clock] with
   no step cap, trivial fault plan, no pending signal, no other parked
   thread.  On self-pop it replays the scheduler's processing of its own
   yield: count the step, deliver a signal posted while parked (plain raise
   — we are on the victim's stack), otherwise charge the recorded request.
   If a fault plan was installed while parked, bail to a real effect
   without counting the step — the scheduler will count it and consult the
   plan; delivery order is unaffected because delivery bypasses the plan. *)
let park t ~tid slot =
  slot.pending <- Parked;
  t.parked <- tid;
  heap_push t tid;
  drain t tid;
  t.parked <- -1;
  slot.pending <- Idle;
  if Fault_plan.is_trivial t.plan then begin
    let fs = slot.fstats in
    fs.yields <- fs.yields + 1;
    if slot.signal && slot.checkpoint && slot.masked = 0 then begin
      deliver_signal t ~tid slot;
      raise Neutralized
    end
    else commit_req t ~tid slot
  end
  else Effect.perform Yield

(* Slow-path suspension for a request already recorded in the slot: park if
   the run-ahead tier applies, otherwise perform the effect.  Clearing the
   owner's tenure keeps the invariant that a suspended thread always
   revalidates on resume (its cached bound is stale by construction: it
   suspends precisely because it is no longer leader). *)
let suspend t ~tid slot =
  slot.tenure_until <- 0;
  if
    t.runahead && t.parked < 0 && t.inline_ok
    && Fault_plan.is_trivial t.plan
    && not slot.signal
  then park t ~tid slot
  else Effect.perform Yield

(* --- Mem: the fused per-thread memory-access interface --------------------- *)

module Mem = struct
  type t = ctx

  let tid (c : ctx) = c.tid
  let prng (c : ctx) = c.prng
  let costed (c : ctx) = c.eng <> None

  let now (c : ctx) =
    match c.eng with None -> 0 | Some t -> t.slots.(c.tid).clock

  (* The profiler as seen from a thread context: [Profile.null] outside the
     engine, so subsystem instrumentation needs no option check. *)
  let profile (c : ctx) =
    match c.eng with None -> Oamem_obs.Profile.null | Some t -> t.prof

  let charge (c : ctx) cycles =
    match c.eng with
    | None -> ()
    | Some t ->
        let slot = t.slots.(c.tid) in
        slot.clock <- slot.clock + cycles;
        if Oamem_obs.Profile.enabled t.prof then
          Oamem_obs.Profile.charge t.prof ~tid:c.tid cycles

  (* Kernel-side effect of an unmap/remap: flush the page from every TLB.
     The cycle cost is part of the syscall that triggered it. *)
  let tlb_shootdown (c : ctx) vpage =
    match c.eng with None -> () | Some t -> Tlb.shootdown t.tlb vpage

  let note_cas_failure (c : ctx) ~addr =
    match c.eng with
    | None -> ()
    | Some t ->
        if Oamem_obs.Profile.enabled t.prof then
          Oamem_obs.Profile.note_cas_failure t.prof ~tid:c.tid ~addr

  (* The inline fast path.  [revalidate] checks the full preconditions
     against the live heap; a passing check is cached as a tenure bound so
     the steady state needs only the [clock < tenure_until] compare.  The
     bookkeeping mirrors the scheduler's yield processing line by line. *)

  let[@inline] finish_inline t ~tid slot cost =
    slot.clock <- slot.clock + cost;
    if Oamem_obs.Profile.enabled t.prof then
      Oamem_obs.Profile.charge t.prof ~tid cost

  let[@inline] revalidate t ~tid slot =
    t.inline_ok
    && Fault_plan.is_trivial t.plan
    (* a pending neutralization signal forces the slow path: delivery
       happens only at scheduler yields, so the leader must stop fusing.
       A pending revocation does the same — the revoked thread leaves the
       inline path until it re-grants its own flag, mirroring the posted
       signal *)
    && (not slot.signal)
    && slot.accessible
    && still_leader t ~tid slot.clock

  let inline_access t ~tid slot ~vpage ~paddr ~kind =
    let fs = slot.fstats in
    fs.yields <- fs.yields + 1;
    (* same commit-time squash evaluation as [cost_of_req] *)
    if kind <> Load then
      slot.squashed <-
        (not slot.accessible) && slot.masked = 0 && slot.exempt = 0;
    if Oamem_obs.Profile.enabled t.prof then begin
      let invs_before = Hierarchy.remote_invalidations t.hierarchy in
      let cost = charge_access t ~tid ~vpage ~paddr ~kind in
      slot.clock <- slot.clock + cost;
      Oamem_obs.Profile.charge t.prof ~tid cost;
      match kind with
      | (Store | Rmw)
        when Hierarchy.remote_invalidations t.hierarchy > invs_before ->
          Oamem_obs.Profile.note_invalidation t.prof ~tid ~addr:paddr
      | _ -> ()
    end
    else begin
      let cost = charge_access t ~tid ~vpage ~paddr ~kind in
      slot.clock <- slot.clock + cost
    end

  let access (c : ctx) ~vpage ~paddr ~kind =
    match c.eng with
    | None -> ()
    | Some t ->
        let tid = c.tid in
        let slot = Array.unsafe_get t.slots tid in
        if slot.clock < slot.tenure_until then
          (* mid-tenure: leadership is proven through the bound *)
          inline_access t ~tid slot ~vpage ~paddr ~kind
        else if revalidate t ~tid slot then begin
          slot.tenure_until <- tenure_bound t ~tid;
          inline_access t ~tid slot ~vpage ~paddr ~kind
        end
        else begin
          slot.req_tag <-
            (match kind with
            | Load -> tag_load
            | Store -> tag_store
            | Rmw -> tag_rmw);
          slot.req_vpage <- vpage;
          slot.req_paddr <- paddr;
          suspend t ~tid slot
        end

  (* Fences and events always revalidate against the live heap minimum —
     they are the tenure re-validation points — but a passing check still
     refreshes the bound for the accesses that follow. *)

  let fence (c : ctx) kind =
    match c.eng with
    | None -> ()
    | Some t ->
        let tid = c.tid in
        let slot = t.slots.(tid) in
        if revalidate t ~tid slot then begin
          slot.tenure_until <- tenure_bound t ~tid;
          slot.fstats.yields <- slot.fstats.yields + 1;
          finish_inline t ~tid slot (charge_fence t kind)
        end
        else begin
          slot.req_tag <-
            (match kind with
            | Full -> tag_fence_full
            | Compiler -> tag_fence_compiler);
          suspend t ~tid slot
        end

  let event (c : ctx) kind =
    match c.eng with
    | None -> ()
    | Some t ->
        let tid = c.tid in
        let slot = t.slots.(tid) in
        if revalidate t ~tid slot then begin
          slot.tenure_until <- tenure_bound t ~tid;
          slot.fstats.yields <- slot.fstats.yields + 1;
          finish_inline t ~tid slot (charge_event t kind)
        end
        else begin
          slot.req_tag <-
            (match kind with
            | Minor_fault -> tag_minor_fault
            | Syscall -> tag_syscall
            | Pause -> tag_pause);
          suspend t ~tid slot
        end

  let pause (c : ctx) = event c Pause

  (* --- neutralization: simulated async signals (sigsetjmp/tgkill) ------ *)

  (* Register a recovery checkpoint for the dynamic extent of [f].  A
     neutralization signal posted to this thread is delivered at its next
     unmasked scheduler yield as a [Neutralized] unwind back here; [recover]
     then runs (it must be idempotent — a second signal during recovery
     re-runs it) and [f] is retried.  Registration does not nest: DEBRA-style
     recovery targets the operation entry, and a silent inner checkpoint
     would shadow it. *)
  let checkpoint (c : ctx) ~recover f =
    match c.eng with
    | None -> f ()
    | Some t ->
        let slot = t.slots.(c.tid) in
        if slot.checkpoint then
          invalid_arg "Engine.Mem.checkpoint: nested registration";
        charge c t.cost.checkpoint_set;
        slot.checkpoint <- true;
        let rec attempt () =
          match f () with
          | v ->
              slot.checkpoint <- false;
              v
          | exception Neutralized ->
              let rec recovering () =
                try recover () with Neutralized -> recovering ()
              in
              recovering ();
              attempt ()
          | exception e ->
              slot.checkpoint <- false;
              raise e
        in
        attempt ()

  (* Defer signal delivery for the extent of [f] (sigprocmask analogue).
     Schemes mask sections whose unwind would corrupt host-side state —
     allocator calls, limbo-bag updates — exactly like DEBRA+'s handler
     refuses to longjmp out of non-neutralizable code. *)
  let masked (c : ctx) f =
    match c.eng with
    | None -> f ()
    | Some t ->
        let slot = t.slots.(c.tid) in
        slot.masked <- slot.masked + 1;
        Fun.protect ~finally:(fun () -> slot.masked <- slot.masked - 1) f

  (* Exempt [f]'s accesses from conditional-access squashing: trusted
     runtime code (allocator metadata walks, superblock anchors) is not
     part of any scheme's optimistic protocol, so a pending revocation
     must not make its CASes fail — a revoked bystander flushing its
     thread cache would otherwise retry a squashed anchor CAS forever.
     Unlike [masked] this defers nothing: signals still deliver. *)
  let unconditional (c : ctx) f =
    match c.eng with
    | None -> f ()
    | Some t ->
        let slot = t.slots.(c.tid) in
        slot.exempt <- slot.exempt + 1;
        Fun.protect ~finally:(fun () -> slot.exempt <- slot.exempt - 1) f

  let signal_pending (c : ctx) ~tid =
    match c.eng with None -> false | Some t -> t.slots.(tid).signal

  (* Liveness of another slot, as pthread_tryjoin would report it: schemes
     that can seize a dead thread's deferred frees (DEBRA) key off this. *)
  let peer_crashed (c : ctx) ~tid =
    match c.eng with None -> false | Some t -> t.slots.(tid).fstats.crashed

  (* Post a neutralization signal to [victim] (tgkill analogue).  Charged
     to the poster; no yield, so the post is atomic under every policy.
     After [Posted] the poster may treat the victim as quiesced: the victim
     executes no further simulated access before its signal is delivered
     (pending signals disable its fused path — every cached tenure is
     dropped here — and the scheduler checks for delivery before processing
     its blocked or parked request).  A signal also cuts an injected stall
     short — the victim's wake-up is pulled back to the poster's clock, as
     a signal interrupting nanosleep. *)
  let neutralize (c : ctx) ~victim =
    match c.eng with
    | None -> Dead
    | Some t ->
        if victim < 0 || victim >= t.nthreads then
          invalid_arg "Engine.Mem.neutralize: bad victim";
        charge c t.cost.neutralize_post;
        let vslot = t.slots.(victim) in
        (match vslot.pending with
        | Crashed -> Dead
        | Idle when victim <> c.tid -> Dead  (* finished or never started *)
        | Idle | Start _ | Blocked _ | Parked ->
            if vslot.signal then Already_pending
            else begin
              vslot.signal <- true;
              (* the pullback below can lower a heap key, and the victim
                 must revalidate (and stop fusing) before its next access *)
              tenure_clear t;
              let now = t.slots.(c.tid).clock in
              if vslot.stalled_until > now && vslot.clock > now then begin
                vslot.clock <- now;
                vslot.stalled_until <- 0;
                if t.use_heap && t.hpos.(victim) >= 0 then
                  sift_up t t.hpos.(victim)
              end;
              if Oamem_obs.Trace.enabled t.trace then
                Oamem_obs.Trace.emit t.trace ~tid:c.tid ~at:now
                  (Oamem_obs.Trace.Neutralize_post { victim });
              Posted
            end)

  (* --- conditional access: simulated revocable accessible flags -------- *)

  (* One conditional access: load the calling thread's own flag line (an L1
     hit in the steady state; a remote miss right after a revocation, which
     is how the revocation's coherence traffic lands on the victim) plus the
     fixed directory-check overhead, then report the flag.  Charged without
     a yield — the check is atomic with its outcome, exactly as the
     simulated hardware would resolve it at the access. *)
  let cond_access (c : ctx) =
    match c.eng with
    | None -> true
    | Some t ->
        let tid = c.tid in
        charge_flag_access t ~tid ~owner:tid ~kind:Load
          ~extra:t.cost.cond_access_extra;
        t.slots.(tid).accessible

  (* Re-grant the calling thread's own flag (a store on its own flag line);
     the restart path of a scheme that failed a conditional access. *)
  let grant_access (c : ctx) =
    match c.eng with
    | None -> ()
    | Some t ->
        let tid = c.tid in
        charge_flag_access t ~tid ~owner:tid ~kind:Store ~extra:0;
        t.slots.(tid).accessible <- true

  (* Revoke [victim]'s accessible flag.  The poster pays the fixed
     broadcast cost plus an exclusive-ownership store on the victim's flag
     line (the directory attributes the invalidation like any other remote
     store).  No yield: like a neutralization post, the revocation is
     atomic under every policy.  A pending revocation clears every cached
     leader tenure, exactly like a posted neutralization — the victim must
     revalidate (and fail, staying off the fused path) before its next
     access.  Unlike neutralize there is no stall pullback: immediate
     reclamation does not wait for the laggard; its next conditional access
     or squashed store restarts it whenever it wakes. *)
  let revoke (c : ctx) ~victim =
    match c.eng with
    | None -> Dead
    | Some t ->
        if victim < 0 || victim >= t.nthreads then
          invalid_arg "Engine.Mem.revoke: bad victim";
        charge c t.cost.revoke_broadcast;
        let vslot = t.slots.(victim) in
        (match vslot.pending with
        | Crashed -> Dead
        | Idle when victim <> c.tid -> Dead  (* finished or never started *)
        | Idle | Start _ | Blocked _ | Parked ->
            if not vslot.accessible then Already_pending
            else begin
              charge_flag_access t ~tid:c.tid ~owner:victim ~kind:Store
                ~extra:0;
              vslot.accessible <- false;
              tenure_clear t;
              if Oamem_obs.Trace.enabled t.trace then
                Oamem_obs.Trace.emit t.trace ~tid:c.tid
                  ~at:t.slots.(c.tid).clock
                  (Oamem_obs.Trace.Revoke_post { victim });
              Posted
            end)

  (* Cost-free queries (sanitizer, tests): is [tid]'s flag revoked, and was
     the calling thread's last committed Store/Rmw squashed? *)
  let access_revoked (c : ctx) ~tid =
    match c.eng with None -> false | Some t -> not t.slots.(tid).accessible

  let squashed (c : ctx) =
    match c.eng with None -> false | Some t -> t.slots.(c.tid).squashed
end

(* --- scheduler ----------------------------------------------------------- *)

let spawn t ~tid f =
  if tid < 0 || tid >= t.nthreads then invalid_arg "Engine.spawn: bad tid";
  let slot = t.slots.(tid) in
  (match slot.pending with
  | Idle -> ()
  | Start _ | Blocked _ | Parked -> invalid_arg "Engine.spawn: slot busy"
  | Crashed -> invalid_arg "Engine.spawn: slot crashed");
  slot.pending <- Start f;
  (* the new entry may undercut a cached minimum *)
  tenure_clear t;
  if t.use_heap then heap_push t tid

(* Pick the next slot to resume for the scan-based policies: a uniformly
   random runnable slot ([Random_order]) or the scripted/first runnable
   one ([Scripted]).  [Min_clock] uses the heap index instead; [Parked]
   cannot occur here (parking requires the heap path). *)
let pick_scan t =
  let runnable = ref 0 in
  for tid = 0 to t.nthreads - 1 do
    match t.slots.(tid).pending with
    | Idle | Crashed -> ()
    | Parked -> assert false
    | Start _ | Blocked _ -> incr runnable
  done;
  let nth_runnable n =
    let chosen = ref (-1) in
    let seen = ref 0 in
    for tid = 0 to t.nthreads - 1 do
      (match t.slots.(tid).pending with
      | Idle | Crashed -> ()
      | Parked -> assert false
      | Start _ | Blocked _ ->
          if !seen = n && !chosen < 0 then chosen := tid;
          incr seen)
    done;
    !chosen
  in
  if !runnable = 0 then -1
  else
    match t.policy with
    | Min_clock -> assert false
    | Random_order _ -> nth_runnable (Prng.int t.sched_rng !runnable)
    | Scripted s ->
        (* record the branching factor, then follow the prefix; past the
           prefix, take the first runnable thread (deterministic default) *)
        let step = s.steps in
        s.steps <- step + 1;
        s.factors <- !runnable :: s.factors;
        let choice =
          if step < Array.length s.prefix then s.prefix.(step) mod !runnable
          else 0
        in
        nth_runnable choice

exception Step_limit_exceeded

let run ?max_steps t =
  t.inline_ok <- t.fused && t.use_heap && max_steps = None;
  (* a prior run aborted by an exception can leave a stale park marker;
     tenures cache this run's preconditions, so they start empty *)
  t.parked <- -1;
  tenure_clear t;
  let steps = ref 0 in
  let rec loop () =
    let tid = if t.use_heap then heap_pop t else pick_scan t in
    if tid >= 0 then begin
      incr steps;
      (match max_steps with
      | Some limit when !steps > limit ->
          (* leave the slot exactly as the scan-based scheduler would:
             still pending, still indexed *)
          if t.use_heap then heap_push t tid;
          raise Step_limit_exceeded
      | _ -> ());
      step t tid;
      loop ()
    end
  in
  loop ()

(* --- stats --------------------------------------------------------------- *)

let clock t ~tid = t.slots.(tid).clock
let elapsed t = Array.fold_left (fun acc s -> max acc s.clock) 0 t.slots
let elapsed_seconds t = Cost_model.seconds_of_cycles t.cost (elapsed t)

let reset_clocks t =
  Array.iter
    (fun s ->
      s.clock <- 0;
      s.stalled_until <- 0)
    t.slots;
  (* tenure bounds are absolute clock values: all stale after a reset *)
  tenure_clear t;
  (* heap keys are clocks: re-derive the index or later pops would follow
     the stale pre-reset order *)
  heap_rebuild t

type stats = {
  accesses : int;
  fences : int;
  faults : int;
  syscalls : int;
  cache : Hierarchy.stats;
  tlb : Tlb.stats;
}

let stats (t : t) =
  {
    accesses = t.accesses;
    fences = t.fences;
    faults = t.faults;
    syscalls = t.syscalls;
    cache = Hierarchy.stats t.hierarchy;
    tlb = Tlb.stats t.tlb;
  }

let reset_stats (t : t) =
  t.accesses <- 0;
  t.fences <- 0;
  t.faults <- 0;
  t.syscalls <- 0;
  Hierarchy.reset_stats t.hierarchy;
  Tlb.reset_stats t.tlb

let pp_stats ppf s =
  Fmt.pf ppf "accesses=%d fences=%d faults=%d syscalls=%d %a %a" s.accesses
    s.fences s.faults s.syscalls Hierarchy.pp_stats s.cache Tlb.pp_stats s.tlb
