(* Deterministic simulated multicore execution engine.

   Logical threads are OCaml-5 effect-based coroutines.  Every simulated
   memory access, fence or OS event is a yield point: the thread performs a
   {!request} effect, the scheduler charges its cycle cost (via the cache
   hierarchy and TLB models) onto the thread's clock, and then resumes the
   globally earliest thread.  Under the [Min_clock] policy this executes all
   shared-memory accesses in simulated-time order, giving a deterministic
   discrete-event simulation of a multicore; under [Random_order] the
   scheduler explores arbitrary interleavings (used by race tests).

   Because exactly one access runs at a time, each access is atomic, and the
   interleaving granularity is a single memory access — the same granularity
   at which the paper's algorithms must be correct.

   Threads occupy fixed slots [0, nthreads); slots may be reused across
   successive [run] phases (e.g. a sequential prefill phase followed by a
   parallel measurement phase).  Spin loops in simulated code must call
   {!pause} (or perform some other yield) on every iteration, otherwise the
   simulation cannot make progress on other threads. *)

type access_kind = Load | Store | Rmw
type fence_kind = Full | Compiler
type event_kind = Minor_fault | Syscall | Pause

type request =
  | Access of { vpage : int; paddr : int; kind : access_kind }
  | Fence of fence_kind
  | Event of event_kind

type scripted = {
  prefix : int array;  (* scheduling choices to replay, as runnable-set
                          indices (taken modulo the number of runnable
                          threads at that step) *)
  mutable factors : int list;  (* observed branching factors, reversed *)
  mutable steps : int;
}

type policy = Min_clock | Random_order of int | Scripted of scripted

type _ Effect.t += Yield : request -> unit Effect.t

type outcome =
  | Done
  | Yielded of request * (unit, outcome) Effect.Deep.continuation

type fault_stats = {
  mutable yields : int;
  mutable stalls_injected : int;
  mutable stall_cycles : int;
  mutable jitter_cycles : int;
  mutable crashed : bool;
}

type t = {
  cost : Cost_model.t;
  geom : Geometry.t;
  hierarchy : Hierarchy.t;
  tlb : Tlb.t;
  nthreads : int;
  mutable slots : slot array;
  policy : policy;
  sched_rng : Prng.t;
  mutable plan : Fault_plan.t;
  mutable trace : Oamem_obs.Trace.t;
  mutable prof : Oamem_obs.Profile.t;
  mutable accesses : int;
  mutable fences : int;
  mutable faults : int;
  mutable syscalls : int;
}

and slot = {
  ctx : ctx;
  mutable clock : int;
  mutable pending : pending;
  fstats : fault_stats;
}

and pending =
  | Idle
  | Start of (ctx -> unit)
  | Blocked of request * (unit, outcome) Effect.Deep.continuation
  | Crashed  (* fault-injected fail-stop; the slot is permanently dead *)

and ctx = { tid : int; eng : t option; prng : Prng.t }

let fresh_fault_stats () =
  {
    yields = 0;
    stalls_injected = 0;
    stall_cycles = 0;
    jitter_cycles = 0;
    crashed = false;
  }

let create ?(policy = Min_clock) ?(cost = Cost_model.opteron_6274)
    ?(geom = Geometry.default) ?cache_cfg ?(tlb_slots = 64) ~nthreads () =
  if nthreads <= 0 then invalid_arg "Engine.create: nthreads must be positive";
  let hierarchy = Hierarchy.create ?cfg:cache_cfg ~cost ~nthreads () in
  let tlb = Tlb.create ~slots:tlb_slots ~cost ~nthreads () in
  let sched_seed =
    match policy with Random_order s -> s | Min_clock | Scripted _ -> 1
  in
  let t =
    {
      cost;
      geom;
      hierarchy;
      tlb;
      nthreads;
      slots = [||];
      policy;
      sched_rng = Prng.create sched_seed;
      plan = Fault_plan.none;
      trace = Oamem_obs.Trace.null;
      prof = Oamem_obs.Profile.null;
      accesses = 0;
      fences = 0;
      faults = 0;
      syscalls = 0;
    }
  in
  t.slots <-
    Array.init nthreads (fun tid ->
        {
          ctx = { tid; eng = Some t; prng = Prng.create (0x9e37 + tid) };
          clock = 0;
          pending = Idle;
          fstats = fresh_fault_stats ();
        });
  t

let cost_model t = t.cost
let geometry t = t.geom
let nthreads t = t.nthreads

let external_ctx ?(tid = 0) ?(seed = 42) () =
  { tid; eng = None; prng = Prng.create seed }

(* Cycle cost of a request issued by thread [tid], updating the cache and
   TLB models as a side effect. *)
let cost_of_request t ~tid = function
  | Access { vpage; paddr; kind } ->
      t.accesses <- t.accesses + 1;
      let tlb_cost = if vpage >= 0 then Tlb.access t.tlb ~tid vpage else 0 in
      let hkind =
        match kind with
        | Load -> Hierarchy.Load
        | Store -> Hierarchy.Store
        | Rmw -> Hierarchy.Rmw
      in
      let block = Geometry.block_of_addr t.geom paddr in
      tlb_cost + Hierarchy.access t.hierarchy ~tid ~kind:hkind block
  | Fence Full ->
      t.fences <- t.fences + 1;
      t.cost.fence_full
  | Fence Compiler -> t.cost.fence_compiler
  | Event Minor_fault ->
      t.faults <- t.faults + 1;
      t.cost.minor_fault
  | Event Syscall ->
      t.syscalls <- t.syscalls + 1;
      t.cost.syscall
  | Event Pause -> t.cost.pause

(* --- thread-side API ----------------------------------------------------- *)

let yield ctx request =
  match ctx.eng with
  | None -> ()
  | Some _ -> Effect.perform (Yield request)

let access ctx ~vpage ~paddr ~kind = yield ctx (Access { vpage; paddr; kind })
let fence ctx kind = yield ctx (Fence kind)
let event ctx kind = yield ctx (Event kind)
let pause ctx = yield ctx (Event Pause)

let charge ctx cycles =
  match ctx.eng with
  | None -> ()
  | Some t ->
      let slot = t.slots.(ctx.tid) in
      slot.clock <- slot.clock + cycles;
      if Oamem_obs.Profile.enabled t.prof then
        Oamem_obs.Profile.charge t.prof ~tid:ctx.tid cycles

let now ctx =
  match ctx.eng with None -> 0 | Some t -> t.slots.(ctx.tid).clock

(* Kernel-side effect of an unmap/remap: flush the page from every TLB.  The
   cycle cost is part of the syscall that triggered it. *)
let tlb_shootdown ctx vpage =
  match ctx.eng with None -> () | Some t -> Tlb.shootdown t.tlb vpage

(* --- scheduler ----------------------------------------------------------- *)

let spawn t ~tid f =
  if tid < 0 || tid >= t.nthreads then invalid_arg "Engine.spawn: bad tid";
  let slot = t.slots.(tid) in
  (match slot.pending with
  | Idle -> ()
  | Start _ | Blocked _ -> invalid_arg "Engine.spawn: slot busy"
  | Crashed -> invalid_arg "Engine.spawn: slot crashed");
  slot.pending <- Start f

(* --- fault injection ------------------------------------------------------ *)

let set_fault_plan t plan = t.plan <- plan
let fault_plan t = t.plan
let set_trace t tr = t.trace <- tr
let trace t = t.trace
let set_profile t p = t.prof <- p
let profile t = t.prof

(* The profiler as seen from a thread context: [Profile.null] outside the
   engine, so subsystem instrumentation needs no option check. *)
let ctx_profile ctx =
  match ctx.eng with None -> Oamem_obs.Profile.null | Some t -> t.prof

let note_cas_failure ctx ~addr =
  match ctx.eng with
  | None -> ()
  | Some t ->
      if Oamem_obs.Profile.enabled t.prof then
        Oamem_obs.Profile.note_cas_failure t.prof ~tid:ctx.tid ~addr
let fault_stats t ~tid = t.slots.(tid).fstats
let crashed t ~tid = t.slots.(tid).fstats.crashed

let start_thread ctx f =
  Effect.Deep.match_with f ctx
    {
      retc = (fun () -> Done);
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield r ->
              Some
                (fun (k : (a, outcome) Effect.Deep.continuation) ->
                  Yielded (r, k))
          | _ -> None);
    }

(* Pick the next slot to resume: the earliest clock (ties to lowest tid)
   under [Min_clock], or a uniformly random runnable slot otherwise. *)
let pick t =
  let best = ref (-1) in
  let runnable = ref 0 in
  for tid = 0 to t.nthreads - 1 do
    match t.slots.(tid).pending with
    | Idle | Crashed -> ()
    | Start _ | Blocked _ ->
        incr runnable;
        if !best < 0 || t.slots.(tid).clock < t.slots.(!best).clock then
          best := tid
  done;
  let nth_runnable n =
    let chosen = ref (-1) in
    let seen = ref 0 in
    for tid = 0 to t.nthreads - 1 do
      (match t.slots.(tid).pending with
      | Idle | Crashed -> ()
      | Start _ | Blocked _ ->
          if !seen = n && !chosen < 0 then chosen := tid;
          incr seen)
    done;
    !chosen
  in
  if !best < 0 then None
  else
    match t.policy with
    | Min_clock -> Some !best
    | Random_order _ -> Some (nth_runnable (Prng.int t.sched_rng !runnable))
    | Scripted s ->
        (* record the branching factor, then follow the prefix; past the
           prefix, take the first runnable thread (deterministic default) *)
        let step = s.steps in
        s.steps <- step + 1;
        s.factors <- !runnable :: s.factors;
        let choice =
          if step < Array.length s.prefix then s.prefix.(step) mod !runnable
          else 0
        in
        Some (nth_runnable choice)

exception Step_limit_exceeded

let run ?max_steps t =
  let steps = ref 0 in
  let rec loop () =
    match pick t with
    | None -> ()
    | Some tid ->
        incr steps;
        (match max_steps with
        | Some limit when !steps > limit -> raise Step_limit_exceeded
        | _ -> ());
        let slot = t.slots.(tid) in
        let settle = function
          | Done -> slot.pending <- Idle
          | Yielded (r, k) -> slot.pending <- Blocked (r, k)
        in
        (match slot.pending with
        | Idle | Crashed -> assert false
        | Start f ->
            slot.pending <- Idle;
            settle
              (try start_thread slot.ctx f
               with e ->
                 slot.pending <- Idle;
                 raise e)
        | Blocked (request, k) -> (
            slot.pending <- Idle;
            let fs = slot.fstats in
            fs.yields <- fs.yields + 1;
            match Fault_plan.on_yield t.plan ~tid ~yield:fs.yields with
            | Fault_plan.Kill ->
                (* fail-stop: drop the continuation, never resume the slot *)
                fs.crashed <- true;
                slot.pending <- Crashed;
                if Oamem_obs.Trace.enabled t.trace then
                  Oamem_obs.Trace.emit t.trace ~tid ~at:slot.clock
                    Oamem_obs.Trace.Crash
            | Fault_plan.Delay { stall; jitter } ->
                if stall > 0 then begin
                  fs.stalls_injected <- fs.stalls_injected + 1;
                  fs.stall_cycles <- fs.stall_cycles + stall;
                  if Oamem_obs.Trace.enabled t.trace then
                    Oamem_obs.Trace.emit t.trace ~tid ~at:slot.clock
                      (Oamem_obs.Trace.Stall { cycles = stall })
                end;
                if jitter > 0 then fs.jitter_cycles <- fs.jitter_cycles + jitter;
                let profiling = Oamem_obs.Profile.enabled t.prof in
                let invs_before =
                  if profiling then Hierarchy.remote_invalidations t.hierarchy
                  else 0
                in
                let cost = cost_of_request t ~tid request + stall + jitter in
                slot.clock <- slot.clock + cost;
                if profiling then begin
                  (* the yielding thread's span stack is untouched until its
                     continuation resumes, so the innermost open span is the
                     one that issued this request *)
                  Oamem_obs.Profile.charge t.prof ~tid cost;
                  match request with
                  | Access { paddr; kind = Store | Rmw; _ }
                    when Hierarchy.remote_invalidations t.hierarchy
                         > invs_before ->
                      Oamem_obs.Profile.note_invalidation t.prof ~tid
                        ~addr:paddr
                  | _ -> ()
                end;
                settle
                  (try Effect.Deep.continue k ()
                   with e ->
                     slot.pending <- Idle;
                     raise e)));
        loop ()
  in
  loop ()

(* --- stats --------------------------------------------------------------- *)

let clock t ~tid = t.slots.(tid).clock
let elapsed t = Array.fold_left (fun acc s -> max acc s.clock) 0 t.slots
let elapsed_seconds t = Cost_model.seconds_of_cycles t.cost (elapsed t)

let reset_clocks t = Array.iter (fun s -> s.clock <- 0) t.slots

type stats = {
  accesses : int;
  fences : int;
  faults : int;
  syscalls : int;
  cache : Hierarchy.stats;
  tlb : Tlb.stats;
}

let stats (t : t) =
  {
    accesses = t.accesses;
    fences = t.fences;
    faults = t.faults;
    syscalls = t.syscalls;
    cache = Hierarchy.stats t.hierarchy;
    tlb = Tlb.stats t.tlb;
  }

let reset_stats (t : t) =
  t.accesses <- 0;
  t.fences <- 0;
  t.faults <- 0;
  t.syscalls <- 0;
  Hierarchy.reset_stats t.hierarchy;
  Tlb.reset_stats t.tlb

let pp_stats ppf s =
  Fmt.pf ppf "accesses=%d fences=%d faults=%d syscalls=%d %a %a" s.accesses
    s.fences s.faults s.syscalls Hierarchy.pp_stats s.cache Tlb.pp_stats s.tlb
