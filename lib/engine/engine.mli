(** Deterministic simulated multicore execution engine.

    Logical threads are effect-based coroutines; every simulated memory
    access, fence or OS event yields to the scheduler, which charges its
    cycle cost (cache hierarchy + TLB models) to the thread's clock and
    resumes the globally earliest thread ([Min_clock]) or a random runnable
    one ([Random_order]).  Exactly one access executes at a time, so each
    access is atomic and interleaving granularity is a single access.

    All thread-side cost accounting goes through {!Mem}, the fused
    per-thread memory-access interface.  Spin loops in simulated code must
    yield (e.g. {!Mem.pause}) on every iteration, otherwise other threads
    cannot progress. *)

type access_kind = Load | Store | Rmw
type fence_kind = Full | Compiler
type event_kind = Minor_fault | Syscall | Pause

exception Neutralized
(** Raised inside a victim thread when a posted neutralization signal is
    delivered: the thread unwinds to its {!Mem.checkpoint}, which runs the
    registered recovery closure and retries.  Simulated code should let it
    propagate (or re-raise it) so the checkpoint sees it. *)

type signal_outcome =
  | Posted  (** signal now pending; the victim is quiesced from here on *)
  | Already_pending  (** an earlier signal has not been delivered yet *)
  | Dead  (** the victim crashed or already finished — typed no-op *)

type scripted = {
  prefix : int array;
      (** scheduling choices to replay, as runnable-set indices (taken
          modulo the number of runnable threads at that step) *)
  mutable factors : int list;
      (** observed branching factors, reversed; filled in by the run *)
  mutable steps : int;  (** number of scheduling decisions taken so far *)
}

type policy =
  | Min_clock  (** execute accesses in simulated-time order (benchmarks) *)
  | Random_order of int  (** seeded random interleaving (race tests) *)
  | Scripted of scripted
      (** replay a schedule prefix and record branching factors; used by
          {!Explore} for bounded schedule enumeration *)

type t

type ctx
(** Per-logical-thread context: the value every simulated thread body
    receives and threads through the whole stack.  It is the fused
    memory-access handle — engine binding, thread id, PRNG and
    per-access bookkeeping are resolved once per thread at engine creation,
    not re-checked per access.  Operate on it through {!Mem}. *)

val create :
  ?policy:policy ->
  ?cost:Cost_model.t ->
  ?geom:Geometry.t ->
  ?cache_cfg:Hierarchy.config ->
  ?tlb_slots:int ->
  nthreads:int ->
  unit ->
  t

val cost_model : t -> Cost_model.t
val geometry : t -> Geometry.t
val nthreads : t -> int

val external_ctx : ?tid:int -> ?seed:int -> unit -> ctx
(** A context usable outside the scheduler: all cost accounting is a no-op. *)

(** {2 The fused memory-access interface} — called from inside simulated
    threads.  One handle per thread carries everything an access needs, so
    each call is a single enablement branch plus the cost-model update; on
    the hot path ([Min_clock], trivial fault plan, thread still the
    scheduling leader) a request is charged inline without a context
    switch, with byte-identical simulated results (see DESIGN.md). *)

module Mem : sig
  type t = ctx

  val tid : t -> int
  val prng : t -> Prng.t

  val costed : t -> bool
  (** [true] when the context belongs to an engine (accesses are charged);
      [false] for {!external_ctx}. *)

  val now : t -> int
  (** The calling thread's simulated clock, in cycles. *)

  val access : t -> vpage:int -> paddr:int -> kind:access_kind -> unit
  (** Charge one memory access.  [vpage < 0] skips the TLB (used for
      allocator metadata that is modelled as identity-mapped). *)

  val fence : t -> fence_kind -> unit
  val event : t -> event_kind -> unit

  val pause : t -> unit
  (** One spin-loop iteration: charges the pause cost and yields. *)

  val charge : t -> int -> unit
  (** Add raw cycles to the calling thread's clock without yielding. *)

  val tlb_shootdown : t -> int -> unit
  (** Flush a virtual page from every TLB (issued by unmap/remap paths;
      its cycle cost is part of the surrounding syscall). *)

  val note_cas_failure : t -> addr:int -> unit
  (** Record a failed CAS on simulated address [addr] in the profiler's
      contention table (no-op when profiling is off or outside the
      engine). *)

  val profile : t -> Oamem_obs.Profile.t
  (** The engine's profiler, or {!Oamem_obs.Profile.null} for an external
      context — instrumentation points need no option check. *)

  (** {3 Neutralization} — a deterministic simulation of the async-signal
      checkpoint/restart idiom (sigsetjmp + tgkill) DEBRA+ and NBR build
      on.  See DESIGN.md "Neutralization". *)

  val checkpoint : t -> recover:(unit -> unit) -> (unit -> 'a) -> 'a
  (** [checkpoint c ~recover f] registers a recovery checkpoint for the
      dynamic extent of [f] (charged [checkpoint_set] cycles).  If a
      neutralization signal is delivered while [f] runs, the thread
      unwinds here with {!Neutralized}, [recover] runs, and [f] is
      retried.  [recover] must be idempotent: a signal delivered during
      recovery re-runs it.  Nested registration raises
      [Invalid_argument].  For an external context, [f] just runs. *)

  val masked : t -> (unit -> 'a) -> 'a
  (** Defer signal delivery for the extent of the callback (sigprocmask
      analogue); nests.  Used around sections whose unwind would corrupt
      host-side state (allocator calls, limbo-bag updates). *)

  val neutralize : t -> victim:int -> signal_outcome
  (** Post a neutralization signal to thread [victim] (charged
      [neutralize_post] cycles to the poster; no yield, so the post is
      atomic).  After [Posted] the poster may treat the victim as
      quiesced: the victim executes no further simulated access before
      delivery — a pending signal disables its fused fast path and the
      scheduler delivers before processing its next blocked request,
      discarding that request unexecuted.  Delivery happens only when the
      victim has a {!checkpoint} registered and is not {!masked}; the
      signal stays pending (and keeps the victim off the fast path) until
      then.  A signal cuts an injected stall short: the victim's wake-up
      is pulled back to the poster's clock.  Posting to a crashed or
      finished thread returns [Dead] and does nothing. *)

  val signal_pending : t -> tid:int -> bool

  val peer_crashed : t -> tid:int -> bool
  (** Whether thread slot [tid] was fail-stopped by fault injection —
      the pthread_tryjoin analogue schemes use to seize a dead thread's
      deferred frees. *)

  (** {3 Conditional access} — a deterministic simulation of the revocable
      per-thread "accessible" flag of Singh, Brown & Spear's immediate-
      reclamation hardware primitive.  Flag lines are real simulated
      addresses, so revocations and flag checks flow through the coherence
      directory (and the profiler's contention attribution) like any other
      shared-line traffic.  See DESIGN.md "Conditional access". *)

  val cond_access : t -> bool
  (** One conditional access: charge a load of the calling thread's own
      flag line plus [cond_access_extra] directory-check cycles (no yield —
      the check is atomic with its outcome) and return the flag.  [false]
      means a revocation is pending: the scheme must restart the operation
      (after {!grant_access}).  Always [true] for an external context. *)

  val grant_access : t -> unit
  (** Re-grant the calling thread's own flag (a store on its flag line):
      the restart path after a failed {!cond_access}. *)

  val revoke : t -> victim:int -> signal_outcome
  (** Revoke [victim]'s accessible flag (charged [revoke_broadcast] plus a
      remote store on the victim's flag line; no yield, so the revocation
      is atomic).  After [Posted], any Store/Rmw the victim commits outside
      a {!masked} section is {e squashed} — the value mutation does not
      happen and CAS-like operations report failure — and its next
      {!cond_access} returns [false]; a poster may therefore free memory
      the victim could still be reading immediately after revoking.  A
      pending revocation clears every cached leader tenure, exactly like a
      posted neutralization, and keeps the victim off the fused fast path
      until it re-grants its own flag.  Posting to a crashed or finished
      thread returns [Dead] (safe: it never accesses again); a victim whose
      flag is already revoked returns [Already_pending]. *)

  val unconditional : t -> (unit -> 'a) -> 'a
  (** Exempt every access made during the callback from conditional-access
      squashing; nests.  For trusted runtime code — allocator metadata
      walks, superblock anchor CASes — that is not part of any scheme's
      optimistic protocol and must make progress even on a thread whose
      flag is revoked (e.g. a bystander flushing its thread cache).
      Orthogonal to {!masked}: signal delivery is not deferred. *)

  val access_revoked : t -> tid:int -> bool
  (** Cost-free: whether [tid]'s accessible flag is currently revoked
      (sanitizer and test hook). *)

  val squashed : t -> bool
  (** Cost-free: whether the calling thread's last committed Store/Rmw was
      squashed by a pending revocation.  [Cell]/[Vmem] consult this right
      after the access charge to suppress the value mutation. *)
end

(** {2 Scheduler} *)

val spawn : t -> tid:int -> (ctx -> unit) -> unit
(** Assign a body to thread slot [tid].  The slot must be idle.  Slots may be
    reused across successive {!run} phases. *)

exception Step_limit_exceeded

val run : ?max_steps:int -> t -> unit
(** Run until every spawned thread finishes or crashes.  Exceptions raised
    by thread bodies propagate (the raising slot is marked idle). *)

(** {2 Fault injection}

    The engine consults a {!Fault_plan.t} at every yield point, under every
    scheduling policy: stalls add cycles to the thread's clock (so it is not
    rescheduled until the simulated stall has passed), crashes remove the
    thread from the runnable set permanently mid-operation, jitter perturbs
    every yield with a seeded random delay.  Crashed slots are dead: they
    are never resumed, [spawn] on them raises, and {!run} returns once only
    crashed slots remain. *)

val set_fault_plan : t -> Fault_plan.t -> unit
val fault_plan : t -> Fault_plan.t

(** {2 Tracing}

    The engine emits [Stall] and [Crash] events into an attached
    {!Oamem_obs.Trace.t} (default {!Oamem_obs.Trace.null}); other
    subsystems attach to the same trace via their own [set_trace]. *)

val set_trace : t -> Oamem_obs.Trace.t -> unit
val trace : t -> Oamem_obs.Trace.t

(** {2 Profiling}

    With an attached {!Oamem_obs.Profile.t} (default
    {!Oamem_obs.Profile.null}), every cycle the scheduler charges — request
    costs from the cache/TLB/cost models, injected stalls and jitter, and
    raw {!Mem.charge} cycles — is also attributed to the issuing thread's
    innermost open profiler span, and stores/RMWs that trigger a remote
    invalidation broadcast are charged to the accessed address in the
    profiler's contention table.  Subsystems open spans through
    {!Mem.profile} and report failed CAS attempts through
    {!Mem.note_cas_failure}.  All of it is allocation-free and branch-only
    when the profiler is disabled. *)

val set_profile : t -> Oamem_obs.Profile.t -> unit
val profile : t -> Oamem_obs.Profile.t

(** {2 Fused fast path} *)

val set_fused : t -> bool -> unit
(** Enable/disable the inline fast path (default enabled).  With it
    disabled every yield goes through the scheduler exactly as the
    pre-fusion engine did — the differential tests run both ways and
    assert byte-identical simulated results.

    When enabled, a passing leadership check is cached as a {e leader
    tenure}: a clock bound below which the thread provably remains the
    strict scheduling leader, so steady-state accesses cost one integer
    compare instead of a heap inspection.  Fences and events always
    revalidate against the live heap minimum; spawn, [reset_clocks],
    neutralization posts and plan/fusion changes drop every cached tenure.
    See DESIGN.md "Leader tenures" for the proof obligations. *)

val fused : t -> bool

val set_runahead : t -> bool -> unit
(** Enable/disable the run-ahead parking tier of the fused path (default
    enabled; only active while {!fused} is).  A near-leader thread that
    fails the leadership check parks in the scheduler's heap and drives
    the other threads forward from its own stack frame, committing its
    recorded request without a continuation switch once it surfaces as the
    scheduling minimum.  Observationally identical to suspending through
    an effect — the drained threads run in the same global order and the
    commit replays the scheduler's own bookkeeping — and proven so by the
    differential tests; the toggle exists for exactly that comparison. *)

val runahead : t -> bool

val steps : t -> int
(** Total yield points executed across all threads and phases (scheduler
    and inline path alike): the engine's simulated step count, the
    numerator of [bench --host-throughput]'s steps-per-host-second. *)

type fault_stats = {
  mutable yields : int;  (** yield points executed by this thread *)
  mutable stalls_injected : int;
  mutable stall_cycles : int;
  mutable jitter_cycles : int;
  mutable crashed : bool;
  mutable neutralized : int;
      (** neutralization signals delivered to this thread *)
}

val fault_stats : t -> tid:int -> fault_stats
(** Live per-thread record (not a copy). *)

val crashed : t -> tid:int -> bool

(** {2 Clocks and stats} *)

val clock : t -> tid:int -> int
val elapsed : t -> int
(** Max over all thread clocks, in cycles. *)

val elapsed_seconds : t -> float

val reset_clocks : t -> unit
(** Zero every thread clock and rebuild the scheduler index (heap keys are
    clocks).  Part of {!Oamem_core.System.reset_measurement}. *)

type stats = {
  accesses : int;
  fences : int;
  faults : int;
  syscalls : int;
  cache : Hierarchy.stats;
  tlb : Tlb.stats;
}

val stats : t -> stats
val reset_stats : t -> unit
val pp_stats : Format.formatter -> stats -> unit
