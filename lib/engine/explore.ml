(* Bounded schedule exploration ("model checking lite").

   Systematically enumerates scheduler decisions for the first [depth] yield
   points of a scenario and replays every resulting schedule; beyond the
   explored depth the schedule is deterministic (first runnable thread).
   Because the engine yields at every simulated memory access, this explores
   exactly the interleavings at which lock-free algorithms can differ.

   A scenario is re-instantiated from scratch for every schedule (effect
   continuations are one-shot), so scenarios must build all their state
   inside the [make] callback:

   {[
     Explore.check ~nthreads:2 ~depth:10 (fun () ->
         let hits = ref 0 in
         {
           setup = (fun eng -> Engine.spawn eng ~tid:0 ...);
           verify = (fun () -> if !hits <> 2 then failwith "lost update");
         })
   ]}

   Exploration cost is the product of branching factors over [depth], so
   keep scenarios tiny (a handful of operations on 2-3 threads). *)

type instance = {
  setup : Engine.t -> unit;  (** spawn the scenario's threads *)
  verify : unit -> unit;  (** raise to report a violation *)
}

type stats = { runs : int; violations : int; max_depth_reached : int }

exception Budget_exhausted of stats

let check ?(max_runs = 20_000) ?(max_steps = 200_000) ~nthreads ~depth make =
  let runs = ref 0 in
  let violations = ref 0 in
  let deepest = ref 0 in
  let first_failure = ref None in
  (* Run one schedule; returns the branching factors observed (in order). *)
  let run_one prefix =
    incr runs;
    if !runs > max_runs then
      raise
        (Budget_exhausted
           { runs = !runs; violations = !violations; max_depth_reached = !deepest });
    let scripted =
      { Engine.prefix = Array.of_list prefix; factors = []; steps = 0 }
    in
    let eng = Engine.create ~policy:(Engine.Scripted scripted) ~nthreads () in
    let inst = make () in
    inst.setup eng;
    Engine.run ~max_steps eng;
    (try inst.verify ()
     with e ->
       incr violations;
       if !first_failure = None then first_failure := Some (prefix, e));
    List.rev scripted.Engine.factors
  in
  let rec explore prefix =
    let factors = run_one prefix in
    let pos = List.length prefix in
    deepest := max !deepest pos;
    if pos < depth && List.length factors > pos then begin
      let f = List.nth factors pos in
      (* choice 0 at this position was just taken by [run_one]; recurse into
         its deeper alternatives, then into the sibling choices *)
      if pos + 1 < depth then explore_deeper (prefix @ [ 0 ]) factors;
      for c = 1 to f - 1 do
        explore (prefix @ [ c ])
      done
    end
  (* like [explore] but reuses the parent's observed factors instead of
     re-running the identical all-zero extension *)
  and explore_deeper prefix factors =
    let pos = List.length prefix in
    deepest := max !deepest pos;
    if pos < depth && List.length factors > pos then begin
      let f = List.nth factors pos in
      if pos + 1 < depth then explore_deeper (prefix @ [ 0 ]) factors;
      for c = 1 to f - 1 do
        explore (prefix @ [ c ])
      done
    end
  in
  explore [];
  match !first_failure with
  | Some (prefix, e) ->
      let trace =
        String.concat "," (List.map string_of_int prefix)
      in
      raise
        (Failure
           (Printf.sprintf
              "Explore.check: %d/%d schedules violated the oracle; first \
               failing schedule prefix = [%s]; first error: %s"
              !violations !runs trace (Printexc.to_string e)))
  | None -> { runs = !runs; violations = !violations; max_depth_reached = !deepest }

(* --- randomized schedule fuzzing ------------------------------------------ *)

(* Bounded enumeration covers every interleaving of a *tiny* prefix; the
   fuzzer trades completeness for depth, sampling long random schedule
   prefixes instead.  The caller supplies [run], which replays one schedule
   prefix (typically by building a [Scripted] engine) and returns
   [Some error] when the oracle failed.  A failing prefix is then shrunk:

   1. binary search on the prefix length (a failing prefix usually keeps
      failing when truncated, because entries past the decisive race only
      schedule the aftermath);
   2. a zeroing pass that rewrites each surviving entry to 0 (= "first
      runnable", the deterministic default) when the failure persists;
   3. trailing zeroes are dropped outright — an entry 0 is exactly what the
      scripted policy does past the end of its prefix, so they never change
      the schedule.

   Shrinking is best-effort and budget-bound: schedules are not monotone in
   general, so every candidate is re-validated and rejected candidates are
   simply kept un-shrunk. *)

type repro = {
  seed : int;  (** PRNG seed the failing prefix was drawn from *)
  prefix : int array;  (** shrunk failing schedule prefix *)
  error : string;  (** oracle error reproduced by [prefix] *)
}

type fuzz_stats = {
  fuzz_runs : int;  (** random schedules executed *)
  shrink_runs : int;  (** extra replays spent shrinking *)
  repro : repro option;  (** [None]: every schedule passed the oracle *)
}

let drop_trailing_zeros prefix =
  let n = ref (Array.length prefix) in
  while !n > 0 && prefix.(!n - 1) = 0 do
    decr n
  done;
  Array.sub prefix 0 !n

let shrink ?(budget = 2_000) fails prefix =
  let attempts = ref 0 in
  let try_ p = !attempts < budget && (incr attempts; fails p) in
  (* phase 1: binary-search the shortest failing truncation *)
  let best = ref prefix in
  let lo = ref 0 and hi = ref (Array.length prefix) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let cand = Array.sub prefix 0 mid in
    if try_ cand then begin
      best := cand;
      hi := mid
    end
    else lo := mid + 1
  done;
  (* phase 2: zero entries one at a time *)
  let cur = Array.copy !best in
  for i = 0 to Array.length cur - 1 do
    if cur.(i) <> 0 then begin
      let saved = cur.(i) in
      cur.(i) <- 0;
      if not (try_ (Array.copy cur)) then cur.(i) <- saved
    end
  done;
  drop_trailing_zeros cur

let fuzz ?(max_runs = 500) ?(prefix_len = 512) ?(shrink_budget = 2_000)
    ?(stop = fun () -> false) ~seed run =
  let prng = Prng.create seed in
  let runs = ref 0 in
  let failure = ref None in
  while !runs < max_runs && !failure = None && not (stop ()) do
    (* entries are taken modulo the runnable count at replay time, so any
       non-negative value is a valid decision *)
    let prefix = Array.init prefix_len (fun _ -> Prng.int prng 4096) in
    incr runs;
    match run prefix with
    | None -> ()
    | Some err -> failure := Some (prefix, err)
  done;
  match !failure with
  | None -> { fuzz_runs = !runs; shrink_runs = 0; repro = None }
  | Some (prefix, err) ->
      let shrink_runs = ref 0 in
      let fails p =
        incr shrink_runs;
        run p <> None
      in
      let shrunk = shrink ~budget:shrink_budget fails prefix in
      (* re-derive the error from the shrunk prefix (it may differ from the
         original failure when shrinking found a different bug) *)
      incr shrink_runs;
      let error = match run shrunk with Some e -> e | None -> err in
      {
        fuzz_runs = !runs;
        shrink_runs = !shrink_runs;
        repro = Some { seed; prefix = shrunk; error };
      }
