(** Bounded schedule exploration over the simulation engine.

    Enumerates every scheduling decision for the first [depth] yield points
    of a small scenario and replays each resulting schedule, verifying an
    oracle after each run.  Scenarios are re-instantiated per schedule. *)

type instance = {
  setup : Engine.t -> unit;  (** spawn the scenario's threads *)
  verify : unit -> unit;  (** raise to report a violation *)
}

type stats = { runs : int; violations : int; max_depth_reached : int }

exception Budget_exhausted of stats

val check :
  ?max_runs:int ->
  ?max_steps:int ->
  nthreads:int ->
  depth:int ->
  (unit -> instance) ->
  stats
(** Raises [Failure] describing the first failing schedule if any oracle
    violation is found; raises {!Budget_exhausted} past [max_runs]. *)

(** {2 Randomized schedule fuzzing}

    Beyond the reach of bounded enumeration: sample long random schedule
    prefixes, then shrink a failing prefix to a minimal replayable one.
    The caller supplies the replay function — typically it builds a fresh
    scenario on a [Scripted] engine and returns [Some error] when the
    oracle failed.  Replays must be deterministic in the prefix. *)

type repro = {
  seed : int;  (** PRNG seed the failing prefix was drawn from *)
  prefix : int array;  (** shrunk failing schedule prefix *)
  error : string;  (** oracle error reproduced by [prefix] *)
}

type fuzz_stats = {
  fuzz_runs : int;  (** random schedules executed *)
  shrink_runs : int;  (** extra replays spent shrinking *)
  repro : repro option;  (** [None]: every schedule passed the oracle *)
}

val fuzz :
  ?max_runs:int ->
  ?prefix_len:int ->
  ?shrink_budget:int ->
  ?stop:(unit -> bool) ->
  seed:int ->
  (int array -> string option) ->
  fuzz_stats
(** Run up to [max_runs] random schedules of [prefix_len] decisions each
    (entries are taken modulo the runnable count at replay time); on the
    first failure, shrink it with at most [shrink_budget] extra replays.
    [stop] is polled between runs for external time-boxing. *)

val shrink : ?budget:int -> (int array -> bool) -> int array -> int array
(** [shrink fails prefix] minimises a failing schedule prefix: binary
    search on the length, then a pass rewriting entries to the
    deterministic default 0, keeping only changes under which [fails]
    still holds; trailing zeroes are dropped (they cannot change the
    schedule).  [prefix] itself must satisfy [fails]. *)
