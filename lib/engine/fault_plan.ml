(* Scheduler-level fault injection.

   A plan describes adversarial scheduling events that the engine honours at
   yield points (every simulated memory access, fence or OS event):

   - [Stall]: at thread [tid]'s [at_yield]-th yield point, add [cycles] to
     its clock.  Under [Min_clock] the thread is then not scheduled again
     until every other thread's clock has passed the stall — the simulated
     equivalent of a thread preempted (or swapped out) for [cycles] cycles.
   - [Crash]: at the [at_yield]-th yield point the thread is removed from
     the runnable set permanently, mid-operation, holding whatever hazard
     pointers / epoch announcements / warning state it had.  This is the
     fail-stop adversary of the paper's robustness argument.
   - [Jitter]: every yield of every thread gets an extra delay drawn
     uniformly from [0, max_cycles) by a seeded PRNG, perturbing the
     interleaving deterministically.

   Yield counts are 1-based and per-thread, so a plan is deterministic
   under a deterministic scheduler: the k-th yield of thread t is the same
   program point on every run with the same seed.

   A plan carries mutable PRNG state (jitter), so one plan instance should
   drive one engine run. *)

type event =
  | Stall of { tid : int; at_yield : int; cycles : int }
  | Crash of { tid : int; at_yield : int }
  | Jitter of { seed : int; max_cycles : int }

type decision = Kill | Delay of { stall : int; jitter : int }

type t = {
  events : event list;
  stalls : (int * int, int) Hashtbl.t;  (* (tid, yield) -> cycles *)
  crashes : (int * int, unit) Hashtbl.t;
  jitter : (Prng.t * int) option;
  trivial : bool;  (* fast path: no events at all *)
}

let none =
  {
    events = [];
    stalls = Hashtbl.create 1;
    crashes = Hashtbl.create 1;
    jitter = None;
    trivial = true;
  }

let make events =
  let stalls = Hashtbl.create 8 and crashes = Hashtbl.create 8 in
  let jitter = ref None in
  List.iter
    (function
      | Stall { tid; at_yield; cycles } ->
          if tid < 0 || at_yield < 1 || cycles < 0 then
            invalid_arg "Fault_plan.make: bad stall";
          Hashtbl.replace stalls (tid, at_yield) cycles
      | Crash { tid; at_yield } ->
          if tid < 0 || at_yield < 1 then invalid_arg "Fault_plan.make: bad crash";
          Hashtbl.replace crashes (tid, at_yield) ()
      | Jitter { seed; max_cycles } ->
          if max_cycles < 1 then invalid_arg "Fault_plan.make: bad jitter";
          jitter := Some (Prng.create seed, max_cycles))
    events;
  { events; stalls; crashes; jitter = !jitter; trivial = events = [] }

let events t = t.events
let is_trivial t = t.trivial

let no_delay = Delay { stall = 0; jitter = 0 }

let on_yield t ~tid ~yield =
  if t.trivial then no_delay
  else if Hashtbl.mem t.crashes (tid, yield) then Kill
  else
    let stall =
      Option.value ~default:0 (Hashtbl.find_opt t.stalls (tid, yield))
    in
    let jitter =
      match t.jitter with None -> 0 | Some (rng, max) -> Prng.int rng max
    in
    if stall = 0 && jitter = 0 then no_delay else Delay { stall; jitter }

let pp ppf t =
  let pp_event ppf = function
    | Stall { tid; at_yield; cycles } ->
        Fmt.pf ppf "stall(t%d@%d,+%d)" tid at_yield cycles
    | Crash { tid; at_yield } -> Fmt.pf ppf "crash(t%d@%d)" tid at_yield
    | Jitter { seed; max_cycles } ->
        Fmt.pf ppf "jitter(seed=%d,<%d)" seed max_cycles
  in
  Fmt.pf ppf "faults[%a]" (Fmt.list ~sep:(Fmt.any ";") pp_event) t.events
