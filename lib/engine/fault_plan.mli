(** Scheduler-level fault injection: stalls, fail-stop crashes and jitter,
    honoured by the engine at every yield point under every scheduling
    policy.  Yield counts are 1-based and per-thread, so plans are
    deterministic and replayable under a fixed scheduler seed. *)

type event =
  | Stall of { tid : int; at_yield : int; cycles : int }
      (** at the thread's [at_yield]-th yield, add [cycles] to its clock *)
  | Crash of { tid : int; at_yield : int }
      (** remove the thread from the runnable set permanently, mid-operation *)
  | Jitter of { seed : int; max_cycles : int }
      (** every yield of every thread gets a delay in [0, max_cycles) from a
          seeded PRNG *)

type decision = Kill | Delay of { stall : int; jitter : int }

type t

val none : t
(** The empty plan (the engine default). *)

val make : event list -> t
(** Raises [Invalid_argument] on negative tids/cycles or yields < 1.  A plan
    carries mutable PRNG state (jitter): one instance per engine run. *)

val events : t -> event list
val is_trivial : t -> bool

val on_yield : t -> tid:int -> yield:int -> decision
(** Consulted by the engine at each yield; draws jitter as a side effect. *)

val pp : Format.formatter -> t -> unit
