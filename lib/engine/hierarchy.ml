(* Cache hierarchy of the simulated multicore.

   Geometry follows the paper's testbed (AMD Opteron 6274): a private L1 per
   hardware thread, an L2 shared by each pair of threads, and one shared L3.
   Coherence is write-invalidate, driven by a directory that maps each block
   to the bitmask of threads that may hold it.  A store or RMW to a block
   held elsewhere invalidates the remote copies and pays an invalidation
   penalty — this is what makes hazard-pointer publication and warning-bit
   broadcasts expensive in the simulation, exactly the costs the paper
   reasons about in §2.4.

   The directory is not told about silent evictions, so it may conservatively
   over-invalidate; this only adds a small amount of cost noise. *)

type config = {
  l1_sets : int;
  l1_ways : int;
  l2_sets : int;
  l2_ways : int;
  l3_sets : int;
  l3_ways : int;
  threads_per_l2 : int;
}

(* 16 KiB L1 (4-way), 2 MiB L2 per pair (8-way), 12 MiB shared L3 (12-way),
   with 64-byte lines. *)
let opteron_6274_config =
  {
    l1_sets = 64;
    l1_ways = 4;
    l2_sets = 4096;
    l2_ways = 8;
    l3_sets = 16384;
    l3_ways = 12;
    threads_per_l2 = 2;
  }

(* A tiny hierarchy for unit tests where evictions must be easy to force. *)
let tiny_config =
  {
    l1_sets = 2;
    l1_ways = 2;
    l2_sets = 4;
    l2_ways = 2;
    l3_sets = 8;
    l3_ways = 2;
    threads_per_l2 = 2;
  }

type kind = Load | Store | Rmw

type t = {
  cfg : config;
  cost : Cost_model.t;
  nthreads : int;
  l1 : Cache.t array;  (* per thread *)
  l2 : Cache.t array;  (* per group of [threads_per_l2] threads *)
  l3 : Cache.t;
  directory : (int, int) Hashtbl.t;  (* block -> sharer bitmask *)
  mutable remote_invalidations : int;
}

let create ?(cfg = opteron_6274_config) ~cost ~nthreads () =
  if nthreads <= 0 || nthreads > 62 then
    invalid_arg "Hierarchy.create: nthreads must be in [1, 62]";
  let n_l2 = (nthreads + cfg.threads_per_l2 - 1) / cfg.threads_per_l2 in
  {
    cfg;
    cost;
    nthreads;
    l1 =
      Array.init nthreads (fun i ->
          Cache.create ~name:(Printf.sprintf "L1.%d" i) ~sets:cfg.l1_sets
            ~ways:cfg.l1_ways);
    l2 =
      Array.init n_l2 (fun i ->
          Cache.create ~name:(Printf.sprintf "L2.%d" i) ~sets:cfg.l2_sets
            ~ways:cfg.l2_ways);
    l3 = Cache.create ~name:"L3" ~sets:cfg.l3_sets ~ways:cfg.l3_ways;
    directory = Hashtbl.create 4096;
    remote_invalidations = 0;
  }

let l2_bank t tid = tid / t.cfg.threads_per_l2

let sharers t block =
  match Hashtbl.find_opt t.directory block with Some m -> m | None -> 0

(* Invalidate every remote copy of [block]; returns true if any remote
   thread actually shared it (to charge the invalidation broadcast). *)
let invalidate_remote t ~tid block =
  let mask = sharers t block in
  let others = mask land lnot (1 lsl tid) in
  if others = 0 then false
  else begin
    let my_bank = l2_bank t tid in
    for tid' = 0 to t.nthreads - 1 do
      if others land (1 lsl tid') <> 0 then begin
        Cache.invalidate t.l1.(tid') block;
        let bank = l2_bank t tid' in
        if bank <> my_bank then Cache.invalidate t.l2.(bank) block
      end
    done;
    t.remote_invalidations <- t.remote_invalidations + 1;
    true
  end

(* Charge one access and update cache state; returns the cycle cost. *)
let access t ~tid ~kind block =
  let c = t.cost in
  let hit_cost =
    if Cache.access t.l1.(tid) block then c.l1_hit
    else if Cache.access t.l2.(l2_bank t tid) block then c.l2_hit
    else if Cache.access t.l3 block then c.l3_hit
    else c.dram
  in
  let coherence_cost =
    match kind with
    | Load ->
        Hashtbl.replace t.directory block (sharers t block lor (1 lsl tid));
        0
    | Store | Rmw ->
        let remote = invalidate_remote t ~tid block in
        Hashtbl.replace t.directory block (1 lsl tid);
        if remote then c.invalidation else 0
  in
  let rmw_cost = match kind with Rmw -> c.rmw_extra | Load | Store -> 0 in
  hit_cost + coherence_cost + rmw_cost

(* Cheap accessor for hot-path delta checks (profiler attribution); [stats]
   allocates a full record per call. *)
let remote_invalidations (t : t) = t.remote_invalidations

type stats = {
  l1 : Cache.stats;
  l2 : Cache.stats;
  l3 : Cache.stats;
  remote_invalidations : int;
}

let sum_stats (caches : Cache.t array) : Cache.stats =
  Array.fold_left
    (fun (acc : Cache.stats) cache ->
      let (s : Cache.stats) = Cache.stats cache in
      Cache.
        {
          hits = acc.hits + s.hits;
          misses = acc.misses + s.misses;
          invalidations = acc.invalidations + s.invalidations;
        })
    Cache.{ hits = 0; misses = 0; invalidations = 0 }
    caches

let stats (t : t) =
  {
    l1 = sum_stats t.l1;
    l2 = sum_stats t.l2;
    l3 = Cache.stats t.l3;
    remote_invalidations = t.remote_invalidations;
  }

let reset_stats (t : t) =
  Array.iter Cache.reset_stats t.l1;
  Array.iter Cache.reset_stats t.l2;
  Cache.reset_stats t.l3;
  t.remote_invalidations <- 0

let clear (t : t) =
  Array.iter Cache.clear t.l1;
  Array.iter Cache.clear t.l2;
  Cache.clear t.l3;
  Hashtbl.reset t.directory

let pp_stats ppf s =
  Fmt.pf ppf "L1[%a] L2[%a] L3[%a] remote-inval=%d" Cache.pp_stats s.l1
    Cache.pp_stats s.l2 Cache.pp_stats s.l3 s.remote_invalidations
