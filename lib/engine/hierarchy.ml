(* Cache hierarchy of the simulated multicore.

   Geometry follows the paper's testbed (AMD Opteron 6274): a private L1 per
   hardware thread, an L2 shared by each pair of threads, and one shared L3.
   Coherence is write-invalidate, driven by a directory that maps each block
   to the bitmask of threads that may hold it.  A store or RMW to a block
   held elsewhere invalidates the remote copies and pays an invalidation
   penalty — this is what makes hazard-pointer publication and warning-bit
   broadcasts expensive in the simulation, exactly the costs the paper
   reasons about in §2.4.

   The directory is not told about silent evictions, so it may conservatively
   over-invalidate; this only adds a small amount of cost noise.

   The directory is an open-addressing int->int table (linear probing,
   multiplicative hashing) rather than a [Hashtbl]: block numbers span both
   the dense frame-pool region and the sparse metadata region near 2^50,
   and this runs on every simulated access, where the generic hash call,
   bucket-list allocation and option boxing of [Hashtbl] dominated the
   simulator's host-side profile.  Key and sharer mask are interleaved in a
   single flat array (block at [2i], mask at [2i + 1]) so one probe touches
   one host cacheline — the table grows to millions of entries on
   no-reclaim workloads, where a second parallel array would double the
   host-side DRAM misses.  Absent key = empty sharer mask, exactly like the
   hashtable it replaced; entries are never deleted (masks only get
   rewritten), so probing needs no tombstones. *)

type config = {
  l1_sets : int;
  l1_ways : int;
  l2_sets : int;
  l2_ways : int;
  l3_sets : int;
  l3_ways : int;
  threads_per_l2 : int;
}

(* 16 KiB L1 (4-way), 2 MiB L2 per pair (8-way), 12 MiB shared L3 (12-way),
   with 64-byte lines. *)
let opteron_6274_config =
  {
    l1_sets = 64;
    l1_ways = 4;
    l2_sets = 4096;
    l2_ways = 8;
    l3_sets = 16384;
    l3_ways = 12;
    threads_per_l2 = 2;
  }

(* A tiny hierarchy for unit tests where evictions must be easy to force. *)
let tiny_config =
  {
    l1_sets = 2;
    l1_ways = 2;
    l2_sets = 4;
    l2_ways = 2;
    l3_sets = 8;
    l3_ways = 2;
    threads_per_l2 = 2;
  }

type kind = Load | Store | Rmw

type t = {
  cfg : config;
  cost : Cost_model.t;
  nthreads : int;
  l1 : Cache.t array;  (* per thread *)
  l2 : Cache.t array;  (* per group of [threads_per_l2] threads *)
  l3 : Cache.t;
  mutable dir : int array;
      (* interleaved slots: block number at [2i] ([dir_empty] = free),
         sharer bitmask at [2i + 1] *)
  mutable dir_count : int;  (* occupied slots; grow at 50% load *)
  mutable remote_invalidations : int;
}

(* No block number can be [min_int]: addresses are non-negative and the
   arithmetic shift in [Geometry.block_of_addr] preserves sign. *)
let dir_empty = min_int

(* Multiplicative (Fibonacci) hashing: one multiply spreads both the dense
   low blocks and the 2^50-region metadata blocks across the table.  The
   table size is a power of two, so the high bits must feed the index. *)
let[@inline] dir_hash block mask =
  (block * 0x2545_F491_4F6C_DD1D) lsr 20 land mask

let create ?(cfg = opteron_6274_config) ~cost ~nthreads () =
  if nthreads <= 0 || nthreads > 62 then
    invalid_arg "Hierarchy.create: nthreads must be in [1, 62]";
  let n_l2 = (nthreads + cfg.threads_per_l2 - 1) / cfg.threads_per_l2 in
  {
    cfg;
    cost;
    nthreads;
    l1 =
      Array.init nthreads (fun i ->
          Cache.create ~name:(Printf.sprintf "L1.%d" i) ~sets:cfg.l1_sets
            ~ways:cfg.l1_ways);
    l2 =
      Array.init n_l2 (fun i ->
          Cache.create ~name:(Printf.sprintf "L2.%d" i) ~sets:cfg.l2_sets
            ~ways:cfg.l2_ways);
    l3 = Cache.create ~name:"L3" ~sets:cfg.l3_sets ~ways:cfg.l3_ways;
    dir = Array.make (2 * 8192) dir_empty;
    dir_count = 0;
    remote_invalidations = 0;
  }

let l2_bank t tid = tid / t.cfg.threads_per_l2

(* Slot holding [block], or the free slot where it belongs.  The table is
   kept at most half full, so an empty slot is always reachable.  [m] is the
   slot-index mask (half the array length minus one).  Top-level probe loop
   (not a local closure): this runs on every simulated access and must not
   allocate. *)
let rec dir_probe dir block m i =
  let k = Array.unsafe_get dir (2 * i) in
  if k = block || k = dir_empty then i
  else dir_probe dir block m ((i + 1) land m)

let[@inline] dir_slot dir block =
  let m = (Array.length dir / 2) - 1 in
  dir_probe dir block m (dir_hash block m)

let[@inline] sharers t block =
  let dir = t.dir in
  let i = dir_slot dir block in
  if Array.unsafe_get dir (2 * i) = block then Array.unsafe_get dir ((2 * i) + 1)
  else 0

let dir_grow t =
  let old = t.dir in
  let n = 2 * Array.length old in
  let dir = Array.make n dir_empty in
  t.dir <- dir;
  for i = 0 to (Array.length old / 2) - 1 do
    let k = Array.unsafe_get old (2 * i) in
    if k <> dir_empty then begin
      let j = dir_slot dir k in
      dir.(2 * j) <- k;
      dir.((2 * j) + 1) <- old.((2 * i) + 1)
    end
  done

(* Write the mask of an already-probed slot [i] (the slot [block] hashes
   to, found by the caller's single probe): overwrite in place if the block
   is resident, otherwise install it and grow at 50% load.  Nothing between
   the caller's probe and this call may touch the directory. *)
let[@inline] dir_put t i block mask =
  let dir = t.dir in
  if Array.unsafe_get dir (2 * i) = block then
    Array.unsafe_set dir ((2 * i) + 1) mask
  else begin
    Array.unsafe_set dir (2 * i) block;
    Array.unsafe_set dir ((2 * i) + 1) mask;
    t.dir_count <- t.dir_count + 1;
    if 4 * t.dir_count > Array.length dir then dir_grow t
  end

(* Invalidate every remote copy of [block] named by the non-empty sharer
   mask [others] (the invalidation broadcast has already been decided). *)
let invalidate_others t ~tid others block =
  let my_bank = l2_bank t tid in
  for tid' = 0 to t.nthreads - 1 do
    if others land (1 lsl tid') <> 0 then begin
      Cache.invalidate t.l1.(tid') block;
      let bank = l2_bank t tid' in
      if bank <> my_bank then Cache.invalidate t.l2.(bank) block
    end
  done;
  t.remote_invalidations <- t.remote_invalidations + 1

(* Charge one access and update cache state; returns the cycle cost. *)
let access t ~tid ~kind block =
  let c = t.cost in
  let hit_cost =
    if Cache.access t.l1.(tid) block then c.l1_hit
    else if Cache.access t.l2.(l2_bank t tid) block then c.l2_hit
    else if Cache.access t.l3 block then c.l3_hit
    else c.dram
  in
  let coherence_cost =
    (* one directory probe serves both the sharer read and the mask update
       ([invalidate_others] only touches the caches, so slot [i] stays
       valid across it) *)
    let bit = 1 lsl tid in
    let dir = t.dir in
    let i = dir_slot dir block in
    let mask =
      if Array.unsafe_get dir (2 * i) = block then
        Array.unsafe_get dir ((2 * i) + 1)
      else 0
    in
    match kind with
    | Load ->
        if mask land bit = 0 then dir_put t i block (mask lor bit);
        0
    | Store | Rmw ->
        if mask land lnot bit = 0 then begin
          if mask <> bit then dir_put t i block bit;
          0
        end
        else begin
          invalidate_others t ~tid (mask land lnot bit) block;
          dir_put t i block bit;
          c.invalidation
        end
  in
  let rmw_cost = match kind with Rmw -> c.rmw_extra | Load | Store -> 0 in
  hit_cost + coherence_cost + rmw_cost

(* Cheap accessor for hot-path delta checks (profiler attribution); [stats]
   allocates a full record per call. *)
let remote_invalidations (t : t) = t.remote_invalidations

type stats = {
  l1 : Cache.stats;
  l2 : Cache.stats;
  l3 : Cache.stats;
  remote_invalidations : int;
}

let sum_stats (caches : Cache.t array) : Cache.stats =
  Array.fold_left
    (fun (acc : Cache.stats) cache ->
      let (s : Cache.stats) = Cache.stats cache in
      Cache.
        {
          hits = acc.hits + s.hits;
          misses = acc.misses + s.misses;
          invalidations = acc.invalidations + s.invalidations;
        })
    Cache.{ hits = 0; misses = 0; invalidations = 0 }
    caches

let stats (t : t) =
  {
    l1 = sum_stats t.l1;
    l2 = sum_stats t.l2;
    l3 = Cache.stats t.l3;
    remote_invalidations = t.remote_invalidations;
  }

let reset_stats (t : t) =
  Array.iter Cache.reset_stats t.l1;
  Array.iter Cache.reset_stats t.l2;
  Cache.reset_stats t.l3;
  t.remote_invalidations <- 0

let clear (t : t) =
  Array.iter Cache.clear t.l1;
  Array.iter Cache.clear t.l2;
  Cache.clear t.l3;
  Array.fill t.dir 0 (Array.length t.dir) dir_empty;
  t.dir_count <- 0

let pp_stats ppf s =
  Fmt.pf ppf "L1[%a] L2[%a] L3[%a] remote-inval=%d" Cache.pp_stats s.l1
    Cache.pp_stats s.l2 Cache.pp_stats s.l3 s.remote_invalidations
