(* Cache hierarchy of the simulated multicore.

   Geometry follows the paper's testbed (AMD Opteron 6274): a private L1 per
   hardware thread, an L2 shared by each pair of threads, and one shared L3.
   Coherence is write-invalidate, driven by a directory that maps each block
   to the bitmask of threads that may hold it.  A store or RMW to a block
   held elsewhere invalidates the remote copies and pays an invalidation
   penalty — this is what makes hazard-pointer publication and warning-bit
   broadcasts expensive in the simulation, exactly the costs the paper
   reasons about in §2.4.

   The directory is not told about silent evictions, so it may conservatively
   over-invalidate; this only adds a small amount of cost noise.

   The directory is an open-addressing int->int table (linear probing over
   two flat arrays, multiplicative hashing) rather than a [Hashtbl]: block
   numbers span both the dense frame-pool region and the sparse metadata
   region near 2^50, and this runs on every simulated access, where the
   generic hash call, bucket-list allocation and option boxing of [Hashtbl]
   dominated the simulator's host-side profile.  Absent key = empty sharer
   mask, exactly like the hashtable it replaced; entries are never deleted
   (masks only get rewritten), so probing needs no tombstones. *)

type config = {
  l1_sets : int;
  l1_ways : int;
  l2_sets : int;
  l2_ways : int;
  l3_sets : int;
  l3_ways : int;
  threads_per_l2 : int;
}

(* 16 KiB L1 (4-way), 2 MiB L2 per pair (8-way), 12 MiB shared L3 (12-way),
   with 64-byte lines. *)
let opteron_6274_config =
  {
    l1_sets = 64;
    l1_ways = 4;
    l2_sets = 4096;
    l2_ways = 8;
    l3_sets = 16384;
    l3_ways = 12;
    threads_per_l2 = 2;
  }

(* A tiny hierarchy for unit tests where evictions must be easy to force. *)
let tiny_config =
  {
    l1_sets = 2;
    l1_ways = 2;
    l2_sets = 4;
    l2_ways = 2;
    l3_sets = 8;
    l3_ways = 2;
    threads_per_l2 = 2;
  }

type kind = Load | Store | Rmw

type t = {
  cfg : config;
  cost : Cost_model.t;
  nthreads : int;
  l1 : Cache.t array;  (* per thread *)
  l2 : Cache.t array;  (* per group of [threads_per_l2] threads *)
  l3 : Cache.t;
  mutable dir_keys : int array;  (* block numbers; [dir_empty] = free slot *)
  mutable dir_vals : int array;  (* sharer bitmasks, parallel to [dir_keys] *)
  mutable dir_count : int;  (* occupied slots; grow at 50% load *)
  mutable remote_invalidations : int;
}

(* No block number can be [min_int]: addresses are non-negative and the
   arithmetic shift in [Geometry.block_of_addr] preserves sign. *)
let dir_empty = min_int

(* Multiplicative (Fibonacci) hashing: one multiply spreads both the dense
   low blocks and the 2^50-region metadata blocks across the table.  The
   table size is a power of two, so the high bits must feed the index. *)
let[@inline] dir_hash block mask =
  (block * 0x2545_F491_4F6C_DD1D) lsr 20 land mask

let create ?(cfg = opteron_6274_config) ~cost ~nthreads () =
  if nthreads <= 0 || nthreads > 62 then
    invalid_arg "Hierarchy.create: nthreads must be in [1, 62]";
  let n_l2 = (nthreads + cfg.threads_per_l2 - 1) / cfg.threads_per_l2 in
  {
    cfg;
    cost;
    nthreads;
    l1 =
      Array.init nthreads (fun i ->
          Cache.create ~name:(Printf.sprintf "L1.%d" i) ~sets:cfg.l1_sets
            ~ways:cfg.l1_ways);
    l2 =
      Array.init n_l2 (fun i ->
          Cache.create ~name:(Printf.sprintf "L2.%d" i) ~sets:cfg.l2_sets
            ~ways:cfg.l2_ways);
    l3 = Cache.create ~name:"L3" ~sets:cfg.l3_sets ~ways:cfg.l3_ways;
    dir_keys = Array.make 8192 dir_empty;
    dir_vals = Array.make 8192 0;
    dir_count = 0;
    remote_invalidations = 0;
  }

let l2_bank t tid = tid / t.cfg.threads_per_l2

(* Slot holding [block], or the free slot where it belongs.  The table is
   kept at most half full, so an empty slot is always reachable.  Top-level
   probe loop (not a local closure): this runs on every simulated access and
   must not allocate. *)
let rec dir_probe keys block m i =
  let k = Array.unsafe_get keys i in
  if k = block || k = dir_empty then i
  else dir_probe keys block m ((i + 1) land m)

let[@inline] dir_slot keys block =
  let m = Array.length keys - 1 in
  dir_probe keys block m (dir_hash block m)

let[@inline] sharers t block =
  let keys = t.dir_keys in
  let i = dir_slot keys block in
  if Array.unsafe_get keys i = block then Array.unsafe_get t.dir_vals i else 0

let dir_grow t =
  let old_keys = t.dir_keys and old_vals = t.dir_vals in
  let n = 2 * Array.length old_keys in
  t.dir_keys <- Array.make n dir_empty;
  t.dir_vals <- Array.make n 0;
  Array.iteri
    (fun i k ->
      if k <> dir_empty then begin
        let j = dir_slot t.dir_keys k in
        t.dir_keys.(j) <- k;
        t.dir_vals.(j) <- old_vals.(i)
      end)
    old_keys

let[@inline] dir_set t block mask =
  let keys = t.dir_keys in
  let i = dir_slot keys block in
  if Array.unsafe_get keys i = block then Array.unsafe_set t.dir_vals i mask
  else begin
    Array.unsafe_set keys i block;
    Array.unsafe_set t.dir_vals i mask;
    t.dir_count <- t.dir_count + 1;
    if 2 * t.dir_count > Array.length keys then dir_grow t
  end

(* Invalidate every remote copy of [block] named by the non-empty sharer
   mask [others] (the invalidation broadcast has already been decided). *)
let invalidate_others t ~tid others block =
  let my_bank = l2_bank t tid in
  for tid' = 0 to t.nthreads - 1 do
    if others land (1 lsl tid') <> 0 then begin
      Cache.invalidate t.l1.(tid') block;
      let bank = l2_bank t tid' in
      if bank <> my_bank then Cache.invalidate t.l2.(bank) block
    end
  done;
  t.remote_invalidations <- t.remote_invalidations + 1

(* Charge one access and update cache state; returns the cycle cost. *)
let access t ~tid ~kind block =
  let c = t.cost in
  let hit_cost =
    if Cache.access t.l1.(tid) block then c.l1_hit
    else if Cache.access t.l2.(l2_bank t tid) block then c.l2_hit
    else if Cache.access t.l3 block then c.l3_hit
    else c.dram
  in
  let coherence_cost =
    let bit = 1 lsl tid in
    let mask = sharers t block in
    match kind with
    | Load ->
        if mask land bit = 0 then dir_set t block (mask lor bit);
        0
    | Store | Rmw ->
        if mask land lnot bit = 0 then begin
          if mask <> bit then dir_set t block bit;
          0
        end
        else begin
          invalidate_others t ~tid (mask land lnot bit) block;
          dir_set t block bit;
          c.invalidation
        end
  in
  let rmw_cost = match kind with Rmw -> c.rmw_extra | Load | Store -> 0 in
  hit_cost + coherence_cost + rmw_cost

(* Cheap accessor for hot-path delta checks (profiler attribution); [stats]
   allocates a full record per call. *)
let remote_invalidations (t : t) = t.remote_invalidations

type stats = {
  l1 : Cache.stats;
  l2 : Cache.stats;
  l3 : Cache.stats;
  remote_invalidations : int;
}

let sum_stats (caches : Cache.t array) : Cache.stats =
  Array.fold_left
    (fun (acc : Cache.stats) cache ->
      let (s : Cache.stats) = Cache.stats cache in
      Cache.
        {
          hits = acc.hits + s.hits;
          misses = acc.misses + s.misses;
          invalidations = acc.invalidations + s.invalidations;
        })
    Cache.{ hits = 0; misses = 0; invalidations = 0 }
    caches

let stats (t : t) =
  {
    l1 = sum_stats t.l1;
    l2 = sum_stats t.l2;
    l3 = Cache.stats t.l3;
    remote_invalidations = t.remote_invalidations;
  }

let reset_stats (t : t) =
  Array.iter Cache.reset_stats t.l1;
  Array.iter Cache.reset_stats t.l2;
  Cache.reset_stats t.l3;
  t.remote_invalidations <- 0

let clear (t : t) =
  Array.iter Cache.clear t.l1;
  Array.iter Cache.clear t.l2;
  Cache.clear t.l3;
  Array.fill t.dir_keys 0 (Array.length t.dir_keys) dir_empty;
  Array.fill t.dir_vals 0 (Array.length t.dir_vals) 0;
  t.dir_count <- 0

let pp_stats ppf s =
  Fmt.pf ppf "L1[%a] L2[%a] L3[%a] remote-inval=%d" Cache.pp_stats s.l1
    Cache.pp_stats s.l2 Cache.pp_stats s.l3 s.remote_invalidations
