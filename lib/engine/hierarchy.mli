(** Cache hierarchy of the simulated multicore: private L1 per thread, L2 per
    pair of threads, one shared L3, directory-based write-invalidate
    coherence.  Returns a cycle cost per access. *)

type config = {
  l1_sets : int;
  l1_ways : int;
  l2_sets : int;
  l2_ways : int;
  l3_sets : int;
  l3_ways : int;
  threads_per_l2 : int;
}

val opteron_6274_config : config
(** Geometry of the paper's testbed (16 KiB L1, 2 MiB L2/pair, 12 MiB L3). *)

val tiny_config : config
(** Minimal hierarchy for unit tests (easy to force evictions). *)

type kind = Load | Store | Rmw

type t

val create : ?cfg:config -> cost:Cost_model.t -> nthreads:int -> unit -> t
(** [nthreads] must be in [\[1, 62\]] (sharer masks are int bitsets). *)

val access : t -> tid:int -> kind:kind -> int -> int
(** [access t ~tid ~kind block] simulates one access by thread [tid] to the
    given line-sized block and returns its cycle cost, including any
    coherence invalidation broadcast. *)

val sharers : t -> int -> int
(** Directory sharer bitmask of a block (test hook). *)

val remote_invalidations : t -> int
(** Running invalidation-broadcast count, without allocating a {!stats}
    record — cheap enough for per-access delta checks. *)

type stats = {
  l1 : Cache.stats;
  l2 : Cache.stats;
  l3 : Cache.stats;
  remote_invalidations : int;
}

val stats : t -> stats
val reset_stats : t -> unit
val clear : t -> unit
val pp_stats : Format.formatter -> stats -> unit
