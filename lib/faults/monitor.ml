(* Garbage-growth monitor: a dedicated simulated thread that samples the
   reclamation scheme's retired-but-unreclaimed node count (and the live
   frame count) at a fixed simulated-time interval.  Under [Min_clock] the
   monitor interleaves with the workload in simulated-time order, so the
   samples are a faithful time series of how much garbage a stalled or
   crashed thread pins — bounded for HP and the optimistic-access schemes,
   unbounded for EBR. *)

open Oamem_engine
open Oamem_vmem
open Oamem_reclaim
open Oamem_core

type sample = {
  at_cycles : int;
  unreclaimed : int;  (** retired - freed nodes at this instant *)
  limbo_bytes : int;  (** unreclaimed scaled to simulated bytes *)
  frames_live : int;
}

type t = {
  node_words : int;
  mutable rev_samples : sample list;
}

let create ?(node_words = 2) () = { node_words; rev_samples = [] }

(* The monitor occupies thread slot [tid]; the workload must not use it.
   Sampling itself is uncosted (an observer, not a participant): the thread
   only charges [interval] cycles per sample, plus the pause that yields. *)
let spawn t sys ~tid ~horizon ~interval =
  if interval <= 0 then invalid_arg "Monitor.spawn: interval must be positive";
  let frames = Vmem.frames (System.vmem sys) in
  let stats = (System.scheme sys).Scheme.stats in
  System.spawn sys ~tid (fun ctx ->
      while Engine.Mem.now ctx < horizon do
        let unreclaimed = Scheme.unreclaimed stats in
        t.rev_samples <-
          {
            at_cycles = Engine.Mem.now ctx;
            unreclaimed;
            limbo_bytes = unreclaimed * t.node_words * 8;
            frames_live = Frames.live frames;
          }
          :: t.rev_samples;
        Engine.Mem.charge ctx interval;
        Engine.Mem.pause ctx
      done)

let samples t = List.rev t.rev_samples

let to_csv t path =
  Oamem_obs.Export.write_csv path
    ~header:[ "at_cycles"; "unreclaimed"; "limbo_bytes"; "frames_live" ]
    (List.map
       (fun s ->
         [
           string_of_int s.at_cycles;
           string_of_int s.unreclaimed;
           string_of_int s.limbo_bytes;
           string_of_int s.frames_live;
         ])
       (samples t))

let max_unreclaimed t =
  List.fold_left (fun m s -> max m s.unreclaimed) 0 t.rev_samples

let final_unreclaimed t =
  match t.rev_samples with [] -> 0 | s :: _ -> s.unreclaimed
