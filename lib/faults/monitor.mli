(** Garbage-growth monitor: a dedicated simulated thread sampling the
    scheme's retired-but-unreclaimed node count over simulated time. *)

open Oamem_core

type sample = {
  at_cycles : int;
  unreclaimed : int;  (** retired - freed nodes at this instant *)
  limbo_bytes : int;  (** unreclaimed scaled to simulated bytes *)
  frames_live : int;
}

type t

val create : ?node_words:int -> unit -> t
(** [node_words] (default 2) scales node counts to [limbo_bytes]. *)

val spawn : t -> System.t -> tid:int -> horizon:int -> interval:int -> unit
(** Occupy thread slot [tid] with a sampler that records one {!sample}
    every [interval] simulated cycles until [horizon].  The slot must not
    be used by the workload.  Call before {!System.run}. *)

val samples : t -> sample list
(** In simulated-time order. *)

val to_csv : t -> string -> unit
(** Write the samples as a CSV time series
    ([at_cycles,unreclaimed,limbo_bytes,frames_live]). *)

val max_unreclaimed : t -> int
val final_unreclaimed : t -> int
