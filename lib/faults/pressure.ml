(* Frame-pool exhaustion scenario: a single thread churns through several
   rounds of persistent allocation under a tight live-frame quota, each
   round in a different size class so each needs a fresh superblock, and
   touching every block so the pages actually fault in.

   Earlier rounds' blocks sit freed-but-cached in the thread cache, and
   their superblocks' frames are therefore still resident — exactly the
   hoarded memory the allocator's pressure-recovery path can give back.
   With a releasing remap strategy ([Madvise] / [Shared_map]) the run hits
   the quota, recovers (flush cache, release empty persistent superblocks)
   and completes; with [Keep_resident] nothing can be released, recovery
   makes no progress, and the run ends in a typed [Out_of_memory] instead
   of an abort.

   Default arithmetic (page = 512 words, [sb_pages] = 4 so a superblock is
   2048 words, [blocks] = 256 = one fill batch): rounds use classes 2, 4
   and 8 words, whose fills + touches fault 4 frames each; on top of the
   zero frame and the shared-region frame, the third round crosses a quota
   of 11 while two released-but-cached superblocks (8 frames) are
   reclaimable.  Deterministic: one thread, [Min_clock]. *)

open Oamem_engine
open Oamem_vmem
open Oamem_lrmalloc

type result = {
  rounds_completed : int;
  oom : bool;  (** the run ended in [Lrmalloc.Out_of_memory] *)
  recoveries : int;
  failures : int;
  frames_live : int;
  frames_peak : int;
  sb_remapped : int;  (** persistent superblocks whose frames were released *)
}

let round_sizes = [| 2; 4; 8 |]

let run ?(remap = Config.Madvise) ?(quota = 11) ?(sb_pages = 4) ?(rounds = 3)
    ?(blocks = 256) () =
  if rounds < 1 || rounds > Array.length round_sizes then
    invalid_arg "Pressure.run: rounds out of range";
  let geom = Geometry.default in
  let vmem = Vmem.create ~max_pages:(1 lsl 16) ~frame_quota:quota geom in
  let meta = Cell.heap geom in
  let cfg = { Config.default with Config.sb_pages; remap } in
  let engine = Engine.create ~geom ~nthreads:1 () in
  let alloc = Lrmalloc.create ~cfg ~vmem ~meta ~nthreads:1 () in
  let completed = ref 0 in
  let oom = ref false in
  Engine.spawn engine ~tid:0 (fun ctx ->
      try
        for round = 0 to rounds - 1 do
          let size = round_sizes.(round) in
          let addrs =
            List.init blocks (fun _ -> Lrmalloc.palloc alloc ctx size)
          in
          (* Touching a fresh block faults its page in, so the touch needs
             the same recovery net the allocator uses internally. *)
          List.iter
            (fun addr ->
              Lrmalloc.with_pressure_recovery alloc ctx (fun () ->
                  Vmem.store vmem ctx addr (addr lxor 0x5a5a)))
            addrs;
          List.iter (Lrmalloc.free alloc ctx) addrs;
          incr completed
        done
      with Lrmalloc.Out_of_memory -> oom := true);
  Engine.run engine;
  let hs = Lrmalloc.stats alloc in
  let frames = Vmem.frames vmem in
  {
    rounds_completed = !completed;
    oom = !oom;
    recoveries = hs.Heap.pressure_recoveries;
    failures = hs.Heap.pressure_failures;
    frames_live = Frames.live frames;
    frames_peak = Frames.peak frames;
    sb_remapped = hs.Heap.sb_remapped;
  }

let pp ppf r =
  Fmt.pf ppf
    "rounds=%d/%s oom=%b recoveries=%d failures=%d frames=%d peak=%d \
     remapped=%d"
    r.rounds_completed
    (if r.oom then "oom" else "ok")
    r.oom r.recoveries r.failures r.frames_live r.frames_peak r.sb_remapped
