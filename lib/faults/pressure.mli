(** Frame-pool exhaustion scenario: persistent-allocation churn under a
    tight live-frame quota.  With a releasing remap strategy the run hits
    the quota, recovers (cache flush + superblock release) and completes;
    with [Keep_resident] recovery cannot free anything and the run ends in
    a typed [Lrmalloc.Out_of_memory] instead of an abort. *)

open Oamem_lrmalloc

type result = {
  rounds_completed : int;
  oom : bool;  (** the run ended in [Lrmalloc.Out_of_memory] *)
  recoveries : int;  (** successful pressure recoveries *)
  failures : int;  (** recoveries that could not free enough *)
  frames_live : int;
  frames_peak : int;
  sb_remapped : int;  (** persistent superblocks whose frames were released *)
}

val run :
  ?remap:Config.remap_strategy ->
  ?quota:int ->
  ?sb_pages:int ->
  ?rounds:int ->
  ?blocks:int ->
  unit ->
  result
(** Deterministic (one thread, [Min_clock]).  Defaults are sized so the
    third round crosses the quota with two cached superblocks
    reclaimable; see the implementation for the arithmetic. *)

val pp : Format.formatter -> result -> unit
