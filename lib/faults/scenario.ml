(* Canned fault plans for the robustness experiments and tests.  These are
   thin wrappers over {!Fault_plan.make}; their value is naming the three
   scenarios the paper's robustness story needs: a thread that stalls
   mid-operation (the EBR killer), a thread that fail-stops, and background
   scheduling noise. *)

open Oamem_engine

let stall_one ~tid ~at_yield ~cycles =
  Fault_plan.make [ Fault_plan.Stall { tid; at_yield; cycles } ]

let crash_one ~tid ~at_yield =
  Fault_plan.make [ Fault_plan.Crash { tid; at_yield } ]

let jittery ~seed ~max_cycles =
  Fault_plan.make [ Fault_plan.Jitter { seed; max_cycles } ]
