(** Canned fault plans for the robustness experiments and tests. *)

open Oamem_engine

val stall_one : tid:int -> at_yield:int -> cycles:int -> Fault_plan.t
(** One thread stalls for [cycles] simulated cycles at its [at_yield]-th
    yield — with high probability mid-operation, which is what pins an EBR
    epoch. *)

val crash_one : tid:int -> at_yield:int -> Fault_plan.t
(** One thread fail-stops at its [at_yield]-th yield and never runs again. *)

val jittery : seed:int -> max_cycles:int -> Fault_plan.t
(** Every yield of every thread is delayed by a seeded-PRNG amount in
    [0, max_cycles) — deterministic scheduling noise. *)
