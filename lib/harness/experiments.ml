(* The experiment registry: one entry per table/figure of the paper's
   evaluation (§5) plus the mechanism experiments (§3.2) and our ablations.
   Every experiment returns its data as a Report.doc — tables, ASCII charts
   of the throughput figures, the paper's expected shape stated next to the
   measured one, and CSV/JSON artifacts for external plotting.  Nothing is
   printed here: the driver renders the doc, which is what lets a sweep run
   experiments on worker domains and merge output deterministically.

   Independent cells *inside* an experiment (the scheme x threads grid of a
   throughput figure, the fault-matrix legs) are themselves sharded across
   [cfg.jobs] domains via Pool — each cell builds its own seeded System, so
   results are identical at any job count and are reassembled in canonical
   cell order. *)

open Oamem_engine
open Oamem_vmem
open Oamem_lrmalloc
open Oamem_reclaim
open Oamem_core
open Oamem_lockfree
(* the allocator's Config is shadowed by the experiment Config builder *)
module Aconfig = Oamem_lrmalloc.Config
module Metrics = Oamem_obs.Metrics
module Export = Oamem_obs.Export
module Json = Oamem_obs.Json

type config = {
  threads : int list;
  horizon_cycles : int;
  fig4_size : int;  (** paper uses 5K list nodes; scaled for runtime *)
  fig6_size : int;  (** paper uses 1M; scaled by default for CI time *)
  schemes : string list;
  seed : int;
  csv_dir : string option;
  trace_out : string option;
  metrics_out : string option;
  sanitize : bool;
  jobs : int;
}

module Config = struct
  type t = config

  let make ?(threads = [ 1; 2; 4; 8; 16; 32 ]) ?(horizon_cycles = 400_000)
      ?(fig4_size = 1_000) ?(fig6_size = 100_000)
      ?(schemes = Registry.paper_methods) ?(seed = 7) ?csv_dir ?trace_out
      ?metrics_out ?(sanitize = false) ?(jobs = 1) () =
    {
      threads;
      horizon_cycles;
      fig4_size;
      fig6_size;
      schemes;
      seed;
      csv_dir;
      trace_out;
      metrics_out;
      sanitize;
      jobs;
    }
end

let default_config = Config.make ()

(* A faster preset for smoke runs. *)
let quick_config =
  Config.make ~threads:[ 1; 4; 16 ] ~horizon_cycles:200_000 ~fig4_size:500
    ~fig6_size:20_000 ()

type t = {
  id : string;
  title : string;
  paper_ref : string;
  expected : string;
  run : config -> Report.doc;
}

(* Doc accumulator: experiments emit items in order and return the doc. *)
let doc_of build =
  let items = ref [] in
  let emit it = items := it :: !items in
  build emit;
  List.rev !items

(* --- throughput figures (Figs. 4, 5, 6) ------------------------------------- *)

let fmt_mops v = Printf.sprintf "%.3f" v

let throughput_figure ~id ~title ~paper_ref ~expected ~structure ~initial ~mix
    ?(threshold = 64) ?(horizon_mult = 1) ?(trials = 1) () =
  let run cfg =
    doc_of @@ fun emit ->
    emit (Report.section (Printf.sprintf "%s — %s" id title));
    emit (Report.textf "Paper: %s\nExpected shape: %s\n\n" paper_ref expected);
    let initial = initial cfg in
    (* the designated run for --trace/--metrics export: the last scheme at
       the highest thread count *)
    let max_threads = List.fold_left max 1 cfg.threads in
    let export_scheme =
      match List.rev cfg.schemes with s :: _ -> s | [] -> ""
    in
    (* one cell per (scheme, threads): independent seeded systems, sharded
       across cfg.jobs domains and reassembled in canonical order *)
    let cells =
      List.concat_map
        (fun scheme -> List.map (fun threads -> (scheme, threads)) cfg.threads)
        cfg.schemes
    in
    let run_cell (scheme, threads) =
      let traced =
        cfg.trace_out <> None && scheme = export_scheme
        && threads = max_threads
      in
      let summary =
        Runner.run_trials ~trials
          {
            Runner.default_spec with
            Runner.scheme;
            threads;
            structure;
            workload = Workload.make ~mix ~initial ();
            horizon_cycles = horizon_mult * cfg.horizon_cycles;
            threshold;
            seed = cfg.seed;
            trace = traced;
          }
      in
      (* report the median trial (lists are noisy at small scale) *)
      List.find
        (fun r -> r.Runner.throughput_mops = summary.Runner.median_mops)
        summary.Runner.trials
    in
    let cell_results = Pool.map_exn ~jobs:cfg.jobs run_cell cells in
    let nthreads = List.length cfg.threads in
    let results =
      List.mapi
        (fun si scheme ->
          ( scheme,
            List.filteri
              (fun i _ -> i / nthreads = si)
              cell_results ))
        cfg.schemes
    in
    let header = "threads" :: List.map string_of_int cfg.threads in
    let rows =
      List.map
        (fun (scheme, rs) ->
          scheme :: List.map (fun r -> fmt_mops r.Runner.throughput_mops) rs)
        results
    in
    emit (Report.table ~header rows);
    emit
      (Report.chart ~title:(Printf.sprintf "%s (%s)" id title)
         ~xlabel:"threads" ~ylabel:"Mops/s" ~xs:cfg.threads
         (List.map
            (fun (scheme, rs) ->
              (scheme, List.map (fun r -> r.Runner.throughput_mops) rs))
            results));
    (* reclamation diagnostics at the highest thread count *)
    emit
      (Report.textf "Diagnostics at %d threads:\n"
         (List.fold_left max 1 cfg.threads));
    emit
      (Report.table
         ~header:
           [ "scheme"; "restarts"; "warnings"; "piggyback"; "phases";
             "frames-peak" ]
         (List.map
            (fun (scheme, rs) ->
              let last = List.nth rs (List.length rs - 1) in
              let m = last.Runner.metrics in
              [
                scheme;
                string_of_int (Metrics.find m "scheme.restarts");
                string_of_int (Metrics.find m "scheme.warnings_fired");
                string_of_int (Metrics.find m "scheme.warnings_piggybacked");
                string_of_int (Metrics.find m "scheme.reclaim_phases");
                string_of_int (Metrics.find m "vmem.frames_peak");
              ])
            results));
    emit
      (Report.csv ~filename:(id ^ ".csv")
         ~header:("scheme" :: List.map string_of_int cfg.threads)
         rows);
    if cfg.trace_out <> None || cfg.metrics_out <> None then
      match List.assoc_opt export_scheme results with
      | None -> ()
      | Some rs ->
          let r = List.nth rs (List.length rs - 1) in
          (match cfg.trace_out with
          | Some path ->
              emit
                (Report.json_artifact ~in_dir:false ~filename:path
                   (Export.chrome_trace r.Runner.trace));
              emit
                (Report.textf "Chrome trace (%s, %d threads) -> %s\n"
                   export_scheme max_threads path)
          | None -> ());
          (match cfg.metrics_out with
          | Some path ->
              emit
                (Report.json_artifact ~in_dir:false ~filename:path
                   (Export.metrics_json r.Runner.metrics
                      ~extra:
                        [
                          ("experiment", Json.String id);
                          ("scheme", Json.String export_scheme);
                          ("threads", Json.Int max_threads);
                          ( "throughput_mops",
                            Json.Float r.Runner.throughput_mops );
                        ]));
              emit
                (Report.textf "Metrics JSON (%s, %d threads) -> %s\n"
                   export_scheme max_threads path)
          | None -> ())
  in
  { id; title; paper_ref; expected; run }

let fig4a =
  throughput_figure ~id:"fig4a"
    ~title:"linked list (paper: 5K nodes, scaled), 50%ins/50%del"
    ~paper_ref:"Figure 4a" ~structure:Runner.List_set
    ~initial:(fun cfg -> cfg.fig4_size)
    ~mix:Workload.update_only ~threshold:16 ~horizon_mult:8 ~trials:3
    ~expected:
      "OA-VER above OA-BIT (fewer warnings on long chains); OA-BIT/OA-VER \
       beat OA and NR at low thread counts; NR/OA recover at high counts"
    ()

let fig4b =
  throughput_figure ~id:"fig4b"
    ~title:"linked list (paper: 5K nodes, scaled), 50%srch/25/25"
    ~paper_ref:"Figure 4b" ~structure:Runner.List_set
    ~initial:(fun cfg -> cfg.fig4_size)
    ~mix:Workload.balanced ~threshold:16 ~horizon_mult:8 ~trials:3
    ~expected:"same ordering as 4a with a smaller OA-VER/OA-BIT gap" ()

let fig5a =
  throughput_figure ~id:"fig5a" ~title:"hash table, 10K nodes, 50%ins/50%del"
    ~paper_ref:"Figure 5a" ~structure:Runner.Hash_set
    ~initial:(fun _ -> 10_000)
    ~mix:Workload.update_only ~horizon_mult:2
    ~expected:
      "OA competitive at 1-2 threads but flattens with threads (shared \
       fixed pool); OA-BIT ~ OA-VER scale"
    ()

let fig5b =
  throughput_figure ~id:"fig5b" ~title:"hash table, 10K nodes, 50%srch/25/25"
    ~paper_ref:"Figure 5b" ~structure:Runner.Hash_set
    ~initial:(fun _ -> 10_000)
    ~mix:Workload.balanced ~horizon_mult:2 ~expected:"same shape as 5a" ()

let fig6a =
  throughput_figure ~id:"fig6a" ~title:"hash table, 1M nodes (scaled), 50/50"
    ~paper_ref:"Figure 6a" ~structure:Runner.Hash_set
    ~initial:(fun cfg -> cfg.fig6_size)
    ~mix:Workload.update_only ~horizon_mult:2
    ~expected:"same ordering as 5a at a larger footprint" ()

let fig6b =
  throughput_figure ~id:"fig6b"
    ~title:"hash table, 1M nodes (scaled), 50%srch/25/25"
    ~paper_ref:"Figure 6b" ~structure:Runner.Hash_set
    ~initial:(fun cfg -> cfg.fig6_size)
    ~mix:Workload.balanced ~horizon_mult:2 ~expected:"same shape as 6a" ()

(* --- E7: remap strategies make no throughput difference (§5.1) -------------- *)

let remap_strategies =
  {
    id = "remap-strategies";
    title = "OA-VER throughput across remap strategies";
    paper_ref = "Section 5.1 (final paragraph)";
    expected =
      "keep / madvise / shared within noise of each other (empties are rare)";
    run =
      (fun cfg ->
        doc_of @@ fun emit ->
        emit (Report.section "remap-strategies — keep vs madvise vs shared");
        let strategies =
          [ Aconfig.Keep_resident; Aconfig.Madvise; Aconfig.Shared_map ]
        in
        let rows =
          List.map
            (fun remap ->
              let per_thread =
                List.map
                  (fun threads ->
                    Runner.run
                      {
                        Runner.default_spec with
                        Runner.scheme = "oa-ver";
                        threads;
                        structure = Runner.Hash_set;
                        workload =
                          Workload.make ~mix:Workload.update_only ~initial:10_000 ();
                        horizon_cycles = cfg.horizon_cycles;
                        remap;
                        seed = cfg.seed;
                      })
                  cfg.threads
              in
              Aconfig.remap_strategy_name remap
              :: List.map
                   (fun r -> fmt_mops r.Runner.throughput_mops)
                   per_thread)
            strategies
        in
        emit
          (Report.table ~header:("strategy" :: List.map string_of_int cfg.threads) rows);
        emit
          (Report.csv ~filename:"remap-strategies.csv"
             ~header:("strategy" :: List.map string_of_int cfg.threads)
             rows));
  }

(* --- E8: physical memory release (Fig. 3 mechanics) -------------------------- *)

let memory_release =
  {
    id = "memory-release";
    title = "frames released when a structure is torn down";
    paper_ref = "Section 3.2, Figure 3";
    expected =
      "keep: frames stay resident; madvise: frames drop, RSS drops; shared: \
       frames drop but Linux-style RSS stays inflated";
    run =
      (fun cfg ->
        doc_of @@ fun emit ->
        emit (Report.section "memory-release — frames and RSS after teardown");
        let strategies =
          [ Aconfig.Keep_resident; Aconfig.Madvise; Aconfig.Shared_map ]
        in
        let rows =
          List.map
            (fun remap ->
              let spec =
                {
                  Runner.default_spec with
                  Runner.scheme = "oa-ver";
                  threads = 2;
                  structure = Runner.Hash_set;
                  workload =
                    Workload.make ~mix:Workload.update_only ~initial:10_000 ();
                  horizon_cycles = 1;
                  remap;
                  sb_pages = 8;
                  threshold = 32;
                  seed = cfg.seed;
                }
              in
              let sys = Runner.make_system spec in
              let setup = Engine.external_ctx () in
              let h = System.hash_set sys setup ~expected_size:10_000 in
              let keys = List.init 10_000 (fun i -> 2 * i) in
              Michael_hash.prefill h setup keys;
              let peak =
                Metrics.find (System.metrics sys) "vmem.frames_live"
              in
              (* delete every key from a simulated thread, then drain *)
              System.run_on_thread0 sys (fun ctx ->
                  List.iter (fun k -> ignore (Michael_hash.delete h ctx k)) keys);
              System.drain sys;
              let m = System.metrics sys in
              [
                Aconfig.remap_strategy_name remap;
                string_of_int peak;
                string_of_int (Metrics.find m "vmem.frames_live");
                string_of_int (Metrics.find m "vmem.resident_pages");
                string_of_int (Metrics.find m "vmem.linux_rss_pages");
                string_of_int (Metrics.find m "engine.syscalls");
              ])
            strategies
        in
        emit
          (Report.table
             ~header:
               [ "strategy"; "frames-peak"; "frames-after"; "resident-pages";
                 "linux-rss-pages"; "syscalls" ]
             rows);
        emit
          (Report.csv ~filename:"memory-release.csv"
             ~header:
               [ "strategy"; "frames_peak"; "frames_after"; "resident_pages";
                 "linux_rss_pages"; "syscalls" ]
             rows));
  }

(* --- E9: VBR-style DWCAS leak (§3.2 footnote 2) ------------------------------ *)

let dwcas_leak =
  {
    id = "dwcas-leak";
    title = "failed DWCAS on reclaimed memory: madvise leaks, shared does not";
    paper_ref = "Section 3.2, footnote 2";
    expected = "madvise: one frame faulted per touched page; shared: none";
    run =
      (fun _cfg ->
        doc_of @@ fun emit ->
        emit
          (Report.section
             "dwcas-leak — VBR tagged DWCAS on released superblocks");
        let probe remap =
          let g = Geometry.default in
          let vm = Vmem.create ~max_pages:65536 g in
          let meta = Cell.heap g in
          let acfg = { Aconfig.default with Aconfig.sb_pages = 8; remap } in
          let alloc = Lrmalloc.create ~cfg:acfg ~vmem:vm ~meta ~nthreads:1 () in
          let ctx = Engine.external_ctx () in
          let first = Lrmalloc.palloc alloc ctx 512 in
          let heap = Lrmalloc.heap alloc in
          let d = Heap.lookup_desc heap ctx first |> Option.get in
          let blocks =
            first
            :: List.init
                 (d.Descriptor.max_count - 1)
                 (fun _ -> Lrmalloc.palloc alloc ctx 512)
          in
          List.iter (fun b -> Lrmalloc.free alloc ctx b) blocks;
          Lrmalloc.flush_thread_cache alloc ctx;
          Heap.trim heap ctx;
          Vbr_probe.run vm ctx ~addrs:blocks
        in
        let rows =
          List.map
            (fun remap ->
              let r = probe remap in
              [
                Aconfig.remap_strategy_name remap;
                string_of_int r.Vbr_probe.attempts;
                string_of_int r.Vbr_probe.succeeded;
                string_of_int r.Vbr_probe.frames_leaked;
                string_of_int r.Vbr_probe.cow_cas_faults;
              ])
            [ Aconfig.Madvise; Aconfig.Shared_map ]
        in
        emit
          (Report.table
             ~header:[ "strategy"; "dwcas"; "succeeded"; "frames-leaked"; "cas-faults" ]
             rows));
  }

(* --- E10: per-node validation cost micro-benchmark (§2.4) -------------------- *)

let micro_validate =
  {
    id = "micro-validate";
    title = "per-node cost: OA warning check vs HP publish+fence+verify";
    paper_ref = "Section 2.4 cost argument";
    expected = "OA read_check cycles well below HP traverse_protect cycles";
    run =
      (fun _cfg ->
        doc_of @@ fun emit ->
        emit (Report.section "micro-validate — simulated cycles per primitive");
        let measure scheme_name f =
          let sys =
            System.create (System.Config.make ~nthreads:1 ~scheme:scheme_name ())
          in
          let iters = 2_000 in
          System.run_on_thread0 sys (fun ctx ->
              (* warm-up *)
              f sys ctx 64);
          let sys =
            System.create (System.Config.make ~nthreads:1 ~scheme:scheme_name ())
          in
          let cycles = ref 0 in
          System.run_on_thread0 sys (fun ctx ->
              f sys ctx 64;
              (* warm caches *)
              let t0 = Engine.Mem.now ctx in
              f sys ctx iters;
              cycles := Engine.Mem.now ctx - t0);
          float_of_int !cycles /. float_of_int iters
        in
        let oa_check sys ctx n =
          let sch = System.scheme sys in
          for _ = 1 to n do
            sch.Scheme.read_check ctx
          done
        in
        let hp_protect sys ctx n =
          let sch = System.scheme sys in
          let vm = System.vmem sys in
          let node = sch.Scheme.alloc ctx 2 in
          let loc = sch.Scheme.alloc ctx 2 in
          Vmem.store vm ctx loc node;
          for _ = 1 to n do
            sch.Scheme.traverse_protect ctx ~slot:0 ~addr:node
              ~verify:(fun () -> Vmem.load vm ctx loc = node)
          done
        in
        let rows =
          [
            [ "oa-ver read_check"; fmt_mops (measure "oa-ver" oa_check) ];
            [ "oa-bit read_check"; fmt_mops (measure "oa-bit" oa_check) ];
            [ "hp traverse_protect"; fmt_mops (measure "hp" hp_protect) ];
          ]
        in
        emit (Report.table ~header:[ "primitive"; "cycles/op" ] rows));
  }

(* --- E11: warnings fired, OA-BIT vs OA-VER (Alg. 2 ablation) ----------------- *)

let warnings_ablation =
  {
    id = "warnings-ablation";
    title = "warning traffic and restarts: OA-BIT vs OA-VER on lists";
    paper_ref = "Section 3.1 / Figure 4a explanation";
    expected =
      "OA-VER fires fewer warnings per reclaim (piggy-backing) and restarts \
       readers less";
    run =
      (fun cfg ->
        doc_of @@ fun emit ->
        emit (Report.section "warnings-ablation — OA-BIT vs OA-VER");
        (* mid-range thread count and the list-figure horizon: the regime
           where warning frequency drives restart losses *)
        let threads = min 8 (List.fold_left max 1 cfg.threads) in
        let rows =
          List.map
            (fun scheme ->
              let r =
                Runner.run
                  {
                    Runner.default_spec with
                    Runner.scheme;
                    threads;
                    structure = Runner.List_set;
                    workload =
                      Workload.make ~mix:Workload.update_only ~initial:cfg.fig4_size ();
                    horizon_cycles = 8 * cfg.horizon_cycles;
                    threshold = 16;
                    seed = cfg.seed;
                  }
              in
              let m = r.Runner.metrics in
              [
                scheme;
                fmt_mops r.Runner.throughput_mops;
                string_of_int (Metrics.find m "scheme.warnings_fired");
                string_of_int (Metrics.find m "scheme.warnings_piggybacked");
                string_of_int (Metrics.find m "scheme.restarts");
                string_of_int (Metrics.find m "scheme.reclaim_phases");
              ])
            [ "oa-bit"; "oa-ver" ]
        in
        emit
          (Report.table
             ~header:
               [ "scheme"; "Mops/s"; "warnings"; "piggyback"; "restarts"; "phases" ]
             rows));
  }

(* --- ablations beyond the paper ---------------------------------------------- *)

let limbo_sweep =
  {
    id = "limbo-sweep";
    title = "limbo-list threshold sweep (OA-VER, hash 10K)";
    paper_ref = "design choice in Alg. 1/2 (threshold X)";
    expected = "throughput rises then plateaus; tiny thresholds thrash";
    run =
      (fun cfg ->
        doc_of @@ fun emit ->
        emit (Report.section "limbo-sweep — reclamation threshold");
        let threads = List.fold_left max 1 cfg.threads in
        let rows =
          List.map
            (fun threshold ->
              let r =
                Runner.run
                  {
                    Runner.default_spec with
                    Runner.scheme = "oa-ver";
                    threads;
                    structure = Runner.Hash_set;
                    workload =
                      Workload.make ~mix:Workload.update_only ~initial:10_000 ();
                    horizon_cycles = cfg.horizon_cycles;
                    threshold;
                    seed = cfg.seed;
                  }
              in
              [
                string_of_int threshold;
                fmt_mops r.Runner.throughput_mops;
                string_of_int (Metrics.find r.Runner.metrics "scheme.reclaim_phases");
                string_of_int (Metrics.find r.Runner.metrics "vmem.frames_peak");
              ])
            [ 4; 16; 64; 256; 1024 ]
        in
        emit
          (Report.table
             ~header:[ "threshold"; "Mops/s"; "phases"; "frames-peak" ]
             rows));
  }

let padding_ablation =
  {
    id = "padding-ablation";
    title = "hazard-slot cache-line padding on vs off";
    paper_ref = "implementation detail (false sharing)";
    expected = "unpadded slots cost throughput via false sharing";
    run =
      (fun cfg ->
        doc_of @@ fun emit ->
        emit (Report.section "padding-ablation — hazard slot false sharing");
        let threads = List.fold_left max 1 cfg.threads in
        let rows =
          List.map
            (fun padded ->
              let r =
                Runner.run
                  {
                    Runner.default_spec with
                    Runner.scheme = "hp";
                    threads;
                    structure = Runner.Hash_set;
                    workload =
                      Workload.make ~mix:Workload.update_only ~initial:10_000 ();
                    horizon_cycles = cfg.horizon_cycles;
                    hazard_padded = padded;
                    seed = cfg.seed;
                  }
              in
              [
                (if padded then "padded" else "unpadded");
                fmt_mops r.Runner.throughput_mops;
                string_of_int
                  (Metrics.find r.Runner.metrics
                     "engine.cache.remote_invalidations");
              ])
            [ true; false ]
        in
        emit
          (Report.table ~header:[ "slots"; "Mops/s"; "remote-invalidations" ] rows));
  }

let cache_sweep =
  {
    id = "cache-sweep";
    title = "cache-geometry sensitivity (OA-VER vs NR, hash 10K)";
    paper_ref = "locality discussion in §5.2";
    expected =
      "a small L1 amplifies the footprint advantage of reclaiming schemes";
    run =
      (fun cfg ->
        doc_of @@ fun emit ->
        emit (Report.section "cache-sweep — cache geometry");
        (* the list is where footprint-vs-L1 matters: OA-VER's compact
           reuse fits the default L1, NR's scattered leak does not *)
        let threads = min 8 (List.fold_left max 1 cfg.threads) in
        let geoms =
          [
            ("opteron", None);
            ( "small-l1",
              Some
                {
                  Oamem_engine.Hierarchy.opteron_6274_config with
                  Oamem_engine.Hierarchy.l1_sets = 8;
                } );
            ( "big-l1",
              Some
                {
                  Oamem_engine.Hierarchy.opteron_6274_config with
                  Oamem_engine.Hierarchy.l1_sets = 1024;
                } );
          ]
        in
        let rows =
          List.concat_map
            (fun (name, cache_cfg) ->
              List.map
                (fun scheme ->
                  let r =
                    Runner.run
                      {
                        Runner.default_spec with
                        Runner.scheme;
                        threads;
                        structure = Runner.List_set;
                        workload =
                          Workload.make ~mix:Workload.update_only ~initial:cfg.fig4_size ();
                        horizon_cycles = 8 * cfg.horizon_cycles;
                        threshold = 16;
                        cache_cfg;
                        seed = cfg.seed;
                      }
                  in
                  [ name; scheme; fmt_mops r.Runner.throughput_mops ])
                [ "oa-ver"; "nr" ])
            geoms
        in
        emit (Report.table ~header:[ "cache"; "scheme"; "Mops/s" ] rows));
  }

(* --- §6 future work: VBR over the extended allocator -------------------------- *)

let vbr_stack =
  {
    id = "vbr-stack";
    title = "VBR stack (immediate free) vs OA-VER stack (limbo + warnings)";
    paper_ref = "Section 6 (future work) + Section 3.2 footnote 2";
    expected =
      "VBR frees every popped node immediately with competitive throughput; \
       memory returns with no drain";
    run =
      (fun cfg ->
        doc_of @@ fun emit ->
        emit (Report.section "vbr-stack — the paper's future-work combination");
        let nthreads = min 8 (List.fold_left max 1 cfg.threads) in
        let ops_per_thread = 2_000 in
        let run_stack which =
          let sys =
            System.create
              (System.Config.make ~nthreads ~scheme:"oa-ver"
                 ~alloc_cfg:{ Aconfig.default with Aconfig.sb_pages = 8 }
                 ~scheme_cfg:
                   {
                     Scheme.default_config with
                     Scheme.threshold = 64;
                     slots_per_thread = Hm_list.slots_needed;
                   }
                 ())
          in
          let setup = Engine.external_ctx () in
          let push, pop, frees_after =
            match which with
            | `Vbr ->
                let s = Vbr_stack.create setup ~alloc:(System.alloc sys) in
                ( Vbr_stack.push s,
                  (fun ctx -> ignore (Vbr_stack.pop s ctx)),
                  fun () -> Vbr_stack.immediate_frees s )
            | `Oa ->
                let s =
                  Treiber_stack.create setup ~scheme:(System.scheme sys)
                    ~vmem:(System.vmem sys)
                in
                ( Treiber_stack.push s,
                  (fun ctx -> ignore (Treiber_stack.pop s ctx)),
                  fun () -> (System.scheme sys).Scheme.stats.Scheme.freed )
          in
          for tid = 0 to nthreads - 1 do
            System.spawn sys ~tid (fun ctx ->
                let rng = Prng.create (cfg.seed + tid) in
                for i = 1 to ops_per_thread do
                  if Prng.bool rng then push ctx i else pop ctx
                done)
          done;
          System.run sys;
          let eng = System.engine sys in
          let mops =
            float_of_int (nthreads * ops_per_thread)
            /. Engine.elapsed_seconds eng /. 1e6
          in
          let frames_busy =
            Metrics.find (System.metrics sys) "vmem.frames_live"
          in
          (mops, frees_after (), frames_busy)
        in
        let vbr_mops, vbr_frees, vbr_frames = run_stack `Vbr in
        let oa_mops, oa_frees, oa_frames = run_stack `Oa in
        emit
          (Report.table
             ~header:[ "stack"; "Mops/s"; "frees"; "frames-live" ]
             [
               [ "vbr (immediate)"; fmt_mops vbr_mops; string_of_int vbr_frees;
                 string_of_int vbr_frames ];
               [ "oa-ver (limbo)"; fmt_mops oa_mops; string_of_int oa_frees;
                 string_of_int oa_frames ];
             ]));
  }

(* --- E13: fault injection and graceful degradation --------------------------- *)

let robustness =
  {
    id = "robustness";
    title =
      "Fault matrix: garbage growth under stalled/crashed threads + \
       frame-pool exhaustion recovery";
    paper_ref = "Section 1 (robustness motivation) + Section 5 (memory release)";
    expected =
      "EBR garbage grows with the healthy threads' work once one thread \
       stalls mid-operation; HP and the OA schemes stay under a constant \
       bound; DEBRA neutralizes the laggard and stays bounded too (and \
       seizes a crashed thread's bags), degenerating to EBR with \
       neutralization off; under a frame quota the releasing remap \
       strategies recover while Keep_resident ends in a typed Out_of_memory";
    run =
      (fun cfg ->
        doc_of @@ fun emit ->
        emit
          (Report.section
             "robustness — stalled-thread garbage growth (stalled vs control)");
        let spec =
          {
            Robustness.default_spec with
            Robustness.horizon_cycles = cfg.horizon_cycles;
            sample_interval = max 1 (cfg.horizon_cycles / 40);
            seed = cfg.seed;
            sanitize = cfg.sanitize;
          }
        in
        let bound = Robustness.robust_bound spec in
        emit
          (Report.textf
             "Thread 0 stalls at its %d-th yield for longer than the run; %d \
              healthy workers keep updating a hash set.  Robust bound: %d \
              nodes.%s\n\n"
             spec.Robustness.stall_at_yield spec.Robustness.workers bound
             (if cfg.sanitize then "  Lifecycle sanitizer: on." else ""));
        (* Matrix membership comes from the capability record, not a name
           list: every registered scheme runs except the ones that recycle
           retired blocks in-place (the original OA pools), whose reuse the
           unreclaimed monitor cannot attribute. *)
        let schemes =
          List.filter_map
            (fun (e : Registry.entry) ->
              if e.Registry.caps.Scheme.recycles_retired then None
              else Some e.Registry.name)
            Registry.all
        in
        (* Every leg is an independent seeded run; shard them across
           cfg.jobs domains and reassemble in canonical order.  The
           labelled pair rows include the DEBRA ablation with
           neutralization disabled, which must degenerate to EBR's curve. *)
        let legs =
          List.map (fun scheme -> `Pair (scheme, { spec with Robustness.scheme })) schemes
          @ [
              `Pair
                ( "debra (no-neut)",
                  { spec with Robustness.scheme = "debra"; neutralize = false } );
            ]
          @ List.map
              (fun scheme ->
                `Crash
                  ( scheme,
                    {
                      spec with
                      Robustness.scheme;
                      Robustness.fault = Robustness.Crash;
                    } ))
              schemes
        in
        let leg_results =
          Pool.map_exn ~jobs:cfg.jobs
            (function
              | `Pair (label, sp) -> `PairR (label, Robustness.run_pair sp)
              | `Crash (scheme, sp) -> `CrashR (scheme, Robustness.run sp))
            legs
        in
        let pairs =
          List.filter_map
            (function `PairR (label, pr) -> Some (label, pr) | _ -> None)
            leg_results
        in
        let crashes =
          List.filter_map
            (function `CrashR (scheme, r) -> Some (scheme, r) | _ -> None)
            leg_results
        in
        let verdict label (s : Robustness.result) (c : Robustness.result) =
          if Registry.mem label && (Registry.caps label).Scheme.leaks_by_design
          then "leaks in both (by design)"
          else if
            s.Robustness.final_unreclaimed > 2 * bound
            && s.Robustness.final_unreclaimed
               > 2 * max 1 c.Robustness.final_unreclaimed
          then "grows with healthy work"
          else if s.Robustness.max_unreclaimed <= bound then "bounded"
          else if
            s.Robustness.final_unreclaimed
            <= 2 * max 1 c.Robustness.final_unreclaimed
          then "bounded (within 2x control)"
          else "bounded by live-at-stall"
        in
        emit
          (Report.table
             ~header:
               [
                 "scheme"; "stalled max"; "stalled final"; "control final";
                 "bound"; "neutral."; "verdict";
               ]
             (List.map
                (fun (label, (s, c)) ->
                  [
                    label;
                    string_of_int s.Robustness.max_unreclaimed;
                    string_of_int s.Robustness.final_unreclaimed;
                    string_of_int c.Robustness.final_unreclaimed;
                    string_of_int bound;
                    string_of_int s.Robustness.neutralized;
                    verdict label s c;
                  ])
                pairs));
        (* Garbage-over-time chart for the stalled variant (leak-by-design
           schemes excluded: their monotone leak would flatten every other
           series). *)
        let charted =
          List.filter
            (fun (label, _) ->
              not
                (Registry.mem label
                && (Registry.caps label).Scheme.leaks_by_design))
            pairs
        in
        let series =
          List.map
            (fun (label, ((s : Robustness.result), _)) ->
              ( label,
                List.map
                  (fun smp ->
                    float_of_int smp.Oamem_faults.Monitor.unreclaimed)
                  s.Robustness.samples ))
            charted
        in
        let npoints =
          List.fold_left (fun acc (_, ys) -> min acc (List.length ys))
            max_int series
        in
        let truncate n l = List.filteri (fun i _ -> i < n) l in
        let xs =
          match charted with
          | (_, (s, _)) :: _ ->
              truncate npoints
                (List.map
                   (fun smp -> smp.Oamem_faults.Monitor.at_cycles / 1000)
                   s.Robustness.samples)
          | [] -> []
        in
        emit
          (Report.chart ~title:"unreclaimed nodes over time (stalled thread 0)"
             ~xlabel:"kcycles" ~ylabel:"unreclaimed nodes" ~xs
             (List.map (fun (name, ys) -> (name, truncate npoints ys)) series));
        emit
          (Report.csv ~filename:"robustness.csv"
             ~header:[ "scheme"; "variant"; "at_cycles"; "unreclaimed" ]
             (List.concat_map
                (fun (label, (s, c)) ->
                  List.concat_map
                    (fun (variant, (r : Robustness.result)) ->
                      List.map
                        (fun smp ->
                          [
                            label; variant;
                            string_of_int smp.Oamem_faults.Monitor.at_cycles;
                            string_of_int smp.Oamem_faults.Monitor.unreclaimed;
                          ])
                        r.Robustness.samples)
                    [ ("stalled", s); ("control", c) ])
                pairs));
        (* Fault matrix: every scheme under {no-fault, stall, crash}.  The
           no-fault and stall legs reuse the pair runs above; the crash legs
           ran as their own jobs.  Seized vs pinned separates what a dead
           thread's bag still holds from what a live thread already took
           over. *)
        emit
          (Report.section
             "robustness — fault matrix (no-fault / stall / crash)");
        let matrix =
          List.concat_map
            (fun scheme ->
              let s, c = List.assoc scheme pairs in
              let crash = List.assoc scheme crashes in
              [ (scheme, c); (scheme, s); (scheme, crash) ])
            schemes
        in
        emit
          (Report.table
             ~header:
               [
                 "scheme"; "fault"; "final unreclaimed"; "final pinned";
                 "seized"; "neutral."; "ops";
               ]
             (List.map
                (fun (scheme, (r : Robustness.result)) ->
                  [
                    scheme;
                    Robustness.fault_name r.Robustness.spec.Robustness.fault;
                    string_of_int r.Robustness.final_unreclaimed;
                    string_of_int r.Robustness.final_pinned;
                    string_of_int r.Robustness.seized;
                    string_of_int r.Robustness.neutralized;
                    string_of_int r.Robustness.ops;
                  ])
                matrix));
        emit
          (Report.csv ~filename:"robustness_matrix.csv"
             ~header:
               [
                 "scheme"; "fault"; "final_unreclaimed"; "final_pinned";
                 "seized"; "neutralized"; "ops"; "max_unreclaimed";
               ]
             (List.map
                (fun (scheme, (r : Robustness.result)) ->
                  [
                    scheme;
                    Robustness.fault_name r.Robustness.spec.Robustness.fault;
                    string_of_int r.Robustness.final_unreclaimed;
                    string_of_int r.Robustness.final_pinned;
                    string_of_int r.Robustness.seized;
                    string_of_int r.Robustness.neutralized;
                    string_of_int r.Robustness.ops;
                    string_of_int r.Robustness.max_unreclaimed;
                  ])
                matrix));
        (* Per-scheme garbage-curve JSON, one artifact per (scheme, fault)
           leg — the CI fault-matrix artifacts. *)
        List.iter
          (fun (scheme, (r : Robustness.result)) ->
            let fault =
              Robustness.fault_name r.Robustness.spec.Robustness.fault
            in
            let doc =
              Json.Obj
                [
                  ("scheme", Json.String scheme);
                  ("fault", Json.String fault);
                  ( "neutralize",
                    Json.Bool r.Robustness.spec.Robustness.neutralize );
                  ("final_unreclaimed",
                   Json.Int r.Robustness.final_unreclaimed);
                  ("final_pinned", Json.Int r.Robustness.final_pinned);
                  ("seized", Json.Int r.Robustness.seized);
                  ("neutralized", Json.Int r.Robustness.neutralized);
                  ("ops", Json.Int r.Robustness.ops);
                  ( "samples",
                    Json.List
                      (List.map
                         (fun smp ->
                           Json.Obj
                             [
                               ( "at_cycles",
                                 Json.Int
                                   smp.Oamem_faults.Monitor.at_cycles );
                               ( "unreclaimed",
                                 Json.Int
                                   smp.Oamem_faults.Monitor.unreclaimed
                               );
                             ])
                         r.Robustness.samples) );
                ]
            in
            emit
              (Report.json_artifact
                 ~filename:(Printf.sprintf "garbage_%s_%s.json" scheme fault)
                 doc))
          matrix;
        emit (Report.section "robustness — frame-pool exhaustion under a quota");
        emit
          (Report.text
             "Persistent-allocation churn under a live-frame quota: recovery \
              flushes the thread cache and releases empty persistent \
              superblocks before retrying.\n\n");
        let pressure_rows =
          List.map
            (fun remap ->
              let r = Oamem_faults.Pressure.run ~remap () in
              [
                Aconfig.remap_strategy_name remap;
                Printf.sprintf "%d" r.Oamem_faults.Pressure.rounds_completed;
                (if r.Oamem_faults.Pressure.oom then "yes" else "no");
                string_of_int r.Oamem_faults.Pressure.recoveries;
                string_of_int r.Oamem_faults.Pressure.failures;
                string_of_int r.Oamem_faults.Pressure.sb_remapped;
                string_of_int r.Oamem_faults.Pressure.frames_peak;
              ])
            [ Aconfig.Madvise; Aconfig.Shared_map; Aconfig.Keep_resident ]
        in
        emit
          (Report.table
             ~header:
               [
                 "remap"; "rounds"; "oom"; "recoveries"; "failures";
                 "sb released"; "frames peak";
               ]
             pressure_rows));
  }

(* --- E14: phase-scoped service SLA ------------------------------------------ *)

let service =
  {
    id = "service";
    title = "Zipfian service scenario: per-phase SLA across schemes";
    paper_ref = "library extension (E14)";
    expected =
      "Phase-level p99 orderings differ from the whole-run ordering: schemes \
       that win on average lose in specific phases (restart-prone schemes in \
       the flash crowd, quota-pressured ones in the memory wave).";
    run =
      (fun cfg ->
        doc_of @@ fun emit ->
        emit
          (Report.section
             "E14 — Zipfian service scenario: per-phase SLA across schemes");
        (* the scenario's point is the full scheme comparison; an explicit
           -s narrows it, the CLI's default (the paper methods) widens to
           every registered scheme *)
        let schemes =
          if cfg.schemes = Registry.paper_methods then Registry.names
          else cfg.schemes
        in
        let threads = min 8 (List.fold_left max 1 cfg.threads) in
        let initial = max 256 (cfg.fig6_size / 50) in
        let window = max 1_000 (cfg.horizon_cycles / 40) in
        let phases = Service.default_phases ~horizon_cycles:cfg.horizon_cycles in
        emit
          (Report.textf
             "One store (%d keys, %d worker threads) lives through %s; \
              timeline windows of %d cycles slice per-phase latency and \
              reclamation behaviour.\n\n"
             initial threads
             (String.concat " -> "
                (List.map
                   (fun (p : Service.phase_spec) -> p.Service.pname)
                   phases))
             window);
        let spec_of scheme =
          {
            Service.scheme;
            threads;
            initial;
            window;
            sample_interval = max 200 (window / 5);
            seed = cfg.seed;
            phases;
          }
        in
        let results =
          Pool.map_exn ~jobs:cfg.jobs
            (fun scheme -> (scheme, Service.run (spec_of scheme)))
            schemes
        in
        let row scheme (s : Service.phase_stats) =
          [
            scheme;
            s.Service.phase;
            string_of_int s.Service.ops;
            string_of_int s.Service.p50;
            string_of_int s.Service.p99;
            string_of_int s.Service.max_cycles;
            string_of_int s.Service.restarts;
            string_of_int s.Service.warnings;
            string_of_int s.Service.neutralized;
            string_of_int s.Service.frames_released;
            string_of_int s.Service.peak_unreclaimed;
            string_of_int s.Service.pressure_recoveries;
          ]
        in
        let header =
          [
            "scheme"; "phase"; "ops"; "p50"; "p99"; "max"; "restarts";
            "warnings"; "neutralized"; "released"; "peak unreclaimed";
            "pressure";
          ]
        in
        let sla_rows =
          List.concat_map
            (fun (scheme, (r : Service.result)) ->
              List.map (row scheme) (r.Service.per_phase @ [ r.Service.overall ]))
            results
        in
        emit (Report.table ~header sla_rows);
        emit
          (Report.table
             ~header:[ "scheme"; "Mops/s"; "ops"; "sim ms" ]
             (List.map
                (fun (scheme, (r : Service.result)) ->
                  [
                    scheme;
                    fmt_mops r.Service.throughput_mops;
                    string_of_int r.Service.overall.Service.ops;
                    Printf.sprintf "%.2f" (r.Service.sim_seconds *. 1e3);
                  ])
                results));
        (* The SLA punchline: scheme pairs whose per-phase p99 order
           contradicts their whole-run p99 order. *)
        let p99_in (r : Service.result) name =
          List.find_opt
            (fun s -> String.equal s.Service.phase name)
            r.Service.per_phase
          |> Option.map (fun s -> s.Service.p99)
        in
        let phase_names =
          match results with
          | (_, r) :: _ ->
              List.map (fun s -> s.Service.phase) r.Service.per_phase
          | [] -> []
        in
        let rec pairs = function
          | [] -> []
          | x :: tl -> List.map (fun y -> (x, y)) tl @ pairs tl
        in
        let inversions =
          List.concat_map
            (fun ((s1, (r1 : Service.result)), (s2, (r2 : Service.result))) ->
              let o1 = r1.Service.overall.Service.p99
              and o2 = r2.Service.overall.Service.p99 in
              if o1 = o2 then []
              else
                List.filter_map
                  (fun ph ->
                    match (p99_in r1 ph, p99_in r2 ph) with
                    | Some a, Some b when a <> b && compare a b <> compare o1 o2
                      ->
                        Some
                          (Printf.sprintf
                             "  %-13s %s p99 %d vs %s %d — whole-run order \
                              is %d vs %d"
                             ph s1 a s2 b o1 o2)
                    | _ -> None)
                  phase_names)
            (pairs results)
        in
        emit
          (Report.text
             (match inversions with
             | [] ->
                 "No phase-level p99 ordering inversions at this scale.\n\n"
             | inv ->
                 Printf.sprintf
                   "Phase-level p99 orderings that contradict the whole-run \
                    ordering (%d):\n%s\n\n"
                   (List.length inv)
                   (String.concat "\n" inv)));
        emit (Report.csv ~filename:"service_sla.csv" ~header sla_rows);
        List.iter
          (fun (scheme, (r : Service.result)) ->
            emit
              (Report.json_artifact
                 ~filename:(Printf.sprintf "timeline_%s.json" scheme)
                 (Export.timeline_json r.Service.timeline));
            let theader, trows = Export.timeline_csv r.Service.timeline in
            emit
              (Report.csv
                 ~filename:(Printf.sprintf "timeline_%s.csv" scheme)
                 ~header:theader trows))
          results);
  }

(* --- E15: conditional-access immediate reclamation --------------------------- *)

let immediate =
  {
    id = "immediate";
    title =
      "IMR (conditional-access immediate reclamation) vs OA-BIT / OA-VER \
       across the figure workloads";
    paper_ref = "Section 6 (hardware-supported variants) — E15 extension";
    expected =
      "IMR stays within the OA envelope on every figure workload while \
       freeing each retired node immediately (unreclaimed ~0, no limbo \
       drain); its costs are one revocation broadcast per victim per retire \
       and the conditional-access failures that surface as restarts";
    run =
      (fun cfg ->
        doc_of @@ fun emit ->
        emit
          (Report.section
             "E15 — immediate reclamation under simulated conditional access");
        (* The simulated-hardware cost assumptions, side by side: what the
           coherence directory charges for each primitive the compared
           schemes lean on.  Printed from the model the cells run under, so
           the table cannot drift from the measurement. *)
        let cm = Cost_model.opteron_6274 in
        emit
          (Report.table
             ~header:[ "cost-model parameter"; "cycles"; "charged when" ]
             [
               [
                 "l1_hit";
                 string_of_int cm.Cost_model.l1_hit;
                 "every access, incl. the OA warning check";
               ];
               [
                 "fence_full";
                 string_of_int cm.Cost_model.fence_full;
                 "IMR validate and retire; OA reclaim-phase fences";
               ];
               [
                 "invalidation";
                 string_of_int cm.Cost_model.invalidation;
                 "remote store to a cached line (flag lines included)";
               ];
               [
                 "cond_access_extra";
                 string_of_int cm.Cost_model.cond_access_extra;
                 "each conditional access: directory check beyond the \
                  flag-line load";
               ];
               [
                 "revoke_broadcast";
                 string_of_int cm.Cost_model.revoke_broadcast;
                 "each IMR retire: one revocation post per victim thread";
               ];
               [
                 "neutralize_post";
                 string_of_int cm.Cost_model.neutralize_post;
                 "DEBRA-style signal post (software baseline for the same \
                  job)";
               ];
             ]);
        let threads = min 8 (List.fold_left max 1 cfg.threads) in
        (* The six figure workloads (E1-E6), one cell per (figure, scheme).
           Every cell is an independent seeded run, sharded across cfg.jobs
           domains and reassembled in canonical order — results are
           identical at any -j. *)
        let figures =
          [
            ("fig4a", Runner.List_set, cfg.fig4_size, Workload.update_only, 16, 8);
            ("fig4b", Runner.List_set, cfg.fig4_size, Workload.balanced, 16, 8);
            ("fig5a", Runner.Hash_set, 10_000, Workload.update_only, 64, 2);
            ("fig5b", Runner.Hash_set, 10_000, Workload.balanced, 64, 2);
            ("fig6a", Runner.Hash_set, cfg.fig6_size, Workload.update_only, 64, 2);
            ("fig6b", Runner.Hash_set, cfg.fig6_size, Workload.balanced, 64, 2);
          ]
        in
        let schemes = [ "oa-bit"; "oa-ver"; "imr" ] in
        let cells =
          List.concat_map
            (fun fig -> List.map (fun scheme -> (fig, scheme)) schemes)
            figures
        in
        let run_cell ((_, structure, initial, mix, threshold, mult), scheme) =
          Runner.run
            {
              Runner.default_spec with
              Runner.scheme;
              threads;
              structure;
              workload = Workload.make ~mix ~initial ();
              horizon_cycles = mult * cfg.horizon_cycles;
              threshold;
              seed = cfg.seed;
            }
        in
        let results = Pool.map_exn ~jobs:cfg.jobs run_cell cells in
        let header =
          [
            "figure"; "scheme"; "Mops/s"; "restarts"; "cond-fails"; "freed";
            "retired-freed";
          ]
        in
        let rows =
          List.map2
            (fun ((figname, _, _, _, _, _), scheme) r ->
              let m = r.Runner.metrics in
              let retired = Metrics.find m "scheme.retired"
              and freed = Metrics.find m "scheme.freed" in
              [
                figname;
                scheme;
                fmt_mops r.Runner.throughput_mops;
                string_of_int (Metrics.find m "scheme.restarts");
                string_of_int (Metrics.find m "scheme.cond_fails");
                string_of_int freed;
                string_of_int (retired - freed);
              ])
            cells results
        in
        emit (Report.table ~header rows);
        (* The punchline, per figure: how much throughput the immediate-free
           property costs against each hazard-pointer OA flavour. *)
        let tagged =
          List.map2
            (fun ((fig, _, _, _, _, _), scheme) r -> ((fig, scheme), r))
            cells results
        in
        let mops fig scheme =
          (List.assoc (fig, scheme) tagged).Runner.throughput_mops
        in
        let ratio a b = if b > 0. then Printf.sprintf "%.2f" (a /. b) else "-" in
        emit
          (Report.table
             ~header:[ "figure"; "imr / oa-bit"; "imr / oa-ver" ]
             (List.map
                (fun (fig, _, _, _, _, _) ->
                  [
                    fig;
                    ratio (mops fig "imr") (mops fig "oa-bit");
                    ratio (mops fig "imr") (mops fig "oa-ver");
                  ])
                figures));
        emit (Report.csv ~filename:"immediate.csv" ~header rows));
  }

let all =
  [
    fig4a;
    fig4b;
    fig5a;
    fig5b;
    fig6a;
    fig6b;
    remap_strategies;
    memory_release;
    dwcas_leak;
    micro_validate;
    warnings_ablation;
    limbo_sweep;
    padding_ablation;
    cache_sweep;
    vbr_stack;
    robustness;
    service;
    immediate;
  ]

let find id =
  match List.find_opt (fun e -> e.id = id) all with
  | Some e -> e
  | None ->
      invalid_arg
        (Printf.sprintf "unknown experiment %S (known: %s)" id
           (String.concat ", " (List.map (fun e -> e.id) all)))
