(** The experiment registry: one entry per table/figure of the paper's
    evaluation plus the mechanism experiments and ablations (see DESIGN.md
    for the index).

    Experiments are value-returning: [run cfg] produces a {!Report.doc}
    (sections, tables, charts, artifacts) instead of printing, so
    independent experiments can run on separate domains ({!Sweep}) and the
    coordinator renders the docs in canonical order. *)

type config = {
  threads : int list;
  horizon_cycles : int;
  fig4_size : int;  (** paper: 5K list nodes; scaled default for runtime *)
  fig6_size : int;  (** paper: 1M hash nodes; scaled default for runtime *)
  schemes : string list;
  seed : int;
  csv_dir : string option;
      (** artifact directory the *driver* writes [in_dir] artifacts into
          (via {!Report.write_artifacts}); experiments emit the artifacts
          either way *)
  trace_out : string option;
      (** throughput figures: emit a Chrome trace_event JSON artifact of
          the designated run (last scheme at the highest thread count) *)
  metrics_out : string option;
      (** throughput figures: emit the designated run's metrics snapshot
          as a JSON artifact *)
  sanitize : bool;
      (** run the fault-matrix experiment under the memory-lifecycle
          sanitizer (CI nightly leg) *)
  jobs : int;
      (** domain count for sharding *inside* one experiment (the
          scheme x threads cells of the throughput figures, the fault
          matrix legs); {!Sweep.experiments} forces this to 1 when it is
          already sharding across experiments *)
}

(** Configuration builder: [Config.make ()] is {!default_config}; keyword
    arguments override individual fields, so adding a config field does not
    break construction sites (mirrors [System.Config.make]). *)
module Config : sig
  type t = config

  val make :
    ?threads:int list ->
    ?horizon_cycles:int ->
    ?fig4_size:int ->
    ?fig6_size:int ->
    ?schemes:string list ->
    ?seed:int ->
    ?csv_dir:string ->
    ?trace_out:string ->
    ?metrics_out:string ->
    ?sanitize:bool ->
    ?jobs:int ->
    unit ->
    config
end

val default_config : config
(** [Config.make ()]. *)

val quick_config : config
(** A faster preset for smoke runs (fewer thread counts, shorter horizon,
    smaller structures). *)

type t = {
  id : string;
  title : string;
  paper_ref : string;
  expected : string;  (** the paper's expected shape, stated up front *)
  run : config -> Report.doc;
}

val all : t list

val find : string -> t
(** Raises [Invalid_argument] for unknown ids. *)
