(** The experiment registry: one entry per table/figure of the paper's
    evaluation plus the mechanism experiments and ablations (see DESIGN.md
    for the index). *)

type config = {
  threads : int list;
  horizon_cycles : int;
  fig4_size : int;  (** paper: 5K list nodes; scaled default for runtime *)
  fig6_size : int;  (** paper: 1M hash nodes; scaled default for runtime *)
  schemes : string list;
  seed : int;
  csv_dir : string option;
  trace_out : string option;
      (** throughput figures: write a Chrome trace_event JSON of the
          designated run (last scheme at the highest thread count) *)
  metrics_out : string option;
      (** throughput figures: write the designated run's metrics snapshot
          as JSON *)
  sanitize : bool;
      (** run the fault-matrix experiment under the memory-lifecycle
          sanitizer (CI nightly leg) *)
}

val default_config : config
val quick_config : config

type t = {
  id : string;
  title : string;
  paper_ref : string;
  expected : string;  (** the paper's expected shape, stated up front *)
  run : config -> unit;
}

val all : t list

val find : string -> t
(** Raises [Invalid_argument] for unknown ids. *)
