(* Randomized schedule fuzzing over whole assembled systems.

   Each scenario builds a fresh [System] per run with the [Scripted]
   scheduling policy and the sanitizer enabled, so a run is a pure function
   of its schedule prefix: the fuzzer (Explore.fuzz) samples random
   prefixes, the oracle is "data-structure invariants hold AND the
   sanitizer stayed silent through run, drain and quiescence", and any
   failing prefix shrinks to a minimal one that is serialized as a JSON
   repro file.  [replay] rebuilds the identical system from the file and
   re-runs the prefix — deterministically, because nothing in a simulated
   run reads wall-clock time or OS randomness. *)

open Oamem_engine
open Oamem_vmem
open Oamem_core
open Oamem_lockfree
open Oamem_reclaim
module Json = Oamem_obs.Json

type scenario = {
  name : string;
  descr : string;
  nthreads : int;
  schemes : string list;  (** schemes the scenario is meaningful under *)
  expect_fail : bool;
      (** a seeded-bug scenario: the fuzzer *should* find a failure (used
          by tests and excluded from the CI fuzz run) *)
  plan : (int array -> Fault_plan.t) option;
      (** compose a fault plan with the schedule: derived from the run's
          prefix, so a shrunken repro replays the identical faults *)
  build : System.t -> unit -> unit;
      (** prefill + spawn threads; returns the post-run oracle *)
}

let scheme_cfg =
  {
    Scheme.default_config with
    Scheme.threshold = 1;  (* reclaim aggressively: most lifecycle churn *)
    slots_per_thread = Hm_list.slots_needed;
    pool_nodes = 64;
  }

(* One run: returns [Some error] when the oracle or the sanitizer failed. *)
let run_once sc ~scheme prefix =
  let scripted = { Engine.prefix; factors = []; steps = 0 } in
  let sys =
    System.create
      (System.Config.make ~nthreads:sc.nthreads
         ~policy:(Engine.Scripted scripted) ~scheme ~sanitize:true
         ~max_pages:(1 lsl 14) ~scheme_cfg ())
  in
  (match sc.plan with
  | None -> ()
  | Some mk -> System.set_fault_plan sys (mk prefix));
  match
    let verify = sc.build sys in
    System.run ~max_steps:500_000 sys;
    verify ();
    System.check_sanitizer sys;
    System.drain sys;
    System.check_sanitizer_quiescent sys
  with
  | () -> None
  | exception e -> Some (Printexc.to_string e)

(* --- the scenario registry ------------------------------------------------ *)

(* Every registered scheme, from the single resolution point — a scheme
   added to the registry (e.g. imr) is fuzzed without touching this file. *)
let all_schemes = Oamem_reclaim.Registry.names

let list_insert_delete =
  {
    name = "list-insert-delete";
    descr = "concurrent insert+delete on a prefilled Harris-Michael list";
    nthreads = 2;
    schemes = all_schemes;
    expect_fail = false;
    plan = None;
    build =
      (fun sys ->
        let setup_ctx = Engine.external_ctx () in
        let l = System.list_set sys setup_ctx in
        Hm_list.build_sorted l setup_ctx [ 10; 20; 30 ];
        let r0 = ref false and r1 = ref false in
        System.spawn sys ~tid:0 (fun ctx -> r0 := Hm_list.delete l ctx 20);
        System.spawn sys ~tid:1 (fun ctx -> r1 := Hm_list.insert l ctx 25);
        fun () ->
          if not (!r0 && !r1) then failwith "operation failed unexpectedly";
          let final = Hm_list.to_list l in
          if final <> [ 10; 25; 30 ] then
            failwith
              (Printf.sprintf "bad final state: [%s]"
                 (String.concat ";" (List.map string_of_int final))));
  }

let list_mixed =
  {
    name = "list-mixed";
    descr = "two threads each deleting one key and inserting another";
    nthreads = 2;
    schemes = all_schemes;
    expect_fail = false;
    plan = None;
    build =
      (fun sys ->
        let setup_ctx = Engine.external_ctx () in
        let l = System.list_set sys setup_ctx in
        Hm_list.build_sorted l setup_ctx [ 10; 20; 30 ];
        let ok = Array.make 4 false in
        System.spawn sys ~tid:0 (fun ctx ->
            ok.(0) <- Hm_list.delete l ctx 10;
            ok.(1) <- Hm_list.insert l ctx 5);
        System.spawn sys ~tid:1 (fun ctx ->
            ok.(2) <- Hm_list.delete l ctx 30;
            ok.(3) <- Hm_list.insert l ctx 35);
        fun () ->
          if not (Array.for_all Fun.id ok) then
            failwith "operation failed unexpectedly";
          let final = Hm_list.to_list l in
          if final <> [ 5; 20; 35 ] then
            failwith
              (Printf.sprintf "bad final state: [%s]"
                 (String.concat ";" (List.map string_of_int final))));
  }

(* The queue's retired sentinels take a different path through the schemes
   than list nodes (dequeue retires the *old* sentinel, which the next
   dequeuer is still reading), so this exercises lifecycle interleavings
   the list scenarios cannot. *)
let ms_queue =
  {
    name = "ms-queue";
    descr = "producer/consumer on a Michael-Scott queue, FIFO oracle";
    nthreads = 2;
    schemes = all_schemes;
    expect_fail = false;
    plan = None;
    build =
      (fun sys ->
        let setup_ctx = Engine.external_ctx () in
        let q =
          Ms_queue.create setup_ctx ~scheme:(System.scheme sys)
            ~vmem:(System.vmem sys)
        in
        let d0 = ref None and d1 = ref None in
        System.spawn sys ~tid:0 (fun ctx ->
            Ms_queue.enqueue q ctx 1;
            Ms_queue.enqueue q ctx 2;
            Ms_queue.enqueue q ctx 3);
        System.spawn sys ~tid:1 (fun ctx ->
            d0 := Ms_queue.dequeue q ctx;
            d1 := Ms_queue.dequeue q ctx);
        fun () ->
          (* Single producer of 1;2;3, single consumer: whatever was
             dequeued (possibly nothing — the consumer may race ahead of
             the producer and see an empty queue) plus what remains must
             still read 1;2;3 in order. *)
          let popped = List.filter_map Fun.id [ !d0; !d1 ] in
          let final = popped @ Ms_queue.to_list q in
          if final <> [ 1; 2; 3 ] then
            failwith
              (Printf.sprintf "FIFO violated: [%s]"
                 (String.concat ";" (List.map string_of_int final))));
  }

(* A deliberately tiny table (expected_size 2 → a handful of buckets) so
   both threads churn the *same* chains; with threshold 1 every delete
   immediately pushes a node through retire/reclaim while the sibling
   thread may still be traversing it — the exact interleavings the fused
   fast path must not reorder.  Disjoint per-thread key sets keep the
   final-state oracle exact. *)
let michael_hash =
  {
    name = "michael-hash";
    descr = "two threads churning shared buckets of a Michael hash set";
    nthreads = 2;
    schemes = all_schemes;
    expect_fail = false;
    plan = None;
    build =
      (fun sys ->
        let setup_ctx = Engine.external_ctx () in
        let h = System.hash_set sys setup_ctx ~expected_size:2 in
        Michael_hash.prefill h setup_ctx [ 10; 20; 30; 40 ];
        let ok = Array.make 6 false in
        System.spawn sys ~tid:0 (fun ctx ->
            ok.(0) <- Michael_hash.delete h ctx 10;
            ok.(1) <- Michael_hash.insert h ctx 50;
            ok.(2) <- Michael_hash.contains h ctx 30);
        System.spawn sys ~tid:1 (fun ctx ->
            ok.(3) <- Michael_hash.delete h ctx 30;
            ok.(4) <- Michael_hash.insert h ctx 70;
            (* 30 may or may not still be present from tid 0's point of
               view; 40 is never touched, so it must always be there *)
            ok.(5) <- Michael_hash.contains h ctx 40);
        fun () ->
          (* ok.(2) races with tid 1's delete of 30: either answer is
             linearizable, so it is not part of the oracle *)
          let must = [ ok.(0); ok.(1); ok.(3); ok.(4); ok.(5) ] in
          if not (List.for_all Fun.id must) then
            failwith "operation failed unexpectedly";
          let final = List.sort compare (Michael_hash.to_list h) in
          if final <> [ 20; 40; 50; 70 ] then
            failwith
              (Printf.sprintf "bad final state: [%s]"
                 (String.concat ";" (List.map string_of_int final))));
  }

(* Neutralization under arbitrary schedules: two threads churn shared
   buckets under DEBRA (threshold 1 → an epoch-advance attempt per retire)
   while a prefix-derived fault plan stalls one of them mid-operation.
   Under the Scripted policy a stall only bumps the victim's clock — what
   actually parks a thread is the schedule itself: past the prefix the
   deterministic default always picks the first runnable thread, so the
   other thread routinely starves mid-operation with a stale announce,
   the churning thread's advance attempts outlast the patience bound, and
   a neutralization signal posts, delivers and unwinds under whatever
   interleaving the fuzzer sampled.  The stall composes the signal's
   stall-interruption path on top (posting to a stalled victim pulls its
   wake-up back).  Oracle: disjoint per-thread key sets give an exact
   final state, every operation must report success exactly once across
   its neutralization retries, and the sanitizer (with the DEBRA policy's
   pending-signal store suppression) must stay silent through quiescence.
   Findings shrink to replayable repros like every other scenario — the
   fault plan is a pure function of the stored prefix. *)
let stall_neutralize_churn =
  {
    name = "stall-neutralize-churn";
    descr = "DEBRA neutralization churn with a prefix-derived mid-op stall";
    nthreads = 2;
    schemes = [ "debra" ];
    expect_fail = false;
    plan =
      Some
        (fun prefix ->
          (* deterministic in the prefix, so shrinking preserves faults *)
          let h =
            Array.fold_left (fun a c -> ((a * 31) + c + 1) land max_int) 17
              prefix
          in
          Oamem_faults.Scenario.stall_one ~tid:(h mod 2)
            ~at_yield:(1 + (h / 7 mod 60))
            ~cycles:1_000_000);
    build =
      (fun sys ->
        let setup_ctx = Engine.external_ctx () in
        let h = System.hash_set sys setup_ctx ~expected_size:2 in
        Michael_hash.prefill h setup_ctx [ 10; 20; 30; 40 ];
        let ok = Array.make 6 false in
        System.spawn sys ~tid:0 (fun ctx ->
            ok.(0) <- Michael_hash.delete h ctx 10;
            ok.(1) <- Michael_hash.insert h ctx 50;
            ok.(2) <- Michael_hash.delete h ctx 50);
        System.spawn sys ~tid:1 (fun ctx ->
            ok.(3) <- Michael_hash.delete h ctx 30;
            ok.(4) <- Michael_hash.insert h ctx 70;
            ok.(5) <- Michael_hash.insert h ctx 90);
        fun () ->
          if not (Array.for_all Fun.id ok) then
            failwith "operation failed unexpectedly";
          let final = List.sort compare (Michael_hash.to_list h) in
          if final <> [ 20; 40; 70; 90 ] then
            failwith
              (Printf.sprintf "bad final state: [%s]"
                 (String.concat ";" (List.map string_of_int final))));
  }

(* IMR frees immediately after revoking access, so a thread stalled
   mid-traversal is guaranteed to have the memory under its feet freed —
   every schedule exercises the squash-and-restart path, and the
   prefix-derived stall moves the revocation window around. *)
let revoke_churn =
  {
    name = "revoke-churn";
    descr = "IMR immediate-free churn with a prefix-derived mid-op stall";
    nthreads = 2;
    schemes = [ "imr" ];
    expect_fail = false;
    plan =
      Some
        (fun prefix ->
          let h =
            Array.fold_left (fun a c -> ((a * 31) + c + 1) land max_int) 17
              prefix
          in
          Oamem_faults.Scenario.stall_one ~tid:(h mod 2)
            ~at_yield:(1 + (h / 7 mod 60))
            ~cycles:1_000_000);
    build =
      (fun sys ->
        let setup_ctx = Engine.external_ctx () in
        let h = System.hash_set sys setup_ctx ~expected_size:2 in
        Michael_hash.prefill h setup_ctx [ 10; 20; 30; 40 ];
        let ok = Array.make 6 false in
        System.spawn sys ~tid:0 (fun ctx ->
            ok.(0) <- Michael_hash.delete h ctx 10;
            ok.(1) <- Michael_hash.insert h ctx 50;
            ok.(2) <- Michael_hash.delete h ctx 50);
        System.spawn sys ~tid:1 (fun ctx ->
            ok.(3) <- Michael_hash.delete h ctx 30;
            ok.(4) <- Michael_hash.insert h ctx 70;
            ok.(5) <- Michael_hash.insert h ctx 90);
        fun () ->
          if not (Array.for_all Fun.id ok) then
            failwith "operation failed unexpectedly";
          let final = List.sort compare (Michael_hash.to_list h) in
          if final <> [ 20; 40; 70; 90 ] then
            failwith
              (Printf.sprintf "bad final state: [%s]"
                 (String.concat ";" (List.map string_of_int final))));
  }

(* A seeded bug: a non-atomic read-modify-write.  Most schedules pass; the
   fuzzer must find one that loses an update, shrink it, and the repro must
   replay.  Used by the tests and `repro fuzz --include-expected'. *)
let buggy_counter =
  {
    name = "buggy-counter";
    descr = "two racing non-atomic increments (seeded bug, must be found)";
    nthreads = 2;
    schemes = [ "nr" ];
    expect_fail = true;
    plan = None;
    build =
      (fun sys ->
        let vm = System.vmem sys in
        let geom = Vmem.geometry vm in
        let addr = Vmem.reserve vm ~npages:1 in
        Vmem.map_anon vm (Engine.external_ctx ())
          ~vpage:(Geometry.page_of_addr geom addr)
          ~npages:1;
        for tid = 0 to 1 do
          System.spawn sys ~tid (fun ctx ->
              let v = Vmem.load vm ctx addr in
              Vmem.store vm ctx addr (v + 1))
        done;
        fun () -> if Vmem.peek vm addr <> 2 then failwith "lost update");
  }

let scenarios =
  [
    list_insert_delete; list_mixed; ms_queue; michael_hash;
    stall_neutralize_churn; revoke_churn; buggy_counter;
  ]

let find_scenario name =
  match List.find_opt (fun s -> s.name = name) scenarios with
  | Some s -> s
  | None ->
      invalid_arg
        (Printf.sprintf "Fuzz.find_scenario: unknown scenario %S" name)

(* --- findings and repro files --------------------------------------------- *)

type finding = {
  scenario : string;
  scheme : string;
  seed : int;
  prefix : int array;
  error : string;
}

let fuzz_with ?(max_runs = 200) ?shrink_budget ?stop ~seed sc ~scheme =
  let stats =
    Explore.fuzz ~max_runs ?shrink_budget ?stop ~seed (fun prefix ->
        run_once sc ~scheme prefix)
  in
  let finding =
    Option.map
      (fun (r : Explore.repro) ->
        {
          scenario = sc.name;
          scheme;
          seed = r.Explore.seed;
          prefix = r.Explore.prefix;
          error = r.Explore.error;
        })
      stats.Explore.repro
  in
  (finding, stats)

let fuzz_scenario ?max_runs ?stop ~seed sc ~scheme =
  fuzz_with ?max_runs ?stop ~seed sc ~scheme

(* No shrinking: sweep workers report the raw failing prefix and the
   coordinator shrinks once, so worker wall-clock stays proportional to the
   chunk budget. *)
let fuzz_scenario_raw ?max_runs ?stop ~seed sc ~scheme =
  fuzz_with ?max_runs ~shrink_budget:0 ?stop ~seed sc ~scheme

let shrink_finding ?budget f =
  let sc = find_scenario f.scenario in
  let replays = ref 0 in
  let fails prefix =
    incr replays;
    run_once sc ~scheme:f.scheme prefix <> None
  in
  if not (fails f.prefix) then (f, !replays)
  else begin
    let prefix = Explore.shrink ?budget fails f.prefix in
    incr replays;
    let error =
      match run_once sc ~scheme:f.scheme prefix with
      | Some e -> e
      | None -> f.error  (* cannot happen: shrink preserves [fails] *)
    in
    ({ f with prefix; error }, !replays)
  end

let to_json f =
  Json.Obj
    [
      ("version", Json.Int 1);
      ("scenario", Json.String f.scenario);
      ("scheme", Json.String f.scheme);
      ("seed", Json.Int f.seed);
      ( "prefix",
        Json.List (List.map (fun c -> Json.Int c) (Array.to_list f.prefix)) );
      ("error", Json.String f.error);
    ]

let of_json j =
  {
    scenario = Json.to_str (Json.member "scenario" j);
    scheme = Json.to_str (Json.member "scheme" j);
    seed = Json.to_int (Json.member "seed" j);
    prefix =
      Array.of_list (List.map Json.to_int (Json.to_list (Json.member "prefix" j)));
    error = Json.to_str (Json.member "error" j);
  }

let save file f =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string (to_json f));
      output_char oc '\n')

let load file =
  let ic = open_in file in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_json (Json.parse (In_channel.input_all ic)))

(* Replay a repro: [Some error] when the failure reproduces. *)
let replay f = run_once (find_scenario f.scenario) ~scheme:f.scheme f.prefix
