(** Randomized schedule fuzzing over whole assembled systems, with
    shrinking and JSON repro files (the `repro fuzz' / `repro replay'
    workflow, run nightly in CI).

    A scenario rebuilds a fresh {!Oamem_core.System} per run under the
    [Scripted] scheduling policy with the sanitizer enabled; the oracle is
    "invariants hold and the sanitizer stayed silent through run, drain and
    quiescence".  Runs are pure functions of the schedule prefix, so a
    shrunk failing prefix replays deterministically from its repro file. *)

type scenario = {
  name : string;
  descr : string;
  nthreads : int;
  schemes : string list;  (** schemes the scenario is meaningful under *)
  expect_fail : bool;
      (** a seeded-bug scenario the fuzzer is *supposed* to fail (used by
          tests; excluded from the CI fuzz run by default) *)
  plan : (int array -> Oamem_engine.Fault_plan.t) option;
      (** compose a fault plan with the schedule, derived from the run's
          prefix so a shrunken repro replays the identical faults *)
  build : Oamem_core.System.t -> unit -> unit;
      (** prefill + spawn threads; returns the post-run oracle *)
}

val scenarios : scenario list
val find_scenario : string -> scenario
(** Raises [Invalid_argument] for unknown names. *)

val run_once : scenario -> scheme:string -> int array -> string option
(** Replay one schedule prefix; [Some error] when the oracle or sanitizer
    failed. *)

type finding = {
  scenario : string;
  scheme : string;
  seed : int;
  prefix : int array;  (** shrunk failing schedule prefix *)
  error : string;
}

val fuzz_scenario :
  ?max_runs:int ->
  ?stop:(unit -> bool) ->
  seed:int ->
  scenario ->
  scheme:string ->
  finding option * Oamem_engine.Explore.fuzz_stats
(** Fuzz one scenario under one scheme (see {!Oamem_engine.Explore.fuzz});
    the finding, if any, carries the shrunk prefix. *)

val fuzz_scenario_raw :
  ?max_runs:int ->
  ?stop:(unit -> bool) ->
  seed:int ->
  scenario ->
  scheme:string ->
  finding option * Oamem_engine.Explore.fuzz_stats
(** Like {!fuzz_scenario} but with shrinking disabled — the finding carries
    the raw failing prefix.  The {!Sweep} workers use this so the expensive
    shrink replays happen once, on the coordinating domain
    ({!shrink_finding}). *)

val shrink_finding : ?budget:int -> finding -> finding * int
(** Shrink a finding's prefix to a minimal one that still reproduces
    (see {!Oamem_engine.Explore.shrink}) and re-derive its error from the
    shrunk replay.  Returns the shrunk finding and the number of replays
    spent.  A finding that no longer reproduces is returned unchanged. *)

val to_json : finding -> Oamem_obs.Json.t
val of_json : Oamem_obs.Json.t -> finding

val save : string -> finding -> unit
val load : string -> finding

val replay : finding -> string option
(** Re-run a finding's prefix; [Some error] when the failure reproduces. *)
