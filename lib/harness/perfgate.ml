(* The CI performance-regression gate.

   Compares two BENCH_E1.json-style documents — a committed baseline and a
   freshly produced current run — configuration by configuration (keyed by
   scheme x threads) and flags:

   - throughput drops beyond [max_throughput_drop];
   - per-operation p99 latency increases beyond [max_p99_increase], read
     from the embedded profile's latency table (op.* frames only — the
     allocator/reclaimer frames are implementation detail whose latency
     shifts legitimately with batching changes);
   - configurations present in the baseline but missing from the current
     run (a silently shrunk sweep must not pass the gate).

   Both runs are deterministic simulations, so thresholds guard against
   real cost-model regressions, not machine noise; the defaults still leave
   headroom for intentional small shifts.  Baselines produced before
   profiles existed simply have no "profile" field and get throughput-only
   gating. *)

module Json = Oamem_obs.Json

type thresholds = {
  max_throughput_drop : float;  (* fraction of baseline, e.g. 0.10 *)
  max_p99_increase : float;  (* fraction of baseline, e.g. 0.25 *)
  max_host_drop : float;
      (* fraction of baseline host steps/sec, e.g. 0.50.  Unlike the two
         simulated dimensions this one measures the machine running the
         simulator, so it is noisy by nature: the threshold is generous and
         CI runs it warn-only.  Gated only when both documents carry
         host_steps_per_sec. *)
  max_unreclaimed_increase : float;
      (* fraction of baseline per-phase peak unreclaimed nodes, e.g. 0.25;
         checked per service phase where both documents carry a positive
         baseline *)
}

let default_thresholds =
  {
    max_throughput_drop = 0.10;
    max_p99_increase = 0.25;
    max_host_drop = 0.50;
    max_unreclaimed_increase = 0.25;
  }

type verdict = {
  scheme : string;
  threads : int;
  metric : string;  (* "throughput", "p99:op.insert", "missing" *)
  baseline : float;
  current : float;
  change : float;  (* signed relative change vs baseline *)
  regressed : bool;
}

(* --- document access ------------------------------------------------------- *)

let results doc =
  List.map
    (fun r ->
      ( ( Json.(to_str (member "scheme" r)),
          Json.(to_int (member "threads" r)) ),
        r ))
    Json.(to_list (member "results" doc))

let throughput r = Json.(to_float (member "throughput_mops" r))

(* Host simulator speed; absent in documents produced before the fused
   engine (or with timing disabled). *)
let host_steps_per_sec r =
  match Json.member "host_steps_per_sec" r with
  | Json.Null -> None
  | j -> Some (Json.to_float j)

(* (phase, p99, peak_unreclaimed) per entry of a result's embedded "phases"
   array (BENCH_SERVICE.json documents); [] elsewhere. *)
let phases r =
  match Json.member "phases" r with
  | Json.Null -> []
  | j ->
      List.map
        (fun p ->
          ( Json.(to_str (member "phase" p)),
            ( Json.(to_int (member "p99" p)),
              Json.(to_int (member "peak_unreclaimed" p)) ) ))
        (Json.to_list j)

(* (frame, count, p99) for every op.* latency entry of a result's embedded
   profile; [] when the document predates profiles. *)
let op_p99s r =
  match Json.member "profile" r with
  | Json.Null -> []
  | profile ->
      List.filter_map
        (fun l ->
          let frame = Json.(to_str (member "frame" l)) in
          if String.length frame >= 3 && String.sub frame 0 3 = "op." then
            Some (frame, Json.(to_int (member "p99" l)))
          else None)
        Json.(to_list (member "latencies" profile))

(* --- comparison ------------------------------------------------------------ *)

let rel_change ~baseline ~current =
  if baseline = 0.0 then 0.0 else (current -. baseline) /. baseline

let compare_results ?(thresholds = default_thresholds) ~baseline ~current () =
  let base = results baseline and cur = results current in
  List.concat_map
    (fun (((scheme, threads) as key), br) ->
      match List.assoc_opt key cur with
      | None ->
          [
            {
              scheme;
              threads;
              metric = "missing";
              baseline = throughput br;
              current = 0.0;
              change = -1.0;
              regressed = true;
            };
          ]
      | Some cr ->
          let bt = throughput br and ct = throughput cr in
          let tchange = rel_change ~baseline:bt ~current:ct in
          let tput =
            {
              scheme;
              threads;
              metric = "throughput";
              baseline = bt;
              current = ct;
              change = tchange;
              regressed = tchange < -.thresholds.max_throughput_drop;
            }
          in
          let host =
            match (host_steps_per_sec br, host_steps_per_sec cr) with
            | Some bh, Some ch when bh > 0.0 ->
                let change = rel_change ~baseline:bh ~current:ch in
                [
                  {
                    scheme;
                    threads;
                    metric = "host_steps_per_sec";
                    baseline = bh;
                    current = ch;
                    change;
                    regressed = change < -.thresholds.max_host_drop;
                  };
                ]
            | _ -> []  (* dimension absent on either side: nothing to gate *)
          in
          let cur_p99s = op_p99s cr in
          let lat =
            List.filter_map
              (fun (frame, bp99) ->
                match List.assoc_opt frame cur_p99s with
                | None -> None  (* frame absent now: nothing to gate *)
                | Some cp99 ->
                    let b = float_of_int bp99 and c = float_of_int cp99 in
                    let change = rel_change ~baseline:b ~current:c in
                    Some
                      {
                        scheme;
                        threads;
                        metric = "p99:" ^ frame;
                        baseline = b;
                        current = c;
                        change;
                        regressed =
                          bp99 > 0 && change > thresholds.max_p99_increase;
                      })
              (op_p99s br)
          in
          let cur_phases = phases cr in
          let phase =
            List.concat_map
              (fun (name, (bp99, bunr)) ->
                match List.assoc_opt name cur_phases with
                | None -> []  (* phase absent now: nothing to gate *)
                | Some (cp99, cunr) ->
                    let p99 =
                      let b = float_of_int bp99 and c = float_of_int cp99 in
                      let change = rel_change ~baseline:b ~current:c in
                      {
                        scheme;
                        threads;
                        metric = "phase_p99:" ^ name;
                        baseline = b;
                        current = c;
                        change;
                        regressed =
                          bp99 > 0 && change > thresholds.max_p99_increase;
                      }
                    in
                    let unr =
                      let b = float_of_int bunr and c = float_of_int cunr in
                      let change = rel_change ~baseline:b ~current:c in
                      {
                        scheme;
                        threads;
                        metric = "phase_unreclaimed:" ^ name;
                        baseline = b;
                        current = c;
                        change;
                        regressed =
                          bunr > 0
                          && change > thresholds.max_unreclaimed_increase;
                      }
                    in
                    [ p99; unr ])
              (phases br)
          in
          (tput :: host) @ lat @ phase)
    base

(* Relative gate *within* the current document: [scheme]'s throughput must
   stay within [max_gap] of [reference]'s at every thread count both ran.
   This is how a new scheme is gated before any committed baseline carries
   it (the absolute comparison above simply never sees a baseline-missing
   key): e.g. DEBRA's no-fault throughput must track EBR's, since its whole
   claim is robustness at epoch-level speed. *)
let compare_relative ?(max_gap = 0.10) ~current ~scheme ~reference () =
  let cur = results current in
  List.filter_map
    (fun ((s, threads), rr) ->
      if s <> reference then None
      else
        match List.assoc_opt (scheme, threads) cur with
        | None ->
            Some
              {
                scheme;
                threads;
                metric = "missing-vs:" ^ reference;
                baseline = throughput rr;
                current = 0.0;
                change = -1.0;
                regressed = true;
              }
        | Some sr ->
            let rt = throughput rr and st = throughput sr in
            let change = rel_change ~baseline:rt ~current:st in
            Some
              {
                scheme;
                threads;
                metric = "throughput-vs:" ^ reference;
                baseline = rt;
                current = st;
                change;
                regressed = change < -.max_gap;
              })
    cur

let failed verdicts = List.exists (fun v -> v.regressed) verdicts

let pp_verdict ppf v =
  Fmt.pf ppf "%s %-7s %2dT %-16s %10.3f -> %10.3f (%+.1f%%)"
    (if v.regressed then "FAIL" else "ok  ")
    v.scheme v.threads v.metric v.baseline v.current (100.0 *. v.change)
