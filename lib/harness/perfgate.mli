(** CI performance-regression gate over BENCH_E1.json-style documents.

    Compares a committed baseline against a fresh [bench --profile] run,
    configuration by configuration (scheme x threads), and produces one
    {!verdict} per checked metric: throughput, per-operation p99 latency
    (from the result's embedded profile), and presence (a configuration
    that vanished from the sweep is a regression).  The runs are
    deterministic simulations, so a threshold trip means the cost model
    really moved, not that the CI machine was noisy. *)

type thresholds = {
  max_throughput_drop : float;
      (** maximum tolerated relative throughput drop (default 0.10) *)
  max_p99_increase : float;
      (** maximum tolerated relative p99 latency increase (default 0.25) *)
  max_host_drop : float;
      (** maximum tolerated relative drop in host simulator speed
          (steps per host-second, default 0.50).  This dimension measures
          the machine running the simulator, not the simulation, so it is
          inherently noisy — the default is generous and CI runs it
          warn-only.  Checked only where both documents carry
          [host_steps_per_sec]. *)
  max_unreclaimed_increase : float;
      (** maximum tolerated relative increase in a service phase's peak
          unreclaimed nodes (default 0.25).  Checked per phase of a
          result's embedded ["phases"] array (BENCH_SERVICE.json), only
          where the baseline value is positive. *)
}

val default_thresholds : thresholds

type verdict = {
  scheme : string;
  threads : int;
  metric : string;  (** ["throughput"], ["p99:op.insert"], ..., ["missing"] *)
  baseline : float;
  current : float;
  change : float;  (** signed relative change vs baseline *)
  regressed : bool;
}

val compare_results :
  ?thresholds:thresholds ->
  baseline:Oamem_obs.Json.t ->
  current:Oamem_obs.Json.t ->
  unit ->
  verdict list
(** One verdict per (configuration, metric).  p99 checks only run where
    both documents embed a profile for the configuration — baselines
    predating [bench --profile] get throughput-only gating — and the
    [host_steps_per_sec] check only where both documents carry the field.
    Results carrying a ["phases"] array (service scenario documents) get
    two further verdicts per phase both documents ran:
    ["phase_p99:<name>"] against [max_p99_increase] and
    ["phase_unreclaimed:<name>"] against [max_unreclaimed_increase].
    A baseline configuration missing from [current] yields a single
    regressed ["missing"] verdict. *)

val compare_relative :
  ?max_gap:float ->
  current:Oamem_obs.Json.t ->
  scheme:string ->
  reference:string ->
  unit ->
  verdict list
(** Relative gate *within* [current]: one verdict per thread count the
    [reference] scheme ran, regressed when [scheme]'s throughput falls more
    than [max_gap] (default 0.10) below [reference]'s at the same thread
    count, or when the configuration is missing for [scheme].  Gates a new
    scheme against an established one before any committed baseline carries
    it — e.g. DEBRA's no-fault throughput must track EBR's. *)

val failed : verdict list -> bool
(** True iff any verdict regressed. *)

val pp_verdict : Format.formatter -> verdict -> unit
