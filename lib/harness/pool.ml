(* A deterministic parallel map over OCaml 5 domains.

   Every simulator instance hangs off its own [System.create] — there is
   no module-level mutable state anywhere in the library (see DESIGN.md,
   "All state hangs off the instance") — so running independent jobs on
   separate domains needs no locking beyond the job counter.  Each worker
   claims job indices from an [Atomic], runs the job, and stores the
   result in its own slot of the result array; [Domain.join] establishes
   the happens-before that publishes every slot to the caller.  Results
   are read back in input order, which is what makes sweep output
   byte-identical across [-j N]. *)

let run_one f arr out i =
  out.(i) <-
    Some (try Ok (f arr.(i)) with e -> Error (Printexc.to_string e))

let map ~jobs f items =
  let arr = Array.of_list items in
  let n = Array.length arr in
  let out = Array.make n None in
  (if jobs <= 1 || n <= 1 then
     for i = 0 to n - 1 do
       run_one f arr out i
     done
   else begin
     let next = Atomic.make 0 in
     let worker () =
       let rec loop () =
         let i = Atomic.fetch_and_add next 1 in
         if i < n then begin
           run_one f arr out i;
           loop ()
         end
       in
       loop ()
     in
     let domains = List.init (min jobs n) (fun _ -> Domain.spawn worker) in
     List.iter Domain.join domains
   end);
  Array.to_list (Array.map Option.get out)

let map_exn ~jobs f items =
  let results = map ~jobs f items in
  List.mapi
    (fun i r ->
      match r with
      | Ok v -> v
      | Error msg -> failwith (Printf.sprintf "job %d failed: %s" i msg))
    results
