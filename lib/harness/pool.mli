(** The shared domain pool under {!Sweep}: a deterministic parallel [map]
    over OCaml 5 [Domain]s.

    Jobs are claimed from an atomic counter, each worker writes only its
    own result slots, and [Domain.join] publishes them to the caller —
    results always come back in input order, so callers can merge output
    deterministically regardless of the domain count. *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> ('b, string) result list
(** [map ~jobs f items]: apply [f] to every item on at most [jobs] worker
    domains ([jobs <= 1] runs inline on the calling domain).  A job that
    raises yields [Error (Printexc.to_string exn)]; the others still
    complete. *)

val map_exn : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** Like {!map} but raises [Failure] describing the first failed job
    (by its input index). *)
