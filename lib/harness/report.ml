(* Value-level reporting.

   A report is a [doc]: an ordered list of sections, free text, aligned
   tables, ASCII line charts and file artifacts.  Constructors are pure and
   rendering is a separate step, so experiment runs can execute on worker
   domains and hand their docs back to a coordinator that renders them in
   canonical job order — the merged output is byte-identical to a
   sequential run.  Artifacts (CSV dumps, JSON curves, traces) are also
   values: worker domains never open files; [write_artifacts] does, on the
   coordinating domain. *)

module Json = Oamem_obs.Json

type table = { header : string list; rows : string list list }

type chart = {
  width : int;
  height : int;
  title : string;
  xlabel : string;
  ylabel : string;
  xs : int list;
  series : (string * float list) list;
}

type artifact = { filename : string; in_dir : bool; content : string }

type item =
  | Section of string
  | Text of string
  | Table of table
  | Chart of chart
  | Artifact of artifact

type doc = item list

(* --- constructors ----------------------------------------------------------- *)

let section title = Section title
let text s = Text s
let textf fmt = Printf.ksprintf (fun s -> Text s) fmt
let table ~header rows = Table { header; rows }

let chart ?(width = 64) ?(height = 16) ~title ~xlabel ~ylabel ~xs series =
  Chart { width; height; title; xlabel; ylabel; xs; series }

let artifact ?(in_dir = true) ~filename content =
  Artifact { filename; in_dir; content }

let csv ~filename ~header rows =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (String.concat "," header);
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (String.concat "," row);
      Buffer.add_char buf '\n')
    rows;
  artifact ~filename (Buffer.contents buf)

let json_artifact ?in_dir ~filename j =
  artifact ?in_dir ~filename (Json.to_string j ^ "\n")

(* --- rendering -------------------------------------------------------------- *)

let render_table buf { header; rows } =
  let fprintf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let ncols = List.length header in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  measure header;
  List.iter measure rows;
  let print_row row =
    List.iteri
      (fun i cell -> fprintf "%s%s  " cell (String.make (widths.(i) - String.length cell) ' '))
      row;
    fprintf "\n"
  in
  print_row header;
  List.iteri (fun i w -> ignore i; fprintf "%s  " (String.make w '-')) (Array.to_list widths);
  fprintf "\n";
  List.iter print_row rows

(* Plot series of (x, y) points on a character grid; each series gets a
   letter.  X positions are treated as ordinal (evenly spaced), matching the
   paper's thread-count axes. *)
let render_chart buf { width; height; title; xlabel; ylabel; xs; series } =
  let fprintf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let nx = List.length xs in
  if nx = 0 || series = [] then ()
  else begin
    let ymax =
      List.fold_left
        (fun acc (_, ys) -> List.fold_left max acc ys)
        1e-9 series
    in
    let grid = Array.make_matrix height width ' ' in
    let col_of i = if nx = 1 then 0 else i * (width - 1) / (nx - 1) in
    let row_of y =
      let r = int_of_float (y /. ymax *. float_of_int (height - 1)) in
      height - 1 - max 0 (min (height - 1) r)
    in
    List.iteri
      (fun si (_, ys) ->
        let letter = Char.chr (Char.code 'A' + (si mod 26)) in
        let pts = List.mapi (fun i y -> (col_of i, row_of y)) ys in
        (* draw segments between consecutive points *)
        let rec draw = function
          | (c0, r0) :: ((c1, r1) :: _ as rest) ->
              let steps = max 1 (c1 - c0) in
              for s = 0 to steps do
                let c = c0 + (s * (c1 - c0) / steps) in
                let r = r0 + (s * (r1 - r0) / steps) in
                if grid.(r).(c) = ' ' || s = 0 then grid.(r).(c) <- letter
              done;
              draw rest
          | [ (c, r) ] -> grid.(r).(c) <- letter
          | [] -> ()
        in
        draw pts)
      series;
    fprintf "\n  %s\n" title;
    fprintf "  %s (max %.3f)\n" ylabel ymax;
    Array.iter (fun row -> fprintf "  |%s|\n" (String.init width (Array.get row))) grid;
    fprintf "  +%s+\n" (String.make width '-');
    let xs_str = List.map string_of_int xs in
    fprintf "   %s: %s\n" xlabel (String.concat " " xs_str);
    List.iteri
      (fun si (name, _) ->
        fprintf "   %c = %s\n" (Char.chr (Char.code 'A' + (si mod 26))) name)
      series;
    fprintf "\n"
  end

let render_item buf = function
  | Section title ->
      let bar = String.make (String.length title + 4) '=' in
      Buffer.add_string buf (Printf.sprintf "\n%s\n= %s =\n%s\n" bar title bar)
  | Text s -> Buffer.add_string buf s
  | Table t -> render_table buf t
  | Chart c -> render_chart buf c
  | Artifact _ -> ()

let to_string doc =
  let buf = Buffer.create 4096 in
  List.iter (render_item buf) doc;
  Buffer.contents buf

let render oc doc = output_string oc (to_string doc)

(* --- artifacts -------------------------------------------------------------- *)

let artifacts doc =
  List.filter_map (function Artifact a -> Some a | _ -> None) doc

let write_artifacts ?dir doc =
  let mkdir_p d =
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  in
  List.filter_map
    (fun a ->
      let path =
        if a.in_dir then
          match dir with
          | None -> None  (* no artifact dir requested: drop the CSV dump *)
          | Some d ->
              mkdir_p d;
              Some (Filename.concat d a.filename)
        else Some a.filename
      in
      Option.map
        (fun path ->
          let oc = open_out path in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () -> output_string oc a.content);
          path)
        path)
    (artifacts doc)

(* --- JSON export ------------------------------------------------------------- *)

let to_json doc =
  let item_json = function
    | Section title ->
        Json.Obj [ ("kind", Json.String "section"); ("title", Json.String title) ]
    | Text s -> Json.Obj [ ("kind", Json.String "text"); ("text", Json.String s) ]
    | Table { header; rows } ->
        Json.Obj
          [
            ("kind", Json.String "table");
            ("header", Json.List (List.map (fun c -> Json.String c) header));
            ( "rows",
              Json.List
                (List.map
                   (fun row ->
                     Json.List (List.map (fun c -> Json.String c) row))
                   rows) );
          ]
    | Chart { title; xlabel; ylabel; xs; series; _ } ->
        Json.Obj
          [
            ("kind", Json.String "chart");
            ("title", Json.String title);
            ("xlabel", Json.String xlabel);
            ("ylabel", Json.String ylabel);
            ("xs", Json.List (List.map (fun x -> Json.Int x) xs));
            ( "series",
              Json.List
                (List.map
                   (fun (name, ys) ->
                     Json.Obj
                       [
                         ("name", Json.String name);
                         ( "ys",
                           Json.List (List.map (fun y -> Json.Float y) ys) );
                       ])
                   series) );
          ]
    | Artifact { filename; in_dir; _ } ->
        Json.Obj
          [
            ("kind", Json.String "artifact");
            ("filename", Json.String filename);
            ("in_dir", Json.Bool in_dir);
          ]
  in
  Json.List (List.map item_json doc)
