(** Value-level reporting: a report is a {!doc} — an ordered list of
    sections, free text, aligned tables, ASCII line charts and file
    artifacts — built by pure constructors and rendered later.

    Experiments return docs instead of printing (see {!Experiments.t}), so
    independent configurations can run on separate domains and the
    coordinator can merge their output deterministically: rendering a list
    of docs in canonical job order is byte-identical no matter how many
    domains produced them ({!Sweep}). *)

type table = { header : string list; rows : string list list }

type chart = {
  width : int;
  height : int;
  title : string;
  xlabel : string;
  ylabel : string;
  xs : int list;  (** ordinal x positions (thread counts) *)
  series : (string * float list) list;  (** one letter per series *)
}

(** A file the report wants written as a side output (CSV dump, JSON
    garbage curve, Chrome trace).  Held as a value so worker domains never
    touch the filesystem; the coordinator writes artifacts in canonical
    order via {!write_artifacts}. *)
type artifact = {
  filename : string;
  in_dir : bool;
      (** [true]: relative to the artifact directory (the [--csv] dir) and
          written only when one is given; [false]: an exact path the user
          asked for (e.g. [--trace FILE]), always written *)
  content : string;
}

type item =
  | Section of string
  | Text of string  (** verbatim, including its own newlines *)
  | Table of table
  | Chart of chart
  | Artifact of artifact

type doc = item list

(** {2 Constructors} *)

val section : string -> item
val text : string -> item

val textf : ('a, unit, string, item) format4 -> 'a
(** [textf fmt ...] is [text (Printf.sprintf fmt ...)]. *)

val table : header:string list -> string list list -> item

val chart :
  ?width:int ->
  ?height:int ->
  title:string ->
  xlabel:string ->
  ylabel:string ->
  xs:int list ->
  (string * float list) list ->
  item

val csv : filename:string -> header:string list -> string list list -> item
(** A CSV artifact destined for the artifact directory. *)

val artifact : ?in_dir:bool -> filename:string -> string -> item
(** Raw artifact; [in_dir] defaults to [true]. *)

val json_artifact :
  ?in_dir:bool -> filename:string -> Oamem_obs.Json.t -> item

(** {2 Rendering} *)

val render_item : Buffer.t -> item -> unit
(** Artifacts render nothing — they only carry file content. *)

val to_string : doc -> string

val render : out_channel -> doc -> unit
(** [render oc doc] writes the doc's textual form to [oc]; identical to
    [output_string oc (to_string doc)]. *)

val artifacts : doc -> artifact list

val write_artifacts : ?dir:string -> doc -> string list
(** Write the doc's artifacts and return the paths written: [in_dir]
    artifacts go under [dir] (created if missing; skipped when no [dir] is
    given — the [--csv] gating), exact-path artifacts are always written. *)

val to_json : doc -> Oamem_obs.Json.t
(** Structural JSON export of the doc (sections, tables, charts and
    artifact names — not artifact contents). *)
