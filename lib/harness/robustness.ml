(* Robustness runs: garbage growth under a faulty thread.

   One run drives [workers] simulated threads over a hash set with an
   update-only workload while a dedicated monitor thread samples the
   scheme's retired-but-unreclaimed node count over simulated time.  In the
   [Stall] variant, thread 0 is suspended mid-operation (at its
   [stall_at_yield]-th yield) for longer than the whole run; in the [Crash]
   variant it is fail-stopped at the same point and never returns.

   The point is the schemes' robustness contrast: EBR cannot advance its
   epoch past a thread parked inside an operation, so every retirement
   after the stall accumulates — garbage grows linearly with the work the
   healthy threads do.  Hazard pointers and the optimistic-access schemes
   reclaim independently of the stalled thread (it pins at most its own
   protected nodes / forces at most one extra limbo round), so their
   garbage stays bounded by a constant independent of the run length.  IBR
   sits in between: the stalled thread pins only nodes whose lifetime
   overlaps its fixed reservation interval — bounded by what was live at
   the stall.  NR frees nothing in either variant (leak by design).

   DEBRA closes EBR's gap: past a patience bound the advancing threads
   neutralize the laggard (post it a signal that unwinds it to its
   operation checkpoint), void its stale announce and keep the epoch — and
   reclamation — moving.  A crashed laggard additionally has its limbo
   bags seized.  With [neutralize = false] DEBRA degenerates to EBR and
   the garbage curve goes unbounded again — the ablation E13 reports. *)

open Oamem_engine
open Oamem_core
open Oamem_lockfree
open Oamem_reclaim
open Oamem_faults

type fault = No_fault | Stall | Crash

let fault_name = function
  | No_fault -> "none"
  | Stall -> "stall"
  | Crash -> "crash"

type spec = {
  scheme : string;
  workers : int;  (** workload threads; the monitor adds one more slot *)
  initial : int;
  horizon_cycles : int;
  stall_at_yield : int;
  sample_interval : int;
  threshold : int;
  seed : int;
  fault : fault;  (** what happens to thread 0 *)
  neutralize : bool;  (** let neutralizing schemes post signals *)
  sanitize : bool;  (** run under the memory-lifecycle sanitizer *)
}

let default_spec =
  {
    scheme = "ebr";
    workers = 4;
    initial = 256;
    horizon_cycles = 400_000;
    stall_at_yield = 2_000;
    sample_interval = 10_000;
    threshold = 32;
    seed = 7;
    fault = Stall;
    neutralize = true;
    sanitize = false;
  }

type result = {
  spec : spec;
  samples : Monitor.sample list;
  max_unreclaimed : int;
  final_unreclaimed : int;
  final_pinned : int;
      (** final unreclaimed minus nodes seized from dead threads *)
  ops : int;  (** completed by the healthy workers *)
  stalls_injected : int;
  crashed : bool;  (** thread 0 was fail-stopped *)
  neutralized : int;  (** signals delivered, summed over all threads *)
  seized : int;  (** limbo nodes taken over from dead threads' bags *)
}

(* Garbage bound the robust schemes must respect under a stalled thread:
   each thread's limbo can hold a threshold's worth plus the in-flight
   retirements of one reclamation round. *)
let robust_bound spec = (spec.workers + 1) * (spec.threshold + 16)

let run spec =
  let sys =
    System.create
      (System.Config.make
         ~nthreads:(spec.workers + 1)
         ~scheme:spec.scheme
         ~max_pages:(1 lsl 16)
         ~sanitize:spec.sanitize
         (* Small superblocks: with the default 64-page geometry a fresh
            node-class superblock carves ~16K free-list links, parking the
            first allocating threads for longer than the whole horizon. *)
         ~alloc_cfg:
           {
             Oamem_lrmalloc.Config.default with
             Oamem_lrmalloc.Config.sb_pages = 4;
             cache_blocks = 64;
           }
         ~scheme_cfg:
           {
             Scheme.default_config with
             Scheme.threshold = spec.threshold;
             slots_per_thread = Hm_list.slots_needed;
             pool_nodes =
               spec.initial + (8 * (spec.workers + 1) * spec.threshold);
             node_words = Node.words;
             neutralize = spec.neutralize;
           }
         ())
  in
  let workload =
    Workload.make ~mix:Workload.update_only ~initial:spec.initial ()
  in
  let setup_ctx = Engine.external_ctx () in
  let h = System.hash_set sys setup_ctx ~expected_size:spec.initial in
  Michael_hash.prefill h setup_ctx (Workload.prefill_keys workload);
  System.reset_measurement sys;
  (match spec.fault with
  | No_fault -> ()
  | Stall ->
      System.set_fault_plan sys
        (Scenario.stall_one ~tid:0 ~at_yield:spec.stall_at_yield
           ~cycles:(4 * spec.horizon_cycles))
  | Crash ->
      System.set_fault_plan sys
        (Scenario.crash_one ~tid:0 ~at_yield:spec.stall_at_yield));
  let ops = Array.make spec.workers 0 in
  let op_base = (Engine.cost_model (System.engine sys)).Cost_model.op_base in
  for tid = 0 to spec.workers - 1 do
    System.spawn sys ~tid (fun ctx ->
        let rng = Prng.create (spec.seed + (1000 * tid)) in
        while Engine.Mem.now ctx < spec.horizon_cycles do
          Engine.Mem.charge ctx op_base;
          (match Workload.next_op workload rng with
          | Workload.Search k -> ignore (Michael_hash.contains h ctx k)
          | Workload.Insert k -> ignore (Michael_hash.insert h ctx k)
          | Workload.Delete k -> ignore (Michael_hash.delete h ctx k));
          ops.(tid) <- ops.(tid) + 1
        done)
  done;
  let monitor = Monitor.create ~node_words:Node.words () in
  Monitor.spawn monitor sys ~tid:spec.workers ~horizon:spec.horizon_cycles
    ~interval:spec.sample_interval;
  System.run sys;
  (* Access-level sanitizer verdict for the run.  The quiescence (leak)
     check is only meaningful without a crash: a fail-stopped thread's
     un-seized limbo contents are expected leaks, not violations. *)
  if spec.sanitize then System.check_sanitizer sys;
  let engine = System.engine sys in
  let fs0 = Engine.fault_stats engine ~tid:0 in
  let neutralized = ref 0 in
  for tid = 0 to spec.workers do
    neutralized :=
      !neutralized + (Engine.fault_stats engine ~tid).Engine.neutralized
  done;
  let ss = (System.scheme sys).Scheme.stats in
  {
    spec;
    samples = Monitor.samples monitor;
    max_unreclaimed = Monitor.max_unreclaimed monitor;
    final_unreclaimed = Monitor.final_unreclaimed monitor;
    final_pinned = Scheme.pinned ss;
    ops = Array.fold_left ( + ) 0 ops;
    stalls_injected = fs0.Engine.stalls_injected;
    crashed = fs0.Engine.crashed;
    neutralized = !neutralized;
    seized = ss.Scheme.seized;
  }

(* Faulted run ([Stall] when the spec says [No_fault]) and healthy control
   of the same spec. *)
let run_pair spec =
  let fault = if spec.fault = No_fault then Stall else spec.fault in
  (run { spec with fault }, run { spec with fault = No_fault })
