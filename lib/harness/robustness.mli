(** Robustness runs: garbage growth under a stalled thread.

    EBR garbage grows with the healthy threads' work once one thread is
    parked mid-operation; hazard pointers and the optimistic-access schemes
    keep it bounded; IBR is bounded by what was live at the stall; NR leaks
    in both variants. *)

open Oamem_faults

type spec = {
  scheme : string;
  workers : int;  (** workload threads; the monitor adds one more slot *)
  initial : int;
  horizon_cycles : int;
  stall_at_yield : int;  (** thread 0 stalls at this (1-based) yield *)
  sample_interval : int;  (** cycles between garbage samples *)
  threshold : int;
  seed : int;
  stall : bool;  (** inject the stall, or run the healthy control *)
}

val default_spec : spec

type result = {
  spec : spec;
  samples : Monitor.sample list;
  max_unreclaimed : int;
  final_unreclaimed : int;
  ops : int;  (** completed by the healthy workers *)
  stalls_injected : int;
}

val robust_bound : spec -> int
(** Unreclaimed-node bound the stall-robust schemes must respect. *)

val run : spec -> result
(** Deterministic under a fixed [seed] ([Min_clock]). *)

val run_pair : spec -> result * result
(** [(stalled, control)] of the same spec. *)
