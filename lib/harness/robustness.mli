(** Robustness runs: garbage growth under a stalled or crashed thread.

    EBR garbage grows with the healthy threads' work once one thread is
    parked mid-operation; hazard pointers and the optimistic-access schemes
    keep it bounded; IBR is bounded by what was live at the stall; NR leaks
    in both variants.  DEBRA neutralizes the laggard past a patience bound
    (and seizes a crashed thread's limbo bags), keeping its garbage bounded
    where EBR's is not. *)

open Oamem_faults

type fault = No_fault | Stall | Crash

val fault_name : fault -> string

type spec = {
  scheme : string;
  workers : int;  (** workload threads; the monitor adds one more slot *)
  initial : int;
  horizon_cycles : int;
  stall_at_yield : int;  (** thread 0 faults at this (1-based) yield *)
  sample_interval : int;  (** cycles between garbage samples *)
  threshold : int;
  seed : int;
  fault : fault;  (** what happens to thread 0 *)
  neutralize : bool;  (** let neutralizing schemes post signals *)
  sanitize : bool;  (** run under the memory-lifecycle sanitizer *)
}

val default_spec : spec

type result = {
  spec : spec;
  samples : Monitor.sample list;
  max_unreclaimed : int;
  final_unreclaimed : int;
  final_pinned : int;
      (** final unreclaimed minus nodes seized from dead threads' bags —
          the garbage no live thread can ever free *)
  ops : int;  (** completed by the healthy workers *)
  stalls_injected : int;
  crashed : bool;  (** thread 0 was fail-stopped *)
  neutralized : int;  (** signals delivered, summed over all threads *)
  seized : int;  (** limbo nodes taken over from dead threads' bags *)
}

val robust_bound : spec -> int
(** Unreclaimed-node bound the stall-robust schemes must respect. *)

val run : spec -> result
(** Deterministic under a fixed [seed] ([Min_clock]). *)

val run_pair : spec -> result * result
(** [(faulted, control)] of the same spec; a [No_fault] spec is promoted to
    [Stall] for the faulted leg. *)
