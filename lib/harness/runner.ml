(* One benchmark run: build a system, prefill the structure, drive T
   simulated threads for a fixed simulated-time horizon, report throughput
   and the per-subsystem statistics the analysis sections need. *)

open Oamem_engine
open Oamem_core
open Oamem_lockfree
open Oamem_reclaim
open Oamem_lrmalloc

type structure = List_set | Hash_set

let structure_name = function List_set -> "list" | Hash_set -> "hash"

type spec = {
  scheme : string;
  threads : int;
  structure : structure;
  workload : Workload.t;
  horizon_cycles : int;
  warmup_ops : int;
      (* operations run before the measured window so the structure reaches
         its steady-state memory layout; 0 = auto (3x the initial size,
         enough to churn through every prefilled node) *)
  threshold : int;
  remap : Config.remap_strategy;
  sb_pages : int;
  seed : int;
  hazard_padded : bool;  (* cache-line padding of hazard slots (ablation) *)
  cache_cfg : Hierarchy.config option;  (* cache-geometry sensitivity *)
  trace : bool;  (* record events into the system trace during the run *)
  profile : bool;  (* cycle-attribution profiling during the run *)
  fused : bool;
      (* engine inline fast path + vmem translation cache; off = the
         pre-fusion slow path (the host-throughput baseline and the
         differential tests — simulated results are identical either way) *)
  runahead : bool;
      (* run-ahead parking tier of the fused path; only meaningful with
         [fused] — kept separate so the differential tests can compare
         tenure-only against tenure + parking *)
}

let default_spec =
  {
    scheme = "oa-ver";
    threads = 4;
    structure = Hash_set;
    workload = Workload.make ~mix:Workload.update_only ~initial:1000 ();
    horizon_cycles = 2_000_000;
    warmup_ops = 0;
    threshold = 64;
    remap = Config.Madvise;
    sb_pages = 64;
    seed = 7;
    hazard_padded = true;
    cache_cfg = None;
    trace = false;
    profile = false;
    fused = true;
    runahead = true;
  }

type result = {
  spec : spec;
  ops : int;
  searches : int;
  inserts : int;
  deletes : int;
  sim_seconds : float;
  throughput_mops : float;
  host_seconds : float;
      (* host wall-clock spent inside the measured phase *)
  host_steps : int;
      (* simulated yield points executed during the measured phase *)
  host_steps_per_sec : float;
  metrics : Oamem_obs.Metrics.snapshot;
      (* one named view over every subsystem's counters *)
  trace : Oamem_obs.Trace.t;
      (* the system trace; holds the measured window's events when
         [spec.trace] was set, and is empty (and disabled) otherwise *)
  profile : Oamem_obs.Profile.t;
      (* the system profiler; holds the measured window's spans, latency
         histograms and contention table when [spec.profile] was set *)
}

(* Generic view over the two structures. *)
type target = {
  insert : Engine.ctx -> int -> bool;
  delete : Engine.ctx -> int -> bool;
  contains : Engine.ctx -> int -> bool;
}

let make_system spec =
  (* The original OA method needs its fixed pool sized for the structure
     plus in-flight retirements (§5.1: the pool is created up front). *)
  let pool_nodes =
    spec.workload.Workload.initial
    + max 512 (2 * spec.threads * spec.threshold)
  in
  System.create
    (System.Config.make ~nthreads:spec.threads ~scheme:spec.scheme
       ?cache_cfg:spec.cache_cfg ~max_pages:(1 lsl 16)
       ~alloc_cfg:
         {
           Config.default with
           Config.sb_pages = spec.sb_pages;
           remap = spec.remap;
         }
       ~scheme_cfg:
         {
           Scheme.threshold = spec.threshold;
           slots_per_thread = Hm_list.slots_needed;
           pool_nodes;
           node_words = Node.words;
           hazard_padded = spec.hazard_padded;
           neutralize = true;
         }
       ~trace:spec.trace ~profile:spec.profile ())

let apply_fusion sys spec =
  Engine.set_fused (System.engine sys) spec.fused;
  Engine.set_runahead (System.engine sys) (spec.fused && spec.runahead);
  Oamem_vmem.Vmem.set_translation_cache (System.vmem sys) spec.fused

let build_target sys spec =
  let setup_ctx = Engine.external_ctx () in
  let keys = Workload.prefill_keys spec.workload in
  match spec.structure with
  | List_set ->
      let l = System.list_set sys setup_ctx in
      Hm_list.build_sorted l setup_ctx keys;
      {
        insert = Hm_list.insert l;
        delete = Hm_list.delete l;
        contains = Hm_list.contains l;
      }
  | Hash_set ->
      let h =
        System.hash_set sys setup_ctx
          ~expected_size:spec.workload.Workload.initial
      in
      Michael_hash.prefill h setup_ctx keys;
      {
        insert = Michael_hash.insert h;
        delete = Michael_hash.delete h;
        contains = Michael_hash.contains h;
      }

(* One workload phase.  [stop] decides when each thread leaves the loop:
   after its clock passes a horizon (measured window) or once a shared op
   quota is consumed (warmup). *)
type stop = Until_cycles of int | Until_ops of int

let run_phase sys spec target ~stop ~searches ~inserts ~deletes ~seed_base =
  let op_base = (Engine.cost_model (System.engine sys)).Cost_model.op_base in
  let quota = ref (match stop with Until_ops n -> n | Until_cycles _ -> 0) in
  let keep_going ctx =
    match stop with
    | Until_cycles horizon -> Engine.Mem.now ctx < horizon
    | Until_ops _ ->
        if !quota > 0 then begin
          decr quota;
          true
        end
        else false
  in
  for tid = 0 to spec.threads - 1 do
    System.spawn sys ~tid (fun ctx ->
        let rng = Prng.create (seed_base + (1000 * tid)) in
        while keep_going ctx do
          Engine.Mem.charge ctx op_base;
          (match Workload.next_op spec.workload rng with
          | Workload.Search k ->
              ignore (target.contains ctx k);
              searches.(tid) <- searches.(tid) + 1
          | Workload.Insert k ->
              ignore (target.insert ctx k);
              inserts.(tid) <- inserts.(tid) + 1
          | Workload.Delete k ->
              ignore (target.delete ctx k);
              deletes.(tid) <- deletes.(tid) + 1)
        done)
  done;
  System.run sys

let run spec =
  let sys = make_system spec in
  apply_fusion sys spec;
  let target = build_target sys spec in
  System.reset_measurement sys;
  let searches = Array.make spec.threads 0
  and inserts = Array.make spec.threads 0
  and deletes = Array.make spec.threads 0 in
  (* Warmup: churn until the structure reaches its steady-state memory
     layout (freed-and-reused nodes, carved superblocks, warm caches and
     reclamation in flight), then reset clocks and counters.  Lists need to
     churn through every prefilled node (their locality is the story of
     Fig. 4); hash chains are ~1 node, so a bounded warmup reaches steady
     state much sooner. *)
  let warmup_ops =
    if spec.warmup_ops > 0 then spec.warmup_ops
    else
      match spec.structure with
      | List_set -> 3 * spec.workload.Workload.initial
      | Hash_set -> min (3 * spec.workload.Workload.initial) 30_000
  in
  if warmup_ops > 0 then begin
    run_phase sys spec target ~stop:(Until_ops warmup_ops) ~searches ~inserts
      ~deletes ~seed_base:(spec.seed + 17);
    (* resets every metrics counter (scheme stats included) and drops
       warmup trace events *)
    System.reset_measurement sys;
    Array.fill searches 0 spec.threads 0;
    Array.fill inserts 0 spec.threads 0;
    Array.fill deletes 0 spec.threads 0
  end;
  let eng = System.engine sys in
  let steps_before = Engine.steps eng in
  let host_t0 = Unix.gettimeofday () in
  run_phase sys spec target ~stop:(Until_cycles spec.horizon_cycles) ~searches
    ~inserts ~deletes ~seed_base:spec.seed;
  let host_seconds = Unix.gettimeofday () -. host_t0 in
  let host_steps = Engine.steps eng - steps_before in
  let total a = Array.fold_left ( + ) 0 a in
  let ops = total searches + total inserts + total deletes in
  let sim_seconds = Engine.elapsed_seconds eng in
  {
    spec;
    ops;
    searches = total searches;
    inserts = total inserts;
    deletes = total deletes;
    sim_seconds;
    throughput_mops = float_of_int ops /. sim_seconds /. 1e6;
    host_seconds;
    host_steps;
    host_steps_per_sec =
      (if host_seconds > 0. then float_of_int host_steps /. host_seconds
       else 0.);
    metrics = System.metrics sys;
    trace = System.trace sys;
    profile = System.profile sys;
  }

let pp_result ppf r =
  Fmt.pf ppf "%-7s %2dT %s %s: %7.3f Mops/s (%d ops in %.2f sim-ms)"
    r.spec.scheme r.spec.threads
    (structure_name r.spec.structure)
    (Workload.mix_name r.spec.workload.Workload.mix)
    r.throughput_mops r.ops (r.sim_seconds *. 1e3)

(* Aggregate several independent trials (different seeds) of one spec.
   Lists are noisy at small scale; figures use the median throughput. *)
type summary = {
  trials : result list;
  median_mops : float;
  min_mops : float;
  max_mops : float;
}

let run_trials ?(trials = 1) spec =
  let results =
    List.init (max 1 trials) (fun i ->
        run { spec with seed = spec.seed + (7919 * i) })
  in
  let sorted =
    List.sort compare (List.map (fun r -> r.throughput_mops) results)
  in
  let n = List.length sorted in
  {
    trials = results;
    median_mops = List.nth sorted (n / 2);
    min_mops = List.nth sorted 0;
    max_mops = List.nth sorted (n - 1);
  }
