(** One benchmark run: build a system, prefill the structure, churn to a
    steady-state memory layout (warmup), then drive T simulated threads for
    a fixed simulated-time horizon and report throughput plus per-subsystem
    statistics. *)

open Oamem_engine
open Oamem_lrmalloc

type structure = List_set | Hash_set

val structure_name : structure -> string

type spec = {
  scheme : string;
  threads : int;
  structure : structure;
  workload : Workload.t;
  horizon_cycles : int;
  warmup_ops : int;
      (** operations before the measured window; 0 = auto (3x initial) *)
  threshold : int;
  remap : Config.remap_strategy;
  sb_pages : int;
  seed : int;
  hazard_padded : bool;
  cache_cfg : Hierarchy.config option;
  trace : bool;  (** record events into the system trace during the run *)
  profile : bool;  (** cycle-attribution profiling during the run *)
  fused : bool;
      (** engine inline fast path + vmem translation cache (default [true]);
          [false] runs the pre-fusion slow path — simulated results are
          identical either way, only host speed differs *)
  runahead : bool;
      (** run-ahead parking tier of the fused path (default [true]); only
          meaningful with [fused] — separate so differentials can compare
          tenure-only against tenure + parking *)
}

val default_spec : spec

type result = {
  spec : spec;
  ops : int;
  searches : int;
  inserts : int;
  deletes : int;
  sim_seconds : float;
  throughput_mops : float;
  host_seconds : float;  (** host wall-clock of the measured phase *)
  host_steps : int;  (** simulated yield points in the measured phase *)
  host_steps_per_sec : float;
      (** simulated steps per host second — the simulator-speed number the
          host-throughput gate watches *)
  metrics : Oamem_obs.Metrics.snapshot;
      (** one named view over every subsystem's counters (measured window
          only — warmup is reset away) *)
  trace : Oamem_obs.Trace.t;
      (** the system trace: the measured window's events when [spec.trace]
          was set, empty and disabled otherwise *)
  profile : Oamem_obs.Profile.t;
      (** the system profiler: the measured window's spans, latency
          histograms and contention table when [spec.profile] was set,
          empty and disabled otherwise *)
}

type target = {
  insert : Engine.ctx -> int -> bool;
  delete : Engine.ctx -> int -> bool;
  contains : Engine.ctx -> int -> bool;
}

val make_system : spec -> Oamem_core.System.t
val build_target : Oamem_core.System.t -> spec -> target
val run : spec -> result
val pp_result : Format.formatter -> result -> unit

type summary = {
  trials : result list;
  median_mops : float;
  min_mops : float;
  max_mops : float;
}

val run_trials : ?trials:int -> spec -> summary
(** Independent trials with derived seeds; figures use the median. *)
