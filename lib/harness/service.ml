(* E14: a Zipfian-key session store under scripted, phase-shifting traffic.

   One system lives through every phase (structures, caches and superblock
   layout carry over — the point is how each reclamation scheme behaves
   when the traffic shape moves under it), with a Timeline recording
   windowed and per-phase behaviour.  Thread slot [threads] is a dedicated
   gauge sampler in the Monitor style: it charges only its sampling
   interval, so under Min_clock its samples interleave deterministically
   with the workload.

   The memory-pressure wave installs a live-frame quota relative to the
   frame count at the phase boundary (so the script is independent of the
   absolute store size) and removes it when the phase ends; allocations
   beyond the quota fault into lrmalloc's pressure-recovery path. *)

open Oamem_engine
open Oamem_core
open Oamem_lockfree
open Oamem_reclaim
open Oamem_lrmalloc
module Vmem = Oamem_vmem.Vmem
module Obs = Oamem_obs
module Timeline = Obs.Timeline
module Profile = Obs.Profile

type phase_spec = {
  pname : string;
  mix : Workload.mix;
  distribution : Workload.distribution;
  horizon : int;
  quota_headroom : int option;
}

let default_phases ~horizon_cycles =
  let part pct = max 1 (horizon_cycles * pct / 100) in
  [
    {
      pname = "steady";
      mix = Workload.mix ~search:90 ~insert:5 ~delete:5;
      distribution = Workload.Zipf 0.8;
      horizon = part 30;
      quota_headroom = None;
    };
    {
      pname = "flash_crowd";
      mix = Workload.mix ~search:98 ~insert:1 ~delete:1;
      distribution = Workload.Zipf 1.2;
      horizon = part 20;
      quota_headroom = None;
    };
    {
      pname = "churn_storm";
      mix = Workload.update_only;
      distribution = Workload.Uniform;
      horizon = part 25;
      quota_headroom = None;
    };
    {
      pname = "pressure_wave";
      mix = Workload.mix ~search:10 ~insert:70 ~delete:20;
      distribution = Workload.Uniform;
      horizon = part 25;
      quota_headroom = Some 16;
    };
  ]

type spec = {
  scheme : string;
  threads : int;
  initial : int;
  window : int;
  sample_interval : int;
  seed : int;
  phases : phase_spec list;
}

let default_spec =
  {
    scheme = "oa-ver";
    threads = 4;
    initial = 2048;
    window = 10_000;
    sample_interval = 2_000;
    seed = 42;
    phases = default_phases ~horizon_cycles:200_000;
  }

type phase_stats = {
  phase : string;
  ops : int;
  p50 : int;
  p99 : int;
  max_cycles : int;
  restarts : int;
  warnings : int;
  neutralized : int;
  frames_released : int;
  peak_unreclaimed : int;
  pressure_recoveries : int;
}

type result = {
  rspec : spec;
  per_phase : phase_stats list;
  overall : phase_stats;
  throughput_mops : float;
  sim_seconds : float;
  host_seconds : float;
  metrics : Obs.Metrics.snapshot;
  timeline : Timeline.t;
  system : System.t;
}

let make_system spec =
  (* two extra engine slots: the gauge sampler and the pressure ballast *)
  let nthreads = spec.threads + 2 in
  let threshold = 64 in
  let pool_nodes = (2 * spec.initial) + max 512 (2 * nthreads * threshold) in
  System.create
    (System.Config.make ~nthreads ~scheme:spec.scheme ~max_pages:(1 lsl 16)
       (* small superblocks: the pressure wave's ballast rounds and the
          recovery's release granularity are a few pages each, so a bound
          quota recovers instead of dying on one 64-page carve *)
       ~alloc_cfg:{ Config.default with Config.sb_pages = 8 }
       ~scheme_cfg:
         {
           Scheme.threshold;
           slots_per_thread = Hm_list.slots_needed;
           pool_nodes;
           node_words = Node.words;
           hazard_padded = false;
           neutralize = true;
         }
       ~timeline:spec.window ())

(* The driver's "scheme.unreclaimed" gauge registers first; SLA views read
   its per-phase maximum by this id. *)
let gauge_unreclaimed = 0

let stats_of_agg ~phase ~pressure agg =
  let lat = Timeline.agg_latency_merged agg Profile.op_frames in
  let p q = match lat with None -> 0 | Some l -> Profile.percentile l q in
  {
    phase;
    ops = (match lat with None -> 0 | Some l -> l.Profile.count);
    p50 = p 0.50;
    p99 = p 0.99;
    max_cycles = (match lat with None -> 0 | Some l -> l.Profile.max_cycles);
    restarts = Timeline.agg_count agg Timeline.Restarts;
    warnings = Timeline.agg_count agg Timeline.Warnings;
    neutralized = Timeline.agg_count agg Timeline.Neutralized;
    frames_released = Timeline.agg_count agg Timeline.Frames_released;
    peak_unreclaimed =
      (match Timeline.agg_gauge agg gauge_unreclaimed with
      | Some (_, gmax) -> gmax
      | None -> 0);
    pressure_recoveries = pressure;
  }

(* Whole-run op latency: bucket-wise merge of the profiler's [op.*] frame
   histograms (the same data the BENCH baselines distil). *)
let merged_op_latency profile =
  let ops =
    List.filter
      (fun (l : Profile.latency) -> List.mem l.Profile.lframe Profile.op_frames)
      (Profile.latencies profile)
  in
  match ops with
  | [] -> None
  | first :: _ ->
      let merge_buckets a b =
        let tbl = Hashtbl.create 16 in
        List.iter
          (fun (le, n) ->
            Hashtbl.replace tbl le
              (n + Option.value (Hashtbl.find_opt tbl le) ~default:0))
          (a @ b);
        Hashtbl.fold (fun le n acc -> (le, n) :: acc) tbl []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      Some
        (List.fold_left
           (fun (acc : Profile.latency) (l : Profile.latency) ->
             {
               acc with
               Profile.count = acc.Profile.count + l.Profile.count;
               sum = acc.Profile.sum + l.Profile.sum;
               max_cycles = max acc.Profile.max_cycles l.Profile.max_cycles;
               buckets = merge_buckets acc.Profile.buckets l.Profile.buckets;
             })
           { first with Profile.count = 0; sum = 0; max_cycles = 0; buckets = [] }
           ops)

let run spec =
  if spec.phases = [] then invalid_arg "Service.run: no phases";
  let sys = make_system spec in
  let eng = System.engine sys in
  let vmem = System.vmem sys in
  let alloc = System.alloc sys in
  let heap = Lrmalloc.heap alloc in
  let sstats = (System.scheme sys).Scheme.stats in
  let tl = System.timeline sys in
  let g_unreclaimed = Timeline.register_gauge tl "scheme.unreclaimed" in
  let g_frames = Timeline.register_gauge tl "vmem.frames_live" in
  assert (g_unreclaimed = gauge_unreclaimed && g_frames = 1);
  let op_base = (Engine.cost_model eng).Cost_model.op_base in
  (* prefill keys depend only on (initial, universe) and are shared by
     every phase workload *)
  let churn_wl =
    Workload.make ~mix:Workload.update_only ~initial:spec.initial ()
  in
  let setup_ctx = Engine.external_ctx () in
  let store = System.hash_set sys setup_ctx ~expected_size:spec.initial in
  Michael_hash.prefill store setup_ctx (Workload.prefill_keys churn_wl);
  (* Warmup churn to a steady-state memory layout, then start measuring. *)
  let warmup_ops = min (3 * spec.initial) 30_000 in
  let quota = ref warmup_ops in
  for tid = 0 to spec.threads - 1 do
    System.spawn sys ~tid (fun ctx ->
        let rng = Prng.create (spec.seed + 17 + (1000 * tid)) in
        let keep_going () =
          if !quota > 0 then begin
            decr quota;
            true
          end
          else false
        in
        while keep_going () do
          Engine.Mem.charge ctx op_base;
          match Workload.next_op churn_wl rng with
          | Workload.Search k -> ignore (Michael_hash.contains store ctx k)
          | Workload.Insert k -> ignore (Michael_hash.insert store ctx k)
          | Workload.Delete k -> ignore (Michael_hash.delete store ctx k)
        done)
  done;
  System.run sys;
  System.reset_measurement sys;
  (* The scripted phases: one spawn generation per phase, cumulative
     horizons (reset_measurement zeroed the clocks; each phase's threads
     run until the shared simulated deadline). *)
  let ops_count = Array.make spec.threads 0 in
  let host_t0 = Unix.gettimeofday () in
  let pressure_per_phase = ref [] in
  let _ =
    List.fold_left
      (fun (k, t_start) ph ->
        let t_end = t_start + ph.horizon in
        Timeline.phase tl ~at:t_start ph.pname;
        let quota_installed =
          match ph.quota_headroom with
          | Some h ->
              Vmem.set_frame_quota vmem (Some (Vmem.frames_live vmem + h));
              true
          | None -> false
        in
        let recoveries0 = (Heap.stats heap).Heap.pressure_recoveries in
        let wl =
          Workload.make ~distribution:ph.distribution ~mix:ph.mix
            ~initial:spec.initial ()
        in
        let under_quota = ph.quota_headroom <> None in
        for tid = 0 to spec.threads - 1 do
          System.spawn sys ~tid (fun ctx ->
              let rng = Prng.create (spec.seed + (1000 * tid) + (7919 * k)) in
              let exec op =
                match op with
                | Workload.Search key ->
                    ignore (Michael_hash.contains store ctx key)
                | Workload.Insert key ->
                    ignore (Michael_hash.insert store ctx key)
                | Workload.Delete key ->
                    ignore (Michael_hash.delete store ctx key)
              in
              while Engine.Mem.now ctx < t_end do
                Engine.Mem.charge ctx op_base;
                let op = Workload.next_op wl rng in
                (* under a quota the request loop carries the allocator's
                   recovery net: a node write that faults past the cap
                   flushes-and-retries the whole (idempotent) operation,
                   like the Pressure experiment's touches *)
                if under_quota then
                  Lrmalloc.with_pressure_recovery alloc ctx (fun () ->
                      exec op)
                else exec op;
                ops_count.(tid) <- ops_count.(tid) + 1
              done)
        done;
        (* The sampler is an observer: it charges only its interval, so the
           unreclaimed/frames curves are a faithful simulated time series. *)
        System.spawn sys ~tid:spec.threads (fun ctx ->
            while Engine.Mem.now ctx < t_end do
              let now = Engine.Mem.now ctx in
              Timeline.sample_gauge tl ~at:now g_unreclaimed
                (Scheme.unreclaimed sstats);
              Timeline.sample_gauge tl ~at:now g_frames
                (Vmem.frames_live vmem);
              Engine.Mem.charge ctx spec.sample_interval;
              Engine.Mem.pause ctx
            done);
        (* Pressure ballast (quota phases): a co-tenant thread grabbing
           persistent memory in its own size classes, Pressure-experiment
           style — each round carves fresh superblocks and touches every
           block, so frame demand is real no matter how much slack the
           store's own superblocks hold.  Rounds free into the thread cache
           (resident but reclaimable), which is exactly what the recovery
           flush can give back.  The thread parks through non-quota phases
           so its clock tracks simulated time. *)
        System.spawn sys ~tid:(spec.threads + 1) (fun ctx ->
            if ph.quota_headroom <> None then begin
              (* equal 4-page rounds: once the quota binds, the frames a
                 recovery releases from round N's emptied superblocks cover
                 round N+1's demand, so the wave recovers instead of dying *)
              List.iter
                (fun (size, blocks) ->
                  let addrs =
                    List.init blocks (fun _ -> Lrmalloc.palloc alloc ctx size)
                  in
                  List.iter
                    (fun addr ->
                      Lrmalloc.with_pressure_recovery alloc ctx (fun () ->
                          Vmem.store vmem ctx addr (addr lxor 0x5a5a)))
                    addrs;
                  List.iter (Lrmalloc.free alloc ctx) addrs)
                [ (8, 256); (16, 128); (32, 64) ];
              Lrmalloc.with_pressure_recovery alloc ctx (fun () ->
                  Lrmalloc.flush_thread_cache alloc ctx)
            end;
            while Engine.Mem.now ctx < t_end do
              Engine.Mem.charge ctx spec.sample_interval;
              Engine.Mem.pause ctx
            done);
        System.run sys;
        if quota_installed then Vmem.set_frame_quota vmem None;
        let recovered =
          (Heap.stats heap).Heap.pressure_recoveries - recoveries0
        in
        pressure_per_phase := (ph.pname, recovered) :: !pressure_per_phase;
        (k + 1, t_end))
      (0, 0) spec.phases
  in
  let host_seconds = Unix.gettimeofday () -. host_t0 in
  (* per-phase pressure deltas, accumulated over re-marked phase names *)
  let pressure_of name =
    List.fold_left
      (fun acc (n, r) -> if String.equal n name then acc + r else acc)
      0 !pressure_per_phase
  in
  let phase_aggs = Timeline.phase_aggs tl in
  let per_phase =
    let seen = Hashtbl.create 8 in
    List.filter_map
      (fun ph ->
        if Hashtbl.mem seen ph.pname then None
        else begin
          Hashtbl.add seen ph.pname ();
          List.assoc_opt ph.pname phase_aggs
          |> Option.map
               (stats_of_agg ~phase:ph.pname ~pressure:(pressure_of ph.pname))
        end)
      spec.phases
  in
  let ops = Array.fold_left ( + ) 0 ops_count in
  let sim_seconds = Engine.elapsed_seconds eng in
  let overall_lat = merged_op_latency (System.profile sys) in
  let p q =
    match overall_lat with None -> 0 | Some l -> Profile.percentile l q
  in
  let snapshot = System.metrics sys in
  let counter name =
    Option.value (Obs.Metrics.find_opt snapshot name) ~default:0
  in
  let overall =
    {
      phase = "overall";
      ops;
      p50 = p 0.50;
      p99 = p 0.99;
      max_cycles =
        (match overall_lat with None -> 0 | Some l -> l.Profile.max_cycles);
      restarts = counter "scheme.restarts";
      warnings = counter "scheme.warnings_fired";
      neutralized = counter "scheme.neutralized";
      frames_released = counter "vmem.frames_released";
      peak_unreclaimed =
        List.fold_left (fun m s -> max m s.peak_unreclaimed) 0 per_phase;
      pressure_recoveries = counter "alloc.pressure_recoveries";
    }
  in
  {
    rspec = spec;
    per_phase;
    overall;
    throughput_mops = float_of_int ops /. sim_seconds /. 1e6;
    sim_seconds;
    host_seconds;
    metrics = snapshot;
    timeline = tl;
    system = sys;
  }

let pp_phase_stats ppf s =
  Format.fprintf ppf
    "%-13s ops=%-8d p50=%-5d p99=%-5d max=%-6d restarts=%-4d warn=%-4d \
     neut=%-4d rel=%-4d peak_unreclaimed=%-5d pressure=%d"
    s.phase s.ops s.p50 s.p99 s.max_cycles s.restarts s.warnings s.neutralized
    s.frames_released s.peak_unreclaimed s.pressure_recoveries
