(** Production-style service scenario (experiment E14): a Zipfian-key
    session store under scripted, phase-shifting traffic.

    One simulated system runs a hash-set "store" through a sequence of
    {!phase_spec} phases — the default script is read-mostly steady state →
    flash crowd (hotter skew, read-hammering) → churn storm (update-only) →
    memory-pressure wave (insert-heavy growth under a live-frame quota that
    drives lrmalloc's pressure-recovery path).  A {!Oamem_obs.Timeline}
    records windowed and per-phase counters, gauge samples (a dedicated
    sampler thread, Monitor-style) and exact per-phase op latency
    histograms; {!run} distils them into SLA-style {!phase_stats}.

    Deterministic: same spec, byte-identical timeline and stats. *)

open Oamem_core

type phase_spec = {
  pname : string;
  mix : Workload.mix;
  distribution : Workload.distribution;
  horizon : int;  (** simulated cycles this phase lasts *)
  quota_headroom : int option;
      (** [Some h]: cap live frames at (live-at-phase-start + h) for the
          duration of the phase — simulated memory pressure; allocations
          beyond it go through lrmalloc's recovery path *)
}

val default_phases : horizon_cycles:int -> phase_spec list
(** The four-phase script above, splitting [horizon_cycles] 30/20/25/25. *)

type spec = {
  scheme : string;
  threads : int;
      (** workers; two extra engine slots run the gauge sampler and the
          pressure ballast *)
  initial : int;  (** prefilled keys (universe is twice this) *)
  window : int;  (** timeline window width in simulated cycles *)
  sample_interval : int;  (** sampler period in simulated cycles *)
  seed : int;
  phases : phase_spec list;
}

val default_spec : spec

type phase_stats = {
  phase : string;
  ops : int;
  p50 : int;
  p99 : int;
  max_cycles : int;  (** merged [op.*] latency within the phase, exact *)
  restarts : int;
  warnings : int;
  neutralized : int;
  frames_released : int;
  peak_unreclaimed : int;  (** max sampled [scheme.unreclaimed] *)
  pressure_recoveries : int;  (** lrmalloc recovery passes within the phase *)
}

type result = {
  rspec : spec;
  per_phase : phase_stats list;  (** script order *)
  overall : phase_stats;  (** whole measured run, [phase = "overall"] *)
  throughput_mops : float;
  sim_seconds : float;
  host_seconds : float;
  metrics : Oamem_obs.Metrics.snapshot;
  timeline : Oamem_obs.Timeline.t;  (** for the JSON/CSV/Chrome exporters *)
  system : System.t;
}

val run : spec -> result
val pp_phase_stats : Format.formatter -> phase_stats -> unit
