(* Domain-sharded sweep orchestration over the Pool domain pool.

   Determinism by construction: every job builds its own seeded System (no
   module-level state, see DESIGN.md), workers only *return* values — the
   coordinating domain renders docs, prints, and writes files in canonical
   job order — and the fuzz seed-space chunking is fixed independently of
   the domain count.  [-j 1] and [-j N] therefore produce byte-identical
   merged output. *)

let map = Pool.map
let map_exn = Pool.map_exn

(* --- experiment sweeps ------------------------------------------------------ *)

type experiment_outcome = {
  index : int;
  id : string;
  doc : (Report.doc, string) result;
}

let experiments ~jobs (cfg : Experiments.config) exps =
  (* each worker owns a whole experiment; no nested pools inside it *)
  let inner = { cfg with Experiments.jobs = 1 } in
  let results = Pool.map ~jobs (fun (e : Experiments.t) -> e.run inner) exps in
  List.mapi
    (fun index ((e : Experiments.t), doc) -> { index; id = e.id; doc })
    (List.combine exps results)

(* --- fuzz matrix ------------------------------------------------------------ *)

type fuzz_cell_result = {
  scenario : string;
  scheme : string;
  finding : Fuzz.finding option;
  fuzz_runs : int;
  shrink_runs : int;
}

(* Fixed chunks per cell, whatever [-j] is: the chunking (and each chunk's
   derived seed) defines which schedules get sampled, so it must not depend
   on the domain count. *)
let fuzz_chunks = 4

(* Distinct odd multiplier so chunk seeds don't collide with the per-cell
   seed derivation in bin/repro (which advances the base seed per cell). *)
let chunk_seed ~seed c = seed + (7919 * (c + 1))

let fuzz_matrix ~jobs ?(max_runs = 200) ?stop ~seed cells =
  let runs_per_chunk = max 1 (max_runs / fuzz_chunks) in
  (* one job per (cell, chunk); cells.chunks in canonical order *)
  let chunk_jobs =
    List.concat_map
      (fun (sc, scheme) ->
        List.init fuzz_chunks (fun c -> (sc, scheme, c)))
      cells
  in
  let run_chunk ((sc : Fuzz.scenario), scheme, c) =
    Fuzz.fuzz_scenario_raw ~max_runs:runs_per_chunk ?stop
      ~seed:(chunk_seed ~seed c) sc ~scheme
  in
  let chunk_results = Pool.map_exn ~jobs run_chunk chunk_jobs in
  (* regroup per cell, in cell order; first failing chunk (canonical chunk
     order) supplies the finding, shrunk here on the coordinator *)
  List.mapi
    (fun ci ((sc : Fuzz.scenario), scheme) ->
      let chunks =
        List.filteri
          (fun i _ -> i / fuzz_chunks = ci)
          chunk_results
      in
      let fuzz_runs =
        List.fold_left
          (fun acc (_, (st : Oamem_engine.Explore.fuzz_stats)) ->
            acc + st.Oamem_engine.Explore.fuzz_runs)
          0 chunks
      in
      let raw = List.find_map (fun (f, _) -> f) chunks in
      let finding, shrink_runs =
        match raw with
        | None -> (None, 0)
        | Some f ->
            let shrunk, replays = Fuzz.shrink_finding f in
            (Some shrunk, replays)
      in
      { scenario = sc.Fuzz.name; scheme; finding; fuzz_runs; shrink_runs })
    cells
