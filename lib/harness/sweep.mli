(** Domain-sharded sweep orchestration.

    The simulator is deterministic per configuration and every [System] is
    per-[create] — no module-level state — so independent experiment
    configurations and fuzz cells can run on OCaml 5 [Domain]s.  This
    module provides the shared pool: jobs are split across [-j N] worker
    domains, each job's result (or error) is captured, and results come
    back in canonical job order, so merged output is byte-identical to a
    sequential run no matter how many domains produced it.

    Worker jobs must not print or touch the filesystem — they return
    values ({!Report.doc}s, findings) and the coordinating domain renders
    and writes in order. *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> ('b, string) result list
(** [map ~jobs f items] applies [f] to every item on a pool of at most
    [jobs] domains ([jobs <= 1] runs inline on the calling domain — the
    single-domain control leg).  Results are in input order; a job that
    raises yields [Error (Printexc.to_string exn)] and the other jobs
    still complete. *)

val map_exn : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** Like {!map} but re-raises [Failure] describing the first failed job.
    For sharding *inside* one experiment, where a leg failure should fail
    the experiment. *)

(** {2 Experiment sweeps} *)

type experiment_outcome = {
  index : int;  (** canonical position in the job list *)
  id : string;  (** experiment id *)
  doc : (Report.doc, string) result;
}

val experiments :
  jobs:int ->
  Experiments.config ->
  Experiments.t list ->
  experiment_outcome list
(** Run the experiment list across [jobs] domains (each worker runs its
    experiment with [config.jobs = 1] — no nested pools) and return the
    docs in canonical order.  A failing experiment reports its id and
    error; the others complete. *)

(** {2 Fuzz matrix}

    Each (scenario, scheme) cell's run budget is split into a fixed number
    of chunks with derived, disjoint seeds; chunks are the unit of
    domain-level parallelism.  The chunking is independent of [jobs], so
    [-j 1] and [-j N] sample exactly the same schedules and report
    identical findings.  Workers fuzz without shrinking; findings are
    shrunk afterwards on the coordinating domain. *)

type fuzz_cell_result = {
  scenario : string;
  scheme : string;
  finding : Fuzz.finding option;
      (** first failing chunk in canonical chunk order, shrunk on the
          coordinator *)
  fuzz_runs : int;  (** summed over the cell's chunks *)
  shrink_runs : int;  (** spent shrinking, on the coordinator *)
}

val fuzz_chunks : int
(** Seed-space chunks per (scenario, scheme) cell. *)

val fuzz_matrix :
  jobs:int ->
  ?max_runs:int ->
  ?stop:(unit -> bool) ->
  seed:int ->
  (Fuzz.scenario * string) list ->
  fuzz_cell_result list
(** Fuzz every (scenario, scheme) cell across [jobs] domains; results are
    in cell order.  [max_runs] is the per-cell budget (split across the
    cell's chunks).  [stop] is polled by every worker for wall-clock
    time-boxing; a time-boxed run is *not* deterministic across [jobs]
    (workers race the deadline) — determinism holds when [stop] is
    absent. *)
