(* Harris–Michael lock-free ordered linked list (Michael, SPAA 2002), the
   paper's benchmark structure, written against the generic reclamation
   interface so that the same code runs under NR, the original OA, OA-BIT,
   OA-VER, hazard pointers and EBR.

   Scheme hooks are placed exactly where each method's protocol demands:

   - after every optimistic load: [read_check] (OA warning / version check);
   - before dereferencing a traversal pointer: [traverse_protect]
     (hazard-pointer publish + fence + re-verify; no-op for OA);
   - before every CAS: [write_protect] on every node the CAS involves —
     the node written to, the node being linked in — then one [validate]
     (OA's single fence + warning check of §2.4).

   Hazard slot assignment: slots 0/1 alternate between cur and its
   predecessor during traversal (the classic two-pointer rotation), and
   slots 2/3/4 are used for the write window, so publishing for a CAS never
   momentarily unprotects a traversal pointer.

   Operations are retried from the list head whenever the scheme raises
   [Restart] — the optimistic-access restart contract. *)

open Oamem_engine
open Oamem_vmem
open Oamem_reclaim
module Profile = Oamem_obs.Profile

let slots_needed = 5

type t = {
  scheme : Scheme.ops;
  vmem : Vmem.t;
  head : int;  (* address of the word holding the first-node pointer *)
  node_words : int;  (* 2 for sets, 3 for key-value maps *)
}

(* The head word must never be reclaimed; we take it from the scheme's own
   allocator so OA-orig's pool discipline also covers it. *)
let create_sized ctx ~scheme ~vmem ~node_words =
  let head = scheme.Scheme.alloc ctx node_words in
  Vmem.store vmem ctx head Node.null;
  (* the spare words of the head block stay unused *)
  { scheme; vmem; head; node_words }

let create ctx ~scheme ~vmem =
  create_sized ctx ~scheme ~vmem ~node_words:Node.words

let create_kv ctx ~scheme ~vmem =
  create_sized ctx ~scheme ~vmem ~node_words:Node.kv_words

(* A list living at an externally owned head word (hash-table buckets). *)
let at_head ?(node_words = Node.words) ~scheme ~vmem head =
  { scheme; vmem; head; node_words }

let retire_node = Op.retire_node
let cancel_node = Op.cancel_node

type found = {
  prev : int;  (* address of the link word pointing to cur *)
  prev_node : int;  (* node containing [prev], or 0 when it is the head *)
  cur : int;  (* first node with key >= target, or 0 *)
  cur_key : int;
  next : int;  (* unmarked successor of cur *)
}

(* Traverse from the head to the first node with key >= [key], unlinking
   logically deleted nodes on the way.  Raises [Scheme.Restart]. *)
let find t ctx ~key =
  let sch = t.scheme and vm = t.vmem in
  let prev = ref t.head and prev_node = ref 0 in
  let cur = ref (Vmem.load vm ctx t.head) in
  sch.Scheme.read_check ctx;
  let parity = ref 0 in
  let rec loop () =
    if !cur = Node.null then
      { prev = !prev; prev_node = !prev_node; cur = 0; cur_key = 0; next = 0 }
    else begin
      let c = Node.unmark !cur in
      (* hazard-pointer schemes publish c and re-verify the link *)
      sch.Scheme.traverse_protect ctx ~slot:!parity ~addr:c ~verify:(fun () ->
          Vmem.load vm ctx !prev = !cur);
      let next = Vmem.load vm ctx (Node.next_of c) in
      sch.Scheme.read_check ctx;
      let ckey = Vmem.load vm ctx (Node.key_of c) in
      sch.Scheme.read_check ctx;
      if Node.is_marked next then begin
        (* c is logically deleted: unlink it.  The CAS writes into
           [prev_node] and links [next]; protect both, validate once. *)
        let succ = Node.unmark next in
        sch.Scheme.write_protect ctx ~slot:2
          (if !prev_node = 0 then t.head else !prev_node);
        sch.Scheme.write_protect ctx ~slot:3 c;
        if succ <> 0 then sch.Scheme.write_protect ctx ~slot:4 succ;
        sch.Scheme.validate ctx;
        if Vmem.cas vm ctx !prev ~expect:!cur ~desired:succ then begin
          retire_node sch ctx c;
          cur := succ;
          loop ()
        end
        else raise Scheme.Restart
      end
      else if ckey >= key then
        { prev = !prev; prev_node = !prev_node; cur = c; cur_key = ckey; next }
      else begin
        prev_node := c;
        prev := Node.next_of c;
        cur := next;
        parity := 1 - !parity;
        loop ()
      end
    end
  in
  loop ()

(* Run [f] under the scheme's operation protocol, restarting on demand —
   see {!Op.run} for the restart-attribution and checkpoint contract.  The
   per-operation short-circuit flags below keep already-linearized effects
   from repeating when a neutralization unwind retries [f]. *)
let run_op t ctx frame f = Op.run t.scheme ctx frame f

let contains t ctx key =
  run_op t ctx Profile.Op_contains (fun () ->
      let f = find t ctx ~key in
      f.cur <> 0 && f.cur_key = key)

(* Wait-free-style membership test that never helps with unlinking (the
   search style Michael's hash tables use for read-mostly workloads):
   marked nodes are skipped, not removed, so a pure lookup performs no CAS
   at all.  Under hazard pointers this still publishes/validates each hop;
   under the OA schemes it is read-checks only. *)
let contains_readonly t ctx key =
  let sch = t.scheme and vm = t.vmem in
  run_op t ctx Profile.Op_contains (fun () ->
      let prev = ref t.head in
      let cur = ref (Vmem.load vm ctx t.head) in
      sch.Scheme.read_check ctx;
      let parity = ref 0 in
      let rec loop () =
        let c = Node.unmark !cur in
        if c = Node.null then false
        else begin
          sch.Scheme.traverse_protect ctx ~slot:!parity ~addr:c
            ~verify:(fun () -> Vmem.load vm ctx !prev = !cur);
          let next = Vmem.load vm ctx (Node.next_of c) in
          sch.Scheme.read_check ctx;
          let ckey = Vmem.load vm ctx (Node.key_of c) in
          sch.Scheme.read_check ctx;
          if ckey > key then false
          else if ckey = key then not (Node.is_marked next)
          else begin
            prev := Node.next_of c;
            cur := next;
            parity := 1 - !parity;
            loop ()
          end
        end
      in
      loop ())

let insert t ctx key =
  let sch = t.scheme and vm = t.vmem in
  run_op t ctx Profile.Op_insert (fun () ->
      let f = find t ctx ~key in
      if f.cur <> 0 && f.cur_key = key then false
      else begin
        let node = sch.Scheme.alloc ctx t.node_words in
        (* CAS writes into prev_node and links node; if validation demands a
           restart — or a neutralization unwinds the attempt — the
           unpublished node must be returned, not leaked *)
        match
          Vmem.store vm ctx (Node.key_of node) key;
          Vmem.store vm ctx (Node.next_of node) f.cur;
          sch.Scheme.write_protect ctx ~slot:2
            (if f.prev_node = 0 then t.head else f.prev_node);
          sch.Scheme.write_protect ctx ~slot:3 node;
          sch.Scheme.validate ctx
        with
        | () ->
            if Vmem.cas vm ctx f.prev ~expect:f.cur ~desired:node then true
            else begin
              cancel_node sch ctx node;
              raise Scheme.Restart
            end
        | exception ((Scheme.Restart | Engine.Neutralized) as e) ->
            cancel_node sch ctx node;
            raise e
      end)

(* Key-value operations (3-word nodes). *)

(* [insert_kv] adds a binding; [false] (and no change) if the key exists. *)
let insert_kv t ctx key value =
  assert (t.node_words >= Node.kv_words);
  let sch = t.scheme and vm = t.vmem in
  run_op t ctx Profile.Op_insert (fun () ->
      let f = find t ctx ~key in
      if f.cur <> 0 && f.cur_key = key then false
      else begin
        let node = sch.Scheme.alloc ctx t.node_words in
        match
          Vmem.store vm ctx (Node.key_of node) key;
          Vmem.store vm ctx (Node.value_of node) value;
          Vmem.store vm ctx (Node.next_of node) f.cur;
          sch.Scheme.write_protect ctx ~slot:2
            (if f.prev_node = 0 then t.head else f.prev_node);
          sch.Scheme.write_protect ctx ~slot:3 node;
          sch.Scheme.validate ctx
        with
        | () ->
            if Vmem.cas vm ctx f.prev ~expect:f.cur ~desired:node then true
            else begin
              cancel_node sch ctx node;
              raise Scheme.Restart
            end
        | exception ((Scheme.Restart | Engine.Neutralized) as e) ->
            cancel_node sch ctx node;
            raise e
      end)

(* Value bound to [key], if present.  The value read is validated like any
   other optimistic read. *)
let lookup t ctx key =
  assert (t.node_words >= Node.kv_words);
  let sch = t.scheme and vm = t.vmem in
  run_op t ctx Profile.Op_lookup (fun () ->
      let f = find t ctx ~key in
      if f.cur = 0 || f.cur_key <> key then None
      else begin
        let v = Vmem.load vm ctx (Node.value_of f.cur) in
        sch.Scheme.read_check ctx;
        Some v
      end)

(* Atomically replace the value of an existing binding; [None] if absent,
   otherwise the previous value.  The CAS-loop on the value word makes
   concurrent replacements linearizable. *)
let replace t ctx key value =
  assert (t.node_words >= Node.kv_words);
  let sch = t.scheme and vm = t.vmem in
  run_op t ctx Profile.Op_replace (fun () ->
      let f = find t ctx ~key in
      if f.cur = 0 || f.cur_key <> key then None
      else begin
        (* the CAS writes into cur: protect it, validate once *)
        sch.Scheme.write_protect ctx ~slot:2 f.cur;
        sch.Scheme.validate ctx;
        let rec swap () =
          let old = Vmem.load vm ctx (Node.value_of f.cur) in
          sch.Scheme.read_check ctx;
          if Vmem.cas vm ctx (Node.value_of f.cur) ~expect:old ~desired:value
          then Some old
          else begin
            Engine.Mem.pause ctx;
            swap ()
          end
        in
        swap ()
      end)

let delete t ctx key =
  let sch = t.scheme and vm = t.vmem in
  (* Set right after the marking CAS takes effect (no yield in between):
     if a neutralization unwinds us out of the best-effort physical-unlink
     epilogue, the checkpoint retry must report the delete that already
     linearized instead of re-traversing and finding nothing. *)
  let deleted = ref false in
  run_op t ctx Profile.Op_delete (fun () ->
      if !deleted then true
      else
      let f = find t ctx ~key in
      if f.cur = 0 || f.cur_key <> key then false
      else begin
        (* logical deletion: mark cur's next.  The CAS writes into cur. *)
        sch.Scheme.write_protect ctx ~slot:2 f.cur;
        if f.next <> 0 then sch.Scheme.write_protect ctx ~slot:3 f.next;
        sch.Scheme.validate ctx;
        if
          not
            (Vmem.cas vm ctx (Node.next_of f.cur) ~expect:f.next
               ~desired:(Node.mark f.next))
        then raise Scheme.Restart
        else begin
          deleted := true;
          (* The marking succeeded, so the delete has taken effect; the
             physical unlink below is best-effort and must never restart
             the operation (a traversal will finish the unlink and retire
             the node if we cannot).  A neutralization here does unwind —
             continuing to touch nodes after the poster advanced the epoch
             would be unsound — and the retry short-circuits on [deleted]. *)
          (try
             sch.Scheme.write_protect ctx ~slot:2
               (if f.prev_node = 0 then t.head else f.prev_node);
             sch.Scheme.write_protect ctx ~slot:3 f.cur;
             if f.next <> 0 then sch.Scheme.write_protect ctx ~slot:4 f.next;
             sch.Scheme.validate ctx;
             if Vmem.cas vm ctx f.prev ~expect:f.cur ~desired:f.next then
               retire_node sch ctx f.cur
           with Scheme.Restart -> ());
          true
        end
      end)

(* Sequential bulk construction for setup/prefill phases: builds the chain
   directly instead of paying O(n) traversal per insert.  The list must be
   empty and the caller single-threaded (use an external/uncosted ctx for
   benchmark prefills). *)
let build_sorted t ctx keys =
  let keys = List.sort_uniq compare keys in
  let rec link prev_link = function
    | [] -> Vmem.store t.vmem ctx prev_link Node.null
    | k :: rest ->
        let n = t.scheme.Scheme.alloc ctx t.node_words in
        Vmem.store t.vmem ctx (Node.key_of n) k;
        Vmem.store t.vmem ctx prev_link n;
        link (Node.next_of n) rest
  in
  link t.head keys

(* Uncosted sequential snapshot for tests: keys of unmarked nodes. *)
let to_list t =
  let rec go acc cur =
    (* the walked value may carry a mark (a logically deleted node never
       physically unlinked), including a marked null at the tail *)
    let c = Node.unmark cur in
    if c = Node.null then List.rev acc
    else
      let next = Vmem.peek t.vmem (Node.next_of c) in
      let key = Vmem.peek t.vmem (Node.key_of c) in
      if Node.is_marked next then go acc next
      else go (key :: acc) next
  in
  go [] (Vmem.peek t.vmem t.head)

let length t = List.length (to_list t)
