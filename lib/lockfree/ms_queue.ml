(* Michael & Scott's lock-free FIFO queue over simulated memory, reclaimed
   through the generic scheme interface.

   The queue keeps a sentinel node; [head] and [tail] live in one block
   (words 0 and 1).  Dequeue retires the outgoing sentinel — under the
   optimistic-access schemes the retired sentinel's memory flows back
   through palloc like any other node, which the original OA's fixed pools
   could not offer to the rest of the process.

   Node layout: word 0 = value, word 1 = next. *)

open Oamem_engine
open Oamem_vmem
open Oamem_reclaim
module Profile = Oamem_obs.Profile

type t = {
  scheme : Scheme.ops;
  vmem : Vmem.t;
  head : int;  (* word holding the sentinel pointer *)
  tail : int;  (* word holding the tail hint *)
}

let create ctx ~scheme ~vmem =
  let anchor = scheme.Scheme.alloc ctx Node.words in
  let head = anchor and tail = anchor + 1 in
  let sentinel = scheme.Scheme.alloc ctx Node.words in
  Vmem.store vmem ctx (Node.next_of sentinel) Node.null;
  Vmem.store vmem ctx head sentinel;
  Vmem.store vmem ctx tail sentinel;
  { scheme; vmem; head; tail }

(* Same restart-attribution and checkpoint protocol as [Hm_list.run_op] —
   see {!Op.run}. *)
let run_op t ctx frame f = Op.run t.scheme ctx frame f

let enqueue t ctx value =
  let sch = t.scheme and vm = t.vmem in
  run_op t ctx Profile.Op_enqueue (fun () ->
      let node = sch.Scheme.alloc ctx Node.words in
      match
        Vmem.store vm ctx node value;
        Vmem.store vm ctx (Node.next_of node) Node.null;
        let rec loop () =
          let tl = Vmem.load vm ctx t.tail in
          sch.Scheme.read_check ctx;
          sch.Scheme.traverse_protect ctx ~slot:0 ~addr:tl ~verify:(fun () ->
              Vmem.load vm ctx t.tail = tl);
          let next = Vmem.load vm ctx (Node.next_of tl) in
          sch.Scheme.read_check ctx;
          if next = Node.null then begin
            (* the CAS writes into tl and links the private node *)
            sch.Scheme.write_protect ctx ~slot:2 tl;
            sch.Scheme.validate ctx;
            if
              Vmem.cas vm ctx (Node.next_of tl) ~expect:Node.null
                ~desired:node
            then
              (* swing the tail hint; losing this race is harmless.  The
                 node is published from here on: mask the swing so a signal
                 cannot unwind between linearization and return. *)
              Op.masked_when_neutralizable sch ctx (fun () ->
                  ignore (Vmem.cas vm ctx t.tail ~expect:tl ~desired:node))
            else begin
              Engine.Mem.pause ctx;
              loop ()
            end
          end
          else begin
            (* help a lagging enqueuer move the tail hint forward *)
            sch.Scheme.write_protect ctx ~slot:2 tl;
            sch.Scheme.write_protect ctx ~slot:3 next;
            sch.Scheme.validate ctx;
            ignore (Vmem.cas vm ctx t.tail ~expect:tl ~desired:next);
            Engine.Mem.pause ctx;
            loop ()
          end
        in
        loop ()
      with
      | () -> ()
      | exception ((Scheme.Restart | Engine.Neutralized) as e) ->
          (* only reachable pre-publish: the node is still private, so
             reclaim it before the retry allocates a fresh one *)
          Op.cancel_node sch ctx node;
          raise e)

let dequeue t ctx =
  let sch = t.scheme and vm = t.vmem in
  run_op t ctx Profile.Op_dequeue (fun () ->
      let rec loop () =
        let hd = Vmem.load vm ctx t.head in
        sch.Scheme.read_check ctx;
        sch.Scheme.traverse_protect ctx ~slot:0 ~addr:hd ~verify:(fun () ->
            Vmem.load vm ctx t.head = hd);
        let tl = Vmem.load vm ctx t.tail in
        sch.Scheme.read_check ctx;
        let next = Vmem.load vm ctx (Node.next_of hd) in
        sch.Scheme.read_check ctx;
        if hd = tl then
          if next = Node.null then None
          else begin
            (* tail is lagging: help before retrying *)
            sch.Scheme.write_protect ctx ~slot:2 tl;
            sch.Scheme.write_protect ctx ~slot:3 next;
            sch.Scheme.validate ctx;
            ignore (Vmem.cas vm ctx t.tail ~expect:tl ~desired:next);
            Engine.Mem.pause ctx;
            loop ()
          end
        else begin
          sch.Scheme.traverse_protect ctx ~slot:1 ~addr:next ~verify:(fun () ->
              Vmem.load vm ctx (Node.next_of hd) = next);
          let value = Vmem.load vm ctx next in
          sch.Scheme.read_check ctx;
          sch.Scheme.write_protect ctx ~slot:2 hd;
          sch.Scheme.write_protect ctx ~slot:3 next;
          sch.Scheme.validate ctx;
          if Vmem.cas vm ctx t.head ~expect:hd ~desired:next then begin
            (* the outgoing sentinel is ours to retire; no yield separates
               the CAS from the masked retire, so the linearized dequeue
               cannot be unwound before the node reaches a limbo bag *)
            Op.retire_node sch ctx hd;
            Some value
          end
          else begin
            Engine.Mem.pause ctx;
            loop ()
          end
        end
      in
      loop ())

let is_empty t ctx =
  let hd = Vmem.load t.vmem ctx t.head in
  t.scheme.Scheme.read_check ctx;
  let next = Vmem.load t.vmem ctx (Node.next_of hd) in
  t.scheme.Scheme.read_check ctx;
  next = Node.null

(* Uncosted snapshot for tests (quiescent state only): front first. *)
let to_list t =
  let sentinel = Vmem.peek t.vmem t.head in
  let rec go acc cur =
    if cur = Node.null then List.rev acc
    else go (Vmem.peek t.vmem cur :: acc) (Vmem.peek t.vmem (Node.next_of cur))
  in
  go [] (Vmem.peek t.vmem (Node.next_of sentinel))

let length t = List.length (to_list t)
