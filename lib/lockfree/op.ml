(* Shared operation protocol for the lock-free structures: run a body under
   a reclamation scheme's begin/clear/end envelope, restarting on demand,
   with per-operation restart attribution in the profiler.

   Under profiling the whole operation runs in a [frame] span; from the
   first restart on, every retry (including its backoff pause) accrues in a
   nested [Op_restart] child, so a profile separates first-attempt cost
   from restart-induced cost per operation kind.  Retries forced by a
   delivered neutralization signal accrue the same way in an
   [Op_neutralized] child.

   For a neutralizable scheme (DEBRA) the whole operation runs under an
   {!Engine.Mem.checkpoint}: a delivered signal unwinds to the operation
   entry, the scheme's [recover] resets its per-thread state, and the body
   is retried.  The body must therefore be restart-safe — already-
   linearized effects must not repeat on retry (see the short-circuit
   flags in the individual structures).  The success epilogue
   (clear + end_op) runs signal-masked so a late delivery cannot discard a
   computed result. *)

open Oamem_engine
open Oamem_reclaim
module Profile = Oamem_obs.Profile

(* Retire/cancel under a signal mask when the scheme neutralizes: the
   observation wrapper runs *around* the scheme's own masked body, and an
   unwind between the two would strand a node outside any limbo bag. *)
let masked_when_neutralizable (sch : Scheme.ops) ctx f =
  if sch.Scheme.neutralizable then Engine.Mem.masked ctx f else f ()

let retire_node (sch : Scheme.ops) ctx c =
  masked_when_neutralizable sch ctx (fun () -> sch.Scheme.retire ctx c)

let cancel_node (sch : Scheme.ops) ctx c =
  masked_when_neutralizable sch ctx (fun () -> sch.Scheme.cancel ctx c)

let run (sch : Scheme.ops) ctx frame f =
  let p = Engine.Mem.profile ctx in
  let profiling = Profile.enabled p in
  let tid = (Engine.Mem.tid ctx) in
  if profiling then Profile.enter p ~tid ~now:(Engine.Mem.now ctx) frame;
  (* true once a nested retry span (Op_restart or Op_neutralized) is open *)
  let in_retry = ref false in
  let close () =
    if profiling then begin
      if !in_retry then Profile.leave p ~tid ~now:(Engine.Mem.now ctx);
      Profile.leave p ~tid ~now:(Engine.Mem.now ctx)
    end
  in
  let neutralizable = sch.Scheme.neutralizable && Engine.Mem.costed ctx in
  let rec attempt () =
    sch.Scheme.begin_op ctx;
    match f () with
    | r ->
        let epilogue () =
          sch.Scheme.clear ctx;
          sch.Scheme.end_op ctx
        in
        if neutralizable then Engine.Mem.masked ctx epilogue
        else epilogue ();
        close ();
        r
    | exception Scheme.Restart ->
        Scheme.note_restart sch.Scheme.sink ctx;
        sch.Scheme.clear ctx;
        sch.Scheme.end_op ctx;
        if profiling && not !in_retry then begin
          in_retry := true;
          Profile.enter p ~tid ~now:(Engine.Mem.now ctx) Profile.Op_restart
        end;
        Engine.Mem.pause ctx;
        attempt ()
    | exception Engine.Neutralized ->
        (* unwinding to the operation checkpoint: the op span (and any open
           retry span) stays open — the recovery retry continues inside it *)
        if profiling && not !in_retry then begin
          in_retry := true;
          Profile.enter p ~tid ~now:(Engine.Mem.now ctx) Profile.Op_neutralized
        end;
        raise Engine.Neutralized
    | exception e ->
        (* keep the span stack balanced on foreign exceptions (OOM, frame
           exhaustion, injected crashes) *)
        close ();
        raise e
  in
  if neutralizable then
    Engine.Mem.checkpoint ctx
      ~recover:(fun () ->
        Scheme.note_neutralized sch.Scheme.sink ctx;
        sch.Scheme.clear ctx;
        sch.Scheme.recover ctx)
      attempt
  else attempt ()
