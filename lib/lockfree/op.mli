(** Shared operation protocol for the lock-free structures.

    [run sch ctx frame f] executes [f] under [sch]'s operation envelope
    (begin_op / clear / end_op), retrying on {!Oamem_reclaim.Scheme.Restart}
    with restart attribution in the profiler, and — when the scheme is
    neutralizable — under an {!Oamem_engine.Engine.Mem.checkpoint} whose
    recovery resets the scheme's per-thread state before the retry.  [f]
    must be restart-safe: an already-linearized effect must not repeat when
    [f] reruns after an unwind. *)

open Oamem_engine
open Oamem_reclaim

val run :
  Scheme.ops -> Engine.ctx -> Oamem_obs.Profile.frame -> (unit -> 'a) -> 'a

val masked_when_neutralizable : Scheme.ops -> Engine.ctx -> (unit -> 'a) -> 'a
(** Run the callback signal-masked when the scheme neutralizes, plain
    otherwise. *)

val retire_node : Scheme.ops -> Engine.ctx -> int -> unit
(** [retire] under {!masked_when_neutralizable}: the observation wrapper
    runs around the scheme's own masked body, and an unwind between the two
    would strand the node outside any limbo bag. *)

val cancel_node : Scheme.ops -> Engine.ctx -> int -> unit
