(* Treiber's lock-free stack over simulated memory, reclaimed through the
   generic scheme interface.

   The stack is the canonical ABA victim: a pop's CAS can succeed against a
   head node that was popped, freed, reused and pushed back with a stale
   next pointer.  Under the OA schemes the [validate] before the CAS (which
   observes any warning fired by the free) is what makes the CAS safe; under
   hazard pointers the pre-read protection does.  This makes the stack a
   good minimal exerciser of the reclamation contract beyond lists.

   Node layout: word 0 = value, word 1 = next. *)

open Oamem_engine
open Oamem_vmem
open Oamem_reclaim
module Profile = Oamem_obs.Profile

type t = {
  scheme : Scheme.ops;
  vmem : Vmem.t;
  top : int;  (* address of the word holding the top-node pointer *)
}

let create ctx ~scheme ~vmem =
  let top = scheme.Scheme.alloc ctx Node.words in
  Vmem.store vmem ctx top Node.null;
  { scheme; vmem; top }

(* Same restart-attribution and checkpoint protocol as [Hm_list.run_op] —
   see {!Op.run}. *)
let run_op t ctx frame f = Op.run t.scheme ctx frame f

let push t ctx value =
  let sch = t.scheme and vm = t.vmem in
  run_op t ctx Profile.Op_push (fun () ->
      let node = sch.Scheme.alloc ctx Node.words in
      match
        Vmem.store vm ctx node value;
        let rec loop () =
          let head = Vmem.load vm ctx t.top in
          sch.Scheme.read_check ctx;
          Vmem.store vm ctx (Node.next_of node) head;
          (* the CAS writes only into the never-reclaimed top word and links
             the still-private node: nothing to hazard beyond validation *)
          sch.Scheme.validate ctx;
          if Vmem.cas vm ctx t.top ~expect:head ~desired:node then ()
          else begin
            Engine.Mem.pause ctx;
            loop ()
          end
        in
        loop ()
      with
      | () -> ()
      | exception ((Scheme.Restart | Engine.Neutralized) as e) ->
          (* only reachable pre-publish: the node is still private, so
             reclaim it before the retry allocates a fresh one *)
          Op.cancel_node sch ctx node;
          raise e)

let pop t ctx =
  let sch = t.scheme and vm = t.vmem in
  run_op t ctx Profile.Op_pop (fun () ->
      let rec loop () =
        let head = Vmem.load vm ctx t.top in
        sch.Scheme.read_check ctx;
        if head = Node.null then None
        else begin
          (* hazard-pointer schemes must pin head before dereferencing *)
          sch.Scheme.traverse_protect ctx ~slot:0 ~addr:head
            ~verify:(fun () -> Vmem.load vm ctx t.top = head);
          let next = Vmem.load vm ctx (Node.next_of head) in
          sch.Scheme.read_check ctx;
          let value = Vmem.load vm ctx head in
          sch.Scheme.read_check ctx;
          sch.Scheme.write_protect ctx ~slot:2 head;
          if next <> Node.null then sch.Scheme.write_protect ctx ~slot:3 next;
          sch.Scheme.validate ctx;
          if Vmem.cas vm ctx t.top ~expect:head ~desired:next then begin
            (* no yield separates the CAS from the masked retire, so the
               linearized pop cannot be unwound before the node reaches a
               limbo bag *)
            Op.retire_node sch ctx head;
            Some value
          end
          else begin
            Engine.Mem.pause ctx;
            loop ()
          end
        end
      in
      loop ())

let is_empty t ctx =
  let v = Vmem.load t.vmem ctx t.top in
  t.scheme.Scheme.read_check ctx;
  v = Node.null

(* Uncosted snapshot for tests (quiescent state only). *)
let to_list t =
  let rec go acc cur =
    if cur = Node.null then List.rev acc
    else
      go (Vmem.peek t.vmem cur :: acc) (Vmem.peek t.vmem (Node.next_of cur))
  in
  go [] (Vmem.peek t.vmem t.top)

let length t = List.length (to_list t)
