(* A version-based-reclamation (VBR) Treiber stack — the paper's §6 future
   work, realised on top of the extended allocator.

   VBR (Sheffi, Herlihy & Petrank, SPAA 2021) replaces grace periods with
   versioned pointers: the stack top is a (pointer, version) pair updated by
   double-width CAS, and a popped node is freed *immediately*.  A racing
   thread that still holds the stale pointer may read the freed node — safe,
   because the node came from [palloc] and its range stays readable — and
   its subsequent DWCAS is guaranteed to fail on the version word, so stale
   state is never installed.

   This is exactly the combination the paper says its extended LRMalloc
   enables ("we leave it to future work the simplification and adaptation of
   VBR in order to also make it able to release memory back to the memory
   allocator/operating system", §6): no recycling pool, no limbo list, no
   warnings — retirement IS the free.  The §3.2 caveat applies too: under
   the madvise remap strategy a failing DWCAS on an already-remapped page
   still faults a frame in (footnote 2); the shared-mapping strategy avoids
   the leak.  [Vbr_probe] and experiment E9 measure that effect.

   Simplifications vs. full VBR: only the top pointer is versioned (a stack
   has a single mutable hot spot), and nodes carry no birth-era word —
   enough for the stack, not a general VBR implementation.  The DWCAS is
   atomic under the simulation engine (single runner domain). *)

open Oamem_engine
open Oamem_vmem
open Oamem_lrmalloc

type t = {
  alloc : Lrmalloc.t;
  vmem : Vmem.t;
  top : int;  (* even-aligned pair: [top] = pointer, [top+1] = version *)
  mutable frees : int;  (* immediate frees (statistics) *)
}

let create ctx ~alloc =
  let vmem = Lrmalloc.vmem alloc in
  (* block addresses are even, so the pair is DWCAS-aligned *)
  let top = Lrmalloc.palloc alloc ctx 2 in
  Vmem.store vmem ctx top Node.null;
  Vmem.store vmem ctx (top + 1) 1;
  { alloc; vmem; top; frees = 0 }

let push t ctx value =
  let vm = t.vmem in
  let node = Lrmalloc.palloc t.alloc ctx Node.words in
  Vmem.store vm ctx node value;
  let rec loop () =
    (* the pair may tear between the two loads; the DWCAS then fails *)
    let head = Vmem.load vm ctx t.top in
    let ver = Vmem.load vm ctx (t.top + 1) in
    Vmem.store vm ctx (Node.next_of node) head;
    if
      Vmem.dwcas vm ctx t.top ~expect0:head ~expect1:ver ~desired0:node
        ~desired1:(ver + 1)
    then ()
    else begin
      Engine.Mem.pause ctx;
      loop ()
    end
  in
  loop ()

let pop t ctx =
  let vm = t.vmem in
  let rec loop () =
    let head = Vmem.load vm ctx t.top in
    let ver = Vmem.load vm ctx (t.top + 1) in
    if head = Node.null then
      (* confirm emptiness against a stable version *)
      if Vmem.load vm ctx t.top = Node.null then None else loop ()
    else begin
      (* optimistic reads: [head] may already be freed and reused — its
         range stays readable (palloc) and the DWCAS below rejects stale
         versions, so garbage here is harmless *)
      let next = Vmem.load vm ctx (Node.next_of head) in
      let value = Vmem.load vm ctx head in
      if
        Vmem.dwcas vm ctx t.top ~expect0:head ~expect1:ver ~desired0:next
          ~desired1:(ver + 1)
      then begin
        (* VBR's point: free immediately, no grace period *)
        Lrmalloc.free t.alloc ctx head;
        t.frees <- t.frees + 1;
        Some value
      end
      else begin
        Engine.Mem.pause ctx;
        loop ()
      end
    end
  in
  loop ()

let is_empty t ctx = Vmem.load t.vmem ctx t.top = Node.null
let immediate_frees t = t.frees

(* Uncosted snapshot for tests (quiescent state only), top first. *)
let to_list t =
  let rec go acc cur =
    if cur = Node.null then List.rev acc
    else
      go (Vmem.peek t.vmem cur :: acc) (Vmem.peek t.vmem (Node.next_of cur))
  in
  go [] (Vmem.peek t.vmem t.top)

let length t = List.length (to_list t)
