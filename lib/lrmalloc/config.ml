(* Allocator configuration.

   [remap_strategy] selects what happens when a *persistent* superblock
   becomes empty (paper §3.1 vs the two methods of §3.2):

   - [Keep_resident]: the superblock never reaches the empty state; its
     blocks stay available for future allocations but its frames are never
     released (§3.1).
   - [Madvise]: the range is advised away — frames are released and the
     range reverts to copy-on-write zero, ready for immediate reuse
     (§3.2 method 1).
   - [Shared_map]: the range is remapped onto the small shared region —
     frames are released; reuse needs one remap syscall (§3.2 method 2). *)

type remap_strategy = Keep_resident | Madvise | Shared_map

let remap_strategy_name = function
  | Keep_resident -> "keep"
  | Madvise -> "madvise"
  | Shared_map -> "shared"

type t = {
  sb_pages : int;  (** pages per size-class superblock *)
  remap : remap_strategy;
  cache_blocks : int;
      (** target blocks transferred per cache fill (capped by the
          superblock's block count); the cache holds twice this many *)
  cache_multiplier : int;
      (** thread-cache capacity in units of fill batches *)
  pressure_reserve_frames : int;
      (** extra frames the quota is lifted by while the allocator runs its
          memory-pressure recovery (cache flush + superblock release), so
          recovery itself can fault pages in — the analogue of a kernel's
          reclaim reserve *)
  pressure_max_retries : int;
      (** recovery attempts (with exponential backoff) before giving up
          with [Out_of_memory] *)
}

let default =
  {
    sb_pages = 64;
    remap = Madvise;
    cache_blocks = 256;
    cache_multiplier = 2;
    pressure_reserve_frames = 8;
    pressure_max_retries = 4;
  }

let sb_words geom t = t.sb_pages * Oamem_engine.Geometry.page_words geom

let pp ppf t =
  Fmt.pf ppf "lrmalloc{sb=%dp remap=%s cachex%d}" t.sb_pages
    (remap_strategy_name t.remap) t.cache_multiplier
