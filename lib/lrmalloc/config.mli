(** Allocator configuration, including the strategy applied when a
    persistent superblock becomes empty (paper §3.1 vs §3.2). *)

type remap_strategy =
  | Keep_resident
      (** never release: persistent superblocks never reach Empty (§3.1) *)
  | Madvise
      (** madvise(MADV_DONTNEED): frames released, range reverts to
          copy-on-write zero, immediately reusable (§3.2 method 1) *)
  | Shared_map
      (** remap onto the shared region: frames released; reuse needs one
          remap syscall; Linux-style RSS stays inflated (§3.2 method 2) *)

val remap_strategy_name : remap_strategy -> string

type t = {
  sb_pages : int;  (** pages per size-class superblock *)
  remap : remap_strategy;
  cache_blocks : int;
      (** target blocks transferred per thread-cache fill (capped by the
          superblock's block count) *)
  cache_multiplier : int;
      (** thread-cache capacity in units of fill batches *)
  pressure_reserve_frames : int;
      (** extra frames the quota is lifted by during memory-pressure
          recovery, so the recovery path itself can fault pages in *)
  pressure_max_retries : int;
      (** recovery attempts (with exponential backoff) before
          [Lrmalloc.Out_of_memory] *)
}

val default : t
val sb_words : Oamem_engine.Geometry.t -> t -> int
val pp : Format.formatter -> t -> unit
