(* Lock-free Treiber stack of descriptors with a tagged head.

   Used for the per-class partial lists and for the two descriptor recycling
   pools.  The head cell packs (descriptor id + 1, tag); the tag is bumped on
   every successful CAS, which defeats ABA when a descriptor is popped,
   recycled and pushed again.  The [next] link lives in the descriptor and
   stores a plain id, which is safe because a descriptor's link is only
   written by the thread currently pushing it. *)

open Oamem_engine

type t = {
  head : Cell.t;
  get : int -> Descriptor.t;  (* descriptor registry lookup *)
}

let id_bits = 31
let id_mask = (1 lsl id_bits) - 1

let pack ~id ~tag = (id + 1) lor (tag lsl id_bits)
let head_id w = (w land id_mask) - 1
let head_tag w = w lsr id_bits

let create heap ~get = { head = Cell.make ~pad:true heap (pack ~id:(-1) ~tag:0); get }

let rec push t ctx (d : Descriptor.t) =
  let h = Cell.get ctx t.head in
  Cell.set ctx d.Descriptor.next (head_id h);
  let desired = pack ~id:d.Descriptor.id ~tag:(head_tag h + 1) in
  if not (Cell.cas ctx t.head ~expect:h ~desired) then begin
    Engine.Mem.pause ctx;
    push t ctx d
  end

let rec pop t ctx =
  let h = Cell.get ctx t.head in
  match head_id h with
  | -1 -> None
  | id ->
      let d = t.get id in
      let next = Cell.get ctx d.Descriptor.next in
      let desired = pack ~id:next ~tag:(head_tag h + 1) in
      if Cell.cas ctx t.head ~expect:h ~desired then Some d
      else begin
        Engine.Mem.pause ctx;
        pop t ctx
      end

let is_empty ctx t = head_id (Cell.get ctx t.head) = -1

(* Uncosted traversal for tests and invariant checks. *)
let peek_ids t =
  let rec go acc id =
    if id = -1 then List.rev acc
    else go (id :: acc) (Cell.peek (t.get id).Descriptor.next)
  in
  go [] (head_id (Cell.peek t.head))
