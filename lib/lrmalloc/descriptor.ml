(* Superblock descriptors (paper §2.3, Fig. 2).

   A descriptor carries the metadata of one superblock: where it starts, its
   size class and block count, and the atomic *anchor* that packs the
   superblock state together with the free-list head and the free count so
   that all three can be updated in a single CAS — the core LRMalloc trick.

   Anchor layout (in one simulated word):
     bits 0..1   state (0 = Full, 1 = Partial, 2 = Empty)
     bits 2..21  avail — block index of the free-list head
     bits 22..41 count — number of free blocks
     bits 42..61 tag   — ABA counter

   Descriptors are never reclaimed, only recycled through the pools
   (paper §3.2 and §4); the non-anchor fields are only rewritten while the
   descriptor is owned by a single thread taking it out of a pool. *)

open Oamem_engine

type state = Full | Partial | Empty

let state_to_int = function Full -> 0 | Partial -> 1 | Empty -> 2
let state_of_int = function 0 -> Full | 1 -> Partial | _ -> Empty
let state_name = function Full -> "full" | Partial -> "partial" | Empty -> "empty"

let field_bits = 20
let field_mask = (1 lsl field_bits) - 1
let tag_mask = field_mask

type anchor = { state : state; avail : int; count : int; tag : int }

let pack a =
  assert (a.avail >= 0 && a.avail <= field_mask);
  assert (a.count >= 0 && a.count <= field_mask);
  state_to_int a.state
  lor (a.avail lsl 2)
  lor (a.count lsl (2 + field_bits))
  lor ((a.tag land tag_mask) lsl (2 + (2 * field_bits)))

let unpack w =
  {
    state = state_of_int (w land 3);
    avail = (w lsr 2) land field_mask;
    count = (w lsr (2 + field_bits)) land field_mask;
    tag = (w lsr (2 + (2 * field_bits))) land tag_mask;
  }

type t = {
  id : int;
  anchor : Cell.t;
  next : Cell.t;  (* link used by descriptor lists/pools *)
  mutable sb_start : int;  (* base word address; 0 = no superblock attached *)
  mutable size_class : int;  (* class index; -1 = large allocation *)
  mutable block_words : int;
  mutable max_count : int;
  mutable persistent : bool;
  mutable pages : int;  (* pages spanned by the superblock *)
}

let make heap ~id =
  {
    id;
    anchor = Cell.make ~pad:true heap (pack { state = Empty; avail = 0; count = 0; tag = 0 });
    next = Cell.make heap 0;
    sb_start = 0;
    size_class = -1;
    block_words = 0;
    max_count = 0;
    persistent = false;
    pages = 0;
  }

let read_anchor ctx t = unpack (Cell.get ctx t.anchor)

let cas_anchor ctx t ~expect ~desired =
  Cell.cas ctx t.anchor ~expect:(pack expect) ~desired:(pack desired)

let set_anchor_unlogged t a = Cell.poke t.anchor (pack a)
let peek_anchor t = unpack (Cell.peek t.anchor)

let block_addr t idx =
  assert (idx >= 0 && idx < t.max_count);
  t.sb_start + (idx * t.block_words)

let block_index t addr =
  let off = addr - t.sb_start in
  assert (off >= 0 && off mod t.block_words = 0);
  off / t.block_words

let is_large t = t.size_class < 0

let pp ppf t =
  let a = peek_anchor t in
  Fmt.pf ppf "desc%d{sb=%#x cls=%d n=%d %s avail=%d count=%d%s}" t.id
    t.sb_start t.size_class t.max_count
    (match a.state with Full -> "full" | Partial -> "partial" | Empty -> "empty")
    a.avail a.count
    (if t.persistent then " persistent" else "")
