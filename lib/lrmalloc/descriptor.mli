(** Superblock descriptors with the packed atomic anchor
    (state, free-list head, free count, ABA tag) updated by single CAS. *)

open Oamem_engine

type state = Full | Partial | Empty

val state_name : state -> string
(** ["full"] / ["partial"] / ["empty"] — trace and log labels. *)

type anchor = { state : state; avail : int; count : int; tag : int }

val pack : anchor -> int
val unpack : int -> anchor

type t = {
  id : int;
  anchor : Cell.t;
  next : Cell.t;
  mutable sb_start : int;  (** base word address; 0 = none attached *)
  mutable size_class : int;  (** class index; -1 = large allocation *)
  mutable block_words : int;
  mutable max_count : int;
  mutable persistent : bool;
  mutable pages : int;
}

val make : Cell.heap -> id:int -> t
val read_anchor : Engine.ctx -> t -> anchor
val cas_anchor : Engine.ctx -> t -> expect:anchor -> desired:anchor -> bool

val set_anchor_unlogged : t -> anchor -> unit
(** Initialisation while the descriptor is privately owned. *)

val peek_anchor : t -> anchor
val block_addr : t -> int -> int
val block_index : t -> int -> int
val is_large : t -> bool
val pp : Format.formatter -> t -> unit
