(* The LRMalloc heap: superblock management (paper §2.3, §3, §4).

   Superblocks are carved into blocks of one size class and tracked by
   descriptors.  A new superblock is born Full — all its blocks go straight
   into the requesting thread's cache.  Cache flushes return blocks one by
   one through [free_block], whose anchor CAS moves the superblock between
   Full, Partial and Empty exactly as in Fig. 2 of the paper:

   - non-persistent superblocks that become Empty are unmapped and their
     descriptor goes to the *generic* pool;
   - persistent superblocks under [Keep_resident] never reach Empty (the
     §3.1 design): they simply stay Partial with every block free;
   - persistent superblocks under [Madvise]/[Shared_map] are remapped — the
     physical frames are released while the virtual range stays readable —
     and the descriptor, still carrying its range, goes to the *persistent*
     pool (§3.2), from which new superblocks are built by priority (§4).

   Release protocol.  A descriptor is pushed onto its partial list exactly
   once per Full→Partial transition and removed only by [take_partial].
   When the popper finds the superblock already Empty (every block was
   freed back), the popper performs the release; when a superblock becomes
   Empty while still linked, release is deferred to the eventual pop (or to
   an explicit [trim]).  This keeps the lists free of recycled descriptors
   without extra synchronisation, at the price of empty superblocks being
   reclaimed lazily. *)

open Oamem_engine
open Oamem_vmem
module Trace = Oamem_obs.Trace
module Profile = Oamem_obs.Profile

type stats = {
  mutable sb_fresh : int;  (** superblocks built on a fresh virtual range *)
  mutable sb_range_reused : int;  (** built on a recycled persistent range *)
  mutable sb_released : int;  (** non-persistent: unmapped *)
  mutable sb_remapped : int;  (** persistent: madvise / shared remap *)
  mutable large_allocs : int;
  mutable large_frees : int;
  mutable pressure_recoveries : int;
      (** Out_of_frames events recovered by cache flush + trim *)
  mutable pressure_failures : int;  (** recoveries that ended in Out_of_memory *)
}

type t = {
  geom : Geometry.t;
  cfg : Config.t;
  classes : Size_class.t;
  vmem : Vmem.t;
  meta : Cell.heap;
  pagemap : Pagemap.t;
  mutable descs : Descriptor.t array;
  mutable ndescs : int;
  registry_lock : Mutex.t;
  mutable partial : Desc_list.t array;
      (* index: class * 2 + (persistent as int) *)
  mutable persistent_pool : Desc_list.t;
      (* descriptors keeping their range (§3.2) *)
  mutable generic_pool : Desc_list.t;  (* plain recycled descriptors *)
  stats : stats;
  mutable trace : Trace.t;
  mutable range_hook : (base:int -> npages:int -> event:range_event -> unit) option;
      (* observer for superblock range transitions (lifecycle sanitizer) *)
}

and range_event =
  | Range_carved  (** a fresh or recycled range was attached to a superblock *)
  | Range_released  (** non-persistent range unmapped (or a large free) *)
  | Range_remapped
      (** persistent range remapped: frames released, range stays readable *)

let get_desc t id = t.descs.(id)

let create ?(cfg = Config.default) ?(classes = Size_class.default) ~vmem ~meta
    () =
  let geom = Vmem.geometry vmem in
  let max_pages = Page_table.max_pages (Vmem.page_table vmem) in
  let dummy = Desc_list.create meta ~get:(fun _ -> assert false) in
  let t =
    {
      geom;
      cfg;
      classes;
      vmem;
      meta;
      pagemap = Pagemap.create ~geom ~max_pages;
      descs = Array.make 64 (Descriptor.make meta ~id:(-1));
      ndescs = 0;
      registry_lock = Mutex.create ();
      partial = [||];
      persistent_pool = dummy;
      generic_pool = dummy;
      stats =
        {
          sb_fresh = 0;
          sb_range_reused = 0;
          sb_released = 0;
          sb_remapped = 0;
          large_allocs = 0;
          large_frees = 0;
          pressure_recoveries = 0;
          pressure_failures = 0;
        };
      trace = Trace.null;
      range_hook = None;
    }
  in
  let get id = get_desc t id in
  t.partial <-
    Array.init
      (2 * Size_class.count classes)
      (fun _ -> Desc_list.create meta ~get);
  t.persistent_pool <- Desc_list.create meta ~get;
  t.generic_pool <- Desc_list.create meta ~get;
  t

let sb_words t = Config.sb_words t.geom t.cfg
let sb_pages t = t.cfg.Config.sb_pages
let set_trace t tr = t.trace <- tr
let trace t = t.trace
let set_range_hook t h = t.range_hook <- h

let notify_range t ~base ~npages event =
  match t.range_hook with
  | None -> ()
  | Some f -> f ~base ~npages ~event

(* Superblock lifecycle trace events: "fresh", "range_reused", "released",
   "remapped" (pool transitions) plus the anchor state names. *)
let emit_transition t ctx (d : Descriptor.t) state =
  if Trace.enabled t.trace then
    Trace.emit t.trace ~tid:(Engine.Mem.tid ctx) ~at:(Engine.Mem.now ctx)
      (Trace.Superblock_transition { desc = d.Descriptor.id; state })

let partial_list t ~cls ~persistent =
  t.partial.((2 * cls) + if persistent then 1 else 0)

(* Fresh descriptor; never reclaimed, as in the paper. *)
let new_descriptor t =
  Mutex.lock t.registry_lock;
  let id = t.ndescs in
  if id >= Array.length t.descs then begin
    let bigger = Array.make (2 * Array.length t.descs) t.descs.(0) in
    Array.blit t.descs 0 bigger 0 t.ndescs;
    t.descs <- bigger
  end;
  let d = Descriptor.make t.meta ~id in
  t.descs.(id) <- d;
  t.ndescs <- id + 1;
  Mutex.unlock t.registry_lock;
  d

let descriptor_count t = t.ndescs

(* --- superblock acquisition (§4 priority order) -------------------------- *)

(* Attach a fresh virtual range to [d]. *)
let attach_fresh_range t ctx d npages =
  let addr = Vmem.reserve t.vmem ~npages in
  Vmem.map_anon t.vmem ctx ~vpage:(Geometry.page_of_addr t.geom addr) ~npages;
  d.Descriptor.sb_start <- addr;
  d.Descriptor.pages <- npages;
  t.stats.sb_fresh <- t.stats.sb_fresh + 1;
  notify_range t ~base:addr ~npages Range_carved;
  emit_transition t ctx d "fresh"

(* Target number of blocks per cache fill for a class. *)
let fill_batch t cls =
  min
    (Size_class.blocks_per_superblock t.classes ~sb_words:(sb_words t) cls)
    t.cfg.Config.cache_blocks

(* Build a superblock for size class [cls] and return its first [batch]
   blocks for the requesting cache; the remainder is carved into the
   superblock's free list and the superblock is published as partial.
   Descriptor priority: persistent pool (range attached and size-class
   compatible), then generic pool, then a fresh descriptor (§4). *)
let acquire_superblock_raw t ctx ~cls ~persistent =
  let npages = sb_pages t in
  let d =
    match Desc_list.pop t.persistent_pool ctx with
    | Some d ->
        assert (d.Descriptor.pages = npages);
        (match t.cfg.Config.remap with
        | Config.Shared_map ->
            (* take the range back from the shared region *)
            Vmem.remap_private t.vmem ctx
              ~vpage:(Geometry.page_of_addr t.geom d.Descriptor.sb_start)
              ~npages
        | Config.Madvise | Config.Keep_resident -> ());
        t.stats.sb_range_reused <- t.stats.sb_range_reused + 1;
        notify_range t ~base:d.Descriptor.sb_start ~npages Range_carved;
        emit_transition t ctx d "range_reused";
        d
    | None -> (
        match Desc_list.pop t.generic_pool ctx with
        | Some d ->
            attach_fresh_range t ctx d npages;
            d
        | None ->
            let d = new_descriptor t in
            attach_fresh_range t ctx d npages;
            d)
  in
  let bw = Size_class.block_words t.classes cls in
  d.Descriptor.size_class <- cls;
  d.Descriptor.block_words <- bw;
  d.Descriptor.max_count <-
    Size_class.blocks_per_superblock t.classes ~sb_words:(sb_words t) cls;
  d.Descriptor.persistent <- persistent;
  Pagemap.set_range t.pagemap ctx
    ~vpage:(Geometry.page_of_addr t.geom d.Descriptor.sb_start)
    ~npages ~desc_id:d.Descriptor.id;
  let batch = min (fill_batch t cls) d.Descriptor.max_count in
  let blocks = List.init batch (fun i -> Descriptor.block_addr d i) in
  let tag = (Descriptor.peek_anchor d).Descriptor.tag + 1 in
  if batch = d.Descriptor.max_count then
    (* born Full: every block goes to the caller's cache *)
    Cell.set ctx d.Descriptor.anchor
      (Descriptor.pack
         { Descriptor.state = Descriptor.Full; avail = 0; count = 0; tag })
  else begin
    (* carve the remainder into the free list and publish as partial *)
    for i = batch to d.Descriptor.max_count - 1 do
      Vmem.store t.vmem ctx (Descriptor.block_addr d i) (i + 1)
    done;
    Cell.set ctx d.Descriptor.anchor
      (Descriptor.pack
         {
           Descriptor.state = Descriptor.Partial;
           avail = batch;
           count = d.Descriptor.max_count - batch;
           tag;
         });
    Desc_list.push (partial_list t ~cls ~persistent) ctx d
  end;
  (d, blocks)

(* Both superblock transitions run under an [Alloc_superblock] profiler
   span; nested remap syscalls show up as [Vmem_remap] children.  Wrappers
   are hand-eta-expanded so the disabled path allocates nothing. *)
let acquire_superblock t ctx ~cls ~persistent =
  let p = Engine.Mem.profile ctx in
  if Profile.enabled p then begin
    let tid = (Engine.Mem.tid ctx) in
    Profile.enter p ~tid ~now:(Engine.Mem.now ctx) Profile.Alloc_superblock;
    match acquire_superblock_raw t ctx ~cls ~persistent with
    | r ->
        Profile.leave p ~tid ~now:(Engine.Mem.now ctx);
        r
    | exception e ->
        Profile.leave p ~tid ~now:(Engine.Mem.now ctx);
        raise e
  end
  else acquire_superblock_raw t ctx ~cls ~persistent

(* --- release ------------------------------------------------------------- *)

(* Release an Empty superblock.  Persistent ranges stay readable: they are
   remapped rather than unmapped, and keep their descriptor's range for the
   persistent pool. *)
let release_superblock_raw t ctx d =
  let base = d.Descriptor.sb_start in
  let vpage = Geometry.page_of_addr t.geom base in
  let npages = d.Descriptor.pages in
  Pagemap.clear_range t.pagemap ctx ~vpage ~npages;
  if d.Descriptor.persistent then begin
    (match t.cfg.Config.remap with
    | Config.Madvise -> Vmem.madvise_dontneed t.vmem ctx ~vpage ~npages
    | Config.Shared_map -> Vmem.map_shared t.vmem ctx ~vpage ~npages
    | Config.Keep_resident ->
        (* free_block never creates Empty persistent superblocks here *)
        assert false);
    t.stats.sb_remapped <- t.stats.sb_remapped + 1;
    notify_range t ~base ~npages Range_remapped;
    emit_transition t ctx d "remapped";
    Desc_list.push t.persistent_pool ctx d
  end
  else begin
    Vmem.unmap t.vmem ctx ~vpage ~npages;
    d.Descriptor.sb_start <- 0;
    t.stats.sb_released <- t.stats.sb_released + 1;
    notify_range t ~base ~npages Range_released;
    emit_transition t ctx d "released";
    Desc_list.push t.generic_pool ctx d
  end

let release_superblock t ctx d =
  let p = Engine.Mem.profile ctx in
  if Profile.enabled p then begin
    let tid = (Engine.Mem.tid ctx) in
    Profile.enter p ~tid ~now:(Engine.Mem.now ctx) Profile.Alloc_superblock;
    match release_superblock_raw t ctx d with
    | () -> Profile.leave p ~tid ~now:(Engine.Mem.now ctx)
    | exception e ->
        Profile.leave p ~tid ~now:(Engine.Mem.now ctx);
        raise e
  end
  else release_superblock_raw t ctx d

(* --- block free (anchor state machine, Fig. 2) --------------------------- *)

let rec free_block t ctx (d : Descriptor.t) addr =
  let idx = Descriptor.block_index d addr in
  let a = Descriptor.read_anchor ctx d in
  (* Thread the block onto the free list: its first word stores the index
     of the previous head.  Writing before the CAS is safe: the block is
     not visible to any allocator until the CAS succeeds, and optimistic
     readers ignore what they read here (the paper's §3.1 contract). *)
  Vmem.store t.vmem ctx addr a.Descriptor.avail;
  let new_count = a.Descriptor.count + 1 in
  assert (new_count <= d.Descriptor.max_count);
  assert (a.Descriptor.state <> Descriptor.Empty);
  let keep_resident =
    d.Descriptor.persistent && t.cfg.Config.remap = Config.Keep_resident
  in
  let becomes_empty = new_count = d.Descriptor.max_count && not keep_resident in
  let desired =
    {
      Descriptor.state =
        (if becomes_empty then Descriptor.Empty else Descriptor.Partial);
      avail = idx;
      count = new_count;
      tag = a.Descriptor.tag + 1;
    }
  in
  if Descriptor.cas_anchor ctx d ~expect:a ~desired then begin
    if desired.Descriptor.state <> a.Descriptor.state then
      emit_transition t ctx d
        (Descriptor.state_name desired.Descriptor.state);
    if becomes_empty then
      (* If the descriptor is currently linked in its partial list the
         release is deferred to the popper; an unlinked descriptor can only
         become Empty through the popper itself (see take_partial), so
         releasing here is correct exactly when it was never re-linked,
         i.e. when the previous state was Full. *)
      (if a.Descriptor.state = Descriptor.Full then release_superblock t ctx d)
    else if a.Descriptor.state = Descriptor.Full then
      Desc_list.push
        (partial_list t ~cls:d.Descriptor.size_class
           ~persistent:d.Descriptor.persistent)
        ctx d
  end
  else begin
    Engine.Mem.pause ctx;
    free_block t ctx d addr
  end

(* --- partial reservation -------------------------------------------------- *)

(* Pop a partial superblock of [cls] and reserve up to [max_blocks] of its
   free blocks: walk that many free-list links from the observed head, then
   CAS the anchor past them.  A concurrent free or reservation changes the
   anchor tag and fails the CAS, in which case the walk is redone — the
   links themselves are stable while the anchor still matches, because a
   block's link is only rewritten once the block has been taken through an
   anchor transition.  Returns the reserved block addresses (head first).
   Empty superblocks encountered here are released on the spot. *)
let rec take_partial t ctx ~cls ~persistent ~max_blocks =
  let list = partial_list t ~cls ~persistent in
  match Desc_list.pop list ctx with
  | None -> None
  | Some d ->
      let rec reserve () =
        let a = Descriptor.read_anchor ctx d in
        match a.Descriptor.state with
        | Descriptor.Empty ->
            release_superblock t ctx d;
            take_partial t ctx ~cls ~persistent ~max_blocks
        | Descriptor.Full ->
            (* lost every block to races before we got here; drop it, it
               will be re-pushed on the next Full->Partial transition *)
            take_partial t ctx ~cls ~persistent ~max_blocks
        | Descriptor.Partial ->
            assert (a.Descriptor.count > 0);
            let k = min a.Descriptor.count max_blocks in
            (* Collect k blocks and the link past the last one.  A racing
               owner may rewrite a link we read (making it garbage); any
               such race also bumps the anchor tag, so the CAS below fails
               and we retry — the range check merely keeps the stale walk
               from crashing. *)
            let rec walk n idx acc =
              if idx < 0 || idx >= d.Descriptor.max_count then None
              else if n = 0 then Some (List.rev acc, idx)
              else
                let addr = Descriptor.block_addr d idx in
                walk (n - 1) (Vmem.load t.vmem ctx addr) (addr :: acc)
            in
            let walked =
              if k = a.Descriptor.count then
                (* taking everything: the trailing link is irrelevant *)
                walk (k - 1) a.Descriptor.avail []
                |> Option.map (fun (blocks, last) ->
                       (blocks @ [ Descriptor.block_addr d last ], 0))
              else walk k a.Descriptor.avail []
            in
            (match walked with
            | None ->
                Engine.Mem.pause ctx;
                reserve ()
            | Some (blocks, next_avail) ->
                let desired =
                  if k = a.Descriptor.count then
                    {
                      Descriptor.state = Descriptor.Full;
                      avail = 0;
                      count = 0;
                      tag = a.Descriptor.tag + 1;
                    }
                  else
                    {
                      Descriptor.state = Descriptor.Partial;
                      avail = next_avail;
                      count = a.Descriptor.count - k;
                      tag = a.Descriptor.tag + 1;
                    }
                in
                if Descriptor.cas_anchor ctx d ~expect:a ~desired then begin
                  (* still partial: make it findable again *)
                  if desired.Descriptor.state = Descriptor.Partial then
                    Desc_list.push list ctx d;
                  Some blocks
                end
                else begin
                  Engine.Mem.pause ctx;
                  reserve ()
                end)
      in
      reserve ()

(* Release every Empty superblock still sitting in the partial lists.
   Used at teardown and by the memory-release experiments. *)
let trim t ctx =
  Array.iter
    (fun list ->
      let rec drain keep =
        match Desc_list.pop list ctx with
        | None -> keep
        | Some d -> (
            match (Descriptor.read_anchor ctx d).Descriptor.state with
            | Descriptor.Empty ->
                release_superblock t ctx d;
                drain keep
            | Descriptor.Full | Descriptor.Partial -> drain (d :: keep))
      in
      let keep = drain [] in
      List.iter (fun d -> Desc_list.push list ctx d) keep)
    t.partial

(* --- large allocations (§4) ----------------------------------------------- *)

let alloc_large t ctx size =
  let pw = Geometry.page_words t.geom in
  let npages = (size + pw - 1) / pw in
  let d =
    match Desc_list.pop t.generic_pool ctx with
    | Some d -> d
    | None -> new_descriptor t
  in
  attach_fresh_range t ctx d npages;
  d.Descriptor.size_class <- -1;
  d.Descriptor.block_words <- size;
  d.Descriptor.max_count <- 1;
  d.Descriptor.persistent <- false;
  Pagemap.set_range t.pagemap ctx
    ~vpage:(Geometry.page_of_addr t.geom d.Descriptor.sb_start)
    ~npages ~desc_id:d.Descriptor.id;
  let tag = (Descriptor.peek_anchor d).Descriptor.tag + 1 in
  Cell.set ctx d.Descriptor.anchor
    (Descriptor.pack { Descriptor.state = Descriptor.Full; avail = 0; count = 0; tag });
  t.stats.large_allocs <- t.stats.large_allocs + 1;
  d.Descriptor.sb_start

let free_large t ctx (d : Descriptor.t) =
  let base = d.Descriptor.sb_start in
  let vpage = Geometry.page_of_addr t.geom base in
  Pagemap.clear_range t.pagemap ctx ~vpage ~npages:d.Descriptor.pages;
  Vmem.unmap t.vmem ctx ~vpage ~npages:d.Descriptor.pages;
  notify_range t ~base ~npages:d.Descriptor.pages Range_released;
  d.Descriptor.sb_start <- 0;
  let tag = (Descriptor.peek_anchor d).Descriptor.tag + 1 in
  Cell.set ctx d.Descriptor.anchor
    (Descriptor.pack { Descriptor.state = Descriptor.Empty; avail = 0; count = 0; tag });
  t.stats.large_frees <- t.stats.large_frees + 1;
  Desc_list.push t.generic_pool ctx d

(* --- lookups -------------------------------------------------------------- *)

let lookup_desc t ctx addr =
  Option.map (get_desc t) (Pagemap.lookup t.pagemap ctx addr)

let stats t = t.stats

let reset_stats t =
  let s = t.stats in
  s.sb_fresh <- 0;
  s.sb_range_reused <- 0;
  s.sb_released <- 0;
  s.sb_remapped <- 0;
  s.large_allocs <- 0;
  s.large_frees <- 0;
  s.pressure_recoveries <- 0;
  s.pressure_failures <- 0

let vmem t = t.vmem
let classes t = t.classes
let config t = t.cfg
let pagemap t = t.pagemap
let persistent_pool_size t = List.length (Desc_list.peek_ids t.persistent_pool)
let generic_pool_size t = List.length (Desc_list.peek_ids t.generic_pool)
