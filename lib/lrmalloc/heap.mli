(** The LRMalloc heap: superblock management (paper §2.3, §3, §4).

    Tracks superblocks through descriptors whose packed anchors implement
    the Full/Partial/Empty state machine of Fig. 2.  Empty non-persistent
    superblocks are unmapped; empty persistent superblocks are remapped
    according to the configured strategy and their descriptors — still
    carrying their virtual range — go to the *persistent* recycling pool,
    which has priority when building new superblocks (§4). *)

open Oamem_engine
open Oamem_vmem

type stats = {
  mutable sb_fresh : int;  (** superblocks built on a fresh virtual range *)
  mutable sb_range_reused : int;  (** built on a recycled persistent range *)
  mutable sb_released : int;  (** non-persistent: unmapped *)
  mutable sb_remapped : int;  (** persistent: madvise / shared remap *)
  mutable large_allocs : int;
  mutable large_frees : int;
  mutable pressure_recoveries : int;
      (** [Out_of_frames] events recovered by cache flush + trim *)
  mutable pressure_failures : int;
      (** recoveries that ended in [Lrmalloc.Out_of_memory] *)
}

type t

type range_event =
  | Range_carved  (** a fresh or recycled range was attached to a superblock *)
  | Range_released  (** non-persistent range unmapped (or a large free) *)
  | Range_remapped
      (** persistent range remapped: frames released, range stays readable *)

val create :
  ?cfg:Config.t -> ?classes:Size_class.t -> vmem:Vmem.t -> meta:Cell.heap ->
  unit -> t

val sb_words : t -> int
val sb_pages : t -> int

val fill_batch : t -> int -> int
(** Target number of blocks per cache fill for a class. *)

val acquire_superblock :
  t -> Engine.ctx -> cls:int -> persistent:bool -> Descriptor.t * int list
(** Build a superblock and return its first fill batch; the rest is carved
    into the superblock's free list and published as partial. *)

val take_partial :
  t ->
  Engine.ctx ->
  cls:int ->
  persistent:bool ->
  max_blocks:int ->
  int list option
(** Reserve up to [max_blocks] blocks from a partial superblock.  Empty
    superblocks found on the way are released. *)

val free_block : t -> Engine.ctx -> Descriptor.t -> int -> unit
(** Return one block (the Fig. 2 anchor state machine). *)

val release_superblock : t -> Engine.ctx -> Descriptor.t -> unit
val trim : t -> Engine.ctx -> unit
(** Release every empty superblock still sitting in the partial lists. *)

val alloc_large : t -> Engine.ctx -> int -> int
val free_large : t -> Engine.ctx -> Descriptor.t -> unit

val lookup_desc : t -> Engine.ctx -> int -> Descriptor.t option
(** Descriptor owning an address, via the pagemap (charged). *)

val get_desc : t -> int -> Descriptor.t
val descriptor_count : t -> int
val persistent_pool_size : t -> int
val generic_pool_size : t -> int

val stats : t -> stats

val reset_stats : t -> unit
(** Zero all heap counters (measurement reset). *)

val set_trace : t -> Oamem_obs.Trace.t -> unit
(** Attach an event trace: superblock lifecycle transitions are emitted as
    [Superblock_transition] events. *)

val set_range_hook :
  t -> (base:int -> npages:int -> event:range_event -> unit) option -> unit
(** Install an observer for superblock range transitions: carving (fresh
    range or recycled persistent range), release (unmap) and remapping
    (madvise / shared map).  Used by the lifecycle sanitizer to reset or
    keep its shadow state for the range; [None] uninstalls. *)

val trace : t -> Oamem_obs.Trace.t
val vmem : t -> Vmem.t
val classes : t -> Size_class.t
val config : t -> Config.t
val pagemap : t -> Pagemap.t
