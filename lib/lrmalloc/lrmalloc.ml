(* LRMalloc public interface: malloc / free / palloc (paper §2.3 + §3).

   [palloc] is the paper's contribution: it allocates exactly like [malloc]
   but marks the superblock persistent, guaranteeing the block's address
   range stays readable for the rest of the process lifetime even after the
   block is freed — precisely the contract the optimistic-access reclaimers
   need.  Persistent allocation is restricted to size-class sizes (§4).

   Persistent and regular blocks never share a superblock (a palloc'd block
   must come from a persistent superblock even when served from a cache), so
   thread caches and partial lists are keyed by (class, persistence).  Freed
   persistent blocks are reusable by *any* thread and any future [palloc] of
   that class — the cross-process-part reuse the paper gains over the
   original OA recycling pools. *)

open Oamem_engine
open Oamem_vmem
module Trace = Oamem_obs.Trace
module Profile = Oamem_obs.Profile

(* Lifecycle observer (the sanitizer): block hand-out / hand-back plus
   internal-section brackets.  Allocator internals write bookkeeping words
   (free-list links) *into* blocks; [enter]/[leave] bracket those sections so
   an access observer can tell them apart from application accesses. *)
type lifecycle = {
  block_alloc : Engine.ctx -> addr:int -> words:int -> persistent:bool -> unit;
  block_free : Engine.ctx -> addr:int -> words:int -> unit;
  enter : Engine.ctx -> unit;  (** entering allocator-internal code *)
  leave : Engine.ctx -> unit;  (** leaving allocator-internal code *)
}

type t = {
  heap : Heap.t;
  caches : Thread_cache.t;
  classes : Size_class.t;
  geom : Geometry.t;
  mutable lifecycle : lifecycle option;
}

let create ?(cfg = Config.default) ?(classes = Size_class.default) ~vmem ~meta
    ~nthreads () =
  let geom = Vmem.geometry vmem in
  let heap = Heap.create ~cfg ~classes ~vmem ~meta () in
  let caches = Thread_cache.create ~meta ~geom ~classes ~cfg ~nthreads in
  { heap; caches; classes; geom; lifecycle = None }

let heap t = t.heap
let vmem t = Heap.vmem t.heap
let config t = Heap.config t.heap
let set_lifecycle t h = t.lifecycle <- h

(* Open a profiler span around an allocator entry point.  The enabled check
   comes first so the disabled path costs one load and a branch. *)
let with_span ctx frame f =
  let p = Engine.Mem.profile ctx in
  if not (Profile.enabled p) then f ()
  else begin
    let tid = (Engine.Mem.tid ctx) in
    Profile.enter p ~tid ~now:(Engine.Mem.now ctx) frame;
    match f () with
    | r ->
        Profile.leave p ~tid ~now:(Engine.Mem.now ctx);
        r
    | exception e ->
        Profile.leave p ~tid ~now:(Engine.Mem.now ctx);
        raise e
  end

(* Run [f] as an allocator-internal section: exempt from conditional-access
   squashing (the allocator is trusted runtime code, not part of any
   scheme's optimistic protocol — a revoked thread must still be able to
   flush its cache or walk superblock anchors without its CASes failing
   forever), and flagged for the lifecycle observer when one is attached. *)
let with_internal t ctx f =
  Engine.Mem.unconditional ctx (fun () ->
      match t.lifecycle with
      | None -> f ()
      | Some h ->
          h.enter ctx;
          Fun.protect ~finally:(fun () -> h.leave ctx) f)

let emit t ctx kind =
  let tr = Heap.trace t.heap in
  if Trace.enabled tr then
    Trace.emit tr ~tid:(Engine.Mem.tid ctx) ~at:(Engine.Mem.now ctx) kind

(* Fill an empty cache stack with one batch of blocks: from a partial
   superblock's free list if one exists, otherwise from a fresh superblock.
   Blocks are pushed in reverse so they pop in the order the heap returned
   them (ascending addresses for a fresh superblock — good locality). *)
let fill_cache t ctx ~cls ~persistent st =
  let batch = Heap.fill_batch t.heap cls in
  let blocks =
    match Heap.take_partial t.heap ctx ~cls ~persistent ~max_blocks:batch with
    | Some blocks -> blocks
    | None ->
        let _d, blocks = Heap.acquire_superblock t.heap ctx ~cls ~persistent in
        blocks
  in
  List.iter
    (fun addr -> Thread_cache.push t.caches ctx st addr)
    (List.rev blocks)

let alloc_class_raw t ctx ~cls ~persistent =
  let st = Thread_cache.get t.caches ~tid:(Engine.Mem.tid ctx) ~cls ~persistent in
  match Thread_cache.pop t.caches ctx st with
  | Some addr -> addr
  | None ->
      fill_cache t ctx ~cls ~persistent st;
      (match Thread_cache.pop t.caches ctx st with
      | Some addr -> addr
      | None -> assert false)

let flush_stack t ctx st =
  Thread_cache.drain t.caches ctx st (fun addr ->
      match Heap.lookup_desc t.heap ctx addr with
      | Some d -> Heap.free_block t.heap ctx d addr
      | None -> assert false)

(* Return every cached block of thread [tid] to the heap. *)
let flush_thread_cache t ctx =
  with_span ctx Profile.Alloc_flush (fun () ->
      with_internal t ctx (fun () ->
          List.iter (flush_stack t ctx)
            (Thread_cache.stacks_of_thread t.caches ~tid:(Engine.Mem.tid ctx))))

(* --- memory-pressure recovery --------------------------------------------- *)

exception Out_of_memory

(* When the frame pool runs dry, the allocator holds two kinds of hoarded
   memory it can give back: the calling thread's cached blocks, and empty
   persistent superblocks whose frames the configured remap strategy can
   release.  Flush both and retry.  The quota is lifted by a small reserve
   while recovery runs, because returning a cached block writes a free-list
   link into the block — which can itself fault a frame in on a page the
   original carve never touched.  Kernels solve the same bootstrapping
   problem with a reclaim reserve. *)
let recover_pressure t ctx =
  let frames = Vmem.frames (Heap.vmem t.heap) in
  let cfg = Heap.config t.heap in
  let saved = Frames.quota frames in
  Fun.protect
    ~finally:(fun () -> Frames.set_quota frames saved)
    (fun () ->
      Option.iter
        (fun q ->
          Frames.set_quota frames (Some (q + cfg.Config.pressure_reserve_frames)))
        saved;
      flush_thread_cache t ctx;
      Engine.Mem.unconditional ctx (fun () -> Heap.trim t.heap ctx));
  let hs = Heap.stats t.heap in
  hs.Heap.pressure_recoveries <- hs.Heap.pressure_recoveries + 1

let with_pressure_recovery t ctx f =
  let cfg = Heap.config t.heap in
  let fail () =
    let hs = Heap.stats t.heap in
    hs.Heap.pressure_failures <- hs.Heap.pressure_failures + 1;
    raise Out_of_memory
  in
  let rec go attempt =
    try f () with
    | Frames.Out_of_frames when attempt < cfg.Config.pressure_max_retries -> (
        match recover_pressure t ctx with
        | () ->
            (* backoff: give other threads simulated time to free blocks *)
            for _ = 1 to 1 lsl attempt do
              Engine.Mem.pause ctx
            done;
            go (attempt + 1)
        | exception Frames.Out_of_frames -> fail ())
    | Frames.Out_of_frames -> fail ()
  in
  go 0

let alloc_class t ctx ~cls ~persistent =
  with_pressure_recovery t ctx (fun () ->
      alloc_class_raw t ctx ~cls ~persistent)

(* The observer is told the block's *real* extent (the size-class block
   size, not the requested size) so its shadow state covers every word the
   block owns. *)
let notify_alloc t ctx ~addr ~size ~persistent =
  match t.lifecycle with
  | None -> ()
  | Some h ->
      let words =
        match Size_class.of_size t.classes size with
        | Some cls -> Size_class.block_words t.classes cls
        | None -> size
      in
      h.block_alloc ctx ~addr ~words ~persistent

let malloc t ctx size =
  with_span ctx Profile.Alloc_malloc (fun () ->
      let addr =
        with_internal t ctx (fun () ->
            match Size_class.of_size t.classes size with
            | Some cls -> alloc_class t ctx ~cls ~persistent:false
            | None ->
                with_pressure_recovery t ctx (fun () ->
                    Heap.alloc_large t.heap ctx size))
      in
      notify_alloc t ctx ~addr ~size ~persistent:false;
      emit t ctx (Trace.Alloc { addr; words = size });
      addr)

(* Persistent allocation: the block's address range survives free (§3). *)
let palloc t ctx size =
  match Size_class.of_size t.classes size with
  | Some cls ->
      with_span ctx Profile.Alloc_malloc (fun () ->
          let addr =
            with_internal t ctx (fun () ->
                alloc_class t ctx ~cls ~persistent:true)
          in
          notify_alloc t ctx ~addr ~size ~persistent:true;
          emit t ctx (Trace.Alloc { addr; words = size });
          addr)
  | None ->
      invalid_arg
        "Lrmalloc.palloc: persistent allocation is restricted to size-class \
         sizes (paper, section 4)"

let free t ctx addr =
  with_span ctx Profile.Alloc_free (fun () ->
      match Heap.lookup_desc t.heap ctx addr with
      | None -> invalid_arg "Lrmalloc.free: not an allocated block"
      | Some d ->
          (match t.lifecycle with
          | None -> ()
          | Some h -> h.block_free ctx ~addr ~words:d.Descriptor.block_words);
          emit t ctx (Trace.Free { addr });
          with_internal t ctx (fun () ->
              if Descriptor.is_large d then Heap.free_large t.heap ctx d
              else begin
                let st =
                  Thread_cache.get t.caches ~tid:(Engine.Mem.tid ctx)
                    ~cls:d.Descriptor.size_class
                    ~persistent:d.Descriptor.persistent
                in
                (* A full-cache flush writes free-list links, which can fault
                   frames in — run it under the recovery net too. *)
                if Thread_cache.is_full st then
                  with_pressure_recovery t ctx (fun () -> flush_stack t ctx st);
                Thread_cache.push t.caches ctx st addr
              end))

(* Teardown helper: flush all threads' caches (with their own tids encoded
   in the given contexts) and release lingering empty superblocks. *)
let flush_all t ctxs =
  List.iter (fun ctx -> flush_thread_cache t ctx) ctxs;
  match ctxs with
  | [] -> ()
  | ctx :: _ -> Engine.Mem.unconditional ctx (fun () -> Heap.trim t.heap ctx)

let stats t = Heap.stats t.heap
