(** LRMalloc public interface: [malloc] / [free] / [palloc].

    [palloc] is the paper's contribution (§3): it allocates exactly like
    [malloc] but from superblocks marked *persistent*, guaranteeing that the
    block's address range stays readable for the rest of the process
    lifetime even after the block is freed — the contract optimistic-access
    reclamation needs.  Freed persistent blocks are reusable by any thread
    and any future [palloc]; their physical frames are released according to
    the configured {!Config.remap_strategy}.

    Persistent allocation is restricted to size-class sizes (§4). *)

open Oamem_engine
open Oamem_vmem

type t

val create :
  ?cfg:Config.t ->
  ?classes:Size_class.t ->
  vmem:Vmem.t ->
  meta:Cell.heap ->
  nthreads:int ->
  unit ->
  t

val heap : t -> Heap.t
val vmem : t -> Vmem.t
val config : t -> Config.t

(** {2 Lifecycle observation} (the sanitizer hook) *)

type lifecycle = {
  block_alloc : Engine.ctx -> addr:int -> words:int -> persistent:bool -> unit;
      (** a block was handed out; [words] is the block's real extent (the
          size-class block size, not the requested size) *)
  block_free : Engine.ctx -> addr:int -> words:int -> unit;
      (** a block was returned via {!free} *)
  enter : Engine.ctx -> unit;  (** entering allocator-internal code *)
  leave : Engine.ctx -> unit;  (** leaving allocator-internal code *)
}

val set_lifecycle : t -> lifecycle option -> unit
(** Install a lifecycle observer.  [enter]/[leave] bracket
    {!malloc}/{!palloc}/{!free}/{!flush_thread_cache} bodies (they nest;
    observers should keep a per-thread depth), so an access observer can
    distinguish the allocator's own bookkeeping stores into blocks
    (free-list links) from application accesses.  [None] uninstalls. *)

exception Out_of_memory
(** Allocation failed even after memory-pressure recovery: on
    {!Frames.Out_of_frames} the allocator flushes the calling thread's
    cache, releases empty persistent superblocks via the configured
    {!Config.remap_strategy} and retries with exponential backoff
    ({!Config.t.pressure_max_retries} attempts) before raising this. *)

val with_pressure_recovery : t -> Engine.ctx -> (unit -> 'a) -> 'a
(** Run [f] under the allocator's recovery net: on [Frames.Out_of_frames],
    flush + release + backoff, then retry [f] (so [f] must tolerate being
    rerun).  [malloc]/[palloc]/[free] are already wrapped; use this around
    application code that writes into fresh blocks and can therefore fault
    frames in itself. *)

val malloc : t -> Engine.ctx -> int -> int
(** Allocate [size] words; sizes above the largest class use the
    large-allocation path (§4).  Raises {!Out_of_memory} if the frame
    quota cannot be satisfied even after pressure recovery. *)

val palloc : t -> Engine.ctx -> int -> int
(** Persistent allocation (§3).  Raises [Invalid_argument] for sizes above
    the largest size class. *)

val free : t -> Engine.ctx -> int -> unit
(** Return a block.  Raises [Invalid_argument] for unknown addresses. *)

val flush_thread_cache : t -> Engine.ctx -> unit
(** Return every block cached by the calling thread to the heap. *)

val flush_all : t -> Engine.ctx list -> unit
(** Teardown helper: flush the given threads' caches (each ctx carries its
    tid) and release lingering empty superblocks. *)

val stats : t -> Heap.stats
