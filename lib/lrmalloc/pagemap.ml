(* The pagemap (paper §2.3): page -> descriptor.

   Superblocks are page-aligned and span whole pages, so every block in a
   page belongs to the same superblock; mapping pages to descriptor ids is
   enough to find the descriptor (and hence size class) of any block handed
   to [free].

   The table itself occupies simulated memory: each lookup/update charges a
   cache access at a synthetic address in a dedicated metadata range, so the
   pagemap's footprint and contention are part of the cost model, as in the
   real allocator. *)

open Oamem_engine

(* Above the cell heap's default base, far from any frame address. *)
let table_base = 1 lsl 52

type t = {
  entries : int Atomic.t array;  (* vpage -> desc id + 1; 0 = none *)
  geom : Geometry.t;
  max_pages : int;
}

let create ~geom ~max_pages =
  {
    entries = Array.init max_pages (fun _ -> Atomic.make 0);
    geom;
    max_pages;
  }

let account ctx t vpage kind =
  let paddr = table_base + vpage in
  Engine.Mem.access ctx ~vpage:(Geometry.page_of_addr t.geom paddr) ~paddr ~kind

let set_range t ctx ~vpage ~npages ~desc_id =
  if vpage < 0 || vpage + npages > t.max_pages then
    invalid_arg "Pagemap.set_range";
  for p = vpage to vpage + npages - 1 do
    account ctx t p Engine.Store;
    Atomic.set t.entries.(p) (desc_id + 1)
  done

let clear_range t ctx ~vpage ~npages =
  for p = vpage to vpage + npages - 1 do
    account ctx t p Engine.Store;
    Atomic.set t.entries.(p) 0
  done

(* Descriptor id owning [addr], if any. *)
let lookup t ctx addr =
  let vpage = Geometry.page_of_addr t.geom addr in
  if vpage < 0 || vpage >= t.max_pages then None
  else begin
    account ctx t vpage Engine.Load;
    match Atomic.get t.entries.(vpage) with 0 -> None | id -> Some (id - 1)
  end

let peek t addr =
  let vpage = Geometry.page_of_addr t.geom addr in
  if vpage < 0 || vpage >= t.max_pages then None
  else match Atomic.get t.entries.(vpage) with 0 -> None | id -> Some (id - 1)
