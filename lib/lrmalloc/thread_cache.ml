(* Per-thread block caches (paper §2.3).

   Each thread owns one stack of free block addresses per (size class,
   persistence) pair, so the fast path of malloc/palloc/free is a push or a
   pop with no synchronisation.  Stacks are created lazily and backed by a
   simulated address range from the metadata heap, so the cost model sees
   their footprint: a large hot cache genuinely competes for L1 space with
   the application's data, one of the effects discussed in the paper's §5.2.

   Capacity is [cache_multiplier] superblocks worth of blocks; a fill of a
   whole newly-built superblock always fits in an empty stack. *)

open Oamem_engine

type stack = {
  mutable arr : int array;
  mutable top : int;
  cap : int;
  base_addr : int;  (* simulated address of slot 0 *)
}

type t = {
  meta : Cell.heap;
  geom : Geometry.t;
  classes : Size_class.t;
  cfg : Config.t;
  stacks : stack option array array;  (* tid -> class*2 + persistent *)
}

let create ~meta ~geom ~classes ~cfg ~nthreads =
  {
    meta;
    geom;
    classes;
    cfg;
    stacks =
      Array.init nthreads (fun _ ->
          Array.make (2 * Size_class.count classes) None);
  }

let capacity t cls =
  let batch =
    min
      (Size_class.blocks_per_superblock t.classes
         ~sb_words:(Config.sb_words t.geom t.cfg)
         cls)
      t.cfg.Config.cache_blocks
  in
  t.cfg.Config.cache_multiplier * batch

let get t ~tid ~cls ~persistent =
  let idx = (2 * cls) + if persistent then 1 else 0 in
  match t.stacks.(tid).(idx) with
  | Some st -> st
  | None ->
      let cap = capacity t cls in
      let st =
        {
          arr = Array.make cap 0;
          top = 0;
          cap;
          base_addr = Cell.alloc_words t.meta ~pad:true cap;
        }
      in
      t.stacks.(tid).(idx) <- Some st;
      st

let account t ctx st kind =
  let paddr = st.base_addr + st.top in
  Engine.Mem.access ctx ~vpage:(Geometry.page_of_addr t.geom paddr) ~paddr ~kind

let is_full st = st.top >= st.cap
let size st = st.top

let push t ctx st addr =
  assert (not (is_full st));
  account t ctx st Engine.Store;
  st.arr.(st.top) <- addr;
  st.top <- st.top + 1

let pop t ctx st =
  if st.top = 0 then None
  else begin
    st.top <- st.top - 1;
    account t ctx st Engine.Load;
    Some st.arr.(st.top)
  end

(* Iterate and empty the stack (cache flush). *)
let drain t ctx st f =
  while st.top > 0 do
    match pop t ctx st with Some a -> f a | None -> assert false
  done

(* Every live stack of one thread (teardown). *)
let stacks_of_thread t ~tid =
  Array.to_list t.stacks.(tid) |> List.filter_map Fun.id

let nthreads t = Array.length t.stacks
