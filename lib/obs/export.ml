let args_of_kind (k : Trace.kind) : (string * Json.t) list =
  match k with
  | Alloc { addr; words } -> [ ("addr", Int addr); ("words", Int words) ]
  | Free { addr } | Retire { addr } -> [ ("addr", Int addr) ]
  | Reclaim_phase { freed } -> [ ("freed", Int freed) ]
  | Warning { piggybacked } -> [ ("piggybacked", Bool piggybacked) ]
  | Fault_in { vpage } -> [ ("vpage", Int vpage) ]
  | Frames_released { count } -> [ ("count", Int count) ]
  | Superblock_transition { desc; state } ->
      [ ("desc", Int desc); ("state", String state) ]
  | Stall { cycles } -> [ ("cycles", Int cycles) ]
  | Neutralize_post { victim } | Revoke_post { victim } ->
      [ ("victim", Int victim) ]
  | Restart | Crash | Neutralized | Cond_fail -> []

let category_of_kind (k : Trace.kind) =
  match k with
  | Alloc _ | Free _ -> "alloc"
  | Retire _ | Reclaim_phase _ | Warning _ | Restart -> "reclaim"
  | Fault_in _ | Frames_released _ -> "vmem"
  | Superblock_transition _ -> "superblock"
  | Stall _ | Crash | Neutralize_post _ | Neutralized -> "fault"
  | Revoke_post _ | Cond_fail -> "reclaim"

let chrome_event (e : Trace.event) : Json.t =
  let common =
    [
      ("name", Json.String (Trace.kind_name e.kind));
      ("cat", Json.String (category_of_kind e.kind));
      ("pid", Json.Int 1);
      ("tid", Json.Int e.tid);
      ("ts", Json.Int e.at);
    ]
  in
  let shape =
    match e.kind with
    | Stall { cycles } ->
        [ ("ph", Json.String "X"); ("dur", Json.Int cycles) ]
    | _ -> [ ("ph", Json.String "i"); ("s", Json.String "t") ]
  in
  let args = args_of_kind e.kind in
  Json.Obj
    (common @ shape
    @ if args = [] then [] else [ ("args", Json.Obj args) ])

(* Ring overwrites mean the exported document is missing events; say so in
   the document itself instead of leaving consumers to notice a counter. *)
let drop_warning n =
  Printf.sprintf
    "%d trace event(s) dropped by ring overwrite; raise trace_capacity" n

(* --- timelines ------------------------------------------------------------- *)

let op_frames = Profile.op_frames

let latency_summary (l : Profile.latency) =
  [
    ("count", Json.Int l.count);
    ("p50", Json.Int (Profile.percentile l 0.50));
    ("p99", Json.Int (Profile.percentile l 0.99));
    ("max", Json.Int l.max_cycles);
  ]

let agg_json tl agg =
  let counters =
    List.map
      (fun c -> (Timeline.column_name c, Json.Int (Timeline.agg_count agg c)))
      Timeline.columns
  in
  let gauges =
    List.mapi (fun id name -> (id, name)) (Timeline.gauges tl)
    |> List.filter_map (fun (id, name) ->
           match Timeline.agg_gauge agg id with
           | None -> None
           | Some (last, gmax) ->
               Some
                 ( name,
                   Json.Obj [ ("last", Json.Int last); ("max", Json.Int gmax) ]
                 ))
  in
  let op_latency =
    match Timeline.agg_latency_merged agg op_frames with
    | None -> []
    | Some l -> [ ("op_latency", Json.Obj (latency_summary l)) ]
  in
  [ ("counters", Json.Obj counters); ("gauges", Json.Obj gauges) ] @ op_latency

let timeline_json tl =
  let phase (name, agg) =
    let start =
      List.fold_left
        (fun acc (n, at) ->
          match acc with
          | Some _ -> acc
          | None -> if String.equal n name then Some at else None)
        None (Timeline.marks tl)
    in
    let latencies =
      List.filter_map
        (fun f ->
          match Timeline.agg_latency agg f with
          | None -> None
          | Some l ->
              Some
                (Json.Obj
                   (("frame", Json.String (Profile.frame_name f))
                   :: latency_summary l)))
        Profile.all_frames
    in
    Json.Obj
      ([
         ("name", Json.String name);
         ("start", Json.Int (Option.value start ~default:0));
       ]
      @ agg_json tl agg
      @ [ ("latencies", Json.List latencies) ])
  in
  let window (i, agg) =
    Json.Obj
      ([
         ("index", Json.Int i);
         ("start", Json.Int (i * Timeline.width tl));
         ( "phase",
           Json.String (Timeline.phase_of_cycle tl (i * Timeline.width tl)) );
       ]
      @ agg_json tl agg)
  in
  Json.Obj
    [
      ("window_cycles", Json.Int (Timeline.width tl));
      ("gauges", Json.List (List.map (fun g -> Json.String g) (Timeline.gauges tl)));
      ("phases", Json.List (List.map phase (Timeline.phase_aggs tl)));
      ("windows", Json.List (List.map window (Timeline.window_aggs tl)));
    ]

let timeline_csv tl =
  let gauge_names = Timeline.gauges tl in
  let header =
    [ "window"; "start_cycles"; "phase" ]
    @ List.map Timeline.column_name Timeline.columns
    @ [ "ops"; "op_p50"; "op_p99"; "op_max" ]
    @ List.concat_map
        (fun g -> [ g ^ "_last"; g ^ "_max" ])
        gauge_names
  in
  let row (i, agg) =
    let start = i * Timeline.width tl in
    let ops =
      match Timeline.agg_latency_merged agg op_frames with
      | None -> [ "0"; "0"; "0"; "0" ]
      | Some l ->
          [
            string_of_int l.count;
            string_of_int (Profile.percentile l 0.50);
            string_of_int (Profile.percentile l 0.99);
            string_of_int l.max_cycles;
          ]
    in
    let gauges =
      List.concat
        (List.mapi
           (fun id _ ->
             match Timeline.agg_gauge agg id with
             | None -> [ ""; "" ]
             | Some (last, gmax) ->
                 [ string_of_int last; string_of_int gmax ])
           gauge_names)
    in
    [
      string_of_int i;
      string_of_int start;
      Timeline.phase_of_cycle tl start;
    ]
    @ List.map
        (fun c -> string_of_int (Timeline.agg_count agg c))
        Timeline.columns
    @ ops @ gauges
  in
  (header, List.map row (Timeline.window_aggs tl))

(* Chrome "C" (counter) events: one per populated window for every column
   that is nonzero somewhere in the run, plus every sampled gauge and the
   per-window op p99 — renders as stacked counter tracks over the instant
   events of the same trace. *)
let timeline_counter_events tl =
  let windows = Timeline.window_aggs tl in
  let live_cols =
    List.filter
      (fun c ->
        List.exists (fun (_, agg) -> Timeline.agg_count agg c > 0) windows)
      Timeline.columns
  in
  let counter name ts v =
    Json.Obj
      [
        ("name", Json.String name);
        ("ph", Json.String "C");
        ("pid", Json.Int 1);
        ("ts", Json.Int ts);
        ("args", Json.Obj [ ("value", Json.Int v) ]);
      ]
  in
  List.concat_map
    (fun (i, agg) ->
      let ts = i * Timeline.width tl in
      let cols =
        List.map
          (fun c ->
            counter ("timeline." ^ Timeline.column_name c) ts
              (Timeline.agg_count agg c))
          live_cols
      in
      let gs =
        List.mapi (fun id g -> (id, g)) (Timeline.gauges tl)
        |> List.filter_map (fun (id, g) ->
               match Timeline.agg_gauge agg id with
               | None -> None
               | Some (last, _) -> Some (counter ("timeline." ^ g) ts last))
      in
      cols @ gs)
    windows

let chrome_trace ?(timeline = Timeline.null) tr =
  let events = Trace.events tr in
  let name_threads =
    List.init (Trace.nthreads tr) (fun tid ->
        Json.Obj
          [
            ("name", Json.String "thread_name");
            ("ph", Json.String "M");
            ("pid", Json.Int 1);
            ("tid", Json.Int tid);
            ("args", Json.Obj [ ("name", Json.String (Printf.sprintf "sim-thread-%d" tid)) ]);
          ])
  in
  let counters = timeline_counter_events timeline in
  let dropped = Trace.dropped tr in
  let warning =
    if dropped > 0 then [ ("warning", Json.String (drop_warning dropped)) ]
    else []
  in
  Json.Obj
    [
      ( "traceEvents",
        Json.List (name_threads @ List.map chrome_event events @ counters) );
      ("displayTimeUnit", Json.String "ns");
      ("otherData",
       Json.Obj
         ([
            ("recorded", Json.Int (Trace.recorded tr));
            ("dropped", Json.Int dropped);
          ]
         @ warning));
    ]

let write_file path s =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc s;
      output_char oc '\n')

let write_chrome_trace ?timeline path tr =
  write_file path (Json.to_string (chrome_trace ?timeline tr))

let write_timeline path tl = write_file path (Json.to_string (timeline_json tl))

let metrics_json ?(extra = []) (s : Metrics.snapshot) =
  let split kind =
    List.filter_map
      (fun (name, k, v) -> if k = kind then Some (name, Json.Int v) else None)
      s.values
  in
  (* A histogram nobody observed into would serialise as
     {"count": 0, "max": 0, "buckets": []} — well-formed but noise, and a
     trap for consumers that assume at least one bucket.  Omit them. *)
  let histograms =
    List.map
      (fun (h : Metrics.hist_snapshot) ->
        Json.Obj
          [
            ("name", Json.String h.hname);
            ("count", Json.Int h.count);
            ("sum", Json.Int h.sum);
            ("max", Json.Int h.max_value);
            ("buckets",
             Json.List
               (List.map
                  (fun (le, n) -> Json.Obj [ ("le", Json.Int le); ("count", Json.Int n) ])
                  h.buckets));
          ])
      (List.filter (fun (h : Metrics.hist_snapshot) -> h.count > 0) s.histograms)
  in
  let warning =
    match
      List.find_opt
        (fun (name, k, v) ->
          k = Metrics.Counter && String.equal name "obs.trace_dropped" && v > 0)
        s.values
    with
    | Some (_, _, n) -> [ ("warning", Json.String (drop_warning n)) ]
    | None -> []
  in
  Json.Obj
    (extra
    @ [
        ("counters", Json.Obj (split Metrics.Counter));
        ("gauges", Json.Obj (split Metrics.Gauge));
        ("histograms", Json.List histograms);
      ]
    @ warning)

let write_metrics ?extra path s = write_file path (Json.to_string (metrics_json ?extra s))

let write_csv path ~header rows =
  (* Ragged rows silently corrupt downstream tooling (column shifts in
     spreadsheet/pandas imports); validate up front. *)
  let width = List.length header in
  List.iteri
    (fun i row ->
      let w = List.length row in
      if w <> width then
        invalid_arg
          (Printf.sprintf
             "Export.write_csv %s: row %d has %d cells, header has %d" path i
             w width))
    rows;
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (String.concat "," header);
      output_char oc '\n';
      List.iter
        (fun row ->
          output_string oc (String.concat "," row);
          output_char oc '\n')
        rows)

let write_timeline_csv path tl =
  let header, rows = timeline_csv tl in
  write_csv path ~header rows

(* --- profiles -------------------------------------------------------------- *)

let span_path path = String.concat ";" (List.map Profile.frame_name path)

let profile_json ?(top = 10) (p : Profile.t) =
  let span (s : Profile.span) =
    Json.Obj
      [
        ("path", Json.String (span_path s.path));
        ("self_cycles", Json.Int s.self_cycles);
        ("total_cycles", Json.Int s.total_cycles);
        ("calls", Json.Int s.calls);
      ]
  in
  let latency (l : Profile.latency) =
    Json.Obj
      [
        ("frame", Json.String (Profile.frame_name l.lframe));
        ("count", Json.Int l.count);
        ("sum", Json.Int l.sum);
        ("max", Json.Int l.max_cycles);
        ("p50", Json.Int (Profile.percentile l 0.50));
        ("p99", Json.Int (Profile.percentile l 0.99));
        ("buckets",
         Json.List
           (List.map
              (fun (le, n) ->
                Json.Obj [ ("le", Json.Int le); ("count", Json.Int n) ])
              l.buckets));
      ]
  in
  let hot (h : Profile.hot_addr) =
    Json.Obj
      [
        ("addr", Json.Int h.addr);
        ("invalidations", Json.Int h.invalidations);
        ("cas_failures", Json.Int h.cas_failures);
        ("owner", Json.String (span_path h.owner));
      ]
  in
  Json.Obj
    [
      ("total_cycles", Json.Int (Profile.total_cycles p));
      ("unattributed_cycles", Json.Int (Profile.unattributed_cycles p));
      ("spans", Json.List (List.map span (Profile.spans p)));
      ("latencies", Json.List (List.map latency (Profile.latencies p)));
      ("hot_addrs", Json.List (List.map hot (Profile.hot_addrs ~top p)));
    ]

let collapsed_stacks (p : Profile.t) =
  let lines =
    List.filter_map
      (fun (s : Profile.span) ->
        if s.self_cycles > 0 then
          Some (Printf.sprintf "%s %d" (span_path s.path) s.self_cycles)
        else None)
      (Profile.spans p)
  in
  let lines =
    let un = Profile.unattributed_cycles p in
    if un > 0 then lines @ [ Printf.sprintf "(unattributed) %d" un ]
    else lines
  in
  String.concat "\n" lines

let write_profile ?top path p =
  write_file path (Json.to_string (profile_json ?top p))

let write_collapsed path p = write_file path (collapsed_stacks p)
