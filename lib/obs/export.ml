let args_of_kind (k : Trace.kind) : (string * Json.t) list =
  match k with
  | Alloc { addr; words } -> [ ("addr", Int addr); ("words", Int words) ]
  | Free { addr } | Retire { addr } -> [ ("addr", Int addr) ]
  | Reclaim_phase { freed } -> [ ("freed", Int freed) ]
  | Warning { piggybacked } -> [ ("piggybacked", Bool piggybacked) ]
  | Fault_in { vpage } -> [ ("vpage", Int vpage) ]
  | Frames_released { count } -> [ ("count", Int count) ]
  | Superblock_transition { desc; state } ->
      [ ("desc", Int desc); ("state", String state) ]
  | Stall { cycles } -> [ ("cycles", Int cycles) ]
  | Neutralize_post { victim } -> [ ("victim", Int victim) ]
  | Restart | Crash | Neutralized -> []

let category_of_kind (k : Trace.kind) =
  match k with
  | Alloc _ | Free _ -> "alloc"
  | Retire _ | Reclaim_phase _ | Warning _ | Restart -> "reclaim"
  | Fault_in _ | Frames_released _ -> "vmem"
  | Superblock_transition _ -> "superblock"
  | Stall _ | Crash | Neutralize_post _ | Neutralized -> "fault"

let chrome_event (e : Trace.event) : Json.t =
  let common =
    [
      ("name", Json.String (Trace.kind_name e.kind));
      ("cat", Json.String (category_of_kind e.kind));
      ("pid", Json.Int 1);
      ("tid", Json.Int e.tid);
      ("ts", Json.Int e.at);
    ]
  in
  let shape =
    match e.kind with
    | Stall { cycles } ->
        [ ("ph", Json.String "X"); ("dur", Json.Int cycles) ]
    | _ -> [ ("ph", Json.String "i"); ("s", Json.String "t") ]
  in
  let args = args_of_kind e.kind in
  Json.Obj
    (common @ shape
    @ if args = [] then [] else [ ("args", Json.Obj args) ])

let chrome_trace tr =
  let events = Trace.events tr in
  let name_threads =
    List.init (Trace.nthreads tr) (fun tid ->
        Json.Obj
          [
            ("name", Json.String "thread_name");
            ("ph", Json.String "M");
            ("pid", Json.Int 1);
            ("tid", Json.Int tid);
            ("args", Json.Obj [ ("name", Json.String (Printf.sprintf "sim-thread-%d" tid)) ]);
          ])
  in
  Json.Obj
    [
      ("traceEvents", Json.List (name_threads @ List.map chrome_event events));
      ("displayTimeUnit", Json.String "ns");
      ("otherData",
       Json.Obj
         [
           ("recorded", Json.Int (Trace.recorded tr));
           ("dropped", Json.Int (Trace.dropped tr));
         ]);
    ]

let write_file path s =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc s;
      output_char oc '\n')

let write_chrome_trace path tr = write_file path (Json.to_string (chrome_trace tr))

let metrics_json ?(extra = []) (s : Metrics.snapshot) =
  let split kind =
    List.filter_map
      (fun (name, k, v) -> if k = kind then Some (name, Json.Int v) else None)
      s.values
  in
  (* A histogram nobody observed into would serialise as
     {"count": 0, "max": 0, "buckets": []} — well-formed but noise, and a
     trap for consumers that assume at least one bucket.  Omit them. *)
  let histograms =
    List.map
      (fun (h : Metrics.hist_snapshot) ->
        Json.Obj
          [
            ("name", Json.String h.hname);
            ("count", Json.Int h.count);
            ("sum", Json.Int h.sum);
            ("max", Json.Int h.max_value);
            ("buckets",
             Json.List
               (List.map
                  (fun (le, n) -> Json.Obj [ ("le", Json.Int le); ("count", Json.Int n) ])
                  h.buckets));
          ])
      (List.filter (fun (h : Metrics.hist_snapshot) -> h.count > 0) s.histograms)
  in
  Json.Obj
    (extra
    @ [
        ("counters", Json.Obj (split Metrics.Counter));
        ("gauges", Json.Obj (split Metrics.Gauge));
        ("histograms", Json.List histograms);
      ])

let write_metrics ?extra path s = write_file path (Json.to_string (metrics_json ?extra s))

let write_csv path ~header rows =
  (* Ragged rows silently corrupt downstream tooling (column shifts in
     spreadsheet/pandas imports); validate up front. *)
  let width = List.length header in
  List.iteri
    (fun i row ->
      let w = List.length row in
      if w <> width then
        invalid_arg
          (Printf.sprintf
             "Export.write_csv %s: row %d has %d cells, header has %d" path i
             w width))
    rows;
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (String.concat "," header);
      output_char oc '\n';
      List.iter
        (fun row ->
          output_string oc (String.concat "," row);
          output_char oc '\n')
        rows)

(* --- profiles -------------------------------------------------------------- *)

let span_path path = String.concat ";" (List.map Profile.frame_name path)

let profile_json ?(top = 10) (p : Profile.t) =
  let span (s : Profile.span) =
    Json.Obj
      [
        ("path", Json.String (span_path s.path));
        ("self_cycles", Json.Int s.self_cycles);
        ("total_cycles", Json.Int s.total_cycles);
        ("calls", Json.Int s.calls);
      ]
  in
  let latency (l : Profile.latency) =
    Json.Obj
      [
        ("frame", Json.String (Profile.frame_name l.lframe));
        ("count", Json.Int l.count);
        ("sum", Json.Int l.sum);
        ("max", Json.Int l.max_cycles);
        ("p50", Json.Int (Profile.percentile l 0.50));
        ("p99", Json.Int (Profile.percentile l 0.99));
        ("buckets",
         Json.List
           (List.map
              (fun (le, n) ->
                Json.Obj [ ("le", Json.Int le); ("count", Json.Int n) ])
              l.buckets));
      ]
  in
  let hot (h : Profile.hot_addr) =
    Json.Obj
      [
        ("addr", Json.Int h.addr);
        ("invalidations", Json.Int h.invalidations);
        ("cas_failures", Json.Int h.cas_failures);
        ("owner", Json.String (span_path h.owner));
      ]
  in
  Json.Obj
    [
      ("total_cycles", Json.Int (Profile.total_cycles p));
      ("unattributed_cycles", Json.Int (Profile.unattributed_cycles p));
      ("spans", Json.List (List.map span (Profile.spans p)));
      ("latencies", Json.List (List.map latency (Profile.latencies p)));
      ("hot_addrs", Json.List (List.map hot (Profile.hot_addrs ~top p)));
    ]

let collapsed_stacks (p : Profile.t) =
  let lines =
    List.filter_map
      (fun (s : Profile.span) ->
        if s.self_cycles > 0 then
          Some (Printf.sprintf "%s %d" (span_path s.path) s.self_cycles)
        else None)
      (Profile.spans p)
  in
  let lines =
    let un = Profile.unattributed_cycles p in
    if un > 0 then lines @ [ Printf.sprintf "(unattributed) %d" un ]
    else lines
  in
  String.concat "\n" lines

let write_profile ?top path p =
  write_file path (Json.to_string (profile_json ?top p))

let write_collapsed path p = write_file path (collapsed_stacks p)
