let args_of_kind (k : Trace.kind) : (string * Json.t) list =
  match k with
  | Alloc { addr; words } -> [ ("addr", Int addr); ("words", Int words) ]
  | Free { addr } | Retire { addr } -> [ ("addr", Int addr) ]
  | Reclaim_phase { freed } -> [ ("freed", Int freed) ]
  | Warning { piggybacked } -> [ ("piggybacked", Bool piggybacked) ]
  | Fault_in { vpage } -> [ ("vpage", Int vpage) ]
  | Frames_released { count } -> [ ("count", Int count) ]
  | Superblock_transition { desc; state } ->
      [ ("desc", Int desc); ("state", String state) ]
  | Stall { cycles } -> [ ("cycles", Int cycles) ]
  | Restart | Crash -> []

let category_of_kind (k : Trace.kind) =
  match k with
  | Alloc _ | Free _ -> "alloc"
  | Retire _ | Reclaim_phase _ | Warning _ | Restart -> "reclaim"
  | Fault_in _ | Frames_released _ -> "vmem"
  | Superblock_transition _ -> "superblock"
  | Stall _ | Crash -> "fault"

let chrome_event (e : Trace.event) : Json.t =
  let common =
    [
      ("name", Json.String (Trace.kind_name e.kind));
      ("cat", Json.String (category_of_kind e.kind));
      ("pid", Json.Int 1);
      ("tid", Json.Int e.tid);
      ("ts", Json.Int e.at);
    ]
  in
  let shape =
    match e.kind with
    | Stall { cycles } ->
        [ ("ph", Json.String "X"); ("dur", Json.Int cycles) ]
    | _ -> [ ("ph", Json.String "i"); ("s", Json.String "t") ]
  in
  let args = args_of_kind e.kind in
  Json.Obj
    (common @ shape
    @ if args = [] then [] else [ ("args", Json.Obj args) ])

let chrome_trace tr =
  let events = Trace.events tr in
  let name_threads =
    List.init (Trace.nthreads tr) (fun tid ->
        Json.Obj
          [
            ("name", Json.String "thread_name");
            ("ph", Json.String "M");
            ("pid", Json.Int 1);
            ("tid", Json.Int tid);
            ("args", Json.Obj [ ("name", Json.String (Printf.sprintf "sim-thread-%d" tid)) ]);
          ])
  in
  Json.Obj
    [
      ("traceEvents", Json.List (name_threads @ List.map chrome_event events));
      ("displayTimeUnit", Json.String "ns");
      ("otherData",
       Json.Obj
         [
           ("recorded", Json.Int (Trace.recorded tr));
           ("dropped", Json.Int (Trace.dropped tr));
         ]);
    ]

let write_file path s =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc s;
      output_char oc '\n')

let write_chrome_trace path tr = write_file path (Json.to_string (chrome_trace tr))

let metrics_json ?(extra = []) (s : Metrics.snapshot) =
  let split kind =
    List.filter_map
      (fun (name, k, v) -> if k = kind then Some (name, Json.Int v) else None)
      s.values
  in
  let histograms =
    List.map
      (fun (h : Metrics.hist_snapshot) ->
        Json.Obj
          [
            ("name", Json.String h.hname);
            ("count", Json.Int h.count);
            ("sum", Json.Int h.sum);
            ("max", Json.Int h.max_value);
            ("buckets",
             Json.List
               (List.map
                  (fun (le, n) -> Json.Obj [ ("le", Json.Int le); ("count", Json.Int n) ])
                  h.buckets));
          ])
      s.histograms
  in
  Json.Obj
    (extra
    @ [
        ("counters", Json.Obj (split Metrics.Counter));
        ("gauges", Json.Obj (split Metrics.Gauge));
        ("histograms", Json.List histograms);
      ])

let write_metrics ?extra path s = write_file path (Json.to_string (metrics_json ?extra s))

let write_csv path ~header rows =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (String.concat "," header);
      output_char oc '\n';
      List.iter
        (fun row ->
          output_string oc (String.concat "," row);
          output_char oc '\n')
        rows)
