(** Exporters: trace → Chrome trace_event JSON, metrics → JSON, and a small
    CSV writer for time series.

    Chrome traces load in [chrome://tracing] / Perfetto ("load legacy
    trace"): simulated cycles map to microseconds, threads map to Chrome
    thread lanes, stalls render as duration slices and everything else as
    instant events. *)

val chrome_trace : Trace.t -> Json.t
(** The trace as a Chrome trace_event document:
    [{"traceEvents": [...], "displayTimeUnit": "ns", ...}].  One event per
    buffered {!Trace.event}; [Stall] becomes a complete ("ph":"X") slice of
    its duration, every other kind an instant ("ph":"i").  Event arguments
    (addresses, counts, states) land in ["args"]. *)

val write_chrome_trace : string -> Trace.t -> unit
(** Write {!chrome_trace} to a file. *)

val metrics_json : ?extra:(string * Json.t) list -> Metrics.snapshot -> Json.t
(** The snapshot as
    [{"counters": {...}, "gauges": {...}, "histograms": [...], ...extra}].
    [extra] fields (experiment name, scheme, throughput) are prepended.
    Histograms with zero observations are omitted — an unused histogram
    would serialise as [{"count": 0, "max": 0, "buckets": []}], which is
    noise and a trap for consumers assuming at least one bucket. *)

val write_metrics : ?extra:(string * Json.t) list -> string -> Metrics.snapshot -> unit

val write_csv : string -> header:string list -> string list list -> unit
(** Plain CSV with a header row; cells are written verbatim (callers pass
    numbers and bare identifiers, nothing needing quoting).  Raises
    [Invalid_argument] if any row's cell count differs from the header's —
    ragged rows silently shift columns in downstream tooling. *)

(** {2 Profiles} *)

val profile_json : ?top:int -> Profile.t -> Json.t
(** The profile as [{"total_cycles", "unattributed_cycles", "spans": [...],
    "latencies": [...], "hot_addrs": [...]}].  Span paths are
    semicolon-joined frame names ("op.delete;restart"); latencies carry
    exact p50/p99/max; [top] (default 10) bounds the hot-address list.
    Deterministic: same simulated run, byte-identical document. *)

val collapsed_stacks : Profile.t -> string
(** Collapsed-stack (Brendan Gregg folded) format, one line per span with
    nonzero self cycles: ["op.delete;restart 31337"].  Cycles charged
    outside any span appear as a ["(unattributed)"] pseudo-frame.  Feed to
    [flamegraph.pl] or speedscope. *)

val write_profile : ?top:int -> string -> Profile.t -> unit
val write_collapsed : string -> Profile.t -> unit
