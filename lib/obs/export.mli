(** Exporters: trace → Chrome trace_event JSON, metrics → JSON, and a small
    CSV writer for time series.

    Chrome traces load in [chrome://tracing] / Perfetto ("load legacy
    trace"): simulated cycles map to microseconds, threads map to Chrome
    thread lanes, stalls render as duration slices and everything else as
    instant events. *)

val chrome_trace : ?timeline:Timeline.t -> Trace.t -> Json.t
(** The trace as a Chrome trace_event document:
    [{"traceEvents": [...], "displayTimeUnit": "ns", ...}].  One event per
    buffered {!Trace.event}; [Stall] becomes a complete ("ph":"X") slice of
    its duration, every other kind an instant ("ph":"i").  Event arguments
    (addresses, counts, states) land in ["args"].  With [timeline], the
    per-window counter tracks ({!timeline_counter_events}) are appended.
    When ring overwrites dropped events, ["otherData"] carries a
    ["warning"] field. *)

val write_chrome_trace : ?timeline:Timeline.t -> string -> Trace.t -> unit
(** Write {!chrome_trace} to a file. *)

val metrics_json : ?extra:(string * Json.t) list -> Metrics.snapshot -> Json.t
(** The snapshot as
    [{"counters": {...}, "gauges": {...}, "histograms": [...], ...extra}].
    [extra] fields (experiment name, scheme, throughput) are prepended.
    Histograms with zero observations are omitted — an unused histogram
    would serialise as [{"count": 0, "max": 0, "buckets": []}], which is
    noise and a trap for consumers assuming at least one bucket.  When the
    snapshot's [obs.trace_dropped] counter is nonzero a trailing
    ["warning"] field says how many events the document is missing. *)

val write_metrics : ?extra:(string * Json.t) list -> string -> Metrics.snapshot -> unit

val write_csv : string -> header:string list -> string list list -> unit
(** Plain CSV with a header row; cells are written verbatim (callers pass
    numbers and bare identifiers, nothing needing quoting).  Raises
    [Invalid_argument] if any row's cell count differs from the header's —
    ragged rows silently shift columns in downstream tooling. *)

(** {2 Timelines} *)

val timeline_json : Timeline.t -> Json.t
(** The timeline as
    [{"window_cycles", "gauges", "phases": [...], "windows": [...]}]: each
    phase carries its counter columns, gauge last/max, merged [op.*]
    latency summary (count/p50/p99/max via {!Profile.percentile}) and
    per-frame latencies; each window the same minus the per-frame detail.
    Deterministic: windows ascend, phases follow marker order. *)

val write_timeline : string -> Timeline.t -> unit

val timeline_csv : Timeline.t -> string list * string list list
(** [(header, rows)], one row per populated window: index, start cycle,
    phase label, every counter column, merged op count/p50/p99/max, and
    last/max per registered gauge (empty cells where never sampled).  Feed
    to {!write_csv} or a [Report] CSV artifact. *)

val write_timeline_csv : string -> Timeline.t -> unit

val timeline_counter_events : Timeline.t -> Json.t list
(** Chrome trace_event counter ("ph":"C") tracks: one sample per populated
    window for every column nonzero somewhere in the run and every sampled
    gauge, named ["timeline.<column>"].  Appended to {!chrome_trace} via
    its [timeline] argument. *)

(** {2 Profiles} *)

val profile_json : ?top:int -> Profile.t -> Json.t
(** The profile as [{"total_cycles", "unattributed_cycles", "spans": [...],
    "latencies": [...], "hot_addrs": [...]}].  Span paths are
    semicolon-joined frame names ("op.delete;restart"); latencies carry
    exact p50/p99/max; [top] (default 10) bounds the hot-address list.
    Deterministic: same simulated run, byte-identical document. *)

val collapsed_stacks : Profile.t -> string
(** Collapsed-stack (Brendan Gregg folded) format, one line per span with
    nonzero self cycles: ["op.delete;restart 31337"].  Cycles charged
    outside any span appear as a ["(unattributed)"] pseudo-frame.  Feed to
    [flamegraph.pl] or speedscope. *)

val write_profile : ?top:int -> string -> Profile.t -> unit
val write_collapsed : string -> Profile.t -> unit
