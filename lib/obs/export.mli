(** Exporters: trace → Chrome trace_event JSON, metrics → JSON, and a small
    CSV writer for time series.

    Chrome traces load in [chrome://tracing] / Perfetto ("load legacy
    trace"): simulated cycles map to microseconds, threads map to Chrome
    thread lanes, stalls render as duration slices and everything else as
    instant events. *)

val chrome_trace : Trace.t -> Json.t
(** The trace as a Chrome trace_event document:
    [{"traceEvents": [...], "displayTimeUnit": "ns", ...}].  One event per
    buffered {!Trace.event}; [Stall] becomes a complete ("ph":"X") slice of
    its duration, every other kind an instant ("ph":"i").  Event arguments
    (addresses, counts, states) land in ["args"]. *)

val write_chrome_trace : string -> Trace.t -> unit
(** Write {!chrome_trace} to a file. *)

val metrics_json : ?extra:(string * Json.t) list -> Metrics.snapshot -> Json.t
(** The snapshot as
    [{"counters": {...}, "gauges": {...}, "histograms": [...], ...extra}].
    [extra] fields (experiment name, scheme, throughput) are prepended. *)

val write_metrics : ?extra:(string * Json.t) list -> string -> Metrics.snapshot -> unit

val write_csv : string -> header:string list -> string list list -> unit
(** Plain CSV with a header row; cells are written verbatim (callers pass
    numbers and bare identifiers, nothing needing quoting). *)
