type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
      (* keep output valid JSON: no nan/inf, always a decimal point *)
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else Buffer.add_string buf (Printf.sprintf "%.6g" f)
  | String s -> escape buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type parser_state = { src : string; mutable pos : int }

let peek p = if p.pos < String.length p.src then Some p.src.[p.pos] else None

let skip_ws p =
  while
    p.pos < String.length p.src
    && match p.src.[p.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    p.pos <- p.pos + 1
  done

let expect p c =
  match peek p with
  | Some c' when c' = c -> p.pos <- p.pos + 1
  | Some c' -> fail "expected %c at offset %d, got %c" c p.pos c'
  | None -> fail "expected %c at offset %d, got end of input" c p.pos

let literal p word v =
  let n = String.length word in
  if p.pos + n <= String.length p.src && String.sub p.src p.pos n = word then begin
    p.pos <- p.pos + n;
    v
  end
  else fail "invalid literal at offset %d" p.pos

let parse_string_body p =
  expect p '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek p with
    | None -> fail "unterminated string at offset %d" p.pos
    | Some '"' -> p.pos <- p.pos + 1
    | Some '\\' -> (
        p.pos <- p.pos + 1;
        match peek p with
        | None -> fail "unterminated escape at offset %d" p.pos
        | Some c ->
            p.pos <- p.pos + 1;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' ->
                if p.pos + 4 > String.length p.src then
                  fail "truncated \\u escape at offset %d" p.pos;
                let hex = String.sub p.src p.pos 4 in
                let code =
                  try int_of_string ("0x" ^ hex)
                  with _ -> fail "bad \\u escape at offset %d" p.pos
                in
                p.pos <- p.pos + 4;
                (* ASCII only; anything else becomes '?' — fine for our
                   machine-generated documents *)
                Buffer.add_char buf
                  (if code < 0x80 then Char.chr code else '?')
            | c -> fail "bad escape \\%c at offset %d" c p.pos);
            go ())
    | Some c ->
        p.pos <- p.pos + 1;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number p =
  let start = p.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while p.pos < String.length p.src && is_num_char p.src.[p.pos] do
    p.pos <- p.pos + 1
  done;
  let s = String.sub p.src start (p.pos - start) in
  match int_of_string_opt s with
  | Some n -> Int n
  | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail "bad number %S at offset %d" s start)

let rec parse_value p =
  skip_ws p;
  match peek p with
  | None -> fail "unexpected end of input at offset %d" p.pos
  | Some '{' ->
      p.pos <- p.pos + 1;
      skip_ws p;
      if peek p = Some '}' then begin
        p.pos <- p.pos + 1;
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws p;
          let k = parse_string_body p in
          skip_ws p;
          expect p ':';
          let v = parse_value p in
          fields := (k, v) :: !fields;
          skip_ws p;
          match peek p with
          | Some ',' ->
              p.pos <- p.pos + 1;
              members ()
          | _ -> expect p '}'
        in
        members ();
        Obj (List.rev !fields)
      end
  | Some '[' ->
      p.pos <- p.pos + 1;
      skip_ws p;
      if peek p = Some ']' then begin
        p.pos <- p.pos + 1;
        List []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value p in
          items := v :: !items;
          skip_ws p;
          match peek p with
          | Some ',' ->
              p.pos <- p.pos + 1;
              elements ()
          | _ -> expect p ']'
        in
        elements ();
        List (List.rev !items)
      end
  | Some '"' -> String (parse_string_body p)
  | Some 't' -> literal p "true" (Bool true)
  | Some 'f' -> literal p "false" (Bool false)
  | Some 'n' -> literal p "null" Null
  | Some ('-' | '0' .. '9') -> parse_number p
  | Some c -> fail "unexpected character %c at offset %d" c p.pos

let parse s =
  let p = { src = s; pos = 0 } in
  let v = parse_value p in
  skip_ws p;
  if p.pos <> String.length s then fail "trailing garbage at offset %d" p.pos;
  v

let member key = function
  | Obj fields -> ( match List.assoc_opt key fields with Some v -> v | None -> Null)
  | _ -> fail "member %S: not an object" key

let to_list = function
  | List xs -> xs
  | _ -> fail "to_list: not a list"

let to_int = function
  | Int n -> n
  | _ -> fail "to_int: not an integer"

let to_str = function
  | String s -> s
  | _ -> fail "to_str: not a string"

let to_float = function
  | Int n -> float_of_int n
  | Float f -> f
  | _ -> fail "to_float: not a number"
