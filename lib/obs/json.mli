(** Minimal JSON: enough to emit exporter output and to parse it back in
    tests and tooling.  Not a general-purpose JSON library — integers only
    (the simulator has no float-valued metrics except throughput, which
    exporters format themselves), no unicode escapes beyond [\uXXXX]
    pass-through on parse. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. *)

val to_buffer : Buffer.t -> t -> unit

exception Parse_error of string

val parse : string -> t
(** Recursive-descent parse of a complete JSON document.  Raises
    {!Parse_error} on malformed input or trailing garbage. *)

(** {2 Accessors} — all raise {!Parse_error} on shape mismatch. *)

val member : string -> t -> t
(** Field of an object; [Null] if absent. *)

val to_list : t -> t list
val to_int : t -> int
val to_str : t -> string

val to_float : t -> float
(** Accepts both [Int] and [Float] (exporters emit whichever is exact). *)
