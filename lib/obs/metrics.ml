(* Metrics registry: callback-backed named metrics plus registry-owned
   counters and histograms.  Hot-path cost stays with the subsystems (plain
   mutable record fields); the registry only pays at snapshot/reset time. *)

type kind = Counter | Gauge

type metric = {
  name : string;
  mkind : kind;
  read : unit -> int;
  reset : (unit -> unit) option;
}

type counter = { mutable n : int }

type histogram = {
  hname_ : string;
  hbuckets : int array;  (* hbuckets.(i) counts values with log2 bucket i *)
  mutable hcount : int;
  mutable hsum : int;
  mutable hmax : int;
}

type t = {
  mutable metrics : metric list;  (* reversed registration order *)
  mutable hists : histogram list;
  mutable snapshot_hooks : (unit -> unit) list;
  mutable reset_hooks : (unit -> unit) list;
}

let create () =
  { metrics = []; hists = []; snapshot_hooks = []; reset_hooks = [] }

let mem_name t name =
  List.exists (fun m -> m.name = name) t.metrics
  || List.exists (fun h -> h.hname_ = name) t.hists

let register t ?reset ~name ~kind read =
  if mem_name t name then
    invalid_arg (Printf.sprintf "Metrics.register: duplicate metric %S" name);
  t.metrics <- { name; mkind = kind; read; reset } :: t.metrics

let on_snapshot t f = t.snapshot_hooks <- f :: t.snapshot_hooks
let on_reset t f = t.reset_hooks <- f :: t.reset_hooks

let counter t name =
  let c = { n = 0 } in
  register t ~name ~kind:Counter ~reset:(fun () -> c.n <- 0) (fun () -> c.n);
  c

let incr c = c.n <- c.n + 1
let add c d = c.n <- c.n + d
let value c = c.n

(* log2 bucketing: value v lands in bucket [ceil(log2 (v+1))], i.e. bucket
   b holds values in (2^(b-1) - 1, 2^b - 1]; bucket 0 holds exactly 0. *)
let nbuckets = 63

let bucket_of v =
  let v = max 0 v in
  let rec go b bound = if v <= bound - 1 then b else go (b + 1) (bound * 2) in
  go 0 1

let histogram t name =
  if mem_name t name then
    invalid_arg (Printf.sprintf "Metrics.histogram: duplicate metric %S" name);
  let h =
    {
      hname_ = name;
      hbuckets = Array.make nbuckets 0;
      hcount = 0;
      hsum = 0;
      hmax = 0;
    }
  in
  t.hists <- h :: t.hists;
  h

let observe h v =
  let b = min (nbuckets - 1) (bucket_of v) in
  h.hbuckets.(b) <- h.hbuckets.(b) + 1;
  h.hcount <- h.hcount + 1;
  h.hsum <- h.hsum + v;
  if v > h.hmax then h.hmax <- v

type hist_snapshot = {
  hname : string;
  count : int;
  sum : int;
  max_value : int;
  buckets : (int * int) list;
}

type snapshot = {
  values : (string * kind * int) list;
  histograms : hist_snapshot list;
}

let snapshot t =
  List.iter (fun f -> f ()) t.snapshot_hooks;
  let values =
    t.metrics
    |> List.rev_map (fun m -> (m.name, m.mkind, m.read ()))
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  in
  let histograms =
    t.hists
    |> List.rev_map (fun h ->
           let buckets = ref [] in
           for b = nbuckets - 1 downto 0 do
             if h.hbuckets.(b) > 0 then
               buckets := ((1 lsl b) - 1, h.hbuckets.(b)) :: !buckets
           done;
           {
             hname = h.hname_;
             count = h.hcount;
             sum = h.hsum;
             max_value = h.hmax;
             buckets = !buckets;
           })
    |> List.sort (fun a b -> compare a.hname b.hname)
  in
  { values; histograms }

let reset t =
  (* a subsystem-wide reset closure may back several metrics: run each
     distinct closure once *)
  let seen = ref [] in
  let run f =
    if not (List.memq f !seen) then begin
      seen := f :: !seen;
      f ()
    end
  in
  List.iter (fun m -> Option.iter run m.reset) t.metrics;
  List.iter run t.reset_hooks;
  List.iter
    (fun h ->
      Array.fill h.hbuckets 0 nbuckets 0;
      h.hcount <- 0;
      h.hsum <- 0;
      h.hmax <- 0)
    t.hists

let find_opt s name =
  List.find_map (fun (n, _, v) -> if n = name then Some v else None) s.values

let find s name =
  match find_opt s name with Some v -> v | None -> raise Not_found

let names t =
  List.sort compare
    (List.rev_map (fun m -> m.name) t.metrics
    @ List.rev_map (fun h -> h.hname_) t.hists)

let pp ppf s =
  List.iter
    (fun (name, kind, v) ->
      Fmt.pf ppf "%s%s=%d@ " name
        (match kind with Counter -> "" | Gauge -> "~")
        v)
    s.values;
  List.iter
    (fun h ->
      Fmt.pf ppf "%s{count=%d sum=%d max=%d}@ " h.hname h.count h.sum
        h.max_value)
    s.histograms
