(** Metrics registry: named counters, gauges and histograms.

    One registry per assembled system replaces the per-subsystem stats
    records as the *interface*: subsystems keep their cheap mutable
    counters on the hot path and register read callbacks here, so a
    {!snapshot} is one coherent, named view over every layer (engine,
    caches, TLB, virtual memory, allocator, reclamation scheme).

    Counters are monotone and reset with {!reset}; gauges are instantaneous
    readings (live frames, resident pages) that reset leaves alone.
    Histograms are owned by the registry and observed directly. *)

type kind = Counter | Gauge

type t

val create : unit -> t

val register :
  t -> ?reset:(unit -> unit) -> name:string -> kind:kind -> (unit -> int) -> unit
(** Register a named metric read through a callback.  [reset] (typically
    shared by all metrics of a subsystem; called once per {!reset} no matter
    how many metrics name it) zeroes the underlying counter.  Raises
    [Invalid_argument] on a duplicate name. *)

val on_snapshot : t -> (unit -> unit) -> unit
(** Run a hook before every {!snapshot} — lets a subsystem compute one
    expensive reading (e.g. a full page-table scan) shared by several
    gauges. *)

val on_reset : t -> (unit -> unit) -> unit
(** Run a hook on every {!reset} (subsystem counter resets). *)

(** {2 Registry-owned instruments} *)

type counter

val counter : t -> string -> counter
(** A registry-owned counter (registered as [Counter], reset to 0). *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

type histogram

val histogram : t -> string -> histogram
(** A power-of-two-bucketed histogram of non-negative integers. *)

val observe : histogram -> int -> unit

(** {2 Snapshots} *)

type hist_snapshot = {
  hname : string;
  count : int;
  sum : int;
  max_value : int;
  buckets : (int * int) list;
      (** (inclusive upper bound, count) for non-empty buckets, ascending *)
}

type snapshot = {
  values : (string * kind * int) list;  (** sorted by name *)
  histograms : hist_snapshot list;
}

val snapshot : t -> snapshot

val reset : t -> unit
(** Zero every counter (via the registered reset callbacks) and histogram.
    Gauges, being instantaneous, are unaffected. *)

val find : snapshot -> string -> int
(** Raises [Not_found]. *)

val find_opt : snapshot -> string -> int option
val names : t -> string list
val pp : Format.formatter -> snapshot -> unit
