(* Cycle-attribution profiler: per-thread span stacks over one shared call
   trie, per-frame log2 latency histograms, and a contention table keyed by
   simulated address.

   The hot path is [charge] (one load, one branch, one add when a span is
   open); [enter]/[leave] allocate trie nodes and stack cells, which is fine
   because every caller guards with [enabled] — the disabled path allocates
   nothing, like the trace ring's emit idiom.

   Determinism: all state is driven by the simulated schedule, so two runs
   of the same seed produce identical tries, histograms and contention
   tables; exporters sort children by frame order and hot addresses by
   (count, addr), making the rendered output byte-identical too. *)

type frame =
  | Op_insert
  | Op_delete
  | Op_contains
  | Op_lookup
  | Op_replace
  | Op_enqueue
  | Op_dequeue
  | Op_push
  | Op_pop
  | Op_restart
  | Alloc_malloc
  | Alloc_free
  | Alloc_flush
  | Alloc_superblock
  | Reclaim_retire
  | Reclaim_scan
  | Reclaim_flush
  | Vmem_fault_in
  | Vmem_remap
  | Op_neutralized

let frame_index = function
  | Op_insert -> 0
  | Op_delete -> 1
  | Op_contains -> 2
  | Op_lookup -> 3
  | Op_replace -> 4
  | Op_enqueue -> 5
  | Op_dequeue -> 6
  | Op_push -> 7
  | Op_pop -> 8
  | Op_restart -> 9
  | Alloc_malloc -> 10
  | Alloc_free -> 11
  | Alloc_flush -> 12
  | Alloc_superblock -> 13
  | Reclaim_retire -> 14
  | Reclaim_scan -> 15
  | Reclaim_flush -> 16
  | Vmem_fault_in -> 17
  | Vmem_remap -> 18
  | Op_neutralized -> 19

let nframes = 20

let all_frames =
  [
    Op_insert; Op_delete; Op_contains; Op_lookup; Op_replace; Op_enqueue;
    Op_dequeue; Op_push; Op_pop; Op_restart; Alloc_malloc; Alloc_free;
    Alloc_flush; Alloc_superblock; Reclaim_retire; Reclaim_scan;
    Reclaim_flush; Vmem_fault_in; Vmem_remap; Op_neutralized;
  ]

let frame_name = function
  | Op_insert -> "op.insert"
  | Op_delete -> "op.delete"
  | Op_contains -> "op.contains"
  | Op_lookup -> "op.lookup"
  | Op_replace -> "op.replace"
  | Op_enqueue -> "op.enqueue"
  | Op_dequeue -> "op.dequeue"
  | Op_push -> "op.push"
  | Op_pop -> "op.pop"
  | Op_restart -> "restart"
  | Alloc_malloc -> "alloc.malloc"
  | Alloc_free -> "alloc.free"
  | Alloc_flush -> "alloc.flush"
  | Alloc_superblock -> "alloc.superblock"
  | Reclaim_retire -> "reclaim.retire"
  | Reclaim_scan -> "reclaim.scan"
  | Reclaim_flush -> "reclaim.flush"
  | Op_neutralized -> "neutralized"
  | Vmem_fault_in -> "vmem.fault_in"
  | Vmem_remap -> "vmem.remap"

(* The whole-operation frames (SLA views aggregate these; [Op_restart] and
   [Op_neutralized] are nested retry spans, not operations). *)
let op_frames =
  List.filter
    (fun f ->
      let n = frame_name f in
      String.length n > 3 && String.sub n 0 3 = "op.")
    all_frames

(* --- call trie ------------------------------------------------------------ *)

type node = {
  nframe : frame;
  parent : node option;  (* None for the root *)
  mutable children : node list;  (* insertion order; sorted at view time *)
  mutable self_cycles : int;
  mutable calls : int;
}

let fresh_node ?parent nframe =
  { nframe; parent; children = []; self_cycles = 0; calls = 0 }

(* log2 bucketing, matching Metrics: bucket b holds durations in
   (2^(b-1) - 1, 2^b - 1]; bucket 0 holds exactly 0. *)
let nbuckets = 63

let bucket_of v =
  let v = max 0 v in
  let rec go b bound = if v <= bound - 1 then b else go (b + 1) (bound * 2) in
  go 0 1

(* Shared with Timeline, so per-window histograms bucket identically. *)
let log2_bucket = bucket_of
let log2_nbuckets = nbuckets

type hist = {
  hbuckets : int array;
  mutable hcount : int;
  mutable hsum : int;
  mutable hmax : int;
}

let fresh_hist () =
  { hbuckets = Array.make nbuckets 0; hcount = 0; hsum = 0; hmax = 0 }

let hist_observe h v =
  let b = min (nbuckets - 1) (bucket_of v) in
  h.hbuckets.(b) <- h.hbuckets.(b) + 1;
  h.hcount <- h.hcount + 1;
  h.hsum <- h.hsum + v;
  if v > h.hmax then h.hmax <- v

let hist_reset h =
  Array.fill h.hbuckets 0 nbuckets 0;
  h.hcount <- 0;
  h.hsum <- 0;
  h.hmax <- 0

(* --- contention table ----------------------------------------------------- *)

type contended = {
  mutable invs : int;
  mutable fails : int;
  (* owner spans: (trie node or None for "no span open", hit count), keyed
     by physical node identity; first-charged order breaks count ties *)
  mutable owners : (node option * int) list;
}

type t = {
  mutable on : bool;
  root : node;
  stacks : (node * int) list array;  (* per-tid: (span, enter time) *)
  hists : hist array;  (* per frame_index *)
  addrs : (int, contended) Hashtbl.t;
  mutable on_leave : frame -> now:int -> dur:int -> unit;
      (* span-close sink (Timeline); the default is a no-op so [leave]
         needs no option check *)
}

let no_leave _ ~now:_ ~dur:_ = ()

let create ~nthreads () =
  {
    on = false;
    root = fresh_node Op_insert (* frame of the root is never read *);
    stacks = Array.make (max 0 nthreads) [];
    hists = Array.init nframes (fun _ -> fresh_hist ());
    addrs = Hashtbl.create 256;
    on_leave = no_leave;
  }

let null = create ~nthreads:0 ()

let enabled t = t.on
let set_enabled t v = if Array.length t.stacks > 0 then t.on <- v
let nthreads t = Array.length t.stacks
let set_leave_hook t f = t.on_leave <- f

let rec reset_node n =
  n.self_cycles <- 0;
  n.calls <- 0;
  List.iter reset_node n.children;
  n.children <- []

let reset t =
  reset_node t.root;
  Array.fill t.stacks 0 (Array.length t.stacks) [];
  Array.iter hist_reset t.hists;
  Hashtbl.reset t.addrs

(* --- recording ------------------------------------------------------------ *)

let in_range t tid = tid >= 0 && tid < Array.length t.stacks

let enter t ~tid ~now frame =
  if t.on && in_range t tid then begin
    let parent =
      match t.stacks.(tid) with (n, _) :: _ -> n | [] -> t.root
    in
    let node =
      match List.find_opt (fun c -> c.nframe == frame) parent.children with
      | Some c -> c
      | None ->
          let c = fresh_node ~parent frame in
          parent.children <- parent.children @ [ c ];
          c
    in
    node.calls <- node.calls + 1;
    t.stacks.(tid) <- (node, now) :: t.stacks.(tid)
  end

let leave t ~tid ~now =
  if t.on && in_range t tid then
    match t.stacks.(tid) with
    | [] -> ()
    | (node, entered) :: rest ->
        t.stacks.(tid) <- rest;
        let dur = max 0 (now - entered) in
        hist_observe t.hists.(frame_index node.nframe) dur;
        t.on_leave node.nframe ~now ~dur

let charge t ~tid cycles =
  if t.on && in_range t tid then
    match t.stacks.(tid) with
    | (node, _) :: _ -> node.self_cycles <- node.self_cycles + cycles
    | [] -> t.root.self_cycles <- t.root.self_cycles + cycles

let owner_of t tid =
  if in_range t tid then
    match t.stacks.(tid) with (n, _) :: _ -> Some n | [] -> None
  else None

let contended_for t addr =
  match Hashtbl.find_opt t.addrs addr with
  | Some c -> c
  | None ->
      let c = { invs = 0; fails = 0; owners = [] } in
      Hashtbl.add t.addrs addr c;
      c

let charge_owner c owner =
  let rec bump = function
    | [] -> [ (owner, 1) ]
    | (o, n) :: rest when o == owner || (o = None && owner = None) ->
        (o, n + 1) :: rest
    | entry :: rest -> entry :: bump rest
  in
  c.owners <- bump c.owners

let note_cas_failure t ~tid ~addr =
  if t.on then begin
    let c = contended_for t addr in
    c.fails <- c.fails + 1;
    charge_owner c (owner_of t tid)
  end

let note_invalidation t ~tid ~addr =
  if t.on then begin
    let c = contended_for t addr in
    c.invs <- c.invs + 1;
    charge_owner c (owner_of t tid)
  end

(* --- views ---------------------------------------------------------------- *)

type span = {
  path : frame list;
  self_cycles : int;
  total_cycles : int;
  calls : int;
}

let sorted_children (n : node) =
  List.sort
    (fun a b -> compare (frame_index a.nframe) (frame_index b.nframe))
    n.children

let rec node_total (n : node) =
  List.fold_left (fun acc c -> acc + node_total c) n.self_cycles n.children

let spans t =
  let rec walk rev_path acc (n : node) =
    let rev_path = n.nframe :: rev_path in
    let s =
      {
        path = List.rev rev_path;
        self_cycles = n.self_cycles;
        total_cycles = node_total n;
        calls = n.calls;
      }
    in
    List.fold_left (walk rev_path) (s :: acc) (sorted_children n)
  in
  List.rev
    (List.fold_left (walk []) [] (sorted_children t.root))

let unattributed_cycles t = t.root.self_cycles
let total_cycles t = node_total t.root

(* --- latency -------------------------------------------------------------- *)

type latency = {
  lframe : frame;
  count : int;
  sum : int;
  max_cycles : int;
  buckets : (int * int) list;
}

let latencies t =
  List.filter_map
    (fun f ->
      let h = t.hists.(frame_index f) in
      if h.hcount = 0 then None
      else begin
        let buckets = ref [] in
        for b = nbuckets - 1 downto 0 do
          if h.hbuckets.(b) > 0 then
            buckets := ((1 lsl b) - 1, h.hbuckets.(b)) :: !buckets
        done;
        Some
          {
            lframe = f;
            count = h.hcount;
            sum = h.hsum;
            max_cycles = h.hmax;
            buckets = !buckets;
          }
      end)
    all_frames

(* Percentiles interpolate linearly inside the covering log2 bucket instead
   of snapping to its upper bound (which overestimated by up to 2x at high
   ranks).  The bucket holding rank r spans values [lo, hi] with
   lo = 2^(b-1) (0 for bucket 0) and hi = min (2^b - 1) max_cycles — the
   max clamp keeps the top bucket exact; lo + (hi - lo) * r_in / n reaches
   hi exactly at the bucket's last rank, so single-observation buckets and
   q = 1.0 keep their pre-interpolation exact values.  A histogram whose
   sum equals count * max holds only one distinct value (observations never
   exceed max), so every percentile is exactly max. *)
let percentile l q =
  if l.count = 0 then 0
  else if l.sum = l.count * l.max_cycles then l.max_cycles
  else begin
    let rank =
      max 1 (min l.count (int_of_float (ceil (q *. float_of_int l.count))))
    in
    let rec go cum = function
      | [] -> l.max_cycles
      | (le, n) :: rest ->
          if cum + n >= rank then begin
            let lo = if le = 0 then 0 else (le + 1) / 2 in
            let hi = min le l.max_cycles in
            lo + ((hi - lo) * (rank - cum) / n)
          end
          else go (cum + n) rest
    in
    min (go 0 l.buckets) l.max_cycles
  end

(* --- contention ----------------------------------------------------------- *)

type hot_addr = {
  addr : int;
  invalidations : int;
  cas_failures : int;
  owner : frame list;
}

(* Frames from the root (exclusive — its frame is synthetic) down to [n]. *)
let path_of_node (n : node) =
  let rec collect acc node =
    match node.parent with
    | None -> acc
    | Some p -> collect (node.nframe :: acc) p
  in
  collect [] n

let dominant_owner owners =
  match owners with
  | [] -> None
  | first :: _ ->
      fst
        (List.fold_left
           (fun ((_, best_n) as best) ((_, n) as cand) ->
             if n > best_n then cand else best)
           first owners)

let hot_addrs ?(top = 10) t =
  let all =
    Hashtbl.fold
      (fun addr c acc ->
        let owner =
          match dominant_owner c.owners with
          | Some n -> path_of_node n
          | None -> []
        in
        {
          addr;
          invalidations = c.invs;
          cas_failures = c.fails;
          owner;
        }
        :: acc)
      t.addrs []
  in
  let weight h = h.invalidations + h.cas_failures in
  let sorted =
    List.sort
      (fun a b ->
        let c = compare (weight b) (weight a) in
        if c <> 0 then c else compare a.addr b.addr)
      all
  in
  List.filteri (fun i _ -> i < top) sorted
