(** Cycle-attribution profiler over simulated time.

    A per-thread span stack over the deterministic simulated clock: the
    engine and every instrumented subsystem open spans at phase boundaries
    — data-structure operations, allocator paths, reclamation phases, vmem
    events — and every costed access, fence, cache miss, TLB miss and
    syscall charges its cycle cost to the calling thread's innermost open
    span.  Because the simulation is deterministic, profiles are exact (not
    sampled) and bit-identical across runs of the same seed.

    Spans from all threads accumulate into one shared call trie keyed by
    {!frame}; closing a span also records its duration in a per-frame
    log2-bucketed latency histogram, and a contention table attributes
    remote cache-line invalidations and CAS failures to the simulated
    address and the owning span.

    Profiling is off by default and the disabled path is allocation-free —
    instrumentation guards span construction with {!enabled}, exactly like
    the {!Trace} emit idiom:

    {[
      if Profile.enabled p then
        Profile.enter p ~tid ~now:(Engine.Mem.now ctx) Profile.Alloc_malloc
    ]} *)

(** Instrumentation points.  [Op_*] bracket whole data-structure operations,
    [Alloc_*] the allocator paths, [Reclaim_*] the reclamation phases,
    [Vmem_*] the virtual-memory events; [Op_restart] is a nested span
    covering all retry attempts after a scheme-demanded restart, so
    "cycles spent in warning-triggered restarts" is its subtree.
    [Op_neutralized] is the same for retries forced by a delivered
    neutralization signal. *)
type frame =
  | Op_insert
  | Op_delete
  | Op_contains
  | Op_lookup
  | Op_replace
  | Op_enqueue
  | Op_dequeue
  | Op_push
  | Op_pop
  | Op_restart
  | Alloc_malloc
  | Alloc_free
  | Alloc_flush
  | Alloc_superblock
  | Reclaim_retire
  | Reclaim_scan
  | Reclaim_flush
  | Vmem_fault_in
  | Vmem_remap
  | Op_neutralized

val frame_name : frame -> string
(** Stable dotted name ("op.insert", "alloc.superblock", "restart", ...). *)

val all_frames : frame list

val frame_index : frame -> int
(** Dense index in [0, nframes): position in {!all_frames}. *)

val op_frames : frame list
(** The whole-operation frames (names starting ["op."]) — what SLA views
    merge into "op latency"; excludes the nested [Op_restart] /
    [Op_neutralized] retry spans. *)

val nframes : int

val log2_bucket : int -> int
(** Histogram bucket of a duration: bucket [b] holds
    [(2^(b-1) - 1, 2^b - 1]], bucket 0 holds exactly 0 (Metrics-compatible;
    shared with {!Timeline} so per-window histograms bucket identically). *)

val log2_nbuckets : int

type t

val create : nthreads:int -> unit -> t
(** A disabled profiler with one span stack per thread slot. *)

val null : t
(** A shared zero-thread sink that can never be enabled; the default wiring
    of the engine, so instrumentation needs no option check. *)

val enabled : t -> bool

val set_enabled : t -> bool -> unit
(** No-op on {!null}. *)

val nthreads : t -> int

val reset : t -> unit
(** Drop every span, histogram and contention record (the
    measurement-reset path).  Open span stacks are cleared too. *)

(** {2 Recording} — called from instrumentation points. *)

val enter : t -> tid:int -> now:int -> frame -> unit
(** Open a span as a child of [tid]'s innermost open span.  No-op when
    disabled or [tid] has no slot. *)

val leave : t -> tid:int -> now:int -> unit
(** Close [tid]'s innermost span and record its duration ([now] minus the
    matching [enter]'s [now]) in the frame's latency histogram.  No-op on
    an empty stack. *)

val charge : t -> tid:int -> int -> unit
(** Charge cycles to [tid]'s innermost open span; cycles spent outside any
    span accumulate as {!unattributed_cycles}. *)

val set_leave_hook : t -> (frame -> now:int -> dur:int -> unit) -> unit
(** Install a span-close sink: called from {!leave} with the closed frame,
    the closing simulated time and the span duration (the {!Timeline}
    ingestion path).  One hook; installing replaces the previous one. *)

val note_cas_failure : t -> tid:int -> addr:int -> unit
(** A CAS on simulated address [addr] failed: charge one retry to the
    address and [tid]'s owning span in the contention table. *)

val note_invalidation : t -> tid:int -> addr:int -> unit
(** A store/RMW to [addr] invalidated remote cache copies. *)

(** {2 Span-tree view} *)

type span = {
  path : frame list;  (** root-to-node frame path *)
  self_cycles : int;  (** cycles charged while this span was innermost *)
  total_cycles : int;  (** self + all descendants *)
  calls : int;  (** times this span was entered *)
}

val spans : t -> span list
(** Depth-first over the call trie, children in a fixed frame order —
    deterministic for a deterministic run. *)

val total_cycles : t -> int
(** All attributed cycles plus {!unattributed_cycles}; after a measured
    window this reconciles with the sum of the engine's thread clocks. *)

val unattributed_cycles : t -> int
(** Cycles charged while no span was open (e.g. the workload driver's
    per-op base cost). *)

(** {2 Per-operation latency} *)

type latency = {
  lframe : frame;
  count : int;
  sum : int;
  max_cycles : int;
  buckets : (int * int) list;
      (** (inclusive upper bound [2^b - 1], count) per non-empty log2
          bucket, ascending *)
}

val latencies : t -> latency list
(** One entry per frame with at least one closed span, in frame order. *)

val percentile : latency -> float -> int
(** [percentile l q] for [q] in [0, 1]: locate the log2 bucket covering
    rank [ceil (q * count)] and interpolate linearly inside it by rank,
    clamped to the exact maximum.  Buckets holding a single distinct value
    (0, 1, or a single observation) and [q = 1.0] stay exact
    ([percentile l 1.0 = l.max_cycles]); a constant stream returns that
    constant for every [q]; 0 when empty. *)

(** {2 Contention attribution} *)

type hot_addr = {
  addr : int;  (** simulated address (data or metadata) *)
  invalidations : int;
  cas_failures : int;
  owner : frame list;
      (** span path charged most often for this address; [] = outside any
          span *)
}

val hot_addrs : ?top:int -> t -> hot_addr list
(** The [top] (default 10) addresses by invalidations + CAS failures,
    most-contended first (ties to lower address: deterministic). *)
