(* Simulated-time windowed aggregation: fixed-width windows over the trace
   and profiler streams, plus named phase markers.

   Ingestion is order-insensitive integer accumulation (counts, histogram
   buckets, gauge last/max), and the simulated schedule that drives it is
   deterministic, so two runs of the same seed build identical tables no
   matter how host domains interleave; views sort windows by index and
   phases by marker order, making exports byte-identical too.

   The disabled path allocates nothing: every ingestion entry point checks
   [t.on] before touching any state, and System only installs the trace /
   profiler sinks when a timeline was configured. *)

type column =
  | Allocs
  | Frees
  | Retires
  | Reclaim_phases
  | Reclaim_freed
  | Warnings
  | Warnings_piggybacked
  | Restarts
  | Faults_in
  | Frames_released
  | Superblock_transitions
  | Stalls
  | Crashes
  | Neutralize_posts
  | Neutralized
  | Revoke_posts
  | Cond_fails

let column_index = function
  | Allocs -> 0
  | Frees -> 1
  | Retires -> 2
  | Reclaim_phases -> 3
  | Reclaim_freed -> 4
  | Warnings -> 5
  | Warnings_piggybacked -> 6
  | Restarts -> 7
  | Faults_in -> 8
  | Frames_released -> 9
  | Superblock_transitions -> 10
  | Stalls -> 11
  | Crashes -> 12
  | Neutralize_posts -> 13
  | Neutralized -> 14
  | Revoke_posts -> 15
  | Cond_fails -> 16

let ncols = 17

let columns =
  [
    Allocs; Frees; Retires; Reclaim_phases; Reclaim_freed; Warnings;
    Warnings_piggybacked; Restarts; Faults_in; Frames_released;
    Superblock_transitions; Stalls; Crashes; Neutralize_posts; Neutralized;
    Revoke_posts; Cond_fails;
  ]

let column_name = function
  | Allocs -> "allocs"
  | Frees -> "frees"
  | Retires -> "retires"
  | Reclaim_phases -> "reclaim_phases"
  | Reclaim_freed -> "reclaim_freed"
  | Warnings -> "warnings"
  | Warnings_piggybacked -> "warnings_piggybacked"
  | Restarts -> "restarts"
  | Faults_in -> "faults_in"
  | Frames_released -> "frames_released"
  | Superblock_transitions -> "superblock_transitions"
  | Stalls -> "stalls"
  | Crashes -> "crashes"
  | Neutralize_posts -> "neutralize_posts"
  | Neutralized -> "neutralized"
  | Revoke_posts -> "revoke_posts"
  | Cond_fails -> "cond_fails"

(* Per-frame latency histogram, same log2 bucketing as Profile so
   [Profile.percentile] applies unchanged to the per-slice views. *)
type lhist = {
  lbuckets : int array;
  mutable lcount : int;
  mutable lsum : int;
  mutable lmax : int;
}

let fresh_lhist () =
  {
    lbuckets = Array.make Profile.log2_nbuckets 0;
    lcount = 0;
    lsum = 0;
    lmax = 0;
  }

let lhist_observe h v =
  let b = min (Profile.log2_nbuckets - 1) (Profile.log2_bucket v) in
  h.lbuckets.(b) <- h.lbuckets.(b) + 1;
  h.lcount <- h.lcount + 1;
  h.lsum <- h.lsum + v;
  if v > h.lmax then h.lmax <- v

(* One slice (window or phase). Gauge arrays are sized to the gauges
   registered when the slice was created and grown on demand, so late
   registration cannot index out of range. *)
type agg = {
  counts : int array;
  lats : lhist option array;
  mutable glast : int array;
  mutable gmax : int array;
  mutable gset : bool array;
}

type t = {
  mutable on : bool;
  twidth : int; (* 0 only for [null] *)
  windows : (int, agg) Hashtbl.t;
  phase_tbl : (string, agg) Hashtbl.t;
  mutable rev_marks : (string * int) list; (* most recent first *)
  mutable cur : agg; (* slice of the open phase: O(1) charging *)
  mutable rev_gauges : string list;
  mutable ngauges : int;
}

let fresh_agg ngauges =
  {
    counts = Array.make ncols 0;
    lats = Array.make Profile.nframes None;
    glast = Array.make ngauges 0;
    gmax = Array.make ngauges 0;
    gset = Array.make ngauges false;
  }

let create ~width () =
  if width <= 0 then invalid_arg "Timeline.create: width must be positive";
  let init = fresh_agg 0 in
  let phase_tbl = Hashtbl.create 16 in
  Hashtbl.replace phase_tbl "init" init;
  {
    on = false;
    twidth = width;
    windows = Hashtbl.create 64;
    phase_tbl;
    rev_marks = [ ("init", 0) ];
    cur = init;
    rev_gauges = [];
    ngauges = 0;
  }

let null =
  let init = fresh_agg 0 in
  {
    on = false;
    twidth = 0;
    windows = Hashtbl.create 1;
    phase_tbl = Hashtbl.create 1;
    rev_marks = [ ("init", 0) ];
    cur = init;
    rev_gauges = [];
    ngauges = 0;
  }

let enabled t = t.on
let set_enabled t v = if t.twidth > 0 then t.on <- v
let width t = t.twidth

let reset t =
  Hashtbl.reset t.windows;
  Hashtbl.reset t.phase_tbl;
  let init = fresh_agg t.ngauges in
  Hashtbl.replace t.phase_tbl "init" init;
  t.rev_marks <- [ ("init", 0) ];
  t.cur <- init

(* --- ingestion ------------------------------------------------------------ *)

let window_agg t at =
  let idx = max 0 at / t.twidth in
  match Hashtbl.find_opt t.windows idx with
  | Some a -> a
  | None ->
      let a = fresh_agg t.ngauges in
      Hashtbl.add t.windows idx a;
      a

let bump agg col n = agg.counts.(column_index col) <- agg.counts.(column_index col) + n

let charge_kind agg (kind : Trace.kind) =
  match kind with
  | Trace.Alloc _ -> bump agg Allocs 1
  | Trace.Free _ -> bump agg Frees 1
  | Trace.Retire _ -> bump agg Retires 1
  | Trace.Reclaim_phase { freed } ->
      bump agg Reclaim_phases 1;
      bump agg Reclaim_freed freed
  | Trace.Warning { piggybacked } ->
      bump agg Warnings 1;
      if piggybacked then bump agg Warnings_piggybacked 1
  | Trace.Restart -> bump agg Restarts 1
  | Trace.Fault_in _ -> bump agg Faults_in 1
  | Trace.Frames_released { count } -> bump agg Frames_released count
  | Trace.Superblock_transition _ -> bump agg Superblock_transitions 1
  | Trace.Stall _ -> bump agg Stalls 1
  | Trace.Crash -> bump agg Crashes 1
  | Trace.Neutralize_post _ -> bump agg Neutralize_posts 1
  | Trace.Neutralized -> bump agg Neutralized 1
  | Trace.Revoke_post _ -> bump agg Revoke_posts 1
  | Trace.Cond_fail -> bump agg Cond_fails 1

let note_event t (e : Trace.event) =
  if t.on then begin
    charge_kind (window_agg t e.at) e.kind;
    charge_kind t.cur e.kind
  end

let charge_latency agg frame dur =
  let i = Profile.frame_index frame in
  let h =
    match agg.lats.(i) with
    | Some h -> h
    | None ->
        let h = fresh_lhist () in
        agg.lats.(i) <- Some h;
        h
  in
  lhist_observe h (max 0 dur)

let note_latency t frame ~now ~dur =
  if t.on then begin
    charge_latency (window_agg t now) frame dur;
    charge_latency t.cur frame dur
  end

let phase t ~at name =
  if t.twidth > 0 then begin
    let agg =
      match Hashtbl.find_opt t.phase_tbl name with
      | Some a -> a
      | None ->
          let a = fresh_agg t.ngauges in
          Hashtbl.add t.phase_tbl name a;
          a
    in
    t.rev_marks <- (name, at) :: t.rev_marks;
    t.cur <- agg
  end

let register_gauge t name =
  let rec index i = function
    | [] -> None
    | n :: rest -> if String.equal n name then Some (i - 1) else index (i - 1) rest
  in
  match index t.ngauges t.rev_gauges with
  | Some id -> id
  | None ->
      let id = t.ngauges in
      t.rev_gauges <- name :: t.rev_gauges;
      t.ngauges <- t.ngauges + 1;
      id

let ensure_gauges agg n =
  if Array.length agg.glast < n then begin
    let grow a fill =
      let b = Array.make n fill in
      Array.blit a 0 b 0 (Array.length a);
      b
    in
    agg.glast <- grow agg.glast 0;
    agg.gmax <- grow agg.gmax 0;
    agg.gset <- grow agg.gset false
  end

let charge_gauge agg id v =
  ensure_gauges agg (id + 1);
  agg.glast.(id) <- v;
  if (not agg.gset.(id)) || v > agg.gmax.(id) then agg.gmax.(id) <- v;
  agg.gset.(id) <- true

let sample_gauge t ~at id v =
  if t.on && id >= 0 then begin
    charge_gauge (window_agg t at) id v;
    charge_gauge t.cur id v
  end

(* --- views ---------------------------------------------------------------- *)

let marks t = List.rev t.rev_marks

let agg_count agg col = agg.counts.(column_index col)

let agg_active agg =
  Array.exists (fun c -> c > 0) agg.counts
  || Array.exists Option.is_some agg.lats
  || Array.exists Fun.id agg.gset

let window_aggs t =
  Hashtbl.fold (fun i a acc -> (i, a) :: acc) t.windows []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let phase_aggs t =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun (name, _) ->
      if Hashtbl.mem seen name then None
      else begin
        Hashtbl.add seen name ();
        match Hashtbl.find_opt t.phase_tbl name with
        | Some agg when String.equal name "init" && not (agg_active agg) ->
            None
        | Some agg -> Some (name, agg)
        | None -> None
      end)
    (marks t)

let phase_of_cycle t cycle =
  List.fold_left
    (fun acc (name, at) -> if at <= cycle then name else acc)
    "init" (marks t)

let latency_of_lhist lframe h =
  let buckets = ref [] in
  for b = Profile.log2_nbuckets - 1 downto 0 do
    if h.lbuckets.(b) > 0 then
      buckets := ((1 lsl b) - 1, h.lbuckets.(b)) :: !buckets
  done;
  {
    Profile.lframe;
    count = h.lcount;
    sum = h.lsum;
    max_cycles = h.lmax;
    buckets = !buckets;
  }

let agg_latency agg frame =
  Option.map (latency_of_lhist frame) agg.lats.(Profile.frame_index frame)

let agg_latency_merged agg frames =
  let merged = fresh_lhist () in
  let any = ref false in
  List.iter
    (fun f ->
      match agg.lats.(Profile.frame_index f) with
      | None -> ()
      | Some h ->
          any := true;
          Array.iteri
            (fun b n -> merged.lbuckets.(b) <- merged.lbuckets.(b) + n)
            h.lbuckets;
          merged.lcount <- merged.lcount + h.lcount;
          merged.lsum <- merged.lsum + h.lsum;
          if h.lmax > merged.lmax then merged.lmax <- h.lmax)
    frames;
  if !any then
    match frames with
    | f :: _ -> Some (latency_of_lhist f merged)
    | [] -> None
  else None

let agg_gauge agg id =
  if id >= 0 && id < Array.length agg.gset && agg.gset.(id) then
    Some (agg.glast.(id), agg.gmax.(id))
  else None

let gauges t = List.rev t.rev_gauges
