(** Simulated-time windowed aggregation over the trace and the profiler.

    A timeline slices a run into fixed-width windows of simulated cycles
    and, in parallel, into named {e phases} opened by {!phase} markers.
    Every trace event ({!Trace.kind}), every closed profiler span (frame +
    duration) and every explicit gauge sample is charged to both the window
    containing its timestamp and the phase that was open when it was
    recorded, so per-window and per-phase op latency percentiles are exact
    (same log2 histograms as {!Profile}, same {!Profile.percentile}).

    Discipline matches the rest of [lib/obs]: off by default, the disabled
    path is allocation-free (ingestion guards on {!enabled} before touching
    any state, and the sinks are only installed when a timeline is
    configured), and all views sort their keys, so exports are
    byte-identical across runs of the same seed and across worker-domain
    counts.

    Charging rules (see DESIGN.md "Timelines and phases"):
    - windows are keyed by timestamp: an event at cycle [c] lands in window
      [c / width]; a span lands in the window of its {e completion} time;
    - phases are keyed by marker order: everything recorded after
      [phase t ~at name] and before the next marker is charged to [name],
      even if the emitting thread's clock had already run past the marker
      (threads overshoot a horizon by at most one operation);
    - re-marking an existing phase name accumulates into the same phase. *)

type t

(** Counted trace events, one column per kind (plus the carried amounts:
    [Reclaim_freed] sums [Reclaim_phase.freed], [Frames_released] sums the
    released counts). *)
type column =
  | Allocs
  | Frees
  | Retires
  | Reclaim_phases
  | Reclaim_freed
  | Warnings
  | Warnings_piggybacked
  | Restarts
  | Faults_in
  | Frames_released
  | Superblock_transitions
  | Stalls
  | Crashes
  | Neutralize_posts
  | Neutralized
  | Revoke_posts
  | Cond_fails

val columns : column list
val column_name : column -> string

val create : width:int -> unit -> t
(** A disabled timeline with windows of [width] simulated cycles.  The
    implicit initial phase is ["init"]; it is dropped from {!phase_aggs}
    when nothing was charged to it. *)

val null : t
(** A shared never-enabled sink (width 0); {!set_enabled} is a no-op. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit
val width : t -> int

val reset : t -> unit
(** Drop every window, phase and gauge sample (the measurement-reset
    path); registered gauges and the enable flag survive. *)

(** {2 Ingestion} — wired by [System], or called by a harness driver. *)

val note_event : t -> Trace.event -> unit
(** The {!Trace.set_sink} target: charge one trace event. *)

val note_latency : t -> Profile.frame -> now:int -> dur:int -> unit
(** The {!Profile.set_leave_hook} target: a span of [frame] closed at
    simulated time [now] after [dur] cycles. *)

val phase : t -> at:int -> string -> unit
(** Open phase [name] at simulated cycle [at]: subsequent events, spans and
    samples are charged to it until the next marker. *)

val register_gauge : t -> string -> int
(** Declare a sampled gauge (before the run); returns its id for
    {!sample_gauge}.  Re-registering a name returns the existing id. *)

val sample_gauge : t -> at:int -> int -> int -> unit
(** [sample_gauge t ~at gauge_id value]: record an instantaneous gauge
    value (charged to window [at / width] and the open phase; views expose
    last and max per slice). *)

(** {2 Views} — deterministic: windows ascending, phases in marker order. *)

type agg
(** One slice (a window or a phase) of accumulated columns, per-frame
    latency histograms and gauge samples. *)

val marks : t -> (string * int) list
(** Phase markers in order, including the implicit [("init", 0)]. *)

val window_aggs : t -> (int * agg) list
(** Populated windows, ascending by index; window [i] covers cycles
    [[i * width, (i+1) * width)]. *)

val phase_aggs : t -> (string * agg) list
(** Phases in first-marker order; ["init"] only when it recorded
    anything. *)

val phase_of_cycle : t -> int -> string
(** Name of the last marker at or before the given cycle (labels windows
    in exports; distinct from the charging rule, which follows marker
    order). *)

val agg_count : agg -> column -> int

val agg_latency : agg -> Profile.frame -> Profile.latency option
(** This slice's latency histogram for one frame, [None] when empty;
    feed to {!Profile.percentile}. *)

val agg_latency_merged : agg -> Profile.frame list -> Profile.latency option
(** Bucket-wise merge over several frames (e.g. all [op.*] frames for an
    SLA view); [lframe] is the first listed frame. *)

val agg_gauge : agg -> int -> (int * int) option
(** [(last, max)] of a gauge id within this slice, [None] if never
    sampled here. *)

val gauges : t -> string list
(** Registered gauge names, in registration order (= id order). *)
