(* Structured event tracing: one ring buffer of typed events per thread.

   The hot path is [emit]; when the trace is disabled it is a single load
   and branch, and callers guard event construction behind [enabled] so the
   disabled path allocates nothing at all.  Rings overwrite their oldest
   entry when full (counting the overwrites), so a long run with a small
   capacity degrades to "the most recent window" instead of unbounded
   memory. *)

type kind =
  | Alloc of { addr : int; words : int }
  | Free of { addr : int }
  | Retire of { addr : int }
  | Reclaim_phase of { freed : int }
  | Warning of { piggybacked : bool }
  | Restart
  | Fault_in of { vpage : int }
  | Frames_released of { count : int }
  | Superblock_transition of { desc : int; state : string }
  | Stall of { cycles : int }
  | Crash
  | Neutralize_post of { victim : int }
  | Neutralized
  | Revoke_post of { victim : int }
  | Cond_fail

type event = { tid : int; at : int; kind : kind }

(* [next] is the slot the next event lands in; once [len = capacity] the
   ring wraps and [next] doubles as the index of the oldest event. *)
type ring = {
  buf : event array;
  mutable len : int;
  mutable next : int;
  mutable dropped : int;
}

type t = {
  mutable enabled : bool;
  rings : ring array;
  capacity : int;
  mutable sink : event -> unit;
      (* every emitted event, before it can be overwritten (Timeline); the
         default is a no-op so [emit] needs no option check *)
}

let dummy = { tid = -1; at = 0; kind = Restart }
let no_sink (_ : event) = ()

let create ?(capacity = 8192) ~nthreads () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  {
    enabled = false;
    rings =
      Array.init (max 0 nthreads) (fun _ ->
          { buf = Array.make capacity dummy; len = 0; next = 0; dropped = 0 });
    capacity;
    sink = no_sink;
  }

let null = { enabled = false; rings = [||]; capacity = 0; sink = no_sink }

let enabled t = t.enabled
let set_enabled t v = t.enabled <- v
let nthreads t = Array.length t.rings
let capacity t = t.capacity
let set_sink t f = t.sink <- f

let emit t ~tid ~at kind =
  if t.enabled && tid >= 0 && tid < Array.length t.rings then begin
    let r = t.rings.(tid) in
    let e = { tid; at; kind } in
    r.buf.(r.next) <- e;
    r.next <- (r.next + 1) mod t.capacity;
    if r.len < t.capacity then r.len <- r.len + 1
    else r.dropped <- r.dropped + 1;
    t.sink e
  end

let clear t =
  Array.iter
    (fun r ->
      r.len <- 0;
      r.next <- 0;
      r.dropped <- 0)
    t.rings

let reset_dropped t = Array.iter (fun r -> r.dropped <- 0) t.rings

let recorded t = Array.fold_left (fun acc r -> acc + r.len) 0 t.rings
let dropped t = Array.fold_left (fun acc r -> acc + r.dropped) 0 t.rings

let thread_events t ~tid =
  if tid < 0 || tid >= Array.length t.rings then []
  else
    let r = t.rings.(tid) in
    let start = if r.len < t.capacity then 0 else r.next in
    List.init r.len (fun i -> r.buf.((start + i) mod t.capacity))

let events t =
  let all =
    List.concat
      (List.init (Array.length t.rings) (fun tid -> thread_events t ~tid))
  in
  List.stable_sort
    (fun a b ->
      let c = compare a.at b.at in
      if c <> 0 then c else compare a.tid b.tid)
    all

let kind_name = function
  | Alloc _ -> "alloc"
  | Free _ -> "free"
  | Retire _ -> "retire"
  | Reclaim_phase _ -> "reclaim_phase"
  | Warning _ -> "warning"
  | Restart -> "restart"
  | Fault_in _ -> "fault_in"
  | Frames_released _ -> "frames_released"
  | Superblock_transition _ -> "superblock_transition"
  | Stall _ -> "stall"
  | Crash -> "crash"
  | Neutralize_post _ -> "neutralize_post"
  | Neutralized -> "neutralized"
  | Revoke_post _ -> "revoke_post"
  | Cond_fail -> "cond_fail"

let pp_event ppf e =
  Fmt.pf ppf "[%d@%d] %s" e.tid e.at (kind_name e.kind);
  match e.kind with
  | Alloc { addr; words } -> Fmt.pf ppf " addr=%d words=%d" addr words
  | Free { addr } | Retire { addr } -> Fmt.pf ppf " addr=%d" addr
  | Reclaim_phase { freed } -> Fmt.pf ppf " freed=%d" freed
  | Warning { piggybacked } -> Fmt.pf ppf " piggybacked=%b" piggybacked
  | Fault_in { vpage } -> Fmt.pf ppf " vpage=%d" vpage
  | Frames_released { count } -> Fmt.pf ppf " count=%d" count
  | Superblock_transition { desc; state } ->
      Fmt.pf ppf " desc=%d state=%s" desc state
  | Stall { cycles } -> Fmt.pf ppf " cycles=%d" cycles
  | Neutralize_post { victim } | Revoke_post { victim } ->
      Fmt.pf ppf " victim=%d" victim
  | Restart | Crash | Neutralized | Cond_fail -> ()
