(** Structured event tracing over simulated time.

    Every subsystem of the assembled system emits typed events into one
    shared trace: per-thread ring buffers of {!event} records stamped with
    the emitting thread's simulated clock.  Tracing is off by default and
    the disabled path is allocation-free — emitters are expected to guard
    event construction with {!enabled}:

    {[ if Trace.enabled tr then Trace.emit tr ~tid ~at (Alloc { ... }) ]}

    Rings keep the most recent [capacity] events per thread and count what
    they overwrote, so a trace never grows without bound on long runs. *)

type kind =
  | Alloc of { addr : int; words : int }  (** allocator handed out a block *)
  | Free of { addr : int }  (** block returned to the allocator *)
  | Retire of { addr : int }  (** node unlinked, awaiting safe reclamation *)
  | Reclaim_phase of { freed : int }  (** limbo sweep / recycling phase *)
  | Warning of { piggybacked : bool }
      (** warning-bit set / clock bump ([piggybacked] = reused another
          thread's warning, OA-VER) *)
  | Restart  (** an operation restarted from a safe location *)
  | Fault_in of { vpage : int }  (** first write faulted a frame in *)
  | Frames_released of { count : int }
      (** unmap / madvise / shared-remap gave frames back *)
  | Superblock_transition of { desc : int; state : string }
      (** superblock lifecycle: built fresh, range reused, released,
          remapped *)
  | Stall of { cycles : int }  (** fault injection parked the thread *)
  | Crash  (** fault injection killed the thread *)
  | Neutralize_post of { victim : int }
      (** this thread posted a neutralization signal to [victim] *)
  | Neutralized
      (** a posted signal was delivered to this thread, unwinding it to
          its checkpoint *)
  | Revoke_post of { victim : int }
      (** this thread revoked [victim]'s conditional-access flag *)
  | Cond_fail
      (** a conditional access by this thread failed (flag revoked),
          restarting its operation *)

type event = { tid : int; at : int; kind : kind }
(** [at] is the emitting thread's simulated clock, in cycles. *)

type t

val create : ?capacity:int -> nthreads:int -> unit -> t
(** A disabled trace with one ring of [capacity] events (default 8192) per
    thread slot. *)

val null : t
(** A shared zero-thread sink that is never enabled; the default wiring of
    every subsystem, so emit paths need no option check. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit
val nthreads : t -> int
val capacity : t -> int

val emit : t -> tid:int -> at:int -> kind -> unit
(** No-op when disabled or [tid] has no ring (e.g. an external context on a
    [null] trace). *)

val set_sink : t -> (event -> unit) -> unit
(** Install an event sink: called from {!emit} with every recorded event,
    before ring wrap-around can drop it — the {!Timeline} ingestion path,
    which therefore sees the full stream even when the rings overwrite.
    One sink; installing replaces the previous one. *)

val clear : t -> unit
(** Drop every buffered event (the measurement-reset path). *)

val recorded : t -> int
(** Events currently buffered, over all threads. *)

val dropped : t -> int
(** Events overwritten by ring wrap-around since the last {!clear}.
    Surfaced in the metrics registry as the [obs.trace_dropped] counter. *)

val reset_dropped : t -> unit
(** Zero the per-ring overwrite counts without dropping buffered events
    (the [obs.trace_dropped] counter's reset hook). *)

val thread_events : t -> tid:int -> event list
(** One thread's buffered events, oldest first — monotone in [at]. *)

val events : t -> event list
(** All threads merged, sorted by [(at, tid)]. *)

val kind_name : kind -> string
val pp_event : Format.formatter -> event -> unit
