(* Lock-free Treiber stack of node addresses, linked through the nodes
   themselves in simulated memory (word 0 of each node holds the next
   address).  Used by the original OA method's shared recycling pools; the
   contention on these heads is precisely the synchronisation cost the paper
   measures against (§5.2).

   The head cell packs (address, tag); node addresses fit in 40 bits with
   the default geometry, leaving 20+ tag bits to defeat ABA. *)

open Oamem_engine
open Oamem_vmem

type t = { head : Cell.t; vmem : Vmem.t }

let addr_bits = 40
let addr_mask = (1 lsl addr_bits) - 1

let pack ~addr ~tag = addr lor (tag lsl addr_bits)
let head_addr w = w land addr_mask
let head_tag w = w lsr addr_bits

let create meta vmem = { head = Cell.make ~pad:true meta (pack ~addr:0 ~tag:0); vmem }

let rec push t ctx addr =
  assert (addr <> 0 && addr land lnot addr_mask = 0);
  let h = Cell.get ctx t.head in
  Vmem.store t.vmem ctx addr (head_addr h);
  if not (Cell.cas ctx t.head ~expect:h ~desired:(pack ~addr ~tag:(head_tag h + 1)))
  then begin
    Engine.Mem.pause ctx;
    push t ctx addr
  end

let rec pop t ctx =
  let h = Cell.get ctx t.head in
  match head_addr h with
  | 0 -> None
  | addr ->
      let next = Vmem.load t.vmem ctx addr in
      if Cell.cas ctx t.head ~expect:h ~desired:(pack ~addr:next ~tag:(head_tag h + 1))
      then Some addr
      else begin
        Engine.Mem.pause ctx;
        pop t ctx
      end

(* Detach the whole stack in one shot; returns the old head address.
   Used by the recycling phase to move retire -> processing. *)
let rec take_all t ctx =
  let h = Cell.get ctx t.head in
  if Cell.cas ctx t.head ~expect:h ~desired:(pack ~addr:0 ~tag:(head_tag h + 1))
  then head_addr h
  else begin
    Engine.Mem.pause ctx;
    take_all t ctx
  end

(* Walk a detached chain (exclusive access). *)
let iter_chain t ctx head f =
  let cur = ref head in
  while !cur <> 0 do
    let next = Vmem.load t.vmem ctx !cur in
    f !cur;
    cur := next
  done

let is_empty t = head_addr (Cell.peek t.head) = 0

let peek_length t =
  (* uncosted, test-only: requires no concurrent mutation *)
  let n = ref 0 in
  let cur = ref (head_addr (Cell.peek t.head)) in
  while !cur <> 0 do
    incr n;
    cur := Vmem.peek t.vmem !cur
  done;
  !n
