(* DEBRA+ — epoch-based reclamation with neutralization (Brown, PODC'15).

   The epoch core is EBR's: threads announce the global epoch on every
   operation, retired nodes go into three per-thread limbo buckets indexed
   by retire epoch mod 3, and a bucket is freed once the epoch has advanced
   twice past it.  What EBR cannot do is advance past a thread that stopped
   moving — one stalled announce pins the epoch and garbage grows without
   bound (E13).  DEBRA+ adds the recovery path:

   - every failed epoch advance counts, per blocking thread, how many
     consecutive attempts that thread's stale announce has defeated;
   - past a small patience bound the advancing thread *neutralizes* the
     laggard — posts it an async signal via {!Engine.Mem.neutralize} — and
     may immediately treat it as quiesced (the engine guarantees the victim
     executes no further access before the signal unwinds it to its
     operation checkpoint), so the poster voids the stale announce itself
     and the epoch advances;
   - a victim that turns out to be dead ([Dead] post outcome: crashed, in
     our fault model) additionally has its limbo buckets *seized* — their
     contents migrate into the seizing thread's current bucket, so a
     crashed thread pins at most nothing instead of its whole backlog.

   The "A" in DEBRA is amortization, and it is what pays for the per-op
   checkpoint: announcements are refreshed once per [batch] operations, not
   per operation, so the epoch read + announce store + full fence that EBR
   pays on every op is spread over the batch.  Between refreshes the thread
   simply stays announced — it is in one long logical operation spanning
   the batch — which is sound here because a posted signal is always
   delivered before the victim's next simulated access executes: a thread
   whose announce was voided by a poster cannot touch shared memory again
   before it is unwound to its checkpoint and re-announces.  The price is
   grace-period lag of up to one batch per thread, bounded and paid only in
   reclamation latency.

   Data structures must run operations under a checkpoint ([neutralizable]
   is true); [recover] just resets the thread's announce — the retried
   operation re-announces a fresh epoch.  Scheme-internal sections (alloc,
   retire, cancel, flush) run signal-masked: unwinding out of a half-done
   limbo append or allocator call would corrupt host-side bookkeeping,
   exactly the sections DEBRA+'s handler refuses to longjmp out of. *)

open Oamem_engine

(* Consecutive failed advances a stale announce survives before its owner
   is neutralized.  Small: advance attempts happen at most once per batch,
   so a healthy peer re-announces the current epoch between any two of
   them — only a thread that stopped crossing batch boundaries altogether
   can accumulate lag. *)
let patience = 3

(* Operations per announcement refresh, capped by the reclamation
   threshold so tiny-threshold configs (tests, fuzz) still refresh — and
   attempt to advance — every operation.  Advance attempts run only at a
   refresh, i.e. at a batch boundary where the thread has just announced
   the current epoch and holds no references: attempting mid-operation
   would find the thread's *own* announce stale for the rest of its batch
   (it cannot safely bump it while holding references), and a single
   thread would end up neutralizing itself. *)
let max_batch = 16

type thread_state = {
  buckets : Limbo.t array;  (* 3 buckets, indexed by epoch mod 3 *)
}

let caps : Scheme.caps =
  {
    hazard_writes = false;
    neutralizes = true;
    recycles_retired = false;
    leaks_by_design = false;
    conditional_access = false;
    frees_immediately = false;
  }

let make (cfg : Scheme.config) ~alloc:(lr : Oamem_lrmalloc.Lrmalloc.t) ~meta
    ~nthreads : Scheme.ops =
  let geom = Oamem_vmem.Vmem.geometry (Oamem_lrmalloc.Lrmalloc.vmem lr) in
  let global_epoch = Cell.make ~pad:true meta 2 in
  (* announce = epoch while active, 0 while idle *)
  let announces = Array.init nthreads (fun _ -> Cell.make ~pad:true meta 0) in
  let threads =
    Array.init nthreads (fun _ ->
        {
          buckets =
            Array.init 3 (fun _ ->
                Limbo.create meta ~geom ~capacity_hint:cfg.Scheme.threshold);
        })
  in
  (* host-side recovery bookkeeping (the poster's private state) *)
  let lags = Array.make nthreads 0 in
  let seized_from = Array.make nthreads false in
  (* amortization bookkeeping: the epoch each thread last announced (0 =
     not announced) and how many ops it has run on that announcement *)
  let batch = max 1 (min max_batch cfg.Scheme.threshold) in
  let announced = Array.make nthreads 0 in
  let batch_ops = Array.make nthreads 0 in
  let sink = Scheme.fresh_sink () in
  let my ctx = threads.((Engine.Mem.tid ctx)) in
  let free_node ctx n = Oamem_lrmalloc.Lrmalloc.free lr ctx n in
  let free_old_bucket ctx e =
    let t = my ctx in
    let b = t.buckets.((e - 2) mod 3) in
    if Limbo.size b > 0 then begin
      let freed =
        Limbo.sweep b ctx ~protected:(fun _ -> false) ~free:(free_node ctx)
      in
      Scheme.note_reclaim_phase sink ctx ~freed
    end
  in
  (* Take over a dead thread's backlog: its bucket contents migrate into
     the seizing thread's *current* bucket, so they obey the normal
     two-epoch grace period from now on instead of being pinned forever.
     The victim is fail-stopped, so its host-side bags are quiescent. *)
  let seize ctx victim =
    let e = Cell.get ctx global_epoch in
    let mine = (my ctx).buckets.(e mod 3) in
    let taken = ref 0 in
    Array.iter
      (fun b ->
        taken :=
          !taken
          + Limbo.sweep b ctx
              ~protected:(fun _ -> false)
              ~free:(fun n -> Limbo.add mine ctx n))
      threads.(victim).buckets;
    if !taken > 0 then Scheme.note_seized sink !taken
  in
  let try_advance ctx =
    let e = Cell.get ctx global_epoch in
    let blocking = ref [] in
    Array.iteri
      (fun v a ->
        let x = Cell.get ctx a in
        if x <> 0 && x <> e then blocking := (v, x) :: !blocking
        else lags.(v) <- 0)
      announces;
    match !blocking with
    | [] ->
        if Cell.cas ctx global_epoch ~expect:e ~desired:(e + 1) then
          Scheme.note_warning sink ctx ~piggybacked:false
    | vs ->
        List.iter
          (fun (v, x) ->
            lags.(v) <- lags.(v) + 1;
            if cfg.Scheme.neutralize && lags.(v) > patience then begin
              lags.(v) <- 0;
              match Engine.Mem.neutralize ctx ~victim:v with
              | Engine.Posted | Engine.Already_pending ->
                  (* the victim is quiesced from here on: void its stale
                     announce ourselves so the epoch can move.  CAS, not
                     set — if the victim was already unwound and retried,
                     its fresh announce must survive. *)
                  ignore (Cell.cas ctx announces.(v) ~expect:x ~desired:0)
              | Engine.Dead ->
                  ignore (Cell.cas ctx announces.(v) ~expect:x ~desired:0);
                  if not seized_from.(v) then begin
                    seized_from.(v) <- true;
                    seize ctx v
                  end
            end)
          vs
  in
  let masked ctx f = Engine.Mem.masked ctx f in
  {
    Scheme.name = "debra";
    (* [neutralizes] tracks the config switch: with [neutralize = false]
       the scheme degrades to plain EBR and never posts a signal. *)
    caps = { caps with Scheme.neutralizes = cfg.Scheme.neutralize };
    alloc =
      (fun ctx size ->
        masked ctx (fun () -> Oamem_lrmalloc.Lrmalloc.malloc lr ctx size));
    retire =
      (fun ctx addr ->
        masked ctx (fun () ->
            let t = my ctx in
            let e = Cell.get ctx global_epoch in
            (* drain the bucket two epochs back before reusing its slot *)
            free_old_bucket ctx e;
            let b = t.buckets.(e mod 3) in
            Limbo.add b ctx addr;
            Scheme.note_retired sink ctx addr
            (* no advance attempt here: retire runs mid-operation, where
               this thread's own announce may be stale and cannot safely
               be bumped.  The attempt happens at the next batch boundary
               (begin_op), right after a fresh announce. *)));
    cancel = (fun ctx addr -> masked ctx (fun () -> free_node ctx addr));
    begin_op =
      (fun ctx ->
        (* amortized announcement: refresh once per [batch] ops, stay
           announced in between (host mirror [announced] tracks it so the
           common case touches no simulated memory at all) *)
        let tid = Engine.Mem.tid ctx in
        if announced.(tid) = 0 || batch_ops.(tid) >= batch then begin
          let e = Cell.get ctx global_epoch in
          Cell.set ctx announces.(tid) e;
          Engine.Mem.fence ctx Engine.Full;
          announced.(tid) <- e;
          batch_ops.(tid) <- 0;
          (* freshly announced and holding no references: the one safe
             point to push the epoch along, and the rate limit that keeps
             scans spaced a full batch apart (see [patience]).  Masked: a
             signal unwinding out of a half-done seize would tear the
             bag migration. *)
          if Limbo.size (my ctx).buckets.(e mod 3) >= cfg.Scheme.threshold
          then Engine.Mem.masked ctx (fun () -> try_advance ctx)
        end;
        batch_ops.(tid) <- batch_ops.(tid) + 1);
    end_op = (fun _ -> () (* still announced: the batch spans ops *));
    read_check = (fun _ -> ());
    traverse_protect = (fun _ctx ~slot:_ ~addr:_ ~verify:_ -> ());
    write_protect = (fun _ctx ~slot:_ _ -> ());
    validate = (fun _ -> ());
    clear = (fun _ -> ());
    flush =
      (fun ctx ->
        (* teardown: the caller guarantees quiescence, so everything goes —
           including the backlog of threads that fail-stopped and will
           never flush for themselves *)
        masked ctx (fun () ->
            let drain t =
              Array.iter
                (fun b ->
                  let freed =
                    Limbo.sweep b ctx
                      ~protected:(fun _ -> false)
                      ~free:(free_node ctx)
                  in
                  Scheme.note_freed sink freed)
                t.buckets
            in
            drain (my ctx);
            for v = 0 to nthreads - 1 do
              if Engine.Mem.peer_crashed ctx ~tid:v && not seized_from.(v)
              then begin
                seized_from.(v) <- true;
                let before = sink.Scheme.stats.freed in
                drain threads.(v);
                Scheme.note_seized sink (sink.Scheme.stats.freed - before)
              end
            done));
    neutralizable = cfg.Scheme.neutralize;
    recover =
      (fun ctx ->
        (* idempotent: resetting the host mirror forces the retried
           operation's begin_op down the full re-announce path *)
        let tid = Engine.Mem.tid ctx in
        Cell.set ctx announces.(tid) 0;
        announced.(tid) <- 0;
        batch_ops.(tid) <- 0);
    stats = sink.Scheme.stats;
    sink;
  }
