(* EBR — epoch-based reclamation, an extra baseline.

   Threads announce the global epoch on every operation; a node retired in
   epoch [e] is freed once the epoch has advanced twice past it, which
   guarantees no thread still executes an operation that began while the
   node was reachable.  Cheap steady-state reads, but a single stalled
   thread blocks reclamation entirely — the classic EBR weakness (and one
   reason the paper's OA schemes are attractive). *)

open Oamem_engine

type thread_state = {
  buckets : Limbo.t array;  (* 3 buckets, indexed by epoch mod 3 *)
}

let caps : Scheme.caps =
  {
    hazard_writes = false;
    neutralizes = false;
    recycles_retired = false;
    leaks_by_design = false;
    conditional_access = false;
    frees_immediately = false;
  }

let make (cfg : Scheme.config) ~alloc:(lr : Oamem_lrmalloc.Lrmalloc.t) ~meta
    ~nthreads : Scheme.ops =
  let geom = Oamem_vmem.Vmem.geometry (Oamem_lrmalloc.Lrmalloc.vmem lr) in
  let global_epoch = Cell.make ~pad:true meta 2 in
  (* announce = epoch while active, 0 while idle *)
  let announces = Array.init nthreads (fun _ -> Cell.make ~pad:true meta 0) in
  let threads =
    Array.init nthreads (fun _ ->
        {
          buckets =
            Array.init 3 (fun _ ->
                Limbo.create meta ~geom ~capacity_hint:cfg.Scheme.threshold);
        })
  in
  let sink = Scheme.fresh_sink () in
  let my ctx = threads.((Engine.Mem.tid ctx)) in
  (* Free the bucket holding nodes retired in epoch [e - 2]: once the
     global epoch has reached [e], every operation that could still hold a
     reference to them has completed. *)
  let free_old_bucket ctx e =
    let t = my ctx in
    let b = t.buckets.((e - 2) mod 3) in
    if Limbo.size b > 0 then begin
      let freed =
        Limbo.sweep b ctx
          ~protected:(fun _ -> false)
          ~free:(fun n -> Oamem_lrmalloc.Lrmalloc.free lr ctx n)
      in
      Scheme.note_reclaim_phase sink ctx ~freed
    end
  in
  let try_advance ctx =
    let e = Cell.get ctx global_epoch in
    let all_current = ref true in
    Array.iter
      (fun a ->
        let v = Cell.get ctx a in
        if v <> 0 && v <> e then all_current := false)
      announces;
    if !all_current then
      if Cell.cas ctx global_epoch ~expect:e ~desired:(e + 1) then
        Scheme.note_warning sink ctx ~piggybacked:false
  in
  {
    Scheme.name = "ebr";
    caps;
    alloc = (fun ctx size -> Oamem_lrmalloc.Lrmalloc.malloc lr ctx size);
    retire =
      (fun ctx addr ->
        let t = my ctx in
        let e = Cell.get ctx global_epoch in
        (* drain the bucket two epochs back before reusing its slot *)
        free_old_bucket ctx e;
        let b = t.buckets.(e mod 3) in
        Limbo.add b ctx addr;
        Scheme.note_retired sink ctx addr;
        if Limbo.size b >= cfg.Scheme.threshold then try_advance ctx);
    cancel = (fun ctx addr -> Oamem_lrmalloc.Lrmalloc.free lr ctx addr);
    begin_op =
      (fun ctx ->
        let e = Cell.get ctx global_epoch in
        Cell.set ctx announces.((Engine.Mem.tid ctx)) e;
        Engine.Mem.fence ctx Engine.Full);
    end_op = (fun ctx -> Cell.set ctx announces.((Engine.Mem.tid ctx)) 0);
    read_check = (fun _ -> ());
    traverse_protect = (fun _ctx ~slot:_ ~addr:_ ~verify:_ -> ());
    write_protect = (fun _ctx ~slot:_ _ -> ());
    validate = (fun _ -> ());
    clear = (fun _ -> ());
    flush =
      (fun ctx ->
        (* teardown: the caller guarantees quiescence, so everything goes *)
        let t = my ctx in
        Array.iter
          (fun b ->
            let freed =
              Limbo.sweep b ctx
                ~protected:(fun _ -> false)
                ~free:(fun n -> Oamem_lrmalloc.Lrmalloc.free lr ctx n)
            in
            Scheme.note_freed sink freed)
          t.buckets);
    neutralizable = false;
    recover = (fun _ -> ());
    stats = sink.Scheme.stats;
    sink;
  }
