(* Per-thread hazard-pointer slots.

   Each thread owns [k] slots; each slot is a metadata cell, and each
   thread's group of slots is cache-line padded so that publishing a hazard
   pointer does not false-share with other threads' slots (the unpadded
   variant is exercised by the padding ablation bench). *)

open Oamem_engine

type t = { slots : Cell.t array array; k : int }

let create ?(padded = true) meta ~nthreads ~k =
  {
    slots =
      Array.init nthreads (fun _ ->
          Array.init k (fun i ->
              (* pad the first slot of each thread's group *)
              Cell.make ~pad:(padded && i = 0) meta 0));
    k;
  }

let set ctx t ~slot addr = Cell.set ctx t.slots.((Engine.Mem.tid ctx)).(slot) addr

let clear ctx t =
  Array.iter (fun c -> Cell.set ctx c 0) t.slots.((Engine.Mem.tid ctx))

(* Read every thread's slots (charged) into a membership test.  The
   snapshot is small (nthreads * k), so a sorted list is fine. *)
let snapshot ctx t =
  let acc = ref [] in
  Array.iter
    (fun row ->
      Array.iter
        (fun c ->
          let v = Cell.get ctx c in
          if v <> 0 then acc := v :: !acc)
        row)
    t.slots;
  List.sort_uniq compare !acc

let protects snapshot addr = List.mem addr snapshot

(* Uncosted views for assertions. *)
let peek_thread t ~tid = Array.map Cell.peek t.slots.(tid)
