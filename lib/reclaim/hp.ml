(* HP — classic hazard pointers (Michael 2004), an extra baseline.

   The contrast with OA is the paper's §2.4 cost argument: hazard pointers
   publish a pointer (a store that invalidates remote cache copies) plus a
   full store-load fence *per node traversed*, then re-verify the link;
   OA replaces all of that with one cached load per node. *)

open Oamem_engine

type thread_state = { limbo : Limbo.t }

let caps : Scheme.caps =
  {
    hazard_writes = true;
    neutralizes = false;
    recycles_retired = false;
    leaks_by_design = false;
    conditional_access = false;
    frees_immediately = false;
  }

let make (cfg : Scheme.config) ~alloc:(lr : Oamem_lrmalloc.Lrmalloc.t) ~meta
    ~nthreads : Scheme.ops =
  let geom = Oamem_vmem.Vmem.geometry (Oamem_lrmalloc.Lrmalloc.vmem lr) in
  let hazards =
    Hazard_slots.create ~padded:cfg.Scheme.hazard_padded meta ~nthreads
      ~k:cfg.Scheme.slots_per_thread
  in
  let threads =
    Array.init nthreads (fun _ ->
        { limbo = Limbo.create meta ~geom ~capacity_hint:cfg.Scheme.threshold })
  in
  let sink = Scheme.fresh_sink () in
  let my ctx = threads.((Engine.Mem.tid ctx)) in
  let scan ctx =
    let t = my ctx in
    Engine.Mem.fence ctx Engine.Full;
    let snapshot = Hazard_slots.snapshot ctx hazards in
    let freed =
      Limbo.sweep t.limbo ctx
        ~protected:(fun n -> Hazard_slots.protects snapshot n)
        ~free:(fun n -> Oamem_lrmalloc.Lrmalloc.free lr ctx n)
    in
    Scheme.note_reclaim_phase sink ctx ~freed
  in
  {
    Scheme.name = "hp";
    caps;
    alloc = (fun ctx size -> Oamem_lrmalloc.Lrmalloc.malloc lr ctx size);
    retire =
      (fun ctx addr ->
        let t = my ctx in
        Limbo.add t.limbo ctx addr;
        Scheme.note_retired sink ctx addr;
        if Limbo.size t.limbo >= cfg.Scheme.threshold then scan ctx);
    cancel = (fun ctx addr -> Oamem_lrmalloc.Lrmalloc.free lr ctx addr);
    begin_op = (fun _ -> ());
    end_op = (fun _ -> ());
    read_check = (fun _ -> ());
    traverse_protect =
      (fun ctx ~slot ~addr ~verify ->
        (* publish, fence, re-verify the source link: the per-node cost *)
        Hazard_slots.set ctx hazards ~slot addr;
        Engine.Mem.fence ctx Engine.Full;
        if not (verify ()) then raise Scheme.Restart);
    write_protect = (fun ctx ~slot addr -> Hazard_slots.set ctx hazards ~slot addr);
    validate = (fun _ -> ());
    clear = (fun ctx -> Hazard_slots.clear ctx hazards);
    flush =
      (fun ctx ->
        let t = my ctx in
        if Limbo.size t.limbo > 0 then scan ctx);
    neutralizable = false;
    recover = (fun _ -> ());
    stats = sink.Scheme.stats;
    sink;
  }
