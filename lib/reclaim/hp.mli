(** Reclamation scheme: classic hazard pointers (Michael 2004). *)

open Oamem_engine

val caps : Scheme.caps
(** Static capability declaration (the default-config view; the [ops]
    record's [caps] is authoritative per instance). *)

val make :
  Scheme.config ->
  alloc:Oamem_lrmalloc.Lrmalloc.t ->
  meta:Cell.heap ->
  nthreads:int ->
  Scheme.ops
