(* IBR — 2GE interval-based reclamation (Wen et al., PPoPP 2018), one of the
   amortized methods the paper positions itself against (§1).

   Every node carries a hidden two-word header holding its birth and retire
   eras (the scheme over-allocates by two words and hands out the address
   past the header).  Each thread publishes the interval of eras its current
   operation has observed: [lo] is the era at operation start and [hi] is
   advanced — without restarting — whenever a read notices the global era
   moved.  A retired node is freed once no thread's published interval
   overlaps the node's lifetime interval.

   Unlike the OA schemes there are no restarts at all; unlike EBR a stalled
   thread only pins nodes whose lifetimes overlap its interval, not every
   retired node.  The cost is the header traffic and the per-read era
   check. *)

open Oamem_engine
open Oamem_vmem

type thread_state = {
  lo : Cell.t;  (* published interval; 0 = inactive *)
  hi : Cell.t;
  limbo : Limbo.t;  (* addresses of retired nodes (header addresses) *)
}

let header_words = 2

let caps : Scheme.caps =
  {
    hazard_writes = false;
    neutralizes = false;
    recycles_retired = false;
    leaks_by_design = false;
    conditional_access = false;
    frees_immediately = false;
  }

let make (cfg : Scheme.config) ~alloc:(lr : Oamem_lrmalloc.Lrmalloc.t) ~meta
    ~nthreads : Scheme.ops =
  let vmem = Oamem_lrmalloc.Lrmalloc.vmem lr in
  let geom = Vmem.geometry vmem in
  let era = Cell.make ~pad:true meta 1 in
  let threads =
    Array.init nthreads (fun _ ->
        {
          lo = Cell.make ~pad:true meta 0;
          hi = Cell.make meta 0;
          limbo = Limbo.create meta ~geom ~capacity_hint:cfg.Scheme.threshold;
        })
  in
  let sink = Scheme.fresh_sink () in
  let my ctx = threads.((Engine.Mem.tid ctx)) in
  (* bump the era every [threshold] retirements: the 2GE amortization *)
  let retire_count = ref 0 in
  let birth_of ctx header = Vmem.load vmem ctx header in
  let retire_of ctx header = Vmem.load vmem ctx (header + 1) in
  let sweep ctx =
    let t = my ctx in
    (* snapshot every thread's published interval (charged reads) *)
    let intervals =
      Array.to_list threads
      |> List.filter_map (fun th ->
             let lo = Cell.get ctx th.lo in
             if lo = 0 then None else Some (lo, Cell.get ctx th.hi))
    in
    let freed =
      Limbo.sweep t.limbo ctx
        ~protected:(fun header ->
          let birth = birth_of ctx header in
          let retired = retire_of ctx header in
          List.exists (fun (lo, hi) -> birth <= hi && retired >= lo) intervals)
        ~free:(fun header -> Oamem_lrmalloc.Lrmalloc.free lr ctx header)
    in
    Scheme.note_reclaim_phase sink ctx ~freed
  in
  {
    Scheme.name = "ibr";
    caps;
    alloc =
      (fun ctx size ->
        let header = Oamem_lrmalloc.Lrmalloc.malloc lr ctx (size + header_words) in
        Vmem.store vmem ctx header (Cell.get ctx era);
        Vmem.store vmem ctx (header + 1) max_int;
        header + header_words);
    retire =
      (fun ctx addr ->
        let t = my ctx in
        let header = addr - header_words in
        Vmem.store vmem ctx (header + 1) (Cell.get ctx era);
        Limbo.add t.limbo ctx header;
        Scheme.note_retired sink ctx addr;
        incr retire_count;
        if !retire_count mod cfg.Scheme.threshold = 0 then begin
          ignore (Cell.fetch_and_add ctx era 1);
          Scheme.note_warning sink ctx ~piggybacked:false
        end;
        if Limbo.size t.limbo >= cfg.Scheme.threshold then sweep ctx);
    cancel =
      (fun ctx addr ->
        Oamem_lrmalloc.Lrmalloc.free lr ctx (addr - header_words));
    begin_op =
      (fun ctx ->
        let t = my ctx in
        let e = Cell.get ctx era in
        Cell.set ctx t.lo e;
        Cell.set ctx t.hi e;
        Engine.Mem.fence ctx Engine.Full);
    end_op =
      (fun ctx ->
        let t = my ctx in
        Cell.set ctx t.lo 0);
    read_check =
      (fun ctx ->
        (* no restarts: extend the published interval instead *)
        let t = my ctx in
        let e = Cell.get ctx era in
        if Cell.peek t.hi <> e then begin
          Cell.set ctx t.hi e;
          Engine.Mem.fence ctx Engine.Full
        end);
    traverse_protect = (fun _ctx ~slot:_ ~addr:_ ~verify:_ -> ());
    write_protect = (fun _ctx ~slot:_ _ -> ());
    validate = (fun _ -> ());
    clear = (fun _ -> ());
    flush =
      (fun ctx ->
        let t = my ctx in
        if Limbo.size t.limbo > 0 then begin
          ignore (Cell.fetch_and_add ctx era 1);
          sweep ctx
        end);
    neutralizable = false;
    recover = (fun _ -> ());
    stats = sink.Scheme.stats;
    sink;
  }
