(** Reclamation scheme: 2GE interval-based reclamation (Wen et al. 2018).

    Nodes carry hidden birth/retire-era headers; threads publish the era
    interval their operation observed and extend it (no restarts) when the
    global era advances.  A retired node is freed once no published
    interval overlaps its lifetime. *)

open Oamem_engine

val header_words : int

val caps : Scheme.caps
(** Static capability declaration (the default-config view; the [ops]
    record's [caps] is authoritative per instance). *)

val make :
  Scheme.config ->
  alloc:Oamem_lrmalloc.Lrmalloc.t ->
  meta:Cell.heap ->
  nthreads:int ->
  Scheme.ops
