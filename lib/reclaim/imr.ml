(* IMR — immediate memory reclamation over conditional access.

   The scheme the paper's conditional-access hardware sketch enables: a
   retired node is freed *immediately*, with no limbo list, no hazard
   pointers and no grace period.  Safety comes from the engine's revocable
   per-thread accessible flag: before freeing, the retiring thread revokes
   the flag of every other thread that has entered the scheme's protocol
   (begun an op, allocated, or read-checked), so any store or CAS a
   concurrent optimistic
   traversal commits from then on is squashed by the (simulated) hardware
   and CASes report failure.  A revoked thread discovers the revocation at
   its next [read_check]/[validate], re-grants its own flag and restarts
   from a safe location — the same restart contract the OA schemes use,
   with the revocation playing the role of the warning bit.

   Why this is safe with an immediate free: the unlink CAS that retired the
   node happens before retire -> revoke-all -> free, so any traversal that
   starts (or restarts) after the revocation can no longer reach the node;
   traversals that were already past the unlink can still *load* freed
   memory (palloc keeps the pages mapped, exactly as for OA-BIT) but every
   store they attempt is squashed until they restart.  The squash closes
   the validate->CAS window that hazard pointers close for HP/OA.

   Scheme-internal code (allocator free lists, this module's own
   bookkeeping) must not be squashed when the *current* thread's flag is
   revoked — an allocator CAS retry loop would otherwise livelock — so
   every entry point that mutates scheme or allocator state self-masks via
   [Engine.Mem.masked], mirroring what [Op]-level masking does for
   neutralizable schemes. *)

open Oamem_engine

let caps : Scheme.caps =
  {
    hazard_writes = false;
    neutralizes = false;
    recycles_retired = false;
    leaks_by_design = false;
    conditional_access = true;
    frees_immediately = true;
  }

let make (_cfg : Scheme.config) ~alloc:(lr : Oamem_lrmalloc.Lrmalloc.t)
    ~meta:(_ : Cell.heap) ~nthreads : Scheme.ops =
  let sink = Scheme.fresh_sink () in
  (* Only threads that entered the scheme's protocol can hold optimistic
     pointers into retired nodes, so retire revokes exactly those.  A
     bystander engine thread (a sampler, a ballast allocator) never begins
     an op; revoking it would squash allocator CASes it retries forever,
     with nothing ever re-granting its flag. *)
  let participants = Array.make nthreads false in
  let join ctx =
    let tid = Engine.Mem.tid ctx in
    if tid >= 0 && tid < nthreads && not participants.(tid) then
      participants.(tid) <- true
  in
  (* Failed conditional access: re-grant our own flag (idempotent, and not
     subject to squashing — it is the hardware primitive itself) and
     restart from a safe location. *)
  let check ctx =
    if not (Engine.Mem.cond_access ctx) then begin
      Scheme.note_cond_fail sink ctx;
      Engine.Mem.grant_access ctx;
      raise Scheme.Restart
    end
  in
  let read_check ctx =
    join ctx;
    Engine.Mem.fence ctx Engine.Compiler;
    check ctx
  in
  {
    Scheme.name = "imr";
    caps;
    (* palloc: freed nodes may still be loaded by doomed traversals, so
       their pages must stay mapped (same contract as OA-BIT/OA-VER). *)
    alloc =
      (fun ctx size ->
        join ctx;
        Engine.Mem.masked ctx (fun () ->
            Oamem_lrmalloc.Lrmalloc.palloc lr ctx size));
    retire =
      (fun ctx addr ->
        Scheme.note_retired sink ctx addr;
        Engine.Mem.masked ctx (fun () ->
            let tid = Engine.Mem.tid ctx in
            for v = 0 to nthreads - 1 do
              if v <> tid && participants.(v) then
                match Engine.Mem.revoke ctx ~victim:v with
                | Engine.Posted ->
                    (* a revocation is IMR's warning broadcast *)
                    Scheme.note_warning sink ctx ~piggybacked:false
                | Engine.Already_pending | Engine.Dead -> ()
            done;
            (* order the revocations before the free *)
            Engine.Mem.fence ctx Engine.Full;
            Oamem_lrmalloc.Lrmalloc.free lr ctx addr;
            Scheme.note_freed sink 1));
    cancel =
      (fun ctx addr ->
        (* never published: plain free, no revocation needed *)
        Engine.Mem.masked ctx (fun () ->
            Oamem_lrmalloc.Lrmalloc.free lr ctx addr));
    begin_op = join;
    end_op = (fun _ -> ());
    read_check;
    traverse_protect = (fun _ctx ~slot:_ ~addr:_ ~verify:_ -> ());
    write_protect = (fun _ctx ~slot:_ _ -> ());
    validate =
      (fun ctx ->
        Engine.Mem.fence ctx Engine.Full;
        check ctx);
    clear =
      (fun ctx ->
        (* end of operation: a revocation that landed after the last check
           must not leak into the next operation (no optimistic pointers
           survive an op boundary, so re-granting here is sound) *)
        if not (Engine.Mem.cond_access ctx) then Engine.Mem.grant_access ctx);
    flush = (fun _ -> () (* nothing is ever deferred *));
    neutralizable = false;
    recover = (fun _ -> ());
    stats = sink.Scheme.stats;
    sink;
  }
