(* Per-thread limbo list of retired nodes awaiting reclamation.

   A plain growable int buffer backed by a simulated address range so its
   footprint is visible to the cache model.  Only its owning thread touches
   it — the whole point of the paper's simplified schemes is that retirement
   needs no shared pool. *)

open Oamem_engine
module Profile = Oamem_obs.Profile

type t = {
  geom : Geometry.t;
  mutable arr : int array;
  mutable len : int;
  base_addr : int;
  capacity_hint : int;
}

let create meta ~geom ~capacity_hint =
  {
    geom;
    arr = Array.make (max 8 capacity_hint) 0;
    len = 0;
    base_addr = Cell.alloc_words meta ~pad:true (max 8 (2 * capacity_hint));
    capacity_hint;
  }

let account t ctx i kind =
  let paddr = t.base_addr + i in
  Engine.Mem.access ctx ~vpage:(Geometry.page_of_addr t.geom paddr) ~paddr ~kind

let size t = t.len

let add t ctx addr =
  if t.len >= Array.length t.arr then begin
    let bigger = Array.make (2 * Array.length t.arr) 0 in
    Array.blit t.arr 0 bigger 0 t.len;
    t.arr <- bigger
  end;
  account t ctx t.len Engine.Store;
  t.arr.(t.len) <- addr;
  t.len <- t.len + 1

(* Remove (and pass to [free]) every node not satisfying [protected];
   returns how many were freed.  Each examined entry is charged. *)
let sweep_raw t ctx ~protected ~free =
  let kept = ref 0 in
  let freed = ref 0 in
  for i = 0 to t.len - 1 do
    account t ctx i Engine.Load;
    let n = t.arr.(i) in
    if protected n then begin
      t.arr.(!kept) <- n;
      incr kept
    end
    else begin
      free n;
      incr freed
    end
  done;
  t.len <- !kept;
  !freed

(* The sweep is the scan phase of every limbo-based scheme (HP, EBR, IBR,
   OA-BIT, OA-VER), so one [Reclaim_scan] span here covers them all; the
   [free] callbacks open their own [Alloc_free] child spans. *)
let sweep t ctx ~protected ~free =
  let p = Engine.Mem.profile ctx in
  if Profile.enabled p then begin
    let tid = (Engine.Mem.tid ctx) in
    Profile.enter p ~tid ~now:(Engine.Mem.now ctx) Profile.Reclaim_scan;
    match sweep_raw t ctx ~protected ~free with
    | n ->
        Profile.leave p ~tid ~now:(Engine.Mem.now ctx);
        n
    | exception e ->
        Profile.leave p ~tid ~now:(Engine.Mem.now ctx);
        raise e
  end
  else sweep_raw t ctx ~protected ~free

let to_list t = Array.to_list (Array.sub t.arr 0 t.len)
