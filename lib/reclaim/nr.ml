(* NR — no reclamation (paper §5 baseline).

   Memory is never reclaimed, reused or freed; allocation goes through the
   regular malloc path.  All validation hooks are no-ops. *)

open Oamem_engine

let caps : Scheme.caps =
  {
    hazard_writes = false;
    neutralizes = false;
    recycles_retired = false;
    leaks_by_design = true;
    conditional_access = false;
    frees_immediately = false;
  }

let make (_cfg : Scheme.config) ~alloc:(lr : Oamem_lrmalloc.Lrmalloc.t)
    ~meta:(_ : Cell.heap) ~nthreads:(_ : int) : Scheme.ops =
  let sink = Scheme.fresh_sink () in
  {
    Scheme.name = "nr";
    caps;
    alloc = (fun ctx size -> Oamem_lrmalloc.Lrmalloc.malloc lr ctx size);
    retire =
      (fun ctx addr ->
        (* leak, deliberately *)
        Scheme.note_retired sink ctx addr);
    cancel = (fun _ctx _addr -> ());
    begin_op = (fun _ -> ());
    end_op = (fun _ -> ());
    read_check = (fun _ -> ());
    traverse_protect = (fun _ctx ~slot:_ ~addr:_ ~verify:_ -> ());
    write_protect = (fun _ctx ~slot:_ _ -> ());
    validate = (fun _ -> ());
    clear = (fun _ -> ());
    flush = (fun _ -> ());
    neutralizable = false;
    recover = (fun _ -> ());
    stats = sink.Scheme.stats;
    sink;
  }
