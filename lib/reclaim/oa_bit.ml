(* OA-BIT — the paper's simplified optimistic-access reclaimer with one
   warning bit per thread (Algorithm 1).

   Nodes are allocated with [palloc], so their address ranges stay readable
   after free; the recycling pools of the original OA disappear entirely.
   Retired nodes go to the retiring thread's private limbo list; when it
   reaches the threshold the thread sets every other thread's warning bit,
   fences, snapshots all hazard pointers and frees the unprotected nodes
   back to the allocator — where they become reusable by the whole process.

   Traversals only pay one (usually cached) load of their own warning bit
   per node plus a compiler barrier — the §2.4 cost argument; writes pay
   one full fence for any number of hazard pointers. *)

open Oamem_engine

type thread_state = { warning : Cell.t; limbo : Limbo.t }

let caps : Scheme.caps =
  {
    hazard_writes = true;
    neutralizes = false;
    recycles_retired = false;
    leaks_by_design = false;
    conditional_access = false;
    frees_immediately = false;
  }

let make (cfg : Scheme.config) ~alloc:(lr : Oamem_lrmalloc.Lrmalloc.t) ~meta
    ~nthreads : Scheme.ops =
  let geom = Oamem_vmem.Vmem.geometry (Oamem_lrmalloc.Lrmalloc.vmem lr) in
  let hazards =
    Hazard_slots.create ~padded:cfg.Scheme.hazard_padded meta ~nthreads
      ~k:cfg.Scheme.slots_per_thread
  in
  let threads =
    Array.init nthreads (fun _ ->
        {
          warning = Cell.make ~pad:true meta 0;
          limbo = Limbo.create meta ~geom ~capacity_hint:cfg.Scheme.threshold;
        })
  in
  let sink = Scheme.fresh_sink () in
  let my ctx = threads.((Engine.Mem.tid ctx)) in
  (* One optimistic-read validation: a load of the thread's own bit (cache
     hit unless someone warned us) behind a compiler-only barrier (TSO). *)
  let read_check ctx =
    Engine.Mem.fence ctx Engine.Compiler;
    let t = my ctx in
    if Cell.get ctx t.warning <> 0 then begin
      (* consume the warning atomically so a concurrent setter is not lost *)
      ignore (Cell.exchange ctx t.warning 0);
      raise Scheme.Restart
    end
  in
  let reclaim ctx =
    let t = my ctx in
    (* warn every thread (Alg. 1 warns all, including the reclaimer), then
       make the warnings visible *)
    for tid = 0 to nthreads - 1 do
      Cell.set ctx threads.(tid).warning 1;
      Scheme.note_warning sink ctx ~piggybacked:false
    done;
    Engine.Mem.fence ctx Engine.Full;
    let snapshot = Hazard_slots.snapshot ctx hazards in
    let freed =
      Limbo.sweep t.limbo ctx
        ~protected:(fun n -> Hazard_slots.protects snapshot n)
        ~free:(fun n -> Oamem_lrmalloc.Lrmalloc.free lr ctx n)
    in
    Scheme.note_reclaim_phase sink ctx ~freed
  in
  {
    Scheme.name = "oa-bit";
    caps;
    alloc = (fun ctx size -> Oamem_lrmalloc.Lrmalloc.palloc lr ctx size);
    retire =
      (fun ctx addr ->
        let t = my ctx in
        Limbo.add t.limbo ctx addr;
        Scheme.note_retired sink ctx addr;
        if Limbo.size t.limbo >= cfg.Scheme.threshold then reclaim ctx);
    cancel = (fun ctx addr -> Oamem_lrmalloc.Lrmalloc.free lr ctx addr);
    begin_op = (fun _ -> ());
    end_op = (fun _ -> ());
    read_check;
    traverse_protect = (fun _ctx ~slot:_ ~addr:_ ~verify:_ -> ());
    write_protect = (fun ctx ~slot addr -> Hazard_slots.set ctx hazards ~slot addr);
    validate =
      (fun ctx ->
        (* one fence + one warning check covers all hazard pointers set *)
        Engine.Mem.fence ctx Engine.Full;
        read_check ctx);
    clear = (fun ctx -> Hazard_slots.clear ctx hazards);
    flush =
      (fun ctx ->
        let t = my ctx in
        if Limbo.size t.limbo > 0 then reclaim ctx);
    neutralizable = false;
    recover = (fun _ -> ());
    stats = sink.Scheme.stats;
    sink;
  }
