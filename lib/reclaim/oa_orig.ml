(* OA — the original optimistic-access method (Cohen & Petrank, SPAA 2015),
   as the paper's §5 baseline.

   A fixed pool of nodes is allocated with regular malloc once, up front;
   the method then recycles nodes internally through three shared pools
   (§2.4): [ready] (allocatable), [retire] (retired this phase) and
   [processing] (being recycled).  When [ready] runs dry a recycling phase
   starts: the retire pool is detached into processing, every thread's
   warning bit is set, all hazard pointers are collected, and each
   processing node goes back to [ready] (unprotected) or [retire]
   (protected).

   Because the pools are shared and fixed-size, every allocation and
   retirement contends on global stack heads, and higher throughput means
   more phases — the scalability ceiling visible in Figs. 5 and 6.  Phase
   mutual exclusion is a CAS-guarded flag with waiting rather than the full
   helping protocol of the original paper; the synchronisation traffic it
   models (pool contention, full scans, stalls during phases) is the same,
   which is what the evaluation compares.  Memory is never returned to the
   allocator — the exact limitation the paper removes. *)

open Oamem_engine

type thread_state = { warning : Cell.t }

let caps : Scheme.caps =
  {
    hazard_writes = true;
    neutralizes = false;
    recycles_retired = true;
    leaks_by_design = true;
    conditional_access = false;
    frees_immediately = false;
  }

let make (cfg : Scheme.config) ~alloc:(lr : Oamem_lrmalloc.Lrmalloc.t) ~meta
    ~nthreads : Scheme.ops =
  let vmem = Oamem_lrmalloc.Lrmalloc.vmem lr in
  let hazards =
    Hazard_slots.create ~padded:cfg.Scheme.hazard_padded meta ~nthreads
      ~k:cfg.Scheme.slots_per_thread
  in
  let threads =
    Array.init nthreads (fun _ -> { warning = Cell.make ~pad:true meta 0 })
  in
  let ready = Addr_stack.create meta vmem in
  let retire_pool = Addr_stack.create meta vmem in
  (* the "processing pool" is the chain detached from [retire_pool] during a
     phase; the phase owner walks it exclusively *)
  let phase_flag = Cell.make ~pad:true meta 0 in
  let sink = Scheme.fresh_sink () in
  (* Build the fixed memory pool before the benchmark begins, with the
     regular allocator (uncosted, as in the paper's methodology §5.1). *)
  let () =
    let ctx0 = Engine.external_ctx () in
    for _ = 1 to cfg.Scheme.pool_nodes do
      Addr_stack.push ready ctx0
        (Oamem_lrmalloc.Lrmalloc.malloc lr ctx0 cfg.Scheme.node_words)
    done
  in
  let my ctx = threads.((Engine.Mem.tid ctx)) in
  let read_check ctx =
    Engine.Mem.fence ctx Engine.Compiler;
    let t = my ctx in
    if Cell.get ctx t.warning <> 0 then begin
      ignore (Cell.exchange ctx t.warning 0);
      raise Scheme.Restart
    end
  in
  (* One recycling phase; the caller holds the phase flag. *)
  let run_phase ctx =
    let head = Addr_stack.take_all retire_pool ctx in
    for tid = 0 to nthreads - 1 do
      if tid <> (Engine.Mem.tid ctx) then begin
        Cell.set ctx threads.(tid).warning 1;
        Scheme.note_warning sink ctx ~piggybacked:false
      end
    done;
    Engine.Mem.fence ctx Engine.Full;
    let snapshot = Hazard_slots.snapshot ctx hazards in
    let freed = ref 0 in
    Addr_stack.iter_chain retire_pool ctx head (fun n ->
        if Hazard_slots.protects snapshot n then Addr_stack.push retire_pool ctx n
        else begin
          Addr_stack.push ready ctx n;
          incr freed
        end);
    Scheme.note_reclaim_phase sink ctx ~freed:!freed
  in
  let rec alloc ctx size =
    if size > cfg.Scheme.node_words then
      invalid_arg "Oa_orig.alloc: node larger than the pool's node size";
    match Addr_stack.pop ready ctx with
    | Some addr -> addr
    | None ->
        if Cell.cas ctx phase_flag ~expect:0 ~desired:1 then begin
          run_phase ctx;
          Cell.set ctx phase_flag 0
        end
        else begin
          (* another thread is recycling; wait for it *)
          while Cell.get ctx phase_flag = 1 do
            Engine.Mem.pause ctx
          done
        end;
        Engine.Mem.pause ctx;
        alloc ctx size
  in
  {
    Scheme.name = "oa";
    caps;
    alloc;
    retire =
      (fun ctx addr ->
        Addr_stack.push retire_pool ctx addr;
        Scheme.note_retired sink ctx addr);
    cancel = (fun ctx addr -> Addr_stack.push ready ctx addr);
    begin_op = (fun _ -> ());
    end_op = (fun _ -> ());
    read_check;
    traverse_protect = (fun _ctx ~slot:_ ~addr:_ ~verify:_ -> ());
    write_protect = (fun ctx ~slot addr -> Hazard_slots.set ctx hazards ~slot addr);
    validate =
      (fun ctx ->
        Engine.Mem.fence ctx Engine.Full;
        read_check ctx);
    clear = (fun ctx -> Hazard_slots.clear ctx hazards);
    flush = (fun _ -> ());
    neutralizable = false;
    recover = (fun _ -> ());
    stats = sink.Scheme.stats;
    sink;
  }
