(* OA-VER — the paper's monotonic-global-clock variant (Algorithm 2),
   borrowing the warning mechanism of VBR.

   Instead of one warning bit per thread, a single global clock is bumped to
   warn everybody at once; readers compare it against the value they last
   saw.  Warnings are *atomic*, so threads can piggy-back on each other:
   a thread about to reclaim can skip firing its own warning if the clock
   already moved since its last retirement — including when its CAS on the
   clock fails because another thread just fired.  This is what lets OA-VER
   fire far fewer warnings (and hence cause far fewer restarts) than OA-BIT
   on long-chain structures such as linked lists (§5.2, Fig. 4a). *)

open Oamem_engine

type thread_state = {
  limbo : Limbo.t;
  mutable local_clock : int;
  mutable last_retire_time : int;
}

let caps : Scheme.caps =
  {
    hazard_writes = true;
    neutralizes = false;
    recycles_retired = false;
    leaks_by_design = false;
    conditional_access = false;
    frees_immediately = false;
  }

let make (cfg : Scheme.config) ~alloc:(lr : Oamem_lrmalloc.Lrmalloc.t) ~meta
    ~nthreads : Scheme.ops =
  let geom = Oamem_vmem.Vmem.geometry (Oamem_lrmalloc.Lrmalloc.vmem lr) in
  let hazards =
    Hazard_slots.create ~padded:cfg.Scheme.hazard_padded meta ~nthreads
      ~k:cfg.Scheme.slots_per_thread
  in
  let global_clock = Cell.make ~pad:true meta 1 in
  let threads =
    Array.init nthreads (fun _ ->
        {
          limbo = Limbo.create meta ~geom ~capacity_hint:cfg.Scheme.threshold;
          local_clock = 1;
          last_retire_time = 0;
        })
  in
  let sink = Scheme.fresh_sink () in
  let my ctx = threads.((Engine.Mem.tid ctx)) in
  let read_check ctx =
    Engine.Mem.fence ctx Engine.Compiler;
    let t = my ctx in
    let g = Cell.get ctx global_clock in
    if g <> t.local_clock then begin
      t.local_clock <- g;
      raise Scheme.Restart
    end
  in
  let do_reclaim ctx =
    let t = my ctx in
    Engine.Mem.fence ctx Engine.Full;
    let snapshot = Hazard_slots.snapshot ctx hazards in
    let freed =
      Limbo.sweep t.limbo ctx
        ~protected:(fun n -> Hazard_slots.protects snapshot n)
        ~free:(fun n -> Oamem_lrmalloc.Lrmalloc.free lr ctx n)
    in
    Scheme.note_reclaim_phase sink ctx ~freed
  in
  (* Algorithm 2, with one refinement found by the race tests: the paper's
     pseudocode records [LastRetireTime <- LocalClock], but [LocalClock] can
     lag the global clock, letting a thread piggy-back on a warning that was
     fired *before* its nodes were retired — a reader that captured the
     already-bumped clock then sees no change when those nodes are freed,
     and a writer's validation can pass over freed memory.  Recording the
     retirement time with a fresh read of the global clock closes the
     window: reclaiming still requires a warning that strictly postdates
     every retirement in the limbo list, and the piggy-backing benefit on
     genuinely newer warnings is preserved. *)
  let retire ctx addr =
    let t = my ctx in
    if Limbo.size t.limbo >= cfg.Scheme.threshold then begin
      if t.last_retire_time >= t.local_clock then begin
        (* no warning since our last retirement: fire one (or piggy-back on
           a concurrent thread's successful fire when our CAS fails) *)
        if
          Cell.cas ctx global_clock ~expect:t.local_clock
            ~desired:(t.local_clock + 1)
        then Scheme.note_warning sink ctx ~piggybacked:false
        else Scheme.note_warning sink ctx ~piggybacked:true;
        t.local_clock <- Cell.get ctx global_clock
      end
      else Scheme.note_warning sink ctx ~piggybacked:true
    end;
    if
      t.last_retire_time < t.local_clock
      && Limbo.size t.limbo >= cfg.Scheme.threshold
    then do_reclaim ctx;
    (* fresh read: the retirement is stamped against the real clock *)
    t.last_retire_time <- Cell.get ctx global_clock;
    Limbo.add t.limbo ctx addr;
    Scheme.note_retired sink ctx addr
  in
  {
    Scheme.name = "oa-ver";
    caps;
    alloc = (fun ctx size -> Oamem_lrmalloc.Lrmalloc.palloc lr ctx size);
    retire;
    cancel = (fun ctx addr -> Oamem_lrmalloc.Lrmalloc.free lr ctx addr);
    begin_op =
      (fun ctx ->
        let t = my ctx in
        t.local_clock <- Cell.get ctx global_clock);
    end_op = (fun _ -> ());
    read_check;
    traverse_protect = (fun _ctx ~slot:_ ~addr:_ ~verify:_ -> ());
    write_protect = (fun ctx ~slot addr -> Hazard_slots.set ctx hazards ~slot addr);
    validate =
      (fun ctx ->
        Engine.Mem.fence ctx Engine.Full;
        read_check ctx);
    clear = (fun ctx -> Hazard_slots.clear ctx hazards);
    flush =
      (fun ctx ->
        let t = my ctx in
        if Limbo.size t.limbo > 0 then begin
          (* force a fresh warning so everything unprotected can go *)
          ignore
            (Cell.cas ctx global_clock ~expect:t.local_clock
               ~desired:(t.local_clock + 1));
          Scheme.note_warning sink ctx ~piggybacked:false;
          t.local_clock <- Cell.get ctx global_clock;
          do_reclaim ctx;
          t.last_retire_time <- t.local_clock
        end);
    neutralizable = false;
    recover = (fun _ -> ());
    stats = sink.Scheme.stats;
    sink;
  }
