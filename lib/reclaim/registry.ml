(* Name -> reclamation-scheme factory, for the CLI and the harness. *)

open Oamem_engine

type factory =
  Scheme.config ->
  alloc:Oamem_lrmalloc.Lrmalloc.t ->
  meta:Cell.heap ->
  nthreads:int ->
  Scheme.ops

let all : (string * factory) list =
  [
    ("nr", Nr.make);
    ("oa", Oa_orig.make);
    ("oa-bit", Oa_bit.make);
    ("oa-ver", Oa_ver.make);
    ("hp", Hp.make);
    ("ebr", Ebr.make);
    ("ibr", Ibr.make);
    ("debra", Debra.make);
  ]

let names = List.map fst all

let find name =
  match List.assoc_opt name all with
  | Some f -> f
  | None ->
      invalid_arg
        (Printf.sprintf "unknown reclamation scheme %S (known: %s)" name
           (String.concat ", " names))

(* The four methods compared in the paper's evaluation, in its order. *)
let paper_methods = [ "nr"; "oa"; "oa-bit"; "oa-ver" ]
