(* The single point where a scheme name resolves to anything: constructor,
   capability record and one-line description.  Every consumer that used to
   keep its own hand-rolled scheme list or name-string policy table (the
   CLI, the benches, the harness experiments, the sanitizer wiring) goes
   through [find]/[all] instead. *)

open Oamem_engine

type factory =
  Scheme.config ->
  alloc:Oamem_lrmalloc.Lrmalloc.t ->
  meta:Cell.heap ->
  nthreads:int ->
  Scheme.ops

type entry = {
  name : string;
  doc : string;  (* one line, for --help and the README scheme table *)
  caps : Scheme.caps;  (* static default-config view (see Scheme.caps) *)
  make : factory;
}

let all : entry list =
  [
    {
      name = "nr";
      doc = "no reclamation: leak everything (baseline)";
      caps = Nr.caps;
      make = Nr.make;
    };
    {
      name = "oa";
      doc = "original optimistic access over fixed recycling pools";
      caps = Oa_orig.caps;
      make = Oa_orig.make;
    };
    {
      name = "oa-bit";
      doc = "OA with per-thread warning bits over palloc (Algorithm 1)";
      caps = Oa_bit.caps;
      make = Oa_bit.make;
    };
    {
      name = "oa-ver";
      doc = "OA with a monotonic global version clock (Algorithm 2)";
      caps = Oa_ver.caps;
      make = Oa_ver.make;
    };
    {
      name = "hp";
      doc = "hazard pointers: publish + fence per traversed node";
      caps = Hp.caps;
      make = Hp.make;
    };
    {
      name = "ebr";
      doc = "epoch-based reclamation with three limbo buckets";
      caps = Ebr.caps;
      make = Ebr.make;
    };
    {
      name = "ibr";
      doc = "2GE interval-based reclamation (birth/retire eras)";
      caps = Ibr.caps;
      make = Ibr.make;
    };
    {
      name = "debra";
      doc = "DEBRA+ epochs with neutralization signals for laggards";
      caps = Debra.caps;
      make = Debra.make;
    };
    {
      name = "imr";
      doc = "immediate reclamation via conditional-access revocation";
      caps = Imr.caps;
      make = Imr.make;
    };
  ]

let names = List.map (fun e -> e.name) all

let find name =
  match List.find_opt (fun e -> String.equal e.name name) all with
  | Some e -> e
  | None ->
      invalid_arg
        (Printf.sprintf "unknown reclamation scheme %S (known: %s)" name
           (String.concat ", " names))

let caps name = (find name).caps
let mem name = List.exists (fun e -> String.equal e.name name) all

(* The four methods compared in the paper's evaluation, in its order. *)
let paper_methods = [ "nr"; "oa"; "oa-bit"; "oa-ver" ]
