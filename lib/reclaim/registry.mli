(** The single resolution point for reclamation-scheme names.

    A scheme name resolves here — and only here — to its constructor, its
    {!Scheme.caps} record and a one-line description.  No other component
    may match on scheme name strings: consumers branch on [caps] fields
    instead. *)

open Oamem_engine

type factory =
  Scheme.config ->
  alloc:Oamem_lrmalloc.Lrmalloc.t ->
  meta:Cell.heap ->
  nthreads:int ->
  Scheme.ops

type entry = {
  name : string;
  doc : string;  (** one line, for [--help] and the README scheme table *)
  caps : Scheme.caps;
      (** static default-config view; the constructed [ops.caps] is
          authoritative per instance (DEBRA's [neutralizes] follows its
          config switch) *)
  make : factory;
}

val all : entry list
(** Every registered scheme, in presentation order. *)

val names : string list

val find : string -> entry
(** Raises [Invalid_argument] for unknown names. *)

val caps : string -> Scheme.caps
(** [caps name = (find name).caps]. *)

val mem : string -> bool

val paper_methods : string list
(** [nr; oa; oa-bit; oa-ver] — the four methods of the paper's §5. *)
