(* Common interface of the memory-reclamation schemes.

   A lock-free data structure drives a scheme through the [ops] record:

   - [alloc]/[retire] replace malloc/free for nodes;
   - [begin_op]/[end_op] bracket every data-structure operation;
   - [read_check] is called after every optimistic load during a traversal;
     it raises {!Restart} when the scheme detects that reclamation may have
     invalidated what was just read (OA warning bit / version clock);
   - [traverse_protect] is called before *dereferencing* a traversal
     pointer; only hazard-pointer-style schemes do work here (publish the
     pointer, fence, re-verify via [verify], raising {!Restart} on failure);
   - [write_protect] + [validate] bracket a CAS: protect every node the CAS
     involves with hazard pointers, then validate once (for OA this is the
     single warning check + fence of §2.4);
   - [cancel] returns a node that was never published (e.g. a failed
     insert's fresh node) without a grace period;
   - [clear] drops the thread's hazard pointers at the end of an operation;
   - [flush] drains the thread's deferred frees at teardown.

   The data structure catches {!Restart} and restarts the whole operation
   from a location known to be valid (the paper's restart contract). *)

open Oamem_engine
module Trace = Oamem_obs.Trace
module Metrics = Oamem_obs.Metrics
module Profile = Oamem_obs.Profile

exception Restart

type stats = {
  mutable retired : int;
  mutable freed : int;
  mutable restarts : int;
  mutable warnings_fired : int;  (** warning-bit broadcasts / clock bumps *)
  mutable warnings_piggybacked : int;  (** OA-VER: reclaims without a bump *)
  mutable reclaim_phases : int;  (** limbo scans / recycling phases *)
  mutable neutralized : int;  (** ops recovered after a neutralization *)
  mutable seized : int;  (** limbo nodes seized from dead threads' bags *)
  mutable cond_fails : int;  (** failed conditional accesses (IMR) *)
}

let fresh_stats () =
  {
    retired = 0;
    freed = 0;
    restarts = 0;
    warnings_fired = 0;
    warnings_piggybacked = 0;
    reclaim_phases = 0;
    neutralized = 0;
    seized = 0;
    cond_fails = 0;
  }

(* Retired-but-unreclaimed nodes: the garbage a stalled thread can pin. *)
let unreclaimed s = s.retired - s.freed

(* Unreclaimed nodes no live thread can free.  A node seized from a dead
   thread's bag is still unreclaimed (seizure unpins, it does not free) but
   it now sits in a live thread's bag and obeys the normal grace period, so
   it must not be reported as pinned forever — the accounting bug this
   fixes counted a crashed thread's whole backlog as live garbage even for
   schemes that had already taken it over.  Clamped: once seized nodes are
   actually freed they leave [unreclaimed] while staying in [seized]. *)
let pinned s = max 0 (unreclaimed s - s.seized)

let reset_stats s =
  s.retired <- 0;
  s.freed <- 0;
  s.restarts <- 0;
  s.warnings_fired <- 0;
  s.warnings_piggybacked <- 0;
  s.reclaim_phases <- 0;
  s.neutralized <- 0;
  s.seized <- 0;
  s.cond_fails <- 0

(* The shared emit path: every scheme (and the data structures driving one)
   reports reclamation activity through a sink, which bumps the stats record
   and mirrors the event into the attached trace / histogram.  The trace
   defaults to [Trace.null] so the disabled path is a dead branch. *)
type sink = {
  stats : stats;
  mutable trace : Trace.t;
  mutable reclaim_hist : Metrics.histogram option;
      (** batch-size distribution of reclaim phases *)
}

let fresh_sink () =
  { stats = fresh_stats (); trace = Trace.null; reclaim_hist = None }

let emit sink ctx kind =
  if Trace.enabled sink.trace then
    Trace.emit sink.trace ~tid:(Engine.Mem.tid ctx) ~at:(Engine.Mem.now ctx) kind

let note_retired sink ctx addr =
  sink.stats.retired <- sink.stats.retired + 1;
  emit sink ctx (Trace.Retire { addr })

(* Frees outside a reclaim phase (immediate frees, teardown flushes). *)
let note_freed sink n = sink.stats.freed <- sink.stats.freed + n

let note_reclaim_phase sink ctx ~freed =
  let s = sink.stats in
  s.freed <- s.freed + freed;
  s.reclaim_phases <- s.reclaim_phases + 1;
  (match sink.reclaim_hist with
  | Some h -> Metrics.observe h freed
  | None -> ());
  emit sink ctx (Trace.Reclaim_phase { freed })

let note_warning sink ctx ~piggybacked =
  let s = sink.stats in
  if piggybacked then s.warnings_piggybacked <- s.warnings_piggybacked + 1
  else s.warnings_fired <- s.warnings_fired + 1;
  emit sink ctx (Trace.Warning { piggybacked })

let note_restart sink ctx =
  sink.stats.restarts <- sink.stats.restarts + 1;
  emit sink ctx Trace.Restart

let note_neutralized sink ctx =
  sink.stats.neutralized <- sink.stats.neutralized + 1;
  emit sink ctx Trace.Restart

(* Nodes taken over from a dead thread's limbo bag; they stay [retired]
   until actually freed, but are no longer pinned forever. *)
let note_seized sink n = sink.stats.seized <- sink.stats.seized + n

(* A conditional access failed: the thread's accessible flag was revoked
   and its operation restarts (IMR's analogue of a fired warning bit). *)
let note_cond_fail sink ctx =
  sink.stats.cond_fails <- sink.stats.cond_fails + 1;
  emit sink ctx Trace.Cond_fail

(* Declarative capabilities: every behavioural property a consumer used to
   infer from the scheme's name, stated once in the scheme's [ops].  The
   sanitizer's suppression policy, the fault-matrix legs and the README
   scheme table are all derived from this record — no name-string matching
   outside [Registry]. *)
type caps = {
  hazard_writes : bool;
      (** publishes hazard pointers: a store to a retired node is legal only
          under a covering hazard *)
  neutralizes : bool;
      (** posts neutralization signals; stores by a signal-pending thread
          are squashed-in-effect (DEBRA+) *)
  recycles_retired : bool;
      (** recycles retired nodes in place without freeing (OA-orig pools) *)
  leaks_by_design : bool;
      (** never reclaims: retired nodes outliving the run are expected *)
  conditional_access : bool;
      (** accesses run under a revocable accessible flag; stores by a
          revoked thread are squashed by the simulated hardware *)
  frees_immediately : bool;
      (** frees retired nodes immediately after revoking access — no limbo
          list, no grace period (IMR) *)
}

type ops = {
  name : string;
  caps : caps;
  alloc : Engine.ctx -> int -> int;
  retire : Engine.ctx -> int -> unit;
  cancel : Engine.ctx -> int -> unit;
  begin_op : Engine.ctx -> unit;
  end_op : Engine.ctx -> unit;
  read_check : Engine.ctx -> unit;
  traverse_protect :
    Engine.ctx -> slot:int -> addr:int -> verify:(unit -> bool) -> unit;
  write_protect : Engine.ctx -> slot:int -> int -> unit;
  validate : Engine.ctx -> unit;
  clear : Engine.ctx -> unit;
  flush : Engine.ctx -> unit;
  neutralizable : bool;
      (* the scheme posts neutralization signals, so data structures must
         run operations under an [Engine.Mem.checkpoint] with [recover] *)
  recover : Engine.ctx -> unit;
      (* per-thread recovery after a delivered neutralization; idempotent *)
  stats : stats;
  sink : sink;  (* stats == sink.stats; the sink adds the emit path *)
}

type config = {
  threshold : int;  (** limbo-list length triggering reclamation *)
  slots_per_thread : int;  (** hazard-pointer slots per thread *)
  pool_nodes : int;  (** OA-orig: fixed recycling-pool size *)
  node_words : int;  (** OA-orig: node size the pool is built for *)
  hazard_padded : bool;  (** cache-line pad hazard slots (ablation hook) *)
  neutralize : bool;  (** DEBRA: signal lagging threads (off = plain EBR
                          behaviour under faults) *)
}

let default_config =
  {
    threshold = 64;
    slots_per_thread = 3;
    pool_nodes = 4096;
    node_words = 2;
    hazard_padded = true;
    neutralize = true;
  }

(* --- observation wrapper (the sanitizer hook) ----------------------------- *)

(* An observer sees the scheme-level lifecycle events the allocator cannot:
   retirement, hazard publication, per-operation hazard clears, and the
   addresses the scheme hands out (which, for the original OA recycling
   pools, never pass through the allocator at all).  Scheme entry points
   that may free or recycle memory internally (alloc, retire, cancel,
   flush) are bracketed as internal sections, mirroring the allocator's
   [enter]/[leave] contract. *)
type observer = {
  obs_alloc : Engine.ctx -> addr:int -> words:int -> unit;
  obs_retire : Engine.ctx -> addr:int -> unit;
  obs_cancel : Engine.ctx -> addr:int -> unit;
  obs_hazard : Engine.ctx -> slot:int -> addr:int -> unit;
  obs_clear : Engine.ctx -> unit;
  obs_enter : Engine.ctx -> unit;  (** entering scheme-internal code *)
  obs_leave : Engine.ctx -> unit;  (** leaving scheme-internal code *)
}

let observe o (ops : ops) =
  let internal ctx f =
    o.obs_enter ctx;
    Fun.protect ~finally:(fun () -> o.obs_leave ctx) f
  in
  {
    ops with
    alloc =
      (fun ctx size ->
        let addr = internal ctx (fun () -> ops.alloc ctx size) in
        o.obs_alloc ctx ~addr ~words:size;
        addr);
    retire =
      (fun ctx addr ->
        o.obs_retire ctx ~addr;
        internal ctx (fun () -> ops.retire ctx addr));
    cancel =
      (fun ctx addr ->
        o.obs_cancel ctx ~addr;
        internal ctx (fun () -> ops.cancel ctx addr));
    traverse_protect =
      (fun ctx ~slot ~addr ~verify ->
        o.obs_hazard ctx ~slot ~addr;
        ops.traverse_protect ctx ~slot ~addr ~verify);
    write_protect =
      (fun ctx ~slot addr ->
        o.obs_hazard ctx ~slot ~addr;
        ops.write_protect ctx ~slot addr);
    clear =
      (fun ctx ->
        o.obs_clear ctx;
        ops.clear ctx);
    flush = (fun ctx -> internal ctx (fun () -> ops.flush ctx));
  }

(* --- profiling wrapper ----------------------------------------------------- *)

(* Wrap the scheme entry points that do reclamation work in profiler spans:
   [retire], which may trigger a whole scan-and-reclaim phase internally,
   and [flush], the teardown drain.  [System.create] applies this wrapper
   unconditionally — when profiling is off each call costs one load and a
   branch, and the limbo scan adds its own [Reclaim_scan] child span. *)
let profiled (ops : ops) =
  let spanned1 frame f ctx x =
    let p = Engine.Mem.profile ctx in
    if Profile.enabled p then begin
      let tid = (Engine.Mem.tid ctx) in
      Profile.enter p ~tid ~now:(Engine.Mem.now ctx) frame;
      match f ctx x with
      | r ->
          Profile.leave p ~tid ~now:(Engine.Mem.now ctx);
          r
      | exception e ->
          Profile.leave p ~tid ~now:(Engine.Mem.now ctx);
          raise e
    end
    else f ctx x
  in
  let spanned0 frame f ctx =
    let p = Engine.Mem.profile ctx in
    if Profile.enabled p then begin
      let tid = (Engine.Mem.tid ctx) in
      Profile.enter p ~tid ~now:(Engine.Mem.now ctx) frame;
      match f ctx with
      | () -> Profile.leave p ~tid ~now:(Engine.Mem.now ctx)
      | exception e ->
          Profile.leave p ~tid ~now:(Engine.Mem.now ctx);
          raise e
    end
    else f ctx
  in
  {
    ops with
    retire = spanned1 Profile.Reclaim_retire ops.retire;
    flush = spanned0 Profile.Reclaim_flush ops.flush;
  }

let pp_stats ppf s =
  Fmt.pf ppf
    "retired=%d freed=%d restarts=%d warnings=%d piggyback=%d phases=%d \
     neutralized=%d seized=%d cond_fails=%d"
    s.retired s.freed s.restarts s.warnings_fired s.warnings_piggybacked
    s.reclaim_phases s.neutralized s.seized s.cond_fails
