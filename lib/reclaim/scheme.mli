(** Common interface of the memory-reclamation schemes.

    A lock-free data structure drives a scheme through the {!ops} record;
    the scheme raises {!Restart} from its validation hooks when the
    operation must be retried from a safe location (the optimistic-access
    restart contract).  See the implementation files for the per-scheme
    semantics of each hook. *)

open Oamem_engine

exception Restart

type stats = {
  mutable retired : int;
  mutable freed : int;
  mutable restarts : int;  (** operation restarts (all causes) *)
  mutable warnings_fired : int;  (** warning-bit sets / clock bumps *)
  mutable warnings_piggybacked : int;  (** OA-VER reclaims without a bump *)
  mutable reclaim_phases : int;  (** limbo sweeps / recycling phases *)
}

val fresh_stats : unit -> stats
val reset_stats : stats -> unit
val pp_stats : Format.formatter -> stats -> unit

val unreclaimed : stats -> int
(** [retired - freed]: nodes sitting in limbo lists / retirement pools —
    the garbage a stalled or crashed thread can pin (robustness metric). *)

type ops = {
  name : string;
  alloc : Engine.ctx -> int -> int;  (** node allocation (palloc for OA) *)
  retire : Engine.ctx -> int -> unit;  (** unlinked node: free when safe *)
  cancel : Engine.ctx -> int -> unit;  (** return a never-published node *)
  begin_op : Engine.ctx -> unit;
  end_op : Engine.ctx -> unit;
  read_check : Engine.ctx -> unit;
      (** after every optimistic load; may raise {!Restart} *)
  traverse_protect :
    Engine.ctx -> slot:int -> addr:int -> verify:(unit -> bool) -> unit;
      (** before dereferencing a traversal pointer (hazard-pointer schemes
          publish + fence + re-verify; no-op for OA); may raise {!Restart} *)
  write_protect : Engine.ctx -> slot:int -> int -> unit;
      (** hazard-protect one node a CAS involves *)
  validate : Engine.ctx -> unit;
      (** one check covering all protected nodes (OA: fence + warning
          check, §2.4); may raise {!Restart} *)
  clear : Engine.ctx -> unit;  (** drop the thread's hazard pointers *)
  flush : Engine.ctx -> unit;  (** teardown: drain deferred frees *)
  stats : stats;
}

type config = {
  threshold : int;  (** limbo-list length triggering reclamation *)
  slots_per_thread : int;  (** hazard-pointer slots per thread *)
  pool_nodes : int;  (** OA-orig: fixed recycling-pool size *)
  node_words : int;  (** OA-orig: node size the pool is built for *)
  hazard_padded : bool;  (** cache-line pad hazard slots (ablation hook) *)
}

val default_config : config
