(** Common interface of the memory-reclamation schemes.

    A lock-free data structure drives a scheme through the {!ops} record;
    the scheme raises {!Restart} from its validation hooks when the
    operation must be retried from a safe location (the optimistic-access
    restart contract).  See the implementation files for the per-scheme
    semantics of each hook. *)

open Oamem_engine
module Trace = Oamem_obs.Trace
module Metrics = Oamem_obs.Metrics

exception Restart

type stats = {
  mutable retired : int;
  mutable freed : int;
  mutable restarts : int;  (** operation restarts (all causes) *)
  mutable warnings_fired : int;  (** warning-bit sets / clock bumps *)
  mutable warnings_piggybacked : int;  (** OA-VER reclaims without a bump *)
  mutable reclaim_phases : int;  (** limbo sweeps / recycling phases *)
  mutable neutralized : int;
      (** operations recovered after a delivered neutralization signal *)
  mutable seized : int;
      (** limbo nodes seized from dead (crashed/finished) threads' bags *)
  mutable cond_fails : int;
      (** failed conditional accesses: the thread found its accessible flag
          revoked and restarted (IMR) *)
}

val fresh_stats : unit -> stats
val reset_stats : stats -> unit
val pp_stats : Format.formatter -> stats -> unit

val unreclaimed : stats -> int
(** [retired - freed]: nodes sitting in limbo lists / retirement pools —
    the garbage a stalled or crashed thread can pin (robustness metric). *)

val pinned : stats -> int
(** Unreclaimed nodes no live thread can free: {!unreclaimed} minus the
    nodes already seized from dead threads' bags (those sit in a live
    thread's bag and obey the normal grace period).  Clamped at zero once
    seized nodes are actually freed. *)

(** {2 The shared emit path}

    Schemes and the data structures driving them report reclamation
    activity through a {!sink}: each [note_*] bumps the stats record and
    mirrors the event into the attached trace (and, for reclaim phases,
    the batch-size histogram).  With no trace attached the mirror is a
    dead branch, so the hot path stays a plain field increment. *)

type sink = {
  stats : stats;
  mutable trace : Trace.t;
  mutable reclaim_hist : Metrics.histogram option;
      (** batch-size distribution of reclaim phases *)
}

val fresh_sink : unit -> sink

val note_retired : sink -> Engine.ctx -> int -> unit
(** One node retired (argument: its address). *)

val note_freed : sink -> int -> unit
(** [n] nodes freed outside a reclaim phase (immediate frees, teardown). *)

val note_reclaim_phase : sink -> Engine.ctx -> freed:int -> unit
(** One limbo sweep / recycling phase that freed [freed] nodes. *)

val note_warning : sink -> Engine.ctx -> piggybacked:bool -> unit
val note_restart : sink -> Engine.ctx -> unit

val note_neutralized : sink -> Engine.ctx -> unit
(** One operation recovered at its checkpoint after a neutralization. *)

val note_seized : sink -> int -> unit
(** [n] limbo nodes seized from a dead thread's bag (they remain counted
    retired until actually freed — seizure unpins, it does not free). *)

val note_cond_fail : sink -> Engine.ctx -> unit
(** One failed conditional access (the thread's accessible flag was found
    revoked; its operation restarts).  Emits {!Trace.Cond_fail}. *)

(** Declarative capabilities, stated once per scheme in its {!ops}.  Every
    behavioural property a consumer would otherwise infer from the scheme's
    name lives here: the sanitizer derives its suppression policy from
    [caps], the fault-matrix picks its legs from [caps], and the README
    scheme table is generated from [caps].  No component outside
    [Registry] may resolve a scheme by name-string matching. *)
type caps = {
  hazard_writes : bool;
      (** publishes hazard pointers: a store to a retired node is legal
          only under a covering hazard *)
  neutralizes : bool;
      (** posts neutralization signals (DEBRA+); stores by a
          signal-pending thread are tolerated until delivery *)
  recycles_retired : bool;
      (** recycles retired nodes in place without freeing (OA-orig
          pools) — stores into retired nodes are the design *)
  leaks_by_design : bool;
      (** never reclaims: retired nodes outliving the run are expected *)
  conditional_access : bool;
      (** accesses run under a revocable accessible flag; stores by a
          revoked thread are squashed by the simulated hardware *)
  frees_immediately : bool;
      (** frees retired nodes immediately after revoking access — no
          limbo list, no grace period (IMR) *)
}

type ops = {
  name : string;
  caps : caps;  (** declared capabilities (see {!caps}) *)
  alloc : Engine.ctx -> int -> int;  (** node allocation (palloc for OA) *)
  retire : Engine.ctx -> int -> unit;  (** unlinked node: free when safe *)
  cancel : Engine.ctx -> int -> unit;  (** return a never-published node *)
  begin_op : Engine.ctx -> unit;
  end_op : Engine.ctx -> unit;
  read_check : Engine.ctx -> unit;
      (** after every optimistic load; may raise {!Restart} *)
  traverse_protect :
    Engine.ctx -> slot:int -> addr:int -> verify:(unit -> bool) -> unit;
      (** before dereferencing a traversal pointer (hazard-pointer schemes
          publish + fence + re-verify; no-op for OA); may raise {!Restart} *)
  write_protect : Engine.ctx -> slot:int -> int -> unit;
      (** hazard-protect one node a CAS involves *)
  validate : Engine.ctx -> unit;
      (** one check covering all protected nodes (OA: fence + warning
          check, §2.4); may raise {!Restart} *)
  clear : Engine.ctx -> unit;  (** drop the thread's hazard pointers *)
  flush : Engine.ctx -> unit;  (** teardown: drain deferred frees *)
  neutralizable : bool;
      (** the scheme may post neutralization signals; data structures must
          run each operation under {!Engine.Mem.checkpoint} with [recover]
          as (part of) the recovery closure *)
  recover : Engine.ctx -> unit;
      (** scheme-side recovery after a delivered neutralization (DEBRA:
          reset the thread's announced epoch); must be idempotent *)
  stats : stats;  (** == [sink.stats]; kept as a direct field for readers *)
  sink : sink;
}

type config = {
  threshold : int;  (** limbo-list length triggering reclamation *)
  slots_per_thread : int;  (** hazard-pointer slots per thread *)
  pool_nodes : int;  (** OA-orig: fixed recycling-pool size *)
  node_words : int;  (** OA-orig: node size the pool is built for *)
  hazard_padded : bool;  (** cache-line pad hazard slots (ablation hook) *)
  neutralize : bool;
      (** DEBRA: post neutralization signals to lagging threads (default
          true; false degrades it to plain EBR behaviour under faults) *)
}

val default_config : config

(** {2 Observation wrapper} (the sanitizer hook) *)

type observer = {
  obs_alloc : Engine.ctx -> addr:int -> words:int -> unit;
      (** the scheme handed out a node ([words] = requested size); for the
          original OA recycling pools this is the only allocation signal —
          recycled nodes never pass through the allocator *)
  obs_retire : Engine.ctx -> addr:int -> unit;
  obs_cancel : Engine.ctx -> addr:int -> unit;
  obs_hazard : Engine.ctx -> slot:int -> addr:int -> unit;
      (** hazard published via [traverse_protect] or [write_protect] *)
  obs_clear : Engine.ctx -> unit;  (** the thread dropped its hazards *)
  obs_enter : Engine.ctx -> unit;  (** entering scheme-internal code *)
  obs_leave : Engine.ctx -> unit;  (** leaving scheme-internal code *)
}

val observe : observer -> ops -> ops
(** Wrap an [ops] record so every lifecycle-relevant call is reported to
    the observer first.  [alloc]/[retire]/[cancel]/[flush] delegate inside
    an [obs_enter]/[obs_leave] bracket (they may free or recycle memory and
    write bookkeeping words into nodes); [stats]/[sink] are shared with the
    wrapped scheme. *)

val profiled : ops -> ops
(** Wrap [retire] and [flush] in profiler spans ([Reclaim_retire] /
    [Reclaim_flush], via {!Engine.Mem.profile}).  Applied unconditionally
    by [System.create]; when profiling is off each wrapped call costs one
    load and a branch. *)
