(* VBR-style tagged-pointer DWCAS probe (paper §3.2 footnote 2 and §6).

   Version-based reclamation performs double-width CAS operations on memory
   that may already have been reclaimed: the tagged pointer guarantees the
   DWCAS fails, but the operating system cannot know that and faults a frame
   in under the madvise remapping method — leaking physical memory for
   unallocated superblocks.  The shared-mapping method is immune.

   This module packages that exact experiment: given a released address
   range, hammer it with guaranteed-to-fail DWCAS operations and report how
   many frames the failed CASes dragged in (experiment E9). *)

open Oamem_vmem

type result = {
  attempts : int;
  succeeded : int;  (** must stay 0: the tags guarantee failure *)
  frames_before : int;
  frames_after : int;
  frames_leaked : int;
  cow_cas_faults : int;
}

(* A tag value no allocation ever writes, making failure certain. *)
let impossible_tag = 0x5f5f5f

let run vmem ctx ~addrs =
  let frames_before = Vmem.frames_live vmem in
  let faults_before = Vmem.cow_cas_faults vmem in
  let succeeded = ref 0 in
  List.iter
    (fun addr ->
      let addr = addr land lnot 1 in
      if
        Vmem.dwcas vmem ctx addr ~expect0:impossible_tag
          ~expect1:impossible_tag ~desired0:0 ~desired1:0
      then incr succeeded)
    addrs;
  let frames_after = Vmem.frames_live vmem in
  {
    attempts = List.length addrs;
    succeeded = !succeeded;
    frames_before;
    frames_after;
    frames_leaked = frames_after - frames_before;
    cow_cas_faults = Vmem.cow_cas_faults vmem - faults_before;
  }

let pp_result ppf r =
  Fmt.pf ppf "dwcas attempts=%d succeeded=%d frames %d->%d (leaked %d)"
    r.attempts r.succeeded r.frames_before r.frames_after r.frames_leaked
