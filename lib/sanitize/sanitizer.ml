(* Memory-lifecycle sanitizer (shadow state machine).

   Every block the system hands out is shadowed word by word in a side
   table; the layers report lifecycle transitions through the hooks below
   and every simulated word access is checked against the shadow state:

     absent ("unallocated")
        --alloc-->  Allocated
        --retire->  Retired      (unlinked, awaiting safe reclamation)
        --free--->  Freed        (returned to the allocator)
        --alloc-->  Allocated    (reuse; Retired->Allocated only for the
                                  original OA recycling pools)

   The optimistic-access premise is asymmetric: *loads* of retired or freed
   memory are exactly what the paper makes safe, so they are never flagged;
   *stores and RMWs* are flagged when the scheme's write contract requires
   a published hazard over the block and the accessing thread holds none.
   Accesses to unmapped pages are always flagged — the vmem hook runs
   before address translation, so the report (with lifecycle context)
   precedes the simulated Segfault.

   Allocator and scheme internals legitimately write bookkeeping words into
   blocks (free-list links, recycling-pool links, IBR era headers); their
   entry points bracket those sections via enter/leave callbacks and a
   per-thread depth counter mutes the store checks inside.  The unmapped
   check stays live even there: allocator code has no business touching an
   unmapped page either. *)

open Oamem_engine
module Vmem = Oamem_vmem.Vmem
module Heap = Oamem_lrmalloc.Heap
module Lrmalloc = Oamem_lrmalloc.Lrmalloc
module Scheme = Oamem_reclaim.Scheme
module Trace = Oamem_obs.Trace

(* What the scheme under test promises is no longer a sanitizer-owned table
   keyed by name strings: it is the scheme's own capability declaration
   ({!Scheme.caps}), resolved through the registry by the assembled system.
   The suppression logic maps capabilities to legal accesses:

   - [hazard_writes]: the OA family and HP publish hazards before every
     write to a node a CAS involves, so an uncovered store to a retired
     block is a violation; epoch/interval schemes rely on grace periods
     the sanitizer cannot refute access by access.
   - [neutralizes]: a poster may free a victim's reachable nodes the moment
     its signal posts, because the victim's next access is guaranteed to be
     discarded unexecuted — the access check honours that window.
   - [conditional_access]: a store by a thread whose accessible flag is
     revoked is squashed by the simulated hardware, so a store to a freed
     block while revoked is the expected restart path, not a violation; the
     same store while *not* revoked remains a real use-after-free. *)
type policy = Scheme.caps

type kind =
  | Double_retire of { addr : int; first_tid : int; first_cycle : int }
  | Retire_invalid of { addr : int; state : string }
  | Double_free of { addr : int }
  | Store_retired of {
      addr : int;
      base : int;
      retired_by : int;
      retired_at : int;
    }
  | Store_freed of { addr : int; base : int }
  | Access_unmapped of { addr : int; access : string }
  | Alloc_retired of { addr : int }
  | Retired_leak of {
      base : int;
      words : int;
      retired_by : int;
      retired_at : int;
    }

type violation = {
  kind : kind;
  tid : int;
  cycle : int;
  excerpt : Trace.event list;
}

exception Violation of violation

type state = Allocated | Retired | Freed

type block = {
  base : int;
  words : int;
  mutable st : state;
  mutable retired_by : int;
  mutable retired_at : int;
}

type t = {
  vmem : Vmem.t;
  policy : policy;
  blocks : (int, block) Hashtbl.t;  (* every word of a block -> its block *)
  hazards : (int, int) Hashtbl.t array;  (* per tid: slot -> published addr *)
  internal : int array;  (* per tid: allocator/scheme-internal nesting depth *)
  fail_fast : bool;
  max_reports : int;
  mutable reports : violation list;  (* newest first *)
  mutable nviolations : int;
  mutable trace : Trace.t;
}

let create ?(fail_fast = false) ?(max_reports = 64) ~vmem ~nthreads policy =
  {
    vmem;
    policy;
    blocks = Hashtbl.create 1024;
    hazards = Array.init nthreads (fun _ -> Hashtbl.create 8);
    internal = Array.make nthreads 0;
    fail_fast;
    max_reports;
    reports = [];
    nviolations = 0;
    trace = Trace.null;
  }

let set_trace t tr = t.trace <- tr

(* External contexts default to tid 0; clamp anything out of range so a
   stray tid cannot crash the checker it is supposed to feed. *)
let lane t tid = if tid < 0 || tid >= Array.length t.internal then 0 else tid

let excerpt_for t tid =
  if Trace.enabled t.trace && tid >= 0 && tid < Trace.nthreads t.trace then begin
    let evs = Trace.thread_events t.trace ~tid in
    let n = List.length evs in
    if n <= 8 then evs else List.filteri (fun i _ -> i >= n - 8) evs
  end
  else []

let record t v =
  t.nviolations <- t.nviolations + 1;
  if t.nviolations <= t.max_reports then t.reports <- v :: t.reports;
  if t.fail_fast then raise (Violation v)

let report t ctx kind =
  let tid = (Engine.Mem.tid ctx) in
  record t { kind; tid; cycle = Engine.Mem.now ctx; excerpt = excerpt_for t tid }

(* --- shadow map ----------------------------------------------------------- *)

let block_of t addr = Hashtbl.find_opt t.blocks addr

let track t ~base ~words st =
  let b = { base; words; st; retired_by = -1; retired_at = 0 } in
  for w = base to base + words - 1 do
    Hashtbl.replace t.blocks w b
  done;
  b

let forget_range t ~base ~words =
  for w = base to base + words - 1 do
    Hashtbl.remove t.blocks w
  done

let has_hazard t tid b =
  let tid = lane t tid in
  Hashtbl.fold
    (fun _slot addr covered ->
      covered || (addr >= b.base && addr < b.base + b.words))
    t.hazards.(tid) false

(* --- allocator hooks ------------------------------------------------------ *)

let on_block_alloc t ctx ~addr ~words ~persistent:_ =
  (match block_of t addr with
  | Some b when b.st = Retired && not t.policy.recycles_retired ->
      report t ctx (Alloc_retired { addr })
  | _ -> ());
  ignore (track t ~base:addr ~words Allocated)

let on_block_free t ctx ~addr ~words =
  match block_of t addr with
  | None ->
      (* allocated before the sanitizer attached; start tracking as freed *)
      ignore (track t ~base:addr ~words Freed)
  | Some b -> (
      match b.st with
      | Allocated | Retired -> b.st <- Freed
      | Freed -> report t ctx (Double_free { addr }))

let on_internal_enter t ctx =
  let tid = lane t (Engine.Mem.tid ctx) in
  t.internal.(tid) <- t.internal.(tid) + 1

let on_internal_leave t ctx =
  let tid = lane t (Engine.Mem.tid ctx) in
  t.internal.(tid) <- max 0 (t.internal.(tid) - 1)

let lifecycle t =
  {
    Lrmalloc.block_alloc =
      (fun ctx ~addr ~words ~persistent ->
        on_block_alloc t ctx ~addr ~words ~persistent);
    block_free = (fun ctx ~addr ~words -> on_block_free t ctx ~addr ~words);
    enter = (fun ctx -> on_internal_enter t ctx);
    leave = (fun ctx -> on_internal_leave t ctx);
  }

let range_hook t ~base ~npages ~event =
  let words = npages * Geometry.page_words (Vmem.geometry t.vmem) in
  match (event : Heap.range_event) with
  | Heap.Range_carved | Heap.Range_released ->
      (* a carved range starts over; a released range is unmapped, so any
         later access is caught by the unmapped check with a fresh slate *)
      forget_range t ~base ~words
  | Heap.Range_remapped ->
      (* persistent remap: frames dropped but the range stays readable —
         block states survive so writes into remapped freed blocks are
         still attributable *)
      ()

(* --- scheme hooks --------------------------------------------------------- *)

let on_scheme_alloc t ctx ~addr ~words =
  match block_of t addr with
  | None ->
      (* a node that never passed through the allocator (recycling pool
         built before the sanitizer attached) *)
      ignore (track t ~base:addr ~words Allocated)
  | Some b -> (
      match b.st with
      | Allocated -> ()  (* the allocator hook already transitioned it *)
      | Retired ->
          if not t.policy.recycles_retired then
            report t ctx (Alloc_retired { addr });
          b.st <- Allocated
      | Freed -> b.st <- Allocated)

let on_retire t ctx ~addr =
  match block_of t addr with
  | None -> report t ctx (Retire_invalid { addr; state = "unknown" })
  | Some b -> (
      match b.st with
      | Allocated ->
          b.st <- Retired;
          b.retired_by <- (Engine.Mem.tid ctx);
          b.retired_at <- Engine.Mem.now ctx
      | Retired ->
          report t ctx
            (Double_retire
               { addr; first_tid = b.retired_by; first_cycle = b.retired_at })
      | Freed -> report t ctx (Retire_invalid { addr; state = "freed" }))

let on_hazard t ctx ~slot ~addr =
  Hashtbl.replace t.hazards.(lane t (Engine.Mem.tid ctx)) slot addr

let on_clear t ctx = Hashtbl.reset t.hazards.(lane t (Engine.Mem.tid ctx))

let observer t =
  {
    Scheme.obs_alloc =
      (fun ctx ~addr ~words -> on_scheme_alloc t ctx ~addr ~words);
    obs_retire = (fun ctx ~addr -> on_retire t ctx ~addr);
    obs_cancel = (fun _ctx ~addr:_ -> ());
    (* cancelled nodes are either freed (visible via the allocator hook) or
       returned to a recycling pool still Allocated *)
    obs_hazard = (fun ctx ~slot ~addr -> on_hazard t ctx ~slot ~addr);
    obs_clear = (fun ctx -> on_clear t ctx);
    obs_enter = (fun ctx -> on_internal_enter t ctx);
    obs_leave = (fun ctx -> on_internal_leave t ctx);
  }

(* --- the access check ----------------------------------------------------- *)

let access_name = function
  | Engine.Load -> "load"
  | Engine.Store -> "store"
  | Engine.Rmw -> "rmw"

let on_access t ctx ~addr ~kind =
  let mapped = try Vmem.mapped t.vmem addr with _ -> false in
  if not mapped then
    report t ctx (Access_unmapped { addr; access = access_name kind })
  else if t.internal.(lane t (Engine.Mem.tid ctx)) = 0 then
    match kind with
    | Engine.Load -> ()  (* optimistic loads of freed memory are the point *)
    | Engine.Store | Engine.Rmw
      when t.policy.neutralizes
           && Engine.Mem.signal_pending ctx ~tid:(Engine.Mem.tid ctx) ->
        (* the access hook fires before the scheduler yield, but with a
           signal pending the yield delivers instead of executing: this
           store is about to be discarded unexecuted, and the poster was
           entitled to free the block the moment the post succeeded *)
        ()
    | Engine.Store | Engine.Rmw
      when t.policy.conditional_access
           && Engine.Mem.access_revoked ctx ~tid:(Engine.Mem.tid ctx) ->
        (* conditional access: the store commits squashed — the hardware
           drops the mutation — and the retiring thread revoked *before*
           freeing, so a revoked thread's store to a freed block is the
           expected restart path.  A store to freed memory while NOT
           revoked falls through and is still reported. *)
        ()
    | Engine.Store | Engine.Rmw -> (
        match block_of t addr with
        | None -> ()
        | Some b -> (
            match b.st with
            | Allocated -> ()
            | Retired ->
                if
                  t.policy.hazard_writes
                  && not (has_hazard t (Engine.Mem.tid ctx) b)
                then
                  report t ctx
                    (Store_retired
                       {
                         addr;
                         base = b.base;
                         retired_by = b.retired_by;
                         retired_at = b.retired_at;
                       })
            | Freed ->
                if not (has_hazard t (Engine.Mem.tid ctx) b) then
                  report t ctx (Store_freed { addr; base = b.base })))

(* --- reports -------------------------------------------------------------- *)

let violations t = List.rev t.reports
let violation_count t = t.nviolations

let check t =
  match List.rev t.reports with [] -> () | v :: _ -> raise (Violation v)

let check_quiescent t =
  if not t.policy.leaks_by_design then
    Hashtbl.iter
      (fun word b ->
        (* the per-word table holds one entry per word; report each block
           once, at its base *)
        if word = b.base && b.st = Retired then
          record t
            {
              kind =
                Retired_leak
                  {
                    base = b.base;
                    words = b.words;
                    retired_by = b.retired_by;
                    retired_at = b.retired_at;
                  };
              tid = b.retired_by;
              cycle = b.retired_at;
              excerpt = excerpt_for t b.retired_by;
            })
      t.blocks;
  check t

let reset t =
  Hashtbl.reset t.blocks;
  Array.iter Hashtbl.reset t.hazards;
  Array.fill t.internal 0 (Array.length t.internal) 0;
  t.reports <- [];
  t.nviolations <- 0

(* --- printing ------------------------------------------------------------- *)

let pp_kind ppf = function
  | Double_retire { addr; first_tid; first_cycle } ->
      Fmt.pf ppf "double retire of %#x (first retired by tid %d at cycle %d)"
        addr first_tid first_cycle
  | Retire_invalid { addr; state } ->
      Fmt.pf ppf "retire of %s block %#x" state addr
  | Double_free { addr } -> Fmt.pf ppf "double free of %#x" addr
  | Store_retired { addr; base; retired_by; retired_at } ->
      Fmt.pf ppf
        "store to retired block %#x (word %#x) without a hazard; retired by \
         tid %d at cycle %d"
        base addr retired_by retired_at
  | Store_freed { addr; base } ->
      Fmt.pf ppf "store to freed block %#x (word %#x) without a hazard" base
        addr
  | Access_unmapped { addr; access } ->
      Fmt.pf ppf "%s of unmapped address %#x" access addr
  | Alloc_retired { addr } ->
      Fmt.pf ppf "allocator handed out still-retired block %#x" addr
  | Retired_leak { base; words; retired_by; retired_at } ->
      Fmt.pf ppf
        "block %#x (%d words) retired by tid %d at cycle %d but never \
         reclaimed"
        base words retired_by retired_at

let pp_violation ppf v =
  Fmt.pf ppf "lifecycle violation: %a [tid %d, cycle %d]" pp_kind v.kind v.tid
    v.cycle;
  match v.excerpt with
  | [] -> ()
  | evs ->
      Fmt.pf ppf "; recent events:";
      List.iter (fun e -> Fmt.pf ppf "@ %a" Trace.pp_event e) evs

let () =
  Printexc.register_printer (function
    | Violation v -> Some (Fmt.str "%a" pp_violation v)
    | _ -> None)
