(** Memory-lifecycle sanitizer: a shadow state machine over every block the
    system hands out, checked on every simulated access.

    Each block moves through [Unallocated -> Allocated -> Retired -> Freed]
    (and back to [Allocated] on reuse); the sanitizer is fed by hooks in the
    virtual memory system (word accesses), the allocator (block hand-out and
    hand-back, superblock range transitions) and the reclamation scheme
    (retire / cancel / hazard publication), and reports *protocol*
    violations the simulated hardware cannot see:

    - double retire / retire of a non-live node;
    - double free;
    - a store or RMW to a retired or freed block by a thread holding no
      hazard over it (for schemes whose write contract requires one — the
      optimistic-access premise is that plain {e loads} of freed memory are
      always allowed, so loads are never flagged);
    - any access to an unmapped page (reported before {!Oamem_vmem.Vmem}
      raises [Segfault], with full lifecycle context);
    - blocks still retired-but-unreclaimed at quiescence (leak check).

    Violations carry the offending thread, its simulated cycle and a recent
    trace excerpt when an {!Oamem_obs.Trace} is attached. *)

open Oamem_engine

type policy = Oamem_reclaim.Scheme.caps
(** What the scheme under test promises — drives which accesses are
    violations.  This is the scheme's own capability declaration
    ({!Oamem_reclaim.Scheme.caps}); the assembled system resolves it through
    {!Oamem_reclaim.Registry} rather than matching on name strings:

    - [hazard_writes]: stores/RMWs to retired blocks require a published
      hazard covering the block (HP and the OA family); epoch-based schemes
      instead rely on grace periods, which cannot be refuted access by
      access;
    - [recycles_retired]: [Retired -> Allocated] is a legal transition (the
      original OA pools);
    - [leaks_by_design]: retired-but-unreclaimed blocks at quiescence are
      expected;
    - [neutralizes]: a store observed while the acting thread has a signal
      pending will be discarded unexecuted by the unwind, so it is not a
      violation even if the block was already freed;
    - [conditional_access]: a store by a thread whose accessible flag is
      revoked commits squashed, so a revoked thread's store to a freed
      block is the expected restart path (the same store while not revoked
      is still a violation);
    - [frees_immediately]: informational here (the revocation protocol
      above is what makes immediate frees legal). *)

type kind =
  | Double_retire of { addr : int; first_tid : int; first_cycle : int }
  | Retire_invalid of { addr : int; state : string }
      (** retire of a block that is not allocated (freed, unknown) *)
  | Double_free of { addr : int }
  | Store_retired of {
      addr : int;
      base : int;
      retired_by : int;
      retired_at : int;
    }  (** store/RMW to a retired block without a covering hazard *)
  | Store_freed of { addr : int; base : int }
      (** store/RMW to a freed block without a covering hazard *)
  | Access_unmapped of { addr : int; access : string }
  | Alloc_retired of { addr : int }
      (** the allocator handed out a block the scheme still holds retired *)
  | Retired_leak of {
      base : int;
      words : int;
      retired_by : int;
      retired_at : int;
    }  (** retired but never reclaimed, found by {!check_quiescent} *)

type violation = {
  kind : kind;
  tid : int;  (** offending thread *)
  cycle : int;  (** its simulated clock when the violation fired *)
  excerpt : Oamem_obs.Trace.event list;
      (** the thread's most recent trace events (empty when tracing off) *)
}

exception Violation of violation

type t

val create :
  ?fail_fast:bool ->
  ?max_reports:int ->
  vmem:Oamem_vmem.Vmem.t ->
  nthreads:int ->
  policy ->
  t
(** [fail_fast] (default false) raises {!Violation} at the offending access
    instead of recording; recording mode keeps the first [max_reports]
    (default 64) violations for {!check}.  *)

val set_trace : t -> Oamem_obs.Trace.t -> unit
(** Attach the system trace used for violation excerpts. *)

(** {2 Hook entry points}

    These are the functions the assembled system installs into the layers;
    they can also be called directly in tests to seed mutations. *)

val on_access : t -> Engine.ctx -> addr:int -> kind:Engine.access_kind -> unit
(** For {!Oamem_vmem.Vmem.set_access_hook}. *)

val lifecycle : t -> Oamem_lrmalloc.Lrmalloc.lifecycle
(** For {!Oamem_lrmalloc.Lrmalloc.set_lifecycle}. *)

val range_hook :
  t -> base:int -> npages:int -> event:Oamem_lrmalloc.Heap.range_event -> unit
(** For {!Oamem_lrmalloc.Heap.set_range_hook}: carving or unmapping a range
    resets its shadow state; remapped persistent ranges keep theirs (the
    range stays readable — that is the point). *)

val observer : t -> Oamem_reclaim.Scheme.observer
(** For {!Oamem_reclaim.Scheme.observe}. *)

(** {2 Reports} *)

val violations : t -> violation list
(** Recorded violations, oldest first (capped at [max_reports]). *)

val violation_count : t -> int
(** Total violations seen, including ones dropped past the report cap. *)

val check : t -> unit
(** Raise {!Violation} with the first recorded violation, if any. *)

val check_quiescent : t -> unit
(** At a quiescent point (all threads done, limbo drained): record a
    {!Retired_leak} for every block still retired-but-unreclaimed, unless
    the policy declares leaks by design; then {!check}. *)

val reset : t -> unit
(** Drop all shadow state and recorded violations. *)

val pp_violation : Format.formatter -> violation -> unit
