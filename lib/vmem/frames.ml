(* Physical frame pool of the simulated machine.

   A frame is one page worth of atomic words.  Frame 0 is the pinned,
   permanently zero-filled frame used to back copy-on-write mappings — it is
   what makes an address range "valid for reads" without consuming physical
   memory (§2.1 of the paper).

   Freed frames keep their backing array and are recycled, so the host-level
   allocation cost of the simulation stays bounded.  The pool is protected by
   a host mutex: frame allocation corresponds to kernel work whose cost is
   charged separately (fault/syscall events), so the mutex itself is not part
   of the simulated cost model. *)

open Oamem_engine

type t = {
  geom : Geometry.t;
  mutable store : int Atomic.t array array;  (* frame id -> words *)
  mutable free_ids : int list;
  mutable next_id : int;
  capacity : int;
  mutable quota : int option;  (* cap on live frames (memory pressure) *)
  mutable live : int;
  mutable peak : int;
  mutable freed_total : int;
  lock : Mutex.t;
}

let zero_frame = 0

let fresh_frame geom = Array.init (Geometry.page_words geom) (fun _ -> Atomic.make 0)

let create ?(capacity = 1 lsl 20) ?quota geom =
  let t =
    {
      geom;
      store = Array.make 64 [||];
      free_ids = [];
      next_id = 0;
      capacity;
      quota;
      live = 0;
      peak = 0;
      freed_total = 0;
      lock = Mutex.create ();
    }
  in
  (* Frame 0: the pinned zero frame. *)
  t.store.(0) <- fresh_frame geom;
  t.next_id <- 1;
  t.live <- 1;
  t.peak <- 1;
  t

let grow t needed =
  if needed >= Array.length t.store then begin
    let bigger = Array.make (max (needed + 1) (2 * Array.length t.store)) [||] in
    Array.blit t.store 0 bigger 0 (Array.length t.store);
    t.store <- bigger
  end

exception Out_of_frames

let set_quota t quota =
  Mutex.lock t.lock;
  t.quota <- quota;
  Mutex.unlock t.lock

let quota t = t.quota

(* Allocate a zero-filled frame. *)
let alloc t =
  Mutex.lock t.lock;
  (match t.quota with
  | Some q when t.live >= q ->
      Mutex.unlock t.lock;
      raise Out_of_frames
  | _ -> ());
  let id =
    match t.free_ids with
    | id :: rest ->
        t.free_ids <- rest;
        let words = t.store.(id) in
        Array.iter (fun w -> Atomic.set w 0) words;
        id
    | [] ->
        if t.next_id >= t.capacity then begin
          Mutex.unlock t.lock;
          raise Out_of_frames
        end;
        let id = t.next_id in
        t.next_id <- id + 1;
        grow t id;
        t.store.(id) <- fresh_frame t.geom;
        id
  in
  t.live <- t.live + 1;
  if t.live > t.peak then t.peak <- t.live;
  Mutex.unlock t.lock;
  id

let free t id =
  if id = zero_frame then invalid_arg "Frames.free: cannot free the zero frame";
  Mutex.lock t.lock;
  t.free_ids <- id :: t.free_ids;
  t.live <- t.live - 1;
  t.freed_total <- t.freed_total + 1;
  Mutex.unlock t.lock

let word t ~frame ~off =
  assert (off >= 0 && off < Geometry.page_words t.geom);
  t.store.(frame).(off)

let paddr t ~frame ~off = (frame lsl t.geom.Geometry.page_bits) lor off

let live t = t.live
let peak t = t.peak
let freed_total t = t.freed_total
let reset_freed_total t = t.freed_total <- 0

(* The zero frame must never be written: reads through copy-on-write
   mappings rely on it.  Test hook. *)
let zero_frame_intact t =
  Array.for_all (fun w -> Atomic.get w = 0) t.store.(zero_frame)
