(** Physical frame pool of the simulated machine.

    Frame 0 is the pinned zero frame backing copy-on-write mappings. *)

open Oamem_engine

type t

exception Out_of_frames
(** Raised by {!alloc} when the frame quota or the pool capacity is
    exhausted — simulated physical memory pressure.  Typed so callers
    (the allocator's recovery path, the fault-injection harness) can
    recover instead of aborting. *)

val zero_frame : int

val create : ?capacity:int -> ?quota:int -> Geometry.t -> t
(** [capacity] bounds the number of distinct frames (default 2^20);
    [quota] caps *live* frames (recycled frames count against it),
    modelling a machine under memory pressure. *)

val set_quota : t -> int option -> unit
(** Adjust the live-frame quota at runtime ([None] removes it). *)

val quota : t -> int option

val alloc : t -> int
(** A zero-filled frame.  Raises {!Out_of_frames} at the quota/capacity. *)

val free : t -> int -> unit
(** Recycle a frame.  The zero frame cannot be freed. *)

val word : t -> frame:int -> off:int -> int Atomic.t
(** Backing atomic of one word of a frame. *)

val paddr : t -> frame:int -> off:int -> int
(** Simulated physical address of a frame word (cache-simulator key). *)

val live : t -> int
(** Frames currently allocated, including the zero frame. *)

val peak : t -> int

val freed_total : t -> int
(** Frames returned to the pool since creation (or the last
    {!reset_freed_total}) — the "memory actually given back" counter. *)

val reset_freed_total : t -> unit

val zero_frame_intact : t -> bool
(** The zero frame must always read as zero (test hook). *)
