(* Per-address-space page table.

   Each virtual page maps to one of four states.  Entries are encoded into a
   single int so they can be updated atomically — fault-in races between
   simulated threads (or real domains) are resolved with a CAS on the entry.

   Encoding: 0 = Unmapped, 1 = Cow_zero, (f lsl 2) lor 2 = Frame f,
   (f lsl 2) lor 3 = Shared f. *)

type entry =
  | Unmapped
  | Cow_zero  (** mapped, backed by the pinned zero frame until written *)
  | Frame of int  (** private frame *)
  | Shared of int  (** shared mapping; writes hit the shared frame *)

let encode = function
  | Unmapped -> 0
  | Cow_zero -> 1
  | Frame f -> (f lsl 2) lor 2
  | Shared f -> (f lsl 2) lor 3

let decode = function
  | 0 -> Unmapped
  | 1 -> Cow_zero
  | w when w land 3 = 2 -> Frame (w lsr 2)
  | w -> Shared (w lsr 2)

(* [epoch] counts entry mutations.  Translation caches above (Vmem's
   per-thread last-translation cache, the memoized residency census) key
   their entries on it: any [set] or successful [cas] bumps it, so a cached
   translation is valid iff its fill epoch is still current. *)
type t = {
  entries : int Atomic.t array;
  max_pages : int;
  mutable epoch : int;
}

let create ~max_pages =
  if max_pages <= 0 then invalid_arg "Page_table.create";
  {
    entries = Array.init max_pages (fun _ -> Atomic.make (encode Unmapped));
    max_pages;
    epoch = 0;
  }

let max_pages t = t.max_pages
let epoch t = t.epoch

let in_range t vpage = vpage >= 0 && vpage < t.max_pages

let get t vpage =
  if not (in_range t vpage) then Unmapped
  else decode (Atomic.get t.entries.(vpage))

let set t vpage e =
  if not (in_range t vpage) then invalid_arg "Page_table.set: out of range";
  t.epoch <- t.epoch + 1;
  Atomic.set t.entries.(vpage) (encode e)

let cas t vpage ~expect ~desired =
  if not (in_range t vpage) then invalid_arg "Page_table.cas: out of range";
  t.epoch <- t.epoch + 1;
  Atomic.compare_and_set t.entries.(vpage) (encode expect) (encode desired)

(* Fold over a page range (metrics, invariants). *)
let fold_range t ~vpage ~npages ~init ~f =
  let acc = ref init in
  for p = vpage to vpage + npages - 1 do
    acc := f !acc p (get t p)
  done;
  !acc

let pp_entry ppf = function
  | Unmapped -> Fmt.string ppf "unmapped"
  | Cow_zero -> Fmt.string ppf "cow-zero"
  | Frame f -> Fmt.pf ppf "frame:%d" f
  | Shared f -> Fmt.pf ppf "shared:%d" f
