(** Per-address-space page table with atomically updatable entries. *)

type entry =
  | Unmapped
  | Cow_zero  (** mapped, backed by the pinned zero frame until written *)
  | Frame of int  (** private frame *)
  | Shared of int  (** shared mapping; writes hit the shared frame *)

type t

val create : max_pages:int -> t
val max_pages : t -> int

val epoch : t -> int
(** Mutation counter, bumped by every {!set} and every {!cas} attempt.
    Translation caches key entries on it: a cached translation is valid iff
    its fill epoch equals the current one. *)

val in_range : t -> int -> bool

val get : t -> int -> entry
(** Out-of-range pages read as [Unmapped]. *)

val set : t -> int -> entry -> unit
val cas : t -> int -> expect:entry -> desired:entry -> bool

val fold_range :
  t -> vpage:int -> npages:int -> init:'a -> f:('a -> int -> entry -> 'a) -> 'a

val pp_entry : Format.formatter -> entry -> unit
