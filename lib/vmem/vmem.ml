(* The simulated virtual-memory system (§2.1 and §3.2 of the paper).

   An address space maps virtual pages onto simulated physical frames with
   the same state machine modern kernels use for anonymous memory:

   - [map_anon] makes a range valid by pointing every page at the pinned
     copy-on-write zero frame; no physical memory is consumed.
   - The first *write* to such a page faults in a private zero-filled frame
     (charged as a minor fault).  Reads never fault: they read zeroes.
   - [madvise_dontneed] releases the private frames of a range and reverts it
     to the copy-on-write zero state — the paper's first remapping method.
   - [map_shared] points a range at a small shared region (default one
     frame), releasing private frames while keeping the range readable *and*
     writable into the shared frame — the paper's second remapping method.
     Chunked mappings model the syscalls-per-superblock trade-off of §3.2.
   - [unmap] invalidates the range; later access raises {!Segfault}, the
     simulated equivalent of the crash a real OA implementation would suffer
     if freed memory were returned to the operating system.

   A compare-and-swap on a copy-on-write page *faults a frame in even though
   the CAS then fails* — exactly the behaviour footnote 2 of the paper
   blames for memory leakage when VBR-style DWCAS hits reclaimed memory
   under the madvise method.

   Two resident-set metrics are exposed: [resident_pages] counts pages backed
   by a private frame (the truth), while [linux_rss_pages] also counts every
   page of a shared mapping (the "statistics go haywire" effect of §3.2). *)

open Oamem_engine
module Trace = Oamem_obs.Trace
module Profile = Oamem_obs.Profile

exception Segfault of int
exception Address_space_exhausted

type t = {
  geom : Geometry.t;
  frames : Frames.t;
  pt : Page_table.t;
  mutable reserve_next : int;  (* next unreserved vpage *)
  shared_region : int array;  (* frames backing the shared remap region *)
  mutable minor_faults : int;
  mutable cow_cas_faults : int;  (* faults triggered by CAS on a cow page *)
  mutable trace : Trace.t;
  mutable access_hook :
    (Engine.ctx -> addr:int -> kind:Engine.access_kind -> unit) option;
      (* observer for the costed word accesses (lifecycle sanitizer) *)
  (* Per-thread last-translation cache, keyed on the page-table epoch: a
     cached entry is valid iff no page-table entry has changed since it was
     filled, so mapping calls and fault-in races invalidate it for free.
     The epoch is compared on EVERY lookup, not once per scheduling slice:
     a thread holding an engine leader tenure runs many accesses without a
     context switch, and may itself unmap/remap a page mid-tenure — the
     per-access epoch check makes that self-remap (and any remap a drained
     peer performs while the holder is parked) visible on the very next
     access, with no tenure-boundary hook needed here.
     [tc_fw] is -1 for a copy-on-write page: reads are served from the
     cached zero frame but writes must take the fault-in slow path. *)
  mutable tc_enabled : bool;
  mutable tc_page : int array;  (* tid -> cached vpage, -1 empty *)
  mutable tc_fr : int array;  (* tid -> frame for reads *)
  mutable tc_fw : int array;  (* tid -> frame for writes, -1 = fault *)
  mutable tc_epoch : int array;  (* tid -> page-table epoch at fill *)
  mutable tc_hits : int;
  mutable tc_fills : int;
  (* Memoized residency census: the page-table scan behind the resident /
     rss / mapped / cow metrics, re-run only when the epoch moved. *)
  mutable census_epoch : int;  (* -1 = never scanned *)
  mutable census_resident : int;
  mutable census_rss : int;
  mutable census_mapped : int;
  mutable census_cow : int;
}

let create ?(max_pages = 1 lsl 20) ?frame_capacity ?frame_quota
    ?(shared_region_pages = 1) geom =
  if shared_region_pages <= 0 then invalid_arg "Vmem.create: shared region";
  let frames = Frames.create ?capacity:frame_capacity ?quota:frame_quota geom in
  let shared_region = Array.init shared_region_pages (fun _ -> Frames.alloc frames) in
  {
    geom;
    frames;
    pt = Page_table.create ~max_pages;
    (* Page 0 is never handed out so that address 0 can serve as a null
       pointer and stray small integers fault. *)
    reserve_next = 1;
    shared_region;
    minor_faults = 0;
    cow_cas_faults = 0;
    trace = Trace.null;
    access_hook = None;
    tc_enabled = true;
    tc_page = [||];
    tc_fr = [||];
    tc_fw = [||];
    tc_epoch = [||];
    tc_hits = 0;
    tc_fills = 0;
    census_epoch = -1;
    census_resident = 0;
    census_rss = 0;
    census_mapped = 0;
    census_cow = 0;
  }

let geometry t = t.geom
let page_table t = t.pt
let frames t = t.frames
let set_frame_quota t quota = Frames.set_quota t.frames quota
let shared_region_pages t = Array.length t.shared_region
let set_trace t tr = t.trace <- tr
let set_access_hook t h = t.access_hook <- h

(* Called on entry of every costed word access, before address translation,
   so the observer sees accesses to unmapped pages before {!Segfault} fires. *)
let observe_access t ctx addr kind =
  match t.access_hook with None -> () | Some f -> f ctx ~addr ~kind

let emit t ctx kind =
  if Trace.enabled t.trace then
    Trace.emit t.trace ~tid:(Engine.Mem.tid ctx) ~at:(Engine.Mem.now ctx) kind

(* --- translation cache --------------------------------------------------- *)

let set_translation_cache t on = t.tc_enabled <- on
let translation_cache t = t.tc_enabled
let tc_hits t = t.tc_hits
let tc_fills t = t.tc_fills

let flush_translation_cache t =
  Array.fill t.tc_page 0 (Array.length t.tc_page) (-1)

let tc_grow t tid =
  let old = Array.length t.tc_page in
  let len = max (tid + 1) (max 8 (2 * old)) in
  let extend a fillv =
    let b = Array.make len fillv in
    Array.blit a 0 b 0 old;
    b
  in
  t.tc_page <- extend t.tc_page (-1);
  t.tc_fr <- extend t.tc_fr (-1);
  t.tc_fw <- extend t.tc_fw (-1);
  t.tc_epoch <- extend t.tc_epoch (-1)

(* [epoch] must be read BEFORE the page-table entry was resolved: a fault-in
   yields inside the Minor_fault event, so other threads may remap the page
   before the fill happens — capturing the pre-resolution epoch makes any
   such fill (and any fresh fault-in, which itself bumps the epoch) stale on
   arrival rather than poisoning later accesses. *)
let[@inline] tc_fill t tid ~epoch ~vpage ~fr ~fw =
  if t.tc_enabled && tid >= 0 then begin
    if tid >= Array.length t.tc_page then tc_grow t tid;
    Array.unsafe_set t.tc_page tid vpage;
    Array.unsafe_set t.tc_fr tid fr;
    Array.unsafe_set t.tc_fw tid fw;
    Array.unsafe_set t.tc_epoch tid epoch;
    t.tc_fills <- t.tc_fills + 1
  end

(* Cached read (write) frame for [vpage], or -1 on a miss.  A hit means the
   page-table entry is unchanged since the fill, so the frame is still the
   page's backing frame and — for writes — the page needs no fault-in. *)
let[@inline] tc_lookup t tid vpage frames_of =
  if
    t.tc_enabled && tid >= 0
    && tid < Array.length t.tc_page
    && Array.unsafe_get t.tc_page tid = vpage
    && Array.unsafe_get t.tc_epoch tid = Page_table.epoch t.pt
  then Array.unsafe_get frames_of tid
  else -1

(* --- mapping calls ------------------------------------------------------- *)

let check_range t ~vpage ~npages =
  if npages <= 0 || vpage < 1 || vpage + npages > Page_table.max_pages t.pt
  then invalid_arg "Vmem: bad page range"

let reserve t ~npages =
  if npages <= 0 then invalid_arg "Vmem.reserve";
  let vpage = t.reserve_next in
  if vpage + npages > Page_table.max_pages t.pt then
    raise Address_space_exhausted;
  t.reserve_next <- vpage + npages;
  Geometry.addr_of_page t.geom vpage

(* Returns the number of frames given back (0 or 1) so mapping calls can
   report how much physical memory each syscall released. *)
let release_frame_of_entry t = function
  | Page_table.Frame f ->
      Frames.free t.frames f;
      1
  | Page_table.Unmapped | Page_table.Cow_zero | Page_table.Shared _ -> 0

let note_released t ctx released =
  if released > 0 then emit t ctx (Trace.Frames_released { count = released })

let map_anon t ctx ~vpage ~npages =
  check_range t ~vpage ~npages;
  Engine.Mem.event ctx Engine.Syscall;
  let released = ref 0 in
  for p = vpage to vpage + npages - 1 do
    released := !released + release_frame_of_entry t (Page_table.get t.pt p);
    Page_table.set t.pt p Page_table.Cow_zero;
    Engine.Mem.tlb_shootdown ctx p
  done;
  note_released t ctx !released

let unmap t ctx ~vpage ~npages =
  check_range t ~vpage ~npages;
  Engine.Mem.event ctx Engine.Syscall;
  let released = ref 0 in
  for p = vpage to vpage + npages - 1 do
    released := !released + release_frame_of_entry t (Page_table.get t.pt p);
    Page_table.set t.pt p Page_table.Unmapped;
    Engine.Mem.tlb_shootdown ctx p
  done;
  note_released t ctx !released

(* Run a remapping primitive under a profiler span.  The disabled path must
   stay allocation-free, hence the eta-expanded wrappers below rather than a
   closure-taking combinator. *)
let spanned frame f t ctx ~vpage ~npages =
  let p = Engine.Mem.profile ctx in
  if Profile.enabled p then begin
    let tid = (Engine.Mem.tid ctx) in
    Profile.enter p ~tid ~now:(Engine.Mem.now ctx) frame;
    match f t ctx ~vpage ~npages with
    | r ->
        Profile.leave p ~tid ~now:(Engine.Mem.now ctx);
        r
    | exception e ->
        Profile.leave p ~tid ~now:(Engine.Mem.now ctx);
        raise e
  end
  else f t ctx ~vpage ~npages

let madvise_dontneed_raw t ctx ~vpage ~npages =
  check_range t ~vpage ~npages;
  Engine.Mem.event ctx Engine.Syscall;
  let released = ref 0 in
  for p = vpage to vpage + npages - 1 do
    (match Page_table.get t.pt p with
    | Page_table.Unmapped -> raise (Segfault (Geometry.addr_of_page t.geom p))
    | e ->
        released := !released + release_frame_of_entry t e;
        Page_table.set t.pt p Page_table.Cow_zero);
    Engine.Mem.tlb_shootdown ctx p
  done;
  note_released t ctx !released

let madvise_dontneed t ctx ~vpage ~npages =
  spanned Profile.Vmem_remap madvise_dontneed_raw t ctx ~vpage ~npages

(* Map [npages] onto the shared region, page i to region page (i mod S).
   One syscall per chunk of S pages, as in §3.2. *)
let map_shared_raw t ctx ~vpage ~npages =
  check_range t ~vpage ~npages;
  let s = Array.length t.shared_region in
  let chunks = (npages + s - 1) / s in
  for _ = 1 to chunks do
    Engine.Mem.event ctx Engine.Syscall
  done;
  let released = ref 0 in
  for i = 0 to npages - 1 do
    let p = vpage + i in
    released := !released + release_frame_of_entry t (Page_table.get t.pt p);
    Page_table.set t.pt p (Page_table.Shared t.shared_region.(i mod s));
    Engine.Mem.tlb_shootdown ctx p
  done;
  note_released t ctx !released

let map_shared t ctx ~vpage ~npages =
  spanned Profile.Vmem_remap map_shared_raw t ctx ~vpage ~npages

(* mmap(MAP_FIXED | MAP_PRIVATE | MAP_ANON) over an existing range: one
   syscall regardless of size.  Used to take a superblock back from the
   shared region. *)
let remap_private_raw t ctx ~vpage ~npages =
  check_range t ~vpage ~npages;
  Engine.Mem.event ctx Engine.Syscall;
  let released = ref 0 in
  for p = vpage to vpage + npages - 1 do
    released := !released + release_frame_of_entry t (Page_table.get t.pt p);
    Page_table.set t.pt p Page_table.Cow_zero;
    Engine.Mem.tlb_shootdown ctx p
  done;
  note_released t ctx !released

let remap_private t ctx ~vpage ~npages =
  spanned Profile.Vmem_remap remap_private_raw t ctx ~vpage ~npages

(* --- word accesses ------------------------------------------------------- *)

let split t addr =
  (Geometry.page_of_addr t.geom addr, Geometry.offset_in_page t.geom addr)

(* Frame to read from; never faults. *)
let frame_for_read t addr vpage =
  match Page_table.get t.pt vpage with
  | Page_table.Unmapped -> raise (Segfault addr)
  | Page_table.Cow_zero -> Frames.zero_frame
  | Page_table.Frame f | Page_table.Shared f -> f

(* Frame to write to, faulting in a private frame on a cow page. *)
let rec frame_for_write t ctx addr vpage =
  match Page_table.get t.pt vpage with
  | Page_table.Unmapped -> raise (Segfault addr)
  | Page_table.Frame f | Page_table.Shared f -> f
  | Page_table.Cow_zero ->
      let f = Frames.alloc t.frames in
      if
        Page_table.cas t.pt vpage ~expect:Page_table.Cow_zero
          ~desired:(Page_table.Frame f)
      then begin
        t.minor_faults <- t.minor_faults + 1;
        let p = Engine.Mem.profile ctx in
        if Profile.enabled p then begin
          let tid = (Engine.Mem.tid ctx) in
          Profile.enter p ~tid ~now:(Engine.Mem.now ctx) Profile.Vmem_fault_in;
          Engine.Mem.event ctx Engine.Minor_fault;
          Profile.leave p ~tid ~now:(Engine.Mem.now ctx)
        end
        else Engine.Mem.event ctx Engine.Minor_fault;
        emit t ctx (Trace.Fault_in { vpage });
        f
      end
      else begin
        (* Lost a fault-in race; retry against the new entry. *)
        Frames.free t.frames f;
        frame_for_write t ctx addr vpage
      end

(* Resolved read frame for [vpage], consulting the translation cache.  On a
   miss the cache is refilled from the page-table entry; [fw] is the frame
   writes may use without a fault (-1 for copy-on-write pages). *)
let[@inline] read_frame t tid addr vpage =
  let f = tc_lookup t tid vpage t.tc_fr in
  if f >= 0 then begin
    t.tc_hits <- t.tc_hits + 1;
    f
  end
  else
    let epoch = Page_table.epoch t.pt in
    match Page_table.get t.pt vpage with
    | Page_table.Unmapped -> raise (Segfault addr)
    | Page_table.Cow_zero ->
        tc_fill t tid ~epoch ~vpage ~fr:Frames.zero_frame ~fw:(-1);
        Frames.zero_frame
    | Page_table.Frame f | Page_table.Shared f ->
        tc_fill t tid ~epoch ~vpage ~fr:f ~fw:f;
        f

(* Resolved write frame.  A cache hit with [fw >= 0] proves the entry was
   Frame/Shared at the current epoch: no fault-in, no cow-CAS accounting.
   Everything else goes through [frame_for_write] (which bumps the epoch if
   it faults a frame in) and refills the cache afterwards, when the entry is
   guaranteed private or shared. *)
let[@inline] write_frame t ctx tid addr vpage =
  let f = tc_lookup t tid vpage t.tc_fw in
  if f >= 0 then begin
    t.tc_hits <- t.tc_hits + 1;
    f
  end
  else begin
    let epoch = Page_table.epoch t.pt in
    let f = frame_for_write t ctx addr vpage in
    tc_fill t tid ~epoch ~vpage ~fr:f ~fw:f;
    f
  end

(* As [write_frame], but counts a cow-CAS fault first: the MMU cannot know
   the CAS will fail, so a cow page faults a frame in regardless (§3.2,
   footnote 2).  A cache hit implies the page is not cow, so the counter is
   only consulted on the slow path. *)
let[@inline] rmw_frame t ctx tid addr vpage =
  let f = tc_lookup t tid vpage t.tc_fw in
  if f >= 0 then begin
    t.tc_hits <- t.tc_hits + 1;
    f
  end
  else begin
    let epoch = Page_table.epoch t.pt in
    (match Page_table.get t.pt vpage with
    | Page_table.Cow_zero -> t.cow_cas_faults <- t.cow_cas_faults + 1
    | _ -> ());
    let f = frame_for_write t ctx addr vpage in
    tc_fill t tid ~epoch ~vpage ~fr:f ~fw:f;
    f
  end

let load t ctx addr =
  observe_access t ctx addr Engine.Load;
  let vpage = Geometry.page_of_addr t.geom addr in
  let off = Geometry.offset_in_page t.geom addr in
  let f = read_frame t (Engine.Mem.tid ctx) addr vpage in
  Engine.Mem.access ctx ~vpage ~paddr:(Frames.paddr t.frames ~frame:f ~off)
    ~kind:Engine.Load;
  Atomic.get (Frames.word t.frames ~frame:f ~off)

let store t ctx addr v =
  observe_access t ctx addr Engine.Store;
  let vpage = Geometry.page_of_addr t.geom addr in
  let off = Geometry.offset_in_page t.geom addr in
  let f = write_frame t ctx (Engine.Mem.tid ctx) addr vpage in
  Engine.Mem.access ctx ~vpage ~paddr:(Frames.paddr t.frames ~frame:f ~off)
    ~kind:Engine.Store;
  (* Squashed under a revoked accessible flag (IMR): charged but dropped. *)
  if not (Engine.Mem.squashed ctx) then
    Atomic.set (Frames.word t.frames ~frame:f ~off) v

let cas t ctx addr ~expect ~desired =
  observe_access t ctx addr Engine.Rmw;
  let vpage = Geometry.page_of_addr t.geom addr in
  let off = Geometry.offset_in_page t.geom addr in
  let f = rmw_frame t ctx (Engine.Mem.tid ctx) addr vpage in
  Engine.Mem.access ctx ~vpage ~paddr:(Frames.paddr t.frames ~frame:f ~off)
    ~kind:Engine.Rmw;
  if Engine.Mem.squashed ctx then begin
    Engine.Mem.note_cas_failure ctx ~addr;
    false
  end
  else begin
    let ok =
      Atomic.compare_and_set (Frames.word t.frames ~frame:f ~off) expect
        desired
    in
    if not ok then Engine.Mem.note_cas_failure ctx ~addr;
    ok
  end

let fetch_and_add t ctx addr d =
  observe_access t ctx addr Engine.Rmw;
  let vpage = Geometry.page_of_addr t.geom addr in
  let off = Geometry.offset_in_page t.geom addr in
  let f = write_frame t ctx (Engine.Mem.tid ctx) addr vpage in
  Engine.Mem.access ctx ~vpage ~paddr:(Frames.paddr t.frames ~frame:f ~off)
    ~kind:Engine.Rmw;
  if Engine.Mem.squashed ctx then Atomic.get (Frames.word t.frames ~frame:f ~off)
  else Atomic.fetch_and_add (Frames.word t.frames ~frame:f ~off) d

(* Double-width CAS over two adjacent words (tagged-pointer ABA prevention,
   as used by VBR).  [addr] must be even so both words share a cache line.
   Atomic only under the simulation engine (single runner domain); real
   domains must not use it concurrently. *)
let dwcas t ctx addr ~expect0 ~expect1 ~desired0 ~desired1 =
  if addr land 1 <> 0 then invalid_arg "Vmem.dwcas: addr must be even";
  observe_access t ctx addr Engine.Rmw;
  let vpage, off = split t addr in
  let f = rmw_frame t ctx (Engine.Mem.tid ctx) addr vpage in
  Engine.Mem.access ctx ~vpage ~paddr:(Frames.paddr t.frames ~frame:f ~off)
    ~kind:Engine.Rmw;
  let w0 = Frames.word t.frames ~frame:f ~off in
  let w1 = Frames.word t.frames ~frame:f ~off:(off + 1) in
  if
    (not (Engine.Mem.squashed ctx))
    && Atomic.get w0 = expect0
    && Atomic.get w1 = expect1
  then begin
    Atomic.set w0 desired0;
    Atomic.set w1 desired1;
    true
  end
  else begin
    Engine.Mem.note_cas_failure ctx ~addr;
    false
  end

(* --- uncosted accessors (test setup and oracles) ------------------------- *)

let peek t addr =
  let vpage, off = split t addr in
  let f = frame_for_read t addr vpage in
  Atomic.get (Frames.word t.frames ~frame:f ~off)

let poke t addr v =
  let vpage, off = split t addr in
  let f = frame_for_write t (Engine.external_ctx ()) addr vpage in
  Atomic.set (Frames.word t.frames ~frame:f ~off) v

let mapped t addr =
  let vpage, _ = split t addr in
  match Page_table.get t.pt vpage with
  | Page_table.Unmapped -> false
  | Page_table.Cow_zero | Page_table.Frame _ | Page_table.Shared _ -> true

(* --- metrics ------------------------------------------------------------- *)

(* The residency metrics all derive from one page-table scan, memoized on
   the page-table epoch: a metrics snapshot reading all four costs one scan,
   and none at all if no mapping changed since the last one. *)
let census t =
  if t.census_epoch <> Page_table.epoch t.pt then begin
    let resident = ref 0 and rss = ref 0 and mapped = ref 0 and cow = ref 0 in
    for p = 0 to Page_table.max_pages t.pt - 1 do
      match Page_table.get t.pt p with
      | Page_table.Unmapped -> ()
      | Page_table.Cow_zero ->
          incr mapped;
          incr cow
      | Page_table.Frame _ ->
          incr mapped;
          incr resident;
          incr rss
      | Page_table.Shared _ ->
          incr mapped;
          incr rss
    done;
    t.census_resident <- !resident;
    t.census_rss <- !rss;
    t.census_mapped <- !mapped;
    t.census_cow <- !cow;
    t.census_epoch <- Page_table.epoch t.pt
  end

let frames_live t = Frames.live t.frames
let frames_peak t = Frames.peak t.frames
let minor_faults t = t.minor_faults
let cow_cas_faults t = t.cow_cas_faults

let resident_pages t =
  census t;
  t.census_resident

let linux_rss_pages t =
  census t;
  t.census_rss

let mapped_pages t =
  census t;
  t.census_mapped

let cow_pages t =
  census t;
  t.census_cow

(* Measurement reset: zero the monotone fault/release counters and drop
   cached translations, so the measured phase starts cold and consistent.
   Peak frame usage is deliberately kept — it is an instantaneous high-water
   mark, not a per-phase rate. *)
let reset_counters (t : t) =
  t.minor_faults <- 0;
  t.cow_cas_faults <- 0;
  t.tc_hits <- 0;
  t.tc_fills <- 0;
  flush_translation_cache t;
  Frames.reset_freed_total t.frames

let pp_residency ppf t =
  Fmt.pf ppf
    "frames=%d peak=%d resident=%dp rss=%dp mapped=%dp cow=%dp faults=%d \
     cas-faults=%d"
    (frames_live t) (frames_peak t) (resident_pages t) (linux_rss_pages t)
    (mapped_pages t) (cow_pages t) (minor_faults t) (cow_cas_faults t)
