(** Simulated virtual-memory system (paper §2.1, §3.2).

    An address space of word-addressed pages over simulated physical frames,
    with the anonymous-memory state machine of a modern kernel: copy-on-write
    zero-frame backing, fault-in on first write, [madvise(MADV_DONTNEED)],
    shared-region remapping and plain unmapping.  A CAS on a copy-on-write
    page faults a frame in even though the CAS then fails (§3.2 footnote 2).

    Access to an unmapped page raises {!Segfault} — the simulated equivalent
    of the crash a real optimistic-access implementation would suffer if
    freed memory were actually returned to the operating system. *)

open Oamem_engine

exception Segfault of int

exception Address_space_exhausted
(** Raised by {!reserve} when the virtual address space is spent.  Typed
    (rather than a [Failure]) so exhaustion is recoverable and testable. *)

type t

val create :
  ?max_pages:int ->
  ?frame_capacity:int ->
  ?frame_quota:int ->
  ?shared_region_pages:int ->
  Geometry.t ->
  t
(** Page 0 is reserved so address 0 acts as a null pointer.  [frame_quota]
    caps live physical frames (see {!Frames.create}), simulating memory
    pressure: once reached, any fault-in raises {!Frames.Out_of_frames}. *)

val geometry : t -> Geometry.t
val page_table : t -> Page_table.t
val frames : t -> Frames.t

val set_frame_quota : t -> int option -> unit
(** Adjust the live-frame quota at runtime ([None] removes it). *)

val shared_region_pages : t -> int

val set_trace : t -> Oamem_obs.Trace.t -> unit
(** Attach an event trace: fault-ins and frame releases are emitted as
    [Fault_in] / [Frames_released] events (see {!Oamem_obs.Trace}). *)

val set_access_hook :
  t -> (Engine.ctx -> addr:int -> kind:Engine.access_kind -> unit) option -> unit
(** Install an observer called on entry of every costed word access
    ({!load}, {!store}, {!cas}, {!fetch_and_add}, {!dwcas}) — before
    address translation, so accesses to unmapped pages are observed before
    {!Segfault} fires.  [peek]/[poke] are not observed.  Used by the
    lifecycle sanitizer; [None] uninstalls. *)

(** {2 Mapping calls} — each charges syscall costs and shoots down TLBs. *)

val reserve : t -> npages:int -> int
(** Reserve a fresh virtual range; returns its base word address.  The range
    starts [Unmapped]. *)

val map_anon : t -> Engine.ctx -> vpage:int -> npages:int -> unit
val unmap : t -> Engine.ctx -> vpage:int -> npages:int -> unit
val madvise_dontneed : t -> Engine.ctx -> vpage:int -> npages:int -> unit

val map_shared : t -> Engine.ctx -> vpage:int -> npages:int -> unit
(** Map a range onto the shared region (page [i] to region page
    [i mod region_size]); one syscall per region-sized chunk. *)

val remap_private : t -> Engine.ctx -> vpage:int -> npages:int -> unit
(** [mmap(MAP_FIXED|MAP_PRIVATE|MAP_ANON)] over an existing range: one
    syscall, range reverts to copy-on-write zero. *)

(** {2 Word accesses} — each charges TLB + cache costs. *)

val load : t -> Engine.ctx -> int -> int
val store : t -> Engine.ctx -> int -> int -> unit
val cas : t -> Engine.ctx -> int -> expect:int -> desired:int -> bool
val fetch_and_add : t -> Engine.ctx -> int -> int -> int

val dwcas :
  t ->
  Engine.ctx ->
  int ->
  expect0:int ->
  expect1:int ->
  desired0:int ->
  desired1:int ->
  bool
(** Double-width CAS over two adjacent words ([addr] must be even).  Atomic
    only under the simulation engine. *)

(** {2 Uncosted accessors} (test setup and oracles) *)

val peek : t -> int -> int
val poke : t -> int -> int -> unit
val mapped : t -> int -> bool

(** {2 Translation cache}

    Each thread caches its last successful translation (vpage → backing
    frame), keyed on the page-table epoch: any mapping call, TLB shootdown
    path or fault-in bumps the epoch and invalidates every cached entry at
    once.  The cache only short-circuits the page-table walk on the host —
    TLB and cache-hierarchy cost accounting is unchanged, so simulated
    results are identical with the cache on or off. *)

val set_translation_cache : t -> bool -> unit
(** Enable/disable the per-thread translation cache (default enabled; the
    differential tests run both ways). *)

val translation_cache : t -> bool

val tc_hits : t -> int
(** Host-side accesses served from the translation cache since the last
    {!reset_counters} (observability/testing only — not a simulated stat). *)

val tc_fills : t -> int

val flush_translation_cache : t -> unit
(** Drop every cached translation (part of measurement reset). *)

(** {2 Metrics}

    Fine-grained accessors; the four residency counts derive from one
    page-table scan memoized on the page-table epoch, so reading all of them
    in a metrics snapshot costs at most one scan.  The registry in
    {!Oamem_core.System} exposes them as the [vmem.*] metrics. *)

val frames_live : t -> int
(** Physical frames allocated, incl. the zero and shared-region frames. *)

val frames_peak : t -> int

val resident_pages : t -> int
(** Pages backed by a private frame (the truth). *)

val linux_rss_pages : t -> int
(** Linux-style RSS: private pages + every page of a shared mapping. *)

val mapped_pages : t -> int
val cow_pages : t -> int

val minor_faults : t -> int

val cow_cas_faults : t -> int
(** Fault-ins triggered by CAS on a cow page. *)

val pp_residency : Format.formatter -> t -> unit
(** One-line dump of the metrics above (debugging). *)

val reset_counters : t -> unit
(** Zero the monotone counters ([minor_faults], [cow_cas_faults], frames
    released, translation-cache hit/fill counts) and flush the translation
    cache; peak frame usage is kept. *)
