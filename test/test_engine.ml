(* Tests for the simulated multicore engine: geometry, PRNG, cache levels,
   hierarchy coherence, TLB, the effect-based scheduler, and metadata cells. *)

open Oamem_engine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Geometry ------------------------------------------------------------ *)

let test_geometry () =
  let g = Geometry.default in
  check_int "line words" 8 (Geometry.line_words g);
  check_int "page words" 512 (Geometry.page_words g);
  check_int "lines per page" 64 (Geometry.lines_per_page g);
  check_int "block of addr" 2 (Geometry.block_of_addr g 17);
  check_int "page of addr" 1 (Geometry.page_of_addr g 513);
  check_int "offset in page" 1 (Geometry.offset_in_page g 513);
  check_int "addr of page" 1024 (Geometry.addr_of_page g 2)

(* --- Prng ---------------------------------------------------------------- *)

let test_prng_deterministic () =
  let a = Prng.create 7 and b = Prng.create 7 in
  for _ = 1 to 100 do
    check_int "same stream" (Prng.next a) (Prng.next b)
  done

let test_prng_seeds_differ () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.next a = Prng.next b then incr same
  done;
  check_bool "streams differ" true (!same < 4)

let test_prng_bounds () =
  let r = Prng.create 3 in
  for _ = 1 to 1000 do
    let x = Prng.int r 10 in
    check_bool "in range" true (x >= 0 && x < 10)
  done

let prng_uniform_prop =
  QCheck.Test.make ~name:"prng int covers range" ~count:50
    QCheck.(int_range 2 50)
    (fun bound ->
      let r = Prng.create bound in
      let seen = Array.make bound false in
      for _ = 1 to bound * 100 do
        seen.(Prng.int r bound) <- true
      done;
      Array.for_all Fun.id seen)

(* --- Cache --------------------------------------------------------------- *)

let test_cache_hit_miss () =
  let c = Cache.create ~name:"t" ~sets:4 ~ways:2 in
  check_bool "first access misses" false (Cache.access c 5);
  check_bool "second access hits" true (Cache.access c 5);
  check_bool "still present" true (Cache.present c 5)

let test_cache_lru_eviction () =
  let c = Cache.create ~name:"t" ~sets:1 ~ways:2 in
  ignore (Cache.access c 1);
  ignore (Cache.access c 2);
  ignore (Cache.access c 1);
  (* set is [1 (MRU); 2 (LRU)]; inserting 3 must evict 2 *)
  check_bool "3 misses" false (Cache.access c 3);
  check_bool "1 survives" true (Cache.present c 1);
  check_bool "2 evicted" false (Cache.present c 2)

let test_cache_sets_independent () =
  let c = Cache.create ~name:"t" ~sets:2 ~ways:1 in
  ignore (Cache.access c 0);
  ignore (Cache.access c 1);
  (* different sets: both present *)
  check_bool "even block" true (Cache.present c 0);
  check_bool "odd block" true (Cache.present c 1)

let test_cache_invalidate () =
  let c = Cache.create ~name:"t" ~sets:4 ~ways:2 in
  ignore (Cache.access c 9);
  Cache.invalidate c 9;
  check_bool "gone" false (Cache.present c 9);
  let (s : Cache.stats) = Cache.stats c in
  check_int "one invalidation" 1 s.invalidations

let test_cache_stats () =
  let c = Cache.create ~name:"t" ~sets:4 ~ways:2 in
  ignore (Cache.access c 1);
  ignore (Cache.access c 1);
  ignore (Cache.access c 2);
  let (s : Cache.stats) = Cache.stats c in
  check_int "hits" 1 s.hits;
  check_int "misses" 2 s.misses;
  Cache.reset_stats c;
  let (s : Cache.stats) = Cache.stats c in
  check_int "reset" 0 (s.hits + s.misses)

let test_cache_bad_create () =
  Alcotest.check_raises "sets must be pow2" (Invalid_argument
    "Cache.create: sets must be a power of two") (fun () ->
      ignore (Cache.create ~name:"t" ~sets:3 ~ways:1))

(* --- Hierarchy ----------------------------------------------------------- *)

let cost = Cost_model.opteron_6274

let test_hierarchy_miss_then_hit () =
  let h = Hierarchy.create ~cost ~nthreads:2 () in
  let c1 = Hierarchy.access h ~tid:0 ~kind:Hierarchy.Load 42 in
  check_int "cold load from dram" cost.dram c1;
  let c2 = Hierarchy.access h ~tid:0 ~kind:Hierarchy.Load 42 in
  check_int "then l1 hit" cost.l1_hit c2

let test_hierarchy_l2_shared_by_pair () =
  let h = Hierarchy.create ~cost ~nthreads:4 () in
  ignore (Hierarchy.access h ~tid:0 ~kind:Hierarchy.Load 42);
  (* tid 1 shares tid 0's L2 bank: should hit L2, not DRAM *)
  let c = Hierarchy.access h ~tid:1 ~kind:Hierarchy.Load 42 in
  check_int "pair sees l2" cost.l2_hit c;
  (* tid 2 is in another bank: hits the shared L3 *)
  let c = Hierarchy.access h ~tid:2 ~kind:Hierarchy.Load 42 in
  check_int "other bank sees l3" cost.l3_hit c

let test_hierarchy_write_invalidates_sharers () =
  let h = Hierarchy.create ~cost ~nthreads:4 () in
  ignore (Hierarchy.access h ~tid:0 ~kind:Hierarchy.Load 7);
  ignore (Hierarchy.access h ~tid:2 ~kind:Hierarchy.Load 7);
  check_int "two sharers" 0b101 (Hierarchy.sharers h 7);
  (* tid 2 writes: tid 0's copy must be invalidated and the write pays the
     invalidation broadcast *)
  let c = Hierarchy.access h ~tid:2 ~kind:Hierarchy.Store 7 in
  check_bool "write pays invalidation" true (c >= cost.invalidation);
  check_int "writer owns the line" 0b100 (Hierarchy.sharers h 7);
  (* tid 0 must now miss L1 *)
  let c = Hierarchy.access h ~tid:0 ~kind:Hierarchy.Load 7 in
  check_bool "reader misses after invalidation" true (c > cost.l1_hit)

let test_hierarchy_rmw_premium () =
  let h = Hierarchy.create ~cost ~nthreads:1 () in
  ignore (Hierarchy.access h ~tid:0 ~kind:Hierarchy.Load 3);
  let load = Hierarchy.access h ~tid:0 ~kind:Hierarchy.Load 3 in
  let rmw = Hierarchy.access h ~tid:0 ~kind:Hierarchy.Rmw 3 in
  check_int "rmw costs extra" (load + cost.rmw_extra) rmw

let test_hierarchy_local_write_is_cheap () =
  let h = Hierarchy.create ~cost ~nthreads:2 () in
  ignore (Hierarchy.access h ~tid:0 ~kind:Hierarchy.Store 11);
  let c = Hierarchy.access h ~tid:0 ~kind:Hierarchy.Store 11 in
  check_int "exclusive store hits l1, no broadcast" cost.l1_hit c

let test_hierarchy_stats () =
  let h = Hierarchy.create ~cost ~nthreads:2 () in
  ignore (Hierarchy.access h ~tid:0 ~kind:Hierarchy.Load 1);
  ignore (Hierarchy.access h ~tid:0 ~kind:Hierarchy.Load 1);
  let s = Hierarchy.stats h in
  check_int "l1 hits" 1 s.l1.Cache.hits;
  check_int "l1 misses" 1 s.l1.Cache.misses;
  Hierarchy.reset_stats h;
  let s = Hierarchy.stats h in
  check_int "reset" 0 s.l1.Cache.hits

(* --- Tlb ----------------------------------------------------------------- *)

let test_tlb_hit_miss () =
  let tlb = Tlb.create ~cost ~nthreads:2 () in
  check_int "cold miss" cost.tlb_miss (Tlb.access tlb ~tid:0 3);
  check_int "then hit" cost.tlb_hit (Tlb.access tlb ~tid:0 3);
  (* other thread has its own TLB *)
  check_int "private per thread" cost.tlb_miss (Tlb.access tlb ~tid:1 3)

let test_tlb_shootdown () =
  let tlb = Tlb.create ~cost ~nthreads:2 () in
  ignore (Tlb.access tlb ~tid:0 9);
  ignore (Tlb.access tlb ~tid:1 9);
  Tlb.shootdown tlb 9;
  check_int "miss after shootdown" cost.tlb_miss (Tlb.access tlb ~tid:0 9);
  let (s : Tlb.stats) = Tlb.stats tlb in
  check_int "one shootdown" 1 s.shootdowns

let test_tlb_conflict () =
  let tlb = Tlb.create ~slots:4 ~cost ~nthreads:1 () in
  ignore (Tlb.access tlb ~tid:0 1);
  ignore (Tlb.access tlb ~tid:0 5);
  (* direct-mapped: page 5 evicted page 1 (same slot 1 mod 4) *)
  check_int "conflict evicts" cost.tlb_miss (Tlb.access tlb ~tid:0 1)

(* --- Engine scheduler ---------------------------------------------------- *)

let test_engine_runs_threads () =
  let eng = Engine.create ~nthreads:3 () in
  let hits = Array.make 3 false in
  for tid = 0 to 2 do
    Engine.spawn eng ~tid (fun _ctx -> hits.(tid) <- true)
  done;
  Engine.run eng;
  Array.iteri (fun i h -> check_bool (Printf.sprintf "thread %d ran" i) true h) hits

let test_engine_min_clock_interleaves_fairly () =
  (* Two threads doing identical accesses must advance in lockstep: the
     trace of tids must alternate. *)
  let eng = Engine.create ~nthreads:2 () in
  let trace = ref [] in
  for tid = 0 to 1 do
    Engine.spawn eng ~tid (fun ctx ->
        for _ = 1 to 5 do
          Engine.Mem.access ctx ~vpage:(-1) ~paddr:(1000 * (tid + 1)) ~kind:Engine.Load;
          trace := (Engine.Mem.tid ctx) :: !trace
        done)
  done;
  Engine.run eng;
  let t = List.rev !trace in
  (* After both threads' first access, tids must alternate. *)
  check_int "all events" 10 (List.length t);
  let rec alternates = function
    | a :: b :: rest -> a <> b && alternates (b :: rest)
    | _ -> true
  in
  check_bool "alternating schedule" true (alternates t)

let test_engine_clock_accumulates () =
  let eng = Engine.create ~nthreads:1 () in
  Engine.spawn eng ~tid:0 (fun ctx ->
      Engine.Mem.access ctx ~vpage:(-1) ~paddr:8 ~kind:Engine.Load;
      Engine.Mem.access ctx ~vpage:(-1) ~paddr:8 ~kind:Engine.Load);
  Engine.run eng;
  (* cold dram + l1 hit *)
  check_int "clock" (cost.dram + cost.l1_hit) (Engine.clock eng ~tid:0)

let test_engine_charge_and_now () =
  let eng = Engine.create ~nthreads:1 () in
  Engine.spawn eng ~tid:0 (fun ctx ->
      Engine.Mem.charge ctx 123;
      check_int "now sees charge" 123 (Engine.Mem.now ctx));
  Engine.run eng;
  check_int "clock kept" 123 (Engine.clock eng ~tid:0)

let test_engine_fence_costs () =
  let eng = Engine.create ~nthreads:1 () in
  Engine.spawn eng ~tid:0 (fun ctx ->
      Engine.Mem.fence ctx Engine.Full;
      Engine.Mem.fence ctx Engine.Compiler);
  Engine.run eng;
  check_int "full fence only" cost.fence_full (Engine.clock eng ~tid:0);
  check_int "fences counted" 1 (Engine.stats eng).Engine.fences

let test_engine_slot_reuse_across_phases () =
  let eng = Engine.create ~nthreads:2 () in
  let order = ref [] in
  Engine.spawn eng ~tid:0 (fun _ -> order := `Prefill :: !order);
  Engine.run eng;
  Engine.reset_clocks eng;
  for tid = 0 to 1 do
    Engine.spawn eng ~tid (fun _ -> order := `Work :: !order)
  done;
  Engine.run eng;
  check_int "three runs" 3 (List.length !order)

let test_engine_spawn_busy_slot_rejected () =
  let eng = Engine.create ~nthreads:1 () in
  Engine.spawn eng ~tid:0 (fun _ -> ());
  Alcotest.check_raises "busy" (Invalid_argument "Engine.spawn: slot busy")
    (fun () -> Engine.spawn eng ~tid:0 (fun _ -> ()))

let test_engine_step_limit () =
  let eng = Engine.create ~nthreads:1 () in
  Engine.spawn eng ~tid:0 (fun ctx ->
      while true do
        Engine.Mem.pause ctx
      done);
  Alcotest.check_raises "limit" Engine.Step_limit_exceeded (fun () ->
      Engine.run ~max_steps:100 eng)

let test_engine_exception_propagates () =
  let eng = Engine.create ~nthreads:1 () in
  Engine.spawn eng ~tid:0 (fun ctx ->
      Engine.Mem.pause ctx;
      failwith "boom");
  Alcotest.check_raises "boom" (Failure "boom") (fun () -> Engine.run eng)

let test_engine_random_policy_deterministic () =
  let run_once seed =
    let eng = Engine.create ~policy:(Engine.Random_order seed) ~nthreads:3 () in
    let trace = ref [] in
    for tid = 0 to 2 do
      Engine.spawn eng ~tid (fun ctx ->
          for _ = 1 to 4 do
            Engine.Mem.pause ctx;
            trace := (Engine.Mem.tid ctx) :: !trace
          done)
    done;
    Engine.run eng;
    !trace
  in
  check_bool "same seed, same schedule" true (run_once 5 = run_once 5);
  check_bool "different seeds usually differ" true (run_once 5 <> run_once 6)

let test_engine_contention_costs_more () =
  (* Two threads hammering the same line with RMW must accumulate more
     cycles than two threads on private lines, because of coherence. *)
  let run shared =
    let eng = Engine.create ~nthreads:2 () in
    for tid = 0 to 1 do
      Engine.spawn eng ~tid (fun ctx ->
          let paddr = if shared then 64 else 64 * (tid + 1) * 8 in
          for _ = 1 to 50 do
            Engine.Mem.access ctx ~vpage:(-1) ~paddr ~kind:Engine.Rmw
          done)
    done;
    Engine.run eng;
    Engine.elapsed eng
  in
  check_bool "contended slower" true (run true > run false)

let test_engine_external_ctx_is_free () =
  let ctx = Engine.external_ctx () in
  Engine.Mem.access ctx ~vpage:0 ~paddr:0 ~kind:Engine.Store;
  Engine.Mem.fence ctx Engine.Full;
  Engine.Mem.charge ctx 10;
  check_int "no clock" 0 (Engine.Mem.now ctx)

let test_engine_elapsed_seconds () =
  let eng = Engine.create ~nthreads:1 () in
  Engine.spawn eng ~tid:0 (fun ctx -> Engine.Mem.charge ctx 2_200_000);
  Engine.run eng;
  Alcotest.(check (float 1e-9)) "1ms at 2.2GHz" 0.001 (Engine.elapsed_seconds eng)

(* --- Cell ---------------------------------------------------------------- *)

let test_cell_ops () =
  let h = Cell.heap Geometry.default in
  let ctx = Engine.external_ctx () in
  let c = Cell.make h 5 in
  check_int "get" 5 (Cell.get ctx c);
  Cell.set ctx c 9;
  check_int "set" 9 (Cell.peek c);
  check_bool "cas ok" true (Cell.cas ctx c ~expect:9 ~desired:10);
  check_bool "cas fail" false (Cell.cas ctx c ~expect:9 ~desired:11);
  check_int "after cas" 10 (Cell.get ctx c);
  check_int "xchg" 10 (Cell.exchange ctx c 1);
  check_int "faa" 1 (Cell.fetch_and_add ctx c 4);
  check_int "after faa" 5 (Cell.get ctx c)

let test_cell_padding_separates_lines () =
  let g = Geometry.default in
  let h = Cell.heap g in
  let a = Cell.make ~pad:true h 0 in
  let b = Cell.make ~pad:true h 0 in
  check_bool "different cache lines" true
    (Geometry.block_of_addr g (Cell.addr a)
    <> Geometry.block_of_addr g (Cell.addr b));
  let h2 = Cell.heap g in
  let c = Cell.make h2 0 in
  let d = Cell.make h2 0 in
  check_bool "unpadded cells share a line" true
    (Geometry.block_of_addr g (Cell.addr c)
    = Geometry.block_of_addr g (Cell.addr d))

let test_cell_costed_under_engine () =
  let eng = Engine.create ~nthreads:1 () in
  let h = Cell.heap (Engine.geometry eng) in
  let c = Cell.make h 0 in
  Engine.spawn eng ~tid:0 (fun ctx ->
      Cell.set ctx c 1;
      ignore (Cell.get ctx c));
  Engine.run eng;
  check_bool "cell accesses cost cycles" true (Engine.clock eng ~tid:0 > 0);
  check_int "two accesses" 2 (Engine.stats eng).Engine.accesses


(* --- additional property tests ------------------------------------------- *)

(* The cache behaves like a reference LRU model. *)
let cache_lru_model_prop =
  QCheck.Test.make ~name:"cache matches reference LRU model" ~count:60
    QCheck.(list (int_bound 31))
    (fun blocks ->
      let sets = 4 and ways = 2 in
      let c = Cache.create ~name:"m" ~sets ~ways in
      (* model: per set, a most-recently-used-first list of tags *)
      let model = Array.make sets [] in
      List.for_all
        (fun b ->
          let s = b land (sets - 1) in
          let hit_model = List.mem b model.(s) in
          let hit = Cache.access c b in
          (* update model: move/insert to front, truncate to ways *)
          let rest = List.filter (fun x -> x <> b) model.(s) in
          model.(s) <- b :: (if List.length rest >= ways then
                               List.filteri (fun i _ -> i < ways - 1) rest
                             else rest);
          hit = hit_model)
        blocks)

(* Min-clock scheduling: per-thread clocks never decrease and the engine
   drains every spawned thread. *)
let engine_progress_prop =
  QCheck.Test.make ~name:"engine drains all threads, clocks monotone"
    ~count:30
    QCheck.(pair (int_range 1 6) (int_range 1 40))
    (fun (nthreads, accesses) ->
      let eng = Engine.create ~nthreads () in
      let finished = Array.make nthreads false in
      let monotone = ref true in
      for tid = 0 to nthreads - 1 do
        Engine.spawn eng ~tid (fun ctx ->
            let last = ref 0 in
            for i = 1 to accesses do
              Engine.Mem.access ctx ~vpage:(-1) ~paddr:(i * (tid + 1))
                ~kind:Engine.Load;
              let now = Engine.Mem.now ctx in
              if now < !last then monotone := false;
              last := now
            done;
            finished.((Engine.Mem.tid ctx)) <- true)
      done;
      Engine.run eng;
      !monotone && Array.for_all Fun.id finished)

(* After any store by one thread, the directory never leaves another
   thread's stale copy readable as a hit without re-fetch: writing thread
   becomes the sole sharer. *)
let hierarchy_writer_owns_prop =
  QCheck.Test.make ~name:"writer becomes sole directory sharer" ~count:100
    QCheck.(pair (int_bound 3) (int_bound 63))
    (fun (writer, block) ->
      let h = Hierarchy.create ~cost ~nthreads:4 () in
      (* several readers touch the block first *)
      for tid = 0 to 3 do
        ignore (Hierarchy.access h ~tid ~kind:Hierarchy.Load block)
      done;
      ignore (Hierarchy.access h ~tid:writer ~kind:Hierarchy.Store block);
      Hierarchy.sharers h block = 1 lsl writer)

let suite =
  [
    ("geometry", `Quick, test_geometry);
    ("prng deterministic", `Quick, test_prng_deterministic);
    ("prng seeds differ", `Quick, test_prng_seeds_differ);
    ("prng bounds", `Quick, test_prng_bounds);
    ("cache hit/miss", `Quick, test_cache_hit_miss);
    ("cache lru", `Quick, test_cache_lru_eviction);
    ("cache sets", `Quick, test_cache_sets_independent);
    ("cache invalidate", `Quick, test_cache_invalidate);
    ("cache stats", `Quick, test_cache_stats);
    ("cache bad create", `Quick, test_cache_bad_create);
    ("hierarchy miss/hit", `Quick, test_hierarchy_miss_then_hit);
    ("hierarchy l2 pair", `Quick, test_hierarchy_l2_shared_by_pair);
    ("hierarchy invalidation", `Quick, test_hierarchy_write_invalidates_sharers);
    ("hierarchy rmw", `Quick, test_hierarchy_rmw_premium);
    ("hierarchy local write", `Quick, test_hierarchy_local_write_is_cheap);
    ("hierarchy stats", `Quick, test_hierarchy_stats);
    ("tlb hit/miss", `Quick, test_tlb_hit_miss);
    ("tlb shootdown", `Quick, test_tlb_shootdown);
    ("tlb conflict", `Quick, test_tlb_conflict);
    ("engine runs threads", `Quick, test_engine_runs_threads);
    ("engine min-clock fair", `Quick, test_engine_min_clock_interleaves_fairly);
    ("engine clock", `Quick, test_engine_clock_accumulates);
    ("engine charge/now", `Quick, test_engine_charge_and_now);
    ("engine fence", `Quick, test_engine_fence_costs);
    ("engine slot reuse", `Quick, test_engine_slot_reuse_across_phases);
    ("engine busy slot", `Quick, test_engine_spawn_busy_slot_rejected);
    ("engine step limit", `Quick, test_engine_step_limit);
    ("engine exception", `Quick, test_engine_exception_propagates);
    ("engine random policy", `Quick, test_engine_random_policy_deterministic);
    ("engine contention", `Quick, test_engine_contention_costs_more);
    ("engine external ctx", `Quick, test_engine_external_ctx_is_free);
    ("engine elapsed seconds", `Quick, test_engine_elapsed_seconds);
    ("cell ops", `Quick, test_cell_ops);
    ("cell padding", `Quick, test_cell_padding_separates_lines);
    ("cell costed", `Quick, test_cell_costed_under_engine);
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prng_uniform_prop;
        cache_lru_model_prop;
        engine_progress_prop;
        hierarchy_writer_owns_prop;
      ]

let () = Alcotest.run "engine" [ ("engine", suite) ]
