(* Tests for the bounded schedule explorer: it must find genuine races
   (non-atomic increments), stay silent on correct code (CAS increments,
   the lock-free list under every reclamation scheme), and respect its
   budgets. *)

open Oamem_engine
open Oamem_vmem
open Oamem_core
open Oamem_lockfree
open Oamem_reclaim

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let g = Geometry.default

(* Two threads doing a read-modify-write WITHOUT atomicity: the explorer
   must find a schedule where an update is lost. *)
let test_explorer_finds_lost_update () =
  let make () =
    let vm = Vmem.create ~max_pages:64 g in
    let addr = Vmem.reserve vm ~npages:1 in
    Vmem.map_anon vm (Engine.external_ctx ()) ~vpage:1 ~npages:1;
    {
      Explore.setup =
        (fun eng ->
          for tid = 0 to 1 do
            Engine.spawn eng ~tid (fun ctx ->
                let v = Vmem.load vm ctx addr in
                Vmem.store vm ctx addr (v + 1))
          done);
      verify =
        (fun () ->
          if Vmem.peek vm addr <> 2 then failwith "lost update");
    }
  in
  match Explore.check ~nthreads:2 ~depth:6 make with
  | exception Failure msg ->
      check_bool "found the race" true
        (String.length msg > 0
        && String.sub msg 0 13 = "Explore.check")
  | _ -> Alcotest.fail "explorer missed the lost update"

(* The same increment done with CAS retry loops is correct under every
   schedule. *)
let test_explorer_passes_cas_increment () =
  let make () =
    let vm = Vmem.create ~max_pages:64 g in
    let addr = Vmem.reserve vm ~npages:1 in
    Vmem.map_anon vm (Engine.external_ctx ()) ~vpage:1 ~npages:1;
    {
      Explore.setup =
        (fun eng ->
          for tid = 0 to 1 do
            Engine.spawn eng ~tid (fun ctx ->
                let rec incr_loop () =
                  let v = Vmem.load vm ctx addr in
                  if not (Vmem.cas vm ctx addr ~expect:v ~desired:(v + 1))
                  then begin
                    Engine.Mem.pause ctx;
                    incr_loop ()
                  end
                in
                incr_loop ())
          done);
      verify =
        (fun () ->
          if Vmem.peek vm addr <> 2 then failwith "increment lost");
    }
  in
  let stats = Explore.check ~nthreads:2 ~depth:8 make in
  check_int "no violations" 0 stats.Explore.violations;
  check_bool "explored many schedules" true (stats.Explore.runs > 10)

(* Concurrent insert+delete on one list under every scheme, with the
   lifecycle sanitizer on: the final state must reflect the two ops AND the
   sanitizer must stay silent through run, drain and quiescence. *)
let list_scenario scheme =
  let make () =
    let sys =
      System.create
        (System.Config.make ~nthreads:2 ~scheme ~sanitize:true
           ~max_pages:(1 lsl 14)
           ~scheme_cfg:
             {
               Scheme.default_config with
               Scheme.threshold = 1;
               slots_per_thread = Hm_list.slots_needed;
               pool_nodes = 64;
             }
           ())
    in
    let setup_ctx = Engine.external_ctx () in
    let l = System.list_set sys setup_ctx in
    Hm_list.build_sorted l setup_ctx [ 10; 20; 30 ];
    let r0 = ref false and r1 = ref false in
    {
      Explore.setup =
        (fun _eng ->
          (* the System owns its engine; spawn through it instead *)
          System.spawn sys ~tid:0 (fun ctx -> r0 := Hm_list.delete l ctx 20);
          System.spawn sys ~tid:1 (fun ctx -> r1 := Hm_list.insert l ctx 25);
          System.run sys);
      verify =
        (fun () ->
          if not (!r0 && !r1) then failwith "operation failed unexpectedly";
          if Hm_list.to_list l <> [ 10; 25; 30 ] then
            failwith
              (Printf.sprintf "bad final state: [%s]"
                 (String.concat ";"
                    (List.map string_of_int (Hm_list.to_list l))));
          System.check_sanitizer sys;
          System.drain sys;
          System.check_sanitizer_quiescent sys);
    }
  in
  make

(* The list scenario drives its own System engine (Min_clock), so explore
   depth only varies the outer no-op engine; instead we check the scenario
   across the randomized policy seeds here and keep the explorer for the
   vmem-level scenarios above. *)
let test_list_insert_delete_all_schemes () =
  List.iter
    (fun scheme ->
      let make = list_scenario scheme in
      let inst = make () in
      inst.Explore.setup (Engine.create ~nthreads:1 ());
      inst.Explore.verify ())
    Registry.names

let test_budget_exhausted () =
  let make () =
    let vm = Vmem.create ~max_pages:64 g in
    let addr = Vmem.reserve vm ~npages:1 in
    Vmem.map_anon vm (Engine.external_ctx ()) ~vpage:1 ~npages:1;
    {
      Explore.setup =
        (fun eng ->
          for tid = 0 to 2 do
            Engine.spawn eng ~tid (fun ctx ->
                for _ = 1 to 50 do
                  Vmem.store vm ctx addr 1
                done)
          done);
      verify = (fun () -> ());
    }
  in
  match Explore.check ~max_runs:50 ~nthreads:3 ~depth:40 make with
  | exception Explore.Budget_exhausted stats ->
      check_bool "budget respected" true (stats.Explore.runs > 45)
  | stats ->
      (* depth 40 over 3 threads cannot finish in 50 runs *)
      Alcotest.failf "expected budget exhaustion, finished in %d runs"
        stats.Explore.runs

let test_scripted_policy_replays () =
  (* the same prefix must yield the same schedule *)
  let run prefix =
    let scripted = { Engine.prefix; factors = []; steps = 0 } in
    let eng = Engine.create ~policy:(Engine.Scripted scripted) ~nthreads:2 () in
    let trace = ref [] in
    for tid = 0 to 1 do
      Engine.spawn eng ~tid (fun ctx ->
          for _ = 1 to 3 do
            Engine.Mem.pause ctx;
            trace := (Engine.Mem.tid ctx) :: !trace
          done)
    done;
    Engine.run eng;
    !trace
  in
  check_bool "deterministic replay" true
    (run [| 1; 0; 1 |] = run [| 1; 0; 1 |]);
  check_bool "different prefixes differ" true (run [| 1; 1; 1 |] <> run [| 0; 0; 0 |])

(* --- fuzzing and shrinking ------------------------------------------------- *)

(* Shrinking against a synthetic predicate: the shortest failing truncation
   is found and entries that don't matter are zeroed. *)
let test_shrink_minimises () =
  let fails p = Array.length p > 4 && p.(4) <> 0 in
  let shrunk = Explore.shrink fails [| 9; 8; 7; 6; 5; 4; 3; 2; 1 |] in
  check_bool "shrunk prefix still fails" true (fails shrunk);
  check_int "minimal length" 5 (Array.length shrunk);
  check_bool "irrelevant entries zeroed" true
    (shrunk.(0) = 0 && shrunk.(1) = 0 && shrunk.(2) = 0 && shrunk.(3) = 0)

(* The full fuzz -> shrink -> JSON -> replay loop on the seeded-bug
   scenario: the finding must survive a save/load round-trip and replay to
   the same error, deterministically. *)
module Fuzz = Oamem_harness.Fuzz

let test_fuzz_round_trip () =
  let sc = Fuzz.find_scenario "buggy-counter" in
  match Fuzz.fuzz_scenario ~max_runs:300 ~seed:1 sc ~scheme:"nr" with
  | None, stats ->
      Alcotest.failf "fuzzer missed the seeded bug in %d runs"
        stats.Explore.fuzz_runs
  | Some f, _ ->
      check_bool "shrunk prefix is small" true
        (Array.length f.Fuzz.prefix > 0 && Array.length f.Fuzz.prefix <= 32);
      let file = Filename.temp_file "oamem-fuzz" ".json" in
      Fun.protect
        ~finally:(fun () -> Sys.remove file)
        (fun () ->
          Fuzz.save file f;
          let f' = Fuzz.load file in
          check_bool "JSON round-trip preserves the finding" true (f' = f);
          match Fuzz.replay f' with
          | Some err ->
              check_bool "replay reproduces the same error" true
                (err = f.Fuzz.error)
          | None -> Alcotest.fail "repro file did not reproduce")

let suite =
  [
    ("explorer finds lost update", `Quick, test_explorer_finds_lost_update);
    ("explorer passes cas increment", `Quick, test_explorer_passes_cas_increment);
    ("list insert+delete all schemes", `Quick, test_list_insert_delete_all_schemes);
    ("budget exhausted", `Quick, test_budget_exhausted);
    ("scripted replay", `Quick, test_scripted_policy_replays);
    ("shrink minimises", `Quick, test_shrink_minimises);
    ("fuzz repro round-trip", `Quick, test_fuzz_round_trip);
  ]

let () = Alcotest.run "explore" [ ("explore", suite) ]
