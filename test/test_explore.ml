(* Tests for the bounded schedule explorer: it must find genuine races
   (non-atomic increments), stay silent on correct code (CAS increments,
   the lock-free list under every reclamation scheme), and respect its
   budgets. *)

open Oamem_engine
open Oamem_vmem
open Oamem_core
open Oamem_lockfree
open Oamem_reclaim

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let g = Geometry.default

(* Two threads doing a read-modify-write WITHOUT atomicity: the explorer
   must find a schedule where an update is lost. *)
let test_explorer_finds_lost_update () =
  let make () =
    let vm = Vmem.create ~max_pages:64 g in
    let addr = Vmem.reserve vm ~npages:1 in
    Vmem.map_anon vm (Engine.external_ctx ()) ~vpage:1 ~npages:1;
    {
      Explore.setup =
        (fun eng ->
          for tid = 0 to 1 do
            Engine.spawn eng ~tid (fun ctx ->
                let v = Vmem.load vm ctx addr in
                Vmem.store vm ctx addr (v + 1))
          done);
      verify =
        (fun () ->
          if Vmem.peek vm addr <> 2 then failwith "lost update");
    }
  in
  match Explore.check ~nthreads:2 ~depth:6 make with
  | exception Failure msg ->
      check_bool "found the race" true
        (String.length msg > 0
        && String.sub msg 0 13 = "Explore.check")
  | _ -> Alcotest.fail "explorer missed the lost update"

(* The same increment done with CAS retry loops is correct under every
   schedule. *)
let test_explorer_passes_cas_increment () =
  let make () =
    let vm = Vmem.create ~max_pages:64 g in
    let addr = Vmem.reserve vm ~npages:1 in
    Vmem.map_anon vm (Engine.external_ctx ()) ~vpage:1 ~npages:1;
    {
      Explore.setup =
        (fun eng ->
          for tid = 0 to 1 do
            Engine.spawn eng ~tid (fun ctx ->
                let rec incr_loop () =
                  let v = Vmem.load vm ctx addr in
                  if not (Vmem.cas vm ctx addr ~expect:v ~desired:(v + 1))
                  then begin
                    Engine.pause ctx;
                    incr_loop ()
                  end
                in
                incr_loop ())
          done);
      verify =
        (fun () ->
          if Vmem.peek vm addr <> 2 then failwith "increment lost");
    }
  in
  let stats = Explore.check ~nthreads:2 ~depth:8 make in
  check_int "no violations" 0 stats.Explore.violations;
  check_bool "explored many schedules" true (stats.Explore.runs > 10)

(* Concurrent insert+delete on one list under every scheme: the final state
   must reflect the two ops under every explored schedule. *)
let list_scenario scheme =
  let make () =
    let sys =
      System.create
        (System.Config.make ~nthreads:2 ~scheme
           ~max_pages:(1 lsl 14)
           ~scheme_cfg:
             {
               Scheme.default_config with
               Scheme.threshold = 1;
               slots_per_thread = Hm_list.slots_needed;
               pool_nodes = 64;
             }
           ())
    in
    let setup_ctx = Engine.external_ctx () in
    let l = System.list_set sys setup_ctx in
    Hm_list.build_sorted l setup_ctx [ 10; 20; 30 ];
    let r0 = ref false and r1 = ref false in
    {
      Explore.setup =
        (fun _eng ->
          (* the System owns its engine; spawn through it instead *)
          System.spawn sys ~tid:0 (fun ctx -> r0 := Hm_list.delete l ctx 20);
          System.spawn sys ~tid:1 (fun ctx -> r1 := Hm_list.insert l ctx 25);
          System.run sys);
      verify =
        (fun () ->
          if not (!r0 && !r1) then failwith "operation failed unexpectedly";
          if Hm_list.to_list l <> [ 10; 25; 30 ] then
            failwith
              (Printf.sprintf "bad final state: [%s]"
                 (String.concat ";"
                    (List.map string_of_int (Hm_list.to_list l)))));
    }
  in
  make

(* The list scenario drives its own System engine (Min_clock), so explore
   depth only varies the outer no-op engine; instead we check the scenario
   across the randomized policy seeds here and keep the explorer for the
   vmem-level scenarios above. *)
let test_list_insert_delete_all_schemes () =
  List.iter
    (fun scheme ->
      let make = list_scenario scheme in
      let inst = make () in
      inst.Explore.setup (Engine.create ~nthreads:1 ());
      inst.Explore.verify ())
    [ "nr"; "oa"; "oa-bit"; "oa-ver"; "hp"; "ebr"; "ibr" ]

let test_budget_exhausted () =
  let make () =
    let vm = Vmem.create ~max_pages:64 g in
    let addr = Vmem.reserve vm ~npages:1 in
    Vmem.map_anon vm (Engine.external_ctx ()) ~vpage:1 ~npages:1;
    {
      Explore.setup =
        (fun eng ->
          for tid = 0 to 2 do
            Engine.spawn eng ~tid (fun ctx ->
                for _ = 1 to 50 do
                  Vmem.store vm ctx addr 1
                done)
          done);
      verify = (fun () -> ());
    }
  in
  match Explore.check ~max_runs:50 ~nthreads:3 ~depth:40 make with
  | exception Explore.Budget_exhausted stats ->
      check_bool "budget respected" true (stats.Explore.runs > 45)
  | stats ->
      (* depth 40 over 3 threads cannot finish in 50 runs *)
      Alcotest.failf "expected budget exhaustion, finished in %d runs"
        stats.Explore.runs

let test_scripted_policy_replays () =
  (* the same prefix must yield the same schedule *)
  let run prefix =
    let scripted = { Engine.prefix; factors = []; steps = 0 } in
    let eng = Engine.create ~policy:(Engine.Scripted scripted) ~nthreads:2 () in
    let trace = ref [] in
    for tid = 0 to 1 do
      Engine.spawn eng ~tid (fun ctx ->
          for _ = 1 to 3 do
            Engine.pause ctx;
            trace := ctx.Engine.tid :: !trace
          done)
    done;
    Engine.run eng;
    !trace
  in
  check_bool "deterministic replay" true
    (run [| 1; 0; 1 |] = run [| 1; 0; 1 |]);
  check_bool "different prefixes differ" true (run [| 1; 1; 1 |] <> run [| 0; 0; 0 |])

let suite =
  [
    ("explorer finds lost update", `Quick, test_explorer_finds_lost_update);
    ("explorer passes cas increment", `Quick, test_explorer_passes_cas_increment);
    ("list insert+delete all schemes", `Quick, test_list_insert_delete_all_schemes);
    ("budget exhausted", `Quick, test_budget_exhausted);
    ("scripted replay", `Quick, test_scripted_policy_replays);
  ]

let () = Alcotest.run "explore" [ ("explore", suite) ]
