(* Tests for the fault-injection subsystem: fault plans honoured by the
   engine (stalls, crashes, jitter), typed resource exhaustion in the
   simulated VM, memory-pressure recovery in the allocator, and the
   stalled-thread robustness contrast between reclamation schemes. *)

open Oamem_engine
open Oamem_vmem
open Oamem_lrmalloc
open Oamem_faults
open Oamem_harness

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Fault_plan validation ------------------------------------------------ *)

let test_plan_validation () =
  let rejects f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  rejects (fun () ->
      Fault_plan.make [ Fault_plan.Stall { tid = -1; at_yield = 1; cycles = 10 } ]);
  rejects (fun () ->
      Fault_plan.make [ Fault_plan.Stall { tid = 0; at_yield = 0; cycles = 10 } ]);
  rejects (fun () ->
      Fault_plan.make [ Fault_plan.Stall { tid = 0; at_yield = 1; cycles = -1 } ]);
  rejects (fun () ->
      Fault_plan.make [ Fault_plan.Crash { tid = 0; at_yield = 0 } ]);
  rejects (fun () ->
      Fault_plan.make [ Fault_plan.Jitter { seed = 1; max_cycles = -2 } ]);
  check_bool "none is trivial" true (Fault_plan.is_trivial Fault_plan.none);
  check_bool "stall plan is not trivial" false
    (Fault_plan.is_trivial (Scenario.stall_one ~tid:0 ~at_yield:1 ~cycles:5))

(* --- Engine: stalls ------------------------------------------------------- *)

(* Two horizon-bounded counting threads; thread 0 stalls at its 5th yield
   for far longer than the horizon, so it wakes past the horizon and stops
   at 5 iterations while the healthy thread keeps going.  Only yield points
   (pause/access/fence/event) consult the plan — a bare [charge] does not. *)
let test_engine_stall () =
  let eng = Engine.create ~nthreads:2 () in
  Engine.set_fault_plan eng
    (Scenario.stall_one ~tid:0 ~at_yield:5 ~cycles:1_000_000);
  let ops = [| 0; 0 |] in
  for tid = 0 to 1 do
    Engine.spawn eng ~tid (fun ctx ->
        while Engine.Mem.now ctx < 50_000 do
          Engine.Mem.charge ctx 10;
          ops.(tid) <- ops.(tid) + 1;
          Engine.Mem.pause ctx
        done)
  done;
  Engine.run eng;
  check_int "stalled thread froze at the stall" 5 ops.(0);
  check_bool "healthy thread kept going" true (ops.(1) > 100);
  let fs = Engine.fault_stats eng ~tid:0 in
  check_int "one stall injected" 1 fs.Engine.stalls_injected;
  check_int "stall cycles accounted" 1_000_000 fs.Engine.stall_cycles;
  check_bool "stalled clock includes the stall" true
    (Engine.clock eng ~tid:0 >= 1_000_000);
  check_bool "healthy clock bounded by the horizon" true
    (Engine.clock eng ~tid:1 < 60_000)

(* --- Engine: crashes ------------------------------------------------------ *)

let test_engine_crash () =
  let eng = Engine.create ~nthreads:2 () in
  Engine.set_fault_plan eng (Scenario.crash_one ~tid:0 ~at_yield:3);
  let ops = [| 0; 0 |] in
  for tid = 0 to 1 do
    Engine.spawn eng ~tid (fun ctx ->
        for _ = 1 to 50 do
          Engine.Mem.charge ctx 10;
          ops.(tid) <- ops.(tid) + 1;
          Engine.Mem.pause ctx
        done)
  done;
  Engine.run eng;
  check_int "crashed thread stopped mid-run" 3 ops.(0);
  check_int "healthy thread completed" 50 ops.(1);
  check_bool "slot reported crashed" true (Engine.crashed eng ~tid:0);
  check_bool "healthy slot not crashed" false (Engine.crashed eng ~tid:1);
  (match Engine.spawn eng ~tid:0 (fun _ -> ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "spawn on a crashed slot must be rejected");
  (* a second run with the survivor only must still terminate *)
  Engine.spawn eng ~tid:1 (fun ctx -> Engine.Mem.charge ctx 1);
  Engine.run eng

(* --- Engine: jitter determinism ------------------------------------------- *)

let jitter_run plan =
  let eng = Engine.create ~nthreads:2 () in
  Engine.set_fault_plan eng plan;
  for tid = 0 to 1 do
    Engine.spawn eng ~tid (fun ctx ->
        for _ = 1 to 200 do
          Engine.Mem.charge ctx 7;
          Engine.Mem.pause ctx
        done)
  done;
  Engine.run eng;
  (Engine.clock eng ~tid:0, Engine.clock eng ~tid:1)

let test_jitter_deterministic () =
  let a = jitter_run (Scenario.jittery ~seed:11 ~max_cycles:50)
  and b = jitter_run (Scenario.jittery ~seed:11 ~max_cycles:50)
  and c = jitter_run (Scenario.jittery ~seed:12 ~max_cycles:50)
  and quiet = jitter_run Fault_plan.none in
  check_bool "same seed, same clocks" true (a = b);
  check_bool "jitter actually delayed" true
    (fst a > fst quiet && snd a > snd quiet);
  check_bool "different seed, different clocks" true (a <> c)

(* --- Vmem: typed exhaustion ----------------------------------------------- *)

let test_address_space_exhausted () =
  let vm = Vmem.create ~max_pages:8 Geometry.default in
  ignore (Vmem.reserve vm ~npages:4);
  match Vmem.reserve vm ~npages:16 with
  | exception Vmem.Address_space_exhausted -> ()
  | _ -> Alcotest.fail "expected Address_space_exhausted"

let test_frame_quota () =
  let vm = Vmem.create ~max_pages:64 ~frame_quota:2 Geometry.default in
  let ctx = Engine.external_ctx () in
  let base = Vmem.reserve vm ~npages:8 in
  let pw = Geometry.page_words (Vmem.geometry vm) in
  Vmem.map_anon vm ctx ~vpage:(base / pw) ~npages:8;
  (* faulting in more distinct pages than the quota must raise *)
  match
    for p = 0 to 7 do
      Vmem.store vm ctx (base + (p * pw)) 1
    done
  with
  | exception Frames.Out_of_frames ->
      check_int "live frames capped at quota" 2 (Frames.live (Vmem.frames vm))
  | _ -> Alcotest.fail "expected Out_of_frames"

(* --- Lrmalloc: memory-pressure recovery ----------------------------------- *)

let test_pressure_recovers_madvise () =
  let r = Pressure.run ~remap:Config.Madvise () in
  check_bool "no OOM" false r.Pressure.oom;
  check_int "all rounds completed" 3 r.Pressure.rounds_completed;
  check_bool "recovered at least once" true (r.Pressure.recoveries >= 1);
  check_int "no failed recoveries" 0 r.Pressure.failures;
  check_bool "released persistent superblocks" true (r.Pressure.sb_remapped >= 1)

let test_pressure_recovers_shared () =
  let r = Pressure.run ~remap:Config.Shared_map () in
  check_bool "no OOM" false r.Pressure.oom;
  check_int "all rounds completed" 3 r.Pressure.rounds_completed

let test_pressure_keep_resident_ooms () =
  let r = Pressure.run ~remap:Config.Keep_resident () in
  check_bool "typed OOM" true r.Pressure.oom;
  check_bool "some rounds still completed" true (r.Pressure.rounds_completed >= 1);
  check_bool "recovery was attempted" true (r.Pressure.recoveries >= 1);
  check_bool "final recovery failed" true (r.Pressure.failures >= 1)

(* --- Neutralization: the checkpoint/signal primitive ----------------------- *)

(* A victim looping over cheap same-line loads is the permanent fused-path
   leader; delivery happens only at scheduler yields, so the signal landing
   at all proves a pending signal forces the slow path. *)
let test_neutralize_forces_slow_path () =
  let eng = Engine.create ~nthreads:2 () in
  let outcome = ref None in
  let restarted = ref false in
  let iters = ref 0 in
  Engine.spawn eng ~tid:0 (fun ctx ->
      Engine.Mem.checkpoint ctx
        ~recover:(fun () -> restarted := true)
        (fun () ->
          if not !restarted then
            for i = 1 to 10_000 do
              incr iters;
              Engine.Mem.access ctx ~vpage:(-1) ~paddr:(i land 7)
                ~kind:Engine.Load
            done));
  Engine.spawn eng ~tid:1 (fun ctx ->
      Engine.Mem.charge ctx 50;
      Engine.Mem.pause ctx;
      outcome := Some (Engine.Mem.neutralize ctx ~victim:0));
  Engine.run eng;
  check_bool "posted" true (!outcome = Some Engine.Posted);
  check_bool "recovery closure ran" true !restarted;
  check_bool "victim interrupted mid-run" true (!iters < 10_000);
  check_int "one signal delivered" 1
    (Engine.fault_stats eng ~tid:0).Engine.neutralized

let test_neutralize_dead_is_noop () =
  let eng = Engine.create ~nthreads:2 () in
  Engine.set_fault_plan eng (Scenario.crash_one ~tid:0 ~at_yield:3);
  let outcome = ref None in
  Engine.spawn eng ~tid:0 (fun ctx ->
      for _ = 1 to 50 do
        Engine.Mem.pause ctx
      done);
  Engine.spawn eng ~tid:1 (fun ctx ->
      (* outlive the victim's crash before posting *)
      for _ = 1 to 20 do
        Engine.Mem.pause ctx
      done;
      outcome := Some (Engine.Mem.neutralize ctx ~victim:0));
  Engine.run eng;
  check_bool "victim crashed" true (Engine.crashed eng ~tid:0);
  check_bool "typed Dead outcome" true (!outcome = Some Engine.Dead);
  check_int "nothing delivered" 0
    (Engine.fault_stats eng ~tid:0).Engine.neutralized

let test_nested_checkpoint_rejected () =
  let eng = Engine.create ~nthreads:1 () in
  let rejected = ref false in
  Engine.spawn eng ~tid:0 (fun ctx ->
      Engine.Mem.checkpoint ctx ~recover:ignore (fun () ->
          match Engine.Mem.checkpoint ctx ~recover:ignore (fun () -> ()) with
          | () -> ()
          | exception Invalid_argument _ -> rejected := true));
  Engine.run eng;
  check_bool "nested registration rejected" true !rejected

(* Full-system determinism of the delivery machinery: two same-seed
   DEBRA-under-stall runs must produce byte-identical event traces,
   neutralization events included. *)
let debra_trace_run () =
  let module System = Oamem_core.System in
  let module Scheme = Oamem_reclaim.Scheme in
  let sys =
    System.create
      (System.Config.make ~nthreads:2 ~scheme:"debra" ~trace:true
         ~trace_capacity:(1 lsl 14)
         ~max_pages:(1 lsl 16)
         ~scheme_cfg:
           {
             Scheme.threshold = 2;
             slots_per_thread = Oamem_lockfree.Hm_list.slots_needed;
             pool_nodes = 4096;
             node_words = Oamem_lockfree.Node.kv_words;
             hazard_padded = true;
             neutralize = true;
           }
         ())
  in
  System.set_fault_plan sys
    (Scenario.stall_one ~tid:0 ~at_yield:40 ~cycles:500_000);
  for tid = 0 to 1 do
    System.spawn sys ~tid (fun ctx ->
        let h = System.hash_set sys ctx ~expected_size:64 in
        let module MH = Oamem_lockfree.Michael_hash in
        for i = 1 to 60 do
          let k = (tid * 1000) + i in
          ignore (MH.insert h ctx k);
          ignore (MH.delete h ctx k)
        done)
  done;
  System.run sys;
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  let posts = ref 0 and delivered = ref 0 in
  List.iter
    (fun ev ->
      (match ev.Oamem_obs.Trace.kind with
      | Oamem_obs.Trace.Neutralize_post _ -> incr posts
      | Oamem_obs.Trace.Neutralized -> incr delivered
      | _ -> ());
      Format.fprintf ppf "%a@." Oamem_obs.Trace.pp_event ev)
    (Oamem_obs.Trace.events (System.trace sys));
  Format.pp_print_flush ppf ();
  (Buffer.contents buf, !posts, !delivered)

let test_neutralize_trace_deterministic () =
  let ta, pa, da = debra_trace_run () in
  let tb, pb, db = debra_trace_run () in
  check_bool "neutralization posted" true (pa >= 1);
  check_bool "neutralization delivered" true (da >= 1);
  check_int "same posts" pa pb;
  check_int "same deliveries" da db;
  check_bool "byte-identical traces" true (String.equal ta tb)

(* --- Robustness: stalled-thread garbage growth ---------------------------- *)

(* Shorter horizon than the experiment default to keep the suite quick; the
   contrast is already unambiguous at 200K cycles. *)
let robustness_spec scheme =
  {
    Robustness.default_spec with
    Robustness.scheme;
    horizon_cycles = 200_000;
    sample_interval = 5_000;
  }

let test_robustness_ebr_unbounded () =
  let spec = robustness_spec "ebr" in
  let stalled, control = Robustness.run_pair spec in
  let bound = Robustness.robust_bound spec in
  check_int "stall injected" 1 stalled.Robustness.stalls_injected;
  check_int "control has no stall" 0 control.Robustness.stalls_injected;
  check_bool "EBR garbage exceeds the robust bound" true
    (stalled.Robustness.final_unreclaimed > bound);
  check_bool "EBR garbage far above healthy control" true
    (stalled.Robustness.final_unreclaimed
    >= 2 * max 1 control.Robustness.final_unreclaimed);
  (* the stalled run's garbage keeps growing: the last sample is the max *)
  check_int "garbage never shrinks after the stall"
    stalled.Robustness.max_unreclaimed stalled.Robustness.final_unreclaimed

let test_robustness_bounded scheme () =
  let spec = robustness_spec scheme in
  let stalled, _ = Robustness.run_pair spec in
  let bound = Robustness.robust_bound spec in
  check_int "stall injected" 1 stalled.Robustness.stalls_injected;
  check_bool
    (Printf.sprintf "%s stays under the bound (%d <= %d)" scheme
       stalled.Robustness.max_unreclaimed bound)
    true
    (stalled.Robustness.max_unreclaimed <= bound);
  check_bool "healthy workers made progress" true (stalled.Robustness.ops > 1_000)

let test_robustness_deterministic () =
  let spec = robustness_spec "ebr" in
  let a = Robustness.run spec and b = Robustness.run spec in
  check_bool "identical samples under a fixed seed" true
    (a.Robustness.samples = b.Robustness.samples);
  check_int "identical ops" a.Robustness.ops b.Robustness.ops

(* --- DEBRA: bounded under faults, EBR-like without neutralization ---------- *)

let test_debra_stall_bounded () =
  let spec = robustness_spec "debra" in
  let stalled, control = Robustness.run_pair spec in
  check_int "stall injected" 1 stalled.Robustness.stalls_injected;
  check_bool "neutralization fired" true (stalled.Robustness.neutralized >= 1);
  check_bool "garbage bounded within 2x of healthy control" true
    (stalled.Robustness.final_unreclaimed
    <= 2 * max 1 control.Robustness.final_unreclaimed);
  check_bool "healthy workers made progress" true
    (stalled.Robustness.ops > 1_000)

let test_debra_no_neutralize_degenerates () =
  let spec =
    { (robustness_spec "debra") with Robustness.neutralize = false }
  in
  let stalled, control = Robustness.run_pair spec in
  check_int "no signal delivered" 0 stalled.Robustness.neutralized;
  check_bool "garbage grows with healthy work, like EBR" true
    (stalled.Robustness.final_unreclaimed
    >= 2 * max 1 control.Robustness.final_unreclaimed);
  check_bool "exceeds the robust bound" true
    (stalled.Robustness.final_unreclaimed > Robustness.robust_bound spec)

let test_debra_crash_seizes () =
  let spec =
    { (robustness_spec "debra") with Robustness.fault = Robustness.Crash }
  in
  let r = Robustness.run spec in
  check_bool "thread fail-stopped" true r.Robustness.crashed;
  check_bool "dead thread's limbo bags were seized" true
    (r.Robustness.seized > 0);
  check_bool "pinned garbage stays under the robust bound" true
    (r.Robustness.final_pinned <= Robustness.robust_bound spec)

let suite =
  [
    ("plan validation", `Quick, test_plan_validation);
    ("engine stall", `Quick, test_engine_stall);
    ("engine crash", `Quick, test_engine_crash);
    ("jitter deterministic", `Quick, test_jitter_deterministic);
    ("address space exhausted", `Quick, test_address_space_exhausted);
    ("frame quota", `Quick, test_frame_quota);
    ("pressure recovers (madvise)", `Quick, test_pressure_recovers_madvise);
    ("pressure recovers (shared)", `Quick, test_pressure_recovers_shared);
    ("pressure OOM (keep resident)", `Quick, test_pressure_keep_resident_ooms);
    ("neutralize: forces slow path", `Quick, test_neutralize_forces_slow_path);
    ("neutralize: dead victim no-op", `Quick, test_neutralize_dead_is_noop);
    ("neutralize: nested checkpoint", `Quick, test_nested_checkpoint_rejected);
    ( "neutralize: trace deterministic",
      `Slow,
      test_neutralize_trace_deterministic );
    ("robustness: ebr unbounded", `Slow, test_robustness_ebr_unbounded);
    ("robustness: hp bounded", `Slow, test_robustness_bounded "hp");
    ("robustness: oa-bit bounded", `Slow, test_robustness_bounded "oa-bit");
    ("robustness: oa-ver bounded", `Slow, test_robustness_bounded "oa-ver");
    ("robustness: deterministic", `Slow, test_robustness_deterministic);
    ("debra: stall bounded", `Slow, test_debra_stall_bounded);
    ("debra: no-neut degenerates", `Slow, test_debra_no_neutralize_degenerates);
    ("debra: crash seizes", `Slow, test_debra_crash_seizes);
  ]

let () = Alcotest.run "faults" [ ("faults", suite) ]
