(* Tests for the fused memory-access fast path.

   The inline path (Engine.Mem charging a request without a context switch)
   and the vmem translation cache are pure host-side optimisations: they
   must be observationally invisible to the simulation.  These tests pin
   that down — identical clocks/stats at the engine level, identical
   metrics at the runner level — plus the measurement-reset regressions
   (scheduler heap rebuilt, translation cache flushed) and the
   allocation-free steady-state hit path. *)

open Oamem_engine
open Oamem_vmem
open Oamem_core
open Oamem_reclaim
open Oamem_lockfree
open Oamem_harness
module Json = Oamem_obs.Json
module Export = Oamem_obs.Export
module Metrics = Oamem_obs.Metrics

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- engine-level differential -------------------------------------------- *)

(* Deterministic mixed traffic: each thread walks its own PRNG and issues
   loads, stores, RMWs, fences and pauses over a small block range. *)
let drive ~fused ~nthreads =
  let eng = Engine.create ~nthreads () in
  Engine.set_fused eng fused;
  for tid = 0 to nthreads - 1 do
    Engine.spawn eng ~tid (fun ctx ->
        let prng = Engine.Mem.prng ctx in
        for _ = 1 to 400 do
          let r = Prng.next prng in
          let paddr = r land 1023 in
          (match r land 7 with
          | 0 | 1 | 2 | 3 ->
              Engine.Mem.access ctx ~vpage:(paddr lsr 9) ~paddr
                ~kind:Engine.Load
          | 4 | 5 ->
              Engine.Mem.access ctx ~vpage:(paddr lsr 9) ~paddr
                ~kind:Engine.Store
          | 6 ->
              Engine.Mem.access ctx ~vpage:(paddr lsr 9) ~paddr
                ~kind:Engine.Rmw
          | _ -> Engine.Mem.fence ctx Engine.Full);
          if r land 31 = 0 then Engine.Mem.pause ctx
        done)
  done;
  Engine.run eng;
  eng

let test_engine_differential () =
  let nthreads = 4 in
  let fused = drive ~fused:true ~nthreads in
  let slow = drive ~fused:false ~nthreads in
  for tid = 0 to nthreads - 1 do
    check_int
      (Printf.sprintf "clock of thread %d" tid)
      (Engine.clock slow ~tid) (Engine.clock fused ~tid)
  done;
  check_int "steps" (Engine.steps slow) (Engine.steps fused);
  let sf = Engine.stats fused and ss = Engine.stats slow in
  check_int "accesses" ss.Engine.accesses sf.Engine.accesses;
  check_int "fences" ss.Engine.fences sf.Engine.fences;
  check_int "remote invalidations" ss.Engine.cache.Hierarchy.remote_invalidations
    sf.Engine.cache.Hierarchy.remote_invalidations;
  check_int "l1 hits" ss.Engine.cache.Hierarchy.l1.Cache.hits
    sf.Engine.cache.Hierarchy.l1.Cache.hits;
  check_int "tlb misses" ss.Engine.tlb.Tlb.misses sf.Engine.tlb.Tlb.misses

(* --- runner-level differential -------------------------------------------- *)

let spec ~fused scheme threads =
  {
    Runner.default_spec with
    Runner.scheme;
    threads;
    structure = Runner.Hash_set;
    workload = Workload.make ~mix:Workload.update_only ~initial:200 ();
    horizon_cycles = 60_000;
    threshold = 16;
    sb_pages = 4;
    fused;
  }

let test_runner_differential () =
  List.iter
    (fun (scheme, threads) ->
      let f = Runner.run (spec ~fused:true scheme threads) in
      let s = Runner.run (spec ~fused:false scheme threads) in
      let name what =
        Printf.sprintf "%s %dT: %s identical" scheme threads what
      in
      check_int (name "ops") s.Runner.ops f.Runner.ops;
      check_bool (name "throughput") true
        (s.Runner.throughput_mops = f.Runner.throughput_mops);
      check_int (name "steps") s.Runner.host_steps f.Runner.host_steps;
      check_bool (name "metrics") true
        (Json.to_string (Export.metrics_json s.Runner.metrics)
        = Json.to_string (Export.metrics_json f.Runner.metrics)))
    [ ("oa-ver", 1); ("oa-ver", 4); ("nr", 2); ("hp", 2) ]

(* IMR leans on the two conditional-access engine paths that have fused-tier
   fast copies — revocation posts (tenure teardown) and the squash latch on
   Store/Rmw commits — so its runs must be byte-identical across all three
   modes: slow path, fused tenure-only, fused + run-ahead parking. *)
let test_imr_tri_modal_identity () =
  let spec ~fused ~runahead =
    {
      Runner.default_spec with
      Runner.scheme = "imr";
      threads = 4;
      structure = Runner.Hash_set;
      workload = Workload.make ~mix:Workload.update_only ~initial:200 ();
      horizon_cycles = 60_000;
      threshold = 16;
      sb_pages = 4;
      fused;
      runahead;
    }
  in
  let slow = Runner.run (spec ~fused:false ~runahead:false) in
  let cond_fails = Metrics.find slow.Runner.metrics "scheme.cond_fails" in
  check_bool "the workload exercises conditional-access failures" true
    (cond_fails > 0);
  List.iter
    (fun (mode, r) ->
      let name what = Printf.sprintf "imr %s: %s identical" mode what in
      check_int (name "ops") slow.Runner.ops r.Runner.ops;
      check_bool (name "throughput") true
        (slow.Runner.throughput_mops = r.Runner.throughput_mops);
      check_int (name "steps") slow.Runner.host_steps r.Runner.host_steps;
      check_bool (name "metrics") true
        (Json.to_string (Export.metrics_json slow.Runner.metrics)
        = Json.to_string (Export.metrics_json r.Runner.metrics)))
    [
      ("tenure-only", Runner.run (spec ~fused:true ~runahead:false));
      ("run-ahead", Runner.run (spec ~fused:true ~runahead:true));
    ]

(* --- tenure differentials -------------------------------------------------- *)

(* The leader-tenure and run-ahead parking tiers must be observationally
   invisible: every scenario below runs under the three engine modes —
   slow path, fused tenure-only, fused + run-ahead parking — and the
   simulated outcome (clocks, yields, fault accounting, cache/TLB state)
   must be byte-identical across all three. *)

let assert_sim_equal label ~nthreads (expected : Engine.t) (got : Engine.t) =
  for tid = 0 to nthreads - 1 do
    let n what = Printf.sprintf "%s: %s of thread %d" label what tid in
    check_int (n "clock") (Engine.clock expected ~tid) (Engine.clock got ~tid);
    let fe = Engine.fault_stats expected ~tid
    and fg = Engine.fault_stats got ~tid in
    check_int (n "yields") fe.Engine.yields fg.Engine.yields;
    check_int (n "stalls") fe.Engine.stalls_injected fg.Engine.stalls_injected;
    check_int (n "stall cycles") fe.Engine.stall_cycles fg.Engine.stall_cycles;
    check_int (n "neutralizations") fe.Engine.neutralized fg.Engine.neutralized
  done;
  let n what = Printf.sprintf "%s: %s" label what in
  check_int (n "steps") (Engine.steps expected) (Engine.steps got);
  let se = Engine.stats expected and sg = Engine.stats got in
  check_int (n "accesses") se.Engine.accesses sg.Engine.accesses;
  check_int (n "fences") se.Engine.fences sg.Engine.fences;
  check_int (n "faults") se.Engine.faults sg.Engine.faults;
  check_int (n "l1 hits") se.Engine.cache.Hierarchy.l1.Cache.hits
    sg.Engine.cache.Hierarchy.l1.Cache.hits;
  check_int (n "remote invalidations")
    se.Engine.cache.Hierarchy.remote_invalidations
    sg.Engine.cache.Hierarchy.remote_invalidations;
  check_int (n "tlb misses") se.Engine.tlb.Tlb.misses sg.Engine.tlb.Tlb.misses

(* [build ()] creates an engine and spawns its threads; each mode gets a
   fresh instance.  Returns the slow-path engine for scenario-specific
   assertions (e.g. that the fault being tested actually fired). *)
let tri_modal label ~nthreads build =
  let under ~fused ~runahead =
    let eng = build () in
    Engine.set_fused eng fused;
    Engine.set_runahead eng runahead;
    Engine.run eng;
    eng
  in
  let slow = under ~fused:false ~runahead:false in
  let tenure_only = under ~fused:true ~runahead:false in
  let full = under ~fused:true ~runahead:true in
  assert_sim_equal (label ^ " (tenure-only vs slow)") ~nthreads slow
    tenure_only;
  assert_sim_equal (label ^ " (run-ahead vs slow)") ~nthreads slow full;
  slow

(* A cheap streaming thread against an expensive rival: thread 0's clock
   repeatedly crosses its tenure bound (thread 1's suspension clock + 1),
   forcing mid-stream revalidation, parking and leadership handoff in both
   directions. *)
let test_leader_overtaken_mid_tenure () =
  let build () =
    let eng = Engine.create ~nthreads:2 () in
    Engine.spawn eng ~tid:0 (fun ctx ->
        for _ = 1 to 600 do
          Engine.Mem.access ctx ~vpage:(-1) ~paddr:8 ~kind:Engine.Load
        done);
    Engine.spawn eng ~tid:1 (fun ctx ->
        for i = 1 to 60 do
          Engine.Mem.access ctx ~vpage:(-1) ~paddr:(64 * i) ~kind:Engine.Rmw
        done);
    eng
  in
  ignore (tri_modal "overtake" ~nthreads:2 build)

(* A neutralization posted against a tenure-holding victim: the Posted
   branch may pull the victim's clock back, so every live tenure bound is
   stale and must be dropped.  Thread 2 is a cheap bystander whose tenures
   span the post. *)
let test_neutralize_breaks_tenure () =
  let build () =
    let eng = Engine.create ~nthreads:3 () in
    Engine.spawn eng ~tid:0 (fun ctx ->
        let n = ref 0 in
        Engine.Mem.checkpoint ctx
          ~recover:(fun () -> ())
          (fun () ->
            while !n < 2_000 do
              incr n;
              Engine.Mem.access ctx ~vpage:(-1) ~paddr:16 ~kind:Engine.Load
            done));
    Engine.spawn eng ~tid:1 (fun ctx ->
        for i = 1 to 40 do
          Engine.Mem.access ctx ~vpage:(-1) ~paddr:(64 * i) ~kind:Engine.Rmw;
          if i = 3 then
            check_bool "signal posted" true
              (Engine.Mem.neutralize ctx ~victim:0 = Engine.Posted)
        done);
    Engine.spawn eng ~tid:2 (fun ctx ->
        for _ = 1 to 2_000 do
          Engine.Mem.access ctx ~vpage:(-1) ~paddr:24 ~kind:Engine.Load
        done);
    eng
  in
  let slow = tri_modal "neutralize" ~nthreads:3 build in
  check_int "victim was neutralized once" 1
    (Engine.fault_stats slow ~tid:0).Engine.neutralized

(* An access revocation posted against a tenure-holding victim: revoke does
   not pull the victim's clock back, but it flips what the victim's
   subsequent Store/Rmw commits *do* (the squash latch), so every cached
   tenure bound must be dropped exactly like a posted neutralization — a
   victim inlining against a stale bound would commit unsquashed stores the
   slow path squashes.  Thread 2 is a cheap bystander whose tenures span
   the post. *)
let test_revoke_breaks_tenure () =
  let build () =
    let eng = Engine.create ~nthreads:3 () in
    Engine.spawn eng ~tid:0 (fun ctx ->
        for _ = 1 to 2_000 do
          Engine.Mem.access ctx ~vpage:(-1) ~paddr:16 ~kind:Engine.Store
        done;
        check_bool "victim's flag stays revoked" true
          (Engine.Mem.access_revoked ctx ~tid:0));
    Engine.spawn eng ~tid:1 (fun ctx ->
        for i = 1 to 40 do
          Engine.Mem.access ctx ~vpage:(-1) ~paddr:(64 * i) ~kind:Engine.Rmw;
          if i = 3 then
            check_bool "revocation posted" true
              (Engine.Mem.revoke ctx ~victim:0 = Engine.Posted)
        done);
    Engine.spawn eng ~tid:2 (fun ctx ->
        for _ = 1 to 2_000 do
          Engine.Mem.access ctx ~vpage:(-1) ~paddr:24 ~kind:Engine.Load
        done);
    eng
  in
  ignore (tri_modal "revoke" ~nthreads:3 build)

(* reset_clocks issued from inside a running thread, mid-tenure: bounds are
   absolute clock values, so a reset that zeroes the clocks but kept the
   bounds would leave thread 0 inlining against a stale future bound while
   every heap key restarts from zero. *)
let test_reset_clocks_mid_tenure () =
  let build () =
    let eng = Engine.create ~nthreads:2 () in
    Engine.spawn eng ~tid:0 (fun ctx ->
        for i = 1 to 300 do
          Engine.Mem.access ctx ~vpage:(-1) ~paddr:8 ~kind:Engine.Load;
          if i = 150 then Engine.reset_clocks eng
        done);
    Engine.spawn eng ~tid:1 (fun ctx ->
        for i = 1 to 30 do
          Engine.Mem.access ctx ~vpage:(-1) ~paddr:(64 * i) ~kind:Engine.Rmw
        done);
    eng
  in
  ignore (tri_modal "reset mid-tenure" ~nthreads:2 build)

(* A fault plan installed mid-run while the fused engine is deep in a
   tenure (and, under run-ahead, while a thread is parked): the flip must
   tear down the tenure and the parked thread must fall back to the
   scheduler without its bail counting as an extra yield, so the stall
   lands on exactly the same yield as on the slow path. *)
let test_plan_flip_mid_tenure () =
  let build () =
    let eng = Engine.create ~nthreads:2 () in
    Engine.spawn eng ~tid:0 (fun ctx ->
        for _ = 1 to 6_000 do
          Engine.Mem.access ctx ~vpage:(-1) ~paddr:8 ~kind:Engine.Load
        done);
    Engine.spawn eng ~tid:1 (fun ctx ->
        for i = 1 to 40 do
          Engine.Mem.access ctx ~vpage:(-1) ~paddr:(64 * i) ~kind:Engine.Rmw;
          if i = 2 then
            Engine.set_fault_plan eng
              (Fault_plan.make
                 [
                   Fault_plan.Stall
                     { tid = 0; at_yield = 4_000; cycles = 9_000 };
                 ])
        done);
    eng
  in
  let slow = tri_modal "plan flip" ~nthreads:2 build in
  let fs = Engine.fault_stats slow ~tid:0 in
  check_int "stall fired after the flip" 1 fs.Engine.stalls_injected;
  check_int "stall cycles charged" 9_000 fs.Engine.stall_cycles

(* --- measurement reset ----------------------------------------------------- *)

(* Mid-run clock reset must rebuild the scheduler heap: its keys are the
   suspension-time clocks, so zeroing the clocks without reindexing would
   leave the pre-reset ordering in force.  Thread 0 charges itself far
   ahead, so before the reset the scheduler favours thread 1; after the
   reset all clocks tie and the lowest tid must win the first pick. *)
let test_reset_clocks_rebuilds_heap () =
  let eng = Engine.create ~nthreads:2 () in
  let order = ref [] in
  let walker tid head_start =
    Engine.spawn eng ~tid (fun ctx ->
        if head_start > 0 then Engine.Mem.charge ctx head_start;
        for _ = 1 to 40 do
          order := tid :: !order;
          Engine.Mem.access ctx ~vpage:(-1) ~paddr:tid ~kind:Engine.Load
        done)
  in
  walker 0 1_000_000;
  walker 1 0;
  (match Engine.run ~max_steps:20 eng with
  | () -> Alcotest.fail "expected the step limit to hit mid-run"
  | exception Engine.Step_limit_exceeded -> ());
  check_bool "thread 1 was leading before the reset" true
    (Engine.clock eng ~tid:0 > Engine.clock eng ~tid:1);
  Engine.reset_clocks eng;
  order := [];
  Engine.run eng;
  (match List.rev !order with
  | first :: _ -> check_int "lowest tid resumes first after reset" 0 first
  | [] -> Alcotest.fail "no post-reset steps");
  check_int "both threads finished" 0
    (List.length (List.filter (fun t -> t <> 0 && t <> 1) !order))

let mapped_addr vm ctx =
  let addr = Vmem.reserve vm ~npages:1 in
  Vmem.map_anon vm ctx ~vpage:(Geometry.page_of_addr Geometry.default addr)
    ~npages:1;
  addr

let test_flush_forces_refill () =
  let vm = Vmem.create ~max_pages:64 Geometry.default in
  let ctx = Engine.external_ctx () in
  let addr = mapped_addr vm ctx in
  Vmem.store vm ctx addr 7;
  (* the store's own fill is stale by design: its epoch was captured before
     the fault-in bumped the page table's, so the next access re-fills *)
  ignore (Vmem.load vm ctx addr);
  let fills = Vmem.tc_fills vm in
  let hits = Vmem.tc_hits vm in
  ignore (Vmem.load vm ctx addr);
  check_int "load hits the translation cache" (hits + 1) (Vmem.tc_hits vm);
  check_int "no refill on a hit" fills (Vmem.tc_fills vm);
  Vmem.flush_translation_cache vm;
  ignore (Vmem.load vm ctx addr);
  check_int "flush forces a refill" (fills + 1) (Vmem.tc_fills vm)

(* Remap under a permanent tenure: with one thread the fused engine holds
   an unbounded tenure, so the unmap/map_anon pair and the reload all run
   inline.  The page-table epoch bump must still invalidate the thread's
   translation-cache entry — the reload has to see the fresh zero mapping
   (and take its fault), not the dead frame the cache translated to. *)
let test_tc_epoch_bump_mid_tenure () =
  let run ~fused =
    let vm = Vmem.create ~max_pages:64 Geometry.default in
    let eng = Engine.create ~nthreads:1 () in
    Engine.set_fused eng fused;
    Vmem.set_translation_cache vm fused;
    let seen = ref [] in
    Engine.spawn eng ~tid:0 (fun ctx ->
        let addr = mapped_addr vm ctx in
        let vpage = Geometry.page_of_addr Geometry.default addr in
        Vmem.store vm ctx addr 7;
        seen := Vmem.load vm ctx addr :: !seen;
        (* warm the translation-cache entry so the stale path is reachable *)
        ignore (Vmem.load vm ctx addr);
        Vmem.unmap vm ctx ~vpage ~npages:1;
        Vmem.map_anon vm ctx ~vpage ~npages:1;
        seen := Vmem.load vm ctx addr :: !seen);
    Engine.run eng;
    (List.rev !seen, Vmem.minor_faults vm, Engine.clock eng ~tid:0,
     Engine.steps eng)
  in
  let fv, ffaults, fclock, fsteps = run ~fused:true in
  let sv, sfaults, sclock, ssteps = run ~fused:false in
  check_bool "remap is visible mid-tenure" true (fv = [ 7; 0 ]);
  check_bool "loaded values identical" true (fv = sv);
  check_int "minor faults identical" sfaults ffaults;
  check_int "clock identical" sclock fclock;
  check_int "steps identical" ssteps fsteps

let test_reset_measurement_flushes_translation_cache () =
  let sys =
    System.create
      (System.Config.make ~nthreads:2 ~scheme:"oa-ver"
         ~max_pages:(1 lsl 14)
         ~scheme_cfg:
           {
             Scheme.default_config with
             Scheme.threshold = 8;
             slots_per_thread = Hm_list.slots_needed;
           }
         ())
  in
  System.run_on_thread0 sys (fun ctx ->
      let s = System.list_set sys ctx in
      for k = 0 to 31 do
        ignore (Hm_list.insert s ctx k)
      done;
      for k = 0 to 31 do
        ignore (Hm_list.contains s ctx k)
      done);
  let vm = System.vmem sys in
  check_bool "warmup populated the translation cache" true
    (Vmem.tc_hits vm > 0);
  System.reset_measurement sys;
  check_int "hit counter cleared" 0 (Vmem.tc_hits vm);
  check_int "fill counter cleared" 0 (Vmem.tc_fills vm);
  (* the cache itself must be flushed, not just its counters: the first
     post-reset access must miss and refill *)
  System.run_on_thread0 sys (fun ctx ->
      let s = System.list_set sys ctx in
      ignore (Hm_list.contains s ctx 0));
  check_bool "first post-reset access refills" true (Vmem.tc_fills vm > 0)

(* --- allocation-free fast path --------------------------------------------- *)

let test_fused_access_allocates_nothing () =
  let eng = Engine.create ~nthreads:1 () in
  let words = ref 0.0 in
  Engine.spawn eng ~tid:0 (fun ctx ->
      (* warm the caches, then measure the steady-state inline path *)
      Engine.Mem.access ctx ~vpage:0 ~paddr:42 ~kind:Engine.Load;
      let before = Gc.minor_words () in
      for _ = 1 to 10_000 do
        Engine.Mem.access ctx ~vpage:0 ~paddr:42 ~kind:Engine.Load
      done;
      words := Gc.minor_words () -. before);
  Engine.run eng;
  check_bool
    (Printf.sprintf "inline access path allocates nothing (%.0f words)" !words)
    true (!words = 0.0)

(* The inline path must stay allocation-free under a *finite* tenure too:
   thread 1 charges itself far ahead, so thread 0 holds a long bounded
   tenure (non-empty heap) rather than the single-thread unbounded one.
   Only the inline tier is measured — the parked-commit path inherently
   allocates on the *other* threads' side (their suspensions capture
   continuations), which is why the warm-up does two accesses: the second
   one triggers the park/drain dance that establishes the long tenure. *)
let test_finite_tenure_inline_allocates_nothing () =
  let eng = Engine.create ~nthreads:2 () in
  let words = ref 0.0 in
  Engine.spawn eng ~tid:0 (fun ctx ->
      Engine.Mem.access ctx ~vpage:0 ~paddr:42 ~kind:Engine.Load;
      Engine.Mem.access ctx ~vpage:0 ~paddr:42 ~kind:Engine.Load;
      let before = Gc.minor_words () in
      for _ = 1 to 10_000 do
        Engine.Mem.access ctx ~vpage:0 ~paddr:42 ~kind:Engine.Load
      done;
      words := Gc.minor_words () -. before);
  Engine.spawn eng ~tid:1 (fun ctx ->
      Engine.Mem.charge ctx 10_000_000;
      Engine.Mem.access ctx ~vpage:0 ~paddr:7 ~kind:Engine.Load);
  Engine.run eng;
  check_bool
    (Printf.sprintf "finite-tenure inline path allocates nothing (%.0f words)"
       !words)
    true (!words = 0.0)

let test_vmem_hit_path_allocates_nothing () =
  let vm = Vmem.create ~max_pages:64 Geometry.default in
  let eng = Engine.create ~nthreads:1 () in
  let words = ref 0.0 in
  Engine.spawn eng ~tid:0 (fun ctx ->
      let addr = mapped_addr vm ctx in
      Vmem.store vm ctx addr 1;
      ignore (Vmem.load vm ctx addr);
      let before = Gc.minor_words () in
      for _ = 1 to 10_000 do
        ignore (Vmem.load vm ctx addr)
      done;
      words := Gc.minor_words () -. before);
  Engine.run eng;
  check_bool
    (Printf.sprintf "vmem L1-hit load path allocates nothing (%.0f words)"
       !words)
    true (!words = 0.0)

let () =
  Alcotest.run "fused"
    [
      ( "differential",
        [
          Alcotest.test_case "engine: fused = slow path" `Quick
            test_engine_differential;
          Alcotest.test_case "runner: fused = slow path" `Quick
            test_runner_differential;
          Alcotest.test_case "runner: imr identical across all three modes"
            `Quick test_imr_tri_modal_identity;
        ] );
      ( "tenure",
        [
          Alcotest.test_case "leader overtaken mid-tenure" `Quick
            test_leader_overtaken_mid_tenure;
          Alcotest.test_case "neutralize breaks a tenure" `Quick
            test_neutralize_breaks_tenure;
          Alcotest.test_case "revoke breaks a tenure" `Quick
            test_revoke_breaks_tenure;
          Alcotest.test_case "reset_clocks mid-tenure" `Quick
            test_reset_clocks_mid_tenure;
          Alcotest.test_case "plan flip mid-tenure (run-ahead rollback)"
            `Quick test_plan_flip_mid_tenure;
          Alcotest.test_case "translation-cache epoch bump mid-tenure" `Quick
            test_tc_epoch_bump_mid_tenure;
          Alcotest.test_case "finite-tenure inline allocates nothing" `Quick
            test_finite_tenure_inline_allocates_nothing;
        ] );
      ( "reset",
        [
          Alcotest.test_case "reset_clocks rebuilds the heap" `Quick
            test_reset_clocks_rebuilds_heap;
          Alcotest.test_case "flush forces refill" `Quick
            test_flush_forces_refill;
          Alcotest.test_case "reset_measurement flushes the cache" `Quick
            test_reset_measurement_flushes_translation_cache;
        ] );
      ( "fast-path",
        [
          Alcotest.test_case "fused access allocates nothing" `Quick
            test_fused_access_allocates_nothing;
          Alcotest.test_case "vmem hit path allocates nothing" `Quick
            test_vmem_hit_path_allocates_nothing;
        ] );
    ]
