(* Tests for the fused memory-access fast path.

   The inline path (Engine.Mem charging a request without a context switch)
   and the vmem translation cache are pure host-side optimisations: they
   must be observationally invisible to the simulation.  These tests pin
   that down — identical clocks/stats at the engine level, identical
   metrics at the runner level — plus the measurement-reset regressions
   (scheduler heap rebuilt, translation cache flushed) and the
   allocation-free steady-state hit path. *)

open Oamem_engine
open Oamem_vmem
open Oamem_core
open Oamem_reclaim
open Oamem_lockfree
open Oamem_harness
module Json = Oamem_obs.Json
module Export = Oamem_obs.Export

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- engine-level differential -------------------------------------------- *)

(* Deterministic mixed traffic: each thread walks its own PRNG and issues
   loads, stores, RMWs, fences and pauses over a small block range. *)
let drive ~fused ~nthreads =
  let eng = Engine.create ~nthreads () in
  Engine.set_fused eng fused;
  for tid = 0 to nthreads - 1 do
    Engine.spawn eng ~tid (fun ctx ->
        let prng = Engine.Mem.prng ctx in
        for _ = 1 to 400 do
          let r = Prng.next prng in
          let paddr = r land 1023 in
          (match r land 7 with
          | 0 | 1 | 2 | 3 ->
              Engine.Mem.access ctx ~vpage:(paddr lsr 9) ~paddr
                ~kind:Engine.Load
          | 4 | 5 ->
              Engine.Mem.access ctx ~vpage:(paddr lsr 9) ~paddr
                ~kind:Engine.Store
          | 6 ->
              Engine.Mem.access ctx ~vpage:(paddr lsr 9) ~paddr
                ~kind:Engine.Rmw
          | _ -> Engine.Mem.fence ctx Engine.Full);
          if r land 31 = 0 then Engine.Mem.pause ctx
        done)
  done;
  Engine.run eng;
  eng

let test_engine_differential () =
  let nthreads = 4 in
  let fused = drive ~fused:true ~nthreads in
  let slow = drive ~fused:false ~nthreads in
  for tid = 0 to nthreads - 1 do
    check_int
      (Printf.sprintf "clock of thread %d" tid)
      (Engine.clock slow ~tid) (Engine.clock fused ~tid)
  done;
  check_int "steps" (Engine.steps slow) (Engine.steps fused);
  let sf = Engine.stats fused and ss = Engine.stats slow in
  check_int "accesses" ss.Engine.accesses sf.Engine.accesses;
  check_int "fences" ss.Engine.fences sf.Engine.fences;
  check_int "remote invalidations" ss.Engine.cache.Hierarchy.remote_invalidations
    sf.Engine.cache.Hierarchy.remote_invalidations;
  check_int "l1 hits" ss.Engine.cache.Hierarchy.l1.Cache.hits
    sf.Engine.cache.Hierarchy.l1.Cache.hits;
  check_int "tlb misses" ss.Engine.tlb.Tlb.misses sf.Engine.tlb.Tlb.misses

(* --- runner-level differential -------------------------------------------- *)

let spec ~fused scheme threads =
  {
    Runner.default_spec with
    Runner.scheme;
    threads;
    structure = Runner.Hash_set;
    workload = Workload.make ~mix:Workload.update_only ~initial:200 ();
    horizon_cycles = 60_000;
    threshold = 16;
    sb_pages = 4;
    fused;
  }

let test_runner_differential () =
  List.iter
    (fun (scheme, threads) ->
      let f = Runner.run (spec ~fused:true scheme threads) in
      let s = Runner.run (spec ~fused:false scheme threads) in
      let name what =
        Printf.sprintf "%s %dT: %s identical" scheme threads what
      in
      check_int (name "ops") s.Runner.ops f.Runner.ops;
      check_bool (name "throughput") true
        (s.Runner.throughput_mops = f.Runner.throughput_mops);
      check_int (name "steps") s.Runner.host_steps f.Runner.host_steps;
      check_bool (name "metrics") true
        (Json.to_string (Export.metrics_json s.Runner.metrics)
        = Json.to_string (Export.metrics_json f.Runner.metrics)))
    [ ("oa-ver", 1); ("oa-ver", 4); ("nr", 2); ("hp", 2) ]

(* --- measurement reset ----------------------------------------------------- *)

(* Mid-run clock reset must rebuild the scheduler heap: its keys are the
   suspension-time clocks, so zeroing the clocks without reindexing would
   leave the pre-reset ordering in force.  Thread 0 charges itself far
   ahead, so before the reset the scheduler favours thread 1; after the
   reset all clocks tie and the lowest tid must win the first pick. *)
let test_reset_clocks_rebuilds_heap () =
  let eng = Engine.create ~nthreads:2 () in
  let order = ref [] in
  let walker tid head_start =
    Engine.spawn eng ~tid (fun ctx ->
        if head_start > 0 then Engine.Mem.charge ctx head_start;
        for _ = 1 to 40 do
          order := tid :: !order;
          Engine.Mem.access ctx ~vpage:(-1) ~paddr:tid ~kind:Engine.Load
        done)
  in
  walker 0 1_000_000;
  walker 1 0;
  (match Engine.run ~max_steps:20 eng with
  | () -> Alcotest.fail "expected the step limit to hit mid-run"
  | exception Engine.Step_limit_exceeded -> ());
  check_bool "thread 1 was leading before the reset" true
    (Engine.clock eng ~tid:0 > Engine.clock eng ~tid:1);
  Engine.reset_clocks eng;
  order := [];
  Engine.run eng;
  (match List.rev !order with
  | first :: _ -> check_int "lowest tid resumes first after reset" 0 first
  | [] -> Alcotest.fail "no post-reset steps");
  check_int "both threads finished" 0
    (List.length (List.filter (fun t -> t <> 0 && t <> 1) !order))

let mapped_addr vm ctx =
  let addr = Vmem.reserve vm ~npages:1 in
  Vmem.map_anon vm ctx ~vpage:(Geometry.page_of_addr Geometry.default addr)
    ~npages:1;
  addr

let test_flush_forces_refill () =
  let vm = Vmem.create ~max_pages:64 Geometry.default in
  let ctx = Engine.external_ctx () in
  let addr = mapped_addr vm ctx in
  Vmem.store vm ctx addr 7;
  (* the store's own fill is stale by design: its epoch was captured before
     the fault-in bumped the page table's, so the next access re-fills *)
  ignore (Vmem.load vm ctx addr);
  let fills = Vmem.tc_fills vm in
  let hits = Vmem.tc_hits vm in
  ignore (Vmem.load vm ctx addr);
  check_int "load hits the translation cache" (hits + 1) (Vmem.tc_hits vm);
  check_int "no refill on a hit" fills (Vmem.tc_fills vm);
  Vmem.flush_translation_cache vm;
  ignore (Vmem.load vm ctx addr);
  check_int "flush forces a refill" (fills + 1) (Vmem.tc_fills vm)

let test_reset_measurement_flushes_translation_cache () =
  let sys =
    System.create
      (System.Config.make ~nthreads:2 ~scheme:"oa-ver"
         ~max_pages:(1 lsl 14)
         ~scheme_cfg:
           {
             Scheme.default_config with
             Scheme.threshold = 8;
             slots_per_thread = Hm_list.slots_needed;
           }
         ())
  in
  System.run_on_thread0 sys (fun ctx ->
      let s = System.list_set sys ctx in
      for k = 0 to 31 do
        ignore (Hm_list.insert s ctx k)
      done;
      for k = 0 to 31 do
        ignore (Hm_list.contains s ctx k)
      done);
  let vm = System.vmem sys in
  check_bool "warmup populated the translation cache" true
    (Vmem.tc_hits vm > 0);
  System.reset_measurement sys;
  check_int "hit counter cleared" 0 (Vmem.tc_hits vm);
  check_int "fill counter cleared" 0 (Vmem.tc_fills vm);
  (* the cache itself must be flushed, not just its counters: the first
     post-reset access must miss and refill *)
  System.run_on_thread0 sys (fun ctx ->
      let s = System.list_set sys ctx in
      ignore (Hm_list.contains s ctx 0));
  check_bool "first post-reset access refills" true (Vmem.tc_fills vm > 0)

(* --- allocation-free fast path --------------------------------------------- *)

let test_fused_access_allocates_nothing () =
  let eng = Engine.create ~nthreads:1 () in
  let words = ref 0.0 in
  Engine.spawn eng ~tid:0 (fun ctx ->
      (* warm the caches, then measure the steady-state inline path *)
      Engine.Mem.access ctx ~vpage:0 ~paddr:42 ~kind:Engine.Load;
      let before = Gc.minor_words () in
      for _ = 1 to 10_000 do
        Engine.Mem.access ctx ~vpage:0 ~paddr:42 ~kind:Engine.Load
      done;
      words := Gc.minor_words () -. before);
  Engine.run eng;
  check_bool
    (Printf.sprintf "inline access path allocates nothing (%.0f words)" !words)
    true (!words = 0.0)

let test_vmem_hit_path_allocates_nothing () =
  let vm = Vmem.create ~max_pages:64 Geometry.default in
  let eng = Engine.create ~nthreads:1 () in
  let words = ref 0.0 in
  Engine.spawn eng ~tid:0 (fun ctx ->
      let addr = mapped_addr vm ctx in
      Vmem.store vm ctx addr 1;
      ignore (Vmem.load vm ctx addr);
      let before = Gc.minor_words () in
      for _ = 1 to 10_000 do
        ignore (Vmem.load vm ctx addr)
      done;
      words := Gc.minor_words () -. before);
  Engine.run eng;
  check_bool
    (Printf.sprintf "vmem L1-hit load path allocates nothing (%.0f words)"
       !words)
    true (!words = 0.0)

let () =
  Alcotest.run "fused"
    [
      ( "differential",
        [
          Alcotest.test_case "engine: fused = slow path" `Quick
            test_engine_differential;
          Alcotest.test_case "runner: fused = slow path" `Quick
            test_runner_differential;
        ] );
      ( "reset",
        [
          Alcotest.test_case "reset_clocks rebuilds the heap" `Quick
            test_reset_clocks_rebuilds_heap;
          Alcotest.test_case "flush forces refill" `Quick
            test_flush_forces_refill;
          Alcotest.test_case "reset_measurement flushes the cache" `Quick
            test_reset_measurement_flushes_translation_cache;
        ] );
      ( "fast-path",
        [
          Alcotest.test_case "fused access allocates nothing" `Quick
            test_fused_access_allocates_nothing;
          Alcotest.test_case "vmem hit path allocates nothing" `Quick
            test_vmem_hit_path_allocates_nothing;
        ] );
    ]
