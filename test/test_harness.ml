(* Tests for the experiment harness: workload mixes, the runner's accounting
   and warmup behaviour, report formatting and the experiment registry. *)

open Oamem_engine
open Oamem_harness

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- workload ----------------------------------------------------------------- *)

let test_mix_validation () =
  Alcotest.check_raises "must sum to 100"
    (Invalid_argument "Workload.mix: percentages must sum to 100") (fun () ->
      ignore (Workload.mix ~search:50 ~insert:30 ~delete:30))

let test_paper_mixes () =
  check_bool "update only" true
    (Workload.update_only = Workload.mix ~search:0 ~insert:50 ~delete:50);
  check_bool "balanced" true
    (Workload.balanced = Workload.mix ~search:50 ~insert:25 ~delete:25)

let test_mix_proportions () =
  let w = Workload.make ~mix:Workload.balanced ~initial:100 () in
  let rng = Prng.create 11 in
  let s = ref 0 and i = ref 0 and d = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    match Workload.next_op w rng with
    | Workload.Search _ -> incr s
    | Workload.Insert _ -> incr i
    | Workload.Delete _ -> incr d
  done;
  let pct x = 100 * x / n in
  check_bool "~50% searches" true (abs (pct !s - 50) <= 3);
  check_bool "~25% inserts" true (abs (pct !i - 25) <= 3);
  check_bool "~25% deletes" true (abs (pct !d - 25) <= 3)

let test_keys_in_universe () =
  let w = Workload.make ~mix:Workload.update_only ~initial:50 () in
  let rng = Prng.create 3 in
  for _ = 1 to 1000 do
    let k =
      match Workload.next_op w rng with
      | Workload.Search k | Workload.Insert k | Workload.Delete k -> k
    in
    check_bool "key in universe" true (k >= 0 && k < 100)
  done

let test_prefill_is_half_universe () =
  let w = Workload.make ~mix:Workload.update_only ~initial:10 () in
  let keys = Workload.prefill_keys w in
  check_int "count" 10 (List.length keys);
  check_bool "all even, in universe" true
    (List.for_all (fun k -> k land 1 = 0 && k < 20) keys)

let test_zipf_skew () =
  let w =
    Workload.make ~distribution:(Workload.Zipf 0.99) ~mix:Workload.update_only
      ~initial:500 ()
  in
  let rng = Prng.create 5 in
  let counts = Hashtbl.create 64 in
  let n = 20_000 in
  for _ = 1 to n do
    let k = Workload.next_key w rng in
    check_bool "in universe" true (k >= 0 && k < w.Workload.universe);
    Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
  done;
  (* skew: the hottest 10 keys must take far more than 10/1000 of the mass *)
  let all = Hashtbl.fold (fun _ c acc -> c :: acc) counts [] in
  let sorted = List.sort (fun a b -> compare b a) all in
  let top10 = List.fold_left ( + ) 0 (List.filteri (fun i _ -> i < 10) sorted) in
  check_bool "top-10 keys dominate" true (top10 * 100 / n > 15);
  (* uniform, by contrast, is flat *)
  let wu = Workload.make ~mix:Workload.update_only ~initial:500 () in
  let rngu = Prng.create 5 in
  let countsu = Hashtbl.create 64 in
  for _ = 1 to n do
    let k = Workload.next_key wu rngu in
    Hashtbl.replace countsu k (1 + Option.value ~default:0 (Hashtbl.find_opt countsu k))
  done;
  let allu = Hashtbl.fold (fun _ c acc -> c :: acc) countsu [] in
  let sortedu = List.sort (fun a b -> compare b a) allu in
  let top10u = List.fold_left ( + ) 0 (List.filteri (fun i _ -> i < 10) sortedu) in
  check_bool "uniform top-10 is small" true (top10u * 100 / n < 5)

(* --- runner -------------------------------------------------------------------- *)

let small_spec scheme =
  {
    Runner.default_spec with
    Runner.scheme;
    threads = 2;
    structure = Runner.Hash_set;
    workload = Workload.make ~mix:Workload.update_only ~initial:200 ();
    horizon_cycles = 60_000;
    threshold = 16;
    sb_pages = 4;
  }

let test_runner_counts_ops () =
  let r = Runner.run (small_spec "oa-ver") in
  check_int "ops = searches+inserts+deletes" r.Runner.ops
    (r.Runner.searches + r.Runner.inserts + r.Runner.deletes);
  check_bool "did some work" true (r.Runner.ops > 10);
  check_bool "positive throughput" true (r.Runner.throughput_mops > 0.0);
  check_bool "elapsed covers horizon" true
    (r.Runner.sim_seconds
    >= Oamem_engine.Cost_model.seconds_of_cycles
         Oamem_engine.Cost_model.opteron_6274 60_000)

let test_runner_all_schemes_complete () =
  List.iter
    (fun scheme ->
      let r = Runner.run (small_spec scheme) in
      check_bool (scheme ^ " completes") true (r.Runner.ops > 0))
    Oamem_reclaim.Registry.names

let test_runner_deterministic () =
  let a = Runner.run (small_spec "oa-bit") in
  let b = Runner.run (small_spec "oa-bit") in
  check_int "same ops" a.Runner.ops b.Runner.ops;
  check_bool "same throughput" true
    (a.Runner.throughput_mops = b.Runner.throughput_mops)

let test_runner_warmup_resets_counters () =
  (* with warmup, the measured scheme stats must not include warmup work:
     a tiny horizon after a large warmup must show few retired nodes *)
  let r =
    Runner.run
      { (small_spec "oa-ver") with Runner.warmup_ops = 2_000; horizon_cycles = 2_000 }
  in
  check_bool "measured retires small" true
    (Oamem_obs.Metrics.find r.Runner.metrics "scheme.retired" < 200)

let test_runner_trials () =
  let s = Runner.run_trials ~trials:3 (small_spec "oa-ver") in
  check_int "three trials" 3 (List.length s.Runner.trials);
  check_bool "median within bounds" true
    (s.Runner.min_mops <= s.Runner.median_mops
    && s.Runner.median_mops <= s.Runner.max_mops)

let test_runner_more_threads_more_ops () =
  let r1 = Runner.run { (small_spec "nr") with Runner.threads = 1 } in
  let r4 = Runner.run { (small_spec "nr") with Runner.threads = 4 } in
  check_bool "parallel work scales" true
    (r4.Runner.ops > r1.Runner.ops)

(* --- report (value-level doc API) ----------------------------------------------- *)

let test_report_table_alignment () =
  let out =
    Report.to_string
      [
        Report.table ~header:[ "a"; "long-header" ]
          [ [ "xxxxxx"; "1" ]; [ "y"; "22" ] ];
      ]
  in
  let lines = String.split_on_char '\n' out in
  check_bool "has rows" true (List.length lines >= 4);
  (* all non-empty lines equally padded *)
  match lines with
  | h :: _ :: r1 :: _ ->
      check_bool "header padded to width" true (String.length h >= 6);
      check_bool "row contains value" true
        (String.length r1 > 0 && r1.[0] = 'x')
  | _ -> Alcotest.fail "unexpected table output"

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else String.sub haystack i nn = needle || go (i + 1)
  in
  nn = 0 || go 0

let test_report_chart_renders_series () =
  let out =
    Report.to_string
      [
        Report.chart ~title:"t" ~xlabel:"x" ~ylabel:"y" ~xs:[ 1; 2; 3 ]
          [ ("alpha", [ 1.0; 2.0; 3.0 ]); ("beta", [ 3.0; 2.0; 1.0 ]) ];
      ]
  in
  check_bool "mentions series A" true
    (String.length out > 0 && contains out "A = alpha" && contains out "B = beta")

let test_report_csv () =
  let doc =
    [ Report.csv ~filename:"t.csv" ~header:[ "a"; "b" ]
        [ [ "1"; "2" ]; [ "3"; "4" ] ] ]
  in
  (* the artifact is a value... *)
  (match Report.artifacts doc with
  | [ a ] ->
      check_bool "csv content" true (a.Report.content = "a,b\n1,2\n3,4\n");
      check_bool "csv is dir-relative" true a.Report.in_dir
  | _ -> Alcotest.fail "expected one artifact");
  (* ...rendered text ignores it... *)
  check_bool "not rendered inline" true (Report.to_string doc = "");
  (* ...and write_artifacts places it under the requested directory,
     dropping it when no directory is given *)
  let dir = Filename.temp_file "oamem" ".d" in
  Sys.remove dir;
  (match Report.write_artifacts ~dir doc with
  | [ path ] ->
      let ic = open_in path in
      let l1 = input_line ic and l2 = input_line ic and l3 = input_line ic in
      close_in ic;
      Sys.remove path;
      Unix.rmdir dir;
      check_bool "csv written" true (l1 = "a,b" && l2 = "1,2" && l3 = "3,4")
  | _ -> Alcotest.fail "expected one written file");
  check_bool "no dir, no write" true (Report.write_artifacts doc = [])

(* --- experiments registry ------------------------------------------------------- *)

let test_experiments_registry () =
  let ids = List.map (fun e -> e.Experiments.id) Experiments.all in
  List.iter
    (fun id -> check_bool (id ^ " present") true (List.mem id ids))
    [
      "fig4a"; "fig4b"; "fig5a"; "fig5b"; "fig6a"; "fig6b"; "remap-strategies";
      "memory-release"; "dwcas-leak"; "micro-validate"; "warnings-ablation";
      "limbo-sweep"; "padding-ablation"; "cache-sweep";
    ];
  check_bool "find works" true
    ((Experiments.find "fig4a").Experiments.id = "fig4a");
  Alcotest.check_raises "unknown id"
    (Invalid_argument
       ("unknown experiment \"nope\" (known: "
       ^ String.concat ", " ids
       ^ ")"))
    (fun () -> ignore (Experiments.find "nope"))

let test_small_experiment_runs () =
  (* dwcas-leak is the cheapest full experiment: run it end to end *)
  let doc =
    (Experiments.find "dwcas-leak").Experiments.run Experiments.quick_config
  in
  check_bool "returned a table" true (String.length (Report.to_string doc) > 100)

let test_config_builder () =
  check_bool "make () is the default" true
    (Experiments.Config.make () = Experiments.default_config);
  let c = Experiments.Config.make ~seed:42 ~jobs:3 ~csv_dir:"out" () in
  check_int "override seed" 42 c.Experiments.seed;
  check_int "override jobs" 3 c.Experiments.jobs;
  check_bool "override csv_dir" true (c.Experiments.csv_dir = Some "out");
  check_bool "rest defaulted" true
    (c.Experiments.threads = Experiments.default_config.Experiments.threads)

let suite =
  [
    ("mix validation", `Quick, test_mix_validation);
    ("paper mixes", `Quick, test_paper_mixes);
    ("mix proportions", `Quick, test_mix_proportions);
    ("keys in universe", `Quick, test_keys_in_universe);
    ("prefill", `Quick, test_prefill_is_half_universe);
    ("zipf skew", `Quick, test_zipf_skew);
    ("runner counts ops", `Quick, test_runner_counts_ops);
    ("runner all schemes", `Quick, test_runner_all_schemes_complete);
    ("runner deterministic", `Quick, test_runner_deterministic);
    ("runner warmup resets", `Quick, test_runner_warmup_resets_counters);
    ("runner trials", `Quick, test_runner_trials);
    ("runner thread scaling", `Quick, test_runner_more_threads_more_ops);
    ("report table", `Quick, test_report_table_alignment);
    ("report chart", `Quick, test_report_chart_renders_series);
    ("report csv", `Quick, test_report_csv);
    ("experiments registry", `Quick, test_experiments_registry);
    ("small experiment runs", `Quick, test_small_experiment_runs);
    ("config builder", `Quick, test_config_builder);
  ]

let () = Alcotest.run "harness" [ ("harness", suite) ]
