(* Cross-cutting integration tests:

   - mixed structures sharing one system (list + hash + stack + queue over
     the same allocator and scheme, concurrently);
   - the end-to-end persistence guarantee (optimistic reads of freed memory
     never fault while the structure churns under the OA schemes);
   - failure injection: a stalled thread holding hazard pointers must block
     reclamation of exactly its protected nodes and nothing else;
   - a real Domain smoke test of the vmem layer (the simulated memory is
     domain-safe; the engine itself is single-domain by design);
   - long-churn footprint boundedness across every scheme that reclaims. *)

open Oamem_engine
open Oamem_vmem
open Oamem_core
open Oamem_lockfree
open Oamem_reclaim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mk ?(nthreads = 4) ?(threshold = 8) scheme =
  System.create
    (System.Config.make ~nthreads ~scheme
       ~max_pages:(1 lsl 16)
       ~alloc_cfg:
         { Oamem_lrmalloc.Config.default with Oamem_lrmalloc.Config.sb_pages = 4 }
       ~scheme_cfg:
         {
           Scheme.default_config with
           Scheme.threshold;
           slots_per_thread = Hm_list.slots_needed;
           pool_nodes = 16384;
         }
       ())

(* --- mixed structures over one allocator ------------------------------------- *)

let mixed_structures scheme () =
  let nthreads = 4 in
  let sys = mk ~nthreads scheme in
  let parts = ref None in
  System.run_on_thread0 sys (fun ctx ->
      let l = System.list_set sys ctx in
      let h = System.hash_set sys ctx ~expected_size:128 in
      let s =
        Treiber_stack.create ctx ~scheme:(System.scheme sys)
          ~vmem:(System.vmem sys)
      in
      let q =
        Ms_queue.create ctx ~scheme:(System.scheme sys) ~vmem:(System.vmem sys)
      in
      parts := Some (l, h, s, q));
  let l, h, s, q = Option.get !parts in
  let lins = Atomic.make 0 and ldel = Atomic.make 0 in
  let hins = Atomic.make 0 and hdel = Atomic.make 0 in
  let pushes = Atomic.make 0 and pops = Atomic.make 0 in
  let enq = Atomic.make 0 and deq = Atomic.make 0 in
  for tid = 0 to nthreads - 1 do
    System.spawn sys ~tid (fun ctx ->
        let rng = (Engine.Mem.prng ctx) in
        for _ = 1 to 200 do
          let k = Prng.int rng 128 in
          match Prng.int rng 8 with
          | 0 -> if Hm_list.insert l ctx k then Atomic.incr lins
          | 1 -> if Hm_list.delete l ctx k then Atomic.incr ldel
          | 2 -> if Michael_hash.insert h ctx k then Atomic.incr hins
          | 3 -> if Michael_hash.delete h ctx k then Atomic.incr hdel
          | 4 ->
              Treiber_stack.push s ctx k;
              Atomic.incr pushes
          | 5 -> if Treiber_stack.pop s ctx <> None then Atomic.incr pops
          | 6 ->
              Ms_queue.enqueue q ctx k;
              Atomic.incr enq
          | _ -> if Ms_queue.dequeue q ctx <> None then Atomic.incr deq
        done)
  done;
  System.run sys;
  check_int
    (scheme ^ ": list accounting")
    (Atomic.get lins - Atomic.get ldel)
    (Hm_list.length l);
  check_int
    (scheme ^ ": hash accounting")
    (Atomic.get hins - Atomic.get hdel)
    (Michael_hash.length h);
  check_int
    (scheme ^ ": stack accounting")
    (Atomic.get pushes - Atomic.get pops)
    (Treiber_stack.length s);
  check_int
    (scheme ^ ": queue accounting")
    (Atomic.get enq - Atomic.get deq)
    (Ms_queue.length q)

(* --- persistence guarantee under churn ---------------------------------------- *)

(* While two threads churn an OA-reclaimed list, a third optimistically
   re-reads addresses of nodes that were retired long ago: under palloc
   those reads must never fault, whatever garbage they return. *)
let test_reads_of_freed_memory_never_fault () =
  let nthreads = 3 in
  let sys = mk ~nthreads ~threshold:4 "oa-ver" in
  let list = ref None in
  System.run_on_thread0 sys (fun ctx ->
      let l = System.list_set sys ctx in
      for k = 0 to 63 do
        ignore (Hm_list.insert l ctx k)
      done;
      list := Some l);
  let l = Option.get !list in
  (* delete every key: all 64 nodes get retired and freed *)
  System.run_on_thread0 sys (fun ctx ->
      for k = 0 to 63 do
        ignore (Hm_list.delete l ctx k)
      done);
  for tid = 0 to 1 do
    System.spawn sys ~tid (fun ctx ->
        for k = 0 to 400 do
          ignore (Hm_list.insert l ctx (k mod 64));
          ignore (Hm_list.delete l ctx (k mod 64))
        done)
  done;
  (* thread 2 hammers reads over the first persistent superblock's whole
     address range (pages 1..4, where every node lives under this config)
     while churn frees and reuses it; none of these loads may fault *)
  System.spawn sys ~tid:2 (fun ctx ->
      let vm = System.vmem sys in
      let g = Geometry.default in
      let base = Geometry.addr_of_page g 1 in
      let limit = Geometry.addr_of_page g 5 in
      for round = 0 to 20 do
        let a = ref (base + (round land 1)) in
        while !a < limit do
          ignore (Vmem.load vm ctx !a);
          a := !a + 7
        done;
        Engine.Mem.pause ctx
      done);
  System.run sys;
  check_bool "no segfault during optimistic re-reads" true true

(* --- failure injection: stalled thread with hazard pointers ------------------- *)

let test_stalled_hazard_blocks_only_its_nodes () =
  let sys = mk ~nthreads:2 ~threshold:4 "oa-bit" in
  let sch = System.scheme sys in
  let vm = System.vmem sys in
  let protected_addr = ref 0 in
  System.run_on_thread0 sys (fun ctx ->
      protected_addr := sch.Scheme.alloc ctx Node.words;
      Vmem.store vm ctx !protected_addr 4242);
  (* thread 1 parks a hazard pointer on the node and stalls *)
  System.spawn sys ~tid:1 (fun ctx ->
      sch.Scheme.write_protect ctx ~slot:0 !protected_addr;
      for _ = 1 to 2000 do
        Engine.Mem.pause ctx
      done);
  (* thread 0 retires the protected node plus many others, then drains *)
  System.spawn sys ~tid:0 (fun ctx ->
      sch.Scheme.retire ctx !protected_addr;
      for _ = 1 to 50 do
        let n = sch.Scheme.alloc ctx Node.words in
        sch.Scheme.retire ctx n
      done;
      sch.Scheme.flush ctx);
  System.run sys;
  (* everything except the protected node was freed *)
  check_int "exactly one node still in limbo" 50 sch.Scheme.stats.Scheme.freed;
  check_int "its content is untouched" 4242 (Vmem.peek vm !protected_addr)

(* --- real domains smoke test --------------------------------------------------- *)

(* The vmem layer is domain-safe (atomic entries + atomic words); the engine
   is single-domain by design, so domains use uncosted contexts. *)
let test_vmem_under_real_domains () =
  let g = Geometry.default in
  let vm = Vmem.create ~max_pages:1024 g in
  let ctx = Engine.external_ctx () in
  let addr = Vmem.reserve vm ~npages:4 in
  Vmem.map_anon vm ctx ~vpage:(Geometry.page_of_addr g addr) ~npages:4;
  let n_domains = 4 and incs = 1000 in
  let domains =
    List.init n_domains (fun d ->
        Domain.spawn (fun () ->
            let ctx = Engine.external_ctx ~tid:d () in
            for _ = 1 to incs do
              ignore (Vmem.fetch_and_add vm ctx addr 1)
            done))
  in
  List.iter Domain.join domains;
  check_int "atomic increments across domains" (n_domains * incs)
    (Vmem.peek vm addr)

(* --- long churn footprint boundedness ------------------------------------------ *)

let churn_footprint_bounded scheme () =
  let sys = mk ~nthreads:2 ~threshold:32 scheme in
  let list = ref None in
  System.run_on_thread0 sys (fun ctx ->
      let l = System.list_set sys ctx in
      for k = 0 to 99 do
        ignore (Hm_list.insert l ctx k)
      done;
      list := Some l);
  let l = Option.get !list in
  let peak_early = ref 0 in
  for round = 1 to 8 do
    for tid = 0 to 1 do
      System.spawn sys ~tid (fun ctx ->
          for k = 0 to 99 do
            ignore (Hm_list.delete l ctx ((100 * tid) + k));
            ignore (Hm_list.insert l ctx ((100 * tid) + k))
          done)
    done;
    System.run sys;
    if round = 2 then
      peak_early := (Vmem.frames_peak (System.vmem sys))
  done;
  let peak_late = (Vmem.frames_peak (System.vmem sys)) in
  check_bool
    (Printf.sprintf "%s: footprint flat after warm-up (early %d, late %d)"
       scheme !peak_early peak_late)
    true
    (peak_late <= !peak_early + 4)

let suite =
  List.map
    (fun s -> ("mixed structures (" ^ s ^ ")", `Quick, mixed_structures s))
    Registry.names
  @ [
      ("freed memory reads never fault", `Quick,
       test_reads_of_freed_memory_never_fault);
      ("stalled hazard blocks one node", `Quick,
       test_stalled_hazard_blocks_only_its_nodes);
      ("vmem under real domains", `Quick, test_vmem_under_real_domains);
      ("churn bounded (oa-bit)", `Quick, churn_footprint_bounded "oa-bit");
      ("churn bounded (oa-ver)", `Quick, churn_footprint_bounded "oa-ver");
      ("churn bounded (hp)", `Quick, churn_footprint_bounded "hp");
      ("churn bounded (ebr)", `Quick, churn_footprint_bounded "ebr");
    ]

let () = Alcotest.run "integration" [ ("integration", suite) ]
