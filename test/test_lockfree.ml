(* Tests for the Harris–Michael list and Michael hash table, run under every
   reclamation scheme: sequential semantics against a model, concurrent
   stress with operation accounting, race exploration under randomized
   schedules, and memory-return checks.

   Any optimistic access to genuinely unmapped memory raises
   Vmem.Segfault and fails the test — the simulator doubles as a
   use-after-release detector. *)

open Oamem_engine
open Oamem_core
open Oamem_lockfree
open Oamem_reclaim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let schemes = Registry.names

let mk ?(nthreads = 4) ?(policy = Engine.Min_clock) ?(threshold = 8)
    ?(pool_nodes = 4096) ?(sb_pages = 4) scheme =
  System.create
    (System.Config.make ~nthreads ~policy ~scheme
       ~max_pages:(1 lsl 16)
       ~alloc_cfg:
         { Oamem_lrmalloc.Config.default with Oamem_lrmalloc.Config.sb_pages }
       ~scheme_cfg:
         {
           Scheme.threshold;
           slots_per_thread = Hm_list.slots_needed;
           pool_nodes;
           (* large enough for both set (2-word) and kv (3-word) nodes *)
           node_words = Node.kv_words;
           hazard_padded = true;
           neutralize = true;
         }
       ())

(* --- sequential semantics versus a model ------------------------------------ *)

let sequential_list_semantics scheme () =
  let sys = mk scheme in
  let result = ref [] in
  System.run_on_thread0 sys (fun ctx ->
      let l = System.list_set sys ctx in
      check_bool "insert 5" true (Hm_list.insert l ctx 5);
      check_bool "insert 3" true (Hm_list.insert l ctx 3);
      check_bool "insert 8" true (Hm_list.insert l ctx 8);
      check_bool "duplicate rejected" false (Hm_list.insert l ctx 5);
      check_bool "contains 3" true (Hm_list.contains l ctx 3);
      check_bool "not contains 4" false (Hm_list.contains l ctx 4);
      check_bool "delete 3" true (Hm_list.delete l ctx 3);
      check_bool "delete 3 again" false (Hm_list.delete l ctx 3);
      check_bool "contains 3 gone" false (Hm_list.contains l ctx 3);
      check_bool "reinsert 3" true (Hm_list.insert l ctx 3);
      result := Hm_list.to_list l);
  check_bool "sorted contents" true (!result = [ 3; 5; 8 ])

let sequential_hash_semantics scheme () =
  let sys = mk scheme in
  System.run_on_thread0 sys (fun ctx ->
      let h = System.hash_set sys ctx ~expected_size:64 in
      for k = 1 to 50 do
        check_bool "insert" true (Michael_hash.insert h ctx k)
      done;
      for k = 1 to 50 do
        check_bool "present" true (Michael_hash.contains h ctx k)
      done;
      for k = 1 to 50 do
        if k mod 2 = 0 then check_bool "delete" true (Michael_hash.delete h ctx k)
      done;
      for k = 1 to 50 do
        check_bool "final membership" (k mod 2 = 1) (Michael_hash.contains h ctx k)
      done;
      check_int "size" 25 (Michael_hash.length h))

(* qcheck: random op sequences match Stdlib.Set, for each scheme. *)
module IntSet = Set.Make (Int)

let model_prop scheme =
  QCheck.Test.make
    ~name:(Printf.sprintf "list matches model (%s)" scheme)
    ~count:20
    QCheck.(list (pair (int_bound 2) (int_range 1 20)))
    (fun ops ->
      let sys = mk scheme in
      let ok = ref true in
      System.run_on_thread0 sys (fun ctx ->
          let l = System.list_set sys ctx in
          let model = ref IntSet.empty in
          List.iter
            (fun (op, k) ->
              match op with
              | 0 ->
                  let expected = not (IntSet.mem k !model) in
                  model := IntSet.add k !model;
                  if Hm_list.insert l ctx k <> expected then ok := false
              | 1 ->
                  let expected = IntSet.mem k !model in
                  model := IntSet.remove k !model;
                  if Hm_list.delete l ctx k <> expected then ok := false
              | _ ->
                  if Hm_list.contains l ctx k <> IntSet.mem k !model then
                    ok := false)
            ops;
          if Hm_list.to_list l <> IntSet.elements !model then ok := false);
      !ok)

(* --- concurrent stress with operation accounting ----------------------------- *)

(* Each thread performs a random mix; successful inserts minus successful
   deletes must equal the final size, and the final contents must be a
   subset of the key universe.  Works for every scheme and both policies. *)
let concurrent_stress ?(nthreads = 4) ~policy ~ops_per_thread scheme () =
  let sys = mk ~nthreads ~policy scheme in
  let universe = 64 in
  let list = ref None in
  System.run_on_thread0 sys (fun ctx ->
      let l = System.list_set sys ctx in
      (* prefill every fourth key *)
      for k = 0 to (universe / 4) - 1 do
        ignore (Hm_list.insert l ctx (4 * k))
      done;
      list := Some l);
  let l = Option.get !list in
  let prefill = Hm_list.length l in
  let inserts = Array.make nthreads 0 and deletes = Array.make nthreads 0 in
  for tid = 0 to nthreads - 1 do
    System.spawn sys ~tid (fun ctx ->
        let rng = (Engine.Mem.prng ctx) in
        for _ = 1 to ops_per_thread do
          let k = Prng.int rng universe in
          match Prng.int rng 4 with
          | 0 | 1 -> if Hm_list.insert l ctx k then inserts.(tid) <- inserts.(tid) + 1
          | 2 -> if Hm_list.delete l ctx k then deletes.(tid) <- deletes.(tid) + 1
          | _ -> ignore (Hm_list.contains l ctx k)
        done)
  done;
  System.run sys;
  let total_ins = Array.fold_left ( + ) 0 inserts in
  let total_del = Array.fold_left ( + ) 0 deletes in
  let final = Hm_list.to_list l in
  check_int
    (Printf.sprintf "%s: size arithmetic" scheme)
    (prefill + total_ins - total_del)
    (List.length final);
  check_bool "sorted and unique" true
    (List.sort_uniq compare final = final);
  check_bool "within universe" true
    (List.for_all (fun k -> k >= 0 && k < universe) final)

let concurrent_hash_stress scheme () =
  let nthreads = 4 in
  let sys = mk ~nthreads scheme in
  let universe = 256 in
  let table = ref None in
  System.run_on_thread0 sys (fun ctx ->
      let h = System.hash_set sys ctx ~expected_size:universe in
      for k = 0 to (universe / 2) - 1 do
        ignore (Michael_hash.insert h ctx (2 * k))
      done;
      table := Some h);
  let h = Option.get !table in
  let prefill = Michael_hash.length h in
  let inserts = Array.make nthreads 0 and deletes = Array.make nthreads 0 in
  for tid = 0 to nthreads - 1 do
    System.spawn sys ~tid (fun ctx ->
        let rng = (Engine.Mem.prng ctx) in
        for _ = 1 to 400 do
          let k = Prng.int rng universe in
          match Prng.int rng 4 with
          | 0 | 1 ->
              if Michael_hash.insert h ctx k then inserts.(tid) <- inserts.(tid) + 1
          | 2 ->
              if Michael_hash.delete h ctx k then deletes.(tid) <- deletes.(tid) + 1
          | _ -> ignore (Michael_hash.contains h ctx k)
        done)
  done;
  System.run sys;
  let total_ins = Array.fold_left ( + ) 0 inserts in
  let total_del = Array.fold_left ( + ) 0 deletes in
  check_int
    (Printf.sprintf "%s: hash size arithmetic" scheme)
    (prefill + total_ins - total_del)
    (Michael_hash.length h)

(* Race exploration: many random schedules, smaller op counts. *)
let race_exploration scheme () =
  for seed = 1 to 10 do
    concurrent_stress ~nthreads:3 ~policy:(Engine.Random_order seed)
      ~ops_per_thread:60 scheme ()
  done

(* --- key-value maps ------------------------------------------------------------ *)

let sequential_kv_semantics scheme () =
  let sys = mk scheme in
  System.run_on_thread0 sys (fun ctx ->
      let m = System.list_map sys ctx in
      check_bool "bind 1" true (Hm_list.insert_kv m ctx 1 100);
      check_bool "bind 2" true (Hm_list.insert_kv m ctx 2 200);
      check_bool "rebind rejected" false (Hm_list.insert_kv m ctx 1 111);
      check_bool "lookup 1" true (Hm_list.lookup m ctx 1 = Some 100);
      check_bool "lookup 2" true (Hm_list.lookup m ctx 2 = Some 200);
      check_bool "lookup missing" true (Hm_list.lookup m ctx 3 = None);
      check_bool "replace returns old" true
        (Hm_list.replace m ctx 1 101 = Some 100);
      check_bool "replaced" true (Hm_list.lookup m ctx 1 = Some 101);
      check_bool "replace missing" true (Hm_list.replace m ctx 9 0 = None);
      check_bool "delete" true (Hm_list.delete m ctx 1);
      check_bool "gone" true (Hm_list.lookup m ctx 1 = None))

let sequential_hash_kv scheme () =
  let sys = mk scheme in
  System.run_on_thread0 sys (fun ctx ->
      let m = System.hash_map sys ctx ~expected_size:64 in
      for k = 1 to 40 do
        check_bool "bind" true (Michael_hash.insert_kv m ctx k (10 * k))
      done;
      for k = 1 to 40 do
        check_bool "lookup" true (Michael_hash.lookup m ctx k = Some (10 * k))
      done;
      for k = 1 to 40 do
        if k mod 2 = 0 then
          check_bool "replace" true
            (Michael_hash.replace m ctx k (k + 1) = Some (10 * k))
      done;
      for k = 1 to 40 do
        let expected = if k mod 2 = 0 then Some (k + 1) else Some (10 * k) in
        check_bool "final" true (Michael_hash.lookup m ctx k = expected)
      done)

(* Concurrent replace linearizability: N threads each replace a shared key
   with tagged values; the final value must be one of the tags, and every
   successful replace must have returned a previously-written value. *)
let concurrent_kv_replace scheme () =
  let nthreads = 4 in
  let sys = mk ~nthreads scheme in
  let map = ref None in
  System.run_on_thread0 sys (fun ctx ->
      let m = System.list_map sys ctx in
      ignore (Hm_list.insert_kv m ctx 7 0);
      map := Some m);
  let m = Option.get !map in
  let observed = Array.make nthreads [] in
  for tid = 0 to nthreads - 1 do
    System.spawn sys ~tid (fun ctx ->
        for i = 1 to 50 do
          match Hm_list.replace m ctx 7 (((Engine.Mem.tid ctx) * 1000) + i) with
          | Some old -> observed.(tid) <- old :: observed.(tid)
          | None -> Alcotest.fail "key vanished"
        done)
  done;
  System.run sys;
  (* every observed old value is 0 or some thread's tagged write *)
  Array.iter
    (fun olds ->
      List.iter
        (fun v ->
          check_bool
            (scheme ^ ": observed value was written")
            true
            (v = 0 || (v / 1000 < nthreads && v mod 1000 >= 1 && v mod 1000 <= 50)))
        olds)
    observed;
  (* total successful replaces = nthreads * 50; each returned a distinct
     prior state: the union of observed ++ final covers all writes minus
     the overwritten ones — at minimum, sizes must match *)
  check_int
    (scheme ^ ": every replace returned a value")
    (nthreads * 50)
    (Array.fold_left (fun acc l -> acc + List.length l) 0 observed)

(* qcheck: kv list matches Stdlib Map on random op sequences. *)
module IntMap = Map.Make (Int)

let kv_model_prop scheme =
  QCheck.Test.make
    ~name:(Printf.sprintf "kv list matches model (%s)" scheme)
    ~count:15
    QCheck.(list (pair (int_bound 3) (pair (int_range 1 15) (int_range 0 99))))
    (fun ops ->
      let sys = mk scheme in
      let ok = ref true in
      System.run_on_thread0 sys (fun ctx ->
          let m = System.list_map sys ctx in
          let model = ref IntMap.empty in
          List.iter
            (fun (op, (k, v)) ->
              match op with
              | 0 ->
                  let expected = not (IntMap.mem k !model) in
                  if expected then model := IntMap.add k v !model;
                  if Hm_list.insert_kv m ctx k v <> expected then ok := false
              | 1 ->
                  let expected = IntMap.find_opt k !model in
                  if expected <> None then model := IntMap.add k v !model;
                  if Hm_list.replace m ctx k v <> expected then ok := false
              | 2 ->
                  let expected = IntMap.mem k !model in
                  model := IntMap.remove k !model;
                  if Hm_list.delete m ctx k <> expected then ok := false
              | _ ->
                  if Hm_list.lookup m ctx k <> IntMap.find_opt k !model then
                    ok := false)
            ops);
      !ok)

(* --- memory-return ------------------------------------------------------------ *)

(* After heavy churn and teardown, the OA schemes must hand frames back:
   peak footprint strictly above final footprint. *)
let memory_returns scheme () =
  let sys = mk ~nthreads:2 ~sb_pages:1 scheme in
  System.run_on_thread0 sys (fun ctx ->
      let l = System.list_set sys ctx in
      (* grow, then delete everything, repeatedly *)
      for round = 0 to 2 do
        for k = 0 to 299 do
          ignore (Hm_list.insert l ctx (k + (round * 300)))
        done;
        for k = 0 to 299 do
          ignore (Hm_list.delete l ctx (k + (round * 300)))
        done
      done);
  System.drain sys;
  let u = (System.vmem sys) in
  check_bool
    (Printf.sprintf "%s: frames returned (peak %d, now %d)" scheme
       (Oamem_vmem.Vmem.frames_peak u) (Oamem_vmem.Vmem.frames_live u))
    true
    ((Oamem_vmem.Vmem.frames_live u) < (Oamem_vmem.Vmem.frames_peak u)
    && (Oamem_vmem.Vmem.frames_live u) <= 10)

(* NR, by contrast, must keep growing. *)
let test_nr_leaks () =
  let sys = mk ~nthreads:1 ~sb_pages:1 "nr" in
  System.run_on_thread0 sys (fun ctx ->
      let l = System.list_set sys ctx in
      for k = 0 to 999 do
        ignore (Hm_list.insert l ctx k)
      done;
      for k = 0 to 999 do
        ignore (Hm_list.delete l ctx k)
      done);
  System.drain sys;
  let u = (System.vmem sys) in
  check_bool "nr holds its frames" true
    ((Oamem_vmem.Vmem.frames_live u) >= (Oamem_vmem.Vmem.frames_peak u) - 2)

(* The OA schemes' frees flow back through palloc: churn must not grow the
   footprint without bound (reuse across the whole process, §3.1). *)
let churn_bounded scheme () =
  let sys = mk ~nthreads:2 ~threshold:16 scheme in
  let peak_after_warmup = ref 0 in
  System.run_on_thread0 sys (fun ctx ->
      let l = System.list_set sys ctx in
      for k = 0 to 63 do
        ignore (Hm_list.insert l ctx k)
      done;
      for round = 1 to 10 do
        for k = 0 to 63 do
          ignore (Hm_list.delete l ctx k);
          ignore (Hm_list.insert l ctx k)
        done;
        if round = 2 then
          peak_after_warmup := (Oamem_vmem.Vmem.frames_peak (System.vmem sys))
      done);
  let u = (System.vmem sys) in
  check_bool
    (Printf.sprintf "%s: churn does not grow footprint" scheme)
    true
    ((Oamem_vmem.Vmem.frames_peak u) <= !peak_after_warmup + 4)

let per_scheme name f = List.map (fun s -> (Printf.sprintf "%s (%s)" name s, `Quick, f s)) schemes

let suite =
  per_scheme "sequential list" (fun s -> sequential_list_semantics s)
  @ per_scheme "sequential hash" (fun s -> sequential_hash_semantics s)
  @ per_scheme "concurrent list" (fun s ->
        concurrent_stress ~policy:Engine.Min_clock ~ops_per_thread:300 s)
  @ per_scheme "concurrent hash" (fun s -> concurrent_hash_stress s)
  @ per_scheme "race exploration" (fun s -> race_exploration s)
  @ per_scheme "kv list sequential" (fun s -> sequential_kv_semantics s)
  @ per_scheme "kv hash sequential" (fun s -> sequential_hash_kv s)
  @ per_scheme "kv concurrent replace" (fun s -> concurrent_kv_replace s)
  @ [
      ("memory returns (oa-bit)", `Quick, memory_returns "oa-bit");
      ("memory returns (oa-ver)", `Quick, memory_returns "oa-ver");
      ("memory returns (hp)", `Quick, memory_returns "hp");
      ("memory returns (ebr)", `Quick, memory_returns "ebr");
      ("nr leaks", `Quick, test_nr_leaks);
      ("churn bounded (oa-bit)", `Quick, churn_bounded "oa-bit");
      ("churn bounded (oa-ver)", `Quick, churn_bounded "oa-ver");
    ]
  @ List.map QCheck_alcotest.to_alcotest (List.map model_prop schemes)
  @ List.map QCheck_alcotest.to_alcotest (List.map kv_model_prop schemes)

let () = Alcotest.run "lockfree" [ ("lockfree", suite) ]
