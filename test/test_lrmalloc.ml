(* Tests for the LRMalloc port: size classes, descriptors, pagemap,
   descriptor lists, malloc/free/palloc, superblock lifecycle (Fig. 2),
   persistence guarantees and the remap strategies. *)

open Oamem_engine
open Oamem_vmem
open Oamem_lrmalloc

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let g = Geometry.default
let ctx = Engine.external_ctx ()

let mk ?(remap = Config.Madvise) ?(sb_pages = 4) ?(nthreads = 4)
    ?(shared_region_pages = 1) () =
  let vm = Vmem.create ~max_pages:65536 ~shared_region_pages g in
  let meta = Cell.heap g in
  let cfg = { Config.default with Config.sb_pages; remap } in
  Lrmalloc.create ~cfg ~vmem:vm ~meta ~nthreads ()

(* --- Size classes ---------------------------------------------------------- *)

let test_size_class_lookup () =
  let c = Size_class.default in
  check_bool "size 1 -> class of 2" true (Size_class.of_size c 1 = Some 0);
  check_bool "size 2 -> class of 2" true (Size_class.of_size c 2 = Some 0);
  check_bool "size 3 -> class of 4" true (Size_class.of_size c 3 = Some 1);
  check_bool "max size fits" true (Size_class.of_size c 2048 <> None);
  check_bool "above max is large" true (Size_class.of_size c 2049 = None)

let test_size_class_validation () =
  Alcotest.check_raises "odd rejected"
    (Invalid_argument "Size_class.make: sizes must be even and >= 2")
    (fun () -> ignore (Size_class.make [ 3 ]))

let size_class_sound_prop =
  QCheck.Test.make ~name:"size class covers request minimally" ~count:500
    QCheck.(int_range 1 2048)
    (fun size ->
      let c = Size_class.default in
      match Size_class.of_size c size with
      | None -> false
      | Some cls ->
          let bw = Size_class.block_words c cls in
          bw >= size && (cls = 0 || Size_class.block_words c (cls - 1) < size))

let size_class_even_prop =
  QCheck.Test.make ~name:"all class sizes are even" ~count:100
    QCheck.(int_range 0 (Size_class.count Size_class.default - 1))
    (fun cls -> Size_class.block_words Size_class.default cls land 1 = 0)

(* --- Descriptor anchor ----------------------------------------------------- *)

let anchor_roundtrip_prop =
  QCheck.Test.make ~name:"anchor pack/unpack roundtrip" ~count:500
    QCheck.(quad (int_bound 2) (int_bound 100000) (int_bound 100000)
              (int_bound 100000))
    (fun (s, avail, count, tag) ->
      let a =
        {
          Descriptor.state =
            (match s with 0 -> Descriptor.Full | 1 -> Descriptor.Partial
            | _ -> Descriptor.Empty);
          avail;
          count;
          tag;
        }
      in
      Descriptor.unpack (Descriptor.pack a) = a)

let test_descriptor_block_addr () =
  let meta = Cell.heap g in
  let d = Descriptor.make meta ~id:0 in
  d.Descriptor.sb_start <- 1024;
  d.Descriptor.block_words <- 4;
  d.Descriptor.max_count <- 8;
  check_int "block 0" 1024 (Descriptor.block_addr d 0);
  check_int "block 3" 1036 (Descriptor.block_addr d 3);
  check_int "index" 3 (Descriptor.block_index d 1036)

(* --- Desc_list ------------------------------------------------------------- *)

let test_desc_list_lifo () =
  let meta = Cell.heap g in
  let descs = Array.init 4 (fun id -> Descriptor.make meta ~id) in
  let l = Desc_list.create meta ~get:(fun id -> descs.(id)) in
  check_bool "empty" true (Desc_list.pop l ctx = None);
  Desc_list.push l ctx descs.(0);
  Desc_list.push l ctx descs.(1);
  Desc_list.push l ctx descs.(2);
  check_bool "ids" true (Desc_list.peek_ids l = [ 2; 1; 0 ]);
  check_bool "pop 2" true
    (match Desc_list.pop l ctx with Some d -> d.Descriptor.id = 2 | None -> false);
  check_bool "pop 1" true
    (match Desc_list.pop l ctx with Some d -> d.Descriptor.id = 1 | None -> false);
  Desc_list.push l ctx descs.(3);
  check_bool "pop 3" true
    (match Desc_list.pop l ctx with Some d -> d.Descriptor.id = 3 | None -> false);
  check_bool "pop 0" true
    (match Desc_list.pop l ctx with Some d -> d.Descriptor.id = 0 | None -> false);
  check_bool "empty again" true (Desc_list.pop l ctx = None)

(* --- malloc/free basics ---------------------------------------------------- *)

let test_malloc_distinct_and_writable () =
  let a = mk () in
  let vm = Lrmalloc.vmem a in
  let blocks = List.init 50 (fun _ -> Lrmalloc.malloc a ctx 3) in
  let uniq = List.sort_uniq compare blocks in
  check_int "all distinct" 50 (List.length uniq);
  List.iteri (fun i b -> Vmem.store vm ctx b (1000 + i)) blocks;
  List.iteri (fun i b -> check_int "readback" (1000 + i) (Vmem.load vm ctx b))
    blocks;
  List.iter (fun b -> check_int "even address" 0 (b land 1)) blocks

let test_malloc_reuses_freed () =
  let a = mk () in
  let b1 = Lrmalloc.malloc a ctx 8 in
  Lrmalloc.free a ctx b1;
  let b2 = Lrmalloc.malloc a ctx 8 in
  check_int "lifo cache reuse" b1 b2

let test_malloc_size_class_isolation () =
  let a = mk () in
  let small = Lrmalloc.malloc a ctx 2 in
  let big = Lrmalloc.malloc a ctx 100 in
  let d1 = Heap.lookup_desc (Lrmalloc.heap a) ctx small |> Option.get in
  let d2 = Heap.lookup_desc (Lrmalloc.heap a) ctx big |> Option.get in
  check_bool "different superblocks" true (d1.Descriptor.id <> d2.Descriptor.id);
  check_bool "classes differ" true
    (d1.Descriptor.size_class <> d2.Descriptor.size_class)

let test_free_unknown_rejected () =
  let a = mk () in
  Alcotest.check_raises "bogus free"
    (Invalid_argument "Lrmalloc.free: not an allocated block") (fun () ->
      Lrmalloc.free a ctx 424242)

let test_palloc_and_malloc_never_share_superblocks () =
  let a = mk () in
  let m = Lrmalloc.malloc a ctx 8 in
  let p = Lrmalloc.palloc a ctx 8 in
  let dm = Heap.lookup_desc (Lrmalloc.heap a) ctx m |> Option.get in
  let dp = Heap.lookup_desc (Lrmalloc.heap a) ctx p |> Option.get in
  check_bool "separate descs" true (dm.Descriptor.id <> dp.Descriptor.id);
  check_bool "persistent marked" true dp.Descriptor.persistent;
  check_bool "regular unmarked" false dm.Descriptor.persistent

let test_palloc_large_rejected () =
  let a = mk () in
  Alcotest.check_raises "palloc large"
    (Invalid_argument
       "Lrmalloc.palloc: persistent allocation is restricted to size-class \
        sizes (paper, section 4)") (fun () -> ignore (Lrmalloc.palloc a ctx 5000))

(* --- superblock lifecycle (Fig. 2) ----------------------------------------- *)

(* Allocate every block of one fresh superblock of class [cls]. *)
let grab_superblock a cls_size =
  let heap = Lrmalloc.heap a in
  let first = Lrmalloc.malloc a ctx cls_size in
  let d = Heap.lookup_desc heap ctx first |> Option.get in
  let rest =
    List.init (d.Descriptor.max_count - 1) (fun _ -> Lrmalloc.malloc a ctx cls_size)
  in
  (d, first :: rest)

let test_superblock_states () =
  let a = mk ~sb_pages:1 () in
  (* class of 512 words in a 512-word superblock: max_count = 1 is too
     degenerate; use 128-word blocks -> 4 blocks *)
  let d, blocks = grab_superblock a 128 in
  check_int "4 blocks" 4 d.Descriptor.max_count;
  check_bool "born full" true
    ((Descriptor.peek_anchor d).Descriptor.state = Descriptor.Full);
  (* free one block and flush the cache: superblock becomes partial *)
  (match blocks with
  | b :: _ ->
      Lrmalloc.free a ctx b;
      Lrmalloc.flush_thread_cache a ctx
  | [] -> assert false);
  check_bool "partial after one free" true
    ((Descriptor.peek_anchor d).Descriptor.state = Descriptor.Partial);
  check_int "one free block" 1 (Descriptor.peek_anchor d).Descriptor.count

let test_nonpersistent_empty_superblock_unmapped () =
  let a = mk () in
  let vm = Lrmalloc.vmem a in
  let d, blocks = grab_superblock a 512 in
  List.iter (fun b -> Vmem.store vm ctx b 7) blocks;
  let live_before = (Vmem.frames_live vm) in
  check_bool "frames in use" true (live_before > 1);
  List.iter (fun b -> Lrmalloc.free a ctx b) blocks;
  Lrmalloc.flush_thread_cache a ctx;
  Heap.trim (Lrmalloc.heap a) ctx;
  check_bool "released" true ((Lrmalloc.stats a).Heap.sb_released >= 1);
  check_bool "frames freed" true ((Vmem.frames_live vm) < live_before);
  (* the range is gone: reads fault *)
  check_bool "unmapped" false (Vmem.mapped vm d.Descriptor.sb_start)

let test_persistent_madvise_releases_but_stays_readable () =
  let a = mk ~remap:Config.Madvise () in
  let vm = Lrmalloc.vmem a in
  let heap = Lrmalloc.heap a in
  let first = Lrmalloc.palloc a ctx 512 in
  let d = Heap.lookup_desc heap ctx first |> Option.get in
  let blocks =
    first :: List.init (d.Descriptor.max_count - 1) (fun _ -> Lrmalloc.palloc a ctx 512)
  in
  List.iter (fun b -> Vmem.store vm ctx b 9) blocks;
  let live_before = (Vmem.frames_live vm) in
  List.iter (fun b -> Lrmalloc.free a ctx b) blocks;
  Lrmalloc.flush_thread_cache a ctx;
  Heap.trim heap ctx;
  check_bool "remapped" true ((Lrmalloc.stats a).Heap.sb_remapped >= 1);
  check_bool "frames freed" true
    ((Vmem.frames_live vm) < live_before);
  (* the paper's guarantee: freed persistent memory is still readable *)
  List.iter (fun b -> check_int "reads zero after release" 0 (Vmem.load vm ctx b))
    blocks

let test_persistent_keep_resident_never_releases () =
  let a = mk ~remap:Config.Keep_resident () in
  let vm = Lrmalloc.vmem a in
  let heap = Lrmalloc.heap a in
  let first = Lrmalloc.palloc a ctx 512 in
  let d = Heap.lookup_desc heap ctx first |> Option.get in
  let blocks =
    first :: List.init (d.Descriptor.max_count - 1) (fun _ -> Lrmalloc.palloc a ctx 512)
  in
  List.iter (fun b -> Vmem.store vm ctx b 5) blocks;
  let live_before = (Vmem.frames_live vm) in
  List.iter (fun b -> Lrmalloc.free a ctx b) blocks;
  Lrmalloc.flush_thread_cache a ctx;
  Heap.trim heap ctx;
  check_int "nothing remapped" 0 (Lrmalloc.stats a).Heap.sb_remapped;
  check_int "frames keep resident" live_before (Vmem.frames_live vm);
  (* still readable (no content guarantee: the free list reuses the blocks) *)
  List.iter (fun b -> ignore (Vmem.load vm ctx b)) blocks;
  (* and the blocks are still allocatable: superblock stayed partial *)
  let again = Lrmalloc.palloc a ctx 512 in
  let d' = Heap.lookup_desc heap ctx again |> Option.get in
  check_int "same superblock reused" d.Descriptor.id d'.Descriptor.id

let test_persistent_shared_map_aliases_and_inflates_rss () =
  let a = mk ~remap:Config.Shared_map () in
  let vm = Lrmalloc.vmem a in
  let heap = Lrmalloc.heap a in
  let first = Lrmalloc.palloc a ctx 512 in
  let d = Heap.lookup_desc heap ctx first |> Option.get in
  let blocks =
    first :: List.init (d.Descriptor.max_count - 1) (fun _ -> Lrmalloc.palloc a ctx 512)
  in
  List.iter (fun b -> Vmem.store vm ctx b 5) blocks;
  let live_before = Vmem.frames_live vm in
  List.iter (fun b -> Lrmalloc.free a ctx b) blocks;
  Lrmalloc.flush_thread_cache a ctx;
  Heap.trim heap ctx;
  check_bool "frames freed" true (Vmem.frames_live vm < live_before);
  let rss_after = Vmem.linux_rss_pages vm in
  (* still readable *)
  List.iter (fun b -> ignore (Vmem.load vm ctx b)) blocks;
  (* Linux RSS still counts the remapped pages (the haywire stat of §3.2) *)
  check_bool "linux rss inflated" true (rss_after >= d.Descriptor.pages)

let test_persistent_range_recycled_by_priority () =
  let a = mk ~remap:Config.Madvise () in
  let heap = Lrmalloc.heap a in
  let first = Lrmalloc.palloc a ctx 512 in
  let d = Heap.lookup_desc heap ctx first |> Option.get in
  let range = d.Descriptor.sb_start in
  let blocks =
    first :: List.init (d.Descriptor.max_count - 1) (fun _ -> Lrmalloc.palloc a ctx 512)
  in
  List.iter (fun b -> Lrmalloc.free a ctx b) blocks;
  Lrmalloc.flush_thread_cache a ctx;
  Heap.trim heap ctx;
  check_int "descriptor in persistent pool" 1 (Heap.persistent_pool_size heap);
  (* the next superblock — even of a different class, even non-persistent —
     must reuse the recycled virtual range first (§4 priority) *)
  let b = Lrmalloc.malloc a ctx 96 in
  let d' = Heap.lookup_desc heap ctx b |> Option.get in
  check_int "range reused" range d'.Descriptor.sb_start;
  check_bool "stat counted" true ((Lrmalloc.stats a).Heap.sb_range_reused >= 1)

(* --- large allocations ------------------------------------------------------ *)

let test_large_alloc_roundtrip () =
  let a = mk () in
  let vm = Lrmalloc.vmem a in
  let size = 3000 in
  let addr = Lrmalloc.malloc a ctx size in
  Vmem.store vm ctx (addr + size - 1) 77;
  check_int "writable to the end" 77 (Vmem.load vm ctx (addr + size - 1));
  check_int "large stat" 1 (Lrmalloc.stats a).Heap.large_allocs;
  let live = (Vmem.frames_live vm) in
  Lrmalloc.free a ctx addr;
  check_bool "frames released" true ((Vmem.frames_live vm) < live);
  check_bool "unmapped after free" false (Vmem.mapped vm addr);
  check_int "free stat" 1 (Lrmalloc.stats a).Heap.large_frees

let test_large_allocs_disjoint () =
  let a = mk () in
  let x = Lrmalloc.malloc a ctx 4000 in
  let y = Lrmalloc.malloc a ctx 4000 in
  check_bool "disjoint" true (abs (x - y) >= 4000)

(* --- cache behaviour -------------------------------------------------------- *)

let test_cache_flush_makes_blocks_shareable () =
  (* blocks freed by thread 0 and flushed must be allocatable by thread 1 *)
  let a = mk ~nthreads:2 () in
  let eng = Engine.create ~nthreads:2 () in
  let b0 = ref 0 in
  Engine.spawn eng ~tid:0 (fun c ->
      b0 := Lrmalloc.palloc a c 512;
      Lrmalloc.free a c !b0;
      Lrmalloc.flush_thread_cache a c);
  Engine.run eng;
  let got = ref [] in
  Engine.spawn eng ~tid:1 (fun c ->
      (* allocate enough to exhaust fresh fills and reach the shared heap *)
      for _ = 1 to 8 do
        got := Lrmalloc.palloc a c 512 :: !got
      done);
  Engine.run eng;
  check_bool "thread 1 sees thread 0's block" true (List.mem !b0 !got)

(* --- concurrent allocator stress (simulated threads) ------------------------ *)

let test_concurrent_no_double_allocation () =
  let nthreads = 4 in
  let a = mk ~nthreads () in
  let eng = Engine.create ~nthreads () in
  let vm = Lrmalloc.vmem a in
  let errors = Atomic.make 0 in
  for tid = 0 to nthreads - 1 do
    Engine.spawn eng ~tid (fun c ->
        let live = ref [] in
        let rng = (Engine.Mem.prng c) in
        for _ = 1 to 300 do
          if Prng.bool rng || !live = [] then begin
            let size = 2 + Prng.int rng 60 in
            let b = Lrmalloc.malloc a c size in
            (* stamp ownership; a double allocation would overwrite *)
            Vmem.store vm c b (((Engine.Mem.tid c) lsl 20) lor List.length !live);
            live := (b, ((Engine.Mem.tid c) lsl 20) lor List.length !live) :: !live
          end
          else
            match !live with
            | (b, stamp) :: rest ->
                if Vmem.load vm c b <> stamp then Atomic.incr errors;
                Lrmalloc.free a c b;
                live := rest
            | [] -> ()
        done;
        List.iter (fun (b, _) -> Lrmalloc.free a c b) !live)
  done;
  Engine.run eng;
  check_int "no stamp corruption" 0 (Atomic.get errors)

let test_all_memory_returns_after_full_teardown () =
  let nthreads = 3 in
  let a = mk ~nthreads () in
  let vm = Lrmalloc.vmem a in
  let eng = Engine.create ~nthreads () in
  let baseline = (Vmem.frames_live vm) in
  for tid = 0 to nthreads - 1 do
    Engine.spawn eng ~tid (fun c ->
        let blocks = List.init 100 (fun i -> Lrmalloc.malloc a c (2 + (i mod 50))) in
        List.iter (fun b -> Vmem.store vm c b 1) blocks;
        List.iter (fun b -> Lrmalloc.free a c b) blocks;
        Lrmalloc.flush_thread_cache a c)
  done;
  Engine.run eng;
  Heap.trim (Lrmalloc.heap a) (Engine.external_ctx ());
  (* all non-persistent superblocks must be gone *)
  check_int "frames back to baseline" baseline (Vmem.frames_live vm)

(* Model-based property: random alloc/free, live blocks never overlap. *)
let no_overlap_prop =
  QCheck.Test.make ~name:"live allocations never overlap" ~count:20
    QCheck.(list (pair bool (int_range 1 300)))
    (fun ops ->
      let a = mk () in
      let live = Hashtbl.create 64 in
      let overlaps addr size =
        Hashtbl.fold
          (fun a' s' acc -> acc || (addr < a' + s' && a' < addr + size))
          live false
      in
      List.for_all
        (fun (is_alloc, size) ->
          if is_alloc || Hashtbl.length live = 0 then begin
            let cls_size =
              match Size_class.of_size Size_class.default size with
              | Some c -> Size_class.block_words Size_class.default c
              | None -> size
            in
            let b = Lrmalloc.malloc a ctx size in
            let ok = not (overlaps b cls_size) in
            Hashtbl.replace live b cls_size;
            ok
          end
          else begin
            let k = Hashtbl.fold (fun k _ _ -> k) live 0 in
            Lrmalloc.free a ctx k;
            Hashtbl.remove live k;
            true
          end)
        ops)

(* THE paper property: any address ever returned by palloc stays readable
   (mapped) for the rest of the process lifetime, through any sequence of
   frees, cache flushes and trims, under every remap strategy. *)
let palloc_always_readable_prop =
  QCheck.Test.make ~name:"palloc'd addresses stay readable forever" ~count:30
    QCheck.(
      pair (int_bound 2)
        (list (pair (int_bound 3) (int_range 2 400))))
    (fun (strategy, ops) ->
      let remap =
        match strategy with
        | 0 -> Config.Keep_resident
        | 1 -> Config.Madvise
        | _ -> Config.Shared_map
      in
      let a = mk ~remap () in
      let vm = Lrmalloc.vmem a in
      let live = ref [] in
      let ever = ref [] in
      let readable () =
        List.for_all (fun addr -> Vmem.mapped vm addr) !ever
      in
      List.for_all
        (fun (op, size) ->
          (match op with
          | 0 ->
              let b = Lrmalloc.palloc a ctx (min size 2048) in
              live := b :: !live;
              ever := b :: !ever
          | 1 -> (
              match !live with
              | b :: rest ->
                  Lrmalloc.free a ctx b;
                  live := rest
              | [] -> ())
          | 2 -> Lrmalloc.flush_thread_cache a ctx
          | _ -> Heap.trim (Lrmalloc.heap a) ctx);
          readable ())
        ops)

let suite =
  [
    ("size class lookup", `Quick, test_size_class_lookup);
    ("size class validation", `Quick, test_size_class_validation);
    ("descriptor block addr", `Quick, test_descriptor_block_addr);
    ("desc list lifo", `Quick, test_desc_list_lifo);
    ("malloc distinct/writable", `Quick, test_malloc_distinct_and_writable);
    ("malloc reuses freed", `Quick, test_malloc_reuses_freed);
    ("size class isolation", `Quick, test_malloc_size_class_isolation);
    ("free unknown rejected", `Quick, test_free_unknown_rejected);
    ("palloc/malloc separate", `Quick,
     test_palloc_and_malloc_never_share_superblocks);
    ("palloc large rejected", `Quick, test_palloc_large_rejected);
    ("superblock states", `Quick, test_superblock_states);
    ("non-persistent empty unmapped", `Quick,
     test_nonpersistent_empty_superblock_unmapped);
    ("persistent madvise readable", `Quick,
     test_persistent_madvise_releases_but_stays_readable);
    ("persistent keep resident", `Quick,
     test_persistent_keep_resident_never_releases);
    ("persistent shared map", `Quick,
     test_persistent_shared_map_aliases_and_inflates_rss);
    ("persistent range recycled", `Quick,
     test_persistent_range_recycled_by_priority);
    ("large alloc roundtrip", `Quick, test_large_alloc_roundtrip);
    ("large allocs disjoint", `Quick, test_large_allocs_disjoint);
    ("cache flush shares blocks", `Quick, test_cache_flush_makes_blocks_shareable);
    ("concurrent no double alloc", `Quick, test_concurrent_no_double_allocation);
    ("teardown returns memory", `Quick, test_all_memory_returns_after_full_teardown);
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        size_class_sound_prop;
        size_class_even_prop;
        anchor_roundtrip_prop;
        no_overlap_prop;
        palloc_always_readable_prop;
      ]

let () = Alcotest.run "lrmalloc" [ ("lrmalloc", suite) ]
