(* Tests for the observability layer: the trace ring buffers, the metrics
   registry, the JSON/Chrome-trace exporters, and the redesigned System
   metrics API (snapshot agreement with the per-subsystem stats records, and
   the reset_measurement regression: a post-reset snapshot must be zeroed). *)

open Oamem_engine
open Oamem_core
open Oamem_lockfree
open Oamem_reclaim
module Trace = Oamem_obs.Trace
module Metrics = Oamem_obs.Metrics
module Json = Oamem_obs.Json
module Export = Oamem_obs.Export

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mk ?(nthreads = 4) ?(trace = false) scheme =
  System.create
    (System.Config.make ~nthreads ~scheme
       ~max_pages:(1 lsl 16)
       ~scheme_cfg:
         {
           Scheme.default_config with
           Scheme.threshold = 8;
           slots_per_thread = Hm_list.slots_needed;
         }
       ~trace ())

(* Drive a short multi-thread churn so every subsystem emits something. *)
let churn ?(nthreads = 4) sys =
  let set = ref None in
  System.run_on_thread0 sys (fun ctx ->
      let s = System.list_set sys ctx in
      for k = 0 to 31 do
        ignore (Hm_list.insert s ctx k)
      done;
      set := Some s);
  let s = Option.get !set in
  for tid = 0 to nthreads - 1 do
    System.spawn sys ~tid (fun ctx ->
        for k = 0 to 63 do
          ignore (Hm_list.delete s ctx ((16 * tid) + (k mod 16)));
          ignore (Hm_list.insert s ctx ((16 * tid) + (k mod 16)))
        done)
  done;
  System.run sys

(* --- trace --------------------------------------------------------------- *)

let test_trace_basic () =
  let tr = Trace.create ~capacity:16 ~nthreads:2 () in
  check_bool "disabled by default" false (Trace.enabled tr);
  Trace.emit tr ~tid:0 ~at:1 Trace.Restart;
  check_int "emit while disabled drops" 0 (Trace.recorded tr);
  Trace.set_enabled tr true;
  Trace.emit tr ~tid:0 ~at:1 Trace.Restart;
  Trace.emit tr ~tid:1 ~at:2 (Trace.Alloc { addr = 64; words = 2 });
  Trace.emit tr ~tid:99 ~at:3 Trace.Restart;
  check_int "out-of-range tid ignored" 2 (Trace.recorded tr);
  Trace.clear tr;
  check_int "clear drops everything" 0 (Trace.recorded tr)

let test_trace_ring_wraps () =
  let tr = Trace.create ~capacity:8 ~nthreads:1 () in
  Trace.set_enabled tr true;
  for i = 1 to 20 do
    Trace.emit tr ~tid:0 ~at:i Trace.Restart
  done;
  check_int "ring keeps capacity" 8 (Trace.recorded tr);
  check_int "ring counts drops" 12 (Trace.dropped tr);
  match Trace.thread_events tr ~tid:0 with
  | [] -> Alcotest.fail "ring empty"
  | e :: _ -> check_int "oldest survivor" 13 e.Trace.at

let test_trace_per_thread_monotone () =
  let sys = mk ~trace:true "oa-ver" in
  churn sys;
  let tr = System.trace sys in
  check_bool "events recorded" true (Trace.recorded tr > 0);
  for tid = 0 to System.nthreads sys - 1 do
    let es = Trace.thread_events tr ~tid in
    check_bool
      (Printf.sprintf "thread %d has events" tid)
      true (es <> []);
    ignore
      (List.fold_left
         (fun prev e ->
           check_bool
             (Printf.sprintf "tid %d monotone at %d" tid e.Trace.at)
             true
             (e.Trace.at >= prev);
           e.Trace.at)
         min_int es)
  done;
  (* the merged view is sorted by (at, tid) *)
  ignore
    (List.fold_left
       (fun (pat, ptid) e ->
         check_bool "merged sorted" true
           (e.Trace.at > pat || (e.Trace.at = pat && e.Trace.tid >= ptid));
         (e.Trace.at, e.Trace.tid))
       (min_int, min_int)
       (Trace.events tr))

let test_disabled_trace_allocates_nothing () =
  let tr = Trace.create ~capacity:64 ~nthreads:1 () in
  (* warm up the call path, then measure: the guarded emit pattern every
     subsystem uses must not allocate when tracing is off *)
  let emit_guarded () =
    if Trace.enabled tr then
      Trace.emit tr ~tid:0 ~at:0 (Trace.Alloc { addr = 0; words = 2 })
  in
  emit_guarded ();
  let before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    emit_guarded ()
  done;
  let allocated = Gc.minor_words () -. before in
  check_bool
    (Printf.sprintf "disabled emit allocates nothing (%.0f words)" allocated)
    true (allocated < 64.)

(* --- metrics registry ---------------------------------------------------- *)

let test_metrics_registry () =
  let m = Metrics.create () in
  let c = ref 0 in
  Metrics.register m ~reset:(fun () -> c := 0) ~name:"sub.count"
    ~kind:Metrics.Counter (fun () -> !c);
  Metrics.register m ~name:"sub.gauge" ~kind:Metrics.Gauge (fun () -> 42);
  (try
     Metrics.register m ~name:"sub.count" ~kind:Metrics.Counter (fun () -> 0);
     Alcotest.fail "duplicate name accepted"
   with Invalid_argument _ -> ());
  c := 7;
  let s = Metrics.snapshot m in
  check_int "counter read" 7 (Metrics.find s "sub.count");
  check_int "gauge read" 42 (Metrics.find s "sub.gauge");
  let h = Metrics.histogram m "sub.hist" in
  Metrics.observe h 3;
  Metrics.observe h 300;
  let s = Metrics.snapshot m in
  (match s.Metrics.histograms with
  | [ hs ] ->
      check_int "hist count" 2 hs.Metrics.count;
      check_int "hist sum" 303 hs.Metrics.sum;
      check_int "hist max" 300 hs.Metrics.max_value
  | _ -> Alcotest.fail "expected one histogram");
  Metrics.reset m;
  let s = Metrics.snapshot m in
  check_int "counter reset" 0 (Metrics.find s "sub.count");
  check_int "gauge survives reset" 42 (Metrics.find s "sub.gauge");
  match s.Metrics.histograms with
  | [ hs ] -> check_int "hist reset" 0 hs.Metrics.count
  | _ -> Alcotest.fail "expected one histogram"

(* --- JSON ----------------------------------------------------------------- *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("a", Json.Int 3);
        ("b", Json.String "x\"y\\z");
        ("c", Json.List [ Json.Bool true; Json.Null; Json.Float 1.5 ]);
      ]
  in
  let s = Json.to_string doc in
  let back = Json.parse s in
  check_int "int field" 3 Json.(to_int (member "a" back));
  check_bool "string field" true
    (Json.(to_str (member "b" back)) = "x\"y\\z");
  check_int "list length" 3 (List.length Json.(to_list (member "c" back)));
  (try
     ignore (Json.parse "{\"a\": 1} trailing");
     Alcotest.fail "trailing garbage accepted"
   with Json.Parse_error _ -> ())

(* --- Chrome trace export -------------------------------------------------- *)

let test_chrome_export_roundtrips_counts () =
  let sys = mk ~trace:true "oa-ver" in
  churn sys;
  let tr = System.trace sys in
  let recorded = Trace.recorded tr in
  check_bool "something to export" true (recorded > 0);
  let doc = Export.chrome_trace tr in
  (* round-trip through the wire format *)
  let back = Json.parse (Json.to_string doc) in
  let evs = Json.(to_list (member "traceEvents" back)) in
  let is_meta e = Json.(to_str (member "ph" e)) = "M" in
  let data_events = List.filter (fun e -> not (is_meta e)) evs in
  check_int "one JSON event per buffered trace event" recorded
    (List.length data_events);
  (* every live thread appears *)
  let tids =
    List.sort_uniq compare
      (List.map (fun e -> Json.(to_int (member "tid" e))) data_events)
  in
  check_bool "at least one event per live thread" true
    (List.length tids >= System.nthreads sys)

(* --- the redesigned System metrics API ------------------------------------ *)

let test_system_metrics_agree_with_subsystems () =
  let sys = mk "oa-bit" in
  churn sys;
  let m = System.metrics sys in
  (* the snapshot must read the same underlying per-subsystem counters *)
  let ss = (System.scheme sys).Scheme.stats in
  let es = Engine.stats (System.engine sys) in
  let u = (System.vmem sys) in
  let hs = Oamem_lrmalloc.Lrmalloc.stats (System.alloc sys) in
  check_int "scheme.retired" ss.Scheme.retired
    (Metrics.find m "scheme.retired");
  check_int "scheme.restarts" ss.Scheme.restarts
    (Metrics.find m "scheme.restarts");
  check_int "scheme.warnings_fired" ss.Scheme.warnings_fired
    (Metrics.find m "scheme.warnings_fired");
  check_int "engine.accesses" es.Engine.accesses
    (Metrics.find m "engine.accesses");
  check_int "engine.syscalls" es.Engine.syscalls
    (Metrics.find m "engine.syscalls");
  check_int "vmem.frames_live" (Oamem_vmem.Vmem.frames_live u)
    (Metrics.find m "vmem.frames_live");
  check_int "vmem.frames_peak" (Oamem_vmem.Vmem.frames_peak u)
    (Metrics.find m "vmem.frames_peak");
  check_int "alloc.sb_fresh" hs.Oamem_lrmalloc.Heap.sb_fresh
    (Metrics.find m "alloc.sb_fresh")

let test_reset_measurement_zeroes_snapshot () =
  let sys = mk ~trace:true "oa-ver" in
  churn sys;
  let before = System.metrics sys in
  check_bool "pre-reset counters nonzero" true
    (Metrics.find before "scheme.retired" > 0
    && Metrics.find before "engine.accesses" > 0);
  check_bool "pre-reset trace nonempty" true
    (Trace.recorded (System.trace sys) > 0);
  System.reset_measurement sys;
  let s = System.metrics sys in
  List.iter
    (fun (name, kind, v) ->
      if kind = Metrics.Counter then
        check_int (Printf.sprintf "post-reset %s zeroed" name) 0 v)
    s.Metrics.values;
  List.iter
    (fun hs ->
      check_int
        (Printf.sprintf "post-reset histogram %s zeroed" hs.Metrics.hname)
        0 hs.Metrics.count)
    s.Metrics.histograms;
  check_int "post-reset trace empty" 0 (Trace.recorded (System.trace sys));
  (* gauges (instantaneous state) are deliberately untouched *)
  check_bool "frames still live" true (Metrics.find s "vmem.frames_live" > 0)

let test_metrics_export_has_required_counters () =
  let sys = mk "oa-ver" in
  churn sys;
  let doc = Export.metrics_json (System.metrics sys) in
  let back = Json.parse (Json.to_string doc) in
  let counters = Json.member "counters" back in
  List.iter
    (fun name ->
      check_bool (Printf.sprintf "counter %s present" name) true
        (Json.member name counters <> Json.Null))
    [
      "scheme.warnings_fired"; "scheme.restarts"; "vmem.frames_released";
      "engine.accesses"; "alloc.sb_fresh";
    ]

let test_unused_histograms_omitted_from_export () =
  let reg = Metrics.create () in
  let touched = Metrics.histogram reg "touched" in
  let _untouched = Metrics.histogram reg "untouched" in
  Metrics.observe touched 5;
  let doc = Json.parse (Json.to_string (Export.metrics_json (Metrics.snapshot reg))) in
  let names =
    List.map
      (fun h -> Json.to_str (Json.member "name" h))
      (Json.to_list (Json.member "histograms" doc))
  in
  check_bool "observed histogram exported" true (List.mem "touched" names);
  check_bool "unused histogram omitted" false (List.mem "untouched" names)

let test_csv_rejects_ragged_rows () =
  let path = Filename.temp_file "obs-csv" ".csv" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Export.write_csv path ~header:[ "a"; "b" ] [ [ "1"; "2" ]; [ "3"; "4" ] ];
      check_bool "well-formed rows accepted" true (Sys.file_exists path);
      match
        Export.write_csv path ~header:[ "a"; "b" ] [ [ "1"; "2" ]; [ "3" ] ]
      with
      | () -> Alcotest.fail "ragged row accepted"
      | exception Invalid_argument _ -> ())

let suite =
  [
    ("trace basic", `Quick, test_trace_basic);
    ("trace ring wraps", `Quick, test_trace_ring_wraps);
    ("trace per-thread monotone", `Quick, test_trace_per_thread_monotone);
    ( "disabled trace allocates nothing",
      `Quick,
      test_disabled_trace_allocates_nothing );
    ("metrics registry", `Quick, test_metrics_registry);
    ("json roundtrip", `Quick, test_json_roundtrip);
    ("chrome export roundtrips counts", `Quick, test_chrome_export_roundtrips_counts);
    ( "snapshot agrees with subsystem stats",
      `Quick,
      test_system_metrics_agree_with_subsystems );
    ( "reset_measurement zeroes snapshot",
      `Quick,
      test_reset_measurement_zeroes_snapshot );
    ( "metrics export has required counters",
      `Quick,
      test_metrics_export_has_required_counters );
    ( "unused histograms omitted from export",
      `Quick,
      test_unused_histograms_omitted_from_export );
    ("csv rejects ragged rows", `Quick, test_csv_rejects_ragged_rows);
  ]

let () = Alcotest.run "obs" [ ("obs", suite) ]
