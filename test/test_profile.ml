(* Tests for the cycle-attribution profiler: exact percentile math on known
   inputs, reconciliation of the profile's cycle total against the engine's
   thread clocks, deterministic (byte-identical) export for a fixed seed,
   exporter round-trips, measurement reset, the allocation-free disabled
   path, and the perf-regression gate (library verdicts and the binary's
   exit code on a synthetically regressed baseline). *)

open Oamem_engine
open Oamem_core
open Oamem_lockfree
open Oamem_reclaim
open Oamem_harness
module Profile = Oamem_obs.Profile
module Json = Oamem_obs.Json
module Export = Oamem_obs.Export

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* --- percentiles on known inputs ------------------------------------------ *)

let observe_duration p d =
  Profile.enter p ~tid:0 ~now:0 Profile.Op_insert;
  Profile.leave p ~tid:0 ~now:d

let the_latency p =
  match Profile.latencies p with
  | [ l ] -> l
  | ls -> Alcotest.failf "expected one latency entry, got %d" (List.length ls)

let test_percentile_uniform () =
  let p = Profile.create ~nthreads:1 () in
  Profile.set_enabled p true;
  for _ = 1 to 100 do
    observe_duration p 7
  done;
  let l = the_latency p in
  check_int "count" 100 l.Profile.count;
  check_int "sum" 700 l.Profile.sum;
  check_int "max" 7 l.Profile.max_cycles;
  (* a constant stream satisfies sum = count * max, which percentile
     recognises as "one distinct value": every percentile is exactly 7
     rather than an interpolated point inside the (3, 7] bucket *)
  check_int "p50" 7 (Profile.percentile l 0.50);
  check_int "p99" 7 (Profile.percentile l 0.99);
  check_int "p100" 7 (Profile.percentile l 1.0)

let test_percentile_outlier () =
  let p = Profile.create ~nthreads:1 () in
  Profile.set_enabled p true;
  for _ = 1 to 99 do
    observe_duration p 1
  done;
  observe_duration p 1000;
  let l = the_latency p in
  (* ranks 1..99 land in the le=1 bucket; only rank 100 reaches the
     outlier, whose bucket bound (1023) is clamped to the exact max *)
  check_int "p50 ignores outlier" 1 (Profile.percentile l 0.50);
  check_int "p99 ignores outlier" 1 (Profile.percentile l 0.99);
  check_int "p100 is exact max" 1000 (Profile.percentile l 1.0);
  check_int "max" 1000 l.Profile.max_cycles

let test_percentile_buckets () =
  let p = Profile.create ~nthreads:1 () in
  Profile.set_enabled p true;
  List.iter (observe_duration p) [ 0; 1; 2; 3 ];
  let l = the_latency p in
  check_bool "log2 buckets" true
    (l.Profile.buckets = [ (0, 1); (1, 1); (3, 2) ]);
  check_int "p25 -> le 0" 0 (Profile.percentile l 0.25);
  check_int "p50 -> le 1" 1 (Profile.percentile l 0.50);
  (* rank 3 falls on the (1, 3] bucket's first of two observations:
     interpolation gives lo + (hi - lo) * 1/2 = 2 — the exact order
     statistic, where pre-interpolation snapping said 3 *)
  check_int "p75 interpolates to 2" 2 (Profile.percentile l 0.75);
  check_int "empty percentile" 0
    (Profile.percentile
       {
         Profile.lframe = Profile.Op_insert;
         count = 0;
         sum = 0;
         max_cycles = 0;
         buckets = [];
       }
       0.5)

let test_percentile_interpolation () =
  (* 100 observations spread 0..99: interpolation recovers the exact order
     statistic at every rank here (ranks distribute evenly inside each
     bucket), where snapping to bucket upper bounds answered 63/127 *)
  let p = Profile.create ~nthreads:1 () in
  Profile.set_enabled p true;
  for v = 0 to 99 do
    observe_duration p v
  done;
  let l = the_latency p in
  check_int "p50" 49 (Profile.percentile l 0.50);
  check_int "p75" 74 (Profile.percentile l 0.75);
  check_int "p99" 98 (Profile.percentile l 0.99);
  check_int "p100 is exact max" 99 (Profile.percentile l 1.0)

let test_percentile_single_observation_bucket () =
  (* one observation per bucket: rank_in = n = 1, so interpolation lands on
     the bucket's clamped upper bound — exactly the pre-interpolation
     answer (the snapping path is a regression-pinned special case) *)
  let p = Profile.create ~nthreads:1 () in
  Profile.set_enabled p true;
  List.iter (observe_duration p) [ 4; 1000 ];
  let l = the_latency p in
  check_int "p50 snaps to bucket bound" 7 (Profile.percentile l 0.50);
  check_int "p100 clamps to exact max" 1000 (Profile.percentile l 1.0)

(* --- a real run: reconciliation and determinism --------------------------- *)

let mk ?(nthreads = 4) scheme =
  System.create
    (System.Config.make ~nthreads ~scheme
       ~max_pages:(1 lsl 16)
       ~scheme_cfg:
         {
           Scheme.default_config with
           Scheme.threshold = 8;
           slots_per_thread = Hm_list.slots_needed;
         }
       ~profile:true ())

let churn ?(nthreads = 4) sys =
  let set = ref None in
  System.run_on_thread0 sys (fun ctx ->
      let s = System.list_set sys ctx in
      for k = 0 to 31 do
        ignore (Hm_list.insert s ctx k)
      done;
      set := Some s);
  let s = Option.get !set in
  for tid = 0 to nthreads - 1 do
    System.spawn sys ~tid (fun ctx ->
        for k = 0 to 63 do
          ignore (Hm_list.delete s ctx ((16 * tid) + (k mod 16)));
          ignore (Hm_list.insert s ctx ((16 * tid) + (k mod 16)))
        done)
  done;
  System.run sys

let test_total_reconciles_with_clocks () =
  let sys = mk "oa-ver" in
  churn sys;
  let p = System.profile sys in
  let eng = System.engine sys in
  let clocks = ref 0 in
  for tid = 0 to System.nthreads sys - 1 do
    clocks := !clocks + Engine.clock eng ~tid
  done;
  (* every cycle added to a thread clock flows through the profiler's
     charge path, so the attributed+unattributed total is exactly the sum
     of the thread clocks *)
  check_int "total = sum of thread clocks" !clocks (Profile.total_cycles p);
  check_bool "something attributed" true
    (Profile.total_cycles p > Profile.unattributed_cycles p);
  let spans = Profile.spans p in
  check_bool "op spans present" true
    (List.exists
       (fun (s : Profile.span) -> s.Profile.path = [ Profile.Op_insert ])
       spans);
  List.iter
    (fun (s : Profile.span) ->
      check_bool "self <= total" true
        (s.Profile.self_cycles <= s.Profile.total_cycles))
    spans

let small_spec scheme =
  {
    Runner.default_spec with
    Runner.scheme;
    threads = 2;
    structure = Runner.Hash_set;
    workload = Workload.make ~mix:Workload.update_only ~initial:200 ();
    horizon_cycles = 5_000;
    profile = true;
  }

let test_same_seed_byte_identical () =
  let export () =
    let r = Runner.run (small_spec "oa-ver") in
    Json.to_string (Export.profile_json r.Runner.profile)
  in
  let a = export () and b = export () in
  check_bool "profile recorded" true (String.length a > 2);
  check_string "byte-identical across runs" a b

(* --- export round-trips ---------------------------------------------------- *)

let test_profile_json_roundtrip () =
  let r = Runner.run (small_spec "oa-ver") in
  let p = r.Runner.profile in
  let doc = Json.parse (Json.to_string (Export.profile_json p)) in
  check_int "total round-trips"
    (Profile.total_cycles p)
    Json.(to_int (member "total_cycles" doc));
  check_int "unattributed round-trips"
    (Profile.unattributed_cycles p)
    Json.(to_int (member "unattributed_cycles" doc));
  let spans = Json.(to_list (member "spans" doc)) in
  check_int "span count round-trips" (List.length (Profile.spans p))
    (List.length spans);
  (* the document's span totals must re-sum: self of every span plus the
     unattributed remainder is the run's cycle total *)
  let self_sum =
    List.fold_left
      (fun acc s -> acc + Json.(to_int (member "self_cycles" s)))
      0 spans
  in
  check_int "selves + unattributed = total"
    (Profile.total_cycles p)
    (self_sum + Json.(to_int (member "unattributed_cycles" doc)));
  List.iter
    (fun l ->
      check_bool "p50 <= p99" true
        Json.(to_int (member "p50" l) <= to_int (member "p99" l));
      check_bool "p99 <= max" true
        Json.(to_int (member "p99" l) <= to_int (member "max" l)))
    Json.(to_list (member "latencies" doc))

let test_collapsed_stacks_parse_back () =
  let r = Runner.run (small_spec "oa-ver") in
  let p = r.Runner.profile in
  let folded = Export.collapsed_stacks p in
  let lines = String.split_on_char '\n' folded in
  check_bool "has lines" true (lines <> []);
  let parsed =
    List.map
      (fun line ->
        match String.rindex_opt line ' ' with
        | None -> Alcotest.failf "unparseable folded line: %S" line
        | Some i ->
            ( String.sub line 0 i,
              int_of_string
                (String.sub line (i + 1) (String.length line - i - 1)) ))
      lines
  in
  (* folded lines carry every span's self cycles (plus the unattributed
     pseudo-frame), so their sum reconstructs the cycle total exactly *)
  check_int "folded cycles re-sum to total"
    (Profile.total_cycles p)
    (List.fold_left (fun acc (_, c) -> acc + c) 0 parsed);
  check_bool "op frames present" true
    (List.exists
       (fun (path, _) -> String.length path >= 3 && String.sub path 0 3 = "op.")
       parsed);
  List.iter
    (fun (_, c) -> check_bool "cycles positive" true (c > 0))
    parsed

(* --- reset and the disabled path ------------------------------------------- *)

let test_reset_measurement_clears_profiler () =
  let sys = mk "ebr" in
  churn sys;
  let p = System.profile sys in
  check_bool "profile recorded" true (Profile.total_cycles p > 0);
  System.reset_measurement sys;
  check_int "total cleared" 0 (Profile.total_cycles p);
  check_int "spans cleared" 0 (List.length (Profile.spans p));
  check_int "latencies cleared" 0 (List.length (Profile.latencies p));
  check_int "hot addrs cleared" 0 (List.length (Profile.hot_addrs p));
  check_bool "still enabled after reset" true (Profile.enabled p)

let test_disabled_profiler_allocates_nothing () =
  let p = Profile.create ~nthreads:1 () in
  let probe () =
    if Profile.enabled p then begin
      Profile.enter p ~tid:0 ~now:0 Profile.Op_insert;
      Profile.charge p ~tid:0 3;
      Profile.leave p ~tid:0 ~now:5
    end
  in
  probe ();
  let before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    probe ()
  done;
  let allocated = Gc.minor_words () -. before in
  check_bool
    (Printf.sprintf "no allocation when disabled (%.0f words)" allocated)
    true (allocated = 0.0)

(* --- the perf-regression gate ---------------------------------------------- *)

let bench_doc ~throughput ~p99 =
  Json.Obj
    [
      ("experiment", Json.String "E1");
      ( "results",
        Json.List
          [
            Json.Obj
              [
                ("scheme", Json.String "oa-ver");
                ("threads", Json.Int 1);
                ("throughput_mops", Json.Float throughput);
                ( "profile",
                  Json.Obj
                    [
                      ( "latencies",
                        Json.List
                          [
                            Json.Obj
                              [
                                ("frame", Json.String "op.insert");
                                ("p99", Json.Int p99);
                              ];
                            Json.Obj
                              [
                                (* non-op frames must not be gated *)
                                ("frame", Json.String "alloc.malloc");
                                ("p99", Json.Int (10 * p99));
                              ];
                          ] );
                    ] );
              ];
          ] );
    ]

let test_perfgate_verdicts () =
  let baseline = bench_doc ~throughput:10.0 ~p99:100 in
  let same =
    Perfgate.compare_results ~baseline ~current:(bench_doc ~throughput:10.0 ~p99:100) ()
  in
  check_bool "identical run passes" false (Perfgate.failed same);
  check_int "throughput + one op p99 check" 2 (List.length same);
  let slow =
    Perfgate.compare_results ~baseline
      ~current:(bench_doc ~throughput:8.0 ~p99:100)
      ()
  in
  check_bool "20% throughput drop fails" true (Perfgate.failed slow);
  let lat =
    Perfgate.compare_results ~baseline
      ~current:(bench_doc ~throughput:10.0 ~p99:200)
      ()
  in
  check_bool "2x p99 fails" true (Perfgate.failed lat);
  check_bool "the p99 verdict is the regressed one" true
    (List.exists
       (fun v -> v.Perfgate.regressed && v.Perfgate.metric = "p99:op.insert")
       lat);
  let within =
    Perfgate.compare_results ~baseline
      ~current:(bench_doc ~throughput:9.5 ~p99:110)
      ()
  in
  check_bool "small drift passes" false (Perfgate.failed within);
  let missing =
    Perfgate.compare_results ~baseline
      ~current:(Json.Obj [ ("results", Json.List []) ])
      ()
  in
  check_bool "vanished config fails" true (Perfgate.failed missing);
  check_bool "as a missing verdict" true
    (List.exists (fun v -> v.Perfgate.metric = "missing") missing)

let test_perfgate_tolerates_profileless_baseline () =
  let old_baseline =
    Json.Obj
      [
        ( "results",
          Json.List
            [
              Json.Obj
                [
                  ("scheme", Json.String "oa-ver");
                  ("threads", Json.Int 1);
                  ("throughput_mops", Json.Float 10.0);
                ];
            ] );
      ]
  in
  let verdicts =
    Perfgate.compare_results ~baseline:old_baseline
      ~current:(bench_doc ~throughput:10.0 ~p99:100)
      ()
  in
  check_bool "throughput-only gating" false (Perfgate.failed verdicts);
  check_int "no p99 checks without a baseline profile" 1
    (List.length verdicts)

(* The binary itself: regressed baseline => exit 1, --warn-only => exit 0.
   Tests run in _build/default/test, the gate builds next door. *)
let perfgate_exe = Filename.concat ".." (Filename.concat "bin" "perfgate.exe")

let test_perfgate_binary_exit_code () =
  if not (Sys.file_exists perfgate_exe) then
    Alcotest.skip ()
  else begin
    let dump name doc =
      let path = Filename.temp_file name ".json" in
      let oc = open_out path in
      output_string oc (Json.to_string doc);
      output_char oc '\n';
      close_out oc;
      path
    in
    let base = dump "pg-base" (bench_doc ~throughput:10.0 ~p99:100) in
    let bad = dump "pg-bad" (bench_doc ~throughput:5.0 ~p99:100) in
    let run args =
      Sys.command
        (Filename.quote_command perfgate_exe args ~stdout:Filename.null)
    in
    check_int "regressed baseline exits non-zero" 1 (run [ base; bad ]);
    check_int "warn-only exits zero" 0 (run [ base; bad; "--warn-only" ]);
    check_int "clean comparison exits zero" 0 (run [ base; base ]);
    Sys.remove base;
    Sys.remove bad
  end

let () =
  Alcotest.run "profile"
    [
      ( "percentiles",
        [
          Alcotest.test_case "uniform stream is exact" `Quick
            test_percentile_uniform;
          Alcotest.test_case "outlier only moves the max" `Quick
            test_percentile_outlier;
          Alcotest.test_case "log2 bucket boundaries" `Quick
            test_percentile_buckets;
          Alcotest.test_case "interpolation inside wide buckets" `Quick
            test_percentile_interpolation;
          Alcotest.test_case "single-observation buckets snap" `Quick
            test_percentile_single_observation_bucket;
        ] );
      ( "attribution",
        [
          Alcotest.test_case "total reconciles with thread clocks" `Quick
            test_total_reconciles_with_clocks;
          Alcotest.test_case "same seed, byte-identical export" `Quick
            test_same_seed_byte_identical;
        ] );
      ( "export",
        [
          Alcotest.test_case "profile JSON round-trips" `Quick
            test_profile_json_roundtrip;
          Alcotest.test_case "collapsed stacks parse back" `Quick
            test_collapsed_stacks_parse_back;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "reset_measurement clears profiler" `Quick
            test_reset_measurement_clears_profiler;
          Alcotest.test_case "disabled path allocates nothing" `Quick
            test_disabled_profiler_allocates_nothing;
        ] );
      ( "perfgate",
        [
          Alcotest.test_case "verdicts" `Quick test_perfgate_verdicts;
          Alcotest.test_case "profile-less baseline" `Quick
            test_perfgate_tolerates_profileless_baseline;
          Alcotest.test_case "binary exit codes" `Quick
            test_perfgate_binary_exit_code;
        ] );
    ]
