(* Tests for the reclamation building blocks and the six schemes. *)

open Oamem_engine
open Oamem_vmem
open Oamem_lrmalloc
open Oamem_reclaim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let g = Geometry.default
let ctx = Engine.external_ctx ()

let mk_alloc ?(remap = Config.Madvise) () =
  let vm = Vmem.create ~max_pages:65536 g in
  let meta = Cell.heap g in
  let cfg = { Config.default with Config.sb_pages = 4; remap } in
  (Lrmalloc.create ~cfg ~vmem:vm ~meta ~nthreads:4 (), vm, meta)

let mk_scheme ?(threshold = 4) ?(pool_nodes = 256) name =
  let alloc, vm, meta = mk_alloc () in
  let cfg =
    {
      Scheme.threshold;
      slots_per_thread = 5;
      pool_nodes;
      node_words = 2;
      hazard_padded = true;
      neutralize = true;
    }
  in
  ((Registry.find name).Registry.make cfg ~alloc ~meta ~nthreads:4, alloc, vm)

(* --- building blocks ------------------------------------------------------- *)

let test_limbo_sweep () =
  let meta = Cell.heap g in
  let l = Limbo.create meta ~geom:g ~capacity_hint:4 in
  List.iter (fun n -> Limbo.add l ctx n) [ 10; 20; 30; 40; 50 ];
  check_int "size" 5 (Limbo.size l);
  let freed = ref [] in
  let n =
    Limbo.sweep l ctx
      ~protected:(fun x -> x = 20 || x = 40)
      ~free:(fun x -> freed := x :: !freed)
  in
  check_int "freed count" 3 n;
  check_bool "kept the protected" true (Limbo.to_list l = [ 20; 40 ]);
  check_bool "freed the rest" true (List.sort compare !freed = [ 10; 30; 50 ])

let test_hazard_slots () =
  let meta = Cell.heap g in
  let h = Hazard_slots.create meta ~nthreads:3 ~k:2 in
  let c0 = Engine.external_ctx ~tid:0 () in
  let c2 = Engine.external_ctx ~tid:2 () in
  Hazard_slots.set c0 h ~slot:0 100;
  Hazard_slots.set c0 h ~slot:1 200;
  Hazard_slots.set c2 h ~slot:0 300;
  let snap = Hazard_slots.snapshot ctx h in
  check_bool "sees all" true
    (Hazard_slots.protects snap 100 && Hazard_slots.protects snap 200
    && Hazard_slots.protects snap 300);
  check_bool "not others" false (Hazard_slots.protects snap 400);
  Hazard_slots.clear c0 h;
  let snap = Hazard_slots.snapshot ctx h in
  check_bool "thread 0 cleared" false (Hazard_slots.protects snap 100);
  check_bool "thread 2 kept" true (Hazard_slots.protects snap 300)

let test_addr_stack () =
  let alloc, vm, meta = mk_alloc () in
  let s = Addr_stack.create meta vm in
  check_bool "empty" true (Addr_stack.pop s ctx = None);
  let n1 = Lrmalloc.malloc alloc ctx 2 in
  let n2 = Lrmalloc.malloc alloc ctx 2 in
  Addr_stack.push s ctx n1;
  Addr_stack.push s ctx n2;
  check_int "length" 2 (Addr_stack.peek_length s);
  check_bool "lifo" true (Addr_stack.pop s ctx = Some n2);
  Addr_stack.push s ctx n2;
  let head = Addr_stack.take_all s ctx in
  check_bool "detached" true (Addr_stack.is_empty s);
  let seen = ref [] in
  Addr_stack.iter_chain s ctx head (fun n -> seen := n :: !seen);
  check_bool "chain walks all" true (List.sort compare !seen = List.sort compare [ n1; n2 ])

(* --- generic scheme behaviour ---------------------------------------------- *)

let alloc_retire_cycle ?pool_nodes ?(expect_freed = 36) name () =
  let sch, _alloc, vm = mk_scheme ?pool_nodes name in
  (* allocate, write, retire many nodes; they must eventually be freed
     (except NR, tested separately) *)
  for i = 1 to 40 do
    let n = sch.Scheme.alloc ctx 2 in
    Vmem.store vm ctx n i;
    sch.Scheme.retire ctx n
  done;
  sch.Scheme.flush ctx;
  check_int "all retired" 40 sch.Scheme.stats.Scheme.retired;
  check_bool
    (name ^ " frees retired nodes")
    true
    (sch.Scheme.stats.Scheme.freed >= expect_freed)

let test_nr_never_frees () =
  let sch, _alloc, _vm = mk_scheme "nr" in
  for _ = 1 to 40 do
    let n = sch.Scheme.alloc ctx 2 in
    sch.Scheme.retire ctx n
  done;
  sch.Scheme.flush ctx;
  check_int "nothing freed" 0 sch.Scheme.stats.Scheme.freed

let test_oa_bit_warning_restarts () =
  let sch, _alloc, _vm = mk_scheme "oa-bit" ~threshold:2 in
  let eng = Engine.create ~nthreads:2 () in
  let restarted = ref false in
  Engine.spawn eng ~tid:0 (fun c ->
      (* retire enough to trigger a reclamation (warning thread 1) *)
      for _ = 1 to 3 do
        let n = sch.Scheme.alloc c 2 in
        sch.Scheme.retire c n
      done);
  Engine.spawn eng ~tid:1 (fun c ->
      (* spin on read_check until the warning arrives *)
      let tries = ref 0 in
      (try
         while !tries < 10_000 do
           incr tries;
           sch.Scheme.read_check c;
           Engine.Mem.pause c
         done
       with Scheme.Restart -> restarted := true);
      (* the bit was consumed: the next check must pass *)
      sch.Scheme.read_check c);
  Engine.run eng;
  check_bool "warning observed as restart" true !restarted;
  check_bool "warnings fired" true (sch.Scheme.stats.Scheme.warnings_fired > 0)

let test_oa_bit_hazard_protects () =
  let sch, _alloc, vm = mk_scheme "oa-bit" ~threshold:3 in
  let protected_node = sch.Scheme.alloc ctx 2 in
  Vmem.store vm ctx protected_node 777;
  sch.Scheme.write_protect ctx ~slot:0 protected_node;
  sch.Scheme.retire ctx protected_node;
  (* push enough retirements to run several reclamation passes *)
  for _ = 1 to 12 do
    let n = sch.Scheme.alloc ctx 2 in
    sch.Scheme.retire ctx n
  done;
  (* the protected node survived every sweep: its content is intact
     (nothing reused it), and freed count excludes it *)
  check_int "content intact" 777 (Vmem.peek vm protected_node);
  (* clearing the hazard lets the next sweep free it *)
  sch.Scheme.clear ctx;
  sch.Scheme.flush ctx;
  check_int "everything freed eventually" 13 sch.Scheme.stats.Scheme.freed

let test_oa_ver_piggyback () =
  let sch, _alloc, _vm = mk_scheme "oa-ver" ~threshold:2 in
  let eng = Engine.create ~nthreads:2 () in
  for tid = 0 to 1 do
    Engine.spawn eng ~tid (fun c ->
        sch.Scheme.begin_op c;
        for _ = 1 to 20 do
          let n = sch.Scheme.alloc c 2 in
          sch.Scheme.retire c n
        done)
  done;
  Engine.run eng;
  let s = sch.Scheme.stats in
  check_bool "fired some warnings" true (s.Scheme.warnings_fired > 0);
  check_bool "piggybacked on others" true (s.Scheme.warnings_piggybacked > 0);
  (* piggy-backing means strictly fewer bumps than reclaim opportunities *)
  check_bool "fewer warnings than phases+piggybacks" true
    (s.Scheme.warnings_fired < s.Scheme.warnings_fired + s.Scheme.warnings_piggybacked)

let test_oa_ver_clock_restart () =
  let sch, _alloc, _vm = mk_scheme "oa-ver" ~threshold:1 in
  let eng = Engine.create ~nthreads:2 () in
  let restarted = ref false in
  Engine.spawn eng ~tid:0 (fun c ->
      sch.Scheme.begin_op c;
      for _ = 1 to 4 do
        let n = sch.Scheme.alloc c 2 in
        sch.Scheme.retire c n
      done);
  Engine.spawn eng ~tid:1 (fun c ->
      sch.Scheme.begin_op c;
      let tries = ref 0 in
      (try
         while !tries < 10_000 do
           incr tries;
           sch.Scheme.read_check c;
           Engine.Mem.pause c
         done
       with Scheme.Restart -> restarted := true));
  Engine.run eng;
  check_bool "clock bump restarts readers" true !restarted

let test_oa_orig_pool_recycles () =
  let sch, _alloc, _vm = mk_scheme "oa" ~pool_nodes:8 ~threshold:4 in
  (* churn far more nodes than the pool holds: recycling phases must kick
     in, and allocation must keep succeeding *)
  for _ = 1 to 100 do
    let n = sch.Scheme.alloc ctx 2 in
    sch.Scheme.retire ctx n
  done;
  check_bool "phases ran" true (sch.Scheme.stats.Scheme.reclaim_phases > 0);
  check_bool "nodes recycled" true (sch.Scheme.stats.Scheme.freed > 50)

let test_oa_orig_node_size_guard () =
  let sch, _alloc, _vm = mk_scheme "oa" in
  Alcotest.check_raises "too big"
    (Invalid_argument "Oa_orig.alloc: node larger than the pool's node size")
    (fun () -> ignore (sch.Scheme.alloc ctx 100))

let test_hp_traverse_protect_verifies () =
  let sch, _alloc, vm = mk_scheme "hp" in
  let loc = sch.Scheme.alloc ctx 2 in
  let node = sch.Scheme.alloc ctx 2 in
  Vmem.store vm ctx loc node;
  (* verification passes while the link is stable *)
  sch.Scheme.traverse_protect ctx ~slot:0 ~addr:node ~verify:(fun () ->
      Vmem.load vm ctx loc = node);
  (* after the link changes, protection must fail with Restart *)
  Vmem.store vm ctx loc 0;
  Alcotest.check_raises "stale link" Scheme.Restart (fun () ->
      sch.Scheme.traverse_protect ctx ~slot:0 ~addr:node ~verify:(fun () ->
          Vmem.load vm ctx loc = node))

let test_ebr_grace_period () =
  let sch, _alloc, vm = mk_scheme "ebr" ~threshold:1 in
  let eng = Engine.create ~nthreads:2 () in
  let witnessed = ref 0 in
  let node = ref 0 in
  Engine.spawn eng ~tid:0 (fun c ->
      sch.Scheme.begin_op c;
      node := sch.Scheme.alloc c 2;
      Vmem.store vm c !node 99;
      sch.Scheme.end_op c;
      (* thread 1 is inside an operation: retiring now must not free the
         node until thread 1 leaves its epoch *)
      sch.Scheme.begin_op c;
      sch.Scheme.retire c !node;
      (* several retire rounds try to advance the epoch *)
      for _ = 1 to 6 do
        let n = sch.Scheme.alloc c 2 in
        sch.Scheme.retire c n
      done;
      witnessed := Vmem.peek vm !node;
      sch.Scheme.end_op c);
  Engine.spawn eng ~tid:1 (fun c ->
      sch.Scheme.begin_op c;
      (* long-running operation pinning the epoch *)
      for _ = 1 to 200 do
        Engine.Mem.pause c
      done;
      sch.Scheme.end_op c);
  Engine.run eng;
  (* while thread 1 pinned its epoch, the node could not be reused *)
  check_int "node intact during pinned epoch" 99 !witnessed

(* --- IBR interval semantics --------------------------------------------------- *)

let test_ibr_interval_blocks_overlapping_nodes () =
  let sch, _alloc, vm = mk_scheme "ibr" ~threshold:2 in
  let eng = Engine.create ~nthreads:2 () in
  let pinned = ref 0 in
  let witnessed = ref 0 in
  Engine.spawn eng ~tid:1 (fun c ->
      (* thread 1 opens an operation and stalls inside it: its published
         interval must pin nodes alive during it *)
      sch.Scheme.begin_op c;
      while !pinned = 0 do
        Engine.Mem.pause c
      done;
      for _ = 1 to 600 do
        Engine.Mem.pause c
      done;
      witnessed := Vmem.peek vm !pinned;
      sch.Scheme.end_op c);
  Engine.spawn eng ~tid:0 (fun c ->
      Engine.Mem.pause c;
      (* allocated while thread 1's interval is open -> lifetime overlaps *)
      pinned := sch.Scheme.alloc c 2;
      Vmem.store vm c !pinned 31337;
      sch.Scheme.retire c !pinned;
      (* churn to force era bumps and sweeps *)
      for _ = 1 to 40 do
        let n = sch.Scheme.alloc c 2 in
        sch.Scheme.retire c n
      done);
  Engine.run eng;
  (* the pinned node was not reused while thread 1 was inside its op *)
  check_int "pinned node intact during interval" 31337 !witnessed;
  (* once thread 1 ended its op, everything can go *)
  let c0 = Engine.external_ctx ~tid:0 () in
  sch.Scheme.flush c0;
  check_int "all freed eventually" 41 sch.Scheme.stats.Scheme.freed

let test_ibr_no_restarts () =
  (* IBR extends intervals instead of restarting *)
  let sch, _alloc, _vm = mk_scheme "ibr" ~threshold:1 in
  let eng = Engine.create ~nthreads:2 () in
  Engine.spawn eng ~tid:0 (fun c ->
      sch.Scheme.begin_op c;
      for _ = 1 to 30 do
        let n = sch.Scheme.alloc c 2 in
        sch.Scheme.retire c n
      done;
      sch.Scheme.end_op c);
  Engine.spawn eng ~tid:1 (fun c ->
      sch.Scheme.begin_op c;
      for _ = 1 to 300 do
        sch.Scheme.read_check c;
        Engine.Mem.pause c
      done;
      sch.Scheme.end_op c);
  Engine.run eng;
  check_int "no restarts ever" 0 sch.Scheme.stats.Scheme.restarts;
  check_bool "eras advanced" true (sch.Scheme.stats.Scheme.warnings_fired > 0)

(* --- VBR DWCAS leak probe (E9) --------------------------------------------- *)

let released_persistent_range remap =
  let alloc, vm, _meta = mk_alloc ~remap () in
  let first = Lrmalloc.palloc alloc ctx 512 in
  let heap = Lrmalloc.heap alloc in
  let d = Heap.lookup_desc heap ctx first |> Option.get in
  let blocks =
    first
    :: List.init (d.Descriptor.max_count - 1) (fun _ -> Lrmalloc.palloc alloc ctx 512)
  in
  List.iter (fun b -> Lrmalloc.free alloc ctx b) blocks;
  Lrmalloc.flush_thread_cache alloc ctx;
  Heap.trim heap ctx;
  (vm, blocks)

let test_vbr_probe_leaks_under_madvise () =
  let vm, blocks = released_persistent_range Config.Madvise in
  let r = Vbr_probe.run vm ctx ~addrs:blocks in
  check_int "no dwcas succeeds" 0 r.Vbr_probe.succeeded;
  (* every touched page faulted a frame in: the leak of §3.2 footnote 2 *)
  check_bool "frames leaked" true (r.Vbr_probe.frames_leaked > 0);
  check_bool "counted as cow-cas faults" true (r.Vbr_probe.cow_cas_faults > 0)

let test_vbr_probe_safe_under_shared () =
  let vm, blocks = released_persistent_range Config.Shared_map in
  let r = Vbr_probe.run vm ctx ~addrs:blocks in
  check_int "no dwcas succeeds" 0 r.Vbr_probe.succeeded;
  check_int "no frames leaked" 0 r.Vbr_probe.frames_leaked

(* --- registry ---------------------------------------------------------------- *)

let test_registry () =
  check_bool "knows the paper's methods" true
    (List.for_all (fun n -> List.mem n Registry.names) Registry.paper_methods);
  Alcotest.check_raises "unknown scheme"
    (Invalid_argument
       "unknown reclamation scheme \"bogus\" (known: nr, oa, oa-bit, oa-ver, \
        hp, ebr, ibr, debra, imr)") (fun () ->
      let (_ : Registry.entry) = Registry.find "bogus" in
      ())

(* Memory actually returns to the allocator and the OS under the paper's
   schemes (the whole point), for both remap strategies. *)
let frames_return name remap () =
  let alloc, vm, meta = mk_alloc ~remap () in
  let cfg = { Scheme.default_config with Scheme.threshold = 8 } in
  let sch = (Registry.find name).Registry.make cfg ~alloc ~meta ~nthreads:4 in
  let baseline = (Vmem.frames_live vm) in
  for i = 1 to 2000 do
    let n = sch.Scheme.alloc ctx 2 in
    Vmem.store vm ctx n i;
    sch.Scheme.retire ctx n
  done;
  sch.Scheme.flush ctx;
  Lrmalloc.flush_thread_cache alloc ctx;
  Heap.trim (Lrmalloc.heap alloc) ctx;
  let u = vm in
  check_bool "frames dropped back" true
    ((Vmem.frames_live u) <= baseline + 8)

let suite =
  [
    ("limbo sweep", `Quick, test_limbo_sweep);
    ("hazard slots", `Quick, test_hazard_slots);
    ("addr stack", `Quick, test_addr_stack);
    ("oa-bit alloc/retire", `Quick, alloc_retire_cycle "oa-bit");
    ("oa-ver alloc/retire", `Quick, alloc_retire_cycle "oa-ver");
    ("hp alloc/retire", `Quick, alloc_retire_cycle "hp");
    ("ebr alloc/retire", `Quick, alloc_retire_cycle "ebr");
    ("ibr alloc/retire", `Quick, alloc_retire_cycle "ibr");
    (* the original OA only recycles when its fixed pool runs dry *)
    ("oa alloc/retire", `Quick,
     alloc_retire_cycle ~pool_nodes:8 ~expect_freed:24 "oa");
    ("nr never frees", `Quick, test_nr_never_frees);
    ("oa-bit warning restarts", `Quick, test_oa_bit_warning_restarts);
    ("oa-bit hazard protects", `Quick, test_oa_bit_hazard_protects);
    ("oa-ver piggyback", `Quick, test_oa_ver_piggyback);
    ("oa-ver clock restart", `Quick, test_oa_ver_clock_restart);
    ("oa pool recycles", `Quick, test_oa_orig_pool_recycles);
    ("oa node size guard", `Quick, test_oa_orig_node_size_guard);
    ("hp verify", `Quick, test_hp_traverse_protect_verifies);
    ("ebr grace period", `Quick, test_ebr_grace_period);
    ("ibr interval pins overlapping", `Quick,
     test_ibr_interval_blocks_overlapping_nodes);
    ("ibr never restarts", `Quick, test_ibr_no_restarts);
    ("vbr leak under madvise", `Quick, test_vbr_probe_leaks_under_madvise);
    ("vbr safe under shared", `Quick, test_vbr_probe_safe_under_shared);
    ("registry", `Quick, test_registry);
    ("oa-bit returns frames (madvise)", `Quick,
     frames_return "oa-bit" Config.Madvise);
    ("oa-ver returns frames (madvise)", `Quick,
     frames_return "oa-ver" Config.Madvise);
    ("oa-ver returns frames (shared)", `Quick,
     frames_return "oa-ver" Config.Shared_map);
    ("hp returns frames", `Quick, frames_return "hp" Config.Madvise);
  ]

let () = Alcotest.run "reclaim" [ ("reclaim", suite) ]
