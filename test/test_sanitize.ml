(* Tests for the memory-lifecycle sanitizer: every registered scheme must
   run the concurrent list scenario violation-free, while seeded mutations
   (double retire, unhazarded store-after-retire, access to unmapped memory,
   double free, store-to-freed without a revocation) must each produce the
   expected typed report. *)

open Oamem_engine
open Oamem_vmem
open Oamem_core
open Oamem_lockfree
open Oamem_reclaim
open Oamem_sanitize
module Lrmalloc = Oamem_lrmalloc.Lrmalloc

let check_bool = Alcotest.(check bool)
let all_schemes = Registry.names

(* [threshold] defaults to 1 (aggressive reclamation exercises the most
   lifecycle transitions); mutation tests that need nodes to *stay* retired
   pass a large one. *)
let make_sys ?(policy = Engine.Min_clock) ?(threshold = 1) scheme =
  System.create
    (System.Config.make ~nthreads:2 ~policy ~scheme ~sanitize:true
       ~max_pages:(1 lsl 14)
       ~scheme_cfg:
         {
           Scheme.default_config with
           Scheme.threshold;
           slots_per_thread = Hm_list.slots_needed;
           pool_nodes = 64;
         }
       ())

let expect_violation name classify f =
  match f () with
  | () -> Alcotest.failf "%s: no violation reported" name
  | exception Sanitizer.Violation v ->
      if not (classify v.Sanitizer.kind) then
        Alcotest.failf "%s: wrong violation: %a" name Sanitizer.pp_violation v

(* Concurrent insert+delete on one list, all schemes, several scheduling
   seeds: the sanitizer must stay silent through the run, the drain and the
   quiescence check. *)
let test_all_schemes_clean () =
  List.iter
    (fun scheme ->
      List.iter
        (fun policy ->
          let sys = make_sys ~policy scheme in
          let setup_ctx = Engine.external_ctx () in
          let l = System.list_set sys setup_ctx in
          Hm_list.build_sorted l setup_ctx [ 10; 20; 30 ];
          let r0 = ref false and r1 = ref false in
          System.spawn sys ~tid:0 (fun ctx -> r0 := Hm_list.delete l ctx 20);
          System.spawn sys ~tid:1 (fun ctx -> r1 := Hm_list.insert l ctx 25);
          System.run sys;
          check_bool (scheme ^ ": both ops succeeded") true (!r0 && !r1);
          check_bool
            (scheme ^ ": final state")
            true
            (Hm_list.to_list l = [ 10; 25; 30 ]);
          System.check_sanitizer sys;
          System.drain sys;
          System.check_sanitizer_quiescent sys)
        [ Engine.Min_clock; Engine.Random_order 42; Engine.Random_order 7 ])
    all_schemes

(* The hash table exercises the large-allocation path (bucket array) on top
   of node churn. *)
let test_hash_clean () =
  List.iter
    (fun scheme ->
      let sys = make_sys scheme in
      let setup_ctx = Engine.external_ctx () in
      let h = System.hash_set sys setup_ctx ~expected_size:32 in
      Michael_hash.prefill h setup_ctx [ 1; 2; 3; 4; 5; 6; 7; 8 ];
      System.spawn sys ~tid:0 (fun ctx ->
          for k = 1 to 4 do
            ignore (Michael_hash.delete h ctx k)
          done);
      System.spawn sys ~tid:1 (fun ctx ->
          for k = 9 to 12 do
            ignore (Michael_hash.insert h ctx k)
          done);
      System.run sys;
      check_bool (scheme ^ ": hash state") true
        (List.sort compare (Michael_hash.to_list h)
        = [ 5; 6; 7; 8; 9; 10; 11; 12 ]);
      System.check_sanitizer sys;
      System.drain sys;
      System.check_sanitizer_quiescent sys)
    [ "oa-ver"; "hp"; "ebr"; "imr" ]

(* The queue and stack retire nodes a racing rival may still be reading —
   the structures where IMR's retire-revoke-free sequence has the least
   slack between the unlink CAS and the free. *)
let test_queue_stack_clean () =
  List.iter
    (fun scheme ->
      let queue_sys = make_sys scheme in
      let setup_ctx = Engine.external_ctx () in
      let q =
        Ms_queue.create setup_ctx ~scheme:(System.scheme queue_sys)
          ~vmem:(System.vmem queue_sys)
      in
      System.spawn queue_sys ~tid:0 (fun ctx ->
          for i = 1 to 6 do
            Ms_queue.enqueue q ctx i
          done);
      System.spawn queue_sys ~tid:1 (fun ctx ->
          for _ = 1 to 4 do
            ignore (Ms_queue.dequeue q ctx)
          done);
      System.run queue_sys;
      System.check_sanitizer queue_sys;
      System.drain queue_sys;
      System.check_sanitizer_quiescent queue_sys;
      let stack_sys = make_sys scheme in
      let setup_ctx = Engine.external_ctx () in
      let s =
        Treiber_stack.create setup_ctx ~scheme:(System.scheme stack_sys)
          ~vmem:(System.vmem stack_sys)
      in
      System.spawn stack_sys ~tid:0 (fun ctx ->
          for i = 1 to 6 do
            Treiber_stack.push s ctx i
          done);
      System.spawn stack_sys ~tid:1 (fun ctx ->
          for _ = 1 to 4 do
            ignore (Treiber_stack.pop s ctx)
          done);
      System.run stack_sys;
      System.check_sanitizer stack_sys;
      System.drain stack_sys;
      System.check_sanitizer_quiescent stack_sys)
    [ "imr"; "oa-ver" ]

(* --- seeded mutations ----------------------------------------------------- *)

let test_double_retire () =
  List.iter
    (fun scheme ->
      let sys = make_sys ~threshold:1000 scheme in
      let ops = System.scheme sys in
      System.run_on_thread0 sys (fun ctx ->
          let a = ops.Scheme.alloc ctx 2 in
          ops.Scheme.retire ctx a;
          ops.Scheme.retire ctx a);
      expect_violation
        (scheme ^ ": double retire")
        (function Sanitizer.Double_retire _ -> true | _ -> false)
        (fun () -> System.check_sanitizer sys))
    [ "hp"; "oa-ver"; "ebr" ]

let test_store_after_retire_without_hazard () =
  let sys = make_sys ~threshold:1000 "hp" in
  let ops = System.scheme sys in
  let vm = System.vmem sys in
  System.run_on_thread0 sys (fun ctx ->
      let a = ops.Scheme.alloc ctx 2 in
      ops.Scheme.retire ctx a;
      (* the deleted mutation: no write_protect before the store *)
      Vmem.store vm ctx a 99);
  expect_violation "unhazarded store-after-retire"
    (function Sanitizer.Store_retired _ -> true | _ -> false)
    (fun () -> System.check_sanitizer sys)

(* Positive control for the mutation above: the same store under a published
   hazard is within the write contract and must not be flagged. *)
let test_store_after_retire_with_hazard () =
  let sys = make_sys ~threshold:1000 "hp" in
  let ops = System.scheme sys in
  let vm = System.vmem sys in
  System.run_on_thread0 sys (fun ctx ->
      let a = ops.Scheme.alloc ctx 2 in
      ops.Scheme.retire ctx a;
      ops.Scheme.write_protect ctx ~slot:0 a;
      Vmem.store vm ctx a 99;
      ops.Scheme.clear ctx);
  System.check_sanitizer sys

let test_access_unmapped () =
  let sys = make_sys "hp" in
  let vm = System.vmem sys in
  System.run_on_thread0 sys (fun ctx ->
      let addr = Vmem.reserve vm ~npages:1 in
      (* reserved but never mapped: the simulated hardware segfaults, the
         sanitizer reports the access first *)
      match Vmem.store vm ctx addr 1 with
      | () -> Alcotest.fail "expected a segfault"
      | exception Vmem.Segfault _ -> ());
  expect_violation "access to unmapped"
    (function Sanitizer.Access_unmapped _ -> true | _ -> false)
    (fun () -> System.check_sanitizer sys)

let test_double_free () =
  let sys = make_sys "hp" in
  let al = System.alloc sys in
  System.run_on_thread0 sys (fun ctx ->
      let a = Lrmalloc.malloc al ctx 2 in
      Lrmalloc.free al ctx a;
      Lrmalloc.free al ctx a);
  expect_violation "double free"
    (function Sanitizer.Double_free _ -> true | _ -> false)
    (fun () -> System.check_sanitizer sys)

(* Leak detection: retire under a huge threshold, never drain, then ask for
   the quiescence check.  HP does not leak by design, so the undisposed
   node must be flagged. *)
let test_retired_leak_at_quiescence () =
  let sys = make_sys ~threshold:1000 "hp" in
  let ops = System.scheme sys in
  System.run_on_thread0 sys (fun ctx ->
      let a = ops.Scheme.alloc ctx 2 in
      ops.Scheme.retire ctx a);
  System.check_sanitizer sys;
  expect_violation "retired leak"
    (function Sanitizer.Retired_leak _ -> true | _ -> false)
    (fun () -> System.check_sanitizer_quiescent sys)

(* IMR's write contract: a store to freed memory is legal only while the
   storing thread's accessible flag is revoked (the hardware squashes it and
   the thread is headed for a restart).  The same store while the thread
   still *holds* access is a genuine use-after-free and must be flagged. *)
let test_store_freed_unrevoked_is_violation () =
  let sys = make_sys ~threshold:1000 "imr" in
  let al = System.alloc sys in
  let vm = System.vmem sys in
  System.run_on_thread0 sys (fun ctx ->
      let a = Lrmalloc.malloc al ctx 2 in
      Lrmalloc.free al ctx a;
      Vmem.store vm ctx a 99);
  expect_violation "store to freed while holding access"
    (function Sanitizer.Store_freed _ -> true | _ -> false)
    (fun () -> System.check_sanitizer sys)

(* Positive control for the mutation above: the identical store with the
   thread's flag revoked commits squashed and is the expected restart path —
   the sanitizer must stay silent. *)
let test_store_freed_while_revoked_is_restart_path () =
  let sys = make_sys ~threshold:1000 "imr" in
  let al = System.alloc sys in
  let vm = System.vmem sys in
  System.run_on_thread0 sys (fun ctx ->
      let a = Lrmalloc.malloc al ctx 2 in
      Lrmalloc.free al ctx a;
      check_bool "self-revocation posted" true
        (Engine.Mem.revoke ctx ~victim:(Engine.Mem.tid ctx) = Engine.Posted);
      Vmem.store vm ctx a 99;
      check_bool "the store was squashed" true (Engine.Mem.squashed ctx);
      Engine.Mem.grant_access ctx);
  System.check_sanitizer sys

(* Regression (livelock): an engine thread that never enters IMR's protocol
   — no begin_op, no scheme alloc, no read_check — must keep making progress
   while workers retire around it.  Retire only revokes *participants*, and
   allocator-internal sections are exempt from the squash, so the
   bystander's raw malloc/free churn (superblock anchor CASes included)
   terminates.  Before those two rules its flag was revoked with nothing
   ever re-granting it, and the allocator CAS retry loop spun forever. *)
let test_imr_bystander_progress () =
  let sys =
    System.create
      (System.Config.make ~nthreads:3 ~policy:Engine.Min_clock ~scheme:"imr"
         ~sanitize:true ~max_pages:(1 lsl 14)
         ~scheme_cfg:
           {
             Scheme.default_config with
             Scheme.threshold = 1;
             slots_per_thread = Hm_list.slots_needed;
             pool_nodes = 64;
           }
         ())
  in
  let setup_ctx = Engine.external_ctx () in
  let l = System.list_set sys setup_ctx in
  Hm_list.build_sorted l setup_ctx [ 10; 20; 30; 40 ];
  let al = System.alloc sys in
  let vm = System.vmem sys in
  let rounds = ref 0 in
  System.spawn sys ~tid:0 (fun ctx ->
      for k = 1 to 6 do
        ignore (Hm_list.insert l ctx (100 + k));
        ignore (Hm_list.delete l ctx (100 + k))
      done);
  System.spawn sys ~tid:1 (fun ctx ->
      for k = 1 to 6 do
        ignore (Hm_list.insert l ctx (200 + k));
        ignore (Hm_list.delete l ctx (200 + k))
      done);
  System.spawn sys ~tid:2 (fun ctx ->
      (* bystander: raw allocator churn, never through the scheme *)
      for i = 1 to 10 do
        let a = Lrmalloc.malloc al ctx 4 in
        Vmem.store vm ctx a i;
        Lrmalloc.free al ctx a;
        incr rounds
      done;
      check_bool "bystander was never revoked" false
        (Engine.Mem.access_revoked ctx ~tid:2));
  System.run sys;
  check_bool "bystander completed every round" true (!rounds = 10);
  check_bool "imr bystander: final state" true
    (Hm_list.to_list l = [ 10; 20; 30; 40 ]);
  System.check_sanitizer sys;
  System.drain sys;
  System.check_sanitizer_quiescent sys

(* NR leaks by design: the same sequence must stay silent. *)
let test_nr_leak_is_by_design () =
  let sys = make_sys "nr" in
  let ops = System.scheme sys in
  System.run_on_thread0 sys (fun ctx ->
      let a = ops.Scheme.alloc ctx 2 in
      ops.Scheme.retire ctx a);
  System.check_sanitizer sys;
  System.check_sanitizer_quiescent sys

let suite =
  [
    ("all schemes violation-free", `Quick, test_all_schemes_clean);
    ("hash table violation-free", `Quick, test_hash_clean);
    ("queue and stack violation-free", `Quick, test_queue_stack_clean);
    ("mutation: double retire", `Quick, test_double_retire);
    ( "mutation: store-after-retire without hazard",
      `Quick,
      test_store_after_retire_without_hazard );
    ( "control: store-after-retire with hazard",
      `Quick,
      test_store_after_retire_with_hazard );
    ("mutation: access to unmapped", `Quick, test_access_unmapped);
    ("mutation: double free", `Quick, test_double_free);
    ("retired leak at quiescence", `Quick, test_retired_leak_at_quiescence);
    ( "mutation: store to freed while holding access",
      `Quick,
      test_store_freed_unrevoked_is_violation );
    ( "control: store to freed while revoked",
      `Quick,
      test_store_freed_while_revoked_is_restart_path );
    ( "regression: imr bystander makes progress",
      `Quick,
      test_imr_bystander_progress );
    ("nr leaks by design", `Quick, test_nr_leak_is_by_design);
  ]

let () = Alcotest.run "sanitize" [ ("sanitize", suite) ]
