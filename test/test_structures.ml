(* Tests for the Treiber stack and Michael–Scott queue across every
   reclamation scheme: sequential semantics, concurrent accounting, FIFO
   subsequence order, race exploration and memory return. *)

open Oamem_engine
open Oamem_core
open Oamem_lockfree
open Oamem_reclaim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let schemes = Registry.names

let mk ?(nthreads = 4) ?(policy = Engine.Min_clock) ?(threshold = 8)
    ?(sb_pages = 4) scheme =
  System.create
    (System.Config.make ~nthreads ~policy ~scheme
       ~max_pages:(1 lsl 16)
       ~alloc_cfg:
         { Oamem_lrmalloc.Config.default with Oamem_lrmalloc.Config.sb_pages }
       ~scheme_cfg:
         {
           Scheme.default_config with
           Scheme.threshold;
           slots_per_thread = Hm_list.slots_needed;
           pool_nodes = 8192;
         }
       ())

let stack_of sys ctx =
  Treiber_stack.create ctx ~scheme:(System.scheme sys) ~vmem:(System.vmem sys)

let queue_of sys ctx =
  Ms_queue.create ctx ~scheme:(System.scheme sys) ~vmem:(System.vmem sys)

(* --- stack ------------------------------------------------------------------ *)

let stack_sequential scheme () =
  let sys = mk scheme in
  System.run_on_thread0 sys (fun ctx ->
      let s = stack_of sys ctx in
      check_bool "empty" true (Treiber_stack.is_empty s ctx);
      check_bool "pop empty" true (Treiber_stack.pop s ctx = None);
      Treiber_stack.push s ctx 1;
      Treiber_stack.push s ctx 2;
      Treiber_stack.push s ctx 3;
      check_int "size" 3 (Treiber_stack.length s);
      check_bool "lifo 3" true (Treiber_stack.pop s ctx = Some 3);
      check_bool "lifo 2" true (Treiber_stack.pop s ctx = Some 2);
      Treiber_stack.push s ctx 9;
      check_bool "lifo 9" true (Treiber_stack.pop s ctx = Some 9);
      check_bool "lifo 1" true (Treiber_stack.pop s ctx = Some 1);
      check_bool "drained" true (Treiber_stack.pop s ctx = None))

let stack_concurrent ?(policy = Engine.Min_clock) scheme () =
  let nthreads = 4 in
  let sys = mk ~nthreads ~policy scheme in
  let stack = ref None in
  System.run_on_thread0 sys (fun ctx -> stack := Some (stack_of sys ctx));
  let s = Option.get !stack in
  let pushed = Array.make nthreads 0 and popped = Array.make nthreads 0 in
  for tid = 0 to nthreads - 1 do
    System.spawn sys ~tid (fun ctx ->
        let rng = (Engine.Mem.prng ctx) in
        for i = 1 to 250 do
          if Prng.bool rng then begin
            Treiber_stack.push s ctx (((Engine.Mem.tid ctx) * 1_000_000) + i);
            pushed.(tid) <- pushed.(tid) + 1
          end
          else
            match Treiber_stack.pop s ctx with
            | Some _ -> popped.(tid) <- popped.(tid) + 1
            | None -> ()
        done)
  done;
  System.run sys;
  let total a = Array.fold_left ( + ) 0 a in
  check_int
    (Printf.sprintf "%s: push/pop accounting" scheme)
    (total pushed - total popped)
    (Treiber_stack.length s)

(* --- queue ------------------------------------------------------------------ *)

let queue_sequential scheme () =
  let sys = mk scheme in
  System.run_on_thread0 sys (fun ctx ->
      let q = queue_of sys ctx in
      check_bool "empty" true (Ms_queue.is_empty q ctx);
      check_bool "dequeue empty" true (Ms_queue.dequeue q ctx = None);
      Ms_queue.enqueue q ctx 1;
      Ms_queue.enqueue q ctx 2;
      Ms_queue.enqueue q ctx 3;
      check_int "size" 3 (Ms_queue.length q);
      check_bool "fifo 1" true (Ms_queue.dequeue q ctx = Some 1);
      Ms_queue.enqueue q ctx 4;
      check_bool "fifo 2" true (Ms_queue.dequeue q ctx = Some 2);
      check_bool "fifo 3" true (Ms_queue.dequeue q ctx = Some 3);
      check_bool "fifo 4" true (Ms_queue.dequeue q ctx = Some 4);
      check_bool "drained" true (Ms_queue.dequeue q ctx = None);
      check_bool "empty again" true (Ms_queue.is_empty q ctx))

(* Producers enqueue increasing per-thread sequences; consumers must observe
   each producer's values in order (FIFO per source). *)
let queue_producer_consumer ?(policy = Engine.Min_clock) scheme () =
  let producers = 2 and consumers = 2 in
  let nthreads = producers + consumers in
  let sys = mk ~nthreads ~policy scheme in
  let queue = ref None in
  System.run_on_thread0 sys (fun ctx -> queue := Some (queue_of sys ctx));
  let q = Option.get !queue in
  let per_producer = 150 in
  let consumed = Array.make nthreads [] in
  for tid = 0 to producers - 1 do
    System.spawn sys ~tid (fun ctx ->
        for i = 1 to per_producer do
          Ms_queue.enqueue q ctx (((Engine.Mem.tid ctx) * 1_000_000) + i)
        done)
  done;
  let total_expected = producers * per_producer in
  let taken = Atomic.make 0 in
  for tid = producers to nthreads - 1 do
    System.spawn sys ~tid (fun ctx ->
        while Atomic.get taken < total_expected do
          match Ms_queue.dequeue q ctx with
          | Some v ->
              Atomic.incr taken;
              consumed.((Engine.Mem.tid ctx)) <- v :: consumed.((Engine.Mem.tid ctx))
          | None -> Engine.Mem.pause ctx
        done)
  done;
  System.run sys;
  check_int (scheme ^ ": everything consumed") total_expected (Atomic.get taken);
  check_int "queue drained" 0 (Ms_queue.length q);
  (* per-producer order must be increasing within each consumer's stream *)
  Array.iter
    (fun stream ->
      let stream = List.rev stream in
      for p = 0 to producers - 1 do
        let mine = List.filter (fun v -> v / 1_000_000 = p) stream in
        let rec increasing = function
          | a :: (b :: _ as rest) -> a < b && increasing rest
          | _ -> true
        in
        check_bool (scheme ^ ": per-producer fifo") true (increasing mine)
      done)
    consumed

let queue_race scheme () =
  for seed = 1 to 6 do
    queue_producer_consumer ~policy:(Engine.Random_order seed) scheme ()
  done

let stack_race scheme () =
  for seed = 1 to 6 do
    stack_concurrent ~policy:(Engine.Random_order seed) scheme ()
  done

(* Queues churn sentinels constantly; the OA schemes must return that
   memory. *)
let queue_memory_returns scheme () =
  let sys = mk ~nthreads:1 ~sb_pages:1 scheme in
  System.run_on_thread0 sys (fun ctx ->
      let q = queue_of sys ctx in
      for round = 1 to 20 do
        for i = 1 to 100 do
          Ms_queue.enqueue q ctx ((round * 1000) + i)
        done;
        for _ = 1 to 100 do
          ignore (Ms_queue.dequeue q ctx)
        done
      done);
  System.drain sys;
  let u = (System.vmem sys) in
  check_bool
    (Printf.sprintf "%s: queue memory returned (peak %d, now %d)" scheme
       (Oamem_vmem.Vmem.frames_peak u) (Oamem_vmem.Vmem.frames_live u))
    true
    ((Oamem_vmem.Vmem.frames_live u) <= 10)

(* --- VBR stack (the paper's §6 future work) ---------------------------------- *)

let vbr_stack_of sys ctx = Vbr_stack.create ctx ~alloc:(System.alloc sys)

let test_vbr_stack_sequential () =
  let sys = mk "nr" in
  System.run_on_thread0 sys (fun ctx ->
      let s = vbr_stack_of sys ctx in
      check_bool "empty" true (Vbr_stack.is_empty s ctx);
      check_bool "pop empty" true (Vbr_stack.pop s ctx = None);
      Vbr_stack.push s ctx 1;
      Vbr_stack.push s ctx 2;
      Vbr_stack.push s ctx 3;
      check_bool "lifo" true
        (Vbr_stack.pop s ctx = Some 3
        && Vbr_stack.pop s ctx = Some 2
        && Vbr_stack.pop s ctx = Some 1
        && Vbr_stack.pop s ctx = None);
      (* the VBR selling point: every pop freed its node immediately *)
      check_int "immediate frees" 3 (Vbr_stack.immediate_frees s))

let vbr_stack_concurrent ?(policy = Engine.Min_clock) () =
  let nthreads = 4 in
  let sys = mk ~nthreads ~policy "nr" in
  let stack = ref None in
  System.run_on_thread0 sys (fun ctx -> stack := Some (vbr_stack_of sys ctx));
  let s = Option.get !stack in
  let pushed = Array.make nthreads 0 and popped = Array.make nthreads 0 in
  for tid = 0 to nthreads - 1 do
    System.spawn sys ~tid (fun ctx ->
        let rng = (Engine.Mem.prng ctx) in
        for i = 1 to 250 do
          if Prng.bool rng then begin
            Vbr_stack.push s ctx (((Engine.Mem.tid ctx) * 1_000_000) + i);
            pushed.(tid) <- pushed.(tid) + 1
          end
          else
            match Vbr_stack.pop s ctx with
            | Some _ -> popped.(tid) <- popped.(tid) + 1
            | None -> ()
        done)
  done;
  System.run sys;
  let total a = Array.fold_left ( + ) 0 a in
  check_int "vbr push/pop accounting" (total pushed - total popped)
    (Vbr_stack.length s);
  check_int "every pop freed immediately" (total popped)
    (Vbr_stack.immediate_frees s)

let test_vbr_stack_races () =
  for seed = 1 to 8 do
    vbr_stack_concurrent ~policy:(Engine.Random_order seed) ()
  done

(* Memory goes back with zero grace period: after popping everything, the
   footprint is back near baseline without any drain/flush of limbo lists
   (there are none). *)
let test_vbr_stack_immediate_memory_return () =
  let sys = mk ~nthreads:1 ~sb_pages:1 "nr" in
  System.run_on_thread0 sys (fun ctx ->
      let s = vbr_stack_of sys ctx in
      for i = 1 to 2000 do
        Vbr_stack.push s ctx i
      done;
      let full = (Oamem_vmem.Vmem.frames_live (System.vmem sys)) in
      for _ = 1 to 2000 do
        ignore (Vbr_stack.pop s ctx)
      done;
      (* frames can only return to the OS once the caches flush, but the
         allocator already has every node back *)
      Oamem_lrmalloc.Lrmalloc.flush_thread_cache (System.alloc sys) ctx;
      Oamem_lrmalloc.Heap.trim
        (Oamem_lrmalloc.Lrmalloc.heap (System.alloc sys))
        ctx;
      let after = (Oamem_vmem.Vmem.frames_live (System.vmem sys)) in
      check_bool
        (Printf.sprintf "frames returned without grace period (%d -> %d)" full
           after)
        true
        (after < full && after <= 8))

let per_scheme name f =
  List.map (fun s -> (Printf.sprintf "%s (%s)" name s, `Quick, f s)) schemes

let suite =
  per_scheme "stack sequential" (fun s -> stack_sequential s)
  @ per_scheme "stack concurrent" (fun s -> stack_concurrent s)
  @ per_scheme "stack races" (fun s -> stack_race s)
  @ per_scheme "queue sequential" (fun s -> queue_sequential s)
  @ per_scheme "queue producer/consumer" (fun s -> queue_producer_consumer s)
  @ per_scheme "queue races" (fun s -> queue_race s)
  @ [
      ("queue memory returns (oa-bit)", `Quick, queue_memory_returns "oa-bit");
      ("queue memory returns (oa-ver)", `Quick, queue_memory_returns "oa-ver");
      ("queue memory returns (hp)", `Quick, queue_memory_returns "hp");
      ("vbr stack sequential", `Quick, test_vbr_stack_sequential);
      ("vbr stack concurrent", `Quick, fun () -> vbr_stack_concurrent ());
      ("vbr stack races", `Quick, test_vbr_stack_races);
      ("vbr stack immediate memory return", `Quick,
       test_vbr_stack_immediate_memory_return);
    ]

let () = Alcotest.run "structures" [ ("structures", suite) ]
